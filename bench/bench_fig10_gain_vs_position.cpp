// Fig. 10 — Power gain vs receive position in water: (a) depth sweep
// 0-20 cm, (b) orientation sweep 0-1.5pi, both with the 10-antenna CIB.
// Paper: the gain is stable across depth and orientation (CIB is blind to
// the channel), even though the absolute received power drops with depth.
#include <cstdio>

#include "ivnet/common/units.hpp"
#include "ivnet/sim/calibration.hpp"
#include "ivnet/sim/experiment.hpp"

int main() {
  using namespace ivnet;

  const auto tag = standard_tag();
  const auto plan = FrequencyPlan::paper_default();
  constexpr std::size_t kTrials = 100;
  Rng rng(10);

  std::printf("=== Fig. 10(a): gain vs depth in water (N = 10) ===\n");
  std::printf("%-12s %-12s %-12s %-12s %s\n", "depth [cm]", "p10", "median",
              "p90", "1-ant volts");
  for (double d_cm : {0.0, 2.5, 5.0, 7.5, 10.0, 12.5, 15.0, 17.5, 20.0}) {
    const auto scen =
        water_tank_scenario(d_cm / 100.0, calib::kGainSetupStandoffM);
    const auto s =
        summarize_cib(run_gain_trials(scen, tag, plan, kTrials, rng));
    std::printf("%-12.1f %-12.1f %-12.1f %-12.1f %.4f\n", d_cm, s.p10, s.p50,
                s.p90, single_antenna_voltage(scen, tag, plan.center_hz()));
  }
  std::printf("paper: gain ~flat (60-90 band) while absolute power decays "
              "with depth\n\n");

  std::printf("=== Fig. 10(b): gain vs orientation (N = 10) ===\n");
  std::printf("%-14s %-12s %-12s %s\n", "orient [rad]", "p10", "median",
              "p90");
  for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5}) {
    auto scen = water_tank_scenario(0.05, calib::kGainSetupStandoffM);
    scen.orientation_rad = frac * kPi;
    const auto s =
        summarize_cib(run_gain_trials(scen, tag, plan, kTrials, rng));
    std::printf("%.2f pi        %-12.1f %-12.1f %.1f\n", frac, s.p10, s.p50,
                s.p90);
  }
  std::printf("paper: gain independent of orientation (CIB is channel-"
              "blind)\n");
  return 0;
}
