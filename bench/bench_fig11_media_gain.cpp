// Fig. 11 — Gain across different media: air, water, simulated gastric and
// intestinal fluids, steak, bacon, chicken. Compares the 10-antenna CIB
// against the 10-antenna same-frequency baseline (both over one antenna).
// Paper: CIB ~80x in EVERY medium; baseline ~10x (only the extra radiated
// power); the gain is agnostic to the medium.
#include <cstdio>

#include "ivnet/sim/calibration.hpp"
#include "ivnet/sim/experiment.hpp"

int main() {
  using namespace ivnet;

  const auto tag = standard_tag();
  const auto plan = FrequencyPlan::paper_default();
  constexpr std::size_t kTrials = 100;
  constexpr double kDepth = 0.05;

  struct Entry {
    const char* label;
    Scenario scenario;
  };
  const double standoff = calib::kGainSetupStandoffM;
  const Entry entries[] = {
      {"air", air_scenario(standoff)},
      {"water", water_tank_scenario(kDepth, standoff)},
      {"gastric fluid",
       medium_block_scenario(media::gastric_fluid(), kDepth, standoff)},
      {"intestinal fluid",
       medium_block_scenario(media::intestinal_fluid(), kDepth, standoff)},
      {"steak", medium_block_scenario(media::steak(), kDepth, standoff)},
      {"bacon", medium_block_scenario(media::bacon(), kDepth, standoff)},
      {"chicken", medium_block_scenario(media::chicken(), kDepth, standoff)},
  };

  std::printf("=== Fig. 11: median power gain across media (N = 10, %zu "
              "trials) ===\n",
              kTrials);
  std::printf("paper: CIB ~80x, baseline ~10x, independent of medium\n\n");
  std::printf("%-18s %-20s %-22s %s\n", "medium", "CIB median [p10-p90]",
              "baseline median", "CIB/baseline");

  Rng rng(11);
  for (const auto& e : entries) {
    // The air row measures the tag directly in air (LOS, mild multipath).
    auto scen = e.scenario;
    if (std::string(e.label) == "air") scen.multipath_rays = 4;
    const auto trials = run_gain_trials(scen, tag, plan, kTrials, rng);
    const auto cib = summarize_cib(trials);
    const auto base = summarize_baseline(trials);
    std::printf("%-18s %6.1f [%5.1f-%6.1f] %-22.1f %.1fx\n", e.label, cib.p50,
                cib.p10, cib.p90, base.p50,
                base.p50 > 0 ? cib.p50 / base.p50 : 0.0);
  }
  std::printf("\npaper headline: up to 8.5x median improvement over the "
              "optimized multi-antenna baseline\n");
  return 0;
}
