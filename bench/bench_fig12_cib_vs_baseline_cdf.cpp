// Fig. 12 — CDF of the per-location power ratio of CIB to the 10-antenna
// same-frequency baseline. Paper: CIB wins in >99% of locations, median ~8x
// (the 8.5x headline), with a tail beyond 100x where the baseline happens to
// interfere destructively.
#include <cstdio>

#include "ivnet/common/stats.hpp"
#include "ivnet/sim/calibration.hpp"
#include "ivnet/sim/experiment.hpp"

int main() {
  using namespace ivnet;

  const auto scenario =
      water_tank_scenario(0.05, calib::kGainSetupStandoffM);
  const auto plan = FrequencyPlan::paper_default();
  constexpr std::size_t kTrials = 500;

  Rng rng(12);
  const auto trials =
      run_gain_trials(scenario, standard_tag(), plan, kTrials, rng);
  std::vector<double> ratios;
  ratios.reserve(trials.size());
  for (const auto& t : trials) {
    if (t.baseline_gain > 0.0) ratios.push_back(t.cib_gain / t.baseline_gain);
  }

  std::printf("=== Fig. 12: CDF of CIB / 10-antenna-baseline power ratio "
              "(%zu locations) ===\n\n",
              ratios.size());
  std::printf("%-12s %s\n", "fraction", "power ratio");
  for (double q : {0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    std::printf("%-12.2f %.2f\n", q, percentile(ratios, q));
  }

  std::printf("\npaper vs measured:\n");
  std::printf("  fraction of locations where CIB wins: paper >99%% | "
              "measured %.1f%%\n",
              100.0 * fraction_above(ratios, 1.0));
  std::printf("  median ratio: paper ~8x (8.5x headline) | measured %.1fx\n",
              median(ratios));
  std::printf("  locations beyond 100x: paper 'certain locations' | "
              "measured %.1f%%\n",
              100.0 * fraction_above(ratios, 100.0));
  return 0;
}
