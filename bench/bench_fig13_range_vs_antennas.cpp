// Fig. 13 — Range vs number of antennas, four panels: standard / miniature
// tag x air / water. Paper anchors: standard tag 5.2 m -> 38 m in air
// (7.6x); standard tag 23 cm and miniature tag 11 cm depth in water with 8
// antennas; without CIB neither tag powers up in water; depth grows
// logarithmically with antenna count.
//
// Runs on the sweep-campaign engine: 4 "range" cells per antenna count plus
// the two water-tank gain anchors Fig. 9 also sweeps — identical CellSpecs,
// so when both benches run in one process the anchors evaluate once (memo
// cache). Pass a journal path as argv[1] to checkpoint the run; set
// IVNET_SHARDS=N to split it across an in-process N-worker fleet.
#include <cstdio>

#include "ivnet/common/json.hpp"
#include "ivnet/sim/campaign.hpp"

int main(int argc, char** argv) {
  using namespace ivnet;

  const CampaignReport report =
      run_bench_campaign(fig13_campaign(), argc > 1 ? argv[1] : "");

  // Cell layout (see fig13_campaign): for n in 1..8 the four panels in
  // order std-air, mini-air, std-water, mini-water; then the gain anchors.
  const auto range_m = [&](std::size_t n, std::size_t panel) {
    const auto& outcome = report.outcomes[(n - 1) * 4 + panel];
    return json_find_number(outcome.result_json, "max_m", 0.0);
  };

  std::printf("=== Fig. 13: maximum operating range vs antenna count ===\n\n");
  std::printf("%-10s %-16s %-16s %-18s %s\n", "antennas", "std air [m]",
              "mini air [m]", "std water [cm]", "mini water [cm]");
  for (std::size_t n = 1; n <= 8; ++n) {
    std::printf("%-10zu %-16.1f %-16.2f %-18.1f %.1f\n", n, range_m(n, 0),
                range_m(n, 1), range_m(n, 2) * 100.0, range_m(n, 3) * 100.0);
  }

  std::printf("\npaper vs measured (8 antennas):\n");
  std::printf("  standard tag air range: paper 5.2 m -> 38 m (7.6x) | "
              "measured %.1f m -> %.1f m (%.1fx)\n",
              range_m(1, 0), range_m(8, 0),
              range_m(1, 0) > 0 ? range_m(8, 0) / range_m(1, 0) : 0.0);
  std::printf("  standard tag water depth: paper 23 cm | measured %.1f cm\n",
              range_m(8, 2) * 100.0);
  std::printf("  miniature tag water depth: paper 11 cm | measured %.1f cm\n",
              range_m(8, 3) * 100.0);
  std::printf("  miniature tag, 1 antenna, in water: paper 'cannot be "
              "powered up' | measured %.1f cm\n",
              range_m(1, 3) * 100.0);

  const auto& gain1 = report.outcomes[32];
  const auto& gain8 = report.outcomes[33];
  std::printf("  water-tank gain anchors (cells shared with Fig. 9): "
              "N=1 p50 %.1f, N=8 p50 %.1f\n",
              json_find_number(gain1.result_json, "p50", 0.0),
              json_find_number(gain8.result_json, "p50", 0.0));
  std::printf("campaign: %zu cells (%zu computed, %zu resumed, %zu cache "
              "hits)\n",
              report.cells_total, report.cells_computed, report.cells_resumed,
              report.cache_hits);
  return 0;
}
