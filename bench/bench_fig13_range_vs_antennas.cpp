// Fig. 13 — Range vs number of antennas, four panels: standard / miniature
// tag x air / water. Paper anchors: standard tag 5.2 m -> 38 m in air
// (7.6x); standard tag 23 cm and miniature tag 11 cm depth in water with 8
// antennas; without CIB neither tag powers up in water; depth grows
// logarithmically with antenna count.
#include <cstdio>

#include "ivnet/sim/experiment.hpp"

int main() {
  using namespace ivnet;

  const auto plan = FrequencyPlan::paper_default();
  constexpr std::size_t kTrials = 15;
  Rng rng(13);

  std::printf("=== Fig. 13: maximum operating range vs antenna count ===\n\n");
  std::printf("%-10s %-16s %-16s %-18s %s\n", "antennas", "std air [m]",
              "mini air [m]", "std water [cm]", "mini water [cm]");

  double std_air_1 = 0.0, std_air_8 = 0.0;
  double std_water_8 = 0.0, mini_water_8 = 0.0;
  for (std::size_t n = 1; n <= 8; ++n) {
    const auto p = plan.truncated(n);
    const double a_std = max_air_range(standard_tag(), p, kTrials, rng, 80.0);
    const double a_mini = max_air_range(miniature_tag(), p, kTrials, rng, 20.0);
    const double w_std = max_water_depth(standard_tag(), p, kTrials, rng);
    const double w_mini = max_water_depth(miniature_tag(), p, kTrials, rng);
    std::printf("%-10zu %-16.1f %-16.2f %-18.1f %.1f\n", n, a_std, a_mini,
                w_std * 100.0, w_mini * 100.0);
    if (n == 1) std_air_1 = a_std;
    if (n == 8) {
      std_air_8 = a_std;
      std_water_8 = w_std;
      mini_water_8 = w_mini;
    }
  }

  std::printf("\npaper vs measured (8 antennas):\n");
  std::printf("  standard tag air range: paper 5.2 m -> 38 m (7.6x) | "
              "measured %.1f m -> %.1f m (%.1fx)\n",
              std_air_1, std_air_8,
              std_air_1 > 0 ? std_air_8 / std_air_1 : 0.0);
  std::printf("  standard tag water depth: paper 23 cm | measured %.1f cm\n",
              std_water_8 * 100.0);
  std::printf("  miniature tag water depth: paper 11 cm | measured %.1f cm\n",
              mini_water_8 * 100.0);
  std::printf("  miniature tag, 1 antenna, in water: paper 'cannot be "
              "powered up' | measured %.1f cm\n",
              max_water_depth(miniature_tag(), plan.truncated(1), kTrials,
                              rng) * 100.0);
  return 0;
}
