// Fig. 15 / Sec. 6.2 — The swine experiment: full Gen2 sessions against tags
// implanted (gastric) and placed subcutaneously, with the placement
// variation the paper reports (tag movement with breathing, orientation
// changes between re-placements). Success criterion: preamble correlation
// above 0.8, exactly as in the paper.
//
// Paper results: gastric standard 3/6; gastric miniature 0/6; subcutaneous
// standard and miniature successful in all trials.
#include <cstdio>

#include "ivnet/common/units.hpp"
#include "ivnet/sim/calibration.hpp"
#include "ivnet/sim/experiment.hpp"

namespace {

using namespace ivnet;

int run_block(const char* label, bool gastric, const TagConfig& tag,
              int trials, Rng& rng, SessionReport* sample) {
  SessionConfig cfg;
  cfg.plan = FrequencyPlan::paper_default().truncated(8);
  cfg.reader.averaging_periods = 10;  // 10 s of 1 s-period averaging
  int ok = 0;
  std::printf("-- %s --\n", label);
  for (int k = 0; k < trials; ++k) {
    Scenario scen =
        gastric ? swine_gastric_scenario(calib::kSwineStandoffM,
                                         rng.uniform(0.0, 0.065))
                : swine_subcutaneous_scenario(calib::kSwineStandoffM);
    // Each re-placement changes the tag orientation (Sec. 6.2 methods). A
    // gastric capsule tumbles freely; a subcutaneous tag is placed flat, so
    // its misalignment stays small.
    scen.orientation_rad = rng.uniform(0.0, gastric ? kPi : kPi / 4.0);
    const auto r = run_gen2_session(scen, tag, cfg, rng);
    std::printf("  trial %d: powered=%d decoded=%d corr=%.2f "
                "(env %.2f V, rail %.2f V)\n",
                k + 1, r.powered, r.rn16_decoded, r.preamble_correlation,
                r.peak_envelope_v, r.peak_rail_v);
    if (r.rn16_decoded && sample && !sample->rn16_decoded) *sample = r;
    ok += r.rn16_decoded;
  }
  std::printf("  => %d/%d sessions decoded\n\n", ok, trials);
  return ok;
}

}  // namespace

int main() {
  std::printf("=== Fig. 15 / Sec. 6.2: in-vivo (swine) reproduction ===\n");
  std::printf("success = preamble correlation > 0.8 against "
              "\"110100100011\" (FM0)\n\n");

  Rng rng(1518);
  SessionReport sample;
  const int g_std =
      run_block("standard tag, gastric placement", true, standard_tag(), 6,
                rng, &sample);
  const int g_mini = run_block("miniature tag, gastric placement", true,
                               miniature_tag(), 6, rng, nullptr);
  const int s_std = run_block("standard tag, subcutaneous", false,
                              standard_tag(), 3, rng, nullptr);
  const int s_mini = run_block("miniature tag, subcutaneous", false,
                               miniature_tag(), 3, rng, nullptr);

  if (sample.rn16_decoded) {
    std::printf("-- sample decoded response (cf. Fig. 15(a)) --\n");
    std::printf("  RN16 = 0x%04X, preamble correlation %.2f, "
                "uplink SNR %.1f dB\n",
                sample.rn16, sample.preamble_correlation,
                sample.reader_report.snr_db);
    std::printf("  averaged waveform (first 96 samples, quantized): ");
    for (std::size_t i = 0; i < 96 && i < sample.reader_report
                                            .averaged_signal.size(); i += 8) {
      std::printf("%+0.2f ", sample.reader_report.averaged_signal[i] /
                                 (std::abs(sample.reader_report
                                               .averaged_signal[0]) + 1e-12));
    }
    std::printf("\n\n");
  }

  std::printf("paper vs measured:\n");
  std::printf("  gastric standard:   paper 3/6 | measured %d/6\n", g_std);
  std::printf("  gastric miniature:  paper 0/6 | measured %d/6\n", g_mini);
  std::printf("  subcut standard:    paper 3/3 | measured %d/3\n", s_std);
  std::printf("  subcut miniature:   paper 3/3 | measured %d/3\n", s_mini);
  return 0;
}
