// Fig. 2 — Diode I-V curves: ideal vs practical (threshold) vs physical
// (Shockley). Regenerates the current-voltage relationship that creates the
// threshold effect of Sec. 2.1.1.
#include <cstdio>

#include "ivnet/harvester/diode.hpp"

int main() {
  using namespace ivnet;

  const auto ideal = Diode::ideal();
  const auto threshold = Diode::threshold(0.3);
  const auto shockley = Diode::shockley(1e-9);

  std::printf("=== Fig. 2: diode I-V curves ===\n");
  std::printf("paper: ideal diode conducts for any V > 0; a realistic diode "
              "needs V > Vth (200-400 mV typical)\n\n");
  std::printf("%-10s %-14s %-16s %-14s\n", "V [V]", "ideal [mA]",
              "threshold [mA]", "shockley [mA]");
  for (double v = -0.10; v <= 0.501; v += 0.05) {
    std::printf("%-10.2f %-14.3f %-16.3f %-14.4f\n", v,
                ideal.current(v) * 1e3, threshold.current(v) * 1e3,
                shockley.current(v) * 1e3);
  }

  std::printf("\nturn-on voltages: ideal %.0f mV, threshold %.0f mV, "
              "shockley %.0f mV\n",
              ideal.turn_on_voltage() * 1e3,
              threshold.turn_on_voltage() * 1e3,
              shockley.turn_on_voltage() * 1e3);
  std::printf("check: threshold diode passes zero current at 0.25 V: %s\n",
              threshold.current(0.25) == 0.0 ? "yes" : "NO");
  return 0;
}
