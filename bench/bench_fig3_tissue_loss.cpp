// Fig. 3 — Signal power loss in tissues vs in air: in air the loss is only
// quadratic in distance; in tissue the exponential term dominates (plus the
// 3-5 dB boundary reflection). Regenerates the normalized-loss (log-scale)
// curves of Sec. 2.2.1.
#include <cstdio>

#include "ivnet/common/units.hpp"
#include "ivnet/media/layered.hpp"

int main() {
  using namespace ivnet;

  const double f = 915e6;
  std::printf("=== Fig. 3: normalized power loss vs distance ===\n");
  std::printf("paper: air ~ 1/r^2; tissue ~ e^{-2 alpha d} after a 3-5 dB "
              "boundary loss; 11.5-35.4 dB at 5 cm depth\n\n");

  // Air: normalized to 10 cm.
  std::printf("-- air (normalized to 10 cm) --\n%-12s %s\n", "r [m]",
              "loss [dB]");
  for (double r : {0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    std::printf("%-12.1f %.1f\n", r, 20.0 * std::log10(r / 0.1));
  }

  // Tissue: boundary + exponential, for a representative muscle block.
  LayeredMedium muscle_block;
  muscle_block.add_layer(media::muscle(), 0.30);
  std::printf("\n-- muscle (boundary + exponential) --\n%-12s %-12s %s\n",
              "d [cm]", "loss [dB]", "dB/cm so far");
  for (double d_cm : {0.0, 1.0, 2.0, 3.0, 5.0, 7.0, 10.0, 15.0, 20.0}) {
    const double mag =
        std::abs(muscle_block.field_transfer_at_depth(f, d_cm / 100.0));
    const double loss = -amplitude_to_db(mag);
    std::printf("%-12.1f %-12.1f %.2f\n", d_cm, loss,
                d_cm > 0 ? loss / d_cm : 0.0);
  }

  const double at5 = -amplitude_to_db(
      std::abs(muscle_block.field_transfer_at_depth(f, 0.05)));
  std::printf("\npaper: 11.5-35.4 dB propagation loss at 5 cm "
              "(+3-5 dB boundary) | measured total at 5 cm: %.1f dB\n", at5);
  std::printf("boundary loss air->muscle: %.1f dB (paper: 3-5 dB)\n",
              boundary_loss_db(media::air(), media::muscle(), f));
  std::printf("muscle attenuation: %.1f Np/m (paper range: 13-80 Np/m), "
              "%.1f dB/cm (paper: 2.3-6.9)\n",
              media::muscle().alpha(f),
              media::muscle().power_loss_db_per_cm(f));
  return 0;
}
