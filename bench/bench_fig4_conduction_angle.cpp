// Fig. 4 — Impact of the threshold effect: conduction angle of the energy
// harvester when the sensor is (a) near the transmitter in air, (b) at
// shallow tissue depth, (c) in deep tissue. Regenerated both analytically
// (conduction_angle) and with the carrier-rate transient doubler of Fig. 1.
#include <cstdio>

#include "ivnet/common/units.hpp"
#include "ivnet/harvester/diode.hpp"
#include "ivnet/harvester/transient.hpp"

int main() {
  using namespace ivnet;

  const double vth = 0.3;
  struct Case {
    const char* name;
    double amplitude_v;
  };
  const Case cases[] = {
      {"(a) close in air", 2.0},
      {"(b) shallow tissue", 0.45},
      {"(c) deep tissue", 0.2},
  };

  std::printf("=== Fig. 4: threshold effect on the conduction angle ===\n");
  std::printf("paper: large conduction angle near the TX; smaller at shallow "
              "depth; ZERO in deep tissue (no harvesting)\n\n");
  std::printf("%-20s %-10s %-16s %-18s %-16s %s\n", "scenario", "Vs [V]",
              "omega [rad]", "duty (analytic)", "duty (doubler)",
              "V_DC [V]");

  for (const auto& c : cases) {
    const double omega = conduction_angle(c.amplitude_v, vth);
    const double duty = conduction_duty(c.amplitude_v, vth);
    DoublerConfig cfg;
    cfg.diode = Diode::threshold(vth);
    cfg.load_ohm = 50e3;
    const auto sim = simulate_doubler(cfg, c.amplitude_v, 915e6, 300);
    std::printf("%-20s %-10.2f %-16.3f %-18.3f %-16.3f %.2f\n", c.name,
                c.amplitude_v, omega, duty, sim.conduction_fraction,
                sim.final_v_out);
  }

  std::printf("\ncheck: deep-tissue case harvests nothing "
              "(V_DC ~ 0, conduction angle = 0): %s\n",
              conduction_angle(0.2, vth) == 0.0 ? "yes" : "NO");
  return 0;
}
