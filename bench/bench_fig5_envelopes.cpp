// Fig. 5 — Traditional beamforming vs CIB under blind channel conditions.
// At a "blind spot" (a channel draw where the same-frequency signals add
// destructively) the traditional transmitter's envelope is stuck below the
// threshold forever, while CIB's frequency-encoded envelope sweeps through
// constructive alignments and periodically spikes above it.
#include <cstdio>

#include "ivnet/cib/baseline.hpp"
#include "ivnet/cib/objective.hpp"
#include "ivnet/common/units.hpp"

int main() {
  using namespace ivnet;

  const std::vector<double> offsets = {0, 7, 20};  // 3-antenna CIB
  Rng rng(5);

  // Find a blind-spot channel draw: same-frequency sum well below 1.
  std::vector<double> phases(3);
  double blind_sum = 10.0;
  while (blind_sum > 0.35) {
    for (auto& p : phases) p = rng.phase();
    cplx sum{0, 0};
    for (double p : phases) sum += std::polar(1.0, p);
    blind_sum = std::abs(sum);
  }

  std::printf("=== Fig. 5: envelopes at a blind spot (3 antennas) ===\n");
  std::printf("channel draw with destructive same-frequency sum: |sum| = "
              "%.2f of 3.0\n\n",
              blind_sum);

  const auto env = cib_envelope(offsets, phases, {}, 1.0, 50);
  std::printf("%-10s %-22s %s\n", "t [s]", "traditional |y| (flat)",
              "CIB |y(t)|");
  for (std::size_t i = 0; i < env.size(); i += 2) {
    const double t = static_cast<double>(i) / 50.0;
    std::printf("%-10.2f %-22.2f %.2f\n", t, blind_sum, env[i]);
  }

  double peak = 0.0;
  for (double v : env) peak = std::max(peak, v);
  std::printf("\ntraditional beamformer: stuck at %.2f (below a 1.0 "
              "threshold forever)\n", blind_sum);
  std::printf("CIB: peak %.2f of 3.0 -> crosses the threshold every period "
              "despite the blind channel\n", peak);
  std::printf("peak power advantage at this location: %.1fx\n",
              (peak * peak) / (blind_sum * blind_sum));
  return 0;
}
