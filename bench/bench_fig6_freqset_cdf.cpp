// Fig. 6 — CIB's power gain from a 5-antenna transmitter: CDFs of the peak
// power gain for the BEST and WORST frequency combinations under Monte-Carlo
// channel conditions. The paper's message: frequency selection matters —
// the good set delivers >=90% of optimal across nearly all channels, the bad
// set falls below 75% of optimal for half of them.
#include <cstdio>

#include "ivnet/cib/objective.hpp"
#include "ivnet/common/stats.hpp"

int main() {
  using namespace ivnet;

  constexpr std::size_t kTrials = 400;

  // A good set (the paper's first five published offsets) and a bad one
  // (tight cluster: phases barely evolve over the 1 s period).
  const std::vector<double> best = {0, 7, 20, 49, 68};
  const std::vector<double> worst = {0, 1, 2, 3, 4};

  Rng rng_a(6), rng_b(6);
  const auto best_amp = peak_amplitude_samples(best, kTrials, rng_a);
  const auto worst_amp = peak_amplitude_samples(worst, kTrials, rng_b);

  std::vector<double> best_gain, worst_gain;
  for (double a : best_amp.values()) best_gain.push_back(a * a);
  for (double a : worst_amp.values()) worst_gain.push_back(a * a);

  std::printf("=== Fig. 6: CDF of 5-antenna peak power gain (max = 25) ===\n");
  std::printf("best set:  {0, 7, 20, 49, 68} Hz\n");
  std::printf("worst set: {0, 1, 2, 3, 4} Hz (tight cluster)\n\n");
  std::printf("%-12s %-18s %s\n", "fraction", "best-set gain", "worst-set gain");
  for (double q : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    std::printf("%-12.2f %-18.1f %.1f\n", q, percentile(best_gain, q),
                percentile(worst_gain, q));
  }

  const double best_med = median(best_gain);
  const double worst_med = median(worst_gain);
  std::printf("\nmedian gains: best %.1f (%.0f%% of 25), worst %.1f "
              "(%.0f%% of 25)\n",
              best_med, best_med / 25.0 * 100.0, worst_med,
              worst_med / 25.0 * 100.0);
  std::printf("paper: best set reaches ~90%% of optimal across channels; "
              "worst set below 75%% for half of them\n");
  std::printf("measured: worst set below 75%% of optimal in %.0f%% of "
              "channels\n",
              100.0 * (1.0 - fraction_above(worst_gain, 0.75 * 25.0)));
  return 0;
}
