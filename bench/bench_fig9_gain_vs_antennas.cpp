// Fig. 9 — Peak power gain vs number of antennas: 150 blind-channel trials
// per antenna count in the Fig. 7 tank setup, reporting median / p10 / p90
// of the nominal power gain over a single antenna. Paper: monotonic growth
// reaching ~85x at 10 antennas (short of the N^2 = 100 optimum because the
// frequency set cannot guarantee perfect alignment, Fig. 6).
#include <cstdio>

#include "ivnet/sim/calibration.hpp"
#include "ivnet/sim/experiment.hpp"

int main() {
  using namespace ivnet;

  const auto scenario =
      water_tank_scenario(0.05, calib::kGainSetupStandoffM);
  const auto tag = standard_tag();
  const auto plan = FrequencyPlan::paper_default();
  constexpr std::size_t kTrials = 150;

  std::printf("=== Fig. 9: gain vs number of antennas (%zu trials each) "
              "===\n",
              kTrials);
  std::printf("paper: monotonic, ~85x at N = 10; cannot reach N^2\n\n");
  std::printf("%-10s %-12s %-12s %-12s %s\n", "antennas", "p10", "median",
              "p90", "N^2 bound");

  Rng rng(9);
  double g1 = 1.0, g10 = 1.0;
  for (std::size_t n = 1; n <= 10; ++n) {
    const auto trials =
        run_gain_trials(scenario, tag, plan.truncated(n), kTrials, rng);
    const auto s = summarize_cib(trials);
    if (n == 1) g1 = s.p50;
    if (n == 10) g10 = s.p50;
    std::printf("%-10zu %-12.1f %-12.1f %-12.1f %zu\n", n, s.p10, s.p50,
                s.p90, n * n);
  }
  std::printf("\nmeasured median at N=10: %.1fx over a single antenna "
              "(paper: ~85x)\n", g10 / g1);
  return 0;
}
