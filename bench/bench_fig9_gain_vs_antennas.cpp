// Fig. 9 — Peak power gain vs number of antennas: 150 blind-channel trials
// per antenna count in the Fig. 7 tank setup, reporting median / p10 / p90
// of the nominal power gain over a single antenna. Paper: monotonic growth
// reaching ~85x at 10 antennas (short of the N^2 = 100 optimum because the
// frequency set cannot guarantee perfect alignment, Fig. 6).
//
// Runs on the sweep-campaign engine: one "gain" cell per antenna count,
// sharded across the thread pool and memoized process-wide. Pass a journal
// path as argv[1] to checkpoint the run (kill it, rerun, and only the
// missing cells recompute); set IVNET_SHARDS=N to split the campaign
// across an in-process N-worker fleet over per-shard journals.
#include <cstdio>

#include "ivnet/common/json.hpp"
#include "ivnet/sim/campaign.hpp"

int main(int argc, char** argv) {
  using namespace ivnet;

  const CampaignReport report =
      run_bench_campaign(fig9_campaign(), argc > 1 ? argv[1] : "");

  std::printf("=== Fig. 9: gain vs number of antennas (%.0f trials each) "
              "===\n",
              report.outcomes[0].spec.param_num("trials", 0.0));
  std::printf("paper: monotonic, ~85x at N = 10; cannot reach N^2\n\n");
  std::printf("%-10s %-12s %-12s %-12s %s\n", "antennas", "p10", "median",
              "p90", "N^2 bound");

  double g1 = 1.0, g10 = 1.0;
  for (const auto& outcome : report.outcomes) {
    const auto n =
        static_cast<std::size_t>(outcome.spec.param_num("antennas", 0.0));
    const double p50 = json_find_number(outcome.result_json, "p50", 0.0);
    if (n == 1) g1 = p50;
    if (n == 10) g10 = p50;
    std::printf("%-10zu %-12.1f %-12.1f %-12.1f %zu\n", n,
                json_find_number(outcome.result_json, "p10", 0.0), p50,
                json_find_number(outcome.result_json, "p90", 0.0), n * n);
  }
  std::printf("\nmeasured median at N=10: %.1fx over a single antenna "
              "(paper: ~85x)\n", g1 > 0.0 ? g10 / g1 : 0.0);
  std::printf("campaign: %zu cells (%zu computed, %zu resumed, %zu cache "
              "hits)\n",
              report.cells_total, report.cells_computed, report.cells_resumed,
              report.cache_hits);
  return 0;
}
