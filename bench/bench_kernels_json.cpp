// Machine-readable perf tracking: times the hot kernels and writes
// BENCH_kernels.json (ns/op for envelope, peak, expected-peak at
// N = 2/5/10) so the perf trajectory is comparable across PRs. Also
// emits a metrics-registry snapshot (<output>_metrics.json) covering
// the instrumented kernels' counters, and BENCH_dsp.json: the DSP
// fast-path kernels (fir, decimate, rational resampler) timed against
// the retained naive oracles from signal/naive_dsp.hpp, with the
// before/after speedup per kernel.
//
//   ./bench_kernels_json [output-path] [dsp-output-path]
//     (defaults: BENCH_kernels.json BENCH_dsp.json)
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "ivnet/cib/frequency_plan.hpp"
#include "ivnet/cib/objective.hpp"
#include "ivnet/common/json.hpp"
#include "ivnet/common/parallel.hpp"
#include "ivnet/common/rng.hpp"
#include "ivnet/obs/obs.hpp"
#include "ivnet/signal/fir.hpp"
#include "ivnet/signal/naive_dsp.hpp"
#include "ivnet/signal/resampler.hpp"

namespace {

using namespace ivnet;

volatile double g_sink = 0.0;  // defeat dead-code elimination

/// Runs fn repeatedly until ~kMinWallS elapsed; returns ns per call.
template <typename Fn>
double time_ns_per_op(Fn&& fn) {
  constexpr double kMinWallS = 0.15;
  // Warm-up (also sizes the batch so the clock is read rarely).
  fn();
  std::size_t batch = 1;
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < batch; ++i) fn();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    if (elapsed.count() >= kMinWallS) {
      return elapsed.count() * 1e9 / static_cast<double>(batch);
    }
    batch *= 4;
  }
}

struct Result {
  std::string name;
  int n;
  double ns_per_op;
};

struct DspResult {
  std::string name;
  double naive_ns;
  double fast_ns;
  double speedup() const { return naive_ns / fast_ns; }
};

/// Times each fast kernel against its naive oracle on a kSamples-sample
/// input (the scale of one decimated Gen2 reply window) and writes the
/// before/after table to `out_path`.
int run_dsp_bench(const std::string& out_path) {
  constexpr std::size_t kSamples = 1 << 15;
  constexpr double kFs = 800e3;
  Rng rng(7);
  std::vector<double> x(kSamples);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  Waveform wave;
  wave.sample_rate_hz = kFs;
  wave.samples.resize(kSamples);
  for (auto& s : wave.samples) {
    s = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  }
  const auto taps101 = design_lowpass(40e3, kFs, 101);
  // Reused workspace: steady-state fast-path timing, not first-call
  // allocation cost.
  DspWorkspace ws;

  std::vector<DspResult> results;
  auto bench = [&](const char* name, auto&& naive_fn, auto&& fast_fn) {
    results.push_back({name, time_ns_per_op(naive_fn), time_ns_per_op(fast_fn)});
  };

  bench(
      "fir_real_101tap",
      [&] { g_sink = naive::fir_filter(x, taps101).back(); },
      [&] {
        std::vector<double> out;
        fir_filter(x, taps101, out);
        g_sink = out.back();
      });
  bench(
      "fir_cplx_101tap",
      [&] { g_sink = naive::fir_filter(wave, taps101).samples.back().real(); },
      [&] {
        Waveform out;
        fir_filter(wave, taps101, out, ws);
        g_sink = out.samples.back().real();
      });
  for (const std::size_t factor : {8u, 16u}) {
    bench(
        ("decimate_real_x" + std::to_string(factor)).c_str(),
        [&] { g_sink = naive::decimate(x, factor, kFs).back(); },
        [&] { g_sink = decimate(x, factor, kFs).back(); });
  }
  bench(
      "decimate_cplx_x8",
      [&] { g_sink = naive::decimate(wave, 8).samples.back().real(); },
      [&] { g_sink = decimate(wave, 8, ws).samples.back().real(); });
  {
    const RationalResampler rs(3, 2);
    bench(
        "resample_3_2",
        [&] { g_sink = naive::resample(rs, x).back(); },
        [&] {
          std::vector<double> out;
          rs.apply(x, out);
          g_sink = out.back();
        });
  }

  JsonWriter w;
  w.begin_object();
  w.field("bench", "dsp_fastpath");
  w.field("samples", kSamples);
  w.field("sample_rate_hz", kFs);
  w.key("results").begin_array();
  for (const auto& r : results) {
    w.begin_object();
    w.field("name", r.name);
    w.field("naive_ns_per_op", r.naive_ns);
    w.field("fast_ns_per_op", r.fast_ns);
    w.field("speedup", r.speedup());
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(w.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  std::printf("  %-18s %14s %14s %9s\n", "kernel", "naive ns/op", "fast ns/op",
              "speedup");
  for (const auto& r : results) {
    std::printf("  %-18s %14.0f %14.0f %8.2fx\n", r.name.c_str(), r.naive_ns,
                r.fast_ns, r.speedup());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_kernels.json";
  const std::string dsp_out_path = argc > 2 ? argv[2] : "BENCH_dsp.json";
  const auto full = FrequencyPlan::paper_default();
  constexpr std::size_t kEnvelopeSteps = 2048;
  constexpr std::size_t kTrials = 32;

  std::vector<Result> results;
  for (const int n : {2, 5, 10}) {
    const auto plan = full.truncated(static_cast<std::size_t>(n));
    const auto& offsets = plan.offsets_hz();
    Rng rng(1);
    std::vector<double> phases(offsets.size());
    for (auto& p : phases) p = rng.phase();

    results.push_back({"envelope", n, time_ns_per_op([&] {
                         g_sink = cib_envelope(offsets, phases, {}, 1.0,
                                               kEnvelopeSteps)
                                      .back();
                       })});
    results.push_back({"peak", n, time_ns_per_op([&] {
                         g_sink = peak_envelope(offsets, phases, 1.0);
                       })});
    results.push_back({"expected_peak", n, time_ns_per_op([&] {
                         Rng trial_rng(2);
                         g_sink = expected_peak_amplitude(offsets, kTrials,
                                                          trial_rng);
                       })});
  }

  JsonWriter w;
  w.begin_object();
  w.field("bench", "kernels");
  w.field("threads", parallel_thread_count());
  w.field("envelope_steps", kEnvelopeSteps);
  w.field("expected_peak_trials", kTrials);
  w.key("results").begin_array();
  for (const auto& r : results) {
    w.begin_object();
    w.field("name", r.name);
    w.field("n", r.n);
    w.field("ns_per_op", r.ns_per_op);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(w.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // One instrumented pass AFTER the timing loops (which ran against the
  // null sink, measuring the production configuration): snapshot the
  // kernels' telemetry next to the timing file.
  {
    obs::MetricsRegistry registry;
    obs::install(obs::Sink{.metrics = &registry});
    for (const int n : {2, 5, 10}) {
      const auto plan = full.truncated(static_cast<std::size_t>(n));
      Rng trial_rng(2);
      g_sink = expected_peak_amplitude(plan.offsets_hz(), kTrials, trial_rng);
    }
    obs::install_null();
    const std::string metrics_path =
        (out_path.size() > 5 && out_path.rfind(".json") == out_path.size() - 5
             ? out_path.substr(0, out_path.size() - 5)
             : out_path) +
        "_metrics.json";
    std::FILE* mf = std::fopen(metrics_path.c_str(), "w");
    if (mf != nullptr) {
      const std::string snap = registry.snapshot_json();
      std::fwrite(snap.data(), 1, snap.size(), mf);
      std::fputc('\n', mf);
      std::fclose(mf);
      std::printf("wrote %s\n", metrics_path.c_str());
    }
  }
  for (const auto& r : results) {
    std::printf("  %-14s n=%-2d %12.0f ns/op\n", r.name.c_str(), r.n,
                r.ns_per_op);
  }
  return run_dsp_bench(dsp_out_path);
}
