// Machine-readable perf tracking: times the hot kernels and writes
// BENCH_kernels.json (ns/op for envelope, peak, expected-peak at
// N = 2/5/10) so the perf trajectory is comparable across PRs. Also
// emits a metrics-registry snapshot (<output>_metrics.json) covering
// the instrumented kernels' counters.
//
//   ./bench_kernels_json [output-path]    (default: BENCH_kernels.json)
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "ivnet/cib/frequency_plan.hpp"
#include "ivnet/cib/objective.hpp"
#include "ivnet/common/json.hpp"
#include "ivnet/common/parallel.hpp"
#include "ivnet/common/rng.hpp"
#include "ivnet/obs/obs.hpp"

namespace {

using namespace ivnet;

volatile double g_sink = 0.0;  // defeat dead-code elimination

/// Runs fn repeatedly until ~kMinWallS elapsed; returns ns per call.
template <typename Fn>
double time_ns_per_op(Fn&& fn) {
  constexpr double kMinWallS = 0.15;
  // Warm-up (also sizes the batch so the clock is read rarely).
  fn();
  std::size_t batch = 1;
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < batch; ++i) fn();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t0;
    if (elapsed.count() >= kMinWallS) {
      return elapsed.count() * 1e9 / static_cast<double>(batch);
    }
    batch *= 4;
  }
}

struct Result {
  std::string name;
  int n;
  double ns_per_op;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_kernels.json";
  const auto full = FrequencyPlan::paper_default();
  constexpr std::size_t kEnvelopeSteps = 2048;
  constexpr std::size_t kTrials = 32;

  std::vector<Result> results;
  for (const int n : {2, 5, 10}) {
    const auto plan = full.truncated(static_cast<std::size_t>(n));
    const auto& offsets = plan.offsets_hz();
    Rng rng(1);
    std::vector<double> phases(offsets.size());
    for (auto& p : phases) p = rng.phase();

    results.push_back({"envelope", n, time_ns_per_op([&] {
                         g_sink = cib_envelope(offsets, phases, {}, 1.0,
                                               kEnvelopeSteps)
                                      .back();
                       })});
    results.push_back({"peak", n, time_ns_per_op([&] {
                         g_sink = peak_envelope(offsets, phases, 1.0);
                       })});
    results.push_back({"expected_peak", n, time_ns_per_op([&] {
                         Rng trial_rng(2);
                         g_sink = expected_peak_amplitude(offsets, kTrials,
                                                          trial_rng);
                       })});
  }

  JsonWriter w;
  w.begin_object();
  w.field("bench", "kernels");
  w.field("threads", parallel_thread_count());
  w.field("envelope_steps", kEnvelopeSteps);
  w.field("expected_peak_trials", kTrials);
  w.key("results").begin_array();
  for (const auto& r : results) {
    w.begin_object();
    w.field("name", r.name);
    w.field("n", r.n);
    w.field("ns_per_op", r.ns_per_op);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(w.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // One instrumented pass AFTER the timing loops (which ran against the
  // null sink, measuring the production configuration): snapshot the
  // kernels' telemetry next to the timing file.
  {
    obs::MetricsRegistry registry;
    obs::install(obs::Sink{.metrics = &registry});
    for (const int n : {2, 5, 10}) {
      const auto plan = full.truncated(static_cast<std::size_t>(n));
      Rng trial_rng(2);
      g_sink = expected_peak_amplitude(plan.offsets_hz(), kTrials, trial_rng);
    }
    obs::install_null();
    const std::string metrics_path =
        (out_path.size() > 5 && out_path.rfind(".json") == out_path.size() - 5
             ? out_path.substr(0, out_path.size() - 5)
             : out_path) +
        "_metrics.json";
    std::FILE* mf = std::fopen(metrics_path.c_str(), "w");
    if (mf != nullptr) {
      const std::string snap = registry.snapshot_json();
      std::fwrite(snap.data(), 1, snap.size(), mf);
      std::fputc('\n', mf);
      std::fclose(mf);
      std::printf("wrote %s\n", metrics_path.c_str());
    }
  }
  for (const auto& r : results) {
    std::printf("  %-14s n=%-2d %12.0f ns/op\n", r.name.c_str(), r.n,
                r.ns_per_op);
  }
  return 0;
}
