// Microbenchmarks (google-benchmark) of the hot computational kernels: the
// CIB envelope evaluator behind the Eq. 10 optimizer, the peak search, the
// FM0 decoder, the PIE codec, and the quasi-static harvester.
#include <benchmark/benchmark.h>

#include "ivnet/cib/objective.hpp"
#include "ivnet/cib/optimizer.hpp"
#include "ivnet/common/parallel.hpp"
#include "ivnet/gen2/commands.hpp"
#include "ivnet/gen2/fm0.hpp"
#include "ivnet/gen2/pie.hpp"
#include "ivnet/harvester/harvester.hpp"

namespace {

using namespace ivnet;

std::vector<double> plan_offsets(std::int64_t n) {
  const std::vector<double> all = {0, 7, 20, 49, 68, 73, 90, 113, 121, 137};
  return std::vector<double>(all.begin(), all.begin() + n);
}

void BM_Envelope(benchmark::State& state) {
  const auto offsets = plan_offsets(state.range(0));
  std::vector<double> phases(offsets.size(), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cib_envelope(offsets, phases, {}, 1.0, 2048));
  }
}
BENCHMARK(BM_Envelope)->Arg(2)->Arg(5)->Arg(10);

void BM_PeakEnvelope(benchmark::State& state) {
  const auto offsets = plan_offsets(10);
  Rng rng(1);
  std::vector<double> phases(offsets.size());
  for (auto& p : phases) p = rng.phase();
  for (auto _ : state) {
    benchmark::DoNotOptimize(peak_envelope(offsets, phases, 1.0));
  }
}
BENCHMARK(BM_PeakEnvelope);

void BM_ExpectedPeakGain(benchmark::State& state) {
  const auto offsets = plan_offsets(10);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(expected_peak_amplitude(
        offsets, static_cast<std::size_t>(state.range(0)), rng));
  }
}
BENCHMARK(BM_ExpectedPeakGain)->Arg(8)->Arg(32);

// --- Multi-threaded objective benchmarks: second arg is the pool size.
// The determinism contract makes the thread count a pure performance knob,
// so these measure scaling without changing any result.

void BM_ExpectedPeakGainThreaded(benchmark::State& state) {
  set_parallel_threads(static_cast<std::size_t>(state.range(1)));
  const auto offsets = plan_offsets(10);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(expected_peak_amplitude(
        offsets, static_cast<std::size_t>(state.range(0)), rng));
  }
  set_parallel_threads(0);
}
BENCHMARK(BM_ExpectedPeakGainThreaded)
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({128, 4})
    ->Args({128, 8});

void BM_ConductionFractionThreaded(benchmark::State& state) {
  set_parallel_threads(static_cast<std::size_t>(state.range(1)));
  const auto offsets = plan_offsets(10);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        expected_conduction_fraction(offsets, 3.0, 64, rng));
  }
  set_parallel_threads(0);
}
BENCHMARK(BM_ConductionFractionThreaded)
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 4})
    ->Args({64, 8});

void BM_OptimizerThreaded(benchmark::State& state) {
  set_parallel_threads(static_cast<std::size_t>(state.range(0)));
  OptimizerConfig cfg;
  cfg.num_antennas = 6;
  cfg.mc_trials = 24;
  cfg.iterations = 20;
  cfg.restarts = 3;
  for (auto _ : state) {
    FrequencyOptimizer opt(cfg);
    Rng rng(6);
    benchmark::DoNotOptimize(opt.optimize(rng));
  }
  set_parallel_threads(0);
}
BENCHMARK(BM_OptimizerThreaded)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_PieEncodeDecode(benchmark::State& state) {
  const auto bits = gen2::QueryCommand{}.encode();
  for (auto _ : state) {
    const auto env = gen2::pie_encode(bits, gen2::PieTiming{}, 800e3, true);
    benchmark::DoNotOptimize(gen2::pie_decode(env, 800e3));
  }
}
BENCHMARK(BM_PieEncodeDecode);

void BM_Fm0Decode(benchmark::State& state) {
  gen2::Bits bits(16, true);
  const auto sig = gen2::fm0_modulate(bits, 40e3, 800e3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen2::fm0_decode(sig, 16, 40e3, 800e3));
  }
}
BENCHMARK(BM_Fm0Decode);

void BM_HarvesterRun(benchmark::State& state) {
  const Harvester h{HarvesterConfig{}};
  const std::vector<double> env(20000, 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.run(env, 20e3));
  }
}
BENCHMARK(BM_HarvesterRun);

}  // namespace
