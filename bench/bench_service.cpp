// Service front-end latency/throughput characterization: the inventory
// service driven by the Markov-modulated load harness.
//
// Per worker count {1, 2, 8}:
//   1. Closed-loop saturation — a fixed-concurrency replay (4x workers in
//      flight) that never idles the pool and never sheds; its completion
//      rate is the saturation throughput estimate for that pool size.
//   2. Open-loop MMPP sweep — a 2-state bursty schedule (calm at 0.5x and
//      surge at 1.5x the point's mean rate) replayed on the wall clock at
//      offered loads {0.25, 0.5, 1.0, 2.0}x saturation. Queue-wait and
//      service-time p50/p99 come from exact per-request samples, rejection
//      counts from the bounded ring's shedding.
//
// Identity gate (exit code): responses are pure functions of the request
// stream, so the closed-loop response digests must match across ALL worker
// counts and across a rerun at the widest pool. A digest mismatch exits 1 —
// the latency table only ever describes runs with bitwise-identical
// response payloads.
//
// Telemetry overhead row: the widest pool's saturation is re-measured with
// the full observability stack attached (rolling windows + exemplar store +
// flight recorder, sim clock — the CI soak configuration), interleaved
// best-of-3 against the bare service so machine noise hits both sides.
// tools/ci.sh gates the delta at <= 3%.
//
//   ./bench_service [output-path] [--timeline]
//       output-path default: BENCH_service.json
//       --timeline keeps per-request completion wall timestamps for the
//       widest saturation run and emits a binned latency-vs-time column
//       (warmup vs steady state) into the JSON.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "ivnet/common/json.hpp"
#include "ivnet/common/parallel.hpp"
#include "ivnet/obs/flight_recorder.hpp"
#include "ivnet/obs/telemetry.hpp"
#include "ivnet/svc/loadgen.hpp"
#include "ivnet/svc/service.hpp"

namespace {

using namespace ivnet;
using namespace ivnet::svc;

constexpr std::size_t kWorkerCounts[] = {1, 2, 8};
constexpr double kOfferedMultipliers[] = {0.25, 0.5, 1.0, 2.0};
constexpr std::size_t kClosedLoopRequests = 384;
constexpr std::size_t kOpenLoopRequests = 400;
constexpr std::uint64_t kSeed = 41;

/// Request template shared by every point: short decode dialogues at a
/// mid-waterfall SNR, heavy enough to cost real DSP per request and light
/// enough that a 1-worker saturation run stays under a second.
LoadState decode_state(double relative_rate) {
  LoadState state;
  state.rate_rps = relative_rate;
  state.kind = RequestKind::kDecode;
  state.trials = 2;
  state.antennas = 2;
  state.snr_db = 14.0;
  return state;
}

/// 2-state MMPP: calm (0.5x mean) and surge (1.5x mean), sticky states
/// (p_stay = 0.9) so bursts last ~10 arrivals. rate_scale carries the
/// offered load; the stationary mix is 50/50, so the mean offered rate is
/// rate_scale requests/s exactly.
LoadGenConfig mmpp_config(double offered_rps, std::size_t requests) {
  LoadGenConfig config;
  config.states = {decode_state(0.5), decode_state(1.5)};
  config.transition = {0.9, 0.1, 0.1, 0.9};
  config.requests = requests;
  config.seed = kSeed;
  config.rate_scale = offered_rps;
  return config;
}

ServiceConfig service_config(std::size_t workers) {
  ServiceConfig config;
  config.workers = workers;
  config.queue_depth = 256;
  return config;
}

struct SaturationPoint {
  std::size_t workers = 0;
  double throughput_rps = 0.0;
  double service_p50_s = 0.0;
  double service_p99_s = 0.0;
  std::uint64_t digest = 0;
};

struct SaturationOptions {
  bool telemetry = false;  ///< attach windows + exemplars + flight recorder
  bool timeline = false;   ///< keep per-request completion timestamps
};

SaturationPoint measure_saturation(std::size_t workers,
                                   const SaturationOptions& options = {},
                                   std::vector<TimelinePoint>* timeline_out =
                                       nullptr) {
  // Rate is irrelevant closed-loop (timestamps are ignored); the schedule
  // only supplies the deterministic request stream.
  const auto schedule = generate_schedule(mmpp_config(1.0, kClosedLoopRequests));
  ServiceConfig config = service_config(workers);
  std::optional<obs::ServiceTelemetry> telemetry;
  std::optional<obs::FlightRecorder> flight;
  if (options.telemetry) {
    telemetry.emplace();
    flight.emplace(workers + 1);
    config.telemetry = &*telemetry;
    config.flight = &*flight;
    config.telemetry_clock = TelemetryClock::kSim;
  }
  LatencyCollector collector(options.timeline);
  InventoryService service(config, collector.sink());
  const ReplayResult replay =
      run_closed_loop(service, collector, schedule, 4 * workers);
  collector.wait_for_completed(replay.accepted);
  service.stop();
  if (timeline_out != nullptr) *timeline_out = collector.timeline();

  SaturationPoint point;
  point.workers = workers;
  point.throughput_rps =
      replay.wall_s > 0.0 ? static_cast<double>(replay.accepted) / replay.wall_s
                          : 0.0;
  point.service_p50_s = collector.service_quantile(0.50);
  point.service_p99_s = collector.service_quantile(0.99);
  point.digest = collector.digest();
  return point;
}

struct LoadPoint {
  std::size_t workers = 0;
  double multiplier = 0.0;
  double offered_rps = 0.0;
  double completed_rps = 0.0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  double queue_wait_p50_s = 0.0;
  double queue_wait_p99_s = 0.0;
  double service_p50_s = 0.0;
  double service_p99_s = 0.0;
  double latency_p99_s = 0.0;
};

LoadPoint measure_open_loop(std::size_t workers, double multiplier,
                            double saturation_rps) {
  const double offered = multiplier * saturation_rps;
  const auto schedule =
      generate_schedule(mmpp_config(offered, kOpenLoopRequests));
  LatencyCollector collector;
  InventoryService service(service_config(workers), collector.sink());
  const ReplayResult replay = run_open_loop(service, schedule);
  // Submission is done; everything accepted will complete during the drain.
  service.stop();

  LoadPoint point;
  point.workers = workers;
  point.multiplier = multiplier;
  point.offered_rps = offered;
  point.accepted = replay.accepted;
  point.rejected = replay.rejected;
  const double span_s = schedule.empty() ? 0.0 : schedule.back().t_s;
  point.completed_rps =
      span_s > 0.0 ? static_cast<double>(collector.completed()) / span_s : 0.0;
  point.queue_wait_p50_s = collector.queue_wait_quantile(0.50);
  point.queue_wait_p99_s = collector.queue_wait_quantile(0.99);
  point.service_p50_s = collector.service_quantile(0.50);
  point.service_p99_s = collector.service_quantile(0.99);
  point.latency_p99_s = collector.latency_quantile(0.99);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_service.json";
  bool want_timeline = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--timeline") == 0) {
      want_timeline = true;
    } else {
      out_path = argv[i];
    }
  }
  // The service pool IS the parallelism under test; keep the shared
  // parallel_for pool out of the picture entirely.
  set_parallel_threads(1);

  std::printf("inventory service, MMPP decode workload "
              "(2 states 0.5x/1.5x, p_stay 0.9, trials=2, snr 14 dB)\n\n");

  std::vector<SaturationPoint> saturation;
  std::printf("closed-loop saturation (%zu requests, window 4x workers)\n",
              kClosedLoopRequests);
  std::printf("%-8s %-12s %-12s %-12s\n", "workers", "req/s", "svc p50 ms",
              "svc p99 ms");
  for (const std::size_t workers : kWorkerCounts) {
    saturation.push_back(measure_saturation(workers));
    const SaturationPoint& p = saturation.back();
    std::printf("%-8zu %-12.0f %-12.3f %-12.3f\n", p.workers, p.throughput_rps,
                p.service_p50_s * 1e3, p.service_p99_s * 1e3);
  }

  // Identity gate: same request stream -> same response digest, at every
  // pool size and on a rerun.
  bool identical = true;
  for (const SaturationPoint& p : saturation) {
    identical = identical && p.digest == saturation.front().digest;
  }
  const SaturationPoint rerun = measure_saturation(kWorkerCounts[2]);
  identical = identical && rerun.digest == saturation.front().digest;
  std::printf("\nresponse digests across workers + rerun: %s\n\n",
              identical ? "identical" : "DIVERGED");

  // Telemetry overhead at the widest pool: interleave bare and instrumented
  // runs so machine noise hits both sides, keep the best of 3 each (best-of
  // is the standard anti-noise estimator for a saturation throughput).
  const std::size_t overhead_workers = kWorkerCounts[2];
  double best_off_rps = 0.0;
  double best_on_rps = 0.0;
  std::uint64_t overhead_digest_off = 0;
  std::uint64_t overhead_digest_on = 0;
  for (int round = 0; round < 3; ++round) {
    const SaturationPoint off = measure_saturation(overhead_workers);
    SaturationOptions with_telemetry;
    with_telemetry.telemetry = true;
    const SaturationPoint on = measure_saturation(overhead_workers,
                                                  with_telemetry);
    best_off_rps = std::max(best_off_rps, off.throughput_rps);
    best_on_rps = std::max(best_on_rps, on.throughput_rps);
    overhead_digest_off = off.digest;
    overhead_digest_on = on.digest;
  }
  // Telemetry must be an observer, never a participant: instrumented runs
  // answer with the exact same response bytes.
  identical = identical && overhead_digest_off == saturation.front().digest &&
              overhead_digest_on == saturation.front().digest;
  const double overhead_pct =
      best_off_rps > 0.0
          ? 100.0 * (best_off_rps - best_on_rps) / best_off_rps
          : 0.0;
  std::printf("telemetry overhead (workers=%zu, best of 3 interleaved)\n",
              overhead_workers);
  std::printf("%-16s %-16s %-12s\n", "off req/s", "on req/s", "overhead %");
  std::printf("%-16.0f %-16.0f %-12.2f\n\n", best_off_rps, best_on_rps,
              overhead_pct);

  std::vector<LoadPoint> points;
  std::printf("open-loop MMPP sweep (%zu requests per point)\n",
              kOpenLoopRequests);
  std::printf("%-8s %-8s %-10s %-9s %-12s %-12s %-12s %-12s\n", "workers",
              "mult", "offered/s", "rejected", "wait p50 ms", "wait p99 ms",
              "svc p99 ms", "e2e p99 ms");
  for (const std::size_t workers : kWorkerCounts) {
    const double sat = saturation[workers == 1 ? 0 : workers == 2 ? 1 : 2]
                           .throughput_rps;
    for (const double multiplier : kOfferedMultipliers) {
      points.push_back(measure_open_loop(workers, multiplier, sat));
      const LoadPoint& p = points.back();
      std::printf("%-8zu %-8.2f %-10.0f %-9zu %-12.3f %-12.3f %-12.3f "
                  "%-12.3f\n",
                  p.workers, p.multiplier, p.offered_rps, p.rejected,
                  p.queue_wait_p50_s * 1e3, p.queue_wait_p99_s * 1e3,
                  p.service_p99_s * 1e3, p.latency_p99_s * 1e3);
    }
  }

  JsonWriter w;
  w.begin_object();
  w.key("workload").begin_object()
      .field("name", "mmpp_decode")
      .field("states", static_cast<std::size_t>(2))
      .field("rate_mix", "0.5x/1.5x, p_stay 0.9")
      .field("trials_per_request", static_cast<std::size_t>(2))
      .field("snr_db", 14.0)
      .field("queue_depth", static_cast<std::size_t>(256))
      .field("seed", static_cast<std::size_t>(kSeed))
      .end_object();
  w.key("saturation").begin_array();
  for (const SaturationPoint& p : saturation) {
    w.begin_object()
        .field("workers", p.workers)
        .field("throughput_rps", p.throughput_rps)
        .field("service_p50_s", p.service_p50_s)
        .field("service_p99_s", p.service_p99_s)
        .end_object();
  }
  w.end_array();
  w.key("open_loop").begin_array();
  for (const LoadPoint& p : points) {
    w.begin_object()
        .field("workers", p.workers)
        .field("offered_multiplier", p.multiplier)
        .field("offered_rps", p.offered_rps)
        .field("completed_rps", p.completed_rps)
        .field("accepted", p.accepted)
        .field("rejected", p.rejected)
        .field("queue_wait_p50_s", p.queue_wait_p50_s)
        .field("queue_wait_p99_s", p.queue_wait_p99_s)
        .field("service_p50_s", p.service_p50_s)
        .field("service_p99_s", p.service_p99_s)
        .field("latency_p99_s", p.latency_p99_s)
        .end_object();
  }
  w.end_array();
  w.key("telemetry_overhead").begin_object()
      .field("workers", overhead_workers)
      .field("telemetry_off_rps", best_off_rps)
      .field("telemetry_on_rps", best_on_rps)
      .field("overhead_pct", overhead_pct)
      .end_object();
  if (want_timeline) {
    // Latency-vs-time column: one timeline-enabled saturation run at the
    // widest pool, binned so warmup vs steady state reads at a glance.
    std::vector<TimelinePoint> timeline;
    SaturationOptions with_timeline;
    with_timeline.timeline = true;
    measure_saturation(overhead_workers, with_timeline, &timeline);
    constexpr std::size_t kBins = 20;
    const double span_s =
        timeline.empty()
            ? 0.0
            : std::max_element(timeline.begin(), timeline.end(),
                               [](const TimelinePoint& a,
                                  const TimelinePoint& b) {
                                 return a.t_s < b.t_s;
                               })
                  ->t_s;
    std::vector<std::size_t> bin_count(kBins, 0);
    std::vector<double> bin_latency_sum(kBins, 0.0);
    for (const TimelinePoint& p : timeline) {
      std::size_t bin =
          span_s > 0.0
              ? static_cast<std::size_t>(p.t_s / span_s *
                                         static_cast<double>(kBins))
              : 0;
      bin = std::min(bin, kBins - 1);
      ++bin_count[bin];
      bin_latency_sum[bin] += p.latency_s;
    }
    w.key("latency_timeline").begin_array();
    for (std::size_t bin = 0; bin < kBins; ++bin) {
      const double mid =
          span_s * (static_cast<double>(bin) + 0.5) / static_cast<double>(kBins);
      w.begin_object()
          .field("t_s", mid)
          .field("count", bin_count[bin])
          .field("mean_latency_s",
                 bin_count[bin] > 0
                     ? bin_latency_sum[bin] / static_cast<double>(bin_count[bin])
                     : 0.0)
          .end_object();
    }
    w.end_array();
    std::printf("latency timeline: %zu completions binned into %zu bins\n",
                timeline.size(), kBins);
  }
  w.field("responses_identical", identical);
  w.end_object();

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(w.str().c_str(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return identical ? 0 : 1;
}
