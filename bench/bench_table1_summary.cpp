// Headline summary: the paper's abstract/intro claims in one table, each
// recomputed live (reduced trial counts; the per-figure benches carry the
// full versions). Also emits the table as JSON for dashboards.
#include <cstdio>

#include "ivnet/common/json.hpp"
#include "ivnet/common/units.hpp"
#include "ivnet/common/stats.hpp"
#include "ivnet/sim/calibration.hpp"
#include "ivnet/sim/experiment.hpp"

int main() {
  using namespace ivnet;

  const auto plan = FrequencyPlan::paper_default();
  Rng rng(1);

  // Claim 1: power gain scales with antennas without channel knowledge.
  const auto tank = water_tank_scenario(0.05, calib::kGainSetupStandoffM);
  const auto trials10 =
      run_gain_trials(tank, standard_tag(), plan, 80, rng);
  const double cib_median = summarize_cib(trials10).p50;
  const double base_median = summarize_baseline(trials10).p50;

  // Claim 2: 8.5x over an optimized multi-antenna baseline.
  std::vector<double> ratios;
  for (const auto& t : trials10) {
    if (t.baseline_gain > 0) ratios.push_back(t.cib_gain / t.baseline_gain);
  }
  const double ratio_median = median(ratios);

  // Claim 3: >10 cm depth in fluids for millimeter-sized sensors.
  const double mini_depth =
      max_water_depth(miniature_tag(), plan.truncated(8), 11, rng);

  // Claim 4: 7.6x / 38 m RFID range extension.
  const double r1 = max_air_range(standard_tag(), plan.truncated(1), 11, rng);
  const double r8 =
      max_air_range(standard_tag(), plan.truncated(8), 11, rng, 80.0);

  // Claim 5: deep-tissue (gastric) communication works for the standard
  // tag at least sometimes; subcutaneous always.
  SessionConfig session;
  session.plan = plan.truncated(8);
  session.reader.averaging_periods = 10;
  int gastric_ok = 0;
  for (int k = 0; k < 6; ++k) {
    Scenario s = swine_gastric_scenario(calib::kSwineStandoffM,
                                        rng.uniform(0.0, 0.065));
    s.orientation_rad = rng.uniform(0.0, kPi);
    gastric_ok += run_gen2_session(s, standard_tag(), session, rng)
                      .rn16_decoded;
  }
  const bool subcut_ok =
      run_gen2_session(swine_subcutaneous_scenario(calib::kSwineStandoffM),
                       standard_tag(), session, rng)
          .rn16_decoded;

  std::printf("=== Headline claims, recomputed ===\n\n");
  std::printf("%-52s %-18s %s\n", "claim", "paper", "measured");
  std::printf("%-52s %-18s %.0fx\n",
              "peak power gain, 10 antennas, blind channel", "~85x",
              cib_median);
  std::printf("%-52s %-18s %.0fx\n", "10-antenna baseline gain", "~10x",
              base_median);
  std::printf("%-52s %-18s %.1fx\n",
              "CIB over optimized multi-antenna baseline", "up to 8.5x",
              ratio_median);
  std::printf("%-52s %-18s %.1f cm\n",
              "mm-sized sensor depth in fluid (8 antennas)", ">10 cm (11)",
              mini_depth * 100.0);
  std::printf("%-52s %-18s %.1f m (%.1fx)\n", "passive RFID range extension",
              "38 m (7.6x)", r8, r1 > 0 ? r8 / r1 : 0.0);
  std::printf("%-52s %-18s %d/6\n", "gastric sessions (standard tag)", "3/6",
              gastric_ok);
  std::printf("%-52s %-18s %s\n", "subcutaneous session", "works",
              subcut_ok ? "works" : "FAILS");

  // JSON for dashboards (always printed last; pipe-friendly).
  JsonWriter w;
  w.begin_object();
  w.field("cib_gain_median_n10", cib_median);
  w.field("baseline_gain_median_n10", base_median);
  w.field("cib_over_baseline_median", ratio_median);
  w.field("mini_tag_water_depth_m", mini_depth);
  w.field("rfid_range_1ant_m", r1);
  w.field("rfid_range_8ant_m", r8);
  w.field("gastric_success_of_6", gastric_ok);
  w.field("subcutaneous_ok", subcut_ok);
  w.end_object();
  std::printf("\n%s\n", w.str().c_str());
  return 0;
}
