// Sessions/sec headline for the batched run-to-completion pipeline: the
// x13-style impairment waterfall workload (7 SNR points, retries=2,
// BER probe + full session per trial) timed scalar vs batched at batch
// sizes 1/8/32/128 and pool sizes 1/2/8. Every timed run's JSON is also
// compared against the scalar single-thread reference, so the table only
// ever reports speedups for BITWISE-identical results.
//
//   ./bench_throughput [output-path]    (default: BENCH_throughput.json)
//
// Output: a human-readable table on stdout plus BENCH_throughput.json with
// one row per (threads, batch_size) — sessions_per_sec, speedup over the
// same-thread scalar run, and the identity flag — and a headline block
// (best batched vs scalar at the largest pool).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "ivnet/common/json.hpp"
#include "ivnet/common/parallel.hpp"
#include "ivnet/common/rng.hpp"
#include "ivnet/impair/waterfall.hpp"
#include "ivnet/signal/gauss.hpp"

namespace {

using namespace ivnet;

/// The x13 waterfall workload (bench_x13_impairment_waterfall's sweep):
/// 7 SNR points spanning clean to collapsed, two retries, 128-bit BER
/// frames. One trial = one raw-BER probe + one full charge->EPC session.
WaterfallConfig workload(std::size_t batch_size) {
  WaterfallConfig config;
  config.snr_points_db = {30.0, 24.0, 18.0, 12.0, 8.0, 4.0, 0.0};
  config.trials_per_point = 96;
  config.payload_bits = 128;
  config.link.recovery = RecoveryPolicy::retries(2);
  config.batch.batch_size = batch_size;
  return config;
}

std::string run_workload(std::size_t batch_size) {
  WaterfallConfig config = workload(batch_size);
  Rng rng(13);
  return waterfall_json(run_ber_waterfall(config, rng));
}

/// Wall-seconds per workload run (median of `reps` timed runs after one
/// warm-up, so a stray scheduling hiccup cannot skew a row).
double seconds_per_run(std::size_t batch_size, int reps) {
  (void)run_workload(batch_size);
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)run_workload(batch_size);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    times.push_back(dt.count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

struct Row {
  std::size_t threads;
  std::size_t batch_size;
  double sessions_per_sec;
  double speedup_vs_scalar;  // same-thread scalar baseline
  bool identical;            // JSON byte-equal to the scalar reference
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_throughput.json");
  const std::size_t thread_counts[] = {1, 2, 8};
  const std::size_t batch_sizes[] = {1, 8, 32, 128};
  constexpr int kReps = 3;

  const WaterfallConfig shape = workload(1);
  const double sessions_per_workload = static_cast<double>(
      shape.snr_points_db.size() * shape.trials_per_point);

  set_parallel_threads(1);
  const std::string reference = run_workload(1);

  std::printf("batched trial pipeline, x13 waterfall workload "
              "(%zu points x %zu trials, retries=2)\n",
              shape.snr_points_db.size(), shape.trials_per_point);
  std::printf("lockstep SIMD lanes: %s\n\n",
              signal::gauss_simd_enabled() ? "avx2+fma" : "scalar-fma");
  std::printf("%-8s %-8s %-14s %-10s %-9s\n", "threads", "batch",
              "sessions/s", "speedup", "identical");

  std::vector<Row> rows;
  for (const std::size_t threads : thread_counts) {
    set_parallel_threads(threads);
    double scalar_rate = 0.0;
    for (const std::size_t batch : batch_sizes) {
      const double seconds = seconds_per_run(batch, kReps);
      Row row;
      row.threads = threads;
      row.batch_size = batch;
      row.sessions_per_sec = sessions_per_workload / seconds;
      if (batch == 1) scalar_rate = row.sessions_per_sec;
      row.speedup_vs_scalar =
          scalar_rate > 0.0 ? row.sessions_per_sec / scalar_rate : 0.0;
      row.identical = run_workload(batch) == reference;
      rows.push_back(row);
      std::printf("%-8zu %-8zu %-14.0f %-10.2f %-9s\n", threads, batch,
                  row.sessions_per_sec, row.speedup_vs_scalar,
                  row.identical ? "yes" : "NO");
    }
  }
  set_parallel_threads(0);

  // Headline: best batched row vs the scalar row at the largest pool.
  double scalar8 = 0.0, best8 = 0.0;
  std::size_t best8_batch = 1;
  bool all_identical = true;
  for (const Row& row : rows) {
    all_identical = all_identical && row.identical;
    if (row.threads != thread_counts[2]) continue;
    if (row.batch_size == 1) scalar8 = row.sessions_per_sec;
    if (row.batch_size >= 32 && row.sessions_per_sec > best8) {
      best8 = row.sessions_per_sec;
      best8_batch = row.batch_size;
    }
  }
  const double headline = scalar8 > 0.0 ? best8 / scalar8 : 0.0;
  std::printf("\nheadline: %.0f sessions/s batched (batch %zu) vs %.0f "
              "scalar at %zu threads -> %.2fx, outputs %s\n",
              best8, best8_batch, scalar8, thread_counts[2], headline,
              all_identical ? "bitwise-identical" : "DIVERGED");

  JsonWriter w;
  w.begin_object();
  w.key("workload").begin_object()
      .field("name", "x13_waterfall")
      .field("snr_points", shape.snr_points_db.size())
      .field("trials_per_point", shape.trials_per_point)
      .field("payload_bits", shape.payload_bits)
      .field("max_attempts", shape.link.recovery.max_attempts)
      .field("sessions_per_run", sessions_per_workload)
      .field("simd", signal::gauss_simd_enabled())
      .end_object();
  w.key("rows").begin_array();
  for (const Row& row : rows) {
    w.begin_object()
        .field("threads", row.threads)
        .field("batch_size", row.batch_size)
        .field("sessions_per_sec", row.sessions_per_sec)
        .field("speedup_vs_scalar", row.speedup_vs_scalar)
        .field("identical", row.identical)
        .end_object();
  }
  w.end_array();
  w.key("headline").begin_object()
      .field("threads", thread_counts[2])
      .field("batch_size", best8_batch)
      .field("sessions_per_sec", best8)
      .field("scalar_sessions_per_sec", scalar8)
      .field("speedup", headline)
      .field("all_identical", all_identical)
      .end_object();
  w.end_object();

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(w.str().c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return all_identical ? 0 : 1;
}
