// X10 — Adaptive duty cycling (Sec. 2.3 / Sec. 3): at marginal depths the
// sensor cannot afford a query every CIB period; the reader-side scheduler
// interleaves charge-only periods so every attempted query finds a charged
// sensor. Compares a naive query-every-period policy against the adaptive
// scheduler across depth.
#include <cstdio>

#include "ivnet/cib/objective.hpp"
#include "ivnet/cib/scheduler.hpp"
#include "ivnet/harvester/harvester.hpp"
#include "ivnet/sim/calibration.hpp"
#include "ivnet/sim/experiment.hpp"

namespace {

using namespace ivnet;

/// Energy the tag banks over one CIB period at this depth (median channel).
double energy_per_period(double depth_m, Rng& rng) {
  const auto scen =
      water_tank_scenario(depth_m, calib::kRangeSetupStandoffM);
  const auto tag = standard_tag();
  const auto plan = FrequencyPlan::paper_default().truncated(8);
  const auto amps =
      array_amplitudes(scen, tag, 8, plan.center_hz(), rng);
  std::vector<double> phases(8);
  for (auto& p : phases) p = rng.phase();
  auto env = cib_envelope(plan.offsets_hz(), phases, amps, 1.0, 20000);
  const Harvester harvester(tag.harvester);
  return harvester.run(env, 20e3).harvested_energy_j;
}

}  // namespace

int main() {
  std::printf("=== X10: adaptive duty cycling at marginal depths ===\n\n");
  constexpr double kBurst = 3e-6;  // J per query+reply at the tag
  constexpr int kPeriods = 120;    // 2 minutes of 1 s periods

  std::printf("%-12s %-16s %-22s %-22s\n", "depth [cm]", "uJ/period",
              "naive ok/attempted", "adaptive ok/attempted");
  Rng rng(101);
  for (double depth_cm : {14.0, 17.0, 19.0, 21.0, 22.5}) {
    const double e = energy_per_period(depth_cm / 100.0, rng);

    // Naive: query every period; succeeds only if one period's energy
    // covers the burst.
    int naive_ok = 0;
    for (int k = 0; k < kPeriods; ++k) naive_ok += (e >= kBurst);

    // Adaptive: bank energy, query when the margin is met.
    SchedulerConfig cfg;
    cfg.burst_energy_j = kBurst;
    DutyCycleScheduler sched(cfg);
    int adaptive_ok = 0, adaptive_attempts = 0;
    for (int k = 0; k < kPeriods; ++k) {
      if (sched.on_period(e) == ScheduleAction::kQuery) {
        ++adaptive_attempts;
        if (sched.banked_energy_j() >= kBurst) {
          ++adaptive_ok;
          sched.on_reply();
        } else {
          sched.on_silence();
        }
      }
    }
    std::printf("%-12.1f %-16.2f %3d/%-18d %3d/%-18d\n", depth_cm, e * 1e6,
                naive_ok, kPeriods, adaptive_ok, adaptive_attempts);
  }

  std::printf("\nnaive polling wastes every attempt once one period's "
              "harvest drops below the burst cost; the adaptive scheduler "
              "trades cadence for reliability (Sec. 2.3's accumulate-then-"
              "communicate duty cycling)\n");
  return 0;
}
