// X11 — Mobility robustness (Sec. 3.7): CIB vs channel-feedback MIMO under
// breathing motion. A hypothetical genie MIMO beamformer with fresh CSI
// beats CIB; give its estimate realistic staleness (the sensor can only be
// polled occasionally, and breathing moves it millimeters per second) and
// the precoded beam decoheres while CIB — which never needed an estimate —
// is untouched. This is the quantitative version of why channel-feedback
// beamforming "is not applicable for battery-free devices".
#include <cstdio>

#include "ivnet/cib/frequency_plan.hpp"
#include "ivnet/common/stats.hpp"
#include "ivnet/sim/mobility.hpp"

int main() {
  using namespace ivnet;

  const auto offsets = FrequencyPlan::paper_default().truncated(8).offsets_hz();
  MotionModel breathing;
  breathing.breathing_amplitude_m = 0.006;  // 6 mm respiratory displacement
  breathing.wavelength_m = 0.04;            // lambda in tissue at 915 MHz
  // Slow gastric drift on top of the breath: without it the estimate
  // re-coheres every exact breathing period.
  breathing.drift_m_per_s = 0.0008;

  std::printf("=== X11: CIB vs stale-CSI MIMO under breathing motion "
              "(8 antennas) ===\n");
  std::printf("motion: +/-%.0f mm at %.2f Hz, tissue wavelength %.0f mm\n\n",
              breathing.breathing_amplitude_m * 1e3, breathing.breathing_hz,
              breathing.wavelength_m * 1e3);

  std::printf("%-18s %-14s %-14s %-14s %s\n", "CSI staleness", "MIMO median",
              "MIMO p10", "CIB median", "CIB wins");
  Rng rng(111);
  for (double staleness : {0.0, 0.25, 0.5, 1.0, 1.5, 2.0}) {
    SampleSet mimo, cib;
    int wins = 0, samples = 0;
    for (int trial = 0; trial < 30; ++trial) {
      const std::vector<double> amps(8, 1.0);
      const TimeVaryingChannel tv(make_blind_channel(amps, rng), breathing);
      for (double t = staleness; t < staleness + 4.0; t += 0.8) {
        const double m = stale_mimo_amplitude(tv, t, staleness);
        const double c = cib_peak_amplitude_at(tv, t, offsets);
        mimo.add(m * m);
        cib.add(c * c);
        wins += (c > m);
        ++samples;
      }
    }
    std::printf("%-18.2f %-14.1f %-14.1f %-14.1f %d%%\n", staleness,
                mimo.median(), mimo.summary().p10, cib.median(),
                100 * wins / samples);
  }

  std::printf("\nfresh CSI (staleness 0): MIMO hits the N^2 = 64 bound and "
              "beats CIB everywhere — IF you could get it.\n");
  std::printf("one breath later the estimate is junk; CIB never had one "
              "and never cared (Sec. 3.7 robustness to mobility).\n");
  return 0;
}
