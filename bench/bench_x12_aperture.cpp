// X12 — The miniature-antenna challenge (Sec. 2.2.2) quantified: sweep the
// tag's effective aperture (its physical size) and report the achievable
// water depth with 1 vs 8 CIB antennas. Eq. 3 says harvested power scales
// linearly with aperture; the exponential tissue loss converts every
// aperture decade into a fixed depth step — and CIB's gain buys the same
// step back, which is why millimeter sensors become reachable at all.
#include <cstdio>

#include "ivnet/sim/calibration.hpp"
#include "ivnet/sim/experiment.hpp"

int main() {
  using namespace ivnet;

  std::printf("=== X12: tag aperture vs achievable water depth ===\n");
  std::printf("paper Sec. 2.2.2: harvested power ~ aperture (Eq. 3); the\n"
              "miniature tag's ~100x smaller aperture is the reason it dies "
              "at superficial depths without CIB\n\n");

  const auto plan = FrequencyPlan::paper_default();
  std::printf("%-18s %-14s %-16s %-16s %s\n", "aperture [cm^2]",
              "size class", "depth 1 ant [cm]", "depth 8 ant [cm]",
              "CIB depth bonus");

  Rng rng(12);
  struct Row {
    double cap_m2;
    const char* label;
  };
  const Row rows[] = {
      {3.0e-3, "credit-card tag"}, {1.0e-3, "large label"},
      {3.0e-4, "small label"},     {1.0e-4, "button"},
      {2.5e-5, "millimeter tag"},  {6.0e-6, "injectable"},
  };
  for (const auto& row : rows) {
    TagConfig tag = standard_tag();
    tag.antenna = Antenna("swept", 2.0, row.cap_m2);
    tag.antenna.set_polarization_factor(0.5);
    const double d1 =
        max_water_depth(tag, plan.truncated(1), 11, rng) * 100.0;
    const double d8 =
        max_water_depth(tag, plan.truncated(8), 11, rng) * 100.0;
    std::printf("%-18.3f %-14s %-16.1f %-16.1f +%.1f cm\n",
                row.cap_m2 * 1e4, row.label, d1, d8, d8 - d1);
  }

  std::printf("\nreadings: every ~10x aperture loss costs a fixed depth "
              "step (exponential medium); 8-antenna CIB pays a ~constant "
              "step back for every size class — which is exactly how the "
              "paper reaches millimeter sensors at >10 cm\n");
  return 0;
}
