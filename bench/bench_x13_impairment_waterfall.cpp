// X13 — Impairment waterfall and recovery ablation: BER/PER vs SNR through
// the impairment chain, session success across the media x SNR x antenna
// matrix, and what reader-side retries buy back on a bursty channel. This
// is the experiment the impair/ layer exists for: quantifying how far the
// clean-channel link budget degrades before the Gen2 session collapses,
// and how much of the loss is recoverable in the reader alone.
//
// Runs on the sweep-campaign engine (one cell per sweep point) with the
// metrics registry installed, so the snapshot now carries the campaign
// counters (cells computed/resumed, cache hits, per-cell latency) next to
// the session aggregates. Writes the snapshot to BENCH_x13_metrics.json or
// the path in argv[1]; pass a journal path as argv[2] to checkpoint. Set
// IVNET_SHARDS=N to split the campaign across an in-process N-worker
// fleet over per-shard journals (merged output stays byte-identical).
#include <cstdio>
#include <string>

#include "ivnet/common/json.hpp"
#include "ivnet/obs/obs.hpp"
#include "ivnet/sim/campaign.hpp"

namespace {

using namespace ivnet;

double num(const CellOutcome& outcome, const char* key) {
  return json_find_number(outcome.result_json, key, 0.0);
}

// Cell layout (see x13_campaign): 7 waterfall SNR points, then the
// 3 media x 4 SNR x 3 antenna matrix, 4 retry-ablation points, 7 depths.
constexpr std::size_t kWaterfallCells = 7;
constexpr std::size_t kMatrixSnrs = 4;
constexpr std::size_t kMatrixAntennas = 3;
constexpr std::size_t kMatrixCells = 3 * kMatrixSnrs * kMatrixAntennas;
constexpr std::size_t kRetryCells = 4;

void print_waterfall(const CampaignReport& report) {
  std::printf("--- BER/PER waterfall (FM0 uplink, 128-bit frames) ---\n");
  std::printf("%-10s %-12s %-12s %-12s %-10s\n", "SNR [dB]", "BER", "PER",
              "session", "retries");
  for (std::size_t i = 0; i < kWaterfallCells; ++i) {
    const auto& outcome = report.outcomes[i];
    std::printf("%-10.1f %-12.4f %-12.3f %-12.3f %-10.2f\n",
                outcome.spec.param_num("snr_db", 0.0), num(outcome, "ber"),
                num(outcome, "per"), num(outcome, "session_success"),
                num(outcome, "mean_retries"));
  }
}

void print_matrix(const CampaignReport& report) {
  std::printf("\n--- session success: media x SNR x antennas (retries=2) "
              "---\n");
  std::printf("%-10s %-10s  N=1       N=3       N=10\n", "medium",
              "SNR [dB]");
  for (std::size_t row = 0; row < kMatrixCells / kMatrixAntennas; ++row) {
    const std::size_t base = kWaterfallCells + row * kMatrixAntennas;
    const auto& first = report.outcomes[base];
    std::printf("%-10s %-10.1f",
                first.spec.param("medium", "?").c_str(),
                first.spec.param_num("snr_db", 0.0));
    for (std::size_t k = 0; k < kMatrixAntennas; ++k) {
      std::printf("  %-9.2f", num(report.outcomes[base + k], "success_rate"));
    }
    std::printf("\n");
  }
}

void print_retry_ablation(const CampaignReport& report) {
  std::printf("\n--- retry ablation on a bursty channel (SNR 30 dB, "
              "150 bursts/s) ---\n");
  std::printf("%-10s %-10s %-10s %-10s\n", "retries", "success", "timeouts",
              "backoff[ms]");
  const std::size_t base = kWaterfallCells + kMatrixCells;
  for (std::size_t i = 0; i < kRetryCells; ++i) {
    const auto& outcome = report.outcomes[base + i];
    std::printf("%-10.0f %-10.3f %-10.2f %-10.2f\n",
                outcome.spec.param_num("retries", 0.0),
                num(outcome, "success"), num(outcome, "timeouts"),
                num(outcome, "backoff_ms"));
  }
}

void print_depth_curve(const CampaignReport& report) {
  std::printf("\n--- session success vs muscle depth (10 antennas, "
              "retries=1) ---\n");
  std::printf("%-10s %-12s %-10s\n", "depth [m]", "loss [dB]", "success");
  const std::size_t base = kWaterfallCells + kMatrixCells + kRetryCells;
  for (std::size_t i = base; i < report.outcomes.size(); ++i) {
    const auto& outcome = report.outcomes[i];
    std::printf("%-10.2f %-12.1f %-10.3f\n",
                outcome.spec.param_num("depth_m", 0.0),
                num(outcome, "loss_db"), num(outcome, "success_rate"));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_path =
      argc > 1 ? argv[1] : "BENCH_x13_metrics.json";
  obs::MetricsRegistry registry;
  obs::install(obs::Sink{.metrics = &registry});

  const CampaignReport report =
      run_bench_campaign(x13_campaign(), argc > 2 ? argv[2] : "");

  std::printf("=== X13: impairment waterfall and reader recovery ===\n\n");
  print_waterfall(report);
  print_matrix(report);
  print_retry_ablation(report);
  print_depth_curve(report);
  std::printf("\ncampaign: %zu cells (%zu computed, %zu resumed, %zu cache "
              "hits)\n",
              report.cells_total, report.cells_computed, report.cells_resumed,
              report.cache_hits);

  obs::install_null();
  std::FILE* f = std::fopen(metrics_path.c_str(), "w");
  if (f != nullptr) {
    const std::string snap = registry.snapshot_json();
    std::fwrite(snap.data(), 1, snap.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  return 0;
}
