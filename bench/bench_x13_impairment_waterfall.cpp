// X13 — Impairment waterfall and recovery ablation: BER/PER vs SNR through
// the impairment chain, session success across the media x SNR x antenna
// matrix, and what reader-side retries buy back on a bursty channel. This
// is the experiment the impair/ layer exists for: quantifying how far the
// clean-channel link budget degrades before the Gen2 session collapses,
// and how much of the loss is recoverable in the reader alone.
//
// Runs with the metrics registry installed and writes the aggregate
// counters (sessions, retries, decode outcomes, brownouts, ...) to
// BENCH_x13_metrics.json, or to the path in argv[1].
#include <cstdio>
#include <string>

#include "ivnet/impair/link_session.hpp"
#include "ivnet/impair/waterfall.hpp"
#include "ivnet/obs/obs.hpp"

namespace {

using namespace ivnet;

void print_waterfall() {
  std::printf("--- BER/PER waterfall (FM0 uplink, 128-bit frames) ---\n");
  std::printf("%-10s %-12s %-12s %-12s %-10s\n", "SNR [dB]", "BER", "PER",
              "session", "retries");
  WaterfallConfig config;
  config.snr_points_db = {30.0, 24.0, 18.0, 12.0, 8.0, 4.0, 0.0};
  config.trials_per_point = 64;
  config.link.recovery = RecoveryPolicy::retries(2);
  Rng rng(13);
  for (const auto& p : run_ber_waterfall(config, rng)) {
    std::printf("%-10.1f %-12.4f %-12.3f %-12.3f %-10.2f\n", p.snr_db, p.ber,
                p.per, p.session_success_rate, p.mean_retries);
  }
}

void print_matrix() {
  std::printf("\n--- session success: media x SNR x antennas (retries=2) "
              "---\n");
  MatrixConfig config;
  config.media = {{"water", 2.0}, {"muscle", 6.0}, {"gastric", 9.0}};
  config.snr_points_db = {30.0, 20.0, 10.0, 0.0};
  config.antenna_counts = {1, 3, 10};
  config.trials_per_cell = 48;
  config.link.recovery = RecoveryPolicy::retries(2);
  Rng rng(17);
  const auto cells = run_session_matrix(config, rng);
  std::printf("%-10s %-10s", "medium", "SNR [dB]");
  for (const auto n : config.antenna_counts) {
    std::printf("  N=%-7zu", n);
  }
  std::printf("\n");
  for (std::size_t i = 0; i < cells.size();
       i += config.antenna_counts.size()) {
    std::printf("%-10s %-10.1f", cells[i].medium.c_str(), cells[i].snr_db);
    for (std::size_t k = 0; k < config.antenna_counts.size(); ++k) {
      std::printf("  %-9.2f", cells[i + k].success_rate);
    }
    std::printf("\n");
  }
}

void print_retry_ablation() {
  std::printf("\n--- retry ablation on a bursty channel (SNR 30 dB, "
              "150 bursts/s) ---\n");
  std::printf("%-10s %-10s %-10s %-10s\n", "retries", "success", "timeouts",
              "backoff[ms]");
  for (const std::size_t retries : {0u, 1u, 2u, 3u}) {
    ImpairedLinkConfig config;
    config.snr_db = 30.0;
    config.impair.bursts = {.rate_hz = 150.0, .mean_duration_s = 5e-4,
                            .depth_db = 40.0};
    config.recovery = RecoveryPolicy::retries(retries);
    const std::size_t trials = 200;
    std::size_t ok = 0, timeouts = 0;
    double backoff = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      Rng rng = Rng::stream(23, t);
      const auto report = run_impaired_link_session(config, rng);
      ok += report.success;
      timeouts += report.recovery.timeouts;
      backoff += report.recovery.backoff_total_s;
    }
    std::printf("%-10zu %-10.3f %-10.2f %-10.2f\n", retries,
                static_cast<double>(ok) / trials,
                static_cast<double>(timeouts) / trials,
                1e3 * backoff / trials);
  }
}

void print_depth_curve() {
  std::printf("\n--- session success vs muscle depth (10 antennas, "
              "retries=1) ---\n");
  std::printf("%-10s %-12s %-10s\n", "depth [m]", "loss [dB]", "success");
  DepthSweepConfig config;
  config.depths_m = {0.01, 0.03, 0.05, 0.08, 0.10, 0.12, 0.15};
  config.trials_per_point = 64;
  config.link.num_antennas = 10;
  config.link.recovery = RecoveryPolicy::retries(1);
  Rng rng(29);
  for (const auto& p : run_success_vs_depth(config, rng)) {
    std::printf("%-10.2f %-12.1f %-10.3f\n", p.depth_m, p.medium_loss_db,
                p.success_rate);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_path =
      argc > 1 ? argv[1] : "BENCH_x13_metrics.json";
  obs::MetricsRegistry registry;
  obs::install(obs::Sink{.metrics = &registry});

  std::printf("=== X13: impairment waterfall and reader recovery ===\n\n");
  print_waterfall();
  print_matrix();
  print_retry_ablation();
  print_depth_curve();

  obs::install_null();
  std::FILE* f = std::fopen(metrics_path.c_str(), "w");
  if (f != nullptr) {
    const std::string snap = registry.snapshot_json();
    std::fwrite(snap.data(), 1, snap.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote %s\n", metrics_path.c_str());
  }
  return 0;
}
