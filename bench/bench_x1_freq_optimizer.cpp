// X1 — Sec. 3.6 frequency-selection optimization: run the constrained
// Monte-Carlo search of Eq. 10 and validate the paper's published set
// {0, 7, 20, 49, 68, 73, 90, 113, 121, 137} Hz against it. Also ablates the
// flatness constraint (Eq. 9): an unconstrained set scores slightly higher
// peaks but violates the 199 Hz RMS bound that keeps queries decodable.
//
// The large-N sweep (argv[1] -> BENCH_planner.json) then benchmarks the
// delta evaluator against the naive O(N * steps) full pass at
// N in {10, 32, 64, 128}, gated on score identity: the delta score after a
// committed move sequence must be memcmp-identical to the from-scratch
// full_score rebuild, and must agree with an independently coded
// double-precision direct evaluation to 1e-6 relative. Timings (speedup,
// annealed end-to-end seconds) are informational; the gates are not.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "ivnet/cib/delta_objective.hpp"
#include "ivnet/cib/frequency_plan.hpp"
#include "ivnet/cib/objective.hpp"
#include "ivnet/cib/optimizer.hpp"
#include "ivnet/common/json.hpp"
#include "ivnet/common/units.hpp"

namespace {

using namespace ivnet;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Independent naive comparator: the original-style direct evaluation —
/// per sample, sum cos/sin over ALL N tones in double precision, then the
/// same peak scan + parabolic refinement. Deliberately coded from the
/// definition (no incremental rotation, no fixed point) so agreement with
/// the delta evaluator cross-checks both implementations.
double naive_score(const std::vector<double>& offsets,
                   const std::vector<double>& phases, std::size_t trials,
                   std::size_t steps, double dt) {
  const std::size_t n = offsets.size();
  double total = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    const double* ph = phases.data() + t * n;
    double best_sq = -1.0;
    std::size_t best = 0;
    double prev_sq = 0.0, y0 = 0.0, y2 = 0.0;
    bool capture_next = false;
    for (std::size_t s = 0; s < steps; ++s) {
      const double time = dt * static_cast<double>(s);
      double re = 0.0, im = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double a = kTwoPi * offsets[i] * time + ph[i];
        re += std::cos(a);
        im += std::sin(a);
      }
      const double sq = re * re + im * im;
      if (capture_next) {
        y2 = sq;
        capture_next = false;
      }
      if (sq > best_sq) {
        best_sq = sq;
        best = s;
        y0 = prev_sq;
        capture_next = true;
      }
      prev_sq = sq;
    }
    double peak = std::sqrt(best_sq);
    if (best != 0 && best + 1 < steps) {
      const double y1 = best_sq;
      const double denom = y0 - 2.0 * y1 + y2;
      if (std::abs(denom) >= 1e-12) {
        const double delta = 0.5 * (y0 - y2) / denom;
        peak = std::sqrt(std::max(y1 - 0.25 * (y0 - y2) * delta, y1));
      }
    }
    total += peak;
  }
  return total / static_cast<double>(trials);
}

/// The delta state's phase draws, replicated per its documented contract
/// (one stream base from score_seed, one sub-stream per trial, tone i =
/// the trial's i-th phase draw).
std::vector<double> replicate_phases(std::uint64_t score_seed,
                                     std::size_t trials, std::size_t n) {
  Rng seed_rng(score_seed);
  const std::uint64_t base = seed_rng();
  std::vector<double> phases(trials * n);
  for (std::size_t t = 0; t < trials; ++t) {
    Rng trial_rng = Rng::stream(base, t);
    for (std::size_t i = 0; i < n; ++i) phases[t * n + i] = trial_rng.phase();
  }
  return phases;
}

bool write_file(const char* path, const std::string& text) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_x1: cannot write %s\n", path);
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {

  const FlatnessConstraint constraint;
  std::printf("=== X1: Eq. 10 frequency optimization (N = 10) ===\n");
  std::printf("RMS limit (Eq. 9, alpha=0.5, dt=800us): %.1f Hz "
              "(paper: 199 Hz)\n\n",
              constraint.rms_limit_hz());

  OptimizerConfig cfg;
  cfg.num_antennas = 10;
  cfg.mc_trials = 48;
  cfg.iterations = 120;
  cfg.restarts = 2;
  FrequencyOptimizer opt(cfg);
  Rng rng(1);
  const auto result = opt.optimize(rng);

  std::printf("optimized set:");
  for (double f : result.offsets_hz) std::printf(" %.0f", f);
  std::printf("\n  E[peak amplitude] = %.2f / 10, RMS %.1f Hz, "
              "%zu evaluations\n\n",
              result.score, result.rms_hz, result.evaluations);

  const auto paper = FrequencyPlan::paper_default();
  const double paper_score = opt.score(paper.offsets_hz());
  std::printf("paper's published set:");
  for (double f : paper.offsets_hz()) std::printf(" %.0f", f);
  std::printf("\n  E[peak amplitude] = %.2f / 10, RMS %.1f Hz, satisfies "
              "Eq. 9: %s\n\n",
              paper_score, paper.rms_offset_hz(),
              paper.satisfies(constraint) ? "yes" : "NO");

  std::printf("paper set / optimized set score: %.1f%%\n",
              100.0 * paper_score / result.score);

  // Ablation: drop the constraint.
  OptimizerConfig loose = cfg;
  loose.constraint.query_duration_s = 80e-6;  // 10x looser RMS bound
  loose.mc_trials = 24;
  loose.iterations = 40;
  loose.restarts = 1;
  FrequencyOptimizer opt_loose(loose);
  Rng rng2(2);
  const auto unconstrained = opt_loose.optimize(rng2);
  std::printf("\nablation - 10x looser flatness bound (RMS limit %.0f Hz):\n",
              loose.constraint.rms_limit_hz());
  std::printf("  score %.2f vs constrained %.2f (+%.1f%%), but RMS %.0f Hz "
              "breaks 800 us query decoding (Eq. 9)\n",
              unconstrained.score, result.score,
              100.0 * (unconstrained.score / result.score - 1.0),
              unconstrained.rms_hz);

  // --- Large-N sweep: naive full pass vs delta evaluator ----------------
  std::printf("\n=== Large-N planner: naive vs delta evaluation ===\n");
  const char* out_path = argc > 1 ? argv[1] : "BENCH_planner.json";
  constexpr std::size_t kSweepN[] = {10, 32, 64, 128};
  constexpr std::size_t kTrials = 16;
  constexpr std::uint64_t kScoreSeed = 1234;
  bool gates_ok = true;

  JsonWriter w;
  w.begin_object();
  w.field("bench", "planner");
  w.field("mc_trials", kTrials);
  w.key("rows").begin_array();
  for (const std::size_t n : kSweepN) {
    const FlatnessConstraint c;
    const double limit = c.rms_limit_hz();
    const double cap =
        std::max(std::floor(limit * std::sqrt(static_cast<double>(n))),
                 static_cast<double>(n));
    DeltaEvalConfig eval;
    eval.mc_trials = kTrials;
    eval.score_seed = kScoreSeed;
    eval.steps = DeltaEnvelopeState::planner_steps(cap, eval.t_max_s);
    const double dt = eval.t_max_s / static_cast<double>(eval.steps);

    // Deterministic spread start set within the cap.
    std::vector<double> offsets(n);
    for (std::size_t i = 0; i < n; ++i) {
      offsets[i] = std::floor(cap * static_cast<double>(i) /
                              static_cast<double>(n));
    }
    DeltaEnvelopeState state(offsets, eval);

    // Walk a deterministic committed-move sequence, then gate: the delta
    // score must be memcmp-identical to the from-scratch rebuild.
    Rng walk(99 + n);
    constexpr std::size_t kCommits = 24;
    for (std::size_t m = 0; m < kCommits; ++m) {
      const auto tone = static_cast<std::size_t>(
          walk.uniform_int(1, static_cast<std::int64_t>(n) - 1));
      const double proposed = static_cast<double>(
          walk.uniform_int(1, static_cast<std::int64_t>(cap)));
      state.commit_move(tone, proposed);
    }
    const double delta_score = state.score();
    const double full = state.full_score(state.offsets_hz());
    const bool identical =
        std::memcmp(&delta_score, &full, sizeof(double)) == 0;

    // Naive agreement at the same set/grid/phases (tolerance oracle).
    const std::vector<double> current(state.offsets_hz().begin(),
                                      state.offsets_hz().end());
    const auto phases = replicate_phases(kScoreSeed, kTrials, n);
    const double naive = naive_score(current, phases, kTrials, eval.steps, dt);
    const double rel_err =
        std::abs(delta_score - naive) / std::max(std::abs(naive), 1e-300);
    const bool agrees = rel_err <= 1e-6;
    gates_ok = gates_ok && identical && agrees;

    // Timings (informational): naive full evaluations vs delta move scores.
    const std::size_t naive_reps = n >= 128 ? 1 : 2;
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < naive_reps; ++r) {
      (void)naive_score(current, phases, kTrials, eval.steps, dt);
    }
    const double naive_s = seconds_since(t0) / static_cast<double>(naive_reps);
    constexpr std::size_t kMoveReps = 32;
    t0 = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < kMoveReps; ++r) {
      const auto tone = static_cast<std::size_t>(
          walk.uniform_int(1, static_cast<std::int64_t>(n) - 1));
      const double proposed = static_cast<double>(
          walk.uniform_int(1, static_cast<std::int64_t>(cap)));
      (void)state.score_move(tone, proposed);
    }
    const double delta_s = seconds_since(t0) / static_cast<double>(kMoveReps);
    const double speedup = delta_s > 0.0 ? naive_s / delta_s : 0.0;

    // Annealed end-to-end at this N (the "N=128 in minutes" claim).
    OptimizerConfig plan_cfg;
    plan_cfg.num_antennas = n;
    plan_cfg.mc_trials = kTrials;
    plan_cfg.restarts = 1;
    plan_cfg.score_seed = kScoreSeed;
    AnnealConfig anneal;
    anneal.moves = 200;
    FrequencyOptimizer planner(plan_cfg);
    Rng plan_rng(1);
    t0 = std::chrono::steady_clock::now();
    const auto annealed = planner.optimize_annealed(anneal, plan_rng);
    const double anneal_s = seconds_since(t0);

    w.begin_object();
    w.field("n", n);
    w.field("steps", eval.steps);
    w.field("score_delta", delta_score);
    w.field("score_full", full);
    w.field("score_naive", naive);
    w.field("memcmp_identical", identical);
    w.field("naive_rel_err", rel_err);
    w.field("naive_eval_s", naive_s);
    w.field("delta_move_s", delta_s);
    w.field("speedup", speedup);
    w.field("anneal_moves", anneal.moves);
    w.field("anneal_s", anneal_s);
    w.field("anneal_score", annealed.score);
    w.end_object();

    std::printf(
        "N=%3zu steps=%6zu  naive %8.3f ms/eval, delta %8.3f ms/move "
        "(%.0fx)  identity %s, naive rel err %.1e  anneal(%zu mv) %.2fs\n",
        n, eval.steps, naive_s * 1e3, delta_s * 1e3, speedup,
        identical ? "ok" : "FAIL", rel_err, anneal.moves, anneal_s);
  }
  w.end_array();
  w.field("gates_ok", gates_ok);
  w.end_object();

  if (!write_file(out_path, w.str() + "\n")) return 1;
  std::printf("wrote %s\n", out_path);
  if (!gates_ok) {
    std::fprintf(stderr,
                 "bench_x1: score-identity gate FAILED (delta vs full/naive "
                 "disagreement above)\n");
    return 1;
  }
  return 0;
}
