// X1 — Sec. 3.6 frequency-selection optimization: run the constrained
// Monte-Carlo search of Eq. 10 and validate the paper's published set
// {0, 7, 20, 49, 68, 73, 90, 113, 121, 137} Hz against it. Also ablates the
// flatness constraint (Eq. 9): an unconstrained set scores slightly higher
// peaks but violates the 199 Hz RMS bound that keeps queries decodable.
#include <cstdio>

#include "ivnet/cib/frequency_plan.hpp"
#include "ivnet/cib/objective.hpp"
#include "ivnet/cib/optimizer.hpp"

int main() {
  using namespace ivnet;

  const FlatnessConstraint constraint;
  std::printf("=== X1: Eq. 10 frequency optimization (N = 10) ===\n");
  std::printf("RMS limit (Eq. 9, alpha=0.5, dt=800us): %.1f Hz "
              "(paper: 199 Hz)\n\n",
              constraint.rms_limit_hz());

  OptimizerConfig cfg;
  cfg.num_antennas = 10;
  cfg.mc_trials = 48;
  cfg.iterations = 120;
  cfg.restarts = 2;
  FrequencyOptimizer opt(cfg);
  Rng rng(1);
  const auto result = opt.optimize(rng);

  std::printf("optimized set:");
  for (double f : result.offsets_hz) std::printf(" %.0f", f);
  std::printf("\n  E[peak amplitude] = %.2f / 10, RMS %.1f Hz, "
              "%zu evaluations\n\n",
              result.score, result.rms_hz, result.evaluations);

  const auto paper = FrequencyPlan::paper_default();
  const double paper_score = opt.score(paper.offsets_hz());
  std::printf("paper's published set:");
  for (double f : paper.offsets_hz()) std::printf(" %.0f", f);
  std::printf("\n  E[peak amplitude] = %.2f / 10, RMS %.1f Hz, satisfies "
              "Eq. 9: %s\n\n",
              paper_score, paper.rms_offset_hz(),
              paper.satisfies(constraint) ? "yes" : "NO");

  std::printf("paper set / optimized set score: %.1f%%\n",
              100.0 * paper_score / result.score);

  // Ablation: drop the constraint.
  OptimizerConfig loose = cfg;
  loose.constraint.query_duration_s = 80e-6;  // 10x looser RMS bound
  loose.mc_trials = 24;
  loose.iterations = 40;
  loose.restarts = 1;
  FrequencyOptimizer opt_loose(loose);
  Rng rng2(2);
  const auto unconstrained = opt_loose.optimize(rng2);
  std::printf("\nablation - 10x looser flatness bound (RMS limit %.0f Hz):\n",
              loose.constraint.rms_limit_hz());
  std::printf("  score %.2f vs constrained %.2f (+%.1f%%), but RMS %.0f Hz "
              "breaks 800 us query decoding (Eq. 9)\n",
              unconstrained.score, result.score,
              100.0 * (unconstrained.score / result.score - 1.0),
              unconstrained.rms_hz);
  return 0;
}
