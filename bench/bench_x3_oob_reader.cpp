// X3 — Sec. 4 out-of-band reader ablation: (1) an in-band reader saturates
// on CIB self-jamming while the out-of-band + SAW design decodes; (2) SAW
// rejection sweep; (3) the 1-second coherent averaging knee that recovers
// deep-tissue uplinks.
#include <cstdio>

#include "ivnet/common/units.hpp"
#include "ivnet/gen2/fm0.hpp"
#include "ivnet/reader/oob_reader.hpp"

namespace {

using namespace ivnet;

std::vector<double> reflection() {
  const gen2::Bits rn16 = {true, false, true, true, false, false, true, false,
                           true, true, false, true, false, false, true, true};
  auto g = gen2::fm0_modulate(rn16, 40e3, 800e3);
  for (auto& s : g) s *= 0.4;
  return g;
}

}  // namespace

int main() {
  const auto gamma = reflection();
  const double jam_w = 0.137;  // 8 x 1 W antennas, ~1 m away (21 dBm at RX)
  const double rt_deep = 3e-6;  // deep-tissue round-trip voltage gain

  std::printf("=== X3: out-of-band reader ablations ===\n\n");

  std::printf("-- (1) in-band vs out-of-band (deep-tissue link, jam %.0f "
              "dBm) --\n",
              watts_to_dbm(jam_w));
  std::printf("%-26s %-12s %-10s %-10s %s\n", "configuration", "saturated",
              "snr [dB]", "corr", "decoded");
  struct Case {
    const char* name;
    double rejection_db;
    std::size_t periods;
  };
  const Case cases[] = {
      {"in-band (no SAW)", 0.0, 1},
      {"out-of-band + SAW 30 dB", 30.0, 1},
      {"out-of-band + SAW 50 dB", 50.0, 1},
      {"OOB + SAW 50 dB + avg 10", 50.0, 10},
  };
  for (const auto& c : cases) {
    OobReaderConfig cfg;
    cfg.saw_rejection_db = c.rejection_db;
    cfg.averaging_periods = c.periods;
    Rng rng(3);
    const auto r = OobReader(cfg).decode(gamma, rt_deep, jam_w, 40e3, 16, rng);
    std::printf("%-26s %-12s %-10.1f %-10.2f %s\n", c.name,
                r.saturated ? "YES" : "no", r.snr_db, r.preamble_correlation,
                r.success ? "yes" : "NO");
  }

  std::printf("\n-- (2) averaging sweep at a weak uplink (rt gain %.0e) --\n",
              rt_deep / 3.0);
  std::printf("%-10s %-10s %-10s %s\n", "periods", "snr [dB]", "corr",
              "decoded");
  for (std::size_t periods : {1u, 2u, 5u, 10u, 20u, 50u, 100u}) {
    OobReaderConfig cfg;
    cfg.averaging_periods = periods;
    Rng rng(4);
    const auto r =
        OobReader(cfg).decode(gamma, rt_deep / 3.0, jam_w, 40e3, 16, rng);
    std::printf("%-10zu %-10.1f %-10.2f %s\n", periods, r.snr_db,
                r.preamble_correlation, r.success ? "yes" : "no");
  }
  std::printf("\npaper: the reader \"averages responses over 1-second "
              "intervals\" (one CIB period) to boost SNR; saturation "
              "without out-of-band separation is the Sec. 4 self-jamming "
              "problem\n");
  return 0;
}
