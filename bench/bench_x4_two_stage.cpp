// X4 — Sec. 3.7's two-stage extension: a discovery stage optimized for peak
// power (wakes the sensor despite unknown attenuation), then a steady stage
// that re-optimizes for conduction fraction once the attenuation is known.
// Reports delivered DC power through the quasi-static harvester for both
// stages at several normalized thresholds.
#include <cstdio>

#include "ivnet/cib/objective.hpp"
#include "ivnet/cib/two_stage.hpp"
#include "ivnet/harvester/harvester.hpp"

int main() {
  using namespace ivnet;

  OptimizerConfig cfg;
  cfg.num_antennas = 8;
  cfg.mc_trials = 48;
  cfg.iterations = 150;
  cfg.restarts = 2;
  TwoStageController controller(cfg);
  Rng rng(44);

  std::printf("=== X4: two-stage CIB (discovery -> steady), N = 8 ===\n\n");
  const auto discovery = controller.plan_discovery(rng);
  std::printf("discovery plan (max peak):");
  for (double f : discovery.offsets_hz) std::printf(" %.0f", f);
  std::printf("\n  E[peak amplitude] = %.2f / 8\n\n", discovery.objective_value);

  std::printf("%-22s %-22s %-22s %s\n", "normalized threshold",
              "discovery conduction", "steady conduction", "improvement");
  for (double threshold : {1.5, 2.5, 3.5, 4.5}) {
    const auto steady = controller.plan_steady(threshold, rng);
    const double disc_frac =
        controller.conduction_fraction(discovery.offsets_hz, threshold);
    const double steady_frac =
        controller.conduction_fraction(steady.offsets_hz, threshold);
    std::printf("%-22.1f %-22.3f %-22.3f %+.0f%%\n", threshold, disc_frac,
                steady_frac,
                disc_frac > 0 ? 100.0 * (steady_frac / disc_frac - 1.0) : 0.0);
  }

  // Delivered DC power comparison through the harvester at threshold ~ the
  // per-antenna amplitude (envelope in units of one antenna's volts).
  std::printf("\n-- delivered DC energy over one period (harvester sim, "
              "per-antenna amplitude 0.25 V) --\n");
  Rng phase_rng(7);
  const double unit_v = 0.25;  // each antenna delivers 0.25 V at the sensor
  HarvesterConfig hcfg;
  const Harvester harvester(hcfg);
  auto delivered = [&](const std::vector<double>& offsets) {
    double energy = 0.0;
    const int draws = 10;
    Rng local(99);
    for (int k = 0; k < draws; ++k) {
      std::vector<double> phases(offsets.size());
      for (auto& p : phases) p = local.phase();
      auto env = cib_envelope(offsets, phases, {}, 1.0, 20000);
      for (auto& v : env) v *= unit_v;
      energy += harvester.run(env, 20e3).harvested_energy_j;
    }
    return energy / draws;
  };
  const auto steady = controller.plan_steady(
      harvester.min_steady_amplitude() / unit_v, rng);
  const double e_disc = delivered(discovery.offsets_hz);
  const double e_steady = delivered(steady.offsets_hz);
  std::printf("discovery plan: %.3g J/period | steady plan: %.3g J/period "
              "(%+.0f%%)\n",
              e_disc, e_steady,
              e_disc > 0 ? 100.0 * (e_steady / e_disc - 1.0) : 0.0);
  std::printf("\npaper: \"switch to a steady stage where it maximizes the "
              "conduction angle\" once attenuation is known\n");
  return 0;
}
