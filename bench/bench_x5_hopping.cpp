// X5 — Sec. 3.7 adaptive frequency hopping ablation: when the whole CIB
// band sits in a frequency-selective fade, the Hz-scale offsets cannot help
// (they all fade together). Hopping the center carrier across the ISM band
// recovers the loss. Compares delivered peak amplitude with a fixed center
// vs the adaptive hopper across many multipath draws.
#include <cstdio>

#include "ivnet/cib/frequency_plan.hpp"
#include "ivnet/cib/hopping.hpp"
#include "ivnet/common/stats.hpp"

int main() {
  using namespace ivnet;

  const auto offsets = FrequencyPlan::paper_default().truncated(8).offsets_hz();
  HopperConfig cfg;
  cfg.candidate_centers_hz = {903e6, 909e6, 915e6, 921e6, 927e6};

  Rng rng(55);
  const std::vector<double> amps(8, 1.0);
  SampleSet fixed, hopped, oracle;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    const auto ch = make_multipath_channel(amps, 8, 120e-9, rng);
    std::vector<double> peaks(cfg.candidate_centers_hz.size());
    for (std::size_t b = 0; b < peaks.size(); ++b) {
      peaks[b] = band_peak_amplitude(ch, offsets,
                                     cfg.candidate_centers_hz[b] - 915e6);
    }
    FrequencyHopper hopper(cfg);
    for (int step = 0; step < 12; ++step) {
      hopper.report(peaks[hopper.current_band()]);
    }
    fixed.add(peaks[2] * peaks[2]);  // fixed 915 MHz center
    hopped.add(peaks[hopper.current_band()] * peaks[hopper.current_band()]);
    double best = 0.0;
    for (double p : peaks) best = std::max(best, p * p);
    oracle.add(best);
  }

  std::printf("=== X5: adaptive center-frequency hopping "
              "(frequency-selective channel, N = 8) ===\n\n");
  std::printf("%-22s %-12s %-12s %-12s\n", "strategy", "p10", "median", "p90");
  const auto f = fixed.summary();
  const auto h = hopped.summary();
  const auto o = oracle.summary();
  std::printf("%-22s %-12.1f %-12.1f %-12.1f\n", "fixed 915 MHz", f.p10,
              f.p50, f.p90);
  std::printf("%-22s %-12.1f %-12.1f %-12.1f\n", "adaptive hopper", h.p10,
              h.p50, h.p90);
  std::printf("%-22s %-12.1f %-12.1f %-12.1f\n", "oracle best band", o.p10,
              o.p50, o.p90);
  std::printf("\nhopper vs fixed: %+.0f%% median peak power, p10 %+.0f%% "
              "(the tail is where fading hurts)\n",
              100.0 * (h.p50 / f.p50 - 1.0), 100.0 * (h.p10 / f.p10 - 1.0));
  std::printf("paper: \"adaptively hop the center frequency to a different "
              "band to improve performance\" (Sec. 3.7)\n");
  return 0;
}
