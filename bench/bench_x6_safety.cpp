// X6 — Safety/compliance table behind the Sec. 1 / Sec. 7 claims: the CIB
// prototype's time-averaged exposure is linear in N (the N^2 spikes are
// duty-cycled), so it stays within FCC MPE and SAR limits at bench
// distances, while naively boosting a single antenna's power to match the
// same delivered peak would not.
#include <cstdio>

#include "ivnet/common/units.hpp"
#include "ivnet/sim/safety.hpp"

int main() {
  using namespace ivnet;

  const auto limits = fcc_limits(915e6);
  std::printf("=== X6: RF exposure compliance (915 MHz) ===\n");
  std::printf("FCC MPE %.1f W/m^2 (30-min avg), SAR limit %.1f W/kg, "
              "Part 15 EIRP %.0f dBm\n\n",
              limits.mpe_w_per_m2, limits.sar_limit_w_per_kg,
              limits.eirp_limit_dbm);

  std::printf("-- CIB prototype (1 W + 7 dBi per antenna, 10%% TX duty, "
              "skin at 1 m) --\n");
  std::printf("%-10s %-16s %-16s %-14s %s\n", "antennas", "avg [W/m^2]",
              "peak [W/m^2]", "SAR [W/kg]", "MPE ok");
  for (std::size_t n : {1u, 2u, 4u, 8u, 10u}) {
    const auto r = assess_exposure(n, 1.0, 7.0, 1.0, media::skin(), 915e6,
                                   0.1);
    std::printf("%-10zu %-16.3f %-16.1f %-14.4f %s\n", n,
                r.avg_density_w_per_m2, r.peak_density_w_per_m2,
                r.surface_sar_w_per_kg, r.mpe_ok ? "yes" : "NO");
  }

  std::printf("\n-- the naive alternative: ONE antenna boosted to deliver "
              "the same peak as 10-antenna CIB --\n");
  // Same peak as N^2 = 100x of one watt -> 100 W continuous.
  const auto naive = assess_exposure(1, 100.0, 7.0, 1.0, media::skin(),
                                     915e6, 1.0);
  std::printf("100 W single antenna: avg %.1f W/m^2 (limit %.1f) -> MPE %s, "
              "SAR %.2f W/kg -> %s, EIRP %.0f dBm -> %s\n",
              naive.avg_density_w_per_m2, limits.mpe_w_per_m2,
              naive.mpe_ok ? "ok" : "VIOLATION",
              naive.surface_sar_w_per_kg, naive.sar_ok ? "ok" : "VIOLATION",
              naive.eirp_dbm, naive.eirp_ok ? "ok" : "VIOLATION");

  std::printf("\n-- max compliant per-antenna power vs duty cycle "
              "(8 antennas, skin at 0.5 m) --\n");
  std::printf("%-12s %s\n", "duty", "max power [dBm]");
  for (double duty : {1.0, 0.5, 0.2, 0.1, 0.05, 0.02}) {
    const double p = max_compliant_power_w(8, 7.0, 0.5, 915e6, duty);
    std::printf("%-12.2f %.1f\n", duty, watts_to_dbm(p));
  }
  std::printf("\npaper: \"boosting the transmitted power neither scales "
              "well nor is safe\" (Sec. 1); CIB's \"intrinsic duty-cycled "
              "operation makes it FCC compliant\" (Sec. 7)\n");
  return 0;
}
