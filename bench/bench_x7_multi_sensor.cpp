// X7 — Sec. 3.7 multi-sensor scaling: inventory throughput of one CIB
// beamformer over growing sensor populations, with and without the capture
// effect, plus Select-based addressing of a single implant.
#include <cstdio>
#include <memory>
#include <vector>

#include "ivnet/reader/inventory.hpp"

namespace {

using namespace ivnet;

gen2::Bits make_epc(std::uint32_t id) {
  gen2::Bits epc;
  gen2::append_bits(epc, 0x53454E53u, 32);
  gen2::append_bits(epc, 0u, 32);
  gen2::append_bits(epc, id, 32);
  return epc;
}

}  // namespace

int main() {
  std::printf("=== X7: multi-sensor inventory scaling (Sec. 3.7) ===\n\n");
  std::printf("%-10s %-8s %-14s %-14s %-12s %s\n", "sensors", "Q",
              "slots used", "collisions", "rounds-ish", "all found");

  for (std::size_t n : {1u, 2u, 4u, 8u, 16u, 32u}) {
    std::vector<std::unique_ptr<gen2::TagStateMachine>> tags;
    std::vector<gen2::TagStateMachine*> ptrs;
    for (std::size_t i = 0; i < n; ++i) {
      tags.push_back(std::make_unique<gen2::TagStateMachine>(
          make_epc(static_cast<std::uint32_t>(i + 1)), 900 + i));
      tags.back()->power_up();
      ptrs.push_back(tags.back().get());
    }
    InventoryConfig cfg;
    cfg.q = 4;
    Rng rng(70 + n);
    const auto result =
        InventoryRound(cfg).run_until_complete(ptrs, 40, rng);
    std::printf("%-10zu %-8u %-14zu %-14zu %-12zu %s\n", n, cfg.q,
                result.slots_used, result.collisions,
                result.slots_used / ((std::size_t{1} << cfg.q) + n),
                result.epcs.size() == n ? "yes" : "NO");
  }

  std::printf("\n-- capture effect (near/far sensors) at 16 sensors --\n");
  for (double capture : {0.0, 0.5, 1.0}) {
    std::vector<std::unique_ptr<gen2::TagStateMachine>> tags;
    std::vector<gen2::TagStateMachine*> ptrs;
    for (std::size_t i = 0; i < 16; ++i) {
      tags.push_back(std::make_unique<gen2::TagStateMachine>(
          make_epc(static_cast<std::uint32_t>(i + 1)), 300 + i));
      tags.back()->power_up();
      ptrs.push_back(tags.back().get());
    }
    InventoryConfig cfg;
    cfg.q = 4;
    cfg.capture_probability = capture;
    Rng rng(99);
    const auto result =
        InventoryRound(cfg).run_until_complete(ptrs, 40, rng);
    std::printf("capture %.1f: %zu slots to find all 16\n", capture,
                result.slots_used);
  }

  std::printf("\n-- Select-based addressing (paper: \"incorporate a select "
              "command into its query\") --\n");
  {
    std::vector<std::unique_ptr<gen2::TagStateMachine>> tags;
    std::vector<gen2::TagStateMachine*> ptrs;
    for (std::size_t i = 0; i < 8; ++i) {
      tags.push_back(std::make_unique<gen2::TagStateMachine>(
          make_epc(static_cast<std::uint32_t>(i + 1)), 400 + i));
      tags.back()->power_up();
      ptrs.push_back(tags.back().get());
    }
    InventoryConfig cfg;
    cfg.q = 0;  // no slotting needed: Select isolates the target
    cfg.use_select = true;
    cfg.select_pointer = 64;
    gen2::append_bits(cfg.select_mask, 5u, 32);
    Rng rng(41);
    const auto result = InventoryRound(cfg).run(ptrs, rng);
    std::printf("addressed sensor 5 among 8: %s (%zu slots, %zu "
                "collisions)\n",
                result.epcs.size() == 1 &&
                        gen2::read_bits(result.epcs[0], 64, 32) == 5u
                    ? "ok"
                    : "FAILED",
                result.slots_used, result.collisions);
  }
  return 0;
}
