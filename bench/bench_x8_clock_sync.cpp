// X8 — Clock-synchronization ablation: the CDA-2900 Octoclock (shared
// 10 MHz + PPS, Sec. 5(a)) vs free-running USRPs. CIB's integer-Hz offsets
// and its coherent-command requirement both die without the shared
// reference: ppm-scale carrier drift swamps the plan, and trigger skew
// tears the synchronized PIE envelopes apart.
#include <cstdio>

#include "ivnet/cib/transmitter.hpp"
#include "ivnet/common/stats.hpp"
#include "ivnet/common/units.hpp"
#include "ivnet/gen2/commands.hpp"
#include "ivnet/gen2/pie.hpp"
#include "ivnet/rf/channel.hpp"
#include "ivnet/signal/envelope.hpp"

int main() {
  using namespace ivnet;

  const auto plan = FrequencyPlan::paper_default().truncated(8);
  std::printf("=== X8: Octoclock vs free-running clocks (8 antennas) ===\n\n");

  // (1) Offset integrity.
  {
    Rng rng(81);
    RadioArrayConfig good_cfg;
    RadioArrayConfig bad_cfg;
    bad_cfg.clocks = ClockDistribution::free_running();
    const CibTransmitter good(plan, good_cfg, rng);
    const CibTransmitter bad(plan, bad_cfg, rng);
    double good_err = 0.0, bad_err = 0.0;
    const auto good_actual = good.radios().actual_offsets_hz();
    const auto bad_actual = bad.radios().actual_offsets_hz();
    for (std::size_t i = 0; i < plan.num_antennas(); ++i) {
      good_err = std::max(good_err,
                          std::abs(good_actual[i] - plan.offsets_hz()[i]));
      bad_err = std::max(bad_err,
                         std::abs(bad_actual[i] - plan.offsets_hz()[i]));
    }
    std::printf("-- (1) worst carrier-offset error --\n");
    std::printf("octoclock:    %.3g Hz (plan offsets intact)\n", good_err);
    std::printf("free-running: %.0f Hz (vs plan offsets of 0-113 Hz: "
                "the set is destroyed)\n\n",
                bad_err);
  }

  // (2) Envelope periodicity: with drifting carriers the 1 s recurrence of
  // the peak (which the reader schedules queries around) disappears.
  {
    Rng rng(82);
    RadioArrayConfig bad_cfg;
    bad_cfg.clocks = ClockDistribution::free_running();
    const CibTransmitter bad(plan, bad_cfg, rng);
    const auto actual = bad.radios().actual_offsets_hz();
    double min_beat = 1e18;
    for (std::size_t i = 1; i < actual.size(); ++i) {
      min_beat = std::min(min_beat, std::abs(actual[i] - actual[0]));
    }
    std::printf("-- (2) envelope periodicity --\n");
    std::printf("octoclock: period = 1.000 s (gcd of integer offsets)\n");
    std::printf("free-running: smallest beat %.0f Hz -> envelope pattern "
                "never repeats on the reader's 1 s schedule\n\n",
                min_beat);
  }

  // (3) Command envelope alignment: PPS skew shifts each antenna's PIE
  // notches; the tag sees smeared symbol edges.
  {
    const auto query_env = gen2::pie_encode(gen2::QueryCommand{}.encode(),
                                            gen2::PieTiming{}, 800e3, true);
    SampleSet good_fluct, bad_fluct;
    for (int trial = 0; trial < 10; ++trial) {
      for (const bool free_running : {false, true}) {
        Rng rng(900 + trial);
        RadioArrayConfig cfg;
        if (free_running) cfg.clocks = ClockDistribution::free_running();
        const CibTransmitter tx(plan, cfg, rng);
        const auto waves = tx.radios().transmit(query_env);
        // Sum the envelopes during a known CW stretch (first 10 samples are
        // lead-in carrier): misaligned notches create partial dips.
        std::size_t notch_smear = 0;
        const auto n = waves[0].size();
        for (std::size_t i = 0; i < n; ++i) {
          int high = 0, low = 0;
          for (const auto& w : waves) {
            (std::abs(w.samples[i]) > 1e-6 ? high : low)++;
          }
          if (high != 0 && low != 0) ++notch_smear;  // disagreeing antennas
        }
        (free_running ? bad_fluct : good_fluct)
            .add(static_cast<double>(notch_smear));
      }
    }
    std::printf("-- (3) smeared symbol-edge samples per query --\n");
    std::printf("octoclock:    median %.0f samples\n", good_fluct.median());
    std::printf("free-running: median %.0f samples (tag sees corrupted "
                "PIE intervals)\n",
                bad_fluct.median());
  }

  std::printf("\npaper: \"The USRPs are all connected to a CDA-2900 "
              "Octoclock with a 10 MHz reference clock and a PPS "
              "synchronization pulse\" (Sec. 5(a)) — this is why.\n");
  return 0;
}
