// X9 — Uplink modulation ablation: FM0 vs Miller M2/M4/M8 across SNR.
// The paper's prototype uses FM0; the Gen2 Query's M field offers Miller
// modes whose longer symbols buy processing gain — the knob a deep-tissue
// deployment would turn when the 1-second averaging alone is not enough.
#include <cstdio>

#include "ivnet/common/rng.hpp"
#include "ivnet/gen2/fm0.hpp"
#include "ivnet/gen2/miller.hpp"

namespace {

using namespace ivnet;
using namespace ivnet::gen2;

Bits random_bits(std::size_t n, Rng& rng) {
  Bits bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = rng.uniform() < 0.5;
  return bits;
}

double frame_success_rate(Miller mode, double sigma, int trials, Rng& rng) {
  int ok = 0;
  for (int k = 0; k < trials; ++k) {
    const Bits bits = random_bits(16, rng);
    std::vector<double> sig =
        mode == Miller::kFm0 ? fm0_modulate(bits, 40e3, 1.6e6)
                             : miller_modulate(mode, bits, 40e3, 1.6e6);
    for (auto& s : sig) s += rng.normal(0.0, sigma);
    bool good = false;
    if (mode == Miller::kFm0) {
      const auto d = fm0_decode(sig, 16, 40e3, 1.6e6, 0.2);
      good = d.valid && d.bits == bits;
    } else {
      const auto d = miller_decode(mode, sig, 16, 40e3, 1.6e6, 0.2);
      good = d.valid && d.bits == bits;
    }
    ok += good;
  }
  return static_cast<double>(ok) / trials;
}

}  // namespace

int main() {
  std::printf("=== X9: uplink modulation vs noise (RN16 frame success) "
              "===\n\n");
  std::printf("%-12s %-10s %-10s %-10s %-10s\n", "noise sigma", "FM0",
              "Miller-2", "Miller-4", "Miller-8");

  Rng rng(91);
  for (double sigma : {1.0, 2.0, 2.8, 3.6, 4.4, 5.2}) {
    std::printf("%-12.1f %-10.2f %-10.2f %-10.2f %-10.2f\n", sigma,
                frame_success_rate(Miller::kFm0, sigma, 40, rng),
                frame_success_rate(Miller::kM2, sigma, 40, rng),
                frame_success_rate(Miller::kM4, sigma, 40, rng),
                frame_success_rate(Miller::kM8, sigma, 40, rng));
  }

  std::printf("\nprocessing gains over FM0: M2 %.1f dB, M4 %.1f dB, "
              "M8 %.1f dB\n",
              miller_processing_gain_db(Miller::kM2),
              miller_processing_gain_db(Miller::kM4),
              miller_processing_gain_db(Miller::kM8));
  std::printf("trade-off: an M8 RN16 takes %.0fx the air time of FM0 — "
              "still negligible against the 1 s CIB period\n",
              8.0);
  return 0;
}
