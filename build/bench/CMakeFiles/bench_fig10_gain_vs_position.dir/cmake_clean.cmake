file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_gain_vs_position.dir/bench_fig10_gain_vs_position.cpp.o"
  "CMakeFiles/bench_fig10_gain_vs_position.dir/bench_fig10_gain_vs_position.cpp.o.d"
  "bench_fig10_gain_vs_position"
  "bench_fig10_gain_vs_position.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_gain_vs_position.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
