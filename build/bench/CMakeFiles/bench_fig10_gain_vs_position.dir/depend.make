# Empty dependencies file for bench_fig10_gain_vs_position.
# This may be replaced when dependencies are built.
