file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_media_gain.dir/bench_fig11_media_gain.cpp.o"
  "CMakeFiles/bench_fig11_media_gain.dir/bench_fig11_media_gain.cpp.o.d"
  "bench_fig11_media_gain"
  "bench_fig11_media_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_media_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
