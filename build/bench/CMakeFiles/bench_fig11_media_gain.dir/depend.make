# Empty dependencies file for bench_fig11_media_gain.
# This may be replaced when dependencies are built.
