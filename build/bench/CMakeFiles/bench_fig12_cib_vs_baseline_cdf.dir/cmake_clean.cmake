file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_cib_vs_baseline_cdf.dir/bench_fig12_cib_vs_baseline_cdf.cpp.o"
  "CMakeFiles/bench_fig12_cib_vs_baseline_cdf.dir/bench_fig12_cib_vs_baseline_cdf.cpp.o.d"
  "bench_fig12_cib_vs_baseline_cdf"
  "bench_fig12_cib_vs_baseline_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_cib_vs_baseline_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
