# Empty compiler generated dependencies file for bench_fig12_cib_vs_baseline_cdf.
# This may be replaced when dependencies are built.
