file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_range_vs_antennas.dir/bench_fig13_range_vs_antennas.cpp.o"
  "CMakeFiles/bench_fig13_range_vs_antennas.dir/bench_fig13_range_vs_antennas.cpp.o.d"
  "bench_fig13_range_vs_antennas"
  "bench_fig13_range_vs_antennas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_range_vs_antennas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
