# Empty compiler generated dependencies file for bench_fig13_range_vs_antennas.
# This may be replaced when dependencies are built.
