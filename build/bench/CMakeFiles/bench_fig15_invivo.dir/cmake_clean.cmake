file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_invivo.dir/bench_fig15_invivo.cpp.o"
  "CMakeFiles/bench_fig15_invivo.dir/bench_fig15_invivo.cpp.o.d"
  "bench_fig15_invivo"
  "bench_fig15_invivo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_invivo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
