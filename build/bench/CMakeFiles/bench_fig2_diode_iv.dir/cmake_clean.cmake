file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_diode_iv.dir/bench_fig2_diode_iv.cpp.o"
  "CMakeFiles/bench_fig2_diode_iv.dir/bench_fig2_diode_iv.cpp.o.d"
  "bench_fig2_diode_iv"
  "bench_fig2_diode_iv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_diode_iv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
