# Empty compiler generated dependencies file for bench_fig2_diode_iv.
# This may be replaced when dependencies are built.
