# Empty dependencies file for bench_fig3_tissue_loss.
# This may be replaced when dependencies are built.
