# Empty compiler generated dependencies file for bench_fig4_conduction_angle.
# This may be replaced when dependencies are built.
