file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_envelopes.dir/bench_fig5_envelopes.cpp.o"
  "CMakeFiles/bench_fig5_envelopes.dir/bench_fig5_envelopes.cpp.o.d"
  "bench_fig5_envelopes"
  "bench_fig5_envelopes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_envelopes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
