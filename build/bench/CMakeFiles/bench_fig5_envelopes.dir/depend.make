# Empty dependencies file for bench_fig5_envelopes.
# This may be replaced when dependencies are built.
