# Empty dependencies file for bench_fig6_freqset_cdf.
# This may be replaced when dependencies are built.
