# Empty dependencies file for bench_fig9_gain_vs_antennas.
# This may be replaced when dependencies are built.
