file(REMOVE_RECURSE
  "CMakeFiles/bench_x10_duty_cycle.dir/bench_x10_duty_cycle.cpp.o"
  "CMakeFiles/bench_x10_duty_cycle.dir/bench_x10_duty_cycle.cpp.o.d"
  "bench_x10_duty_cycle"
  "bench_x10_duty_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x10_duty_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
