# Empty dependencies file for bench_x10_duty_cycle.
# This may be replaced when dependencies are built.
