# Empty dependencies file for bench_x11_mobility.
# This may be replaced when dependencies are built.
