file(REMOVE_RECURSE
  "CMakeFiles/bench_x12_aperture.dir/bench_x12_aperture.cpp.o"
  "CMakeFiles/bench_x12_aperture.dir/bench_x12_aperture.cpp.o.d"
  "bench_x12_aperture"
  "bench_x12_aperture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x12_aperture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
