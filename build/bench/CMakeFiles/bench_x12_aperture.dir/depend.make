# Empty dependencies file for bench_x12_aperture.
# This may be replaced when dependencies are built.
