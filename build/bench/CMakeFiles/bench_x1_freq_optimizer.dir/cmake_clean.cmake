file(REMOVE_RECURSE
  "CMakeFiles/bench_x1_freq_optimizer.dir/bench_x1_freq_optimizer.cpp.o"
  "CMakeFiles/bench_x1_freq_optimizer.dir/bench_x1_freq_optimizer.cpp.o.d"
  "bench_x1_freq_optimizer"
  "bench_x1_freq_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x1_freq_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
