# Empty dependencies file for bench_x1_freq_optimizer.
# This may be replaced when dependencies are built.
