file(REMOVE_RECURSE
  "CMakeFiles/bench_x3_oob_reader.dir/bench_x3_oob_reader.cpp.o"
  "CMakeFiles/bench_x3_oob_reader.dir/bench_x3_oob_reader.cpp.o.d"
  "bench_x3_oob_reader"
  "bench_x3_oob_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x3_oob_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
