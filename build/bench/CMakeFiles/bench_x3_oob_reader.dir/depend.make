# Empty dependencies file for bench_x3_oob_reader.
# This may be replaced when dependencies are built.
