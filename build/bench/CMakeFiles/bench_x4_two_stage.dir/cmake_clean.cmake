file(REMOVE_RECURSE
  "CMakeFiles/bench_x4_two_stage.dir/bench_x4_two_stage.cpp.o"
  "CMakeFiles/bench_x4_two_stage.dir/bench_x4_two_stage.cpp.o.d"
  "bench_x4_two_stage"
  "bench_x4_two_stage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x4_two_stage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
