# Empty dependencies file for bench_x4_two_stage.
# This may be replaced when dependencies are built.
