file(REMOVE_RECURSE
  "CMakeFiles/bench_x5_hopping.dir/bench_x5_hopping.cpp.o"
  "CMakeFiles/bench_x5_hopping.dir/bench_x5_hopping.cpp.o.d"
  "bench_x5_hopping"
  "bench_x5_hopping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x5_hopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
