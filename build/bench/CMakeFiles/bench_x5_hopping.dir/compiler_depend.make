# Empty compiler generated dependencies file for bench_x5_hopping.
# This may be replaced when dependencies are built.
