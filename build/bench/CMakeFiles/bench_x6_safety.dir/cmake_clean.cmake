file(REMOVE_RECURSE
  "CMakeFiles/bench_x6_safety.dir/bench_x6_safety.cpp.o"
  "CMakeFiles/bench_x6_safety.dir/bench_x6_safety.cpp.o.d"
  "bench_x6_safety"
  "bench_x6_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x6_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
