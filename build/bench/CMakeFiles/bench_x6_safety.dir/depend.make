# Empty dependencies file for bench_x6_safety.
# This may be replaced when dependencies are built.
