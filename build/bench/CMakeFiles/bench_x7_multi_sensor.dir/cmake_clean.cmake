file(REMOVE_RECURSE
  "CMakeFiles/bench_x7_multi_sensor.dir/bench_x7_multi_sensor.cpp.o"
  "CMakeFiles/bench_x7_multi_sensor.dir/bench_x7_multi_sensor.cpp.o.d"
  "bench_x7_multi_sensor"
  "bench_x7_multi_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x7_multi_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
