# Empty compiler generated dependencies file for bench_x7_multi_sensor.
# This may be replaced when dependencies are built.
