# Empty compiler generated dependencies file for bench_x8_clock_sync.
# This may be replaced when dependencies are built.
