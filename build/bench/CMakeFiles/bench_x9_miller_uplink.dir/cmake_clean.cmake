file(REMOVE_RECURSE
  "CMakeFiles/bench_x9_miller_uplink.dir/bench_x9_miller_uplink.cpp.o"
  "CMakeFiles/bench_x9_miller_uplink.dir/bench_x9_miller_uplink.cpp.o.d"
  "bench_x9_miller_uplink"
  "bench_x9_miller_uplink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x9_miller_uplink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
