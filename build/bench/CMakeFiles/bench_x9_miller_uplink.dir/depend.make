# Empty dependencies file for bench_x9_miller_uplink.
# This may be replaced when dependencies are built.
