file(REMOVE_RECURSE
  "CMakeFiles/deep_tissue_monitor.dir/deep_tissue_monitor.cpp.o"
  "CMakeFiles/deep_tissue_monitor.dir/deep_tissue_monitor.cpp.o.d"
  "deep_tissue_monitor"
  "deep_tissue_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_tissue_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
