# Empty dependencies file for deep_tissue_monitor.
# This may be replaced when dependencies are built.
