file(REMOVE_RECURSE
  "CMakeFiles/flowgraph_receiver.dir/flowgraph_receiver.cpp.o"
  "CMakeFiles/flowgraph_receiver.dir/flowgraph_receiver.cpp.o.d"
  "flowgraph_receiver"
  "flowgraph_receiver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowgraph_receiver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
