# Empty compiler generated dependencies file for flowgraph_receiver.
# This may be replaced when dependencies are built.
