file(REMOVE_RECURSE
  "CMakeFiles/frequency_planner.dir/frequency_planner.cpp.o"
  "CMakeFiles/frequency_planner.dir/frequency_planner.cpp.o.d"
  "frequency_planner"
  "frequency_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequency_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
