# Empty dependencies file for frequency_planner.
# This may be replaced when dependencies are built.
