file(REMOVE_RECURSE
  "CMakeFiles/long_range_rfid.dir/long_range_rfid.cpp.o"
  "CMakeFiles/long_range_rfid.dir/long_range_rfid.cpp.o.d"
  "long_range_rfid"
  "long_range_rfid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/long_range_rfid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
