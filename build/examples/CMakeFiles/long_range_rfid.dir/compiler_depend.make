# Empty compiler generated dependencies file for long_range_rfid.
# This may be replaced when dependencies are built.
