file(REMOVE_RECURSE
  "CMakeFiles/multi_sensor_ward.dir/multi_sensor_ward.cpp.o"
  "CMakeFiles/multi_sensor_ward.dir/multi_sensor_ward.cpp.o.d"
  "multi_sensor_ward"
  "multi_sensor_ward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_sensor_ward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
