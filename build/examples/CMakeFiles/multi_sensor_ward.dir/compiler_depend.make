# Empty compiler generated dependencies file for multi_sensor_ward.
# This may be replaced when dependencies are built.
