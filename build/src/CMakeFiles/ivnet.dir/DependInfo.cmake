
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ivnet/cib/baseline.cpp" "src/CMakeFiles/ivnet.dir/ivnet/cib/baseline.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/cib/baseline.cpp.o.d"
  "/root/repo/src/ivnet/cib/frequency_plan.cpp" "src/CMakeFiles/ivnet.dir/ivnet/cib/frequency_plan.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/cib/frequency_plan.cpp.o.d"
  "/root/repo/src/ivnet/cib/hopping.cpp" "src/CMakeFiles/ivnet.dir/ivnet/cib/hopping.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/cib/hopping.cpp.o.d"
  "/root/repo/src/ivnet/cib/objective.cpp" "src/CMakeFiles/ivnet.dir/ivnet/cib/objective.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/cib/objective.cpp.o.d"
  "/root/repo/src/ivnet/cib/optimizer.cpp" "src/CMakeFiles/ivnet.dir/ivnet/cib/optimizer.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/cib/optimizer.cpp.o.d"
  "/root/repo/src/ivnet/cib/scheduler.cpp" "src/CMakeFiles/ivnet.dir/ivnet/cib/scheduler.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/cib/scheduler.cpp.o.d"
  "/root/repo/src/ivnet/cib/transmitter.cpp" "src/CMakeFiles/ivnet.dir/ivnet/cib/transmitter.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/cib/transmitter.cpp.o.d"
  "/root/repo/src/ivnet/cib/two_stage.cpp" "src/CMakeFiles/ivnet.dir/ivnet/cib/two_stage.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/cib/two_stage.cpp.o.d"
  "/root/repo/src/ivnet/common/json.cpp" "src/CMakeFiles/ivnet.dir/ivnet/common/json.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/common/json.cpp.o.d"
  "/root/repo/src/ivnet/common/rng.cpp" "src/CMakeFiles/ivnet.dir/ivnet/common/rng.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/common/rng.cpp.o.d"
  "/root/repo/src/ivnet/common/stats.cpp" "src/CMakeFiles/ivnet.dir/ivnet/common/stats.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/common/stats.cpp.o.d"
  "/root/repo/src/ivnet/flow/flow.cpp" "src/CMakeFiles/ivnet.dir/ivnet/flow/flow.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/flow/flow.cpp.o.d"
  "/root/repo/src/ivnet/gen2/commands.cpp" "src/CMakeFiles/ivnet.dir/ivnet/gen2/commands.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/gen2/commands.cpp.o.d"
  "/root/repo/src/ivnet/gen2/crc.cpp" "src/CMakeFiles/ivnet.dir/ivnet/gen2/crc.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/gen2/crc.cpp.o.d"
  "/root/repo/src/ivnet/gen2/fm0.cpp" "src/CMakeFiles/ivnet.dir/ivnet/gen2/fm0.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/gen2/fm0.cpp.o.d"
  "/root/repo/src/ivnet/gen2/link_timing.cpp" "src/CMakeFiles/ivnet.dir/ivnet/gen2/link_timing.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/gen2/link_timing.cpp.o.d"
  "/root/repo/src/ivnet/gen2/memory.cpp" "src/CMakeFiles/ivnet.dir/ivnet/gen2/memory.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/gen2/memory.cpp.o.d"
  "/root/repo/src/ivnet/gen2/miller.cpp" "src/CMakeFiles/ivnet.dir/ivnet/gen2/miller.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/gen2/miller.cpp.o.d"
  "/root/repo/src/ivnet/gen2/pie.cpp" "src/CMakeFiles/ivnet.dir/ivnet/gen2/pie.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/gen2/pie.cpp.o.d"
  "/root/repo/src/ivnet/gen2/tag_sm.cpp" "src/CMakeFiles/ivnet.dir/ivnet/gen2/tag_sm.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/gen2/tag_sm.cpp.o.d"
  "/root/repo/src/ivnet/harvester/diode.cpp" "src/CMakeFiles/ivnet.dir/ivnet/harvester/diode.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/harvester/diode.cpp.o.d"
  "/root/repo/src/ivnet/harvester/energy.cpp" "src/CMakeFiles/ivnet.dir/ivnet/harvester/energy.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/harvester/energy.cpp.o.d"
  "/root/repo/src/ivnet/harvester/harvester.cpp" "src/CMakeFiles/ivnet.dir/ivnet/harvester/harvester.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/harvester/harvester.cpp.o.d"
  "/root/repo/src/ivnet/harvester/rectifier.cpp" "src/CMakeFiles/ivnet.dir/ivnet/harvester/rectifier.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/harvester/rectifier.cpp.o.d"
  "/root/repo/src/ivnet/harvester/transient.cpp" "src/CMakeFiles/ivnet.dir/ivnet/harvester/transient.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/harvester/transient.cpp.o.d"
  "/root/repo/src/ivnet/media/layered.cpp" "src/CMakeFiles/ivnet.dir/ivnet/media/layered.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/media/layered.cpp.o.d"
  "/root/repo/src/ivnet/media/medium.cpp" "src/CMakeFiles/ivnet.dir/ivnet/media/medium.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/media/medium.cpp.o.d"
  "/root/repo/src/ivnet/reader/inventory.cpp" "src/CMakeFiles/ivnet.dir/ivnet/reader/inventory.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/reader/inventory.cpp.o.d"
  "/root/repo/src/ivnet/reader/oob_reader.cpp" "src/CMakeFiles/ivnet.dir/ivnet/reader/oob_reader.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/reader/oob_reader.cpp.o.d"
  "/root/repo/src/ivnet/rf/antenna.cpp" "src/CMakeFiles/ivnet.dir/ivnet/rf/antenna.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/rf/antenna.cpp.o.d"
  "/root/repo/src/ivnet/rf/channel.cpp" "src/CMakeFiles/ivnet.dir/ivnet/rf/channel.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/rf/channel.cpp.o.d"
  "/root/repo/src/ivnet/rf/propagation.cpp" "src/CMakeFiles/ivnet.dir/ivnet/rf/propagation.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/rf/propagation.cpp.o.d"
  "/root/repo/src/ivnet/rf/sounding.cpp" "src/CMakeFiles/ivnet.dir/ivnet/rf/sounding.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/rf/sounding.cpp.o.d"
  "/root/repo/src/ivnet/sdr/clock.cpp" "src/CMakeFiles/ivnet.dir/ivnet/sdr/clock.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/sdr/clock.cpp.o.d"
  "/root/repo/src/ivnet/sdr/pa.cpp" "src/CMakeFiles/ivnet.dir/ivnet/sdr/pa.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/sdr/pa.cpp.o.d"
  "/root/repo/src/ivnet/sdr/pll.cpp" "src/CMakeFiles/ivnet.dir/ivnet/sdr/pll.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/sdr/pll.cpp.o.d"
  "/root/repo/src/ivnet/sdr/radio.cpp" "src/CMakeFiles/ivnet.dir/ivnet/sdr/radio.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/sdr/radio.cpp.o.d"
  "/root/repo/src/ivnet/sdr/rx_chain.cpp" "src/CMakeFiles/ivnet.dir/ivnet/sdr/rx_chain.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/sdr/rx_chain.cpp.o.d"
  "/root/repo/src/ivnet/signal/correlate.cpp" "src/CMakeFiles/ivnet.dir/ivnet/signal/correlate.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/signal/correlate.cpp.o.d"
  "/root/repo/src/ivnet/signal/envelope.cpp" "src/CMakeFiles/ivnet.dir/ivnet/signal/envelope.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/signal/envelope.cpp.o.d"
  "/root/repo/src/ivnet/signal/fir.cpp" "src/CMakeFiles/ivnet.dir/ivnet/signal/fir.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/signal/fir.cpp.o.d"
  "/root/repo/src/ivnet/signal/goertzel.cpp" "src/CMakeFiles/ivnet.dir/ivnet/signal/goertzel.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/signal/goertzel.cpp.o.d"
  "/root/repo/src/ivnet/signal/iq.cpp" "src/CMakeFiles/ivnet.dir/ivnet/signal/iq.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/signal/iq.cpp.o.d"
  "/root/repo/src/ivnet/signal/noise.cpp" "src/CMakeFiles/ivnet.dir/ivnet/signal/noise.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/signal/noise.cpp.o.d"
  "/root/repo/src/ivnet/signal/resampler.cpp" "src/CMakeFiles/ivnet.dir/ivnet/signal/resampler.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/signal/resampler.cpp.o.d"
  "/root/repo/src/ivnet/signal/waveform.cpp" "src/CMakeFiles/ivnet.dir/ivnet/signal/waveform.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/signal/waveform.cpp.o.d"
  "/root/repo/src/ivnet/sim/experiment.cpp" "src/CMakeFiles/ivnet.dir/ivnet/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/sim/experiment.cpp.o.d"
  "/root/repo/src/ivnet/sim/mobility.cpp" "src/CMakeFiles/ivnet.dir/ivnet/sim/mobility.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/sim/mobility.cpp.o.d"
  "/root/repo/src/ivnet/sim/planner.cpp" "src/CMakeFiles/ivnet.dir/ivnet/sim/planner.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/sim/planner.cpp.o.d"
  "/root/repo/src/ivnet/sim/safety.cpp" "src/CMakeFiles/ivnet.dir/ivnet/sim/safety.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/sim/safety.cpp.o.d"
  "/root/repo/src/ivnet/sim/scenario.cpp" "src/CMakeFiles/ivnet.dir/ivnet/sim/scenario.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/sim/scenario.cpp.o.d"
  "/root/repo/src/ivnet/sim/waveform_session.cpp" "src/CMakeFiles/ivnet.dir/ivnet/sim/waveform_session.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/sim/waveform_session.cpp.o.d"
  "/root/repo/src/ivnet/tag/actuator.cpp" "src/CMakeFiles/ivnet.dir/ivnet/tag/actuator.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/tag/actuator.cpp.o.d"
  "/root/repo/src/ivnet/tag/sensor.cpp" "src/CMakeFiles/ivnet.dir/ivnet/tag/sensor.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/tag/sensor.cpp.o.d"
  "/root/repo/src/ivnet/tag/tag_device.cpp" "src/CMakeFiles/ivnet.dir/ivnet/tag/tag_device.cpp.o" "gcc" "src/CMakeFiles/ivnet.dir/ivnet/tag/tag_device.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
