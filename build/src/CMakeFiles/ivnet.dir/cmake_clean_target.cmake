file(REMOVE_RECURSE
  "libivnet.a"
)
