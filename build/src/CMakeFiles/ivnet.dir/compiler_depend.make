# Empty compiler generated dependencies file for ivnet.
# This may be replaced when dependencies are built.
