file(REMOVE_RECURSE
  "CMakeFiles/actuator_test.dir/actuator_test.cpp.o"
  "CMakeFiles/actuator_test.dir/actuator_test.cpp.o.d"
  "actuator_test"
  "actuator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actuator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
