file(REMOVE_RECURSE
  "CMakeFiles/cib_test.dir/cib_test.cpp.o"
  "CMakeFiles/cib_test.dir/cib_test.cpp.o.d"
  "cib_test"
  "cib_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
