# Empty compiler generated dependencies file for cib_test.
# This may be replaced when dependencies are built.
