# Empty compiler generated dependencies file for crossvalidation_test.
# This may be replaced when dependencies are built.
