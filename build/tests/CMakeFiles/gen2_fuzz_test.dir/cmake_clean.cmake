file(REMOVE_RECURSE
  "CMakeFiles/gen2_fuzz_test.dir/gen2_fuzz_test.cpp.o"
  "CMakeFiles/gen2_fuzz_test.dir/gen2_fuzz_test.cpp.o.d"
  "gen2_fuzz_test"
  "gen2_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen2_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
