file(REMOVE_RECURSE
  "CMakeFiles/gen2_test.dir/gen2_test.cpp.o"
  "CMakeFiles/gen2_test.dir/gen2_test.cpp.o.d"
  "gen2_test"
  "gen2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
