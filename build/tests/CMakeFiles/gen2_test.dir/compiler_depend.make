# Empty compiler generated dependencies file for gen2_test.
# This may be replaced when dependencies are built.
