file(REMOVE_RECURSE
  "CMakeFiles/hopping_test.dir/hopping_test.cpp.o"
  "CMakeFiles/hopping_test.dir/hopping_test.cpp.o.d"
  "hopping_test"
  "hopping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hopping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
