# Empty compiler generated dependencies file for hopping_test.
# This may be replaced when dependencies are built.
