# Empty compiler generated dependencies file for inventory_test.
# This may be replaced when dependencies are built.
