file(REMOVE_RECURSE
  "CMakeFiles/link_timing_test.dir/link_timing_test.cpp.o"
  "CMakeFiles/link_timing_test.dir/link_timing_test.cpp.o.d"
  "link_timing_test"
  "link_timing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
