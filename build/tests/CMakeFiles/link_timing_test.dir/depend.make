# Empty dependencies file for link_timing_test.
# This may be replaced when dependencies are built.
