file(REMOVE_RECURSE
  "CMakeFiles/miller_test.dir/miller_test.cpp.o"
  "CMakeFiles/miller_test.dir/miller_test.cpp.o.d"
  "miller_test"
  "miller_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
