# Empty compiler generated dependencies file for miller_test.
# This may be replaced when dependencies are built.
