file(REMOVE_RECURSE
  "CMakeFiles/rf_test.dir/rf_test.cpp.o"
  "CMakeFiles/rf_test.dir/rf_test.cpp.o.d"
  "rf_test"
  "rf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
