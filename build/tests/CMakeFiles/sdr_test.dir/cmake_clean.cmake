file(REMOVE_RECURSE
  "CMakeFiles/sdr_test.dir/sdr_test.cpp.o"
  "CMakeFiles/sdr_test.dir/sdr_test.cpp.o.d"
  "sdr_test"
  "sdr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
