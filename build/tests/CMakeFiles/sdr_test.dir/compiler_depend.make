# Empty compiler generated dependencies file for sdr_test.
# This may be replaced when dependencies are built.
