file(REMOVE_RECURSE
  "CMakeFiles/sounding_scheduler_test.dir/sounding_scheduler_test.cpp.o"
  "CMakeFiles/sounding_scheduler_test.dir/sounding_scheduler_test.cpp.o.d"
  "sounding_scheduler_test"
  "sounding_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sounding_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
