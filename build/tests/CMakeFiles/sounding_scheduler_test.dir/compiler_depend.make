# Empty compiler generated dependencies file for sounding_scheduler_test.
# This may be replaced when dependencies are built.
