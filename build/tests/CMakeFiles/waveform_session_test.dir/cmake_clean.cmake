file(REMOVE_RECURSE
  "CMakeFiles/waveform_session_test.dir/waveform_session_test.cpp.o"
  "CMakeFiles/waveform_session_test.dir/waveform_session_test.cpp.o.d"
  "waveform_session_test"
  "waveform_session_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waveform_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
