file(REMOVE_RECURSE
  "CMakeFiles/ivnet_cli.dir/ivnet_cli.cpp.o"
  "CMakeFiles/ivnet_cli.dir/ivnet_cli.cpp.o.d"
  "ivnet"
  "ivnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivnet_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
