# Empty compiler generated dependencies file for ivnet_cli.
# This may be replaced when dependencies are built.
