// Deep-tissue monitor: the paper's motivating application (Sec. 1) — a
// battery-free sensor in the stomach of a large mammal, read by an
// 8-antenna CIB beamformer standing half a meter from the body.
//
// Runs the complete sample-accurate dialogue each round: charge, Query on
// the CIB envelope peak, ACK, Req_RN, then Read the sensor's USER memory to
// recover temperature / pH / pressure, while the "animal" breathes (depth
// jitter) and the capsule tumbles (orientation jitter).
//
//   $ ./deep_tissue_monitor [rounds]
#include <cstdio>
#include <cstdlib>

#include "ivnet/common/units.hpp"
#include "ivnet/sim/calibration.hpp"
#include "ivnet/sim/waveform_session.hpp"

int main(int argc, char** argv) {
  using namespace ivnet;

  const int rounds = argc > 1 ? std::atoi(argv[1]) : 10;

  WaveformSessionConfig cfg;
  cfg.plan = FrequencyPlan::paper_default().truncated(8);
  cfg.charge_time_s = 0.2;
  cfg.reader.averaging_periods = 10;  // 10 s of coherent averaging

  Rng rng(4242);
  WaveformSession session(cfg, rng);

  int powered = 0, read_ok = 0;
  std::printf("monitoring a gastric sensor: %d rounds, %zu antennas, "
              "%.0f cm lateral standoff\n\n",
              rounds, cfg.plan.num_antennas(),
              calib::kSwineStandoffM * 100.0);
  std::printf("%-6s %-10s %-8s %-10s %-8s %-8s %s\n", "round", "depth[cm]",
              "orient", "temp[C]", "pH", "P[mmHg]", "outcome");

  for (int k = 0; k < rounds; ++k) {
    const double extra_depth = rng.uniform(0.0, 0.05);
    const double orientation = rng.uniform(0.0, kPi);
    Scenario scene =
        swine_gastric_scenario(calib::kSwineStandoffM, extra_depth);
    scene.orientation_rad = orientation;

    session.new_trial(rng);  // fresh PLL phases each round
    const SensorReadReport r = session.run_sensor_read(
        scene, standard_tag(), /*sensor_time_s=*/k * 10.0, rng);
    powered += r.powered;
    read_ok += r.read_ok;
    if (r.read_ok) {
      std::printf("%-6d %-10.1f %-8.2f %-10.2f %-8.2f %-8.1f vitals read "
                  "(%d cmds)\n",
                  k, scene.depth_m * 100.0, orientation, r.temperature_c,
                  r.ph, r.pressure_mmhg, r.commands_sent);
    } else {
      std::printf("%-6d %-10.1f %-8.2f %-10s %-8s %-8s %s\n", k,
                  scene.depth_m * 100.0, orientation, "-", "-", "-",
                  r.powered ? (r.inventoried ? "access lost" : "uplink lost")
                            : "below threshold");
    }
  }

  std::printf("\npowered %d/%d rounds, vitals read %d/%d rounds\n", powered,
              rounds, read_ok, rounds);
  std::printf("(the paper's in-vivo gastric sessions succeeded in ~half of "
              "the trials; failures track tag motion and orientation)\n");
  return 0;
}
