// Drug delivery: the paper's actuation application (Sec. 1: implants
// "delivering drugs"). The clinician writes a dose request into the
// implant's USER memory over the CIB link; the actuator banks harvested
// energy across CIB periods (pumping costs far more than telemetry) and
// delivers when — and only when — the energy, rate-limit, and lifetime
// budget all allow it.
//
//   $ ./drug_delivery [dose_tenths_ul]
#include <cstdio>
#include <cstdlib>

#include "ivnet/cib/objective.hpp"
#include "ivnet/harvester/harvester.hpp"
#include "ivnet/sim/calibration.hpp"
#include "ivnet/sim/experiment.hpp"
#include "ivnet/tag/actuator.hpp"

int main(int argc, char** argv) {
  using namespace ivnet;

  const auto dose =
      static_cast<std::uint16_t>(argc > 1 ? std::atoi(argv[1]) : 20);

  // The implant sits in the stomach; compute the median per-period power
  // the 8-antenna CIB beamformer delivers to its harvester.
  Rng rng(55);
  const auto scen = swine_gastric_scenario(calib::kSwineStandoffM);
  const auto tag = standard_tag();
  const auto plan = FrequencyPlan::paper_default().truncated(8);
  const auto amps = array_amplitudes(scen, tag, 8, plan.center_hz(), rng);
  std::vector<double> phases(8);
  for (auto& p : phases) p = rng.phase();
  auto env = cib_envelope(plan.offsets_hz(), phases, amps, 1.0, 20000);
  const Harvester harvester(tag.harvester);
  const double watts = harvester.run(env, 20e3).harvested_energy_j;  // J per 1 s

  std::printf("gastric implant: %.2f uW average harvested through the "
              "abdominal wall\n",
              watts * 1e6);

  // The reader writes the dose request (over the Gen2 Write path exercised
  // in tests/memory_test.cpp); here we drive the actuator period by period.
  gen2::TagMemory memory;
  ActuatorConfig cfg;
  cfg.energy_per_tenth_ul_j = 5e-6;
  cfg.min_interval_s = 30.0;
  cfg.max_total_tenths = 100;
  DrugDeliveryActuator actuator(cfg);

  memory.write(gen2::MemBank::kUser,
               static_cast<std::size_t>(ActuatorWord::kDoseRequest), dose);
  std::printf("dose request: %.1f uL (%.0f uJ of pump energy needed)\n\n",
              dose / 10.0, dose * cfg.energy_per_tenth_ul_j * 1e6);

  std::printf("%-10s %-12s %-14s %s\n", "t [s]", "status", "reservoir[uJ]",
              "delivered");
  for (int t = 0; t <= 600; ++t) {
    const bool done = actuator.step(1.0, watts, memory);
    if (t % 30 == 0 || done) {
      const char* status_names[] = {"idle", "charging", "delivered",
                                    "rate-limited", "limit-reached"};
      std::printf("%-10d %-12s %-14.1f %u x, %.1f uL total\n", t,
                  status_names[static_cast<int>(actuator.status())],
                  actuator.reservoir_j() * 1e6, actuator.doses_delivered(),
                  actuator.total_delivered_tenths() / 10.0);
    }
    if (done) break;
  }

  if (actuator.doses_delivered() == 0) {
    std::printf("\ndose NOT delivered within 10 minutes — harvest too weak "
                "for this pump at this depth\n");
    return 1;
  }
  std::printf("\ndose delivered; audit words are readable over the "
              "standard Gen2 Read path\n");
  return 0;
}
