// Flowgraph receiver: the CIB receive DSP assembled from streaming blocks,
// the way the paper's UHD/GNU Radio prototype structures it (Sec. 5).
//
// One ToneSource per antenna (at its CIB offset, with a random channel
// phase) -> SumSource (the air interface) -> AWGN -> anti-alias FIR ->
// decimator -> envelope detector -> probe. Prints the observed peak against
// the analytic Eq. 6 evaluator.
//
//   $ ./flowgraph_receiver [antennas]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "ivnet/cib/frequency_plan.hpp"
#include "ivnet/cib/objective.hpp"
#include "ivnet/flow/flow.hpp"
#include "ivnet/signal/fir.hpp"

int main(int argc, char** argv) {
  using namespace ivnet;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const auto plan = FrequencyPlan::paper_default().truncated(n);
  const double fs = 8192.0;
  const std::size_t seconds = 1;

  Rng rng(2718);
  std::vector<double> phases(n);
  for (auto& p : phases) p = rng.phase();

  // Source: N antennas summed through their (blind) channel phases.
  auto sum = std::make_unique<flow::SumSource>();
  for (std::size_t i = 0; i < n; ++i) {
    sum->add_branch(std::make_unique<flow::ToneSource>(
                        plan.offsets_hz()[i], fs,
                        seconds * static_cast<std::size_t>(fs), phases[i]),
                    cplx{1.0, 0.0});
  }

  flow::Flowgraph graph;
  graph.set_source(std::move(sum));
  graph.add_transform(std::make_unique<flow::AwgnTransform>(1e-4, 99));
  graph.add_transform(
      std::make_unique<flow::FirTransform>(design_lowpass(1500.0, fs, 41)));
  graph.add_transform(std::make_unique<flow::DecimatorTransform>(2));
  graph.add_transform(std::make_unique<flow::EnvelopeTransform>());
  auto probe = std::make_unique<flow::ProbeSink>();
  auto* probe_ptr = probe.get();
  graph.set_sink(std::move(probe));

  const std::size_t produced = graph.run(1024);

  const double analytic = peak_envelope(plan.offsets_hz(), phases, 1.0);
  std::printf("flowgraph: %zu antennas, %zu samples through "
              "sum -> awgn -> fir -> /2 -> envelope -> probe\n",
              n, produced);
  std::printf("observed peak envelope: %.3f of %zu\n",
              probe_ptr->peak_amplitude(), n);
  std::printf("analytic Eq. 6 peak:    %.3f\n", analytic);
  std::printf("mean power: %.2f (expect ~N = %zu for incoherent tones)\n",
              probe_ptr->mean_power(), n);
  const double err =
      std::abs(probe_ptr->peak_amplitude() - analytic) / analytic;
  std::printf("agreement: %.1f%% error\n", 100.0 * err);
  return err < 0.05 ? 0 : 1;
}
