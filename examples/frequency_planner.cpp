// Frequency planner: run the Eq. 10 constrained optimizer to produce a
// deployable CIB frequency plan, and compare it with the paper's published
// set (Sec. 5(a)).
//
//   $ ./frequency_planner [num_antennas]
#include <cstdio>
#include <cstdlib>

#include "ivnet/cib/frequency_plan.hpp"
#include "ivnet/cib/objective.hpp"
#include "ivnet/cib/optimizer.hpp"

int main(int argc, char** argv) {
  using namespace ivnet;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;

  OptimizerConfig config;
  config.num_antennas = n;
  config.mc_trials = 48;
  config.iterations = 120;
  config.restarts = 2;
  std::printf("optimizing %zu offsets, RMS limit %.1f Hz "
              "(alpha=%.2f, query %.0f us)...\n",
              n, config.constraint.rms_limit_hz(), config.constraint.alpha,
              config.constraint.query_duration_s * 1e6);

  FrequencyOptimizer optimizer(config);
  Rng rng(7);
  const auto result = optimizer.optimize(rng);

  std::printf("\noptimized offsets [Hz]:");
  for (double f : result.offsets_hz) std::printf(" %.0f", f);
  std::printf("\n  expected peak amplitude: %.2f of %zu (%.0f%% of ideal)\n",
              result.score, n, 100.0 * result.score / static_cast<double>(n));
  std::printf("  RMS offset: %.1f Hz, %zu objective evaluations\n",
              result.rms_hz, result.evaluations);

  if (n == 10) {
    const auto paper = FrequencyPlan::paper_default();
    const double paper_score = optimizer.score(paper.offsets_hz());
    std::printf("\npaper's published set scores %.2f (%.0f%% of our "
                "optimized set)\n",
                paper_score, 100.0 * paper_score / result.score);
  }

  // Show the resulting envelope statistics for a random channel draw.
  Rng phase_rng(99);
  std::vector<double> phases(n);
  for (auto& p : phases) p = phase_rng.phase();
  const double peak = peak_envelope(result.offsets_hz, phases, 1.0);
  std::printf("\nexample blind draw: envelope peak %.2f (max possible %zu)\n",
              peak, n);
  return 0;
}
