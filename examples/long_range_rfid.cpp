// Long-range RFID: the Sec. 6.1.2 implication beyond implants — CIB extends
// an off-the-shelf passive RFID's read range from ~5 m to ~38 m (7.6x),
// enabling warehouse-scale inventory from a single rack of antennas.
//
// Sweeps antenna count, reports the maximum operating range, and then runs
// a live inventory round at a chosen distance.
//
//   $ ./long_range_rfid [distance_m]
#include <cstdio>
#include <cstdlib>

#include "ivnet/sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ivnet;

  const double distance = argc > 1 ? std::atof(argv[1]) : 30.0;
  const auto plan = FrequencyPlan::paper_default();
  const auto tag = standard_tag();

  Rng rng(17);
  std::printf("maximum power-up range of a standard passive RFID vs "
              "antenna count:\n");
  std::printf("%-10s %-12s %s\n", "antennas", "range [m]", "gain over 1");
  double r1 = 0.0;
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    const double r = max_air_range(tag, plan.truncated(n), 11, rng, 120.0);
    if (n == 1) r1 = r;
    std::printf("%-10zu %-12.1f %.1fx\n", n, r, r1 > 0 ? r / r1 : 0.0);
  }

  std::printf("\ninventory round at %.1f m with 8 antennas:\n", distance);
  SessionConfig session;
  session.plan = plan.truncated(8);
  int found = 0;
  const int attempts = 5;
  for (int k = 0; k < attempts; ++k) {
    const auto report =
        run_gen2_session(air_scenario(distance), tag, session, rng);
    if (report.rn16_decoded) {
      ++found;
      std::printf("  attempt %d: tag acquired, RN16=0x%04X, corr=%.2f\n", k,
                  report.rn16, report.preamble_correlation);
    } else {
      std::printf("  attempt %d: no tag (%s)\n", k,
                  report.powered ? "uplink too weak" : "below threshold");
    }
  }
  std::printf("acquired %d/%d attempts\n", found, attempts);
  return 0;
}
