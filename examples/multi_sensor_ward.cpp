// Multi-sensor ward: the Sec. 3.7 extension — one CIB beamformer serving
// several implanted battery-free sensors. CIB's time-varying envelope sweeps
// 3-D space, powering every sensor once per period; the Gen2 anti-collision
// layer (Query/QueryRep/ACK) then separates their replies, and a Select
// command addresses one specific implant when the clinician asks for it.
//
//   $ ./multi_sensor_ward [num_sensors]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "ivnet/reader/inventory.hpp"
#include "ivnet/sim/calibration.hpp"
#include "ivnet/sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ivnet;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5;
  Rng rng(31);

  // Each sensor sits at a slightly different depth in the abdomen; first
  // check which of them the 8-antenna CIB beamformer can power at all.
  const auto plan = FrequencyPlan::paper_default().truncated(8);
  std::vector<std::unique_ptr<gen2::TagStateMachine>> sensors;
  std::printf("deploying %zu gastric sensors:\n", n);
  for (std::size_t i = 0; i < n; ++i) {
    const double extra_depth = rng.uniform(0.0, 0.04);
    const auto scen =
        swine_gastric_scenario(calib::kSwineStandoffM, extra_depth);
    const bool powered =
        can_power_up(scen, standard_tag(), plan, 11, 0.5, rng);
    gen2::Bits epc;
    gen2::append_bits(epc, 0x53454E53u, 32);  // "SENS"
    gen2::append_bits(epc, 0u, 32);
    gen2::append_bits(epc, static_cast<std::uint32_t>(i + 1), 32);
    auto sm = std::make_unique<gen2::TagStateMachine>(epc, 500 + i);
    if (powered) sm->power_up();
    std::printf("  sensor %zu: depth +%.1f cm -> %s\n", i + 1,
                extra_depth * 100.0, powered ? "powered" : "below threshold");
    sensors.push_back(std::move(sm));
  }

  std::vector<gen2::TagStateMachine*> ptrs;
  for (auto& s : sensors) ptrs.push_back(s.get());

  // Inventory every powered sensor.
  InventoryConfig cfg;
  cfg.q = 3;
  Rng inv_rng(32);
  const auto all = InventoryRound(cfg).run_until_complete(ptrs, 16, inv_rng);
  std::printf("\ninventory: found %zu sensors in %zu slots "
              "(%zu collisions, %zu empty)\n",
              all.epcs.size(), all.slots_used, all.collisions,
              all.empty_slots);
  for (const auto& epc : all.epcs) {
    std::printf("  sensor id %u reported in\n",
                gen2::read_bits(epc, 64, 32));
  }

  // Address sensor #2 alone via Select (Sec. 3.7).
  for (auto& s : sensors) {
    if (s->state() != gen2::TagState::kOff) {
      s->power_loss();
      s->power_up();  // fresh round, flags cleared
    }
  }
  InventoryConfig addressed;
  addressed.q = 0;
  addressed.use_select = true;
  addressed.select_pointer = 64;
  gen2::append_bits(addressed.select_mask, 2u, 32);
  const auto one = InventoryRound(addressed).run(ptrs, inv_rng);
  std::printf("\naddressed read of sensor 2: %s\n",
              one.epcs.size() == 1 &&
                      gen2::read_bits(one.epcs[0], 64, 32) == 2u
                  ? "ok"
                  : "FAILED");
  return 0;
}
