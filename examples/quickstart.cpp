// Quickstart: power up and read a millimeter-sized battery-free sensor
// through 5 cm of water with an 8-antenna CIB beamformer — the Fig. 7 setup
// in ~40 lines.
//
//   $ ./quickstart
#include <cstdio>

#include "ivnet/sim/calibration.hpp"
#include "ivnet/sim/experiment.hpp"

int main() {
  using namespace ivnet;

  // 1. The published 10-antenna frequency plan, truncated to 8 antennas
  //    (915 MHz center, offsets {0, 7, 20, 49, 68, 73, 90, 113} Hz).
  const FrequencyPlan plan = FrequencyPlan::paper_default().truncated(8);
  std::printf("CIB plan: %zu antennas, RMS offset %.1f Hz (limit %.1f Hz)\n",
              plan.num_antennas(), plan.rms_offset_hz(),
              FlatnessConstraint{}.rms_limit_hz());

  // 2. The scene: a miniature tag 5 cm deep in a water tank, beamformer
  //    0.9 m away.
  const Scenario scene = water_tank_scenario(0.05, calib::kRangeSetupStandoffM);
  const TagConfig tag = miniature_tag();
  std::printf("scene: %s, depth %.1f cm, single-antenna voltage %.3f V "
              "(tag needs %.3f V)\n",
              scene.name.c_str(), scene.depth_m * 100.0,
              single_antenna_voltage(scene, tag, plan.center_hz()),
              TagDevice(tag).min_peak_voltage());

  // 3. Run a full Gen2 session: charge, query on the envelope peak, decode
  //    the RN16 with the out-of-band reader.
  SessionConfig session;
  session.plan = plan;
  // Deep-in-water uplinks need the paper's coherent averaging trick: the
  // tag repeats its reply every CIB period and the reader integrates.
  session.reader.averaging_periods = 100;
  Rng rng(2024);
  const SessionReport report = run_gen2_session(scene, tag, session, rng);

  std::printf("powered:        %s (rail peak %.2f V)\n",
              report.powered ? "yes" : "no", report.peak_rail_v);
  std::printf("query decoded:  %s\n", report.command_decoded ? "yes" : "no");
  std::printf("RN16 decoded:   %s (preamble correlation %.2f)\n",
              report.rn16_decoded ? "yes" : "no",
              report.preamble_correlation);
  if (report.rn16_decoded) {
    std::printf("RN16 = 0x%04X\n", report.rn16);
  }
  return report.rn16_decoded ? 0 : 1;
}
