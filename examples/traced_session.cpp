// Traced session: run a lossy impaired-link sweep with the telemetry sink
// installed, then inspect what the retry machinery actually did — retry and
// brownout counters from the metrics registry, plus a simulated-time trace
// you can load into chrome://tracing or ui.perfetto.dev.
//
//   $ ./traced_session
//   ... prints the headline counters and writes traced_session_trace.json
#include <cstdio>
#include <string>

#include "ivnet/impair/link_session.hpp"
#include "ivnet/impair/waterfall.hpp"
#include "ivnet/obs/obs.hpp"

int main() {
  using namespace ivnet;

  // 1. Install a sink: a metrics registry for order-free aggregates and a
  //    SIM-clock tracer (timestamps are the sessions' simulated seconds, so
  //    the trace is reproducible — rerun it and diff the bytes).
  obs::MetricsRegistry registry;
  obs::Tracer tracer(obs::TraceClock::kSim);
  obs::install(obs::Sink{.metrics = &registry, .tracer = &tracer});

  // 2. A deliberately lossy link: low SNR, heavy burst erasures, and the
  //    brownout model on, so the tag loses its rail mid-dialogue. Two
  //    retries per command buy some of it back.
  DepthSweepConfig sweep;
  sweep.depths_m = {0.02, 0.06, 0.10};
  sweep.trials_per_point = 24;
  sweep.link.snr_db = 14.0;
  sweep.link.num_antennas = 4;
  sweep.link.impair.bursts = {.rate_hz = 120.0, .mean_duration_s = 5e-4,
                              .depth_db = 40.0};
  sweep.link.recovery = RecoveryPolicy::retries(2);
  Rng rng(77);
  std::printf("%-10s %-12s %-10s\n", "depth [m]", "loss [dB]", "success");
  for (const auto& p : run_success_vs_depth(sweep, rng)) {
    std::printf("%-10.2f %-12.1f %-10.3f\n", p.depth_m, p.medium_loss_db,
                p.success_rate);
  }
  obs::install_null();

  // 3. What did recovery do? Pull the counters straight off the registry.
  std::printf("\nsessions      : %llu\n",
              static_cast<unsigned long long>(
                  registry.counter("link.sessions").value()));
  std::printf("successes     : %llu\n",
              static_cast<unsigned long long>(
                  registry.counter("link.success").value()));
  std::printf("retries       : %llu (query %llu, ack %llu)\n",
              static_cast<unsigned long long>(
                  registry.counter("recovery.link.retries").value()),
              static_cast<unsigned long long>(
                  registry.counter("link.retry.query").value()),
              static_cast<unsigned long long>(
                  registry.counter("link.retry.ack").value()));
  std::printf("timeouts      : %llu\n",
              static_cast<unsigned long long>(
                  registry.counter("recovery.link.timeouts").value()));
  std::printf("brownout trips: %llu\n",
              static_cast<unsigned long long>(
                  registry.counter("brownout.comparator_trips").value()));
  std::printf("decode ok/fail: %llu / %llu\n",
              static_cast<unsigned long long>(
                  registry.counter("link.decode.ok").value()),
              static_cast<unsigned long long>(
                  registry.counter("link.decode.fail").value()));
  const obs::Histogram& elapsed = registry.histogram("link.elapsed_s");
  std::printf("session time  : p50 %.3f s, p99 %.3f s\n",
              elapsed.quantile(0.50), elapsed.quantile(0.99));

  // 4. Dump the sim trace; one track per (depth, trial) session.
  const std::string trace = tracer.to_json();
  std::FILE* f = std::fopen("traced_session_trace.json", "w");
  if (f != nullptr) {
    std::fwrite(trace.data(), 1, trace.size(), f);
    std::fclose(f);
    std::printf("\nwrote traced_session_trace.json (%zu events) — open in "
                "chrome://tracing\n",
                tracer.event_count());
  }
  return 0;
}
