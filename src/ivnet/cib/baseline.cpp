#include "ivnet/cib/baseline.hpp"

#include <cassert>
#include <cmath>
#include <complex>
#include <vector>

#include "ivnet/cib/objective.hpp"

namespace ivnet {

double cib_peak_amplitude(const Channel& channel,
                          std::span<const double> offsets_hz, double t_max_s,
                          std::size_t steps) {
  assert(offsets_hz.size() == channel.num_tx());
  // Collapse channel gains into per-tone amplitude/phase, then reuse the
  // envelope evaluator.
  std::vector<double> amplitudes(offsets_hz.size());
  std::vector<double> phases(offsets_hz.size());
  for (std::size_t i = 0; i < offsets_hz.size(); ++i) {
    const cplx h = channel.gain(i, offsets_hz[i]);
    amplitudes[i] = std::abs(h);
    phases[i] = std::arg(h);
  }
  return max_envelope(offsets_hz, phases, amplitudes, t_max_s, steps);
}

double coherent_blind_amplitude(const Channel& channel, double freq_offset_hz) {
  cplx sum{0.0, 0.0};
  for (std::size_t i = 0; i < channel.num_tx(); ++i) {
    sum += channel.gain(i, freq_offset_hz);
  }
  return std::abs(sum);
}

double single_antenna_amplitude(const Channel& channel, std::size_t tx,
                                double freq_offset_hz) {
  return std::abs(channel.gain(tx, freq_offset_hz));
}

double genie_mimo_amplitude(const Channel& channel, double freq_offset_hz) {
  double sum = 0.0;
  for (std::size_t i = 0; i < channel.num_tx(); ++i) {
    sum += std::abs(channel.gain(i, freq_offset_hz));
  }
  return sum;
}

double beamsteering_amplitude(const Channel& channel,
                              std::span<const double> assumed_phases,
                              double freq_offset_hz) {
  assert(assumed_phases.size() == channel.num_tx());
  cplx sum{0.0, 0.0};
  for (std::size_t i = 0; i < channel.num_tx(); ++i) {
    sum += channel.gain(i, freq_offset_hz) *
           std::polar(1.0, -assumed_phases[i]);
  }
  return std::abs(sum);
}

}  // namespace ivnet
