// Baseline transmission strategies the paper compares CIB against
// (Sec. 6.1.1): a single antenna, the N-antenna same-frequency transmitter
// ("the baseline cannot focus its signal toward the receiver"), traditional
// coherent/MIMO beamforming with genie channel knowledge, and an
// antenna-array beamsteerer that only knows geometry (so its precoding is
// correct in air but wrong after tissue boundaries).
//
// All helpers evaluate the PEAK received amplitude at the sensor for a given
// blind channel draw, under the paper's "nominal" power convention: every
// strategy transmits the same per-antenna power (total power scales with N).
#pragma once

#include <span>

#include "ivnet/rf/channel.hpp"

namespace ivnet {

/// Peak amplitude over one period delivered by CIB with the given offsets:
/// max_t |sum_i h_i(df_i) e^{j 2 pi df_i t}|. `t_max_s` is the plan period.
double cib_peak_amplitude(const Channel& channel,
                          std::span<const double> offsets_hz,
                          double t_max_s = 1.0, std::size_t steps = 0);

/// Constant amplitude delivered by N antennas all on the same carrier with
/// unknown (random) phases: |sum_i h_i(f)|. No time variation, so the peak
/// equals the mean — this is the 10-antenna baseline of Fig. 11/12.
double coherent_blind_amplitude(const Channel& channel,
                                double freq_offset_hz = 0.0);

/// Amplitude from a single antenna (index `tx`): |h_tx(f)|.
double single_antenna_amplitude(const Channel& channel, std::size_t tx = 0,
                                double freq_offset_hz = 0.0);

/// Genie-aided MIMO beamforming upper bound: sum_i |h_i(f)| (per-antenna
/// phases perfectly pre-compensated; requires the channel feedback that
/// battery-free sensors cannot provide).
double genie_mimo_amplitude(const Channel& channel, double freq_offset_hz = 0.0);

/// Antenna-array beamsteering that pre-compensates only the phases
/// `assumed_phases` it derives from geometry (air path). The residual error
/// per antenna is the actual channel phase minus the assumed one: in
/// homogeneous air the residuals vanish and this matches genie MIMO; through
/// tissue the residuals are essentially random and the gain collapses to the
/// blind baseline. |sum_i h_i * e^{-j assumed_i}|.
double beamsteering_amplitude(const Channel& channel,
                              std::span<const double> assumed_phases,
                              double freq_offset_hz = 0.0);

}  // namespace ivnet
