#include "ivnet/cib/delta_objective.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "ivnet/common/parallel.hpp"
#include "ivnet/common/units.hpp"
#include "ivnet/obs/obs.hpp"

namespace ivnet {
namespace {

/// Same anchor cadence as cib/objective.cpp and signal/phasor.hpp: the
/// incremental rotation is re-anchored from cos/sin every 4096 steps so
/// multiplicative drift stays O(4096 * eps).
constexpr std::size_t kRenormInterval = 4096;

/// Fixed-point resolution of a tone sample: 2^40. Tone re/im lie in
/// [-1, 1] (plus O(kRenormInterval * eps) rotation drift), so a quantized
/// sample fits in 41 bits and sums of up to 2^12 tones stay below 2^53 —
/// the range where both the int64 sum and its double conversion are exact.
constexpr double kQuantScale = 1099511627776.0;       // 2^40
constexpr double kInvQuantScale = 1.0 / kQuantScale;  // exact power of two

std::int64_t quantize(double v) { return std::llround(v * kQuantScale); }

/// One tone being subtracted (sign -1) or added (sign +1) by a move.
struct MoveAdj {
  double offset_hz = 0.0;
  double phase = 0.0;
  std::int64_t sign = 0;
  // Rotation state (filled by trial_peak).
  double re = 0.0, im = 0.0, cre = 0.0, cim = 0.0;
};

/// Adds tone `sign * e^{j(2 pi f t + phase)}`, quantized, into the lanes.
void accumulate_tone(std::int64_t* wre, std::int64_t* wim, std::size_t steps,
                     double dt, double offset_hz, double phase,
                     std::int64_t sign) {
  const double w = kTwoPi * offset_hz * dt;
  const double cre = std::cos(w);
  const double cim = std::sin(w);
  double re = std::cos(phase);
  double im = std::sin(phase);
  for (std::size_t s = 0; s < steps; ++s) {
    if (s != 0 && s % kRenormInterval == 0) {
      const double ph = phase + w * static_cast<double>(s);
      re = std::cos(ph);
      im = std::sin(ph);
    }
    wre[s] += sign * quantize(re);
    wim[s] += sign * quantize(im);
    const double r = re * cre - im * cim;
    im = re * cim + im * cre;
    re = r;
  }
}

/// Scans one trial's envelope from the fixed-point lanes, with up to two
/// move adjustments applied on the fly, and returns the parabolic-refined
/// peak amplitude (same refinement as peak_envelope in cib/objective.cpp).
/// When `wre`/`wim` are non-null the adjusted sums are written back
/// (aliasing sre/sim is fine: each sample is read before it is written).
double trial_peak(const std::int64_t* sre, const std::int64_t* sim,
                  std::int64_t* wre, std::int64_t* wim, std::size_t steps,
                  double dt, MoveAdj* adj, std::size_t n_adj) {
  for (std::size_t a = 0; a < n_adj; ++a) {
    const double w = kTwoPi * adj[a].offset_hz * dt;
    adj[a].cre = std::cos(w);
    adj[a].cim = std::sin(w);
    adj[a].re = std::cos(adj[a].phase);
    adj[a].im = std::sin(adj[a].phase);
  }
  double best_sq = -1.0;
  std::size_t best = 0;
  double prev_sq = 0.0;
  double y0 = 0.0;  // squared envelope one sample before the peak
  double y2 = 0.0;  // ... and one sample after
  bool capture_next = false;
  for (std::size_t s = 0; s < steps; ++s) {
    std::int64_t qr = sre[s];
    std::int64_t qi = sim[s];
    for (std::size_t a = 0; a < n_adj; ++a) {
      if (s != 0 && s % kRenormInterval == 0) {
        const double ph = adj[a].phase +
                          kTwoPi * adj[a].offset_hz * dt *
                              static_cast<double>(s);
        adj[a].re = std::cos(ph);
        adj[a].im = std::sin(ph);
      }
      qr += adj[a].sign * quantize(adj[a].re);
      qi += adj[a].sign * quantize(adj[a].im);
      const double r = adj[a].re * adj[a].cre - adj[a].im * adj[a].cim;
      adj[a].im = adj[a].re * adj[a].cim + adj[a].im * adj[a].cre;
      adj[a].re = r;
    }
    if (wre != nullptr) {
      wre[s] = qr;
      wim[s] = qi;
    }
    const double x = static_cast<double>(qr) * kInvQuantScale;
    const double y = static_cast<double>(qi) * kInvQuantScale;
    const double sq = x * x + y * y;
    if (capture_next) {
      y2 = sq;
      capture_next = false;
    }
    if (sq > best_sq) {
      best_sq = sq;
      best = s;
      y0 = prev_sq;
      capture_next = true;
    }
    prev_sq = sq;
  }
  if (best == 0 || best + 1 >= steps) return std::sqrt(best_sq);
  const double y1 = best_sq;
  const double denom = y0 - 2.0 * y1 + y2;
  if (std::abs(denom) < 1e-12) return std::sqrt(y1);
  const double delta = 0.5 * (y0 - y2) / denom;
  const double peak_sq = y1 - 0.25 * (y0 - y2) * delta;
  return std::sqrt(std::max(peak_sq, y1));
}

/// Sequential trial-order mean: bitwise identical across pool sizes.
double trial_mean(std::span<const double> peaks) {
  double total = 0.0;
  for (double p : peaks) total += p;
  return total / static_cast<double>(std::max<std::size_t>(1, peaks.size()));
}

}  // namespace

std::size_t DeltaEnvelopeState::planner_steps(double max_offset_hz,
                                              double t_max_s) {
  const double steps =
      16.0 * std::max(1.0, std::abs(max_offset_hz)) * t_max_s;
  if (!std::isfinite(steps)) return kMaxPlannerSteps;
  return static_cast<std::size_t>(
      std::clamp(steps, 256.0, static_cast<double>(kMaxPlannerSteps)));
}

DeltaEnvelopeState::DeltaEnvelopeState(std::span<const double> offsets_hz,
                                       const DeltaEvalConfig& config)
    : config_(config), offsets_(offsets_hz.begin(), offsets_hz.end()) {
  assert(!offsets_.empty());
  config_.mc_trials = std::max<std::size_t>(1, config_.mc_trials);
  double max_offset = 0.0;
  for (double f : offsets_) max_offset = std::max(max_offset, std::abs(f));
  steps_ = config_.steps != 0 ? config_.steps
                              : planner_steps(max_offset, config_.t_max_s);
  dt_ = config_.t_max_s / static_cast<double>(steps_);

  const std::size_t n = offsets_.size();
  const std::size_t trials = config_.mc_trials;
  phases_.resize(trials * n);
  sum_re_.assign(trials * steps_, 0);
  sum_im_.assign(trials * steps_, 0);
  peaks_.resize(trials);

  // Phase draws mirror peak_amplitude_samples: one stream base from a
  // score_seed Rng, one counter-derived sub-stream per trial, tone i pairs
  // with the trial's i-th draw.
  Rng seed_rng(config_.score_seed);
  const std::uint64_t base = seed_rng();
  obs::count("planner.evals");
  parallel_for(trials, [&](std::size_t t) {
    Rng trial_rng = Rng::stream(base, t);
    double* phases = phases_.data() + t * n;
    for (std::size_t i = 0; i < n; ++i) phases[i] = trial_rng.phase();
    std::int64_t* wre = sum_re_.data() + t * steps_;
    std::int64_t* wim = sum_im_.data() + t * steps_;
    for (std::size_t i = 0; i < n; ++i) {
      accumulate_tone(wre, wim, steps_, dt_, offsets_[i], phases[i], +1);
    }
    peaks_[t] = trial_peak(wre, wim, nullptr, nullptr, steps_, dt_, nullptr,
                           0);
  });
  score_ = trial_mean(peaks_);
}

double DeltaEnvelopeState::score_move(std::size_t tone,
                                      double new_offset_hz) const {
  assert(tone < offsets_.size());
  const std::size_t n = offsets_.size();
  const double old_offset = offsets_[tone];
  obs::count("planner.evals");
  std::vector<double> peaks(config_.mc_trials);
  parallel_for(config_.mc_trials, [&](std::size_t t) {
    MoveAdj adj[2];
    adj[0] = {old_offset, phases_[t * n + tone], -1};
    adj[1] = {new_offset_hz, phases_[t * n + tone], +1};
    peaks[t] = trial_peak(sum_re_.data() + t * steps_,
                          sum_im_.data() + t * steps_, nullptr, nullptr,
                          steps_, dt_, adj, 2);
  });
  return trial_mean(peaks);
}

void DeltaEnvelopeState::commit_move(std::size_t tone, double new_offset_hz) {
  assert(tone < offsets_.size());
  const std::size_t n = offsets_.size();
  const double old_offset = offsets_[tone];
  parallel_for(config_.mc_trials, [&](std::size_t t) {
    MoveAdj adj[2];
    adj[0] = {old_offset, phases_[t * n + tone], -1};
    adj[1] = {new_offset_hz, phases_[t * n + tone], +1};
    std::int64_t* wre = sum_re_.data() + t * steps_;
    std::int64_t* wim = sum_im_.data() + t * steps_;
    peaks_[t] = trial_peak(wre, wim, wre, wim, steps_, dt_, adj, 2);
  });
  offsets_[tone] = new_offset_hz;
  score_ = trial_mean(peaks_);
}

double DeltaEnvelopeState::full_score(
    std::span<const double> offsets_hz) const {
  assert(offsets_hz.size() == offsets_.size());
  const std::size_t n = offsets_hz.size();
  obs::count("planner.evals");
  std::vector<double> peaks(config_.mc_trials);
  parallel_for(config_.mc_trials, [&](std::size_t t) {
    std::vector<std::int64_t> wre(steps_, 0);
    std::vector<std::int64_t> wim(steps_, 0);
    const double* phases = phases_.data() + t * n;
    for (std::size_t i = 0; i < n; ++i) {
      accumulate_tone(wre.data(), wim.data(), steps_, dt_, offsets_hz[i],
                      phases[i], +1);
    }
    peaks[t] = trial_peak(wre.data(), wim.data(), nullptr, nullptr, steps_,
                          dt_, nullptr, 0);
  });
  return trial_mean(peaks);
}

}  // namespace ivnet
