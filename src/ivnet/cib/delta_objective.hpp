// Delta-evaluated Eq. 6 objective for the large-N frequency planner.
//
// The annealing search moves ONE offset per step, so re-scoring a candidate
// does not need the full O(N * steps * trials) envelope pass: this state
// object keeps, for every Monte-Carlo trial, the complex sum of all tone
// phasors at every evaluation-grid sample, and evaluates a single-offset
// move by subtracting the old tone's trajectory and adding the new one —
// O(steps) per trial per move, independent of N.
//
// Exactness contract (the property the planner tests memcmp): the per-step
// partial sums are held in FIXED-POINT int64 lanes (each tone sample is
// quantized once at 2^-40 resolution, see kQuantScale). Integer addition is
// exact and associative, so a sum reached through any history of
// subtract-old/add-new updates is bit-identical to a from-scratch rebuild
// over the same tone set — which floating-point accumulation cannot
// guarantee. Dequantizing (`double(sum) * 2^-40`) is exact too (sums stay
// far below 2^53 and the scale is a power of two), so the envelope values,
// the per-trial peaks, and the final score stream are memcmp-identical
// between the delta path and `full_score`, the retained full evaluation.
//
// Accuracy contract: quantization costs at most 2^-41 per tone sample
// (~1e-10 absolute on an N-tone envelope), pinned against the original
// double-precision `expected_peak_amplitude` oracle with tolerance in the
// planner tests. The grid, phase draws (common random numbers from
// score_seed via counter-derived Rng::stream sub-streams), peak scan, and
// parabolic refinement all mirror cib/objective.cpp, and the tone rotation
// uses the same anchor-every-4096-steps policy as signal/phasor.hpp.
//
// Layout: structure-of-arrays — one int64 re lane and one im lane per
// trial, `steps` samples each, contiguous per trial so the per-trial update
// is a single linear pass.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ivnet/common/rng.hpp"

namespace ivnet {

struct DeltaEvalConfig {
  std::size_t mc_trials = 32;       ///< phase draws per score
  double t_max_s = 1.0;             ///< cyclic period (T = 1 s)
  std::uint64_t score_seed = 1234;  ///< common random numbers for scoring
  /// Evaluation-grid samples. 0 derives planner_steps() from the build
  /// set's largest offset. Must stay fixed for the lifetime of the state
  /// (moves change the max offset; a per-candidate grid would invalidate
  /// every partial sum), so the planner sizes it from the feasibility cap.
  std::size_t steps = 0;
};

/// Per-trial fixed-point partial sums of the Eq. 6 envelope over the
/// evaluation grid, supporting O(steps)-per-trial single-offset moves.
/// Not thread-safe for concurrent mutation; score_move/full_score are
/// const and parallelize internally over trials (deterministic at any
/// IVNET_THREADS: per-trial slots, trial-order reduction).
class DeltaEnvelopeState {
 public:
  /// Grid ceiling for the planner. The state holds 16 bytes per
  /// (trial, sample), so memory is mc_trials * steps * 16 — at this
  /// ceiling and 32 trials that is 64 MiB; size mc_trials accordingly.
  static constexpr std::size_t kMaxPlannerSteps = 1u << 17;

  /// ~16 samples per cycle of the fastest allowed beat (the same heuristic
  /// as default_steps), clamped to [256, kMaxPlannerSteps]. `max_offset_hz`
  /// should be the search's offset cap, not the current set's max, so the
  /// grid never changes mid-search. An infinite product clamps to the
  /// ceiling; a NaN offset falls out of the max(1, .) guard (same policy
  /// as default_steps) and lands on the floor.
  static std::size_t planner_steps(double max_offset_hz, double t_max_s);

  /// Builds the partial sums for `offsets_hz` (tone i pairs with the i-th
  /// phase draw of each trial; order is the caller's, no sorting).
  DeltaEnvelopeState(std::span<const double> offsets_hz,
                     const DeltaEvalConfig& config);

  /// Mean-over-trials peak envelope amplitude of the current offset set.
  double score() const { return score_; }

  /// Score of the set with tone `tone` moved to `new_offset_hz`, without
  /// mutating the state. O(steps) per trial.
  double score_move(std::size_t tone, double new_offset_hz) const;

  /// Applies the move: updates the partial sums, per-trial peaks, and
  /// score(). After commit, score() is bit-identical to what score_move
  /// returned for the same move.
  void commit_move(std::size_t tone, double new_offset_hz);

  /// The retained full evaluation (the delta oracle): rebuilds the partial
  /// sums for `offsets_hz` from scratch — same trials, phases, and grid —
  /// and scores them. Bit-identical to the delta path for the same offset
  /// set, whatever move history produced it.
  double full_score(std::span<const double> offsets_hz) const;

  std::span<const double> offsets_hz() const { return offsets_; }
  std::size_t steps() const { return steps_; }
  std::size_t trials() const { return config_.mc_trials; }

 private:
  DeltaEvalConfig config_;
  std::size_t steps_ = 0;
  double dt_ = 0.0;
  std::vector<double> offsets_;  ///< current set, tone order
  std::vector<double> phases_;   ///< trials x n, phases_[t * n + i]
  std::vector<std::int64_t> sum_re_;  ///< trials x steps fixed-point lanes
  std::vector<std::int64_t> sum_im_;
  std::vector<double> peaks_;  ///< per-trial refined peak amplitude
  double score_ = 0.0;
};

}  // namespace ivnet
