#include "ivnet/cib/frequency_plan.hpp"

#include <cassert>
#include <cmath>
#include <numeric>
#include <utility>

#include "ivnet/common/units.hpp"

namespace ivnet {

double FlatnessConstraint::rms_limit_hz() const {
  return std::sqrt(alpha / (2.0 * kPi * kPi * query_duration_s *
                            query_duration_s));
}

FrequencyPlan::FrequencyPlan(double center_hz, std::vector<double> offsets_hz)
    : center_hz_(center_hz), offsets_hz_(std::move(offsets_hz)) {
  assert(!offsets_hz_.empty());
}

FrequencyPlan FrequencyPlan::paper_default(double center_hz) {
  return FrequencyPlan(center_hz,
                       {0, 7, 20, 49, 68, 73, 90, 113, 121, 137});
}

FrequencyPlan FrequencyPlan::truncated(std::size_t n) const {
  assert(n >= 1 && n <= offsets_hz_.size());
  return FrequencyPlan(
      center_hz_, std::vector<double>(offsets_hz_.begin(),
                                      offsets_hz_.begin() +
                                          static_cast<std::ptrdiff_t>(n)));
}

double FrequencyPlan::rms_offset_hz() const {
  double sum_sq = 0.0;
  for (double f : offsets_hz_) sum_sq += f * f;
  return std::sqrt(sum_sq / static_cast<double>(offsets_hz_.size()));
}

bool FrequencyPlan::integer_offsets() const {
  for (double f : offsets_hz_) {
    if (f < 0.0 || std::abs(f - std::round(f)) > 1e-9) return false;
  }
  return true;
}

bool FrequencyPlan::satisfies(const FlatnessConstraint& constraint) const {
  return integer_offsets() && rms_offset_hz() <= constraint.rms_limit_hz();
}

double FrequencyPlan::period_s() const {
  if (!integer_offsets()) return 0.0;
  long long g = 0;
  for (double f : offsets_hz_) {
    const auto v = static_cast<long long>(std::llround(f));
    if (v > 0) g = std::gcd(g, v);
  }
  if (g == 0) return 0.0;
  return 1.0 / static_cast<double>(g);
}

}  // namespace ivnet
