// The CIB frequency plan: a center carrier plus one small integer offset per
// antenna (Sec. 3.6). Integer offsets give the cyclic-operation property
// (peak recurs every T = 1 s); their RMS is bounded by the query-amplitude
// flatness constraint of Eq. 9.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ivnet {

/// Eq. 9's flatness constraint: (1/N) * sum(df_i^2) <= alpha / (2*pi^2*dt^2).
struct FlatnessConstraint {
  double alpha = 0.5;             ///< max tolerable envelope fluctuation
  double query_duration_s = 800e-6;  ///< delta-t: the RFID query length

  /// Maximum allowed RMS offset [Hz]: sqrt(alpha / (2*pi^2*dt^2)).
  /// With the defaults this is the paper's 199 Hz.
  double rms_limit_hz() const;
};

/// A CIB frequency assignment for N antennas.
class FrequencyPlan {
 public:
  /// @param center_hz  The common carrier f1 (915 MHz in the prototype).
  /// @param offsets_hz Per-antenna offsets df_i; by convention the first is 0.
  FrequencyPlan(double center_hz, std::vector<double> offsets_hz);

  /// The 10-antenna plan of Sec. 5(a):
  /// {0, 7, 20, 49, 68, 73, 90, 113, 121, 137} Hz on a 915 MHz carrier.
  static FrequencyPlan paper_default(double center_hz = 915e6);

  /// Truncate to the first `n` antennas (used for the antenna-count sweeps).
  FrequencyPlan truncated(std::size_t n) const;

  double center_hz() const { return center_hz_; }
  const std::vector<double>& offsets_hz() const { return offsets_hz_; }
  std::size_t num_antennas() const { return offsets_hz_.size(); }

  /// Absolute carrier of antenna i.
  double carrier_hz(std::size_t i) const { return center_hz_ + offsets_hz_[i]; }

  /// RMS of the offsets: sqrt((1/N) * sum(df_i^2)).
  double rms_offset_hz() const;

  /// True when every offset is a non-negative integer number of Hz and the
  /// RMS satisfies the constraint.
  bool satisfies(const FlatnessConstraint& constraint) const;

  /// Envelope repetition period [s]: 1/gcd(offsets) for integer offsets
  /// (1 s when the nonzero offsets are coprime), or 0 if no nonzero offset.
  double period_s() const;

  /// True if all offsets are integers (required for cyclic operation).
  bool integer_offsets() const;

 private:
  double center_hz_;
  std::vector<double> offsets_hz_;
};

}  // namespace ivnet
