#include "ivnet/cib/hopping.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "ivnet/cib/objective.hpp"

namespace ivnet {

FrequencyHopper::FrequencyHopper(HopperConfig config)
    : config_(std::move(config)),
      estimates_(config_.candidate_centers_hz.size(), config_.optimistic_init),
      probed_(config_.candidate_centers_hz.size(), false) {
  assert(!config_.candidate_centers_hz.empty());
}

double FrequencyHopper::band_estimate(std::size_t band) const {
  assert(band < estimates_.size());
  return estimates_[band];
}

bool FrequencyHopper::report(double peak_amplitude) {
  if (!probed_[current_]) {
    estimates_[current_] = peak_amplitude;
    probed_[current_] = true;
  } else {
    estimates_[current_] += config_.ewma_alpha *
                            (peak_amplitude - estimates_[current_]);
  }

  // Best smoothed estimate across bands (optimistic for unprobed ones, so
  // exploration happens naturally).
  std::size_t best = 0;
  for (std::size_t b = 1; b < estimates_.size(); ++b) {
    if (estimates_[b] > estimates_[best]) best = b;
  }
  if (best != current_ &&
      estimates_[current_] < config_.hop_ratio * estimates_[best]) {
    current_ = best;
    ++hops_;
    return true;
  }
  return false;
}

double band_peak_amplitude(const Channel& channel,
                           std::span<const double> offsets_hz,
                           double band_offset_hz, double t_max_s) {
  assert(offsets_hz.size() == channel.num_tx());
  std::vector<double> amplitudes(offsets_hz.size());
  std::vector<double> phases(offsets_hz.size());
  for (std::size_t i = 0; i < offsets_hz.size(); ++i) {
    const cplx h = channel.gain(i, band_offset_hz + offsets_hz[i]);
    amplitudes[i] = std::abs(h);
    phases[i] = std::arg(h);
  }
  const std::size_t steps = default_steps(offsets_hz, t_max_s);
  const auto env =
      cib_envelope(offsets_hz, phases, amplitudes, t_max_s, steps);
  double peak = 0.0;
  for (double v : env) peak = std::max(peak, v);
  return peak;
}

}  // namespace ivnet
