// Adaptive center-frequency hopping — the Sec. 3.7 robustness extension:
// "In some scenarios, all the frequencies may experience multipath fading
// ... An extension of this design may adaptively hop the center frequency
// to a different band to improve performance."
//
// CIB's Hz-scale offsets all fade together when the whole band is in a
// frequency-selective notch (the channel's coherence bandwidth is MHz-scale,
// far wider than the 137 Hz plan). The hopper tracks a per-band EWMA of the
// delivered peak amplitude and moves the center carrier when the current
// band underperforms, probing unexplored bands round-robin.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ivnet/rf/channel.hpp"

namespace ivnet {

struct HopperConfig {
  /// Candidate center carriers, e.g. the 902-928 MHz ISM hop set.
  std::vector<double> candidate_centers_hz = {903e6, 909e6, 915e6, 921e6,
                                              927e6};
  /// Hop when the current band's smoothed peak falls below this fraction of
  /// the best band seen so far.
  double hop_ratio = 0.7;
  /// EWMA smoothing factor for per-band peak estimates.
  double ewma_alpha = 0.5;
  /// Estimate assigned to never-probed bands (optimistic to force probing).
  double optimistic_init = 1e9;
};

/// Stateful band selector.
class FrequencyHopper {
 public:
  explicit FrequencyHopper(HopperConfig config);

  std::size_t num_bands() const { return config_.candidate_centers_hz.size(); }
  std::size_t current_band() const { return current_; }
  double current_center_hz() const {
    return config_.candidate_centers_hz[current_];
  }

  /// Report the measured peak amplitude delivered in the current band this
  /// period. Returns true if the hopper decided to change bands.
  bool report(double peak_amplitude);

  /// Smoothed estimate for one band (optimistic_init if never probed).
  double band_estimate(std::size_t band) const;

  std::size_t hops() const { return hops_; }

 private:
  HopperConfig config_;
  std::vector<double> estimates_;
  std::vector<bool> probed_;
  std::size_t current_ = 0;
  std::size_t hops_ = 0;
};

/// Evaluate the CIB peak amplitude when the whole plan is re-centered at
/// `band_offset_hz` from the channel's reference frequency: each antenna's
/// gain is taken at band_offset + its own CIB offset.
double band_peak_amplitude(const Channel& channel,
                           std::span<const double> offsets_hz,
                           double band_offset_hz, double t_max_s = 1.0);

}  // namespace ivnet
