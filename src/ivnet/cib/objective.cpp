#include "ivnet/cib/objective.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <complex>

#include "ivnet/common/units.hpp"

namespace ivnet {

std::size_t default_steps(std::span<const double> offsets_hz, double t_max_s) {
  double max_offset = 1.0;
  for (double f : offsets_hz) max_offset = std::max(max_offset, std::abs(f));
  // ~16 samples per cycle of the fastest beat; enough for a parabolic
  // refinement to land within a fraction of a percent of the true peak.
  const double steps = 16.0 * max_offset * t_max_s;
  return static_cast<std::size_t>(
      std::clamp(steps, 256.0, static_cast<double>(1u << 20)));
}

std::vector<double> cib_envelope(std::span<const double> offsets_hz,
                                 std::span<const double> phases,
                                 std::span<const double> amplitudes,
                                 double t_max_s, std::size_t steps) {
  assert(offsets_hz.size() == phases.size());
  assert(amplitudes.empty() || amplitudes.size() == offsets_hz.size());
  std::vector<double> env(steps, 0.0);
  const double dt = t_max_s / static_cast<double>(steps);
  // Incremental rotation per tone.
  std::vector<std::complex<double>> rot(offsets_hz.size());
  std::vector<std::complex<double>> step(offsets_hz.size());
  for (std::size_t i = 0; i < offsets_hz.size(); ++i) {
    const double amp = amplitudes.empty() ? 1.0 : amplitudes[i];
    rot[i] = std::polar(amp, phases[i]);
    step[i] = std::polar(1.0, kTwoPi * offsets_hz[i] * dt);
  }
  for (std::size_t n = 0; n < steps; ++n) {
    std::complex<double> sum{0.0, 0.0};
    for (std::size_t i = 0; i < rot.size(); ++i) {
      sum += rot[i];
      rot[i] *= step[i];
    }
    env[n] = std::abs(sum);
  }
  return env;
}

double peak_envelope(std::span<const double> offsets_hz,
                     std::span<const double> phases, double t_max_s,
                     std::size_t steps) {
  if (steps == 0) steps = default_steps(offsets_hz, t_max_s);
  const auto env =
      cib_envelope(offsets_hz, phases, /*amplitudes=*/{}, t_max_s, steps);
  std::size_t best = 0;
  for (std::size_t i = 1; i < env.size(); ++i) {
    if (env[i] > env[best]) best = i;
  }
  // Parabolic refinement on the squared envelope around the best sample.
  if (best == 0 || best + 1 >= env.size()) return env[best];
  const double y0 = env[best - 1] * env[best - 1];
  const double y1 = env[best] * env[best];
  const double y2 = env[best + 1] * env[best + 1];
  const double denom = y0 - 2.0 * y1 + y2;
  if (std::abs(denom) < 1e-12) return env[best];
  const double delta = 0.5 * (y0 - y2) / denom;
  const double peak_sq = y1 - 0.25 * (y0 - y2) * delta;
  return std::sqrt(std::max(peak_sq, y1));
}

SampleSet peak_amplitude_samples(std::span<const double> offsets_hz,
                                 std::size_t trials, Rng& rng,
                                 double t_max_s) {
  SampleSet set;
  std::vector<double> phases(offsets_hz.size());
  const std::size_t steps = default_steps(offsets_hz, t_max_s);
  for (std::size_t k = 0; k < trials; ++k) {
    for (auto& p : phases) p = rng.phase();
    set.add(peak_envelope(offsets_hz, phases, t_max_s, steps));
  }
  return set;
}

double expected_peak_amplitude(std::span<const double> offsets_hz,
                               std::size_t trials, Rng& rng, double t_max_s) {
  return peak_amplitude_samples(offsets_hz, trials, rng, t_max_s).mean();
}

double expected_peak_power_gain(std::span<const double> offsets_hz,
                                std::size_t trials, Rng& rng, double t_max_s) {
  const auto set = peak_amplitude_samples(offsets_hz, trials, rng, t_max_s);
  double sum = 0.0;
  for (double a : set.values()) sum += a * a;
  return sum / static_cast<double>(std::max<std::size_t>(1, set.size()));
}

double expected_conduction_fraction(std::span<const double> offsets_hz,
                                    double threshold_amplitude,
                                    std::size_t trials, Rng& rng,
                                    double t_max_s) {
  std::vector<double> phases(offsets_hz.size());
  const std::size_t steps = default_steps(offsets_hz, t_max_s);
  double total = 0.0;
  for (std::size_t k = 0; k < trials; ++k) {
    for (auto& p : phases) p = rng.phase();
    const auto env = cib_envelope(offsets_hz, phases, {}, t_max_s, steps);
    std::size_t above = 0;
    for (double v : env) {
      if (v >= threshold_amplitude) ++above;
    }
    total += static_cast<double>(above) / static_cast<double>(steps);
  }
  return total / static_cast<double>(std::max<std::size_t>(1, trials));
}

}  // namespace ivnet
