#include "ivnet/cib/objective.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "ivnet/common/parallel.hpp"
#include "ivnet/common/units.hpp"
#include "ivnet/obs/obs.hpp"

namespace ivnet {
namespace {

/// Re-anchor the rotating phasors from std::polar this often. The
/// incremental rotation multiplies a unit phasor up to 2^20 times; without
/// periodic renormalization the product drifts off the unit circle by
/// roughly steps * eps in amplitude and phase.
constexpr std::size_t kRenormInterval = 4096;

/// Tone counts up to this stay on the stack (the paper uses at most 10).
constexpr std::size_t kInlineTones = 32;

/// Stack-first scratch buffer: no heap traffic for realistic tone counts.
class Scratch {
 public:
  double* get(std::size_t n) {
    if (n <= kInlineTones) return inline_;
    heap_.resize(n);
    return heap_.data();
  }

 private:
  double inline_[kInlineTones];
  std::vector<double> heap_;
};

/// Scans the squared envelope |sum_i a_i e^{j(2 pi df_i t + beta_i)}|^2 over
/// `steps` samples of [0, t_max), calling per_sample(step, magnitude_sq) for
/// each. Structure-of-arrays layout (separate re/im lanes) with a fused
/// sum+rotate loop the compiler can autovectorize; phasors are re-anchored
/// from std::polar every kRenormInterval steps to kill multiplicative drift.
template <typename PerSample>
void scan_envelope_sq(std::span<const double> offsets_hz,
                      std::span<const double> phases,
                      std::span<const double> amplitudes, double t_max_s,
                      std::size_t steps, PerSample&& per_sample) {
  assert(offsets_hz.size() == phases.size());
  assert(amplitudes.empty() || amplitudes.size() == offsets_hz.size());
  const std::size_t n = offsets_hz.size();
  const double dt = t_max_s / static_cast<double>(steps);

  Scratch sre, sim, scre, scim;
  double* re = sre.get(n);
  double* im = sim.get(n);
  double* cre = scre.get(n);
  double* cim = scim.get(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double w = kTwoPi * offsets_hz[i] * dt;
    cre[i] = std::cos(w);
    cim[i] = std::sin(w);
  }
  const auto anchor = [&](std::size_t step) {
    for (std::size_t i = 0; i < n; ++i) {
      const double amp = amplitudes.empty() ? 1.0 : amplitudes[i];
      const double ph =
          phases[i] + kTwoPi * offsets_hz[i] * dt * static_cast<double>(step);
      re[i] = amp * std::cos(ph);
      im[i] = amp * std::sin(ph);
    }
  };

  anchor(0);
  for (std::size_t s = 0; s < steps; ++s) {
    if (s != 0 && s % kRenormInterval == 0) anchor(s);
    double sum_re = 0.0;
    double sum_im = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum_re += re[i];
      sum_im += im[i];
      const double r = re[i] * cre[i] - im[i] * cim[i];
      im[i] = re[i] * cim[i] + im[i] * cre[i];
      re[i] = r;
    }
    per_sample(s, sum_re * sum_re + sum_im * sum_im);
  }
}

}  // namespace

std::size_t default_steps(std::span<const double> offsets_hz, double t_max_s) {
  double max_offset = 1.0;
  // NaN offsets fall out of std::max naturally; an inf offset propagates
  // into `steps` and clamps to the ceiling below.
  for (double f : offsets_hz) max_offset = std::max(max_offset, std::abs(f));
  // ~16 samples per cycle of the fastest beat; enough for a parabolic
  // refinement to land within a fraction of a percent of the true peak.
  const double steps = 16.0 * max_offset * t_max_s;
  // A NaN product (e.g. NaN t_max) would sail through std::clamp and turn
  // into an undefined size_t cast — pin it to the documented ceiling.
  if (!std::isfinite(steps)) return kMaxDefaultSteps;
  return static_cast<std::size_t>(
      std::clamp(steps, 256.0, static_cast<double>(kMaxDefaultSteps)));
}

std::vector<double> cib_envelope(std::span<const double> offsets_hz,
                                 std::span<const double> phases,
                                 std::span<const double> amplitudes,
                                 double t_max_s, std::size_t steps) {
  std::vector<double> env(steps, 0.0);
  scan_envelope_sq(offsets_hz, phases, amplitudes, t_max_s, steps,
                   [&env](std::size_t s, double sq) { env[s] = std::sqrt(sq); });
  return env;
}

double peak_envelope(std::span<const double> offsets_hz,
                     std::span<const double> phases, double t_max_s,
                     std::size_t steps) {
  if (steps == 0) steps = default_steps(offsets_hz, t_max_s);
  double best_sq = -1.0;
  std::size_t best = 0;
  double prev_sq = 0.0;
  double y0 = 0.0;  // squared envelope one sample before the peak
  double y2 = 0.0;  // ... and one sample after
  bool capture_next = false;
  scan_envelope_sq(offsets_hz, phases, /*amplitudes=*/{}, t_max_s, steps,
                   [&](std::size_t s, double sq) {
                     if (capture_next) {
                       y2 = sq;
                       capture_next = false;
                     }
                     if (sq > best_sq) {
                       best_sq = sq;
                       best = s;
                       y0 = prev_sq;
                       capture_next = true;
                     }
                     prev_sq = sq;
                   });
  // Parabolic refinement on the squared envelope around the best sample.
  if (best == 0 || best + 1 >= steps) return std::sqrt(best_sq);
  const double y1 = best_sq;
  const double denom = y0 - 2.0 * y1 + y2;
  if (std::abs(denom) < 1e-12) return std::sqrt(y1);
  const double delta = 0.5 * (y0 - y2) / denom;
  const double peak_sq = y1 - 0.25 * (y0 - y2) * delta;
  return std::sqrt(std::max(peak_sq, y1));
}

double max_envelope(std::span<const double> offsets_hz,
                    std::span<const double> phases,
                    std::span<const double> amplitudes, double t_max_s,
                    std::size_t steps) {
  if (steps == 0) steps = default_steps(offsets_hz, t_max_s);
  double best_sq = 0.0;
  scan_envelope_sq(offsets_hz, phases, amplitudes, t_max_s, steps,
                   [&best_sq](std::size_t, double sq) {
                     if (sq > best_sq) best_sq = sq;
                   });
  return std::sqrt(best_sq);
}

SampleSet peak_amplitude_samples(std::span<const double> offsets_hz,
                                 std::size_t trials, Rng& rng,
                                 double t_max_s) {
  const std::size_t n = offsets_hz.size();
  const std::size_t steps = default_steps(offsets_hz, t_max_s);
  // Hooks stay OUTSIDE the parallel trial body: the envelope kernel is the
  // repo's hottest loop and must not pay per-sample telemetry.
  obs::ScopedSpan span("cib.peak_samples", "cib");
  obs::count("cib.peak_samples.calls");
  obs::count("cib.peak_samples.trials", trials);
  const std::uint64_t base = rng();
  std::vector<double> peaks(trials);
  parallel_for(trials, [&](std::size_t k) {
    Rng trial_rng = Rng::stream(base, k);
    Scratch scratch;
    double* phases = scratch.get(n);
    for (std::size_t i = 0; i < n; ++i) phases[i] = trial_rng.phase();
    peaks[k] = peak_envelope(offsets_hz, std::span<const double>(phases, n),
                             t_max_s, steps);
  });
  SampleSet set;
  for (double p : peaks) {
    set.add(p);
    obs::observe("cib.peak_amplitude", p);
  }
  return set;
}

double expected_peak_amplitude(std::span<const double> offsets_hz,
                               std::size_t trials, Rng& rng, double t_max_s) {
  return peak_amplitude_samples(offsets_hz, trials, rng, t_max_s).mean();
}

double expected_peak_power_gain(std::span<const double> offsets_hz,
                                std::size_t trials, Rng& rng, double t_max_s) {
  const auto set = peak_amplitude_samples(offsets_hz, trials, rng, t_max_s);
  double sum = 0.0;
  for (double a : set.values()) sum += a * a;
  return sum / static_cast<double>(std::max<std::size_t>(1, set.size()));
}

double expected_conduction_fraction(std::span<const double> offsets_hz,
                                    double threshold_amplitude,
                                    std::size_t trials, Rng& rng,
                                    double t_max_s) {
  const std::size_t n = offsets_hz.size();
  const std::size_t steps = default_steps(offsets_hz, t_max_s);
  obs::ScopedSpan span("cib.conduction", "cib");
  obs::count("cib.conduction.calls");
  obs::count("cib.conduction.trials", trials);
  const double threshold_sq = threshold_amplitude * threshold_amplitude;
  const std::uint64_t base = rng();
  std::vector<double> fractions(trials);
  parallel_for(trials, [&](std::size_t k) {
    Rng trial_rng = Rng::stream(base, k);
    Scratch scratch;
    double* phases = scratch.get(n);
    for (std::size_t i = 0; i < n; ++i) phases[i] = trial_rng.phase();
    std::size_t above = 0;
    scan_envelope_sq(offsets_hz, std::span<const double>(phases, n),
                     /*amplitudes=*/{}, t_max_s, steps,
                     [&above, threshold_sq](std::size_t, double sq) {
                       if (sq >= threshold_sq) ++above;
                     });
    fractions[k] = static_cast<double>(above) / static_cast<double>(steps);
  });
  double total = 0.0;  // sequential sum: bitwise identical across pool sizes
  for (double f : fractions) total += f;
  return total / static_cast<double>(std::max<std::size_t>(1, trials));
}

}  // namespace ivnet
