// The CIB optimization objectives.
//
// Eq. 6/10: choose offsets df_i maximizing the expected (over random phases
// beta) peak over one period of |sum_i e^{j(2*pi*df_i*t + beta_i)}|.
// Sec. 3.7's two-stage extension swaps in a second objective once the link
// attenuation is known: maximize the conduction fraction — the expected time
// the envelope spends above the (normalized) diode threshold.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ivnet/common/rng.hpp"
#include "ivnet/common/stats.hpp"

namespace ivnet {

/// Envelope of the CIB sum for given offsets/phases, sampled `steps` times
/// over [0, t_max): Y(t) = |sum_i a_i * e^{j(2*pi*df_i*t + beta_i)}|.
/// `amplitudes` may be empty (all ones).
std::vector<double> cib_envelope(std::span<const double> offsets_hz,
                                 std::span<const double> phases,
                                 std::span<const double> amplitudes,
                                 double t_max_s, std::size_t steps);

/// Peak of the envelope over [0, t_max) for the given phase draw, with
/// parabolic refinement around the best grid sample. Grid resolution
/// defaults to ~16 samples per cycle of the largest offset. Fused: never
/// materializes the envelope vector and allocates nothing for the tone
/// counts the paper uses.
double peak_envelope(std::span<const double> offsets_hz,
                     std::span<const double> phases, double t_max_s,
                     std::size_t steps = 0);

/// Largest grid sample of the envelope (no refinement), with per-tone
/// amplitudes. The fused path behind cib_peak_amplitude: scans the envelope
/// without materializing it.
double max_envelope(std::span<const double> offsets_hz,
                    std::span<const double> phases,
                    std::span<const double> amplitudes, double t_max_s,
                    std::size_t steps = 0);

/// Monte-Carlo samples of the per-trial peak AMPLITUDE, phases drawn
/// uniformly — the inner max of Eq. 6 sampled across channel conditions.
///
/// Trials run on the shared thread pool. `rng` is consumed exactly once (a
/// stream base); each trial draws its phases from Rng::stream(base, trial),
/// so the result is bitwise identical for any IVNET_THREADS value.
SampleSet peak_amplitude_samples(std::span<const double> offsets_hz,
                                 std::size_t trials, Rng& rng,
                                 double t_max_s = 1.0);

/// Eq. 6 estimator: E_beta[max_t |sum e^{j(2 pi df t + beta)}|].
double expected_peak_amplitude(std::span<const double> offsets_hz,
                               std::size_t trials, Rng& rng,
                               double t_max_s = 1.0);

/// Expected PEAK POWER gain over a single antenna: E[max^2] / 1. The
/// theoretical maximum is N^2 (Sec. 3.4).
double expected_peak_power_gain(std::span<const double> offsets_hz,
                                std::size_t trials, Rng& rng,
                                double t_max_s = 1.0);

/// Two-stage steady objective: E_beta[ fraction of the period the envelope
/// exceeds `threshold_amplitude` ] (threshold in units of one antenna's
/// amplitude, i.e. the normalized diode threshold Vth / |h|).
double expected_conduction_fraction(std::span<const double> offsets_hz,
                                    double threshold_amplitude,
                                    std::size_t trials, Rng& rng,
                                    double t_max_s = 1.0);

/// Hard ceiling on the evaluation grid: default_steps derives the grid from
/// the LARGEST offset (~16 samples per cycle of the fastest beat), so a
/// large-N or large-offset set would otherwise request an unbounded grid —
/// cib_envelope materializes one double per sample (8 MiB at this ceiling)
/// and every scan pays O(N * steps) time. Above the ceiling the grid
/// undersamples the fastest beats slightly; the parabolic peak refinement
/// absorbs most of the loss. Non-finite inputs (inf offsets, NaN t_max)
/// also clamp here instead of poisoning the size arithmetic.
inline constexpr std::size_t kMaxDefaultSteps = 1u << 20;

/// Deterministic evaluation grid size heuristic shared by the helpers:
/// clamp(16 * max|offset| * t_max, 256, kMaxDefaultSteps).
std::size_t default_steps(std::span<const double> offsets_hz, double t_max_s);

}  // namespace ivnet
