#include "ivnet/cib/optimizer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>
#include <utility>

#include "ivnet/cib/objective.hpp"
#include "ivnet/common/parallel.hpp"
#include "ivnet/obs/obs.hpp"

namespace ivnet {

FrequencyOptimizer::FrequencyOptimizer(OptimizerConfig config)
    : config_(config) {
  assert(config_.num_antennas >= 1);
  objective_ = [trials = config_.mc_trials, t_max = config_.t_max_s](
                   std::span<const double> offsets, Rng& rng) {
    return expected_peak_amplitude(offsets, trials, rng, t_max);
  };
}

void FrequencyOptimizer::set_objective(OffsetObjective objective) {
  objective_ = std::move(objective);
}

bool FrequencyOptimizer::feasible(std::span<const double> offsets_hz) const {
  if (offsets_hz.empty() || offsets_hz.front() != 0.0) return false;
  std::set<long long> seen;
  double sum_sq = 0.0;
  for (double f : offsets_hz) {
    if (f < 0.0 || std::abs(f - std::round(f)) > 1e-9) return false;
    if (!seen.insert(std::llround(f)).second) return false;
    sum_sq += f * f;
  }
  const double rms = std::sqrt(sum_sq / static_cast<double>(offsets_hz.size()));
  return rms <= config_.constraint.rms_limit_hz();
}

std::vector<double> FrequencyOptimizer::random_feasible(Rng& rng) const {
  // Draw offsets uniformly below the RMS bound; since individual offsets at
  // the bound keep the set feasible on average, retry until feasible.
  const double limit = config_.constraint.rms_limit_hz();
  std::vector<double> offsets(config_.num_antennas);
  for (int attempt = 0; attempt < 200; ++attempt) {
    offsets[0] = 0.0;
    for (std::size_t i = 1; i < offsets.size(); ++i) {
      offsets[i] = static_cast<double>(
          rng.uniform_int(1, static_cast<std::int64_t>(limit)));
    }
    std::sort(offsets.begin(), offsets.end());
    if (feasible(offsets)) return offsets;
  }
  // Fallback: a sparse arithmetic ramp well inside the bound.
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    offsets[i] = static_cast<double>(i) *
                 std::max(1.0, std::floor(limit / 2.0 /
                                          static_cast<double>(offsets.size())));
  }
  return offsets;
}

double FrequencyOptimizer::score(std::span<const double> offsets_hz) const {
  Rng scoring_rng(config_.score_seed);
  return objective_(offsets_hz, scoring_rng);
}

FrequencyOptimizer::RestartOutcome FrequencyOptimizer::run_restart(
    Rng& rng) const {
  const double limit = config_.constraint.rms_limit_hz();
  obs::count("cib.opt.restarts");
  RestartOutcome out;
  out.offsets_hz = random_feasible(rng);
  out.score = score(out.offsets_hz);
  out.evaluations = 1;
  obs::count("cib.opt.evaluations");

  for (std::size_t iter = 0; iter < config_.iterations; ++iter) {
    // Propose: move one offset by a random step (never the anchored 0th).
    if (out.offsets_hz.size() < 2) break;
    std::vector<double> candidate = out.offsets_hz;
    const auto idx = static_cast<std::size_t>(rng.uniform_int(
        1, static_cast<std::int64_t>(candidate.size()) - 1));
    const double magnitude = static_cast<double>(rng.uniform_int(1, 16));
    const double direction = rng.uniform() < 0.5 ? -1.0 : 1.0;
    candidate[idx] =
        std::clamp(candidate[idx] + direction * magnitude, 1.0,
                   std::floor(limit * std::sqrt(
                                  static_cast<double>(candidate.size()))));
    std::sort(candidate.begin(), candidate.end());
    if (!feasible(candidate)) {
      obs::count("cib.opt.rejected_infeasible");
      continue;
    }
    const double cand_score = score(candidate);
    ++out.evaluations;
    obs::count("cib.opt.evaluations");
    if (cand_score > out.score) {
      out.offsets_hz = std::move(candidate);
      out.score = cand_score;
      obs::count("cib.opt.accepted");
    } else {
      obs::count("cib.opt.rejected_score");
    }
  }
  return out;
}

OptimizerResult FrequencyOptimizer::optimize(Rng& rng) {
  obs::ScopedSpan span("cib.optimize", "cib");
  obs::count("cib.optimize.calls");
  // Each restart hill-climbs from its own counter-derived proposal stream,
  // so restarts are independent and can run concurrently; the winner is
  // picked in restart order. `rng` is consumed exactly once (the stream
  // base), making the result bitwise identical for any thread count.
  const std::uint64_t base = rng();
  std::vector<RestartOutcome> outcomes(config_.restarts);
  const bool restarts_wide = config_.restarts >= parallel_thread_count();
  if (restarts_wide) {
    // Enough restarts to fill the pool: parallelize at the restart level
    // (the nested scoring loops then run inline on each worker).
    parallel_for(config_.restarts, [&](std::size_t r) {
      Rng restart_rng = Rng::stream(base, r);
      outcomes[r] = run_restart(restart_rng);
    });
  } else {
    // Few restarts: run them sequentially and let the Monte-Carlo scoring
    // inside score() use the pool instead. Same streams, same result.
    for (std::size_t r = 0; r < config_.restarts; ++r) {
      Rng restart_rng = Rng::stream(base, r);
      outcomes[r] = run_restart(restart_rng);
    }
  }

  OptimizerResult best;
  for (const auto& out : outcomes) {
    best.evaluations += out.evaluations;
    if (out.score > best.score) {
      best.score = out.score;
      best.offsets_hz = out.offsets_hz;
    }
  }
  double sum_sq = 0.0;
  for (double f : best.offsets_hz) sum_sq += f * f;
  best.rms_hz = best.offsets_hz.empty()
                    ? 0.0
                    : std::sqrt(sum_sq /
                                static_cast<double>(best.offsets_hz.size()));
  obs::gauge_set("cib.opt.best_score", best.score);
  return best;
}

}  // namespace ivnet
