#include "ivnet/cib/optimizer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <utility>

#include "ivnet/cib/delta_objective.hpp"
#include "ivnet/cib/objective.hpp"
#include "ivnet/common/parallel.hpp"
#include "ivnet/obs/obs.hpp"

namespace {

/// Smallest achievable RMS for n distinct non-negative integer offsets:
/// that of {0, 1, ..., n-1}, rms^2 = (n-1)(2n-1)/6.
double min_feasible_rms(std::size_t n) {
  const double nd = static_cast<double>(n);
  return std::sqrt(std::max(0.0, (nd - 1.0) * (2.0 * nd - 1.0) / 6.0));
}

}  // namespace

namespace ivnet {

FrequencyOptimizer::FrequencyOptimizer(OptimizerConfig config)
    : config_(config) {
  assert(config_.num_antennas >= 1);
  objective_ = [trials = config_.mc_trials, t_max = config_.t_max_s](
                   std::span<const double> offsets, Rng& rng) {
    return expected_peak_amplitude(offsets, trials, rng, t_max);
  };
}

void FrequencyOptimizer::set_objective(OffsetObjective objective) {
  objective_ = std::move(objective);
}

bool FrequencyOptimizer::feasible(std::span<const double> offsets_hz) const {
  if (offsets_hz.empty() || offsets_hz.front() != 0.0) return false;
  std::set<long long> seen;
  double sum_sq = 0.0;
  for (double f : offsets_hz) {
    if (f < 0.0 || std::abs(f - std::round(f)) > 1e-9) return false;
    if (!seen.insert(std::llround(f)).second) return false;
    sum_sq += f * f;
  }
  const double rms = std::sqrt(sum_sq / static_cast<double>(offsets_hz.size()));
  return rms <= config_.constraint.rms_limit_hz();
}

void FrequencyOptimizer::ensure_constraint_feasible() const {
  const double limit = config_.constraint.rms_limit_hz();
  const double min_rms = min_feasible_rms(config_.num_antennas);
  if (min_rms <= limit) return;
  char message[256];
  std::snprintf(message, sizeof(message),
                "frequency optimizer: no feasible offset set: %zu distinct "
                "integer offsets need RMS >= %.3f Hz, but the Eq. 9 flatness "
                "constraint (alpha=%.3g, query_duration_s=%.3g) caps RMS at "
                "%.3f Hz",
                config_.num_antennas, min_rms, config_.constraint.alpha,
                config_.constraint.query_duration_s, limit);
  throw std::invalid_argument(message);
}

std::vector<double> FrequencyOptimizer::random_feasible(Rng& rng) const {
  // Draw offsets uniformly below the RMS bound; since individual offsets at
  // the bound keep the set feasible on average, retry until feasible. The
  // attempt budget is bounded: when rejection sampling fails, fall back to
  // a deterministic arithmetic ramp, and when even the tightest set
  // {0, 1, ..., n-1} cannot satisfy the bound, throw instead of silently
  // returning an infeasible start.
  ensure_constraint_feasible();
  const double limit = config_.constraint.rms_limit_hz();
  std::vector<double> offsets(config_.num_antennas);
  if (offsets.size() == 1) return offsets;  // {0} is always feasible here
  if (static_cast<std::int64_t>(limit) >= 1) {
    for (int attempt = 0; attempt < 200; ++attempt) {
      offsets[0] = 0.0;
      for (std::size_t i = 1; i < offsets.size(); ++i) {
        offsets[i] = static_cast<double>(
            rng.uniform_int(1, static_cast<std::int64_t>(limit)));
      }
      std::sort(offsets.begin(), offsets.end());
      if (feasible(offsets)) return offsets;
    }
  }
  // Fallback: a sparse arithmetic ramp well inside the bound.
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    offsets[i] = static_cast<double>(i) *
                 std::max(1.0, std::floor(limit / 2.0 /
                                          static_cast<double>(offsets.size())));
  }
  if (feasible(offsets)) return offsets;
  // Tightest distinct set; feasible by the ensure_constraint_feasible check.
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    offsets[i] = static_cast<double>(i);
  }
  return offsets;
}

double FrequencyOptimizer::score(std::span<const double> offsets_hz) const {
  Rng scoring_rng(config_.score_seed);
  return objective_(offsets_hz, scoring_rng);
}

FrequencyOptimizer::RestartOutcome FrequencyOptimizer::run_restart(
    Rng& rng) const {
  const double limit = config_.constraint.rms_limit_hz();
  obs::count("cib.opt.restarts");
  RestartOutcome out;
  out.offsets_hz = random_feasible(rng);
  out.score = score(out.offsets_hz);
  out.evaluations = 1;
  obs::count("cib.opt.evaluations");

  for (std::size_t iter = 0; iter < config_.iterations; ++iter) {
    // Propose: move one offset by a random step (never the anchored 0th).
    if (out.offsets_hz.size() < 2) break;
    std::vector<double> candidate = out.offsets_hz;
    const auto idx = static_cast<std::size_t>(rng.uniform_int(
        1, static_cast<std::int64_t>(candidate.size()) - 1));
    const double magnitude = static_cast<double>(rng.uniform_int(1, 16));
    const double direction = rng.uniform() < 0.5 ? -1.0 : 1.0;
    candidate[idx] =
        std::clamp(candidate[idx] + direction * magnitude, 1.0,
                   std::floor(limit * std::sqrt(
                                  static_cast<double>(candidate.size()))));
    std::sort(candidate.begin(), candidate.end());
    if (!feasible(candidate)) {
      obs::count("cib.opt.rejected_infeasible");
      continue;
    }
    const double cand_score = score(candidate);
    ++out.evaluations;
    obs::count("cib.opt.evaluations");
    if (cand_score > out.score) {
      out.offsets_hz = std::move(candidate);
      out.score = cand_score;
      obs::count("cib.opt.accepted");
    } else {
      obs::count("cib.opt.rejected_score");
    }
  }
  return out;
}

OptimizerResult FrequencyOptimizer::finish(
    std::vector<RestartOutcome> outcomes) const {
  // Winner picked in restart order: deterministic whatever ran where.
  OptimizerResult best;
  for (const auto& out : outcomes) {
    best.evaluations += out.evaluations;
    if (out.score > best.score) {
      best.score = out.score;
      best.offsets_hz = out.offsets_hz;
    }
  }
  double sum_sq = 0.0;
  for (double f : best.offsets_hz) sum_sq += f * f;
  best.rms_hz = best.offsets_hz.empty()
                    ? 0.0
                    : std::sqrt(sum_sq /
                                static_cast<double>(best.offsets_hz.size()));
  obs::gauge_set("cib.opt.best_score", best.score);
  return best;
}

OptimizerResult FrequencyOptimizer::optimize(Rng& rng) {
  obs::ScopedSpan span("cib.optimize", "cib");
  obs::count("cib.optimize.calls");
  ensure_constraint_feasible();
  // Each restart hill-climbs from its own counter-derived proposal stream,
  // so restarts are independent and can run concurrently; the winner is
  // picked in restart order. `rng` is consumed exactly once (the stream
  // base), making the result bitwise identical for any thread count.
  const std::uint64_t base = rng();
  std::vector<RestartOutcome> outcomes(config_.restarts);
  const bool restarts_wide = config_.restarts >= parallel_thread_count();
  if (restarts_wide) {
    // Enough restarts to fill the pool: parallelize at the restart level
    // (the nested scoring loops then run inline on each worker).
    parallel_for(config_.restarts, [&](std::size_t r) {
      Rng restart_rng = Rng::stream(base, r);
      outcomes[r] = run_restart(restart_rng);
    });
  } else {
    // Few restarts: run them sequentially and let the Monte-Carlo scoring
    // inside score() use the pool instead. Same streams, same result.
    for (std::size_t r = 0; r < config_.restarts; ++r) {
      Rng restart_rng = Rng::stream(base, r);
      outcomes[r] = run_restart(restart_rng);
    }
  }
  return finish(std::move(outcomes));
}

FrequencyOptimizer::RestartOutcome FrequencyOptimizer::run_annealed_restart(
    const AnnealConfig& anneal, Rng& rng) const {
  obs::count("cib.opt.restarts");
  const double limit = config_.constraint.rms_limit_hz();
  const std::size_t n = config_.num_antennas;
  // Single-offset cap (mirrors the hill-climb clamp). It also fixes the
  // evaluation grid for the whole restart: the delta state's partial sums
  // are only valid on one grid, so it is sized from the cap — the largest
  // offset any move can reach — not from the current set's maximum.
  const double cap =
      std::max(std::floor(limit * std::sqrt(static_cast<double>(n))),
               static_cast<double>(n));

  RestartOutcome out;
  out.offsets_hz = random_feasible(rng);

  DeltaEvalConfig eval;
  eval.mc_trials = config_.mc_trials;
  eval.t_max_s = config_.t_max_s;
  eval.score_seed = config_.score_seed;
  eval.steps = DeltaEnvelopeState::planner_steps(cap, config_.t_max_s);
  DeltaEnvelopeState state(out.offsets_hz, eval);
  out.score = state.score();
  out.evaluations = 1;
  if (n < 2 || anneal.moves == 0) return out;

  // Incrementally maintained feasibility state: the integer offsets in use
  // and the exact sum of squares (offsets are small integers, so the
  // squares and their sums are exact doubles).
  std::set<long long> used;
  double sum_sq = 0.0;
  for (double f : out.offsets_hz) {
    used.insert(std::llround(f));
    sum_sq += f * f;
  }
  const double max_sum_sq = limit * limit * static_cast<double>(n);

  double cur = out.score;
  std::vector<double> best = out.offsets_hz;
  double best_score = cur;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  const double t_ratio = anneal.t_final / anneal.t_initial;
  for (std::size_t m = 0; m < anneal.moves; ++m) {
    const double frac =
        anneal.moves > 1
            ? static_cast<double>(m) / static_cast<double>(anneal.moves - 1)
            : 1.0;
    const double temp = anneal.t_initial * std::pow(t_ratio, frac);
    // Move size rides the schedule: lattice-spanning jumps while hot,
    // single-Hz refinement when cold.
    const auto step_max = std::max<std::int64_t>(
        1, std::llround(static_cast<double>(anneal.max_step_hz) * temp /
                        anneal.t_initial));
    const auto tone = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(n) - 1));
    const double magnitude =
        static_cast<double>(rng.uniform_int(1, step_max));
    const double direction = rng.uniform() < 0.5 ? -1.0 : 1.0;
    const double old_offset = state.offsets_hz()[tone];
    const double proposed =
        std::clamp(old_offset + direction * magnitude, 1.0, cap);
    const double cand_sum_sq =
        sum_sq - old_offset * old_offset + proposed * proposed;
    if (proposed == old_offset || used.count(std::llround(proposed)) > 0 ||
        cand_sum_sq > max_sum_sq) {
      ++rejected;  // infeasible: no evaluation spent
      continue;
    }
    const double cand = state.score_move(tone, proposed);
    ++out.evaluations;
    bool accept = cand > cur;
    if (!accept) {
      // Metropolis on the relative score change. The acceptance draw only
      // happens for downhill moves; determinism holds either way because
      // the restart's rng is strictly sequential.
      const double rel = (cand - cur) / std::max(std::abs(cur), 1e-12);
      accept = rng.uniform() < std::exp(rel / temp);
    }
    if (accept) {
      state.commit_move(tone, proposed);
      used.erase(std::llround(old_offset));
      used.insert(std::llround(proposed));
      sum_sq = cand_sum_sq;
      cur = cand;
      ++accepted;
      if (cur > best_score) {
        best_score = cur;
        best.assign(state.offsets_hz().begin(), state.offsets_hz().end());
      }
    } else {
      ++rejected;
    }
  }
  // Hooks stay outside the move loop: one batched count per restart.
  obs::count("planner.moves.accepted", accepted);
  obs::count("planner.moves.rejected", rejected);
  out.offsets_hz = std::move(best);
  std::sort(out.offsets_hz.begin(), out.offsets_hz.end());
  out.score = best_score;
  return out;
}

OptimizerResult FrequencyOptimizer::optimize_annealed(
    const AnnealConfig& anneal, Rng& rng) {
  obs::ScopedSpan span("cib.optimize_annealed", "cib");
  obs::count("cib.optimize.calls");
  // Infeasibility surfaces here, before the fan-out, so the pool workers
  // never throw.
  ensure_constraint_feasible();
  const std::size_t restarts = std::max<std::size_t>(1, config_.restarts);
  const std::uint64_t base = rng();
  std::vector<RestartOutcome> outcomes(restarts);
  if (restarts >= parallel_thread_count()) {
    parallel_for(restarts, [&](std::size_t r) {
      Rng restart_rng = Rng::stream(base, r);
      outcomes[r] = run_annealed_restart(anneal, restart_rng);
    });
  } else {
    // Few restarts: run them sequentially and let the per-trial scoring
    // loops inside the delta state use the pool. Same streams, same result.
    for (std::size_t r = 0; r < restarts; ++r) {
      Rng restart_rng = Rng::stream(base, r);
      outcomes[r] = run_annealed_restart(anneal, restart_rng);
    }
  }
  return finish(std::move(outcomes));
}

}  // namespace ivnet
