// The constrained frequency-selection optimizer of Eq. 10.
//
// The problem is non-convex (Sec. 3.6), so — like the paper's one-time
// MATLAB Monte-Carlo search — we run randomized local search: random feasible
// integer offset sets, hill-climbing single-offset moves, scored by a
// common-random-numbers Monte-Carlo estimate of the Eq. 6 objective. The
// search is a one-time cost per deployment ("this simulation needs to be
// solved only once, since it optimizes for all channel conditions").
#pragma once

#include <functional>
#include <vector>

#include "ivnet/cib/frequency_plan.hpp"
#include "ivnet/common/rng.hpp"

namespace ivnet {

/// Scoring callback: maps an offset set to a scalar to maximize. The default
/// is the Eq. 6 expected peak amplitude; the two-stage steady phase swaps in
/// the conduction-fraction objective.
using OffsetObjective =
    std::function<double(std::span<const double> offsets_hz, Rng& rng)>;

struct OptimizerConfig {
  std::size_t num_antennas = 10;
  FlatnessConstraint constraint;      ///< Eq. 9 RMS bound
  std::size_t mc_trials = 128;        ///< phase draws per score
  std::size_t iterations = 400;       ///< hill-climb moves per restart
  std::size_t restarts = 3;
  double t_max_s = 1.0;               ///< cyclic period (T = 1 s)
  std::uint64_t score_seed = 1234;    ///< common random numbers for scoring
};

struct OptimizerResult {
  std::vector<double> offsets_hz;  ///< sorted, first = 0
  double score = 0.0;              ///< objective value of the winner
  double rms_hz = 0.0;
  std::size_t evaluations = 0;
};

/// Randomized local search maximizing `objective` (or Eq. 6 by default)
/// subject to integer offsets with RMS within the flatness constraint.
class FrequencyOptimizer {
 public:
  explicit FrequencyOptimizer(OptimizerConfig config);

  /// Use a custom objective (e.g. conduction fraction for the steady stage).
  void set_objective(OffsetObjective objective);

  /// Run the search. `rng` drives the proposal randomness; scoring uses
  /// common random numbers from config.score_seed so candidate comparisons
  /// are low-variance. Restarts run concurrently on the shared pool, each
  /// from its own counter-derived stream — `rng` is consumed exactly once,
  /// and the result is bitwise identical for any IVNET_THREADS value.
  OptimizerResult optimize(Rng& rng);

  /// Score one specific offset set with the configured objective and trial
  /// count (useful for evaluating the paper's published set).
  double score(std::span<const double> offsets_hz) const;

  const OptimizerConfig& config() const { return config_; }

 private:
  struct RestartOutcome {
    std::vector<double> offsets_hz;
    double score = 0.0;
    std::size_t evaluations = 0;
  };

  RestartOutcome run_restart(Rng& rng) const;
  std::vector<double> random_feasible(Rng& rng) const;
  bool feasible(std::span<const double> offsets_hz) const;

  OptimizerConfig config_;
  OffsetObjective objective_;
};

}  // namespace ivnet
