// The constrained frequency-selection optimizer of Eq. 10.
//
// The problem is non-convex (Sec. 3.6), so — like the paper's one-time
// MATLAB Monte-Carlo search — we run randomized local search: random feasible
// integer offset sets, hill-climbing single-offset moves, scored by a
// common-random-numbers Monte-Carlo estimate of the Eq. 6 objective. The
// search is a one-time cost per deployment ("this simulation needs to be
// solved only once, since it optimizes for all channel conditions").
#pragma once

#include <functional>
#include <vector>

#include "ivnet/cib/frequency_plan.hpp"
#include "ivnet/common/rng.hpp"

namespace ivnet {

/// Scoring callback: maps an offset set to a scalar to maximize. The default
/// is the Eq. 6 expected peak amplitude; the two-stage steady phase swaps in
/// the conduction-fraction objective.
using OffsetObjective =
    std::function<double(std::span<const double> offsets_hz, Rng& rng)>;

struct OptimizerConfig {
  std::size_t num_antennas = 10;
  FlatnessConstraint constraint;      ///< Eq. 9 RMS bound
  std::size_t mc_trials = 128;        ///< phase draws per score
  std::size_t iterations = 400;       ///< hill-climb moves per restart
  std::size_t restarts = 3;
  double t_max_s = 1.0;               ///< cyclic period (T = 1 s)
  std::uint64_t score_seed = 1234;    ///< common random numbers for scoring
};

struct OptimizerResult {
  std::vector<double> offsets_hz;  ///< sorted, first = 0
  double score = 0.0;              ///< objective value of the winner
  double rms_hz = 0.0;
  std::size_t evaluations = 0;
};

/// Simulated-annealing schedule for the large-N planner search
/// (optimize_annealed). Temperature decays geometrically from t_initial to
/// t_final over `moves` steps; the proposal magnitude decays with it, so
/// the walk covers the cyclic integer lattice coarsely while hot and
/// settles into single-Hz refinement when cold.
struct AnnealConfig {
  std::size_t moves = 400;       ///< annealing moves per restart
  double t_initial = 0.05;       ///< relative-score temperature at move 0
  double t_final = 1e-3;         ///< ... at the last move (geometric decay)
  std::size_t max_step_hz = 32;  ///< proposal magnitude at t_initial (>= 1)
};

/// Randomized local search maximizing `objective` (or Eq. 6 by default)
/// subject to integer offsets with RMS within the flatness constraint.
class FrequencyOptimizer {
 public:
  explicit FrequencyOptimizer(OptimizerConfig config);

  /// Use a custom objective (e.g. conduction fraction for the steady stage).
  void set_objective(OffsetObjective objective);

  /// Run the search. `rng` drives the proposal randomness; scoring uses
  /// common random numbers from config.score_seed so candidate comparisons
  /// are low-variance. Restarts run concurrently on the shared pool, each
  /// from its own counter-derived stream — `rng` is consumed exactly once,
  /// and the result is bitwise identical for any IVNET_THREADS value.
  OptimizerResult optimize(Rng& rng);

  /// Large-N search: simulated annealing over the cyclic integer lattice,
  /// every move scored by the delta evaluator (cib/delta_objective.hpp) in
  /// O(steps * mc_trials) instead of the full O(N * steps * mc_trials)
  /// pass — the path that makes N in the hundreds tractable. Specific to
  /// the Eq. 6 expected-peak objective (a custom set_objective callback
  /// cannot be delta-evaluated and is ignored here). Same determinism
  /// contract as optimize(): restarts fan out over the pool via
  /// counter-derived Rng::stream sub-streams, `rng` is consumed exactly
  /// once, and the result is bitwise identical at any IVNET_THREADS.
  /// Throws std::invalid_argument when the flatness constraint admits no
  /// feasible set at config().num_antennas.
  OptimizerResult optimize_annealed(const AnnealConfig& anneal, Rng& rng);

  /// Score one specific offset set with the configured objective and trial
  /// count (useful for evaluating the paper's published set).
  double score(std::span<const double> offsets_hz) const;

  const OptimizerConfig& config() const { return config_; }

 private:
  struct RestartOutcome {
    std::vector<double> offsets_hz;
    double score = 0.0;
    std::size_t evaluations = 0;
  };

  RestartOutcome run_restart(Rng& rng) const;
  RestartOutcome run_annealed_restart(const AnnealConfig& anneal,
                                      Rng& rng) const;
  OptimizerResult finish(std::vector<RestartOutcome> outcomes) const;

  /// Bounded rejection sampling for a feasible start: 200 uniform draws,
  /// then a deterministic arithmetic ramp. Throws std::invalid_argument
  /// (echoing the constraint) when no feasible set of num_antennas distinct
  /// non-negative integer offsets exists under the RMS bound — the minimal
  /// set {0, 1, ..., N-1} already violates it.
  std::vector<double> random_feasible(Rng& rng) const;
  bool feasible(std::span<const double> offsets_hz) const;

  /// Throws std::invalid_argument when num_antennas distinct integer
  /// offsets cannot satisfy the RMS bound (checked before restart fan-out
  /// so the parallel workers never throw).
  void ensure_constraint_feasible() const;

  OptimizerConfig config_;
  OffsetObjective objective_;
};

}  // namespace ivnet
