#include "ivnet/cib/scheduler.hpp"

#include <algorithm>
#include <cassert>

namespace ivnet {

DutyCycleScheduler::DutyCycleScheduler(SchedulerConfig config)
    : config_(config), current_margin_(config.safety_margin) {
  assert(config_.burst_energy_j > 0.0);
  assert(config_.safety_margin >= 1.0);
}

ScheduleAction DutyCycleScheduler::on_period(double harvested_energy_j) {
  harvested_energy_j = std::max(0.0, harvested_energy_j);
  if (!have_estimate_) {
    harvest_estimate_j_ = harvested_energy_j;
    have_estimate_ = true;
  } else {
    harvest_estimate_j_ +=
        config_.ewma_alpha * (harvested_energy_j - harvest_estimate_j_);
  }
  banked_j_ += harvested_energy_j;
  ++periods_since_query_;

  const double required = config_.burst_energy_j * current_margin_;
  if (banked_j_ >= required ||
      periods_since_query_ >= config_.max_charge_periods) {
    return ScheduleAction::kQuery;
  }
  return ScheduleAction::kCharge;
}

void DutyCycleScheduler::on_reply() {
  banked_j_ = std::max(0.0, banked_j_ - config_.burst_energy_j);
  current_margin_ = config_.safety_margin;  // link healthy: reset backoff
  periods_since_query_ = 0;
}

void DutyCycleScheduler::on_silence() {
  // The tag likely browned out mid-burst: its bank is gone, and we demand
  // more margin before trying again.
  banked_j_ = 0.0;
  current_margin_ = std::min(current_margin_ * 2.0,
                             config_.safety_margin * 8.0);
  periods_since_query_ = 0;
}

double DutyCycleScheduler::steady_duty_cycle() const {
  if (config_.burst_energy_j <= 0.0) return 0.0;
  return std::min(1.0, harvest_estimate_j_ /
                           (config_.burst_energy_j * config_.safety_margin));
}

}  // namespace ivnet
