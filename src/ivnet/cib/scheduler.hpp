// Adaptive duty-cycle scheduler — the "adaptive duty cycling" communication
// constraint of Sec. 3 and the Sec. 2.3 observation that a marginally
// powered sensor can still operate "by duty cycling the sensor's operation
// so that it may accumulate sufficient energy before communication".
//
// Given the per-period energy the CIB envelope delivers to the sensor and
// the energy one query/reply burst costs, the scheduler chooses how many
// charge periods to interleave between queries, adapting as the delivered
// energy estimate changes (tag moved, orientation changed).
#pragma once

#include <cstddef>

namespace ivnet {

struct SchedulerConfig {
  double burst_energy_j = 2e-6;   ///< cost of one query+reply at the tag
  double safety_margin = 1.5;     ///< stored/required ratio before querying
  double ewma_alpha = 0.3;        ///< smoothing of the harvest estimate
  std::size_t max_charge_periods = 60;  ///< never wait longer than this
};

/// Decision for the upcoming period.
enum class ScheduleAction {
  kCharge,  ///< transmit CW only: let the sensor accumulate
  kQuery,   ///< enough energy banked: send the query this period
};

/// Stateful per-sensor duty-cycle controller on the reader side.
class DutyCycleScheduler {
 public:
  explicit DutyCycleScheduler(SchedulerConfig config);

  /// Report the energy the sensor harvested over the last period (estimated
  /// from its rail telemetry or from the link budget) and get the decision
  /// for the next period.
  ScheduleAction on_period(double harvested_energy_j);

  /// The reader observed a successful reply: the tag spent a burst.
  void on_reply();

  /// The query went unanswered: assume the burst energy was wasted and
  /// back off (double the required margin for the next attempt, capped).
  void on_silence();

  /// Smoothed per-period harvest estimate.
  double harvest_estimate_j() const { return harvest_estimate_j_; }

  /// Energy the controller believes the sensor has banked.
  double banked_energy_j() const { return banked_j_; }

  /// Steady-state duty cycle: queries per period once converged,
  /// min(1, harvest / (burst * margin)).
  double steady_duty_cycle() const;

  std::size_t periods_since_query() const { return periods_since_query_; }

 private:
  SchedulerConfig config_;
  double harvest_estimate_j_ = 0.0;
  double banked_j_ = 0.0;
  double current_margin_;
  std::size_t periods_since_query_ = 0;
  bool have_estimate_ = false;
};

}  // namespace ivnet
