#include "ivnet/cib/transmitter.hpp"

#include <cmath>
#include <utility>

namespace ivnet {

CibTransmitter::CibTransmitter(FrequencyPlan plan,
                               const RadioArrayConfig& radio_config, Rng& rng)
    : plan_(std::move(plan)),
      radios_(plan_.num_antennas(), radio_config, rng) {
  radios_.tune(plan_.offsets_hz());
}

std::vector<Waveform> CibTransmitter::transmit_cw(double duration_s) const {
  const auto n = static_cast<std::size_t>(
      std::llround(duration_s * radios_.config().sample_rate_hz));
  const std::vector<double> envelope(n, 1.0);
  return radios_.transmit(envelope);
}

std::vector<Waveform> CibTransmitter::transmit_command(
    const gen2::Bits& bits, const gen2::PieTiming& timing,
    bool with_preamble) const {
  const auto envelope = gen2::pie_encode(
      bits, timing, radios_.config().sample_rate_hz, with_preamble);
  return radios_.transmit(envelope);
}

void CibTransmitter::new_trial(Rng& rng) { radios_.retune(rng); }

}  // namespace ivnet
