// The CIB transmitter: marries a FrequencyPlan to a RadioArray and the Gen2
// downlink. All antennas transmit the same PIE command envelope at the same
// instant (coherent communication) on their own carriers (incoherent
// channel) — Sec. 3.2.
#pragma once

#include <span>
#include <vector>

#include "ivnet/cib/frequency_plan.hpp"
#include "ivnet/gen2/pie.hpp"
#include "ivnet/sdr/radio.hpp"

namespace ivnet {

/// Multi-antenna CIB transmitter.
class CibTransmitter {
 public:
  /// The radio array is created with plan.num_antennas() devices.
  CibTransmitter(FrequencyPlan plan, const RadioArrayConfig& radio_config,
                 Rng& rng);

  const FrequencyPlan& plan() const { return plan_; }
  RadioArray& radios() { return radios_; }
  const RadioArray& radios() const { return radios_; }

  /// Per-antenna waveforms for a continuous-wave burst of `duration_s` —
  /// the charging phase between commands.
  std::vector<Waveform> transmit_cw(double duration_s) const;

  /// Per-antenna waveforms for a Gen2 command: every antenna modulates the
  /// same PIE envelope onto its own carrier, synchronized.
  std::vector<Waveform> transmit_command(const gen2::Bits& bits,
                                         const gen2::PieTiming& timing,
                                         bool with_preamble) const;

  /// New trial: re-draw every PLL's initial phase.
  void new_trial(Rng& rng);

 private:
  FrequencyPlan plan_;
  RadioArray radios_;
};

}  // namespace ivnet
