#include "ivnet/cib/two_stage.hpp"

#include "ivnet/cib/objective.hpp"

namespace ivnet {

TwoStageController::TwoStageController(OptimizerConfig config)
    : config_(config) {}

StagePlan TwoStageController::plan_discovery(Rng& rng) {
  FrequencyOptimizer optimizer(config_);
  const auto result = optimizer.optimize(rng);
  return StagePlan{.offsets_hz = result.offsets_hz,
                   .objective_value = result.score};
}

StagePlan TwoStageController::plan_steady(double normalized_threshold,
                                          Rng& rng) {
  FrequencyOptimizer optimizer(config_);
  optimizer.set_objective(
      [threshold = normalized_threshold, trials = config_.mc_trials,
       t_max = config_.t_max_s](std::span<const double> offsets, Rng& rng2) {
        return expected_conduction_fraction(offsets, threshold, trials, rng2,
                                            t_max);
      });
  const auto result = optimizer.optimize(rng);
  return StagePlan{.offsets_hz = result.offsets_hz,
                   .objective_value = result.score};
}

double TwoStageController::conduction_fraction(
    std::span<const double> offsets_hz, double normalized_threshold) const {
  Rng rng(config_.score_seed);
  return expected_conduction_fraction(offsets_hz, normalized_threshold,
                                      config_.mc_trials, rng,
                                      config_.t_max_s);
}

}  // namespace ivnet
