// The two-stage extension of Sec. 3.7: a discovery stage optimized for peak
// power (to find and wake the sensor despite unknown attenuation), then a
// steady stage that — once the attenuation is learned from the first
// successful contact — re-optimizes the frequency set to maximize the
// conduction fraction, i.e. the time the envelope spends above the diode
// threshold, which maximizes delivered DC power.
#pragma once

#include "ivnet/cib/frequency_plan.hpp"
#include "ivnet/cib/optimizer.hpp"
#include "ivnet/common/rng.hpp"

namespace ivnet {

/// Outcome of planning one stage.
struct StagePlan {
  std::vector<double> offsets_hz;
  double objective_value = 0.0;  ///< peak amplitude or conduction fraction
};

/// Two-stage CIB controller.
class TwoStageController {
 public:
  /// @param config  Shared optimizer settings (antenna count, constraint).
  explicit TwoStageController(OptimizerConfig config);

  /// Stage 1: Eq. 10's peak-power plan (no attenuation knowledge needed).
  StagePlan plan_discovery(Rng& rng);

  /// Stage 2: once the per-antenna amplitude at the sensor is estimated,
  /// the diode threshold normalizes to `vth / amplitude_per_antenna`;
  /// re-optimize for expected conduction fraction above that level.
  StagePlan plan_steady(double normalized_threshold, Rng& rng);

  /// Expected conduction fraction of an arbitrary offset set at a given
  /// normalized threshold (for comparing stage-1 vs stage-2 plans).
  double conduction_fraction(std::span<const double> offsets_hz,
                             double normalized_threshold) const;

  const OptimizerConfig& config() const { return config_; }

 private:
  OptimizerConfig config_;
};

}  // namespace ivnet
