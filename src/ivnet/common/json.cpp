#include "ivnet/common/json.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ivnet {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

double json_find_number(std::string_view doc, std::string_view key,
                        double fallback) {
  const std::string needle = '"' + std::string(key) + "\":";
  const std::size_t pos = doc.find(needle);
  if (pos == std::string_view::npos) return fallback;
  std::size_t start = pos + needle.size();
  // Any JSON whitespace may follow the colon, not just spaces.
  while (start < doc.size() &&
         (doc[start] == ' ' || doc[start] == '\t' || doc[start] == '\n' ||
          doc[start] == '\r')) {
    ++start;
  }
  if (start >= doc.size()) return fallback;
  // from_chars, to match the std::to_chars writer: locale-independent, so a
  // document written on one machine parses identically on any other (strtod
  // under a de_DE locale would read "0.5" as 0).
  double value = 0.0;
  const auto res =
      std::from_chars(doc.data() + start, doc.data() + doc.size(), value);
  return res.ec == std::errc() ? value : fallback;
}

std::string json_find_string(std::string_view doc, std::string_view key,
                             std::string_view fallback) {
  const std::string needle = '"' + std::string(key) + "\":";
  const std::size_t pos = doc.find(needle);
  if (pos == std::string_view::npos) return std::string(fallback);
  std::size_t i = pos + needle.size();
  while (i < doc.size() && doc[i] == ' ') ++i;
  if (i >= doc.size() || doc[i] != '"') return std::string(fallback);
  ++i;
  std::string out;
  while (i < doc.size() && doc[i] != '"') {
    char c = doc[i++];
    if (c == '\\' && i < doc.size()) {
      const char esc = doc[i++];
      switch (esc) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'r': c = '\r'; break;
        case 'b': c = '\b'; break;
        case 'f': c = '\f'; break;
        default: c = esc; break;  // \" \\ \/ and anything unknown: literal
      }
    }
    out += c;
  }
  if (i >= doc.size()) return std::string(fallback);  // unterminated string
  return out;
}

void JsonWriter::comma_if_needed() {
  if (stack_.empty()) return;
  if (first_.back()) {
    first_.back() = false;
  } else {
    out_ += ',';
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma_if_needed();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  // The upcoming value must not emit another comma.
  if (!first_.empty()) first_.back() = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  comma_if_needed();
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view(text));
}

JsonWriter& JsonWriter::value(double number) {
  comma_if_needed();
  if (std::isfinite(number)) {
    // Shortest round-trip form via to_chars: locale- and libc-independent,
    // unlike printf %g, so snapshots compare byte-equal across platforms.
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), number);
    out_.append(buf, res.ptr);
  } else {
    out_ += "null";  // JSON has no inf/nan
  }
  return *this;
}

JsonWriter& JsonWriter::value(int number) {
  comma_if_needed();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::size_t number) {
  comma_if_needed();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  comma_if_needed();
  out_ += flag ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_if_needed();
  out_ += "null";
  return *this;
}

}  // namespace ivnet
