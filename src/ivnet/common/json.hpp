// Minimal JSON writer for experiment reports — enough for the CLI and the
// benches to emit machine-readable results (objects, arrays, strings,
// numbers, booleans; UTF-8 passthrough with control-character escaping).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ivnet {

/// Escape a string for inclusion inside JSON quotes.
std::string json_escape(std::string_view text);

/// Flat-field scanner, not a parser: the first number following `"key":`
/// anywhere in `doc`, or `fallback` when the key is absent. Intended for
/// pulling known numeric fields back out of documents this writer emitted
/// (campaign cell results, metric snapshots); keys must be unique in `doc`.
double json_find_number(std::string_view doc, std::string_view key,
                        double fallback);

/// Flat-field scanner for string values: the content of the first
/// `"key":"..."` in `doc` with basic escapes (\\, \", \n, \t, ...) undone,
/// or `fallback` when the key is absent or not followed by a string. Same
/// contract as json_find_number: keys must be unique in `doc`.
std::string json_find_string(std::string_view doc, std::string_view key,
                             std::string_view fallback);

/// Streaming JSON writer with explicit begin/end nesting.
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("gain").value(85.2);
///   w.key("series").begin_array().value(1).value(2).end_array();
///   w.end_object();
///   std::string out = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key (must be inside an object).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(int number);
  JsonWriter& value(std::size_t number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Convenience: key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// The serialized document. Valid once all containers are closed.
  const std::string& str() const { return out_; }

  /// True when every begin_* has been matched by an end_*.
  bool complete() const { return stack_.empty() && !out_.empty(); }

 private:
  void comma_if_needed();

  enum class Frame { kObject, kArray };
  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;  // parallel to stack_: next item is the first?
};

}  // namespace ivnet
