#include "ivnet/common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "ivnet/obs/obs.hpp"

namespace ivnet {
namespace {

thread_local bool t_in_pool_worker = false;

/// One parallel_for invocation. Workers hold a shared_ptr so a straggler
/// waking up late can only touch its own (already exhausted) job, never a
/// newer one.
struct Job {
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
};

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads) : thread_count_(threads) {
    // The submitting thread participates, so spawn threads - 1 workers.
    for (std::size_t i = 1; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(m_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  std::size_t thread_count() const { return thread_count_; }

  void run(std::size_t chunks, const std::function<void(std::size_t)>& body) {
    // Wall-clock only: queue wait (submit contention) and the run itself.
    // Wall spans never feed byte-stable artifacts, so dispatch-dependent
    // timing is fine here; metrics counters are not (see parallel_for).
    obs::ScopedSpan queue_span("pool.queue", "parallel");
    // One job at a time; concurrent submissions queue up here.
    std::lock_guard<std::mutex> submit_lock(submit_mutex_);
    obs::ScopedSpan run_span("pool.run", "parallel");
    auto job = std::make_shared<Job>();
    job->body = &body;
    job->chunks = chunks;
    {
      std::lock_guard<std::mutex> lock(m_);
      current_job_ = job;
      ++generation_;
    }
    wake_cv_.notify_all();
    // The submitting thread participates; mark it as a pool thread for the
    // duration so nested parallel_for calls from its chunks run inline
    // instead of re-entering run() (submit_mutex_ is not recursive).
    const bool was_worker = t_in_pool_worker;
    t_in_pool_worker = true;
    work(*job);
    t_in_pool_worker = was_worker;
    {
      std::unique_lock<std::mutex> lock(m_);
      done_cv_.wait(lock, [&] {
        return job->done.load(std::memory_order_acquire) == job->chunks;
      });
      current_job_.reset();
    }
  }

 private:
  void work(Job& job) {
    for (;;) {
      const std::size_t ci = job.next.fetch_add(1, std::memory_order_relaxed);
      if (ci >= job.chunks) return;
      (*job.body)(ci);
      if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.chunks) {
        std::lock_guard<std::mutex> lock(m_);
        done_cv_.notify_all();
      }
    }
  }

  void worker_loop() {
    t_in_pool_worker = true;
    std::uint64_t seen_generation = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(m_);
        wake_cv_.wait(lock, [&] {
          return stop_ || generation_ != seen_generation;
        });
        if (stop_) return;
        seen_generation = generation_;
        job = current_job_;
      }
      if (job) work(*job);
    }
  }

  const std::size_t thread_count_;
  std::mutex submit_mutex_;
  std::mutex m_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> current_job_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;          // guarded by g_pool_mutex
std::size_t g_thread_override = 0;           // guarded by g_pool_mutex

std::size_t automatic_thread_count() {
  const std::size_t env = parse_thread_count(std::getenv("IVNET_THREADS"));
  if (env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool& pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) {
    const std::size_t n =
        g_thread_override > 0 ? g_thread_override : automatic_thread_count();
    g_pool = std::make_unique<ThreadPool>(n);
  }
  return *g_pool;
}

}  // namespace

std::size_t parse_thread_count(const char* text) {
  if (text == nullptr || *text == '\0') return 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0') return 0;
  if (value == 0 || value > 1024) return 0;
  return static_cast<std::size_t>(value);
}

std::size_t parallel_thread_count() { return pool().thread_count(); }

void set_parallel_threads(std::size_t count) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_pool.reset();  // joins idle workers; rebuilt lazily on next use
  g_thread_override = count;
}

namespace detail {

bool in_pool_worker() { return t_in_pool_worker; }

bool set_in_pool_worker(bool value) {
  const bool prev = t_in_pool_worker;
  t_in_pool_worker = value;
  return prev;
}

void pool_run(std::size_t chunks,
              const std::function<void(std::size_t)>& chunk) {
  if (chunks == 0) return;
  pool().run(chunks, chunk);
}

}  // namespace detail
}  // namespace ivnet
