// Shared parallel-execution engine for the Monte-Carlo trial loops.
//
// A lazily-initialized fixed thread pool (size from the IVNET_THREADS
// environment variable, else hardware_concurrency) runs chunked parallel_for
// and parallel_reduce over trial indices. The pool is created once and reused
// across calls, so per-call overhead is a wakeup, not a thread spawn.
//
// Determinism contract: every helper here produces BITWISE-IDENTICAL results
// for any pool size, including 1. parallel_for touches each index exactly
// once and callers write to per-index slots; parallel_reduce folds fixed-size
// index chunks (chunk boundaries depend only on n, never on the thread
// count) and combines the chunk partials in chunk order. Randomness must
// come from per-index streams (Rng::stream), never from a shared generator.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "ivnet/obs/obs.hpp"

namespace ivnet {

/// Number of threads the pool uses (IVNET_THREADS if set and valid, else
/// hardware_concurrency, else 1). Reflects any set_parallel_threads override.
std::size_t parallel_thread_count();

/// Override the pool size: tears down the current pool and lazily rebuilds
/// it with `count` threads (0 restores the automatic choice). Intended for
/// benchmarks and the determinism suite; not safe to call concurrently with
/// in-flight parallel work.
void set_parallel_threads(std::size_t count);

/// Parse an IVNET_THREADS-style value. Returns 0 (meaning "automatic") for
/// null, empty, non-numeric, zero, or absurdly large input.
std::size_t parse_thread_count(const char* text);

namespace detail {

/// Fixed chunk grain. Part of the determinism contract: parallel_reduce
/// chunk boundaries are multiples of this regardless of the pool size.
inline constexpr std::size_t kParallelGrain = 16;

/// Runs chunk(ci) for every ci in [0, chunks) on the shared pool, blocking
/// until all chunks complete. The calling thread participates. Calls from
/// inside a pool worker run inline (no nested pools, no deadlock).
void pool_run(std::size_t chunks, const std::function<void(std::size_t)>& chunk);

/// True when the calling thread is a pool worker (nested calls run inline).
bool in_pool_worker();

/// Set the calling thread's pool-worker mark; returns the previous value.
bool set_in_pool_worker(bool value);

}  // namespace detail

/// Marks the calling thread as a parallel-pool participant for the scope's
/// lifetime: nested parallel_for / parallel_reduce / batched_* calls run
/// inline on this thread instead of dispatching to the shared pool. The
/// service front-end (svc/service.hpp) wraps each worker in one of these so
/// a request handler that reaches a parallelized kernel (the frequency
/// optimizer's Monte-Carlo scoring, for instance) cannot oversubscribe the
/// machine by stacking the shared pool on top of the service's own workers —
/// and cannot serialize unrelated requests behind the pool's one-job-at-a-
/// time submit lock.
class ScopedInlineParallel {
 public:
  ScopedInlineParallel() : prev_(detail::set_in_pool_worker(true)) {}
  ~ScopedInlineParallel() { detail::set_in_pool_worker(prev_); }
  ScopedInlineParallel(const ScopedInlineParallel&) = delete;
  ScopedInlineParallel& operator=(const ScopedInlineParallel&) = delete;

 private:
  bool prev_;
};

/// Calls f(i) for every i in [0, n), in unspecified order, possibly
/// concurrently. f must be safe to run concurrently for distinct indices;
/// the canonical pattern is writing to out[i].
template <typename F>
void parallel_for(std::size_t n, F&& f) {
  // Structural telemetry: invocation and item counts depend only on the
  // call graph, never on the pool size, so they are safe in byte-stable
  // snapshots (dispatch counts would not be — the inline path skips the
  // pool entirely at 1 thread).
  obs::count("parallel.for.calls");
  obs::count("parallel.for.items", n);
  const std::size_t chunks =
      (n + detail::kParallelGrain - 1) / detail::kParallelGrain;
  if (chunks <= 1 || parallel_thread_count() <= 1 || detail::in_pool_worker()) {
    for (std::size_t i = 0; i < n; ++i) f(i);
    return;
  }
  detail::pool_run(chunks, [&f, n](std::size_t ci) {
    const std::size_t lo = ci * detail::kParallelGrain;
    const std::size_t hi = std::min(n, lo + detail::kParallelGrain);
    for (std::size_t i = lo; i < hi; ++i) f(i);
  });
}

/// Materializes map(i) for i in [0, n) into a vector, in index order.
template <typename T, typename Map>
std::vector<T> parallel_map(std::size_t n, Map&& map) {
  std::vector<T> out(n);
  parallel_for(n, [&out, &map](std::size_t i) { out[i] = map(i); });
  return out;
}

/// Deterministic reduction: acc = combine(acc, map(i)) folded sequentially
/// inside each fixed-grain chunk, then chunk partials combined in chunk
/// order. `identity` must be the identity element of `combine` (it seeds
/// every chunk). Bitwise identical for any pool size.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t n, T identity, Map&& map, Combine&& combine) {
  if (n == 0) return identity;
  const std::size_t chunks =
      (n + detail::kParallelGrain - 1) / detail::kParallelGrain;
  std::vector<T> partials(chunks, identity);
  parallel_for(n, [&](std::size_t i) {
    // parallel_for visits each index once; indices of one chunk always run
    // on the same thread in ascending order, so this fold is sequential
    // within the chunk.
    partials[i / detail::kParallelGrain] =
        combine(std::move(partials[i / detail::kParallelGrain]), map(i));
  });
  T total = std::move(partials[0]);
  for (std::size_t ci = 1; ci < chunks; ++ci) {
    total = combine(std::move(total), std::move(partials[ci]));
  }
  return total;
}

}  // namespace ivnet
