#include "ivnet/common/rng.hpp"

#include <cmath>

#include "ivnet/common/units.hpp"

namespace ivnet {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = radius * std::sin(kTwoPi * u2);
  has_cached_normal_ = true;
  return radius * std::cos(kTwoPi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::phase() { return uniform() * kTwoPi; }

Rng Rng::stream(std::uint64_t base_seed, std::uint64_t index) {
  // Hash the index through SplitMix64 so consecutive trial indices land in
  // unrelated regions of seed space, then re-expand seed ^ hash(index)
  // through the constructor's SplitMix64 state fill. Distinct (seed, index)
  // pairs give decorrelated xoshiro256++ states.
  std::uint64_t x = index;
  const std::uint64_t hashed = splitmix64(x);
  return Rng(base_seed ^ hashed);
}

Rng Rng::fork() {
  Rng child(0);
  // Seed the child from four fresh draws so parent and child streams are
  // decorrelated regardless of how many values either produces later.
  for (auto& word : child.state_) word = (*this)();
  return child;
}

}  // namespace ivnet
