// Deterministic random number generation for simulations.
//
// Every stochastic component in ivnet draws from an explicitly-passed Rng so
// that experiments are reproducible from a single seed. The generator is a
// SplitMix64-seeded xoshiro256++, which is fast, high quality, and has a
// trivially serializable state.
#pragma once

#include <array>
#include <cstdint>

namespace ivnet {

/// Deterministic pseudo-random generator (xoshiro256++).
///
/// Satisfies std::uniform_random_bit_generator so it can be used with
/// standard <random> distributions, but also provides the handful of
/// distributions the simulator needs directly (uniform, normal, phase).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit draw.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal draw (Box-Muller; one value per call, caches the pair).
  double normal();

  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Uniform phase in [0, 2*pi) — the paper's beta_i distribution (Sec. 3.3).
  double phase();

  /// Derive an independent child generator; use to give each component its
  /// own stream so adding draws to one component cannot perturb another.
  Rng fork();

  /// Counter-based stream derivation: an independent generator for trial
  /// `index` of a Monte-Carlo run keyed by `base_seed`. Purely a function of
  /// (base_seed, index) — no shared state — so trials can be evaluated in
  /// any order, on any thread, and still draw identical values. This is the
  /// determinism contract of the parallel trial loops.
  static Rng stream(std::uint64_t base_seed, std::uint64_t index);

  /// Raw xoshiro256++ state, for lockstep multi-lane generation
  /// (signal/gauss.cpp advances several generators with packed integer ops
  /// that replicate operator() bit-for-bit). Not for general use: mutating
  /// the state directly bypasses the cached Box-Muller pair.
  const std::array<std::uint64_t, 4>& raw_state() const { return state_; }
  void set_raw_state(const std::array<std::uint64_t, 4>& s) { state_ = s; }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace ivnet
