#include "ivnet/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ivnet {

double percentile(std::span<const double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> samples) { return percentile(samples, 0.5); }

double mean(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  return std::accumulate(samples.begin(), samples.end(), 0.0) /
         static_cast<double>(samples.size());
}

double stddev(std::span<const double> samples) {
  if (samples.size() < 2) return 0.0;
  const double m = mean(samples);
  double sum_sq = 0.0;
  for (double s : samples) sum_sq += (s - m) * (s - m);
  return std::sqrt(sum_sq / static_cast<double>(samples.size() - 1));
}

PercentileSummary summarize(std::span<const double> samples) {
  return PercentileSummary{
      .p10 = percentile(samples, 0.10),
      .p50 = percentile(samples, 0.50),
      .p90 = percentile(samples, 0.90),
  };
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> samples) {
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(sorted.size());
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cdf.push_back({sorted[i], static_cast<double>(i + 1) / n});
  }
  return cdf;
}

double fraction_above(std::span<const double> samples, double threshold) {
  if (samples.empty()) return 0.0;
  const auto count = std::count_if(samples.begin(), samples.end(),
                                   [&](double s) { return s > threshold; });
  return static_cast<double>(count) / static_cast<double>(samples.size());
}

void SampleSet::add(double value) { samples_.push_back(value); }

double SampleSet::min() const {
  return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::mean() const { return ivnet::mean(samples_); }

double SampleSet::median() const { return ivnet::median(samples_); }

PercentileSummary SampleSet::summary() const { return summarize(samples_); }

}  // namespace ivnet
