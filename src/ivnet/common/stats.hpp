// Summary statistics used by the evaluation harness: percentiles, CDFs, and
// the median/p10/p90 triples the paper reports on every figure.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ivnet {

/// Linear-interpolated percentile of a sample set. `q` in [0, 1].
/// Returns 0 for an empty sample set.
double percentile(std::span<const double> samples, double q);

/// Median (50th percentile).
double median(std::span<const double> samples);

/// Arithmetic mean. Returns 0 for an empty set.
double mean(std::span<const double> samples);

/// Sample standard deviation (n-1 denominator). Returns 0 for n < 2.
double stddev(std::span<const double> samples);

/// The three-number summary the paper's figures use (median with 10th/90th
/// percentile error bars).
struct PercentileSummary {
  double p10 = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
};

PercentileSummary summarize(std::span<const double> samples);

/// One point of an empirical CDF: fraction of samples <= value.
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;
};

/// Empirical CDF of the sample set, one point per sample (sorted ascending).
std::vector<CdfPoint> empirical_cdf(std::span<const double> samples);

/// Fraction of samples strictly greater than `threshold`.
double fraction_above(std::span<const double> samples, double threshold);

/// Incremental accumulator for streaming min/max/mean and sample storage.
class SampleSet {
 public:
  void add(double value);
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double min() const;
  double max() const;
  double mean() const;
  double median() const;
  PercentileSummary summary() const;
  std::span<const double> values() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace ivnet
