// Physical constants, unit helpers, and dB conversions used across ivnet.
//
// Conventions:
//   * SI units throughout: meters, seconds, Hz, volts, watts, ohms.
//   * "Amplitude" always means peak amplitude of a sinusoid (not RMS).
//   * Power of a complex baseband sample x is |x|^2 into a normalized 1-ohm
//     load unless an explicit impedance is given.
#pragma once

#include <cmath>
#include <numbers>

namespace ivnet {

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Vacuum permittivity [F/m].
inline constexpr double kEpsilon0 = 8.854'187'8128e-12;

/// Vacuum permeability [H/m].
inline constexpr double kMu0 = 1.256'637'062'12e-6;

/// Wave impedance of free space [ohm].
inline constexpr double kEta0 = 376.730'313'668;

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Convert a power ratio to decibels. `ratio` must be > 0.
inline double to_db(double ratio) { return 10.0 * std::log10(ratio); }

/// Convert decibels to a power ratio.
inline double from_db(double db) { return std::pow(10.0, db / 10.0); }

/// Convert an amplitude (field/voltage) ratio to decibels.
inline double amplitude_to_db(double ratio) { return 20.0 * std::log10(ratio); }

/// Convert decibels to an amplitude (field/voltage) ratio.
inline double db_to_amplitude(double db) { return std::pow(10.0, db / 20.0); }

/// Convert watts to dBm.
inline double watts_to_dbm(double watts) { return 10.0 * std::log10(watts * 1e3); }

/// Convert dBm to watts.
inline double dbm_to_watts(double dbm) { return 1e-3 * std::pow(10.0, dbm / 10.0); }

/// Free-space wavelength [m] of a carrier at `freq_hz`.
inline double wavelength(double freq_hz) { return kSpeedOfLight / freq_hz; }

/// Angular frequency [rad/s].
inline double angular_frequency(double freq_hz) { return kTwoPi * freq_hz; }

/// Wrap an angle to [0, 2*pi).
inline double wrap_phase(double radians) {
  double w = std::fmod(radians, kTwoPi);
  if (w < 0.0) w += kTwoPi;
  return w;
}

/// Wrap an angle to (-pi, pi].
inline double wrap_phase_symmetric(double radians) {
  double w = wrap_phase(radians);
  if (w > kPi) w -= kTwoPi;
  return w;
}

}  // namespace ivnet
