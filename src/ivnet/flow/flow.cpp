#include "ivnet/flow/flow.hpp"

#include <cassert>
#include <cmath>

#include "ivnet/common/units.hpp"

namespace ivnet::flow {

// --- Sources -------------------------------------------------------------

VectorSource::VectorSource(Waveform wave) : wave_(std::move(wave)) {}

std::size_t VectorSource::produce(std::vector<cplx>& out, std::size_t max) {
  const std::size_t n = std::min(max, wave_.samples.size() - cursor_);
  out.insert(out.end(), wave_.samples.begin() + static_cast<std::ptrdiff_t>(cursor_),
             wave_.samples.begin() + static_cast<std::ptrdiff_t>(cursor_ + n));
  cursor_ += n;
  return n;
}

ToneSource::ToneSource(double offset_hz, double sample_rate_hz,
                       std::size_t length, double phase0, double amplitude)
    : rotator_(std::polar(amplitude, phase0)),
      step_(std::polar(1.0, kTwoPi * offset_hz / sample_rate_hz)),
      amplitude_(amplitude),
      remaining_(length) {}

std::size_t ToneSource::produce(std::vector<cplx>& out, std::size_t max) {
  const std::size_t n = std::min(max, remaining_);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(rotator_);
    rotator_ *= step_;
  }
  // Keep the rotator's magnitude pinned over long runs.
  const double mag = std::abs(rotator_);
  if (mag > 0.0) rotator_ *= amplitude_ / mag;
  remaining_ -= n;
  return n;
}

void SumSource::add_branch(std::unique_ptr<Source> source, cplx gain) {
  branches_.push_back(Branch{std::move(source), gain, false});
}

std::size_t SumSource::produce(std::vector<cplx>& out, std::size_t max) {
  if (branches_.empty()) return 0;
  std::vector<cplx> sum(max, cplx{0.0, 0.0});
  std::size_t longest = 0;
  std::vector<cplx> scratch;
  for (auto& branch : branches_) {
    if (branch.done) continue;
    scratch.clear();
    const std::size_t n = branch.source->produce(scratch, max);
    if (n == 0) {
      branch.done = true;
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) sum[i] += branch.gain * scratch[i];
    longest = std::max(longest, n);
  }
  out.insert(out.end(), sum.begin(),
             sum.begin() + static_cast<std::ptrdiff_t>(longest));
  return longest;
}

// --- Transforms ----------------------------------------------------------

void GainTransform::process(std::span<const cplx> in, std::vector<cplx>& out) {
  for (const auto& s : in) out.push_back(gain_ * s);
}

MixerTransform::MixerTransform(double shift_hz, double sample_rate_hz)
    : step_(std::polar(1.0, kTwoPi * shift_hz / sample_rate_hz)) {}

void MixerTransform::process(std::span<const cplx> in, std::vector<cplx>& out) {
  for (const auto& s : in) {
    out.push_back(s * rotator_);
    rotator_ *= step_;
  }
  const double mag = std::abs(rotator_);
  if (mag > 0.0) rotator_ /= mag;
}

FirTransform::FirTransform(std::vector<double> taps)
    : taps_(std::move(taps)) {
  assert(!taps_.empty());
  history_.assign(taps_.size() - 1, cplx{0.0, 0.0});
}

void FirTransform::process(std::span<const cplx> in, std::vector<cplx>& out) {
  // Work on history + chunk so taps never straddle a chunk boundary.
  std::vector<cplx> buffer;
  buffer.reserve(history_.size() + in.size());
  buffer.insert(buffer.end(), history_.begin(), history_.end());
  buffer.insert(buffer.end(), in.begin(), in.end());

  const std::size_t h = taps_.size() - 1;
  for (std::size_t i = h; i < buffer.size(); ++i) {
    cplx acc{0.0, 0.0};
    for (std::size_t t = 0; t < taps_.size(); ++t) {
      acc += taps_[t] * buffer[i - t];
    }
    out.push_back(acc);
  }
  // Preserve the last taps-1 inputs for the next chunk.
  if (buffer.size() >= h) {
    history_.assign(buffer.end() - static_cast<std::ptrdiff_t>(h),
                    buffer.end());
  }
}

DecimatorTransform::DecimatorTransform(std::size_t factor) : factor_(factor) {
  assert(factor_ >= 1);
}

void DecimatorTransform::process(std::span<const cplx> in,
                                 std::vector<cplx>& out) {
  for (const auto& s : in) {
    if (phase_ == 0) out.push_back(s);
    phase_ = (phase_ + 1) % factor_;
  }
}

void EnvelopeTransform::process(std::span<const cplx> in,
                                std::vector<cplx>& out) {
  for (const auto& s : in) out.push_back(cplx{std::abs(s), 0.0});
}

AwgnTransform::AwgnTransform(double noise_power, std::uint64_t seed)
    : rng_(seed), sigma_(std::sqrt(noise_power / 2.0)) {}

void AwgnTransform::process(std::span<const cplx> in, std::vector<cplx>& out) {
  for (const auto& s : in) {
    out.push_back(s + cplx{rng_.normal(0.0, sigma_),
                           rng_.normal(0.0, sigma_)});
  }
}

// --- Sinks ---------------------------------------------------------------

void VectorSink::consume(std::span<const cplx> in) {
  samples_.insert(samples_.end(), in.begin(), in.end());
}

void ProbeSink::consume(std::span<const cplx> in) {
  for (const auto& s : in) {
    const double norm = std::norm(s);
    peak_norm_ = std::max(peak_norm_, norm);
    power_sum_ += norm;
  }
  count_ += in.size();
}

double ProbeSink::mean_power() const {
  return count_ == 0 ? 0.0 : power_sum_ / static_cast<double>(count_);
}

// --- Graph ---------------------------------------------------------------

void Flowgraph::set_source(std::unique_ptr<Source> source) {
  source_ = std::move(source);
}

void Flowgraph::add_transform(std::unique_ptr<Transform> transform) {
  transforms_.push_back(std::move(transform));
}

void Flowgraph::set_sink(std::unique_ptr<Sink> sink) { sink_ = std::move(sink); }

std::size_t Flowgraph::run(std::size_t chunk_size) {
  assert(source_ && sink_);
  std::size_t total = 0;
  std::vector<cplx> a, b;
  for (;;) {
    a.clear();
    const std::size_t n = source_->produce(a, chunk_size);
    if (n == 0) break;
    total += n;
    for (auto& transform : transforms_) {
      b.clear();
      transform->process(a, b);
      std::swap(a, b);
    }
    sink_->consume(a);
  }
  return total;
}

}  // namespace ivnet::flow
