// A small streaming flowgraph framework, mirroring how the paper's
// prototype structures its signal path inside the UHD driver (Sec. 5:
// "We implemented the beamforming algorithm and concurrent data
// communication directly into the USRP's UHD driver in C++").
//
// Chunked pull pipeline: one Source, a chain of stateful Transforms, one
// Sink. Blocks keep their own streaming state (FIR history, decimation
// phase, NCO phase), so results are identical regardless of chunk size —
// the property the tests pin down.
#pragma once

#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ivnet/common/rng.hpp"
#include "ivnet/signal/waveform.hpp"

namespace ivnet::flow {

/// Produces samples. Returns the number appended to `out` (<= max);
/// 0 means the stream has ended.
class Source {
 public:
  virtual ~Source() = default;
  virtual std::string name() const = 0;
  virtual std::size_t produce(std::vector<cplx>& out, std::size_t max) = 0;
};

/// Consumes a chunk, appends processed samples (size may differ).
class Transform {
 public:
  virtual ~Transform() = default;
  virtual std::string name() const = 0;
  virtual void process(std::span<const cplx> in, std::vector<cplx>& out) = 0;
};

/// Terminal consumer.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual std::string name() const = 0;
  virtual void consume(std::span<const cplx> in) = 0;
};

// --- Sources -------------------------------------------------------------

/// Plays out a fixed waveform.
class VectorSource : public Source {
 public:
  explicit VectorSource(Waveform wave);
  std::string name() const override { return "vector_source"; }
  std::size_t produce(std::vector<cplx>& out, std::size_t max) override;

 private:
  Waveform wave_;
  std::size_t cursor_ = 0;
};

/// Complex tone of fixed length.
class ToneSource : public Source {
 public:
  ToneSource(double offset_hz, double sample_rate_hz, std::size_t length,
             double phase0 = 0.0, double amplitude = 1.0);
  std::string name() const override { return "tone_source"; }
  std::size_t produce(std::vector<cplx>& out, std::size_t max) override;

 private:
  cplx rotator_;
  cplx step_;
  double amplitude_;
  std::size_t remaining_;
};

/// Sums several child sources with per-branch complex gains — the receive
/// side of a multi-antenna CIB link (each branch = one antenna through its
/// channel coefficient). Ends when every child ends; shorter children pad
/// with zeros.
class SumSource : public Source {
 public:
  SumSource() = default;
  void add_branch(std::unique_ptr<Source> source, cplx gain);
  std::string name() const override { return "sum_source"; }
  std::size_t produce(std::vector<cplx>& out, std::size_t max) override;

 private:
  struct Branch {
    std::unique_ptr<Source> source;
    cplx gain;
    bool done = false;
  };
  std::vector<Branch> branches_;
};

// --- Transforms ----------------------------------------------------------

/// Scalar complex gain.
class GainTransform : public Transform {
 public:
  explicit GainTransform(cplx gain) : gain_(gain) {}
  std::string name() const override { return "gain"; }
  void process(std::span<const cplx> in, std::vector<cplx>& out) override;

 private:
  cplx gain_;
};

/// Frequency shift (numerically-controlled oscillator), phase-continuous
/// across chunks.
class MixerTransform : public Transform {
 public:
  MixerTransform(double shift_hz, double sample_rate_hz);
  std::string name() const override { return "mixer"; }
  void process(std::span<const cplx> in, std::vector<cplx>& out) override;

 private:
  cplx rotator_{1.0, 0.0};
  cplx step_;
};

/// Streaming FIR with history carried across chunks.
class FirTransform : public Transform {
 public:
  explicit FirTransform(std::vector<double> taps);
  std::string name() const override { return "fir"; }
  void process(std::span<const cplx> in, std::vector<cplx>& out) override;

 private:
  std::vector<double> taps_;
  std::vector<cplx> history_;  // last taps-1 input samples
};

/// Keep-one-in-N decimator with phase carried across chunks (no filtering;
/// compose with FirTransform for anti-aliasing).
class DecimatorTransform : public Transform {
 public:
  explicit DecimatorTransform(std::size_t factor);
  std::string name() const override { return "decimator"; }
  void process(std::span<const cplx> in, std::vector<cplx>& out) override;

 private:
  std::size_t factor_;
  std::size_t phase_ = 0;
};

/// Magnitude detector: out = |in| (imaginary part zero) — the tag's
/// envelope view of the stream.
class EnvelopeTransform : public Transform {
 public:
  std::string name() const override { return "envelope"; }
  void process(std::span<const cplx> in, std::vector<cplx>& out) override;
};

/// Additive white Gaussian noise of fixed per-sample power.
class AwgnTransform : public Transform {
 public:
  AwgnTransform(double noise_power, std::uint64_t seed);
  std::string name() const override { return "awgn"; }
  void process(std::span<const cplx> in, std::vector<cplx>& out) override;

 private:
  Rng rng_;
  double sigma_;
};

// --- Sinks ---------------------------------------------------------------

/// Collects everything.
class VectorSink : public Sink {
 public:
  std::string name() const override { return "vector_sink"; }
  void consume(std::span<const cplx> in) override;
  const std::vector<cplx>& samples() const { return samples_; }

 private:
  std::vector<cplx> samples_;
};

/// Running peak/power meter.
class ProbeSink : public Sink {
 public:
  std::string name() const override { return "probe"; }
  void consume(std::span<const cplx> in) override;
  double peak_amplitude() const { return std::sqrt(peak_norm_); }
  double mean_power() const;
  std::size_t count() const { return count_; }

 private:
  double peak_norm_ = 0.0;  // max |x|^2 seen
  double power_sum_ = 0.0;
  std::size_t count_ = 0;
};

// --- Graph ---------------------------------------------------------------

/// Source -> transforms... -> sink, run in chunks.
class Flowgraph {
 public:
  void set_source(std::unique_ptr<Source> source);
  void add_transform(std::unique_ptr<Transform> transform);
  void set_sink(std::unique_ptr<Sink> sink);

  /// Run to completion. Returns total samples the source produced.
  std::size_t run(std::size_t chunk_size = 4096);

  Sink* sink() { return sink_.get(); }

 private:
  std::unique_ptr<Source> source_;
  std::vector<std::unique_ptr<Transform>> transforms_;
  std::unique_ptr<Sink> sink_;
};

}  // namespace ivnet::flow
