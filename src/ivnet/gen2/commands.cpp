#include "ivnet/gen2/commands.hpp"

namespace ivnet::gen2 {

Bits QueryCommand::encode() const {
  Bits bits;
  append_bits(bits, 0b1000, 4);
  append_bits(bits, static_cast<std::uint32_t>(dr), 1);
  append_bits(bits, static_cast<std::uint32_t>(m), 2);
  append_bits(bits, trext ? 1 : 0, 1);
  append_bits(bits, sel, 2);
  append_bits(bits, static_cast<std::uint32_t>(session), 2);
  append_bits(bits, target_b ? 1 : 0, 1);
  append_bits(bits, q, 4);
  append_bits(bits, crc5(bits), 5);
  return bits;
}

std::optional<QueryCommand> QueryCommand::parse(const Bits& bits) {
  if (bits.size() != 22 || read_bits(bits, 0, 4) != 0b1000) return std::nullopt;
  if (!check_crc5(bits)) return std::nullopt;
  QueryCommand cmd;
  cmd.dr = static_cast<DivideRatio>(read_bits(bits, 4, 1));
  cmd.m = static_cast<Miller>(read_bits(bits, 5, 2));
  cmd.trext = read_bits(bits, 7, 1) != 0;
  cmd.sel = static_cast<std::uint8_t>(read_bits(bits, 8, 2));
  cmd.session = static_cast<Session>(read_bits(bits, 10, 2));
  cmd.target_b = read_bits(bits, 12, 1) != 0;
  cmd.q = static_cast<std::uint8_t>(read_bits(bits, 13, 4));
  return cmd;
}

Bits QueryRepCommand::encode() const {
  Bits bits;
  append_bits(bits, 0b00, 2);
  append_bits(bits, static_cast<std::uint32_t>(session), 2);
  return bits;
}

std::optional<QueryRepCommand> QueryRepCommand::parse(const Bits& bits) {
  if (bits.size() != 4 || read_bits(bits, 0, 2) != 0b00) return std::nullopt;
  QueryRepCommand cmd;
  cmd.session = static_cast<Session>(read_bits(bits, 2, 2));
  return cmd;
}

Bits AckCommand::encode() const {
  Bits bits;
  append_bits(bits, 0b01, 2);
  append_bits(bits, rn16, 16);
  return bits;
}

std::optional<AckCommand> AckCommand::parse(const Bits& bits) {
  if (bits.size() != 18 || read_bits(bits, 0, 2) != 0b01) return std::nullopt;
  AckCommand cmd;
  cmd.rn16 = static_cast<std::uint16_t>(read_bits(bits, 2, 16));
  return cmd;
}

Bits SelectCommand::encode() const {
  Bits bits;
  append_bits(bits, 0b1010, 4);
  append_bits(bits, target, 3);
  append_bits(bits, action, 3);
  append_bits(bits, membank, 2);
  append_bits(bits, pointer, 8);
  append_bits(bits, static_cast<std::uint32_t>(mask.size()), 8);
  bits.insert(bits.end(), mask.begin(), mask.end());
  bits.push_back(truncate);
  append_bits(bits, crc16(bits), 16);
  return bits;
}

std::optional<SelectCommand> SelectCommand::parse(const Bits& bits) {
  if (bits.size() < 4 + 3 + 3 + 2 + 8 + 8 + 1 + 16) return std::nullopt;
  if (read_bits(bits, 0, 4) != 0b1010) return std::nullopt;
  if (!check_crc16(bits)) return std::nullopt;
  SelectCommand cmd;
  cmd.target = static_cast<std::uint8_t>(read_bits(bits, 4, 3));
  cmd.action = static_cast<std::uint8_t>(read_bits(bits, 7, 3));
  cmd.membank = static_cast<std::uint8_t>(read_bits(bits, 10, 2));
  cmd.pointer = static_cast<std::uint8_t>(read_bits(bits, 12, 8));
  const auto mask_len = read_bits(bits, 20, 8);
  if (bits.size() != 4 + 3 + 3 + 2 + 8 + 8 + mask_len + 1 + 16) {
    return std::nullopt;
  }
  cmd.mask.assign(bits.begin() + 28,
                  bits.begin() + 28 + static_cast<std::ptrdiff_t>(mask_len));
  cmd.truncate = bits[28 + mask_len];
  return cmd;
}

CommandKind classify(const Bits& bits) {
  if (bits.size() >= 4 && read_bits(bits, 0, 4) == 0b1000) {
    return CommandKind::kQuery;
  }
  if (bits.size() >= 4 && read_bits(bits, 0, 4) == 0b1010) {
    return CommandKind::kSelect;
  }
  if (bits.size() >= 2 && read_bits(bits, 0, 2) == 0b01) {
    return CommandKind::kAck;
  }
  if (bits.size() >= 2 && read_bits(bits, 0, 2) == 0b00) {
    return CommandKind::kQueryRep;
  }
  return CommandKind::kUnknown;
}

}  // namespace ivnet::gen2
