// EPC Gen2 reader commands at the bit level: Select, Query, QueryRep, ACK.
//
// IVN transmits these synchronously from every CIB antenna (Sec. 3.2:
// "the commands transmitted from all the antennas are the same ... at the
// exact same time"). Sec. 3.7 notes Select can address one of several
// implanted sensors; its length feeds the delta-t of the flatness constraint.
#pragma once

#include <cstdint>
#include <optional>

#include "ivnet/gen2/crc.hpp"
#include "ivnet/gen2/pie.hpp"

namespace ivnet::gen2 {

/// Divide ratio field of Query.
enum class DivideRatio : std::uint8_t { kDr8 = 0, kDr64_3 = 1 };

/// Uplink modulation (we use FM0 = 0 throughout, as the paper does).
enum class Miller : std::uint8_t { kFm0 = 0, kM2 = 1, kM4 = 2, kM8 = 3 };

/// Session flag targeted by inventory rounds.
enum class Session : std::uint8_t { kS0 = 0, kS1 = 1, kS2 = 2, kS3 = 3 };

struct QueryCommand {
  DivideRatio dr = DivideRatio::kDr8;
  Miller m = Miller::kFm0;
  bool trext = false;        ///< pilot tone request
  std::uint8_t sel = 0;      ///< which tags respond (00=all)
  Session session = Session::kS0;
  bool target_b = false;     ///< inventoried flag target (A=false)
  std::uint8_t q = 0;        ///< slot-count exponent, 0..15

  /// 22 bits: '1000' + fields + CRC-5.
  Bits encode() const;
  static std::optional<QueryCommand> parse(const Bits& bits);
};

struct QueryRepCommand {
  Session session = Session::kS0;
  /// 4 bits: '00' + session.
  Bits encode() const;
  static std::optional<QueryRepCommand> parse(const Bits& bits);
};

struct AckCommand {
  std::uint16_t rn16 = 0;
  /// 18 bits: '01' + RN16.
  Bits encode() const;
  static std::optional<AckCommand> parse(const Bits& bits);
};

struct SelectCommand {
  std::uint8_t target = 4;   ///< 3 bits; 4 = SL flag
  std::uint8_t action = 0;   ///< 3 bits
  std::uint8_t membank = 1;  ///< 2 bits; 1 = EPC
  std::uint8_t pointer = 0x20;  ///< bit address (8-bit EBV body)
  Bits mask;                 ///< up to 255 bits
  bool truncate = false;

  /// '1010' + fields + mask + CRC-16.
  Bits encode() const;
  static std::optional<SelectCommand> parse(const Bits& bits);
};

/// Which command a bit vector starts with, by prefix.
enum class CommandKind { kQuery, kQueryRep, kAck, kSelect, kUnknown };
CommandKind classify(const Bits& bits);

}  // namespace ivnet::gen2
