#include "ivnet/gen2/crc.hpp"

#include <cassert>

namespace ivnet::gen2 {

std::uint8_t crc5(const Bits& bits) {
  std::uint8_t reg = 0b01001;
  for (bool bit : bits) {
    const bool msb = (reg & 0b10000) != 0;
    reg = static_cast<std::uint8_t>((reg << 1) & 0b11111);
    if (msb != bit) reg ^= 0b01001;  // poly x^5 + x^3 + 1 -> 0b01001 taps
  }
  return reg;
}

std::uint16_t crc16(const Bits& bits) {
  std::uint16_t reg = 0xFFFF;
  for (bool bit : bits) {
    const bool msb = (reg & 0x8000) != 0;
    reg = static_cast<std::uint16_t>(reg << 1);
    if (msb != bit) reg ^= 0x1021;
  }
  return static_cast<std::uint16_t>(~reg);
}

bool check_crc5(const Bits& bits_with_crc) {
  if (bits_with_crc.size() < 5) return false;
  Bits payload(bits_with_crc.begin(), bits_with_crc.end() - 5);
  const std::uint8_t expect = crc5(payload);
  const auto got = static_cast<std::uint8_t>(
      read_bits(bits_with_crc, bits_with_crc.size() - 5, 5));
  return expect == got;
}

bool check_crc16(const Bits& bits_with_crc) {
  if (bits_with_crc.size() < 16) return false;
  Bits payload(bits_with_crc.begin(), bits_with_crc.end() - 16);
  const std::uint16_t expect = crc16(payload);
  const auto got = static_cast<std::uint16_t>(
      read_bits(bits_with_crc, bits_with_crc.size() - 16, 16));
  return expect == got;
}

void append_bits(Bits& bits, std::uint32_t value, int width) {
  assert(width >= 0 && width <= 32);
  for (int i = width - 1; i >= 0; --i) {
    bits.push_back(((value >> i) & 1u) != 0);
  }
}

std::uint32_t read_bits(const Bits& bits, std::size_t pos, int width) {
  assert(pos + static_cast<std::size_t>(width) <= bits.size());
  std::uint32_t value = 0;
  for (int i = 0; i < width; ++i) {
    value = (value << 1) | (bits[pos + static_cast<std::size_t>(i)] ? 1u : 0u);
  }
  return value;
}

}  // namespace ivnet::gen2
