// EPC Gen2 CRC-5 and CRC-16 (ISO/IEC 18000-63). Bits are processed MSB-first
// as they appear on air.
#pragma once

#include <cstdint>
#include <vector>

namespace ivnet::gen2 {

/// Bit sequence as transmitted (index 0 first on air).
using Bits = std::vector<bool>;

/// CRC-5 over `bits`: polynomial x^5 + x^3 + 1, preset 0b01001.
/// Appended to Query commands.
std::uint8_t crc5(const Bits& bits);

/// CRC-16-CCITT over `bits`: polynomial 0x1021, preset 0xFFFF, value is
/// ones-complemented before transmission (as the standard requires).
std::uint16_t crc16(const Bits& bits);

/// True if `bits` (payload + appended CRC-5) passes the CRC-5 check.
bool check_crc5(const Bits& bits_with_crc);

/// True if `bits` (payload + appended complemented CRC-16) passes.
bool check_crc16(const Bits& bits_with_crc);

/// Append `width` bits of `value` MSB-first.
void append_bits(Bits& bits, std::uint32_t value, int width);

/// Read `width` bits MSB-first starting at `pos` (caller checks bounds).
std::uint32_t read_bits(const Bits& bits, std::size_t pos, int width);

}  // namespace ivnet::gen2
