#include "ivnet/gen2/fm0.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "ivnet/signal/correlate.hpp"

namespace ivnet::gen2 {

const std::vector<bool>& fm0_preamble_halfbits() {
  static const std::vector<bool> preamble = {true, true,  false, true,
                                             false, false, true,  false,
                                             false, false, true,  true};
  return preamble;
}

std::vector<bool> fm0_encode_halfbits(const Bits& bits) {
  std::vector<bool> halves = fm0_preamble_halfbits();
  // FM0 state: level of the most recent half-bit. The preamble ends high;
  // every symbol starts with a boundary inversion.
  bool level = halves.back();
  auto encode_symbol = [&](bool bit) {
    level = !level;  // boundary inversion
    halves.push_back(level);
    if (!bit) level = !level;  // data-0: mid-symbol inversion
    halves.push_back(level);
  };
  for (bool bit : bits) encode_symbol(bit);
  encode_symbol(true);  // closing dummy data-1
  return halves;
}

namespace {

std::vector<double> halfbits_to_samples(const std::vector<bool>& halves,
                                        double blf_hz, double fs) {
  const double half_duration = 1.0 / (2.0 * blf_hz);
  const auto spb = static_cast<std::size_t>(std::llround(half_duration * fs));
  assert(spb >= 2 && "sample rate too low for the BLF");
  std::vector<double> samples;
  samples.reserve(halves.size() * spb);
  for (bool h : halves) {
    samples.insert(samples.end(), spb, h ? 1.0 : -1.0);
  }
  return samples;
}

}  // namespace

std::vector<double> fm0_modulate(const Bits& bits, double blf_hz,
                                 double sample_rate_hz) {
  return halfbits_to_samples(fm0_encode_halfbits(bits), blf_hz, sample_rate_hz);
}

std::vector<double> fm0_preamble_template(double blf_hz, double sample_rate_hz) {
  return halfbits_to_samples(fm0_preamble_halfbits(), blf_hz, sample_rate_hz);
}

Fm0DecodeResult fm0_decode(std::span<const double> signal, std::size_t num_bits,
                           double blf_hz, double sample_rate_hz,
                           double min_correlation) {
  Fm0DecodeResult result;
  const auto tmpl = fm0_preamble_template(blf_hz, sample_rate_hz);
  const double half_duration = 1.0 / (2.0 * blf_hz);
  const auto spb = static_cast<std::size_t>(
      std::llround(half_duration * sample_rate_hz));
  // Total half-bits: preamble + 2 per data bit + 2 for the dummy bit.
  const std::size_t total_halves =
      fm0_preamble_halfbits().size() + 2 * num_bits + 2;
  if (signal.size() < total_halves * spb) return result;

  // Locate the preamble at either polarity. The template-side correlation
  // statistics are hoisted out of the scan (bitwise-identical results).
  const CorrelationNeedle cached(tmpl);
  double best = 0.0;
  std::size_t best_off = 0;
  bool inverted = false;
  const std::size_t last_start = signal.size() - total_halves * spb;
  for (std::size_t off = 0; off <= last_start; ++off) {
    const double c = cached.correlate(signal.subspan(off, tmpl.size()));
    if (std::abs(c) > std::abs(best)) {
      best = c;
      best_off = off;
      inverted = c < 0.0;
    }
  }
  result.preamble_correlation = std::abs(best);
  result.preamble_offset = best_off;
  result.inverted = inverted;
  if (result.preamble_correlation < min_correlation) return result;

  // Slice half-bit levels by integrating each half period.
  const double polarity = inverted ? -1.0 : 1.0;
  auto half_level = [&](std::size_t half_index) {
    const std::size_t start = best_off + half_index * spb;
    double sum = 0.0;
    for (std::size_t i = 0; i < spb; ++i) sum += signal[start + i];
    return polarity * sum > 0.0;
  };

  const std::size_t preamble_halves = fm0_preamble_halfbits().size();
  bool prev_last = half_level(preamble_halves - 1);
  for (std::size_t b = 0; b < num_bits; ++b) {
    const std::size_t base = preamble_halves + 2 * b;
    const bool h0 = half_level(base);
    const bool h1 = half_level(base + 1);
    // Equal halves -> data-1; a mid-symbol inversion -> data-0.
    result.bits.push_back(h0 == h1);
    // FM0 well-formedness: each symbol starts with a boundary inversion.
    if (h0 == prev_last) {
      // Boundary violation inside data: treat as decode failure.
      result.bits.clear();
      return result;
    }
    prev_last = h1;
  }
  result.valid = true;
  return result;
}

}  // namespace ivnet::gen2
