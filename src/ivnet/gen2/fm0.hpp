// FM0 (bi-phase space) baseband — the tag->reader backscatter encoding.
//
// FM0 inverts the baseband level at every symbol boundary; data-0 adds a
// mid-symbol inversion. The 6-symbol preamble expands to the 12 half-bit
// pattern 110100100011 — exactly the string the paper correlates against to
// declare in-vivo decode success (Sec. 6.2, threshold 0.8).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ivnet/gen2/crc.hpp"

namespace ivnet::gen2 {

/// The 12 half-bit levels of the FM0 preamble ("110100100011").
const std::vector<bool>& fm0_preamble_halfbits();

/// Encode `bits` as FM0 half-bit levels: preamble, data (starting with a
/// boundary inversion off the preamble's final high level), and the standard
/// closing dummy data-1.
std::vector<bool> fm0_encode_halfbits(const Bits& bits);

/// Expand half-bit levels to +/-1.0 samples at `sample_rate_hz` with a
/// backscatter link frequency `blf_hz` (half-bit duration = 1/(2*BLF)).
std::vector<double> fm0_modulate(const Bits& bits, double blf_hz,
                                 double sample_rate_hz);

/// Matched-filter template of the preamble alone (+/-1.0 samples).
std::vector<double> fm0_preamble_template(double blf_hz, double sample_rate_hz);

/// Result of demodulating an FM0 burst.
struct Fm0DecodeResult {
  bool valid = false;
  Bits bits;
  double preamble_correlation = 0.0;  ///< best |normalized correlation|
  std::size_t preamble_offset = 0;    ///< sample index where preamble starts
  bool inverted = false;              ///< polarity flip detected
};

/// Decode `num_bits` FM0 data bits from a real-valued signal: locate the
/// preamble by sliding normalized correlation (accepting either polarity),
/// declare success only above `min_correlation` (the paper uses 0.8), then
/// slice half-bits and apply the FM0 rules.
Fm0DecodeResult fm0_decode(std::span<const double> signal, std::size_t num_bits,
                           double blf_hz, double sample_rate_hz,
                           double min_correlation = 0.8);

}  // namespace ivnet::gen2
