#include "ivnet/gen2/link_timing.hpp"

#include <algorithm>
#include <cmath>

#include "ivnet/common/units.hpp"
#include "ivnet/gen2/commands.hpp"
#include "ivnet/gen2/fm0.hpp"

namespace ivnet::gen2 {

double LinkTiming::t1_nominal_s() const {
  return std::max(rtcal_s, 10.0 / blf_hz);
}

double LinkTiming::t1_min_s() const {
  // +/- frequency tolerance of the tag's oscillator, minus 2 us guard.
  return t1_nominal_s() * (1.0 - 1.0 / frt) - 2e-6;
}

double LinkTiming::t1_max_s() const {
  return t1_nominal_s() * (1.0 + 1.0 / frt) + 2e-6;
}

double fm0_reply_duration_s(std::size_t num_bits, double blf_hz) {
  // Half-bits: 12 preamble + 2 per data bit + 2 dummy; each 1/(2 BLF).
  const auto halves = fm0_preamble_halfbits().size() + 2 * num_bits + 2;
  return static_cast<double>(halves) / (2.0 * blf_hz);
}

double pie_command_duration_s(const Bits& bits, const PieTiming& timing,
                              bool with_preamble) {
  double t = timing.delimiter_s + timing.data0_s() + timing.rtcal_s();
  if (with_preamble) t += timing.trcal_s();
  for (bool b : bits) t += b ? timing.data1_s() : timing.data0_s();
  return t;
}

double inventory_exchange_duration_s(const PieTiming& pie,
                                     const LinkTiming& link) {
  const double query =
      pie_command_duration_s(QueryCommand{}.encode(), pie, true);
  const double ack =
      pie_command_duration_s(AckCommand{}.encode(), pie, false);
  const double rn16 = fm0_reply_duration_s(16, link.blf_hz);
  const double epc = fm0_reply_duration_s(128, link.blf_hz);
  return query + link.t1_max_s() + rn16 + link.t2_max_s() + ack +
         link.t1_max_s() + epc + link.t2_max_s();
}

double peak_flat_top_s(double rms_offset_hz, double fluctuation) {
  if (rms_offset_hz <= 0.0) return 1e9;  // single tone: flat forever
  return std::sqrt(fluctuation /
                   (2.0 * kPi * kPi * rms_offset_hz * rms_offset_hz));
}

bool command_fits_peak(const Bits& command_bits, const PieTiming& pie,
                       bool with_preamble, double rms_offset_hz,
                       double fluctuation) {
  return pie_command_duration_s(command_bits, pie, with_preamble) <=
         peak_flat_top_s(rms_offset_hz, fluctuation);
}

double max_rms_for_command_s(double command_duration_s, double fluctuation) {
  return std::sqrt(fluctuation / (2.0 * kPi * kPi * command_duration_s *
                                  command_duration_s));
}

}  // namespace ivnet::gen2
