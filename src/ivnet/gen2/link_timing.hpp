// Gen2 link timing: the T1-T4 windows that govern reader <-> tag turnaround
// (ISO 18000-63 Table 6.16), and the interaction with CIB's envelope peak.
//
// Only reader COMMANDS need the envelope flat-top (tags decode PIE by
// envelope detection; their own backscatter replies only need power above
// threshold), so the Eq. 9 feasibility condition is per-command: each PIE
// command must fit inside the flat-top. The Query fits a 199 Hz-RMS plan's
// ~2 ms top with margin; longer access commands (Read is 58 bits) eat into
// it — exactly the Sec. 3.7 remark that an elongated command must be folded
// back "into the delta-t constraint of Eq. 10".
#pragma once

#include "ivnet/gen2/pie.hpp"

namespace ivnet::gen2 {

/// Link-timing parameters derived from the air-interface settings.
struct LinkTiming {
  double blf_hz = 40e3;   ///< backscatter link frequency
  double rtcal_s = 75e-6; ///< reader->tag calibration symbol
  double frt = 8.0;       ///< frequency tolerance multiplier (DR/TRcal)

  /// T1: tag reply delay after the last reader symbol.
  /// Nominal MAX(RTcal, 10/BLF) * (1 +/- tolerance) + 2 us.
  double t1_nominal_s() const;
  double t1_min_s() const;
  double t1_max_s() const;

  /// T2: reader response time after the tag reply (3-20 T_pri).
  double t2_min_s() const { return 3.0 / blf_hz; }
  double t2_max_s() const { return 20.0 / blf_hz; }

  /// T3: time a reader waits after T1 before issuing another command.
  double t3_min_s() const { return 0.0; }

  /// T4: minimum time between reader commands (2 RTcal).
  double t4_min_s() const { return 2.0 * rtcal_s; }
};

/// Duration of one FM0 tag reply of `num_bits` data bits (preamble + data +
/// dummy) at the given BLF.
double fm0_reply_duration_s(std::size_t num_bits, double blf_hz);

/// Duration of a PIE command of `bits` under `timing` (including preamble
/// or frame-sync).
double pie_command_duration_s(const Bits& bits, const PieTiming& timing,
                              bool with_preamble);

/// Total air time of a full inventory exchange:
///   Query + T1 + RN16 + T2 + ACK + T1 + EPC(128) + T2.
double inventory_exchange_duration_s(const PieTiming& pie,
                                     const LinkTiming& link);

/// The flat-top duration of a CIB envelope peak: the time the envelope
/// stays within `fluctuation` of its maximum for a plan of RMS offset
/// `rms_offset_hz` (first-order Taylor bound, the inverse of Eq. 9):
///   dt = sqrt(fluctuation / (2 pi^2 rms^2)).
double peak_flat_top_s(double rms_offset_hz, double fluctuation = 0.5);

/// True when one PIE command fits inside the envelope flat-top — the
/// per-command feasibility condition behind Eq. 9/10.
bool command_fits_peak(const Bits& command_bits, const PieTiming& pie,
                       bool with_preamble, double rms_offset_hz,
                       double fluctuation = 0.5);

/// The largest RMS offset [Hz] for which a command of duration `dt` still
/// meets the fluctuation bound — Eq. 9 rearranged, the number Sec. 3.6
/// quotes as 199 Hz for dt = 800 us.
double max_rms_for_command_s(double command_duration_s,
                             double fluctuation = 0.5);

}  // namespace ivnet::gen2
