#include "ivnet/gen2/memory.hpp"

namespace ivnet::gen2 {

namespace {
constexpr std::uint32_t kReqRnPrefix = 0b11000001;
constexpr std::uint32_t kReadPrefix = 0b11000010;
constexpr std::uint32_t kWritePrefix = 0b11000011;
}  // namespace

TagMemory::TagMemory() {
  banks_[static_cast<std::size_t>(MemBank::kReserved)].resize(4, 0);
  banks_[static_cast<std::size_t>(MemBank::kEpc)].resize(8, 0);
  banks_[static_cast<std::size_t>(MemBank::kTid)].resize(4, 0);
  banks_[static_cast<std::size_t>(MemBank::kUser)].resize(32, 0);
  locked_[static_cast<std::size_t>(MemBank::kTid)] = true;  // factory data
}

std::optional<std::uint16_t> TagMemory::read(MemBank bank,
                                             std::size_t word_addr) const {
  const auto& b = banks_[static_cast<std::size_t>(bank)];
  if (word_addr >= b.size()) return std::nullopt;
  return b[word_addr];
}

bool TagMemory::write(MemBank bank, std::size_t word_addr,
                      std::uint16_t value) {
  if (is_locked(bank)) return false;
  auto& b = banks_[static_cast<std::size_t>(bank)];
  if (word_addr >= b.size()) return false;
  b[word_addr] = value;
  return true;
}

std::size_t TagMemory::size(MemBank bank) const {
  return banks_[static_cast<std::size_t>(bank)].size();
}

Bits ReqRnCommand::encode() const {
  Bits bits;
  append_bits(bits, kReqRnPrefix, 8);
  append_bits(bits, rn16, 16);
  append_bits(bits, crc16(bits), 16);
  return bits;
}

std::optional<ReqRnCommand> ReqRnCommand::parse(const Bits& bits) {
  if (bits.size() != 40 || read_bits(bits, 0, 8) != kReqRnPrefix) {
    return std::nullopt;
  }
  if (!check_crc16(bits)) return std::nullopt;
  ReqRnCommand cmd;
  cmd.rn16 = static_cast<std::uint16_t>(read_bits(bits, 8, 16));
  return cmd;
}

Bits ReadCommand::encode() const {
  Bits bits;
  append_bits(bits, kReadPrefix, 8);
  append_bits(bits, static_cast<std::uint32_t>(bank), 2);
  append_bits(bits, word_addr, 8);
  append_bits(bits, word_count, 8);
  append_bits(bits, handle, 16);
  append_bits(bits, crc16(bits), 16);
  return bits;
}

std::optional<ReadCommand> ReadCommand::parse(const Bits& bits) {
  if (bits.size() != 58 || read_bits(bits, 0, 8) != kReadPrefix) {
    return std::nullopt;
  }
  if (!check_crc16(bits)) return std::nullopt;
  ReadCommand cmd;
  cmd.bank = static_cast<MemBank>(read_bits(bits, 8, 2));
  cmd.word_addr = static_cast<std::uint8_t>(read_bits(bits, 10, 8));
  cmd.word_count = static_cast<std::uint8_t>(read_bits(bits, 18, 8));
  cmd.handle = static_cast<std::uint16_t>(read_bits(bits, 26, 16));
  return cmd;
}

Bits WriteCommand::encode() const {
  Bits bits;
  append_bits(bits, kWritePrefix, 8);
  append_bits(bits, static_cast<std::uint32_t>(bank), 2);
  append_bits(bits, word_addr, 8);
  append_bits(bits, data, 16);
  append_bits(bits, handle, 16);
  append_bits(bits, crc16(bits), 16);
  return bits;
}

std::optional<WriteCommand> WriteCommand::parse(const Bits& bits) {
  if (bits.size() != 66 || read_bits(bits, 0, 8) != kWritePrefix) {
    return std::nullopt;
  }
  if (!check_crc16(bits)) return std::nullopt;
  WriteCommand cmd;
  cmd.bank = static_cast<MemBank>(read_bits(bits, 8, 2));
  cmd.word_addr = static_cast<std::uint8_t>(read_bits(bits, 10, 8));
  cmd.data = static_cast<std::uint16_t>(read_bits(bits, 18, 16));
  cmd.handle = static_cast<std::uint16_t>(read_bits(bits, 34, 16));
  return cmd;
}

AccessKind classify_access(const Bits& bits) {
  if (bits.size() < 8) return AccessKind::kNone;
  switch (read_bits(bits, 0, 8)) {
    case kReqRnPrefix:
      return AccessKind::kReqRn;
    case kReadPrefix:
      return AccessKind::kRead;
    case kWritePrefix:
      return AccessKind::kWrite;
    default:
      return AccessKind::kNone;
  }
}

Bits handle_reply(std::uint16_t handle) {
  Bits bits;
  append_bits(bits, handle, 16);
  append_bits(bits, crc16(bits), 16);
  return bits;
}

Bits read_reply(const std::vector<std::uint16_t>& words,
                std::uint16_t handle) {
  Bits bits;
  bits.push_back(false);  // success header
  for (std::uint16_t w : words) append_bits(bits, w, 16);
  append_bits(bits, handle, 16);
  append_bits(bits, crc16(bits), 16);
  return bits;
}

Bits write_reply(std::uint16_t handle) {
  Bits bits;
  bits.push_back(false);
  append_bits(bits, handle, 16);
  append_bits(bits, crc16(bits), 16);
  return bits;
}

std::vector<std::uint16_t> parse_read_reply(const Bits& reply,
                                            std::size_t expected_words,
                                            std::uint16_t expected_handle) {
  const std::size_t expect_size = 1 + 16 * expected_words + 16 + 16;
  if (reply.size() != expect_size || reply[0]) return {};
  if (!check_crc16(reply)) return {};
  const auto handle = static_cast<std::uint16_t>(
      read_bits(reply, 1 + 16 * expected_words, 16));
  if (handle != expected_handle) return {};
  std::vector<std::uint16_t> words(expected_words);
  for (std::size_t i = 0; i < expected_words; ++i) {
    words[i] = static_cast<std::uint16_t>(read_bits(reply, 1 + 16 * i, 16));
  }
  return words;
}

}  // namespace ivnet::gen2
