// Gen2 tag memory and the access commands (Read / Write / Req_RN).
//
// The paper's motivating applications — "monitoring internal human vital
// signs", drug delivery actuation (Sec. 1) — need more than an EPC: the
// reader must fetch sensor words from (or write actuation words into) the
// tag's USER memory bank after acknowledging it. This module adds the
// bit-level access layer on top of the inventory state machine.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "ivnet/gen2/crc.hpp"

namespace ivnet::gen2 {

/// Gen2 memory banks.
enum class MemBank : std::uint8_t {
  kReserved = 0,
  kEpc = 1,
  kTid = 2,
  kUser = 3,
};

/// Word-addressable tag memory (16-bit words, four banks).
class TagMemory {
 public:
  TagMemory();

  /// Read one word; nullopt when out of range.
  std::optional<std::uint16_t> read(MemBank bank, std::size_t word_addr) const;

  /// Write one word; false when out of range or the bank is locked.
  bool write(MemBank bank, std::size_t word_addr, std::uint16_t value);

  /// Lock a bank against writes (kill/access passwords not modelled).
  void lock(MemBank bank) { locked_[static_cast<std::size_t>(bank)] = true; }
  bool is_locked(MemBank bank) const {
    return locked_[static_cast<std::size_t>(bank)];
  }

  /// Number of words provisioned in a bank.
  std::size_t size(MemBank bank) const;

 private:
  std::array<std::vector<std::uint16_t>, 4> banks_;
  std::array<bool, 4> locked_{};
};

/// Req_RN: '11000001' + RN16 + CRC16. The reader must trade the inventory
/// RN16 for a handle before access commands.
struct ReqRnCommand {
  std::uint16_t rn16 = 0;
  Bits encode() const;
  static std::optional<ReqRnCommand> parse(const Bits& bits);
};

/// Read: '11000010' + bank(2) + word_addr(8, EBV reduced) + word_count(8)
/// + handle(16) + CRC16.
struct ReadCommand {
  MemBank bank = MemBank::kUser;
  std::uint8_t word_addr = 0;
  std::uint8_t word_count = 1;
  std::uint16_t handle = 0;
  Bits encode() const;
  static std::optional<ReadCommand> parse(const Bits& bits);
};

/// Write: '11000011' + bank(2) + word_addr(8) + data(16) + handle(16)
/// + CRC16. (The spec cover-codes data with an RN16; we model it plainly.)
struct WriteCommand {
  MemBank bank = MemBank::kUser;
  std::uint8_t word_addr = 0;
  std::uint16_t data = 0;
  std::uint16_t handle = 0;
  Bits encode() const;
  static std::optional<WriteCommand> parse(const Bits& bits);
};

/// Which access command a bit vector encodes (after classify() says it is
/// not an inventory command).
enum class AccessKind { kReqRn, kRead, kWrite, kNone };
AccessKind classify_access(const Bits& bits);

/// Tag-side reply builders.
/// Req_RN reply: new handle + CRC16.
Bits handle_reply(std::uint16_t handle);
/// Read reply: '0' header + data words + handle + CRC16.
Bits read_reply(const std::vector<std::uint16_t>& words, std::uint16_t handle);
/// Write reply: '0' header + handle + CRC16.
Bits write_reply(std::uint16_t handle);

/// Parse a read reply; returns the data words (empty on CRC/handle error).
std::vector<std::uint16_t> parse_read_reply(const Bits& reply,
                                            std::size_t expected_words,
                                            std::uint16_t expected_handle);

}  // namespace ivnet::gen2
