#include "ivnet/gen2/miller.hpp"

#include <cassert>
#include <cmath>

#include "ivnet/signal/correlate.hpp"

namespace ivnet::gen2 {
namespace {

/// Append one Miller symbol (2*M chips) to `chips`, updating the baseband
/// phase `p`. `prev_bit` enables the between-two-zeros boundary inversion.
void append_symbol(std::vector<bool>& chips, bool& p, bool bit, bool prev_bit,
                   bool have_prev, std::size_t m) {
  if (have_prev && !prev_bit && !bit) p = !p;  // invert between two data-0s
  for (std::size_t j = 0; j < 2 * m; ++j) {
    if (bit && j == m) p = !p;  // data-1: mid-symbol inversion
    chips.push_back(p != ((j & 1) != 0));
  }
}

std::vector<double> chips_to_samples(const std::vector<bool>& chips,
                                     double blf_hz, double fs) {
  // Chip rate = 2 * BLF (two chips per subcarrier cycle).
  const double chip_duration = 1.0 / (2.0 * blf_hz);
  const auto spc = static_cast<std::size_t>(std::llround(chip_duration * fs));
  assert(spc >= 2 && "sample rate too low for the subcarrier");
  std::vector<double> samples;
  samples.reserve(chips.size() * spc);
  for (bool c : chips) samples.insert(samples.end(), spc, c ? 1.0 : -1.0);
  return samples;
}

const Bits& preamble_bits() {
  // TRext = 0 Miller preamble payload: four data-0s then 010111.
  static const Bits bits = {false, false, false, false,
                            false, true,  false, true, true, true};
  return bits;
}

}  // namespace

std::size_t miller_m(Miller mode) {
  switch (mode) {
    case Miller::kFm0:
      return 1;
    case Miller::kM2:
      return 2;
    case Miller::kM4:
      return 4;
    case Miller::kM8:
      return 8;
  }
  return 1;
}

std::vector<bool> miller_preamble_chips(Miller mode) {
  const std::size_t m = miller_m(mode);
  std::vector<bool> chips;
  bool p = false;
  bool prev = false;
  bool have_prev = false;
  for (bool b : preamble_bits()) {
    append_symbol(chips, p, b, prev, have_prev, m);
    prev = b;
    have_prev = true;
  }
  return chips;
}

std::vector<bool> miller_encode_chips(Miller mode, const Bits& bits) {
  const std::size_t m = miller_m(mode);
  std::vector<bool> chips;
  bool p = false;
  bool prev = false;
  bool have_prev = false;
  for (bool b : preamble_bits()) {
    append_symbol(chips, p, b, prev, have_prev, m);
    prev = b;
    have_prev = true;
  }
  for (bool b : bits) {
    append_symbol(chips, p, b, prev, have_prev, m);
    prev = b;
    have_prev = true;
  }
  append_symbol(chips, p, true, prev, have_prev, m);  // closing dummy-1
  return chips;
}

std::vector<double> miller_modulate(Miller mode, const Bits& bits,
                                    double blf_hz, double sample_rate_hz) {
  return chips_to_samples(miller_encode_chips(mode, bits), blf_hz,
                          sample_rate_hz);
}

MillerDecodeResult miller_decode(Miller mode, std::span<const double> signal,
                                 std::size_t num_bits, double blf_hz,
                                 double sample_rate_hz,
                                 double min_correlation) {
  MillerDecodeResult result;
  const std::size_t m = miller_m(mode);
  const double chip_duration = 1.0 / (2.0 * blf_hz);
  const auto spc = static_cast<std::size_t>(
      std::llround(chip_duration * sample_rate_hz));
  const auto tmpl =
      chips_to_samples(miller_preamble_chips(mode), blf_hz, sample_rate_hz);
  const std::size_t preamble_chips = miller_preamble_chips(mode).size();
  const std::size_t total_chips = preamble_chips + 2 * m * (num_bits + 1);
  if (signal.size() < total_chips * spc) return result;

  // Hoist the template-side correlation statistics out of the scan
  // (bitwise-identical results).
  const CorrelationNeedle cached(tmpl);
  double best = 0.0;
  std::size_t best_off = 0;
  const std::size_t last = signal.size() - total_chips * spc;
  for (std::size_t off = 0; off <= last; ++off) {
    const double c = cached.correlate(signal.subspan(off, tmpl.size()));
    if (std::abs(c) > std::abs(best)) {
      best = c;
      best_off = off;
    }
  }
  result.preamble_correlation = std::abs(best);
  result.preamble_offset = best_off;
  result.inverted = best < 0.0;
  if (result.preamble_correlation < min_correlation) return result;

  const double polarity = result.inverted ? -1.0 : 1.0;
  auto chip_level = [&](std::size_t chip_index) {
    const std::size_t start = best_off + chip_index * spc;
    double sum = 0.0;
    for (std::size_t i = 0; i < spc; ++i) sum += signal[start + i];
    return polarity * sum > 0.0;
  };

  // A bit is 1 iff the subcarrier phase flips at mid-symbol: compare the
  // parity-adjusted level of the two halves by majority vote.
  for (std::size_t b = 0; b < num_bits; ++b) {
    const std::size_t base = preamble_chips + b * 2 * m;
    int first = 0, second = 0;
    for (std::size_t j = 0; j < m; ++j) {
      const bool parity = (j & 1) != 0;
      first += (chip_level(base + j) != parity) ? 1 : -1;
      const std::size_t k = m + j;
      const bool parity2 = (k & 1) != 0;
      second += (chip_level(base + k) != parity2) ? 1 : -1;
    }
    result.bits.push_back((first > 0) != (second > 0));
  }
  result.valid = true;
  return result;
}

double miller_processing_gain_db(Miller mode) {
  return 10.0 * std::log10(static_cast<double>(miller_m(mode)));
}

}  // namespace ivnet::gen2
