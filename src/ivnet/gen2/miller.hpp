// Miller-modulated subcarrier uplink encodings (M = 2, 4, 8).
//
// The Gen2 Query's M field selects the tag's uplink modulation: FM0 (M=1)
// or Miller with 2/4/8 subcarrier cycles per bit. IVN's prototype uses FM0,
// but deep-tissue links are exactly where Miller's extra processing gain
// matters (each bit spreads over more chip transitions), so the full set is
// implemented here and exercised by the uplink robustness tests.
//
// Miller baseband rules (ISO 18000-63): the baseband inverts at a bit
// boundary only between two consecutive data-0s; data-1 inverts in the
// middle of the bit. The baseband is then multiplied by a square subcarrier
// of M half-cycles per half-bit... equivalently each bit spans 2*M half
// chips. We implement the standard sequence generator and a correlation
// decoder symmetric to the FM0 one.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ivnet/gen2/commands.hpp"
#include "ivnet/gen2/crc.hpp"

namespace ivnet::gen2 {

/// Number of subcarrier cycles per symbol for a Miller mode.
std::size_t miller_m(Miller mode);

/// Miller preamble chip levels for the given mode (TRext = 0: 4 symbols of
/// data-0 baseband followed by the sync pattern "010111" encoded per spec).
std::vector<bool> miller_preamble_chips(Miller mode);

/// Encode data bits to chip levels (preamble + data + dummy-1).
std::vector<bool> miller_encode_chips(Miller mode, const Bits& bits);

/// Expand chips to +/-1.0 samples. The chip rate is BLF * 2 (two chips per
/// subcarrier cycle); each data bit spans 2*M chips.
std::vector<double> miller_modulate(Miller mode, const Bits& bits,
                                    double blf_hz, double sample_rate_hz);

/// Decode result (mirrors Fm0DecodeResult).
struct MillerDecodeResult {
  bool valid = false;
  Bits bits;
  double preamble_correlation = 0.0;
  std::size_t preamble_offset = 0;
  bool inverted = false;
};

/// Correlation-gated Miller decoder.
MillerDecodeResult miller_decode(Miller mode, std::span<const double> signal,
                                 std::size_t num_bits, double blf_hz,
                                 double sample_rate_hz,
                                 double min_correlation = 0.8);

/// Processing gain of mode over FM0 in dB: 10*log10(M) (each bit carries M
/// times more chip transitions at the same BLF).
double miller_processing_gain_db(Miller mode);

}  // namespace ivnet::gen2
