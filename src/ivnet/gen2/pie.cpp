#include "ivnet/gen2/pie.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ivnet::gen2 {
namespace {

void append_level(std::vector<double>& env, double level, double duration_s,
                  double fs) {
  const auto n = static_cast<std::size_t>(std::llround(duration_s * fs));
  env.insert(env.end(), n, level);
}

/// One PIE symbol: high for (length - PW), low for PW.
void append_symbol(std::vector<double>& env, double length_s,
                   const PieTiming& t, double fs) {
  append_level(env, 1.0, length_s - t.pw_s(), fs);
  append_level(env, 0.0, t.pw_s(), fs);
}

}  // namespace

std::vector<double> pie_encode(const Bits& bits, const PieTiming& timing,
                               double sample_rate_hz, bool with_preamble) {
  std::vector<double> env;
  // Lead-in CW so the tag's detector settles before the delimiter.
  append_level(env, 1.0, 4.0 * timing.tari_s, sample_rate_hz);
  // Delimiter: fixed low.
  append_level(env, 0.0, timing.delimiter_s, sample_rate_hz);
  // Data-0 reference symbol, then RTcal; Query preambles add TRcal.
  append_symbol(env, timing.data0_s(), timing, sample_rate_hz);
  append_symbol(env, timing.rtcal_s(), timing, sample_rate_hz);
  if (with_preamble) {
    append_symbol(env, timing.trcal_s(), timing, sample_rate_hz);
  }
  for (bool bit : bits) {
    append_symbol(env, bit ? timing.data1_s() : timing.data0_s(), timing,
                  sample_rate_hz);
  }
  // Trailing CW: the tag backscatters against this carrier.
  append_level(env, 1.0, 4.0 * timing.tari_s, sample_rate_hz);
  return env;
}

PieDecodeResult pie_decode(std::span<const double> envelope,
                           double sample_rate_hz, double max_fluctuation) {
  PieDecodeResult result;
  if (envelope.size() < 8) return result;

  const double hi = *std::max_element(envelope.begin(), envelope.end());
  const double lo = *std::min_element(envelope.begin(), envelope.end());
  if (hi <= 0.0) return result;
  const double threshold = 0.5 * (hi + lo);

  // The tag's detector cannot track a carrier whose "high" level swings more
  // than the modulation depth margin (Eq. 7): measure the high-state
  // fluctuation and reject commands beyond the tolerance.
  double high_min = hi;
  for (double v : envelope) {
    if (v >= threshold) high_min = std::min(high_min, v);
  }
  if ((hi - high_min) / hi >= max_fluctuation) return result;

  // Falling edges of the sliced envelope.
  std::vector<std::size_t> falls;
  for (std::size_t i = 1; i < envelope.size(); ++i) {
    const bool prev = envelope[i - 1] >= threshold;
    const bool curr = envelope[i] >= threshold;
    if (prev && !curr) falls.push_back(i);
  }
  if (falls.size() < 3) return result;

  // Intervals between consecutive falling edges are the symbol lengths.
  std::vector<double> intervals;
  intervals.reserve(falls.size() - 1);
  for (std::size_t k = 1; k < falls.size(); ++k) {
    intervals.push_back(static_cast<double>(falls[k] - falls[k - 1]) /
                        sample_rate_hz);
  }

  // intervals[0] = data-0 reference, intervals[1] = RTcal.
  const double rtcal = intervals[1];
  if (rtcal <= intervals[0]) return result;
  result.measured_rtcal_s = rtcal;
  const double pivot = rtcal / 2.0;

  std::size_t data_start = 2;
  if (intervals.size() > 2 && intervals[2] > rtcal * 1.1) {
    result.saw_preamble = true;
    result.measured_trcal_s = intervals[2];
    data_start = 3;
  }
  for (std::size_t k = data_start; k < intervals.size(); ++k) {
    result.bits.push_back(intervals[k] > pivot);
  }
  result.valid = true;
  return result;
}

}  // namespace ivnet::gen2
