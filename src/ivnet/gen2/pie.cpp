#include "ivnet/gen2/pie.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ivnet::gen2 {
namespace {

void append_level(std::vector<double>& env, double level, double duration_s,
                  double fs) {
  const auto n = static_cast<std::size_t>(std::llround(duration_s * fs));
  env.insert(env.end(), n, level);
}

/// One PIE symbol: high for (length - PW), low for PW.
void append_symbol(std::vector<double>& env, double length_s,
                   const PieTiming& t, double fs) {
  append_level(env, 1.0, length_s - t.pw_s(), fs);
  append_level(env, 0.0, t.pw_s(), fs);
}

}  // namespace

std::vector<double> pie_encode(const Bits& bits, const PieTiming& timing,
                               double sample_rate_hz, bool with_preamble) {
  std::vector<double> env;
  // Lead-in CW so the tag's detector settles before the delimiter.
  append_level(env, 1.0, 4.0 * timing.tari_s, sample_rate_hz);
  // Delimiter: fixed low.
  append_level(env, 0.0, timing.delimiter_s, sample_rate_hz);
  // Data-0 reference symbol, then RTcal; Query preambles add TRcal.
  append_symbol(env, timing.data0_s(), timing, sample_rate_hz);
  append_symbol(env, timing.rtcal_s(), timing, sample_rate_hz);
  if (with_preamble) {
    append_symbol(env, timing.trcal_s(), timing, sample_rate_hz);
  }
  for (bool bit : bits) {
    append_symbol(env, bit ? timing.data1_s() : timing.data0_s(), timing,
                  sample_rate_hz);
  }
  // Trailing CW: the tag backscatters against this carrier.
  append_level(env, 1.0, 4.0 * timing.tari_s, sample_rate_hz);
  return env;
}

PieDecodeResult pie_decode(std::span<const double> envelope,
                           double sample_rate_hz, double max_fluctuation) {
  PieDecodeResult result;
  if (envelope.size() < 8) return result;

  // Extrema in one pass with four independent accumulator chains: a naive
  // max_element/min_element pair walks the record twice through a serial
  // 4-cycle-latency max/min chain, which dominates the decode cost. The
  // values are identical (min/max are exact and order-independent).
  double hi0 = envelope[0], hi1 = envelope[0], hi2 = envelope[0],
         hi3 = envelope[0];
  double lo0 = envelope[0], lo1 = envelope[0], lo2 = envelope[0],
         lo3 = envelope[0];
  std::size_t i = 0;
  for (; i + 4 <= envelope.size(); i += 4) {
    hi0 = std::max(hi0, envelope[i]);
    lo0 = std::min(lo0, envelope[i]);
    hi1 = std::max(hi1, envelope[i + 1]);
    lo1 = std::min(lo1, envelope[i + 1]);
    hi2 = std::max(hi2, envelope[i + 2]);
    lo2 = std::min(lo2, envelope[i + 2]);
    hi3 = std::max(hi3, envelope[i + 3]);
    lo3 = std::min(lo3, envelope[i + 3]);
  }
  for (; i < envelope.size(); ++i) {
    hi0 = std::max(hi0, envelope[i]);
    lo0 = std::min(lo0, envelope[i]);
  }
  const double hi = std::max(std::max(hi0, hi1), std::max(hi2, hi3));
  const double lo = std::min(std::min(lo0, lo1), std::min(lo2, lo3));
  if (hi <= 0.0) return result;
  const double threshold = 0.5 * (hi + lo);

  // The tag's detector cannot track a carrier whose "high" level swings more
  // than the modulation depth margin (Eq. 7): measure the high-state
  // fluctuation and reject commands beyond the tolerance. Same four-chain
  // unroll; a sample below threshold leaves its chain unchanged (hi is the
  // identity for min over the high state).
  double hm0 = hi, hm1 = hi, hm2 = hi, hm3 = hi;
  i = 0;
  for (; i + 4 <= envelope.size(); i += 4) {
    hm0 = std::min(hm0, envelope[i] >= threshold ? envelope[i] : hi);
    hm1 = std::min(hm1, envelope[i + 1] >= threshold ? envelope[i + 1] : hi);
    hm2 = std::min(hm2, envelope[i + 2] >= threshold ? envelope[i + 2] : hi);
    hm3 = std::min(hm3, envelope[i + 3] >= threshold ? envelope[i + 3] : hi);
  }
  for (; i < envelope.size(); ++i) {
    hm0 = std::min(hm0, envelope[i] >= threshold ? envelope[i] : hi);
  }
  const double high_min = std::min(std::min(hm0, hm1), std::min(hm2, hm3));
  if ((hi - high_min) / hi >= max_fluctuation) return result;

  // Falling edges of the sliced envelope.
  std::vector<std::size_t> falls;
  for (std::size_t k = 1; k < envelope.size(); ++k) {
    const bool prev = envelope[k - 1] >= threshold;
    const bool curr = envelope[k] >= threshold;
    if (prev && !curr) falls.push_back(k);
  }
  if (falls.size() < 3) return result;

  // Intervals between consecutive falling edges are the symbol lengths.
  std::vector<double> intervals;
  intervals.reserve(falls.size() - 1);
  for (std::size_t k = 1; k < falls.size(); ++k) {
    intervals.push_back(static_cast<double>(falls[k] - falls[k - 1]) /
                        sample_rate_hz);
  }

  // intervals[0] = data-0 reference, intervals[1] = RTcal.
  const double rtcal = intervals[1];
  if (rtcal <= intervals[0]) return result;
  result.measured_rtcal_s = rtcal;
  const double pivot = rtcal / 2.0;

  std::size_t data_start = 2;
  if (intervals.size() > 2 && intervals[2] > rtcal * 1.1) {
    result.saw_preamble = true;
    result.measured_trcal_s = intervals[2];
    data_start = 3;
  }
  for (std::size_t k = data_start; k < intervals.size(); ++k) {
    result.bits.push_back(intervals[k] > pivot);
  }
  result.valid = true;
  return result;
}

}  // namespace ivnet::gen2
