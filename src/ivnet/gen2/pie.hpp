// Pulse-Interval Encoding (PIE) — the reader->tag downlink modulation.
//
// Tags decode PIE with a bare envelope detector: symbols are distinguished by
// the interval between falling edges (data-0 is one Tari long, data-1 is two),
// which is why the CIB amplitude-flatness constraint of Eq. 7/9 exists — the
// beamformed envelope must not fluctuate so much that interval slicing fails.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ivnet/gen2/crc.hpp"

namespace ivnet::gen2 {

/// PIE air-interface timing.
struct PieTiming {
  double tari_s = 25e-6;      ///< reference interval (data-0 length)
  double data1_factor = 2.0;  ///< data-1 length as a multiple of Tari (1.5-2)
  double pw_factor = 0.5;     ///< low-pulse width as a fraction of Tari
  double delimiter_s = 12.5e-6;
  double trcal_factor = 5.0;  ///< TRcal in Tari (sets the backscatter BLF)

  double data0_s() const { return tari_s; }
  double data1_s() const { return tari_s * data1_factor; }
  double pw_s() const { return tari_s * pw_factor; }
  /// RTcal is DEFINED as data0 + data1 (ISO 18000-63), so the decode pivot
  /// RTcal/2 always separates the two symbol lengths.
  double rtcal_s() const { return data0_s() + data1_s(); }
  double trcal_s() const { return tari_s * trcal_factor; }
};

/// Encode `bits` as a PIE envelope (values 1.0 / 0.0) at `sample_rate_hz`,
/// prefixed by a preamble (delimiter + data-0 + RTcal + TRcal) when
/// `with_preamble`, else by a frame-sync (delimiter + data-0 + RTcal).
/// Query uses the preamble; all other commands use frame-sync.
std::vector<double> pie_encode(const Bits& bits, const PieTiming& timing,
                               double sample_rate_hz, bool with_preamble);

/// Result of envelope-detecting a PIE transmission.
struct PieDecodeResult {
  bool valid = false;
  bool saw_preamble = false;  ///< true: full preamble; false: frame-sync only
  Bits bits;
  double measured_rtcal_s = 0.0;
  double measured_trcal_s = 0.0;
};

/// Decode a received envelope (arbitrary positive amplitude) the way a tag
/// does: slice at the midpoint threshold, find falling edges, classify
/// intervals against RTcal/2. Decoding fails (valid=false) when the envelope
/// fluctuation exceeds `max_fluctuation` (Eq. 7's alpha; tags tolerate < 0.5)
/// because the slicer threshold no longer separates highs from lows.
PieDecodeResult pie_decode(std::span<const double> envelope,
                           double sample_rate_hz,
                           double max_fluctuation = 0.5);

}  // namespace ivnet::gen2
