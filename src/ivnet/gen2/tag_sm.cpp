#include "ivnet/gen2/tag_sm.hpp"

#include <utility>

namespace ivnet::gen2 {

TagStateMachine::TagStateMachine(Bits epc, std::uint64_t seed)
    : epc_(std::move(epc)), rng_(seed) {}

void TagStateMachine::power_up() {
  if (state_ == TagState::kOff) state_ = TagState::kReady;
}

void TagStateMachine::power_loss() {
  state_ = TagState::kOff;
  slot_ = 0;
  rn16_ = 0;
  selected_ = false;
  inventoried_ = false;
  handle_ = 0;
}

std::uint16_t TagStateMachine::draw_rn16() {
  return static_cast<std::uint16_t>(rng_.uniform_int(0, 0xFFFF));
}

std::optional<Bits> TagStateMachine::on_command(const Bits& command_bits) {
  if (state_ == TagState::kOff) return std::nullopt;
  switch (classify(command_bits)) {
    case CommandKind::kQuery:
      if (auto q = QueryCommand::parse(command_bits)) return on_query(*q);
      return std::nullopt;
    case CommandKind::kQueryRep:
      if (auto r = QueryRepCommand::parse(command_bits)) return on_query_rep(*r);
      return std::nullopt;
    case CommandKind::kAck:
      if (auto a = AckCommand::parse(command_bits)) return on_ack(*a);
      return std::nullopt;
    case CommandKind::kSelect:
      if (auto s = SelectCommand::parse(command_bits)) on_select(*s);
      return std::nullopt;
    case CommandKind::kUnknown:
      return on_access(command_bits);
  }
  return std::nullopt;
}

std::optional<Bits> TagStateMachine::on_access(const Bits& command_bits) {
  switch (classify_access(command_bits)) {
    case AccessKind::kReqRn: {
      const auto req = ReqRnCommand::parse(command_bits);
      if (!req || state_ != TagState::kAcknowledged || req->rn16 != rn16_) {
        return std::nullopt;
      }
      handle_ = draw_rn16();
      state_ = TagState::kOpen;
      return handle_reply(handle_);
    }
    case AccessKind::kRead: {
      const auto read = ReadCommand::parse(command_bits);
      if (!read || state_ != TagState::kOpen || read->handle != handle_) {
        return std::nullopt;
      }
      std::vector<std::uint16_t> words;
      for (std::size_t i = 0; i < read->word_count; ++i) {
        const auto w = memory_.read(read->bank, read->word_addr + i);
        if (!w) return std::nullopt;  // out-of-range: tag stays silent
        words.push_back(*w);
      }
      return read_reply(words, handle_);
    }
    case AccessKind::kWrite: {
      const auto write = WriteCommand::parse(command_bits);
      if (!write || state_ != TagState::kOpen || write->handle != handle_) {
        return std::nullopt;
      }
      if (!memory_.write(write->bank, write->word_addr, write->data)) {
        return std::nullopt;
      }
      return write_reply(handle_);
    }
    case AccessKind::kNone:
      return std::nullopt;
  }
  return std::nullopt;
}

std::optional<Bits> TagStateMachine::on_query(const QueryCommand& query) {
  // Only tags whose inventoried flag matches the round's target take part.
  if (inventoried_ != query.target_b) {
    state_ = TagState::kReady;
    return std::nullopt;
  }
  // Sel = 2/3 restricts the round to tags with the SL flag (de)asserted.
  if (query.sel >= 2) {
    const bool need_sl = query.sel == 3;
    if (selected_ != need_sl) {
      state_ = TagState::kReady;
      return std::nullopt;
    }
  }
  uplink_m_ = query.m;  // replies use the modulation the Query requested
  slot_ = static_cast<std::uint32_t>(
      rng_.uniform_int(0, (1 << query.q) - 1));
  if (slot_ == 0) {
    rn16_ = draw_rn16();
    state_ = TagState::kReply;
    return rn16_frame(rn16_);
  }
  state_ = TagState::kArbitrate;
  return std::nullopt;
}

std::optional<Bits> TagStateMachine::on_query_rep(const QueryRepCommand&) {
  if (state_ != TagState::kArbitrate) return std::nullopt;
  if (slot_ > 0) --slot_;
  if (slot_ == 0) {
    rn16_ = draw_rn16();
    state_ = TagState::kReply;
    return rn16_frame(rn16_);
  }
  return std::nullopt;
}

std::optional<Bits> TagStateMachine::on_ack(const AckCommand& ack) {
  if (state_ != TagState::kReply && state_ != TagState::kAcknowledged) {
    return std::nullopt;
  }
  if (ack.rn16 != rn16_) {
    state_ = TagState::kArbitrate;
    return std::nullopt;
  }
  state_ = TagState::kAcknowledged;
  inventoried_ = true;
  return epc_frame();
}

void TagStateMachine::on_select(const SelectCommand& select) {
  // Match the mask against the EPC starting at the pointer bit. Membank and
  // action handling are reduced to the SL-flag use the paper suggests
  // (Sec. 3.7: "incorporate a select command into its query, specifying the
  // identifier of the sensor").
  bool match = true;
  for (std::size_t i = 0; i < select.mask.size(); ++i) {
    const std::size_t epc_index = select.pointer + i;
    if (epc_index >= epc_.size() || epc_[epc_index] != select.mask[i]) {
      match = false;
      break;
    }
  }
  selected_ = match;
}

Bits TagStateMachine::rn16_frame(std::uint16_t rn16) {
  Bits bits;
  append_bits(bits, rn16, 16);
  return bits;
}

Bits TagStateMachine::epc_frame() const {
  Bits bits;
  // PC word: EPC length in 16-bit words (5 bits), then zeros.
  const auto epc_words = static_cast<std::uint32_t>((epc_.size() + 15) / 16);
  append_bits(bits, epc_words, 5);
  append_bits(bits, 0, 11);
  bits.insert(bits.end(), epc_.begin(), epc_.end());
  append_bits(bits, crc16(bits), 16);
  return bits;
}

}  // namespace ivnet::gen2
