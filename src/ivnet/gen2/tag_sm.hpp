// Gen2 tag inventory state machine (Ready / Arbitrate / Reply / Acknowledged)
// plus the power state the paper's threshold analysis gates everything on:
// a tag below its power-up threshold is simply Off and hears nothing.
#pragma once

#include <cstdint>
#include <optional>

#include "ivnet/common/rng.hpp"
#include "ivnet/gen2/commands.hpp"
#include "ivnet/gen2/memory.hpp"

namespace ivnet::gen2 {

enum class TagState { kOff, kReady, kArbitrate, kReply, kAcknowledged, kOpen };

/// The digital core of a battery-free tag.
class TagStateMachine {
 public:
  /// @param epc   EPC payload (96 bits typical).
  /// @param seed  Seeds the tag's RN16 generator and slot draws.
  TagStateMachine(Bits epc, std::uint64_t seed);

  TagState state() const { return state_; }
  const Bits& epc() const { return epc_; }
  std::uint16_t last_rn16() const { return rn16_; }
  bool selected() const { return selected_; }
  /// Session inventoried flag: set once the tag is ACKed; tags whose flag
  /// does not match the Query's target sit the round out.
  bool inventoried() const { return inventoried_; }

  /// Harvester crossed the operate threshold: tag boots into Ready.
  void power_up();

  /// Rail collapsed: all volatile state is lost.
  void power_loss();

  /// Feed one decoded reader command. Returns the bits the tag backscatters
  /// in response, or nullopt when the tag stays silent.
  std::optional<Bits> on_command(const Bits& command_bits);

  /// The RN16 reply frame (16 bits).
  static Bits rn16_frame(std::uint16_t rn16);

  /// The EPC reply frame: PC + EPC + CRC-16.
  Bits epc_frame() const;

  /// Word-addressable memory (USER bank holds sensor words).
  TagMemory& memory() { return memory_; }
  const TagMemory& memory() const { return memory_; }

  /// The access handle issued by Req_RN (0 until secured).
  std::uint16_t handle() const { return handle_; }

  /// Uplink modulation the last Query requested (M field); the tag must
  /// backscatter its replies in this encoding.
  Miller uplink_modulation() const { return uplink_m_; }

 private:
  std::optional<Bits> on_query(const QueryCommand& query);
  std::optional<Bits> on_query_rep(const QueryRepCommand& rep);
  std::optional<Bits> on_ack(const AckCommand& ack);
  void on_select(const SelectCommand& select);
  std::optional<Bits> on_access(const Bits& command_bits);
  std::uint16_t draw_rn16();

  Bits epc_;
  Rng rng_;
  TagState state_ = TagState::kOff;
  std::uint32_t slot_ = 0;
  std::uint16_t rn16_ = 0;
  bool selected_ = false;
  bool inventoried_ = false;
  TagMemory memory_;
  std::uint16_t handle_ = 0;
  Miller uplink_m_ = Miller::kFm0;
};

}  // namespace ivnet::gen2
