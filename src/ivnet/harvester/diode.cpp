#include "ivnet/harvester/diode.hpp"

#include <cassert>
#include <cmath>
#include <utility>

#include "ivnet/common/units.hpp"

namespace ivnet {

namespace {
/// Thermal voltage kT/q at room temperature [V].
constexpr double kThermalVoltage = 0.02585;
}  // namespace

Diode::Diode(Model model, std::string name)
    : model_(model), name_(std::move(name)) {}

Diode Diode::ideal() { return Diode(Model::kIdeal, "ideal"); }

Diode Diode::threshold(double vth_v, double series_resistance_ohm) {
  assert(vth_v >= 0.0 && series_resistance_ohm > 0.0);
  Diode d(Model::kThreshold, "threshold");
  d.vth_ = vth_v;
  d.rs_ = series_resistance_ohm;
  return d;
}

Diode Diode::shockley(double saturation_current_a, double ideality,
                      double series_resistance_ohm) {
  assert(saturation_current_a > 0.0 && ideality >= 1.0);
  Diode d(Model::kShockley, "shockley");
  d.is_ = saturation_current_a;
  d.ideality_ = ideality;
  d.rs_ = series_resistance_ohm;
  return d;
}

double Diode::current(double v) const {
  switch (model_) {
    case Model::kIdeal:
      // Near-vertical conduction above zero volts; the small on-resistance
      // keeps the explicit carrier-rate integrator stable (dt/(Rs*C) < 1
      // for the Fig. 1 doubler's capacitor values).
      return v > 0.0 ? v / 5.0 : 0.0;
    case Model::kThreshold:
      return v > vth_ ? (v - vth_) / rs_ : 0.0;
    case Model::kShockley: {
      // Clamp the exponent to keep the transient integrator stable.
      const double x = std::min(v / (ideality_ * kThermalVoltage), 60.0);
      return is_ * (std::exp(x) - 1.0);
    }
  }
  return 0.0;
}

double Diode::turn_on_voltage() const {
  switch (model_) {
    case Model::kIdeal:
      return 0.0;
    case Model::kThreshold:
      return vth_;
    case Model::kShockley:
      // Voltage where current reaches 10 uA.
      return ideality_ * kThermalVoltage * std::log(1e-5 / is_ + 1.0);
  }
  return 0.0;
}

double conduction_angle(double vs, double vth) {
  if (vs <= vth || vs <= 0.0) return 0.0;
  return 2.0 * std::acos(vth / vs);
}

double conduction_duty(double vs, double vth) {
  return conduction_angle(vs, vth) / kTwoPi;
}

}  // namespace ivnet
