// Diode models for the energy-harvesting front end (Sec. 2.1, Fig. 2).
//
// The threshold effect — a practical diode conducts only above V_th — is the
// fundamental limit IVN's beamformer overcomes, so we model it explicitly:
//   * ideal:     conducts for any V > 0 (Fig. 2, left curve)
//   * threshold: piecewise-linear, conducts above V_th with slope 1/R_s
//                (Fig. 2, right curve)
//   * shockley:  I = I_s * (exp(V / (n*V_T)) - 1), the physical law
#pragma once

#include <string>

namespace ivnet {

/// A two-terminal diode with a selectable I-V model.
class Diode {
 public:
  /// Ideal rectifier: zero forward drop, infinite reverse blocking.
  static Diode ideal();

  /// Piecewise-linear threshold diode. Typical RF-IC harvester diodes have
  /// V_th between 200 mV and 400 mV (Sec. 2.1.1).
  static Diode threshold(double vth_v, double series_resistance_ohm = 10.0);

  /// Shockley diode. `saturation_current_a` ~ nA for Schottky detectors.
  static Diode shockley(double saturation_current_a, double ideality = 1.05,
                        double series_resistance_ohm = 10.0);

  /// Current [A] through the diode for a forward voltage `v` [V].
  /// Reverse bias returns 0 (ideal/threshold) or -I_s (shockley).
  double current(double v) const;

  /// The effective turn-on voltage: 0 for ideal, V_th for threshold, and the
  /// voltage where the Shockley current reaches 10 uA otherwise.
  double turn_on_voltage() const;

  /// True once `v` is past the turn-on voltage (used for conduction-angle
  /// bookkeeping in Fig. 4 reproductions).
  bool conducting(double v) const { return v > turn_on_voltage(); }

  const std::string& model_name() const { return name_; }

 private:
  enum class Model { kIdeal, kThreshold, kShockley };

  Diode(Model model, std::string name);

  Model model_;
  std::string name_;
  double vth_ = 0.0;
  double rs_ = 10.0;
  double is_ = 1e-9;
  double ideality_ = 1.05;
};

/// Fraction of a carrier cycle during which a sinusoid of amplitude `vs`
/// exceeds `vth` — the conduction angle omega of Fig. 4, returned in radians
/// per cycle (0 when vs <= vth, approaching pi as vs >> vth for a half-wave
/// element). omega = 2 * acos(vth / vs).
double conduction_angle(double vs, double vth);

/// Conduction angle as a duty fraction in [0, 0.5]: omega / (2*pi).
double conduction_duty(double vs, double vth);

}  // namespace ivnet
