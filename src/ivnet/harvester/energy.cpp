#include "ivnet/harvester/energy.hpp"

#include <algorithm>
#include <cassert>

namespace ivnet {

EnergyAccumulator::EnergyAccumulator(double task_energy_j, double leakage_w)
    : task_energy_j_(task_energy_j), leakage_w_(leakage_w) {
  assert(task_energy_j_ > 0.0);
  assert(leakage_w_ >= 0.0);
}

int EnergyAccumulator::step(double power_w, double dt_s) {
  stored_j_ += (power_w - leakage_w_) * dt_s;
  stored_j_ = std::max(stored_j_, 0.0);
  int bursts = 0;
  while (stored_j_ >= task_energy_j_) {
    stored_j_ -= task_energy_j_;
    ++bursts;
  }
  completed_ += bursts;
  return bursts;
}

double EnergyAccumulator::steady_duty_cycle(double avg_power_w) const {
  const double net = avg_power_w - leakage_w_;
  if (net <= 0.0) return 0.0;
  // One task costs task_energy_j; with net power P the cadence is P / E
  // tasks per second. Treat a task as ~1 ms of activity for the duty figure.
  constexpr double kTaskDuration = 1e-3;
  return std::min(1.0, net / task_energy_j_ * kTaskDuration);
}

double EnergyAccumulator::time_to_first_task(double power_w) const {
  const double net = power_w - leakage_w_;
  if (net <= 0.0) return -1.0;
  return task_energy_j_ / net;
}

}  // namespace ivnet
