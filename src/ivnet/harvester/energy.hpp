// Energy accumulation and duty-cycling bookkeeping (Sec. 2.3: a sensor at
// shallow depth "may still operate, e.g. by duty cycling the sensor's
// operation so that it may accumulate sufficient energy before communication
// or actuation").
#pragma once

#include <span>

namespace ivnet {

/// Integrates harvested power into a reservoir and reports when the stored
/// energy suffices for a task of `task_energy_j`.
class EnergyAccumulator {
 public:
  /// @param task_energy_j  Energy one sensing/communication burst costs.
  /// @param leakage_w      Constant standby drain.
  EnergyAccumulator(double task_energy_j, double leakage_w = 0.0);

  /// Add `power_w` harvested for `dt_s` seconds. Returns the number of task
  /// bursts that became affordable (and deducts their energy).
  int step(double power_w, double dt_s);

  double stored_j() const { return stored_j_; }
  int completed_tasks() const { return completed_; }

  /// Duty cycle achievable in steady state from a given average harvested
  /// power: bursts per second * burst energy / harvested power, clamped to 1.
  double steady_duty_cycle(double avg_power_w) const;

  /// Time to accumulate one task's energy from a constant power (seconds);
  /// returns -1 if power does not exceed leakage.
  double time_to_first_task(double power_w) const;

 private:
  double task_energy_j_;
  double leakage_w_;
  double stored_j_ = 0.0;
  int completed_ = 0;
};

}  // namespace ivnet
