#include "ivnet/harvester/harvester.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ivnet {

Harvester::Harvester(HarvesterConfig config)
    : config_(config),
      rectifier_(config.stages, Diode::threshold(config.vth_v)) {
  assert(config_.storage_cap_f > 0.0);
  assert(config_.source_ohm > 0.0);
  assert(config_.load_ohm > 0.0);
  assert(config_.operate_voltage_v > 0.0);
}

HarvestResult Harvester::run(std::span<const double> envelope_v,
                             double sample_rate_hz, double v0) const {
  HarvestResult result;
  result.vdc.resize(envelope_v.size());
  const double dt = 1.0 / sample_rate_hz;
  const double r_src =
      static_cast<double>(config_.stages) * config_.source_ohm;
  const double r_load = config_.load_ohm;
  const double cap = config_.storage_cap_f;
  // While the diode conducts (v below the rectifier's open-circuit target)
  // the rail obeys  C dv/dt = (target - v)/Rsrc - v/Rload,  a linear ODE with
  //   v_inf = target * Rload/(Rload + Rsrc),  tau = C * Rsrc*Rload/(Rsrc+Rload).
  // Otherwise it discharges with tau_load = C * Rload. Both regimes are
  // integrated EXACTLY per sample, so the result is independent of the
  // envelope sample rate (the envelope is piecewise constant).
  const double divider = r_load / (r_load + r_src);
  const double tau_on = cap * r_src * r_load / (r_src + r_load);
  const double tau_off = cap * r_load;
  const double decay_on = std::exp(-dt / tau_on);
  const double decay_off = std::exp(-dt / tau_off);

  double v = v0;
  std::size_t conducting = 0;
  std::size_t powered = 0;
  for (std::size_t i = 0; i < envelope_v.size(); ++i) {
    const double target = rectifier_.open_circuit_vdc(envelope_v[i]);
    if (envelope_v[i] > config_.vth_v) ++conducting;
    if (v < target) {
      const double v_inf = target * divider;
      v = v_inf + (v - v_inf) * decay_on;
    } else {
      v *= decay_off;
    }
    v = std::clamp(v, 0.0, config_.clamp_voltage_v);
    result.vdc[i] = v;
    if (v >= config_.operate_voltage_v) {
      ++powered;
      if (result.first_power_up_s < 0.0) {
        result.first_power_up_s = static_cast<double>(i) * dt;
      }
      result.harvested_energy_j += v * v / config_.load_ohm * dt;
    }
    result.peak_vdc = std::max(result.peak_vdc, v);
  }
  const auto n = static_cast<double>(std::max<std::size_t>(1, envelope_v.size()));
  result.powered_fraction = static_cast<double>(powered) / n;
  result.conduction_fraction = static_cast<double>(conducting) / n;
  return result;
}

bool Harvester::can_power_up_steady(double vs) const {
  const double r_src = static_cast<double>(config_.stages) * config_.source_ohm;
  const double divider = config_.load_ohm / (config_.load_ohm + r_src);
  return rectifier_.open_circuit_vdc(vs) * divider >= config_.operate_voltage_v;
}

double Harvester::min_steady_amplitude() const {
  const double r_src = static_cast<double>(config_.stages) * config_.source_ohm;
  const double divider = config_.load_ohm / (config_.load_ohm + r_src);
  return config_.vth_v + config_.operate_voltage_v /
                             (static_cast<double>(config_.stages) * divider);
}

}  // namespace ivnet
