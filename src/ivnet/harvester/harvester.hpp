// Quasi-static envelope-driven energy harvester.
//
// CIB deliberately concentrates power into short envelope peaks (Sec. 3.4:
// "focuses its energy over a short period of time and duty cycles the
// energy"). What matters to the tag is the DC rail dynamics while the
// envelope A(t) sweeps above and below the diode threshold. Because the
// envelope varies on millisecond scales while the carrier is ~1 ns, we use a
// quasi-static model: at each envelope sample the rectifier behaves as a DC
// source of open-circuit voltage N*(A - Vth) charging the storage capacitor,
// which simultaneously discharges into the chip load. A carrier-rate
// transient simulator (transient.hpp) validates this model in the tests.
#pragma once

#include <span>
#include <vector>

#include "ivnet/harvester/rectifier.hpp"

namespace ivnet {

/// Storage/load configuration of a harvesting tag front end.
struct HarvesterConfig {
  int stages = 4;                 ///< rectifier stages (N in Eq. 1)
  double vth_v = 0.3;             ///< diode threshold (200-400 mV typical)
  double storage_cap_f = 100e-12; ///< on-chip storage capacitor
  double source_ohm = 2000.0;     ///< per-stage charge-path resistance
  double load_ohm = 200e3;        ///< chip load while powered
  double operate_voltage_v = 1.0; ///< VDC needed to run the chip
  double clamp_voltage_v = 3.3;   ///< shunt-regulator limit on the rail
};

/// Result of simulating the harvester over one envelope record.
struct HarvestResult {
  std::vector<double> vdc;     ///< DC rail voltage per envelope sample
  double peak_vdc = 0.0;       ///< max rail voltage reached
  double powered_fraction = 0.0;  ///< fraction of time VDC >= operate voltage
  double first_power_up_s = -1.0; ///< time VDC first crossed operate voltage
                                  ///< (-1 if never)
  double harvested_energy_j = 0.0;///< energy delivered into the load
  double conduction_fraction = 0.0; ///< fraction of samples with A > Vth
};

/// Envelope-driven harvester simulation.
class Harvester {
 public:
  explicit Harvester(HarvesterConfig config);

  const HarvesterConfig& config() const { return config_; }
  const Rectifier& rectifier() const { return rectifier_; }

  /// Simulate the rail given the received envelope A(t) [V] sampled at
  /// `sample_rate_hz`. Initial rail voltage is `v0`.
  HarvestResult run(std::span<const double> envelope_v, double sample_rate_hz,
                    double v0 = 0.0) const;

  /// True if a *steady* carrier of amplitude `vs` can ever reach the operate
  /// voltage (open-circuit VDC with load divider >= operate voltage).
  bool can_power_up_steady(double vs) const;

  /// Minimum steady carrier amplitude that powers the chip.
  double min_steady_amplitude() const;

 private:
  HarvesterConfig config_;
  Rectifier rectifier_;
};

}  // namespace ivnet
