#include "ivnet/harvester/rectifier.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ivnet {

Rectifier::Rectifier(int stages, Diode diode)
    : stages_(stages), diode_(std::move(diode)) {
  assert(stages_ >= 1);
}

double Rectifier::open_circuit_vdc(double vs) const {
  const double headroom = vs - diode_.turn_on_voltage();
  if (headroom <= 0.0) return 0.0;
  return static_cast<double>(stages_) * headroom;
}

double Rectifier::efficiency(double vs) const {
  const double vth = diode_.turn_on_voltage();
  if (vs <= vth || vs <= 0.0) return 0.0;
  const double ratio = (vs - vth) / vs;
  return ratio * ratio;
}

double Rectifier::dc_power(double vs, double load_ohm, double source_ohm) const {
  assert(load_ohm > 0.0 && source_ohm > 0.0);
  const double vdc = open_circuit_vdc(vs);
  const double r_src = static_cast<double>(stages_) * source_ohm;
  const double v_load = vdc * load_ohm / (load_ohm + r_src);
  return v_load * v_load / load_ohm;
}

}  // namespace ivnet
