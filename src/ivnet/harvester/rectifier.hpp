// N-stage voltage-multiplying rectifier (Dickson charge pump), Sec. 2.1.
//
// Eq. 1: V_DC = N * (V_s - V_th). Each stage contributes the input amplitude
// minus one diode threshold; below threshold nothing is harvested at all.
#pragma once

#include "ivnet/harvester/diode.hpp"

namespace ivnet {

/// Analytic model of an N-stage rectifier built from identical diodes.
class Rectifier {
 public:
  /// @param stages  Number of voltage-doubling stages (N in Eq. 1).
  /// @param diode   The diode model every stage uses.
  Rectifier(int stages, Diode diode);

  int stages() const { return stages_; }
  const Diode& diode() const { return diode_; }

  /// Open-circuit DC output for a steady carrier of peak amplitude `vs`:
  /// Eq. 1, clamped at zero below threshold.
  double open_circuit_vdc(double vs) const;

  /// Minimum input amplitude that produces any output: V_th.
  double sensitivity_voltage() const { return diode_.turn_on_voltage(); }

  /// RF-to-DC conversion efficiency proxy in [0, 1]: the fraction of the
  /// input-cycle energy delivered past the threshold barrier,
  ///   eta(vs) = (VDC/N)^2 / vs^2 = ((vs - vth)/vs)^2  for vs > vth.
  /// Captures the Sec. 2.1.1 observation that efficiency collapses as vs
  /// approaches vth and approaches 1 for vs >> vth.
  double efficiency(double vs) const;

  /// DC power delivered into `load_ohm` at input amplitude `vs`, from the
  /// Thevenin model VDC with per-stage source resistance `source_ohm`:
  /// P = (VDC * R / (R + N*Rsrc))^2 / R.
  double dc_power(double vs, double load_ohm, double source_ohm = 500.0) const;

 private:
  int stages_;
  Diode diode_;
};

}  // namespace ivnet
