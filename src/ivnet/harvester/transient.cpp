#include "ivnet/harvester/transient.hpp"

#include <cassert>
#include <cmath>

#include "ivnet/common/units.hpp"
#include "ivnet/obs/obs.hpp"

namespace ivnet {

TransientResult simulate_doubler_waveform(const DoublerConfig& config,
                                          const std::vector<double>& v_in,
                                          double sample_rate_hz,
                                          DoublerState initial) {
  TransientResult r;
  r.sample_rate_hz = sample_rate_hz;
  r.v_in = v_in;
  r.v_out.resize(v_in.size());
  r.d1_conducting.resize(v_in.size());
  r.d2_conducting.resize(v_in.size());

  const double dt = 1.0 / sample_rate_hz;
  // State: vc1 = voltage across C1 (series cap, input side polarity),
  //        vc2 = voltage across C2 (output).
  double vc1 = initial.vc1_v;
  double vc2 = initial.vc2_v;
  std::size_t on_count = 0;

  for (std::size_t i = 0; i < v_in.size(); ++i) {
    // Node A sits between C1 and the diode pair: vA = v_in + vc1.
    const double va = v_in[i] + vc1;
    // D1 conducts from ground into node A when va < 0 (negative half cycle,
    // Fig. 1a): forward voltage across D1 is -va.
    const double i_d1 = config.diode.current(-va);
    // D2 conducts from node A into C2 when va > vc2 (positive half cycle,
    // Fig. 1b): forward voltage is va - vc2.
    const double i_d2 = config.diode.current(va - vc2);

    // Currents: D1 pulls node A up (charges C1 toward -v_in), D2 drains node
    // A into C2. C1 sees the net node-A current; C2 integrates D2 minus load.
    const double i_load = vc2 / config.load_ohm;
    vc1 += (i_d1 - i_d2) * dt / config.c1_f;
    vc2 += (i_d2 - i_load) * dt / config.c2_f;
    if (vc2 < 0.0) vc2 = 0.0;

    r.v_out[i] = vc2;
    r.d1_conducting[i] = i_d1 > 1e-9;
    r.d2_conducting[i] = i_d2 > 1e-9;
    if (r.d1_conducting[i] || r.d2_conducting[i]) ++on_count;
  }
  r.final_v_out = r.v_out.empty() ? 0.0 : r.v_out.back();
  r.final_state = DoublerState{.vc1_v = vc1, .vc2_v = vc2};
  r.conduction_fraction =
      v_in.empty() ? 0.0
                   : static_cast<double>(on_count) /
                         static_cast<double>(v_in.size());
  obs::count("doubler.runs");
  obs::count("doubler.samples", v_in.size());
  if (obs::metrics() != nullptr && !r.v_out.empty()) {
    obs::observe("doubler.final_v", r.final_v_out);
    if (r.final_v_out > 0.0) {
      // Charge-time proxy: first sample whose rail clears half the final
      // value. Only scanned when a registry is installed.
      const double half = 0.5 * r.final_v_out;
      std::size_t idx = 0;
      while (idx < r.v_out.size() && r.v_out[idx] < half) ++idx;
      obs::observe("doubler.t_half_s", static_cast<double>(idx) * dt);
    }
  }
  return r;
}

TransientResult simulate_doubler(const DoublerConfig& config, double amplitude_v,
                                 double carrier_hz, int cycles,
                                 int samples_per_cycle) {
  assert(cycles > 0 && samples_per_cycle >= 16);
  const double fs = carrier_hz * static_cast<double>(samples_per_cycle);
  const auto n = static_cast<std::size_t>(cycles) *
                 static_cast<std::size_t>(samples_per_cycle);
  std::vector<double> v_in(n);
  for (std::size_t i = 0; i < n; ++i) {
    v_in[i] = amplitude_v *
              std::cos(kTwoPi * carrier_hz * static_cast<double>(i) / fs);
  }
  return simulate_doubler_waveform(config, v_in, fs);
}

}  // namespace ivnet
