// Carrier-rate transient simulation of the single-stage voltage doubler of
// Fig. 1 (two diodes D1/D2, two capacitors C1/C2). Used to validate the
// quasi-static Harvester model and to reproduce the Fig. 4 conduction-angle
// illustration at true carrier resolution.
#pragma once

#include <vector>

#include "ivnet/harvester/diode.hpp"

namespace ivnet {

/// Circuit values of the Fig. 1 doubler.
struct DoublerConfig {
  Diode diode = Diode::threshold(0.3);
  double c1_f = 10e-12;
  double c2_f = 10e-12;
  double load_ohm = 1e6;  ///< across C2
};

/// Capacitor state of the doubler, for resuming a transient run where a
/// previous record left off (e.g. gating successive backscatter replies
/// without re-charging from a cold rail).
struct DoublerState {
  double vc1_v = 0.0;  ///< voltage across the series cap C1
  double vc2_v = 0.0;  ///< voltage across the output cap C2 (the rail)
};

/// Trace of one transient run.
struct TransientResult {
  std::vector<double> v_out;        ///< voltage across C2 per sample
  std::vector<double> v_in;         ///< driving voltage per sample
  std::vector<bool> d1_conducting;  ///< D1 on per sample
  std::vector<bool> d2_conducting;  ///< D2 on per sample
  double final_v_out = 0.0;
  double conduction_fraction = 0.0;  ///< fraction of samples with any diode on
  double sample_rate_hz = 0.0;
  DoublerState final_state;          ///< pass back in to continue the run
};

/// Simulate the doubler driven by v_in(t) = amplitude * cos(2*pi*f*t) for
/// `cycles` carrier cycles at `samples_per_cycle` resolution.
///
/// Steady-state check: for a threshold diode, final_v_out -> 2*(A - Vth)
/// (Sec. 2.1's 2*Vs ideal case minus two threshold drops).
TransientResult simulate_doubler(const DoublerConfig& config, double amplitude_v,
                                 double carrier_hz, int cycles,
                                 int samples_per_cycle = 64);

/// Drive the doubler with an arbitrary sampled input voltage, starting from
/// `initial` capacitor state (cold by default).
TransientResult simulate_doubler_waveform(const DoublerConfig& config,
                                          const std::vector<double>& v_in,
                                          double sample_rate_hz,
                                          DoublerState initial = {});

}  // namespace ivnet
