#include "ivnet/impair/impairment.hpp"

#include <algorithm>
#include <cmath>

#include "ivnet/common/units.hpp"
#include "ivnet/obs/obs.hpp"
#include "ivnet/signal/gauss.hpp"

namespace ivnet {
namespace {

/// Phase random-walk increment sigma for a Lorentzian linewidth.
double phase_step_sigma(double linewidth_hz, double sample_rate_hz) {
  return std::sqrt(kTwoPi * linewidth_hz / sample_rate_hz);
}

}  // namespace

double awgn_sigma(double power, double snr_db) {
  if (!std::isfinite(snr_db) || power <= 0.0) return -1.0;
  return std::sqrt(power * from_db(-snr_db));
}

double signal_mean_power(std::span<const double> x) {
  if (x.empty()) return 0.0;
  double sum = 0.0;
  for (double v : x) sum += v * v;
  return sum / static_cast<double>(x.size());
}

void apply_awgn(std::vector<double>& x, double snr_db, Rng& rng) {
  const double sigma = awgn_sigma(signal_mean_power(x), snr_db);
  if (sigma < 0.0) return;
  // Real-envelope AWGN is the Monte-Carlo hot loop: use the deterministic
  // inverse-CDF sampler (signal/gauss.hpp) so the batched lane pipeline can
  // reproduce this exact byte sequence in lockstep. One raw draw per sample.
  signal::axpy_awgn(rng, sigma, x);
}

void apply_awgn(Waveform& wave, double snr_db, Rng& rng) {
  const double power = mean_power(wave);
  const double sigma = awgn_sigma(power, snr_db);
  if (sigma < 0.0) return;
  // Split the noise power evenly across I and Q.
  const double per_axis = sigma / std::sqrt(2.0);
  for (auto& s : wave.samples) {
    s += cplx(rng.normal(0.0, per_axis), rng.normal(0.0, per_axis));
  }
}

void apply_carrier_offset(std::vector<double>& x, double sample_rate_hz,
                          double cfo_hz, double phase0_rad) {
  if (cfo_hz == 0.0 && phase0_rad == 0.0) return;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i) / sample_rate_hz;
    x[i] *= std::cos(kTwoPi * cfo_hz * t + phase0_rad);
  }
}

void apply_carrier_offset(Waveform& wave, double cfo_hz, double phase0_rad) {
  if (cfo_hz == 0.0 && phase0_rad == 0.0) return;
  for (std::size_t i = 0; i < wave.size(); ++i) {
    const double t = wave.time_of(i);
    wave.samples[i] *= std::polar(1.0, kTwoPi * cfo_hz * t + phase0_rad);
  }
}

void apply_phase_noise(std::vector<double>& x, double sample_rate_hz,
                       double linewidth_hz, Rng& rng) {
  if (linewidth_hz <= 0.0) return;
  const double sigma = phase_step_sigma(linewidth_hz, sample_rate_hz);
  double phi = 0.0;
  for (double& v : x) {
    phi += rng.normal(0.0, sigma);
    v *= std::cos(phi);
  }
}

void apply_phase_noise(Waveform& wave, double linewidth_hz, Rng& rng) {
  if (linewidth_hz <= 0.0) return;
  const double sigma =
      phase_step_sigma(linewidth_hz, wave.sample_rate_hz);
  double phi = 0.0;
  for (auto& s : wave.samples) {
    phi += rng.normal(0.0, sigma);
    s *= std::polar(1.0, phi);
  }
}

std::vector<double> apply_clock_drift(std::span<const double> x,
                                      double drift_ppm) {
  if (drift_ppm == 0.0 || x.size() < 2) {
    return std::vector<double>(x.begin(), x.end());
  }
  // A clock running `drift_ppm` fast samples the waveform at instants
  // i * (1 + ppm*1e-6) of the nominal grid. The record length is set by the
  // receiver's own clock, so the output keeps the input length: a fast tag
  // clock compresses the content (the tail holds the final sample), a slow
  // one stretches it. Length preservation matters downstream — the
  // correlation decoders need the full frame span to search.
  const double step = 1.0 + drift_ppm * 1e-6;
  const double last = static_cast<double>(x.size() - 1);
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double pos = std::min(static_cast<double>(i) * step, last);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, x.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out[i] = x[lo] * (1.0 - frac) + x[hi] * frac;
  }
  return out;
}

std::size_t apply_burst_erasures(std::vector<double>& x, double sample_rate_hz,
                                 const BurstErasureConfig& config, Rng& rng,
                                 std::size_t* erased) {
  if (config.rate_hz <= 0.0 || config.mean_duration_s <= 0.0 || x.empty()) {
    return 0;
  }
  const double duration_s =
      static_cast<double>(x.size()) / sample_rate_hz;
  const double gain = from_db(-config.depth_db / 2.0);  // amplitude inside
  std::size_t bursts = 0;
  double t = 0.0;
  while (true) {
    // Exponential inter-arrival, then exponential burst length.
    t += -std::log(1.0 - rng.uniform()) / config.rate_hz;
    if (t >= duration_s) break;
    const double len_s =
        -std::log(1.0 - rng.uniform()) * config.mean_duration_s;
    const auto lo = static_cast<std::size_t>(t * sample_rate_hz);
    const auto hi = std::min<std::size_t>(
        x.size(), static_cast<std::size_t>((t + len_s) * sample_rate_hz) + 1);
    for (std::size_t i = lo; i < hi; ++i) x[i] *= gain;
    if (erased != nullptr) *erased += hi - lo;
    ++bursts;
    t += len_s;
  }
  return bursts;
}

std::vector<bool> brownout_gate(std::span<const double> supply_envelope_v,
                                double sample_rate_hz,
                                const BrownoutConfig& config,
                                ImpairmentTrace* trace, BrownoutState* state) {
  std::vector<bool> gate(supply_envelope_v.size(), true);
  if (!config.enabled || supply_envelope_v.empty()) return gate;
  // The doubler rectifies an oscillating input: synthesize a scaled carrier
  // under the envelope (the quasi-static envelope alone would never pump).
  // Integrate `oversample`-fold finer than the envelope rate: the transient
  // model's explicit-Euler step is unstable at envelope-rate dt.
  const auto sub = static_cast<std::size_t>(std::max(1, config.oversample));
  const double fs_sub = sample_rate_hz * static_cast<double>(sub);
  std::vector<double> v_in(supply_envelope_v.size() * sub);
  const double w = kTwoPi * config.carrier_fraction / static_cast<double>(sub);
  for (std::size_t i = 0; i < v_in.size(); ++i) {
    v_in[i] = supply_envelope_v[i / sub] * std::cos(w * static_cast<double>(i));
  }
  const auto rail = simulate_doubler_waveform(
      config.doubler, v_in, fs_sub,
      state != nullptr ? state->doubler : DoublerState{});
  // Cold rails start off (the chip must charge before it can modulate);
  // a carried-over state resumes wherever the last record left the chip.
  bool on = state != nullptr && state->on;
  const bool started_on = on;
  std::size_t off_samples = 0;
  std::size_t trips = 0;
  std::ptrdiff_t first_on = -1;  // first off->on envelope sample from cold
  for (std::size_t i = 0; i < gate.size(); ++i) {
    // One envelope sample spans `sub` rail samples; a dip anywhere in the
    // window resets the chip, so judge the window by its minimum.
    double v = rail.v_out[i * sub];
    for (std::size_t k = 1; k < sub; ++k) {
      v = std::min(v, rail.v_out[i * sub + k]);
    }
    if (on && v < config.dropout_v) {
      on = false;
      ++trips;
    }
    if (!on && v >= config.recover_v) {
      on = true;
      ++trips;
      if (first_on < 0) first_on = static_cast<std::ptrdiff_t>(i);
    }
    gate[i] = on;
    if (!on) ++off_samples;
  }
  if (trace != nullptr) {
    trace->brownout_samples += off_samples;
    trace->browned_out = trace->browned_out || off_samples > 0;
  }
  // Comparator telemetry (simulated quantities — thread-count invariant).
  if (trips > 0) obs::count("brownout.comparator_trips", trips);
  if (off_samples > 0) obs::count("brownout.events");
  if (!started_on && first_on >= 0) {
    obs::observe("brownout.charge_time_s",
                 static_cast<double>(first_on) / sample_rate_hz);
  }
  if (state != nullptr) {
    state->doubler = rail.final_state;
    state->on = on;
  }
  return gate;
}

void apply_brownout(std::vector<double>& x, const std::vector<bool>& gate) {
  const std::size_t n = std::min(x.size(), gate.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!gate[i]) x[i] = 0.0;
  }
}

ImpairmentChain::ImpairmentChain(ImpairmentConfig config) : config_(config) {}

std::vector<double> ImpairmentChain::apply(std::span<const double> x,
                                           double sample_rate_hz, Rng& rng,
                                           ImpairmentTrace* trace) const {
  std::vector<double> out = apply_clock_drift(x, config_.clock_drift_ppm);
  if (config_.cfo_hz != 0.0 || config_.cfo_phase_rad != 0.0) {
    apply_carrier_offset(out, sample_rate_hz, config_.cfo_hz,
                         config_.cfo_phase_rad);
  }
  apply_phase_noise(out, sample_rate_hz, config_.phase_noise_linewidth_hz,
                    rng);
  std::size_t erased = 0;
  const std::size_t bursts =
      apply_burst_erasures(out, sample_rate_hz, config_.bursts, rng, &erased);
  if (trace != nullptr) {
    trace->bursts += bursts;
    trace->erased_samples += erased;
  }
  apply_awgn(out, config_.snr_db, rng);
  return out;
}

Waveform ImpairmentChain::apply(const Waveform& in, Rng& rng,
                                ImpairmentTrace* trace) const {
  Waveform out;
  out.sample_rate_hz = in.sample_rate_hz;
  if (config_.clock_drift_ppm == 0.0) {
    out.samples = in.samples;
  } else {
    // Drift the real and imaginary rails on the same interpolation grid.
    std::vector<double> re(in.size()), im(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      re[i] = in.samples[i].real();
      im[i] = in.samples[i].imag();
    }
    const auto re_d = apply_clock_drift(re, config_.clock_drift_ppm);
    const auto im_d = apply_clock_drift(im, config_.clock_drift_ppm);
    out.samples.resize(re_d.size());
    for (std::size_t i = 0; i < re_d.size(); ++i) {
      out.samples[i] = cplx(re_d[i], im_d[i]);
    }
  }
  apply_carrier_offset(out, config_.cfo_hz, config_.cfo_phase_rad);
  apply_phase_noise(out, config_.phase_noise_linewidth_hz, rng);
  if (config_.bursts.rate_hz > 0.0 && config_.bursts.mean_duration_s > 0.0 &&
      !out.empty()) {
    // Reuse the real-path burst machinery on an all-ones mask.
    std::vector<double> mask(out.size(), 1.0);
    std::size_t erased = 0;
    const std::size_t bursts = apply_burst_erasures(
        mask, out.sample_rate_hz, config_.bursts, rng, &erased);
    for (std::size_t i = 0; i < out.size(); ++i) out.samples[i] *= mask[i];
    if (trace != nullptr) {
      trace->bursts += bursts;
      trace->erased_samples += erased;
    }
  }
  apply_awgn(out, config_.snr_db, rng);
  return out;
}

}  // namespace ivnet
