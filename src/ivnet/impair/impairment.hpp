// Composable link-impairment injection (Sec. 6.2's reality gap).
//
// The clean simulation paths model tissue as a fixed attenuation and the
// radios as ideal; real deep-tissue sessions fail for messier reasons:
// thermal noise at the out-of-band reader, residual carrier-frequency
// offset and oscillator phase noise after its downconversion, sample-clock
// drift between tag and reader, burst erasures from body motion, and
// harvester brownout when the rail sags mid-reply. Each impairment here is
// a standalone primitive; ImpairmentChain composes an arbitrary subset and
// can wrap any real envelope or IQ stream between the CIB transmitter, the
// tag state machine, and the oob_reader RX chain.
//
// Determinism: every stochastic primitive draws from an explicitly passed
// Rng, so an impaired run is reproducible from a seed and safe inside the
// parallel Monte-Carlo loops (per-trial Rng::stream).
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "ivnet/common/rng.hpp"
#include "ivnet/harvester/transient.hpp"
#include "ivnet/signal/waveform.hpp"

namespace ivnet {

/// Burst erasures: body motion / polarization fades that blank the link for
/// milliseconds at a time. Arrivals are Poisson (exponential inter-arrival),
/// durations exponential, attenuation `depth_db` inside a burst.
struct BurstErasureConfig {
  double rate_hz = 0.0;          ///< mean bursts per second (0 = off)
  double mean_duration_s = 0.0;  ///< mean burst length
  double depth_db = 40.0;        ///< attenuation inside a burst
};

/// Harvester brownout driven by the transient energy model: the supply
/// envelope feeds the Fig. 1 voltage doubler and the tag's modulator is
/// gated off whenever the simulated rail sags below `dropout_v` (with
/// hysteresis: it must recover past `recover_v` to turn back on).
struct BrownoutConfig {
  bool enabled = false;
  /// The harvester/transient energy model. Defaults differ from the bare
  /// DoublerConfig: storage-scale caps and a chip-scale load, so the rail
  /// rides out one carrier cycle but sags within ~100 us of a supply fade.
  DoublerConfig doubler{.c1_f = 10e-9, .c2_f = 10e-9, .load_ohm = 10e3};
  double dropout_v = 0.35;   ///< rail voltage below which the chip resets
  double recover_v = 0.45;   ///< rail voltage required to resume
  /// The doubler pumps on an oscillating input, so the gate synthesizes a
  /// scaled carrier cos(2*pi*f*t) under the supply envelope, with
  /// f = carrier_fraction * sample_rate (>= ~6 samples per cycle).
  double carrier_fraction = 0.125;
  /// Transient-integration substeps per envelope sample. The doubler's
  /// explicit-Euler update is only stable for steps below ~2*C*Rs, far
  /// finer than the envelope rate; the gate integrates at
  /// sample_rate * oversample and decimates the rail back down.
  int oversample = 32;
};

/// One composable set of impairments. Fields at their defaults are no-ops,
/// so `ImpairmentConfig{}` is the clean channel.
struct ImpairmentConfig {
  /// AWGN at this SNR [dB], referenced to the mean power of the clean input
  /// signal. +inf = noiseless.
  double snr_db = std::numeric_limits<double>::infinity();
  /// Residual carrier-frequency offset after the reader's downconversion.
  double cfo_hz = 0.0;
  double cfo_phase_rad = 0.0;  ///< initial CFO phase
  /// Lorentzian linewidth of the RX oscillator (random-walk phase noise).
  double phase_noise_linewidth_hz = 0.0;
  /// Sample-clock drift between tag and reader [parts per million].
  double clock_drift_ppm = 0.0;
  BurstErasureConfig bursts;
  BrownoutConfig brownout;
};

/// What the chain actually injected into one stream (for session reports).
struct ImpairmentTrace {
  std::size_t bursts = 0;
  std::size_t erased_samples = 0;
  std::size_t brownout_samples = 0;
  bool browned_out = false;
};

/// Mean power sum(x^2)/n of a real signal (0 for empty input).
double signal_mean_power(std::span<const double> x);

/// Noise standard deviation that puts `snr_db` of noise under a signal of
/// mean power `power`; negative when no noise should be added (infinite SNR
/// or zero power). Exposed so the batched pipeline can compute the exact
/// sigma apply_awgn would use from a cached mean power.
double awgn_sigma(double power, double snr_db);

/// Add real AWGN at `snr_db` relative to the CURRENT mean power of `x`.
/// No-op for +inf SNR, empty, or all-zero input.
void apply_awgn(std::vector<double>& x, double snr_db, Rng& rng);

/// Complex AWGN at `snr_db` relative to the waveform's mean power.
void apply_awgn(Waveform& wave, double snr_db, Rng& rng);

/// Residual CFO on a REAL downconverted baseband: x[i] *= cos(2*pi*f*t+p0).
/// (After a real mixer, an offset carrier beats against the signal.)
void apply_carrier_offset(std::vector<double>& x, double sample_rate_hz,
                          double cfo_hz, double phase0_rad);

/// CFO on complex baseband: rotate by exp(j*(2*pi*f*t + p0)).
void apply_carrier_offset(Waveform& wave, double cfo_hz, double phase0_rad);

/// Random-walk phase noise of Lorentzian linewidth `linewidth_hz`: phase
/// increments are N(0, 2*pi*linewidth/fs) per sample. Real signals are
/// multiplied by cos(phi), complex ones rotated by exp(j*phi).
void apply_phase_noise(std::vector<double>& x, double sample_rate_hz,
                       double linewidth_hz, Rng& rng);
void apply_phase_noise(Waveform& wave, double linewidth_hz, Rng& rng);

/// Resample `x` as seen through a receiver whose clock runs `drift_ppm`
/// fast (positive) or slow (negative), via linear interpolation. The output
/// keeps the input length (the record is timed by the receiver's clock):
/// fast clocks compress the content and hold the final sample at the tail,
/// slow clocks stretch it. Returns the input unchanged when drift_ppm == 0.
std::vector<double> apply_clock_drift(std::span<const double> x,
                                      double drift_ppm);

/// Attenuate Poisson-arriving exponential-length bursts in place. Returns
/// the number of bursts that intersected the record; `erased` (if non-null)
/// accumulates the number of attenuated samples.
std::size_t apply_burst_erasures(std::vector<double>& x, double sample_rate_hz,
                                 const BurstErasureConfig& config, Rng& rng,
                                 std::size_t* erased = nullptr);

/// Brownout carry-over between successive records of one session: the
/// doubler's capacitor charge and the hysteresis flag survive from the
/// charge window into each backscatter reply.
struct BrownoutState {
  DoublerState doubler;
  bool on = false;  ///< chip above the hysteresis threshold
};

/// Per-sample on/off gate from the transient doubler driven by
/// `supply_envelope_v`: off while the rail is below dropout, back on only
/// after it recovers past recover_v. Fills `trace` brownout fields if given.
/// `state` (if non-null) seeds the run and receives the final rail state;
/// a null state starts from a cold rail.
std::vector<bool> brownout_gate(std::span<const double> supply_envelope_v,
                                double sample_rate_hz,
                                const BrownoutConfig& config,
                                ImpairmentTrace* trace = nullptr,
                                BrownoutState* state = nullptr);

/// Zero x[i] wherever gate[i] is off (sizes may differ; the overlap is used).
void apply_brownout(std::vector<double>& x, const std::vector<bool>& gate);

/// Applies a fixed ImpairmentConfig to real or complex streams, in the
/// physical order a receiver sees them: clock drift, then CFO, then phase
/// noise, then burst erasures, then AWGN. Brownout is NOT applied here — it
/// needs the supply envelope, which is a different stream; use
/// brownout_gate/apply_brownout (the session layer does).
class ImpairmentChain {
 public:
  explicit ImpairmentChain(ImpairmentConfig config);

  const ImpairmentConfig& config() const { return config_; }

  std::vector<double> apply(std::span<const double> x, double sample_rate_hz,
                            Rng& rng, ImpairmentTrace* trace = nullptr) const;
  Waveform apply(const Waveform& in, Rng& rng,
                 ImpairmentTrace* trace = nullptr) const;

 private:
  ImpairmentConfig config_;
};

}  // namespace ivnet
