#include "ivnet/impair/link_session.hpp"

#include <cmath>
#include <optional>
#include <string>

#include "ivnet/common/units.hpp"
#include "ivnet/gen2/fm0.hpp"
#include "ivnet/gen2/miller.hpp"
#include "ivnet/obs/obs.hpp"
#include "ivnet/signal/dsp_workspace.hpp"

namespace ivnet {
namespace {

}  // namespace

gen2::Bits default_link_epc() {
  gen2::Bits epc;
  gen2::append_bits(epc, 0xE2801160u, 32);
  gen2::append_bits(epc, 0x20000000u, 32);
  gen2::append_bits(epc, 0x00000001u, 32);
  return epc;
}

LinkSessionReport run_impaired_link_session(const ImpairedLinkConfig& config,
                                            Rng& rng) {
  LinkSessionReport report;
  const double fs = config.sample_rate_hz;
  const RecoveryPolicy& policy = config.recovery;

  // Session telemetry on every exit path. All recorded quantities are
  // simulated (elapsed_s, retries, stages) — deterministic for any thread
  // count, so they may feed byte-stable snapshots.
  struct SessionTelemetry {
    LinkSessionReport& r;
    ~SessionTelemetry() {
      obs::count("link.sessions");
      obs::count(r.success ? "link.success" : "link.failed");
      obs::observe("link.elapsed_s", r.elapsed_s);
      record_recovery("link", r.recovery);
    }
  } telemetry{report};

  // One draw from the caller; every attempt gets a counter-keyed stream so
  // runs differing only in SNR draw the SAME noise shapes (common random
  // numbers), and the caller's rng advances identically for any outcome.
  const std::uint64_t base = rng();
  std::uint64_t attempt_counter = 0;
  auto next_rng = [&] { return Rng::stream(base, attempt_counter++); };

  // Link budget: coherent array gain on both links, tissue loss once on the
  // downlink and twice on the backscatter round trip.
  const double array_gain_db =
      10.0 * std::log10(static_cast<double>(
                 std::max<std::size_t>(1, config.num_antennas)));
  const double uplink_snr_db =
      config.snr_db + array_gain_db - 2.0 * config.medium_loss_db;
  const double downlink_snr_db = config.snr_db + array_gain_db -
                                 config.medium_loss_db +
                                 config.downlink_snr_advantage_db;

  ImpairmentConfig uplink_impair = config.impair;
  uplink_impair.snr_db = uplink_snr_db;
  const ImpairmentChain uplink_chain(uplink_impair);
  // The tag's envelope detector has no mixer: the downlink sees the shared
  // medium (bursts, noise) but not the reader-RX oscillator impairments.
  ImpairmentConfig downlink_impair;
  downlink_impair.snr_db = downlink_snr_db;
  downlink_impair.bursts = config.impair.bursts;
  const ImpairmentChain downlink_chain(downlink_impair);

  gen2::TagStateMachine tag(
      config.epc.empty() ? default_link_epc() : config.epc,
      base ^ 0x9e3779b97f4a7c15ull);

  // Session-local scratch arena: the brownout supply rails below are
  // rebuilt for the charge window and for every reply, so one recycled
  // buffer replaces a per-attempt allocation. Single-threaded by
  // construction (one session == one Monte-Carlo worker).
  DspWorkspace workspace;
  ScopedBuffer<double> supply_buf(workspace, 0);

  // --- Charge. The array/loss-scaled CW amplitude must clear the power-up
  // threshold; with brownout enabled the transient doubler decides instead.
  const double charge_amp = config.charge_amplitude_v *
                            std::sqrt(static_cast<double>(std::max<std::size_t>(
                                1, config.num_antennas))) *
                            db_to_amplitude(-config.medium_loss_db);
  const double charge_t0 = report.elapsed_s;
  report.elapsed_s += config.charge_time_s;
  BrownoutState rail;  // capacitor charge carries across the whole session
  if (config.impair.brownout.enabled) {
    Rng charge_rng = next_rng();
    std::vector<double>& supply = *supply_buf;
    supply.assign(static_cast<std::size_t>(config.charge_time_s * fs),
                  charge_amp);
    apply_burst_erasures(supply, fs, config.impair.bursts, charge_rng,
                         nullptr);
    const auto gate = brownout_gate(supply, fs, config.impair.brownout,
                                    &report.trace, &rail);
    report.powered = !gate.empty() && gate.back();
  } else {
    report.powered = charge_amp >= config.power_up_threshold_v;
  }
  obs::sim_span("charge", "link", charge_t0, report.elapsed_s);
  if (!report.powered) {
    report.recovery.failed_stage = SessionStage::kCharge;
    obs::sim_instant("brownout", "link", report.elapsed_s);
    return report;
  }
  tag.power_up();

  AdaptiveQ adaptive(config.adaptive_q);
  const double slot_s = 20.0 * config.pie.tari_s;  // QueryRep + T1 + T3

  // Demodulate one uplink reply through the impairment chain.
  auto demodulate = [&](const gen2::Bits& reply, Rng& att_rng)
      -> std::optional<gen2::Bits> {
    std::vector<double> tx =
        config.uplink == gen2::Miller::kFm0
            ? gen2::fm0_modulate(reply, config.blf_hz, fs)
            : gen2::miller_modulate(config.uplink, reply, config.blf_hz, fs);
    report.elapsed_s += static_cast<double>(tx.size()) / fs;
    std::vector<double> rx = uplink_chain.apply(tx, fs, att_rng, &report.trace);
    if (config.impair.brownout.enabled) {
      // The rail sags while the tag modulates: gate the reflection through
      // the doubler, resuming from the rail the charge window left behind.
      std::vector<double>& supply = *supply_buf;
      supply.assign(rx.size(), charge_amp);
      apply_burst_erasures(supply, fs, config.impair.bursts, att_rng, nullptr);
      BrownoutState reply_rail = rail;  // replies don't discharge each other
      apply_brownout(rx, brownout_gate(supply, fs, config.impair.brownout,
                                       &report.trace, &reply_rail));
    }
    if (config.uplink == gen2::Miller::kFm0) {
      const auto d = gen2::fm0_decode(rx, reply.size(), config.blf_hz, fs,
                                      config.min_correlation);
      report.last_correlation = d.preamble_correlation;
      if (!d.valid || d.bits.size() != reply.size()) {
        obs::count("link.decode.fail");
        return std::nullopt;
      }
      obs::count("link.decode.ok");
      return d.bits;
    }
    const auto d = gen2::miller_decode(config.uplink, rx, reply.size(),
                                       config.blf_hz, fs,
                                       config.min_correlation);
    report.last_correlation = d.preamble_correlation;
    if (!d.valid || d.bits.size() != reply.size()) {
      obs::count("link.decode.fail");
      return std::nullopt;
    }
    obs::count("link.decode.ok");
    return d.bits;
  };

  // One command, with per-command retries / backoff / timeout. `is_query`
  // engages the slot chase and the adaptive-Q feedback.
  auto exchange = [&](SessionStage stage, bool is_query,
                      const gen2::Bits& fixed_command, bool with_preamble)
      -> std::optional<gen2::Bits> {
    const double stage_t0 = report.elapsed_s;
    for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
      if (attempt > 0) {
        const double backoff = policy.backoff_for_attempt(attempt - 1);
        report.recovery.backoff_total_s += backoff;
        report.elapsed_s += backoff;
        ++report.recovery.retries;
        if (obs::metrics() != nullptr) {
          std::string key = "link.retry.";
          key += to_string(stage);
          obs::count(key);
          obs::observe("link.backoff_s", backoff);
        }
        obs::sim_instant("retry", "link", report.elapsed_s);
      }
      Rng att_rng = next_rng();
      const std::uint8_t q = adaptive.q();
      const gen2::Bits command =
          is_query ? gen2::QueryCommand{.m = config.uplink, .q = q}.encode()
                   : fixed_command;

      // Downlink: PIE waveform through the shared-medium impairments, then
      // the tag's envelope slicer.
      const auto pie_env =
          gen2::pie_encode(command, config.pie, fs, with_preamble);
      report.elapsed_s += static_cast<double>(pie_env.size()) / fs;
      ++report.commands_sent;
      const auto rx_env = downlink_chain.apply(pie_env, fs, att_rng, nullptr);
      const auto sliced = gen2::pie_decode(rx_env, fs);
      std::optional<gen2::Bits> reply;
      if (sliced.valid) reply = tag.on_command(sliced.bits);

      if (is_query && !reply) {
        // Chase the frame's remaining slots with QueryReps (short, robust
        // commands — modeled at the bit level).
        const auto slots = std::size_t{1} << q;
        for (std::size_t s = 1; s < slots && !reply; ++s) {
          adaptive.on_empty();
          report.elapsed_s += slot_s;
          reply = tag.on_command(gen2::QueryRepCommand{}.encode());
        }
      }
      if (is_query) report.recovery.q_trajectory.push_back(adaptive.q());

      if (!reply) {
        // Silent tag: the reader waits out the reply window.
        ++report.recovery.timeouts;
        report.elapsed_s += policy.command_timeout_s;
        if (is_query) adaptive.on_empty();
        continue;
      }
      if (auto bits = demodulate(*reply, att_rng)) {
        if (is_query) adaptive.on_single();
        obs::sim_span(to_string(stage), "link", stage_t0, report.elapsed_s);
        return bits;
      }
      // Garbled reply: indistinguishable from a collision at the reader.
      if (is_query) adaptive.on_collision();
    }
    report.recovery.failed_stage = stage;
    obs::sim_span(to_string(stage), "link", stage_t0, report.elapsed_s);
    return std::nullopt;
  };

  // --- Query -> RN16.
  const auto rn16_bits = exchange(SessionStage::kQuery, /*is_query=*/true,
                                  {}, /*with_preamble=*/true);
  if (!rn16_bits) return report;
  report.rn16 = static_cast<std::uint16_t>(gen2::read_bits(*rn16_bits, 0, 16));

  // --- ACK -> EPC frame (PC + EPC + CRC16).
  const auto ack = gen2::AckCommand{.rn16 = report.rn16}.encode();
  const auto epc_frame = exchange(SessionStage::kAck, /*is_query=*/false, ack,
                                  /*with_preamble=*/false);
  if (!epc_frame) return report;
  if (epc_frame->size() < 32 || !gen2::check_crc16(*epc_frame)) {
    report.recovery.failed_stage = SessionStage::kAck;
    return report;
  }
  report.epc = gen2::Bits(epc_frame->begin() + 16, epc_frame->end() - 16);
  report.success = true;
  return report;
}

}  // namespace ivnet
