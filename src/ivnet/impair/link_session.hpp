// Impaired Gen2 link session: the full charge -> Query -> RN16 -> ACK ->
// EPC dialogue over a lossy, time-varying link, with the reader-side
// recovery the paper's in-vivo runs needed (retry on the next CIB period,
// per-command timeouts, adaptive Q).
//
// This is the waveform-link middle ground between the analytic runner
// (sim/experiment) and the sample-accurate radio path
// (sim/waveform_session): commands and replies are real PIE / FM0 / Miller
// waveforms pushed through an ImpairmentChain, but the RF front ends are
// folded into an SNR budget (array gain, tissue loss, downlink advantage),
// which keeps one session in the tens of microseconds of CPU — fast enough
// for the media x SNR x antennas Monte-Carlo matrices the test suite runs.
#pragma once

#include <cstdint>

#include "ivnet/common/rng.hpp"
#include "ivnet/gen2/commands.hpp"
#include "ivnet/gen2/pie.hpp"
#include "ivnet/gen2/tag_sm.hpp"
#include "ivnet/impair/impairment.hpp"
#include "ivnet/impair/recovery.hpp"
#include "ivnet/reader/inventory.hpp"

namespace ivnet {

/// Link budget + impairments + recovery policy of one impaired session.
struct ImpairedLinkConfig {
  double blf_hz = 40e3;            ///< backscatter link frequency
  double sample_rate_hz = 800e3;
  gen2::PieTiming pie;
  gen2::Miller uplink = gen2::Miller::kFm0;

  /// Reference uplink SNR [dB]: one antenna, zero tissue loss. The budget
  /// seen by the decoder is snr_db + 10*log10(antennas) - 2*medium_loss_db
  /// (the backscatter round trip crosses the tissue twice).
  double snr_db = 30.0;
  std::size_t num_antennas = 1;
  /// One-way excess tissue loss [dB] (media x depth; see waterfall.hpp).
  double medium_loss_db = 0.0;
  /// The downlink is reader-powered and decodes on a bare envelope
  /// detector; it sits this many dB above the uplink budget.
  double downlink_snr_advantage_db = 12.0;
  double min_correlation = 0.75;   ///< reader's preamble decode gate

  /// Charging model: nominal single-antenna clean-channel amplitude at the
  /// tag [V]; the tag powers when the array/loss-scaled amplitude clears
  /// power_up_threshold_v (or, with impair.brownout.enabled, when the
  /// transient-doubler rail clears its recover voltage).
  double charge_amplitude_v = 1.0;
  double power_up_threshold_v = 0.35;
  double charge_time_s = 2e-3;

  ImpairmentConfig impair;    ///< CFO, drift, bursts, AWGN, brownout
  RecoveryPolicy recovery;    ///< retries / backoff / timeout
  AdaptiveQConfig adaptive_q{.initial_q = 0.0};  ///< single tag: start at 0

  gen2::Bits epc;             ///< tag identity (96 defaults bits when empty)
};

/// Everything one impaired session reports back to the Monte-Carlo layer.
struct LinkSessionReport {
  bool success = false;       ///< CRC-clean EPC recovered
  bool powered = false;
  std::uint16_t rn16 = 0;     ///< RN16 the reader believes it decoded
  gen2::Bits epc;             ///< recovered EPC payload (when success)
  double last_correlation = 0.0;  ///< preamble correlation of last decode
  double elapsed_s = 0.0;     ///< air time incl. backoff waits
  int commands_sent = 0;
  RecoveryStats recovery;     ///< retries / timeouts / q_trajectory / stage
  ImpairmentTrace trace;      ///< bursts hit, samples erased, brownout
};

/// The 96-bit EPC an empty ImpairedLinkConfig::epc resolves to. Exposed so
/// the batched pipeline seeds its lane tags with the identical identity.
gen2::Bits default_link_epc();

/// Run one full impaired session. Consumes exactly ONE draw from `rng`
/// (the stream base): every command attempt derives its own counter-keyed
/// sub-stream, so identical configs at different SNRs see the *same* noise
/// shapes scaled to different powers — the common-random-numbers property
/// the waterfall monotonicity tests rely on.
LinkSessionReport run_impaired_link_session(const ImpairedLinkConfig& config,
                                            Rng& rng);

}  // namespace ivnet
