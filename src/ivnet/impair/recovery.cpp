#include "ivnet/impair/recovery.hpp"

#include <string>

#include "ivnet/obs/obs.hpp"

namespace ivnet {

void record_recovery(std::string_view scope, const RecoveryStats& stats) {
  if (obs::metrics() == nullptr) return;
  std::string prefix = "recovery.";
  prefix += scope;
  obs::count(prefix + ".sessions");
  if (stats.retries > 0) {
    obs::count(prefix + ".retries", static_cast<std::uint64_t>(stats.retries));
  }
  if (stats.timeouts > 0) {
    obs::count(prefix + ".timeouts",
               static_cast<std::uint64_t>(stats.timeouts));
  }
  if (stats.backoff_total_s > 0.0) {
    obs::observe(prefix + ".backoff_s", stats.backoff_total_s);
  }
  if (stats.failed_stage != SessionStage::kNone) {
    std::string stage_key = prefix + ".failed.";
    stage_key += to_string(stats.failed_stage);
    obs::count(stage_key);
  }
  for (const std::uint8_t q : stats.q_trajectory) {
    obs::observe(prefix + ".q", static_cast<double>(q));
  }
}

}  // namespace ivnet
