// Reader-side recovery policy shared by every session runner.
//
// A deep-tissue session fails transiently all the time — a burst erasure
// eats the RN16, the correlation gate rejects a noisy preamble, the tag
// browns out mid-reply. The paper's reader simply re-queries on the next
// CIB envelope peak; this header gives that behaviour a uniform shape:
// bounded retries with exponential backoff, a per-command reply timeout,
// and a per-stage failure record threaded into every session report
// (impair/link_session, sim/waveform_session, sim/experiment).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace ivnet {

/// Retry/backoff/timeout knobs of a reader session.
struct RecoveryPolicy {
  /// Attempts per command, including the first (1 = never retry).
  int max_attempts = 1;
  /// Wait before the first retry; doubles (backoff_factor) per retry.
  double initial_backoff_s = 2e-3;
  double backoff_factor = 2.0;
  /// A command whose reply has not decoded within this window counts as a
  /// timeout (distinct from a garbled reply, which counts as a retry only).
  double command_timeout_s = 20e-3;

  /// Convenience: a policy that retries `n` times with the defaults.
  static RecoveryPolicy retries(int n) {
    RecoveryPolicy p;
    p.max_attempts = n + 1;
    return p;
  }

  double backoff_for_attempt(int attempt) const {
    double b = initial_backoff_s;
    for (int i = 0; i < attempt; ++i) b *= backoff_factor;
    return b;
  }
};

/// Where in the dialogue a session died (kNone = it did not).
enum class SessionStage : std::uint8_t {
  kNone = 0,  ///< completed
  kCharge,    ///< tag never powered
  kQuery,     ///< no decodable RN16
  kAck,       ///< no CRC-clean EPC
  kReqRn,     ///< no access handle
  kRead,      ///< sensor words missing or CRC-dirty
};

constexpr std::string_view to_string(SessionStage stage) {
  switch (stage) {
    case SessionStage::kNone: return "none";
    case SessionStage::kCharge: return "charge";
    case SessionStage::kQuery: return "query";
    case SessionStage::kAck: return "ack";
    case SessionStage::kReqRn: return "req_rn";
    case SessionStage::kRead: return "read";
  }
  return "unknown";
}

/// Recovery bookkeeping every session report carries.
struct RecoveryStats {
  int retries = 0;       ///< re-sent commands (all causes)
  int timeouts = 0;      ///< retries caused by a silent tag
  double backoff_total_s = 0.0;
  SessionStage failed_stage = SessionStage::kNone;
  /// Reader Q after each Query attempt (adaptive-Q trajectory).
  std::vector<std::uint8_t> q_trajectory;
};

/// Record a finished session's recovery stats into the installed telemetry
/// sink (obs/obs.hpp) under `scope` — counters for retries/timeouts and the
/// failed stage, histograms for backoff and Q trajectory. No-op with a null
/// sink. Lives here (not in obs/) so the obs layer stays session-agnostic.
void record_recovery(std::string_view scope, const RecoveryStats& stats);

}  // namespace ivnet
