#include "ivnet/impair/waterfall.hpp"

#include <algorithm>
#include <cmath>

#include "ivnet/common/parallel.hpp"
#include "ivnet/common/json.hpp"
#include "ivnet/gen2/fm0.hpp"
#include "ivnet/gen2/miller.hpp"
#include "ivnet/obs/obs.hpp"

namespace ivnet {
namespace {

/// Per-point accumulator folded deterministically by parallel_reduce.
struct Tally {
  std::size_t bit_errors = 0;
  std::size_t frame_errors = 0;
  std::size_t successes = 0;
  std::size_t retried_successes = 0;
  long retries = 0;
  long timeouts = 0;
};

Tally combine(Tally a, const Tally& b) {
  a.bit_errors += b.bit_errors;
  a.frame_errors += b.frame_errors;
  a.successes += b.successes;
  a.retried_successes += b.retried_successes;
  a.retries += b.retries;
  a.timeouts += b.timeouts;
  return a;
}

double uplink_budget_db(const ImpairedLinkConfig& link) {
  const double array_gain_db =
      10.0 * std::log10(static_cast<double>(
                 std::max<std::size_t>(1, link.num_antennas)));
  return link.snr_db + array_gain_db - 2.0 * link.medium_loss_db;
}

/// The raw-BER probe projected onto a tally (delegates to the exported
/// oracle so the batched pipeline's fallback runs the identical trial).
Tally ber_trial(const ImpairedLinkConfig& link, std::size_t payload_bits,
                Rng trial_rng) {
  const BerProbeResult r = ber_probe_trial(link, payload_bits, trial_rng);
  Tally t;
  t.bit_errors = r.bit_errors;
  t.frame_errors = r.frame_error ? 1 : 0;
  return t;
}

Tally session_trial(const ImpairedLinkConfig& link, Rng trial_rng) {
  const auto report = run_impaired_link_session(link, trial_rng);
  Tally t;
  t.successes = report.success ? 1 : 0;
  t.retried_successes = (report.success && report.recovery.retries > 0) ? 1 : 0;
  t.retries = report.recovery.retries;
  t.timeouts = report.recovery.timeouts;
  return t;
}

/// Batch-local accumulation (satellite of the batched pipeline): lane
/// outcomes fold straight into the batch partial — no per-trial
/// LinkSessionReport is materialized on the batched path.
void accumulate_session(Tally& t, const SessionOutcome& o) {
  t.successes += o.success != 0 ? 1 : 0;
  t.retried_successes = t.retried_successes +
                        ((o.success != 0 && o.retries > 0) ? 1 : 0);
  t.retries += static_cast<long>(o.retries);
  t.timeouts += static_cast<long>(o.timeouts);
}

/// One batch's partial: the tally plus the batch workspace's high-water
/// mark, max-combined so the sweep can report the arena gauge once from
/// the calling thread (pool-thread gauge writes would race).
struct BatchPartial {
  Tally tally;
  std::size_t high_water = 0;
};

BatchPartial combine_partial(BatchPartial a, const BatchPartial& b) {
  a.tally = combine(a.tally, b.tally);
  a.high_water = std::max(a.high_water, b.high_water);
  return a;
}

/// Batched session sweep over one sweep point: trials [0, n) through the
/// lane engine, one fresh DspWorkspace per batch (deterministic high-water),
/// with the optional BER probe sharing the batch's workspace.
BatchPartial run_point_batched(const ImpairedLinkConfig& link, std::size_t n,
                               std::size_t batch, std::uint64_t base,
                               std::uint64_t stride,
                               std::uint64_t session_offset,
                               std::size_t ber_payload_bits) {
  return batched_reduce<BatchPartial>(
      n, batch, BatchPartial{},
      [&](std::size_t lo, std::size_t hi) {
        BatchPartial p;
        DspWorkspace workspace;
        if (ber_payload_bits > 0) {
          run_ber_batch(link, ber_payload_bits, base, stride, 0, lo, hi,
                        workspace, [&](std::size_t, const BerOutcome& o) {
                          p.tally.bit_errors += o.bit_errors;
                          p.tally.frame_errors += o.frame_error;
                        });
        }
        run_session_batch(link, base, stride, session_offset, lo, hi,
                          workspace, [&](std::size_t, const SessionOutcome& o) {
                            accumulate_session(p.tally, o);
                          });
        p.high_water = workspace.high_water_bytes();
        return p;
      },
      combine_partial);
}

}  // namespace

double medium_loss_at_depth_db(const Medium& medium, double freq_hz,
                               double depth_m) {
  return medium.power_loss_db_per_m(freq_hz) * depth_m +
         boundary_loss_db(media::air(), medium, freq_hz);
}

BerProbeResult ber_probe_trial(const ImpairedLinkConfig& link,
                               std::size_t payload_bits, Rng trial_rng) {
  gen2::Bits payload(payload_bits);
  for (auto&& b : payload) b = (trial_rng() & 1u) != 0;
  ImpairmentConfig impair = link.impair;
  impair.snr_db = uplink_budget_db(link);
  const ImpairmentChain chain(impair);
  const double fs = link.sample_rate_hz;
  std::vector<double> tx =
      link.uplink == gen2::Miller::kFm0
          ? gen2::fm0_modulate(payload, link.blf_hz, fs)
          : gen2::miller_modulate(link.uplink, payload, link.blf_hz, fs);
  const auto rx = chain.apply(tx, fs, trial_rng);

  BerProbeResult t;
  bool valid = false;
  gen2::Bits decoded;
  if (link.uplink == gen2::Miller::kFm0) {
    auto d = gen2::fm0_decode(rx, payload_bits, link.blf_hz, fs,
                              link.min_correlation);
    valid = d.valid;
    decoded = std::move(d.bits);
  } else {
    auto d = gen2::miller_decode(link.uplink, rx, payload_bits, link.blf_hz,
                                 fs, link.min_correlation);
    valid = d.valid;
    decoded = std::move(d.bits);
  }
  if (!valid || decoded.size() != payload_bits) {
    t.bit_errors = payload_bits / 2;
    t.frame_error = true;
    return t;
  }
  for (std::size_t i = 0; i < payload_bits; ++i) {
    if (decoded[i] != payload[i]) ++t.bit_errors;
  }
  t.frame_error = t.bit_errors > 0;
  return t;
}

std::vector<WaterfallPoint> run_ber_waterfall(const WaterfallConfig& config,
                                              Rng& rng) {
  obs::ScopedSpan sweep_span("waterfall.sweep", "impair");
  obs::count("waterfall.sweeps");
  obs::count("waterfall.points", config.snr_points_db.size());
  const std::uint64_t base = rng();
  const std::size_t trials = config.trials_per_point;
  const std::size_t batch = resolve_batch_size(config.batch);
  std::size_t sweep_high_water = 0;
  std::vector<WaterfallPoint> points;
  points.reserve(config.snr_points_db.size());
  std::size_t point_index = 0;
  for (const double snr_db : config.snr_points_db) {
    ImpairedLinkConfig link = config.link;
    link.snr_db = snr_db;
    // Streams keyed by trial index only: every SNR point replays the same
    // noise shapes at its own power (common random numbers). Even indices
    // feed the BER probe, odd ones the full session.
    const std::size_t track_base = point_index * trials;
    Tally total;
    if (batch > 1) {
      // Lane engine, bitwise-identical outcomes (no per-trial sim tracks).
      const BatchPartial p = run_point_batched(
          link, trials, batch, base, /*stride=*/2, /*session_offset=*/1,
          config.payload_bits);
      total = p.tally;
      sweep_high_water = std::max(sweep_high_water, p.high_water);
    } else {
      total = parallel_reduce<Tally>(
          trials, Tally{},
          [&](std::size_t t) {
            // A unique sim-trace track per (point, trial): the exported
            // trace orders by (track, seq), so it is byte-stable for any
            // pool size.
            obs::ScopedTrack track(
                static_cast<std::uint32_t>(track_base + t));
            Tally tt = ber_trial(link, config.payload_bits,
                                 Rng::stream(base, 2 * t));
            return combine(tt,
                           session_trial(link, Rng::stream(base, 2 * t + 1)));
          },
          combine);
    }
    ++point_index;
    WaterfallPoint p;
    p.snr_db = snr_db;
    p.trials = trials;
    const double n = static_cast<double>(trials);
    p.ber = static_cast<double>(total.bit_errors) /
            (n * static_cast<double>(config.payload_bits));
    p.per = static_cast<double>(total.frame_errors) / n;
    p.session_success_rate = static_cast<double>(total.successes) / n;
    p.mean_retries = static_cast<double>(total.retries) / n;
    p.mean_timeouts = static_cast<double>(total.timeouts) / n;
    points.push_back(p);
  }
  if (batch > 1) {
    // Once per sweep, from the calling thread: max over every batch's
    // workspace high-water (per-batch gauge writes from pool workers would
    // be racy and thread-count-dependent).
    obs::gauge_set("workspace.high_water_bytes",
                   static_cast<double>(sweep_high_water));
  }
  return points;
}

std::vector<MatrixCell> run_session_matrix(const MatrixConfig& config,
                                           Rng& rng) {
  obs::ScopedSpan sweep_span("matrix.sweep", "impair");
  obs::count("matrix.sweeps");
  const std::uint64_t base = rng();
  const std::size_t trials = config.trials_per_cell;
  const std::size_t batch = resolve_batch_size(config.batch);
  std::size_t sweep_high_water = 0;
  std::vector<MatrixCell> cells;
  cells.reserve(config.media.size() * config.snr_points_db.size() *
                config.antenna_counts.size());
  std::size_t cell_index = 0;
  for (const auto& medium : config.media) {
    for (const double snr_db : config.snr_points_db) {
      for (const std::size_t antennas : config.antenna_counts) {
        ImpairedLinkConfig link = config.link;
        link.medium_loss_db = medium.loss_db;
        link.snr_db = snr_db;
        link.num_antennas = antennas;
        const std::size_t track_base = cell_index * trials;
        Tally total;
        if (batch > 1) {
          const BatchPartial p = run_point_batched(
              link, trials, batch, base, /*stride=*/1, /*session_offset=*/0,
              /*ber_payload_bits=*/0);
          total = p.tally;
          sweep_high_water = std::max(sweep_high_water, p.high_water);
        } else {
          total = parallel_reduce<Tally>(
              trials, Tally{},
              [&](std::size_t t) {
                // Trial-keyed streams shared by every cell: the whole
                // matrix replays the same noise realizations per trial
                // slot.
                obs::ScopedTrack track(
                    static_cast<std::uint32_t>(track_base + t));
                return session_trial(link, Rng::stream(base, t));
              },
              combine);
        }
        ++cell_index;
        MatrixCell cell;
        cell.medium = medium.name;
        cell.medium_loss_db = medium.loss_db;
        cell.snr_db = snr_db;
        cell.num_antennas = antennas;
        cell.trials = trials;
        cell.successes = total.successes;
        const double n = static_cast<double>(trials);
        cell.success_rate = static_cast<double>(total.successes) / n;
        cell.mean_retries = static_cast<double>(total.retries) / n;
        cell.mean_timeouts = static_cast<double>(total.timeouts) / n;
        cell.recovered_by_retry = total.retried_successes;
        cells.push_back(cell);
      }
    }
  }
  if (batch > 1) {
    obs::gauge_set("workspace.high_water_bytes",
                   static_cast<double>(sweep_high_water));
  }
  return cells;
}

std::vector<DepthPoint> run_success_vs_depth(const DepthSweepConfig& config,
                                             Rng& rng) {
  obs::ScopedSpan sweep_span("depth.sweep", "impair");
  obs::count("depth.sweeps");
  const std::uint64_t base = rng();
  const std::size_t trials = config.trials_per_point;
  const std::size_t batch = resolve_batch_size(config.batch);
  std::size_t sweep_high_water = 0;
  std::vector<DepthPoint> points;
  points.reserve(config.depths_m.size());
  std::size_t point_index = 0;
  for (const double depth_m : config.depths_m) {
    ImpairedLinkConfig link = config.link;
    link.medium_loss_db =
        medium_loss_at_depth_db(config.medium, config.freq_hz, depth_m);
    const std::size_t track_base = point_index * trials;
    Tally total;
    if (batch > 1) {
      const BatchPartial p = run_point_batched(
          link, trials, batch, base, /*stride=*/1, /*session_offset=*/0,
          /*ber_payload_bits=*/0);
      total = p.tally;
      sweep_high_water = std::max(sweep_high_water, p.high_water);
    } else {
      total = parallel_reduce<Tally>(
          trials, Tally{},
          [&](std::size_t t) {
            obs::ScopedTrack track(
                static_cast<std::uint32_t>(track_base + t));
            return session_trial(link, Rng::stream(base, t));
          },
          combine);
    }
    ++point_index;
    DepthPoint p;
    p.depth_m = depth_m;
    p.medium_loss_db = link.medium_loss_db;
    const double n = static_cast<double>(trials);
    p.success_rate = static_cast<double>(total.successes) / n;
    p.mean_retries = static_cast<double>(total.retries) / n;
    points.push_back(p);
  }
  if (batch > 1) {
    obs::gauge_set("workspace.high_water_bytes",
                   static_cast<double>(sweep_high_water));
  }
  return points;
}

std::string waterfall_json(const std::vector<WaterfallPoint>& points) {
  JsonWriter w;
  w.begin_object().key("waterfall").begin_array();
  for (const auto& p : points) {
    w.begin_object()
        .field("snr_db", p.snr_db)
        .field("ber", p.ber)
        .field("per", p.per)
        .field("session_success_rate", p.session_success_rate)
        .field("mean_retries", p.mean_retries)
        .field("mean_timeouts", p.mean_timeouts)
        .field("trials", p.trials)
        .end_object();
  }
  w.end_array().end_object();
  return w.str();
}

std::string matrix_json(const std::vector<MatrixCell>& cells) {
  JsonWriter w;
  w.begin_object().key("matrix").begin_array();
  for (const auto& c : cells) {
    w.begin_object()
        .field("medium", c.medium)
        .field("medium_loss_db", c.medium_loss_db)
        .field("snr_db", c.snr_db)
        .field("num_antennas", c.num_antennas)
        .field("trials", c.trials)
        .field("successes", c.successes)
        .field("success_rate", c.success_rate)
        .field("mean_retries", c.mean_retries)
        .field("mean_timeouts", c.mean_timeouts)
        .field("recovered_by_retry", c.recovered_by_retry)
        .end_object();
  }
  w.end_array().end_object();
  return w.str();
}

std::string depth_sweep_json(const std::vector<DepthPoint>& points) {
  JsonWriter w;
  w.begin_object().key("depth_sweep").begin_array();
  for (const auto& p : points) {
    w.begin_object()
        .field("depth_m", p.depth_m)
        .field("medium_loss_db", p.medium_loss_db)
        .field("success_rate", p.success_rate)
        .field("mean_retries", p.mean_retries)
        .end_object();
  }
  w.end_array().end_object();
  return w.str();
}

}  // namespace ivnet
