// Monte-Carlo sweeps over the impaired link: BER/PER-vs-SNR waterfalls,
// the media x SNR x antennas session matrix, and session-success-vs-depth
// curves — the impaired-channel counterparts of the paper's Fig. 13/14
// evaluation plots.
//
// All sweeps run through the shared parallel engine with counter-derived
// per-trial Rng streams, and all are keyed by the TRIAL index only (not the
// sweep point), so every SNR / depth / antenna point sees the same noise
// realizations scaled to its own budget. These common random numbers make
// the success-vs-SNR curves monotone in expectation AND in any single
// deterministic run, which is what the end-to-end matrix test asserts.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ivnet/impair/link_session.hpp"
#include "ivnet/media/medium.hpp"
#include "ivnet/sim/batch_pipeline.hpp"

namespace ivnet {

/// One-way excess loss the link budget charges for `depth_m` of `medium`:
/// bulk absorption plus the air->medium boundary crossing.
double medium_loss_at_depth_db(const Medium& medium, double freq_hz,
                               double depth_m);

/// One point of a BER/PER/session waterfall.
struct WaterfallPoint {
  double snr_db = 0.0;
  double ber = 0.0;  ///< raw uplink bit error rate (erased frames count 1/2)
  double per = 0.0;  ///< uplink frame error rate (decode fail or any bit bad)
  double session_success_rate = 0.0;  ///< full charge->EPC dialogues
  double mean_retries = 0.0;
  double mean_timeouts = 0.0;
  std::size_t trials = 0;
};

struct WaterfallConfig {
  /// Template link; its snr_db is overridden by each sweep point.
  ImpairedLinkConfig link;
  std::vector<double> snr_points_db = {30.0, 20.0, 10.0, 0.0};
  std::size_t trials_per_point = 32;
  std::size_t payload_bits = 128;  ///< frame length for the raw BER probe
  /// Batched-pipeline knob: resolved size > 1 runs trials through the
  /// lockstep lane engine (sim/batch_pipeline.hpp), bitwise-identical to
  /// the scalar path; <= 1 keeps the original per-trial oracle loop.
  BatchConfig batch{};
};

/// One raw-BER probe outcome (exposed so the batched pipeline's scalar
/// fallback runs the exact waterfall oracle).
struct BerProbeResult {
  std::size_t bit_errors = 0;
  bool frame_error = false;
};

/// The waterfall's raw-BER probe: random payload through the impaired
/// uplink, decoded at the reader's correlation gate. An undecodable frame
/// is charged half its bits. Consumes payload_bits draws for the payload,
/// then whatever the impairment chain draws.
BerProbeResult ber_probe_trial(const ImpairedLinkConfig& link,
                               std::size_t payload_bits, Rng trial_rng);

/// Sweep SNR. Consumes one rng draw (the stream base); trial t draws from
/// Rng::stream sub-streams shared across all SNR points (common random
/// numbers). Deterministic for any IVNET_THREADS.
std::vector<WaterfallPoint> run_ber_waterfall(const WaterfallConfig& config,
                                              Rng& rng);

/// One cell of the media x SNR x antennas matrix.
struct MatrixCell {
  std::string medium;
  double medium_loss_db = 0.0;
  double snr_db = 0.0;
  std::size_t num_antennas = 1;
  std::size_t trials = 0;
  std::size_t successes = 0;
  double success_rate = 0.0;
  double mean_retries = 0.0;
  double mean_timeouts = 0.0;
  /// Sessions that succeeded only after at least one retry — the sessions a
  /// retry-free reader would have lost.
  std::size_t recovered_by_retry = 0;
};

/// A medium column of the matrix: a display name plus its one-way loss.
struct MatrixMedium {
  std::string name;
  double loss_db = 0.0;
};

struct MatrixConfig {
  ImpairedLinkConfig link;  ///< snr/antennas/loss overridden per cell
  std::vector<MatrixMedium> media;
  std::vector<double> snr_points_db = {30.0, 20.0, 10.0, 0.0};
  std::vector<std::size_t> antenna_counts = {1, 3, 10};
  std::size_t trials_per_cell = 24;
  BatchConfig batch{};  ///< see WaterfallConfig::batch
};

/// Every media x SNR x antennas cell, trials shared-stream as above. Cells
/// are ordered medium-major, then SNR (descending as given), then antennas.
std::vector<MatrixCell> run_session_matrix(const MatrixConfig& config,
                                           Rng& rng);

/// One point of a success-vs-depth curve.
struct DepthPoint {
  double depth_m = 0.0;
  double medium_loss_db = 0.0;
  double success_rate = 0.0;
  double mean_retries = 0.0;
};

struct DepthSweepConfig {
  ImpairedLinkConfig link;
  Medium medium = media::muscle();
  double freq_hz = 915e6;
  std::vector<double> depths_m = {0.02, 0.04, 0.06, 0.08, 0.10, 0.12};
  std::size_t trials_per_point = 32;
  BatchConfig batch{};  ///< see WaterfallConfig::batch
};

/// Success rate vs implant depth in one medium (loss from
/// medium_loss_at_depth_db), common-random-numbers across depths.
std::vector<DepthPoint> run_success_vs_depth(const DepthSweepConfig& config,
                                             Rng& rng);

/// JSON emitters for the sweep results (stable field order; byte-equal
/// output for byte-equal inputs, which the determinism suite relies on).
std::string waterfall_json(const std::vector<WaterfallPoint>& points);
std::string matrix_json(const std::vector<MatrixCell>& cells);
std::string depth_sweep_json(const std::vector<DepthPoint>& points);

}  // namespace ivnet
