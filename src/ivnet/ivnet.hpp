// Umbrella header: the public API of the IVN reproduction in one include.
//
//   #include "ivnet/ivnet.hpp"
//
// Pulls in every module a downstream application typically touches; include
// individual headers instead when compile time matters.
#pragma once

// Foundations.
#include "ivnet/common/json.hpp"
#include "ivnet/common/rng.hpp"
#include "ivnet/common/stats.hpp"
#include "ivnet/common/units.hpp"

// Observability: metrics registry, structured tracer, sink facade.
#include "ivnet/obs/metrics.hpp"
#include "ivnet/obs/obs.hpp"
#include "ivnet/obs/trace.hpp"

// Signals and media.
#include "ivnet/media/layered.hpp"
#include "ivnet/media/medium.hpp"
#include "ivnet/signal/correlate.hpp"
#include "ivnet/signal/envelope.hpp"
#include "ivnet/signal/fir.hpp"
#include "ivnet/signal/goertzel.hpp"
#include "ivnet/signal/iq.hpp"
#include "ivnet/signal/noise.hpp"
#include "ivnet/signal/resampler.hpp"
#include "ivnet/signal/waveform.hpp"

// RF and energy harvesting.
#include "ivnet/harvester/diode.hpp"
#include "ivnet/harvester/energy.hpp"
#include "ivnet/harvester/harvester.hpp"
#include "ivnet/harvester/rectifier.hpp"
#include "ivnet/harvester/transient.hpp"
#include "ivnet/rf/antenna.hpp"
#include "ivnet/rf/channel.hpp"
#include "ivnet/rf/propagation.hpp"
#include "ivnet/rf/sounding.hpp"

// Protocol.
#include "ivnet/gen2/commands.hpp"
#include "ivnet/gen2/crc.hpp"
#include "ivnet/gen2/fm0.hpp"
#include "ivnet/gen2/link_timing.hpp"
#include "ivnet/gen2/memory.hpp"
#include "ivnet/gen2/miller.hpp"
#include "ivnet/gen2/pie.hpp"
#include "ivnet/gen2/tag_sm.hpp"

// Impairments and recovery.
#include "ivnet/impair/impairment.hpp"
#include "ivnet/impair/link_session.hpp"
#include "ivnet/impair/recovery.hpp"
#include "ivnet/impair/waterfall.hpp"

// Radios, tags, readers.
#include "ivnet/reader/inventory.hpp"
#include "ivnet/reader/oob_reader.hpp"
#include "ivnet/sdr/clock.hpp"
#include "ivnet/sdr/pa.hpp"
#include "ivnet/sdr/pll.hpp"
#include "ivnet/sdr/radio.hpp"
#include "ivnet/sdr/rx_chain.hpp"
#include "ivnet/tag/actuator.hpp"
#include "ivnet/tag/sensor.hpp"
#include "ivnet/tag/tag_device.hpp"

// The CIB core.
#include "ivnet/cib/baseline.hpp"
#include "ivnet/cib/frequency_plan.hpp"
#include "ivnet/cib/hopping.hpp"
#include "ivnet/cib/objective.hpp"
#include "ivnet/cib/optimizer.hpp"
#include "ivnet/cib/scheduler.hpp"
#include "ivnet/cib/transmitter.hpp"
#include "ivnet/cib/two_stage.hpp"

// Experiments and deployment.
#include "ivnet/flow/flow.hpp"
#include "ivnet/sim/calibration.hpp"
#include "ivnet/sim/experiment.hpp"
#include "ivnet/sim/mobility.hpp"
#include "ivnet/sim/planner.hpp"
#include "ivnet/sim/safety.hpp"
#include "ivnet/sim/scenario.hpp"
#include "ivnet/sim/waveform_session.hpp"
