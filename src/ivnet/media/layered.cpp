#include "ivnet/media/layered.hpp"

#include <cassert>
#include <cmath>
#include <utility>

#include "ivnet/common/units.hpp"

namespace ivnet {

LayeredMedium::LayeredMedium(Medium outer) : outer_(std::move(outer)) {}

LayeredMedium& LayeredMedium::add_layer(Medium medium, double thickness_m) {
  assert(thickness_m >= 0.0);
  layers_.push_back(Layer{std::move(medium), thickness_m});
  return *this;
}

double LayeredMedium::total_thickness_m() const {
  double total = 0.0;
  for (const auto& layer : layers_) total += layer.thickness_m;
  return total;
}

std::complex<double> LayeredMedium::field_transfer(double freq_hz) const {
  return field_transfer_at_depth(freq_hz, total_thickness_m());
}

std::complex<double> LayeredMedium::field_transfer_at_depth(
    double freq_hz, double depth_m) const {
  std::complex<double> coeff{1.0, 0.0};
  const Medium* previous = &outer_;
  double remaining = depth_m;
  for (const auto& layer : layers_) {
    if (remaining <= 0.0) break;
    coeff *= boundary_transmission(*previous, layer.medium, freq_hz);
    const double travelled = std::min(remaining, layer.thickness_m);
    const double a = layer.medium.alpha(freq_hz);
    const double b = layer.medium.beta(freq_hz);
    coeff *= std::exp(std::complex<double>(-a * travelled, -b * travelled));
    remaining -= travelled;
    previous = &layer.medium;
  }
  if (remaining > 0.0 && !layers_.empty()) {
    // Continue in the last slab's medium (e.g. deeper into stomach contents).
    const Medium& last = layers_.back().medium;
    const double a = last.alpha(freq_hz);
    const double b = last.beta(freq_hz);
    coeff *= std::exp(std::complex<double>(-a * remaining, -b * remaining));
  }
  return coeff;
}

double LayeredMedium::total_loss_db(double freq_hz) const {
  const double mag = std::abs(field_transfer(freq_hz));
  if (mag <= 0.0) return 300.0;  // effectively opaque
  return -amplitude_to_db(mag);
}

const Medium& LayeredMedium::medium_at_depth(double depth_m) const {
  assert(!layers_.empty());
  double cursor = 0.0;
  for (const auto& layer : layers_) {
    cursor += layer.thickness_m;
    if (depth_m <= cursor) return layer.medium;
  }
  return layers_.back().medium;
}

LayeredMedium swine_gastric_stack() {
  // Thicknesses for an ~85 kg Yorkshire pig abdomen (ventral approach).
  LayeredMedium stack(media::air());
  stack.add_layer(media::skin(), 0.004)
      .add_layer(media::fat(), 0.025)
      .add_layer(media::muscle(), 0.020)
      .add_layer(media::stomach_wall(), 0.006)
      .add_layer(media::stomach_contents(), 0.030);
  return stack;
}

LayeredMedium swine_subcutaneous_stack() {
  LayeredMedium stack(media::air());
  stack.add_layer(media::skin(), 0.004).add_layer(media::fat(), 0.004);
  return stack;
}

}  // namespace ivnet
