// Layered media stacks — the inhomogeneous in-vivo channel of Sec. 3.1
// ("signals traverse different media, including multiple layers of tissues").
//
// A LayeredMedium is an ordered list of (medium, thickness) slabs the wave
// crosses after leaving an outer medium (normally air). The stack yields a
// single complex field transfer coefficient: the product of the boundary
// transmissions and the complex propagation factors e^{-(alpha + j*beta)*d}
// of each slab. This is the Eq. 2 model generalized to multiple layers.
#pragma once

#include <complex>
#include <vector>

#include "ivnet/media/medium.hpp"

namespace ivnet {

/// One slab of a layered stack.
struct Layer {
  Medium medium;
  double thickness_m = 0.0;
};

/// An ordered stack of slabs entered from `outer` (typically air).
class LayeredMedium {
 public:
  explicit LayeredMedium(Medium outer = media::air());

  /// Append a slab to the far end of the stack.
  LayeredMedium& add_layer(Medium medium, double thickness_m);

  const Medium& outer() const { return outer_; }
  const std::vector<Layer>& layers() const { return layers_; }

  /// Total geometric thickness of all slabs [m].
  double total_thickness_m() const;

  /// Complex field transfer coefficient through the full stack at `freq_hz`:
  /// product of boundary transmissions (outer->1, 1->2, ...) and in-slab
  /// propagation e^{-(alpha + j*beta)*d}. |coefficient| <= 1 for passive media.
  std::complex<double> field_transfer(double freq_hz) const;

  /// Field transfer up to depth `depth_m` measured from the first boundary;
  /// a partial traversal ending inside a slab. Depth beyond the stack
  /// continues in the final slab's medium.
  std::complex<double> field_transfer_at_depth(double freq_hz,
                                               double depth_m) const;

  /// Total power loss through the full stack [dB] (positive).
  double total_loss_db(double freq_hz) const;

  /// The medium found at `depth_m` from the first boundary (the last slab's
  /// medium if depth exceeds the stack).
  const Medium& medium_at_depth(double depth_m) const;

 private:
  Medium outer_;
  std::vector<Layer> layers_;
};

/// Swine abdominal stack used by the in-vivo scenario (Sec. 6.2): skin, fat,
/// muscle, stomach wall, then gastric contents.
LayeredMedium swine_gastric_stack();

/// Subcutaneous placement: just skin over a thin fat layer.
LayeredMedium swine_subcutaneous_stack();

}  // namespace ivnet
