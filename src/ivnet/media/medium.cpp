#include "ivnet/media/medium.hpp"

#include <cassert>
#include <cmath>
#include <utility>

#include "ivnet/common/units.hpp"

namespace ivnet {

Medium::Medium(std::string name, double eps_r, double sigma_s_per_m)
    : name_(std::move(name)), eps_r_(eps_r), sigma_(sigma_s_per_m) {
  assert(eps_r_ >= 1.0);
  assert(sigma_ >= 0.0);
}

double Medium::loss_tangent(double freq_hz) const {
  const double w = angular_frequency(freq_hz);
  return sigma_ / (w * eps_r_ * kEpsilon0);
}

double Medium::alpha(double freq_hz) const {
  const double w = angular_frequency(freq_hz);
  const double eps = eps_r_ * kEpsilon0;
  const double lt = loss_tangent(freq_hz);
  return w * std::sqrt(kMu0 * eps / 2.0 * (std::sqrt(1.0 + lt * lt) - 1.0));
}

double Medium::beta(double freq_hz) const {
  const double w = angular_frequency(freq_hz);
  const double eps = eps_r_ * kEpsilon0;
  const double lt = loss_tangent(freq_hz);
  return w * std::sqrt(kMu0 * eps / 2.0 * (std::sqrt(1.0 + lt * lt) + 1.0));
}

std::complex<double> Medium::impedance(double freq_hz) const {
  const double w = angular_frequency(freq_hz);
  const std::complex<double> jw{0.0, w};
  return std::sqrt(jw * kMu0 / (sigma_ + jw * eps_r_ * kEpsilon0));
}

double Medium::wavelength_in(double freq_hz) const {
  return kTwoPi / beta(freq_hz);
}

double Medium::power_loss_db_per_m(double freq_hz) const {
  return 2.0 * alpha(freq_hz) * 10.0 / std::log(10.0);
}

double Medium::power_loss_db_per_cm(double freq_hz) const {
  return power_loss_db_per_m(freq_hz) / 100.0;
}

std::complex<double> boundary_transmission(const Medium& from, const Medium& to,
                                           double freq_hz) {
  const auto eta1 = from.impedance(freq_hz);
  const auto eta2 = to.impedance(freq_hz);
  return 2.0 * eta2 / (eta1 + eta2);
}

double boundary_power_transmittance(const Medium& from, const Medium& to,
                                    double freq_hz) {
  // Poynting flux S = |E|^2 / (2 Re(1/eta*))^-1 ... for a travelling wave,
  // S = |E|^2 * Re(1/eta) / 2. Transmitted fraction:
  //   T = |t|^2 * Re(1/eta2) / Re(1/eta1).
  const auto eta1 = from.impedance(freq_hz);
  const auto eta2 = to.impedance(freq_hz);
  const auto t = boundary_transmission(from, to, freq_hz);
  const double s1 = std::real(1.0 / eta1);
  const double s2 = std::real(1.0 / eta2);
  if (s1 <= 0.0) return 0.0;
  return std::norm(t) * s2 / s1;
}

double boundary_loss_db(const Medium& from, const Medium& to, double freq_hz) {
  return -to_db(boundary_power_transmittance(from, to, freq_hz));
}

namespace media {

// Dielectric parameters near 915 MHz. Tissue values follow the standard
// Gabriel dataset ranges; fluids follow USP simulated-fluid conductivities.
// The resulting attenuation constants fall inside the paper's quoted
// alpha in [13, 80] Np/m and 2.3-6.9 dB/cm power-loss band.
Medium air() { return Medium("air", 1.0, 0.0); }
Medium water() { return Medium("water", 78.0, 0.56); }
Medium gastric_fluid() { return Medium("gastric-fluid", 72.0, 1.30); }
Medium intestinal_fluid() { return Medium("intestinal-fluid", 70.0, 1.60); }
Medium steak() { return Medium("steak", 55.0, 0.95); }
Medium bacon() { return Medium("bacon", 11.0, 0.15); }
Medium chicken() { return Medium("chicken", 52.0, 0.80); }
Medium skin() { return Medium("skin", 41.0, 0.87); }
Medium fat() { return Medium("fat", 5.5, 0.05); }
Medium muscle() { return Medium("muscle", 55.0, 0.95); }
Medium stomach_wall() { return Medium("stomach-wall", 65.0, 1.20); }
Medium stomach_contents() { return Medium("stomach-contents", 72.0, 1.30); }

}  // namespace media
}  // namespace ivnet
