// Dielectric media: the propagation substrate of Sec. 2.2.1.
//
// A medium is characterized by its relative permittivity eps_r and
// conductivity sigma [S/m]. From these we derive, at a given frequency, the
// exact lossy-medium attenuation constant alpha [Np/m], phase constant beta
// [rad/m], and complex wave impedance eta [ohm]:
//
//   alpha = w * sqrt(mu*eps/2 * (sqrt(1 + (sigma/(w*eps))^2) - 1))
//   beta  = w * sqrt(mu*eps/2 * (sqrt(1 + (sigma/(w*eps))^2) + 1))
//   eta   = sqrt(j*w*mu / (sigma + j*w*eps))
//
// The paper quotes tissue losses of 2.3-6.9 dB/cm at low-GHz (alpha between
// 13 and 80 Np/m per [39]) and 3-5 dB of air-tissue boundary loss; the preset
// parameters below land in those ranges at 915 MHz.
#pragma once

#include <complex>
#include <string>

namespace ivnet {

/// A homogeneous, non-magnetic, lossy dielectric medium.
class Medium {
 public:
  Medium(std::string name, double eps_r, double sigma_s_per_m);

  const std::string& name() const { return name_; }
  double eps_r() const { return eps_r_; }
  double sigma() const { return sigma_; }

  /// Attenuation constant alpha [Np/m] at `freq_hz` (field decays e^{-alpha d}).
  double alpha(double freq_hz) const;

  /// Phase constant beta [rad/m] at `freq_hz`.
  double beta(double freq_hz) const;

  /// Complex intrinsic wave impedance [ohm] at `freq_hz`.
  std::complex<double> impedance(double freq_hz) const;

  /// Wavelength inside the medium [m] (2*pi / beta).
  double wavelength_in(double freq_hz) const;

  /// Power loss rate [dB/m]. Power decays as e^{-2*alpha*d}, so this is
  /// 2 * alpha * 10*log10(e) = 8.686 * alpha dB/m.
  double power_loss_db_per_m(double freq_hz) const;

  /// Convenience: power loss in dB/cm, the unit Sec. 2.2.1 quotes.
  double power_loss_db_per_cm(double freq_hz) const;

  /// Loss tangent sigma / (w * eps) at `freq_hz`.
  double loss_tangent(double freq_hz) const;

 private:
  std::string name_;
  double eps_r_;
  double sigma_;
};

/// Field (amplitude) transmission coefficient t = 2*eta2 / (eta1 + eta2) for
/// a normal-incidence boundary crossing from `from` into `to` at `freq_hz`.
std::complex<double> boundary_transmission(const Medium& from, const Medium& to,
                                           double freq_hz);

/// Fraction of incident POWER transmitted across the boundary (Poynting-flux
/// ratio), in [0, 1].
double boundary_power_transmittance(const Medium& from, const Medium& to,
                                    double freq_hz);

/// Boundary power loss in dB (positive number). The paper quotes 3-5 dB for
/// air -> tissue around 1 GHz.
double boundary_loss_db(const Medium& from, const Medium& to, double freq_hz);

// --- Presets (parameters at ~915 MHz, from standard tissue dielectric data
// --- and the simulated-fluid recipes the paper evaluates; Sec. 6.1.1(c)).
namespace media {
Medium air();
Medium water();             ///< Tap-grade water (tank experiments, Fig. 7/13).
Medium gastric_fluid();     ///< USP simulated gastric fluid.
Medium intestinal_fluid();  ///< USP simulated intestinal fluid.
Medium steak();             ///< Bovine muscle.
Medium bacon();             ///< Pork belly (fat-dominated).
Medium chicken();           ///< Chicken breast.
Medium skin();
Medium fat();
Medium muscle();
Medium stomach_wall();
Medium stomach_contents();
}  // namespace media

}  // namespace ivnet
