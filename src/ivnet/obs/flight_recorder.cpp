#include "ivnet/obs/flight_recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>

namespace ivnet::obs {
namespace {

// ---------------------------------------------------------------------------
// Async-signal-safe building blocks. Everything the dump path touches must
// avoid malloc, stdio, and locks: the crash handler runs on a corrupted
// process.

/// Write v as decimal into buf (no terminator), return the length.
std::size_t u64_to_dec(std::uint64_t v, char* buf) {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + (v % 10));
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

/// Byte sink: appends to a std::string (normal dumps) or write(2)s to a
/// descriptor (signal dumps). Function-pointer based so the emitter itself
/// stays allocation-free.
struct Sink {
  bool (*put)(Sink&, const char*, std::size_t);
  void* target = nullptr;
  int fd = -1;
  long written = 0;
  bool failed = false;
};

bool string_put(Sink& s, const char* data, std::size_t len) {
  static_cast<std::string*>(s.target)->append(data, len);
  s.written += static_cast<long>(len);
  return true;
}

bool fd_put(Sink& s, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(s.fd, data, len);
    if (n < 0) {
      s.failed = true;
      return false;
    }
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
    s.written += n;
  }
  return true;
}

bool put_str(Sink& s, const char* text) {
  return s.put(s, text, std::strlen(text));
}

bool put_u64(Sink& s, std::uint64_t v) {
  char buf[20];
  const std::size_t n = u64_to_dec(v, buf);
  return s.put(s, buf, n);
}

constexpr std::uint8_t kMaxEventKind =
    static_cast<std::uint8_t>(FlightEvent::kAnomaly);

/// One trace_event entry. `first` tracks the leading comma.
bool emit_event(Sink& s, bool& first, std::size_t ring, std::uint64_t t_us,
                std::uint64_t kind_raw, std::uint64_t id, std::uint64_t arg) {
  if (kind_raw > kMaxEventKind) return true;  // torn slot: skip, keep going
  const auto kind = static_cast<FlightEvent>(kind_raw);
  if (!first && !put_str(s, ",")) return false;
  first = false;
  put_str(s, "{\"name\":\"");
  put_str(s, flight_event_name(kind));
  if (kind == FlightEvent::kStageEnter || kind == FlightEvent::kStageExit) {
    put_u64(s, arg);  // "stage0", "stage1", ... so spans pair up by name
  }
  put_str(s, "\",\"ph\":\"");
  switch (kind) {
    case FlightEvent::kStageEnter:
      put_str(s, "B");
      break;
    case FlightEvent::kStageExit:
      put_str(s, "E");
      break;
    default:
      put_str(s, "i\",\"s\":\"t");
      break;
  }
  put_str(s, "\",\"ts\":");
  put_u64(s, t_us);
  put_str(s, ",\"pid\":0,\"tid\":");
  put_u64(s, ring);
  put_str(s, ",\"args\":{\"id\":");
  put_u64(s, id);
  put_str(s, ",\"arg\":");
  put_u64(s, arg);
  return put_str(s, "}}");
}

// ---------------------------------------------------------------------------
// Crash-handler statics. The recorder pointer is swapped atomically; the
// path lives in a fixed buffer so the handler never touches the heap.

std::atomic<const FlightRecorder*> g_crash_recorder{nullptr};
char g_crash_path[512] = {0};
bool g_handlers_installed = false;

void crash_handler(int signo) {
  const FlightRecorder* recorder =
      g_crash_recorder.load(std::memory_order_acquire);
  if (recorder != nullptr && g_crash_path[0] != '\0') {
    const int fd = ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      recorder->dump_to_fd(fd);
      ::close(fd);
    }
  }
  // SA_RESETHAND already restored the default disposition; re-raise so the
  // process still dies with the original signal's status.
  ::raise(signo);
}

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

const char* flight_event_name(FlightEvent kind) {
  switch (kind) {
    case FlightEvent::kEnqueue:
      return "enqueue";
    case FlightEvent::kDequeue:
      return "dequeue";
    case FlightEvent::kStageEnter:
    case FlightEvent::kStageExit:
      return "stage";
    case FlightEvent::kShed:
      return "shed";
    case FlightEvent::kBrownout:
      return "brownout";
    case FlightEvent::kRetry:
      return "retry";
    case FlightEvent::kAnomaly:
      return "anomaly";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t rings, std::size_t slots_per_ring)
    : slots_per_ring_(round_up_pow2(std::max<std::size_t>(2, slots_per_ring))),
      mask_(slots_per_ring_ - 1),
      rings_(std::max<std::size_t>(1, rings)) {
  for (Ring& ring : rings_) {
    ring.slots = std::make_unique<Slot[]>(slots_per_ring_);
  }
}

void FlightRecorder::record(std::size_t ring_index, FlightEvent kind,
                            double t_s, std::uint64_t id, std::uint64_t arg) {
  if (ring_index >= rings_.size()) ring_index = rings_.size() - 1;
  Ring& ring = rings_[ring_index];
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[head & mask_];
  const double clamped = t_s > 0.0 ? t_s : 0.0;
  slot.t_us.store(static_cast<std::uint64_t>(clamped * 1e6),
                  std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint64_t>(kind), std::memory_order_relaxed);
  slot.id.store(id, std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  ring.head.store(head + 1, std::memory_order_release);
}

std::string FlightRecorder::dump_json() const {
  std::string out;
  Sink sink;
  sink.put = string_put;
  sink.target = &out;
  put_str(sink, "{\"traceEvents\":[");
  bool first = true;
  for (std::size_t r = 0; r < rings_.size(); ++r) {
    const Ring& ring = rings_[r];
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    const std::uint64_t retained = std::min<std::uint64_t>(head, slots_per_ring_);
    for (std::uint64_t k = head - retained; k < head; ++k) {
      const Slot& slot = ring.slots[k & mask_];
      emit_event(sink, first, r, slot.t_us.load(std::memory_order_relaxed),
                 slot.kind.load(std::memory_order_relaxed),
                 slot.id.load(std::memory_order_relaxed),
                 slot.arg.load(std::memory_order_relaxed));
    }
  }
  put_str(sink, "]}");
  return out;
}

long FlightRecorder::dump_to_fd(int fd) const {
  Sink sink;
  sink.put = fd_put;
  sink.fd = fd;
  if (!put_str(sink, "{\"traceEvents\":[")) return -1;
  bool first = true;
  for (std::size_t r = 0; r < rings_.size(); ++r) {
    const Ring& ring = rings_[r];
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    const std::uint64_t retained = std::min<std::uint64_t>(head, slots_per_ring_);
    for (std::uint64_t k = head - retained; k < head; ++k) {
      const Slot& slot = ring.slots[k & mask_];
      if (!emit_event(sink, first, r,
                      slot.t_us.load(std::memory_order_relaxed),
                      slot.kind.load(std::memory_order_relaxed),
                      slot.id.load(std::memory_order_relaxed),
                      slot.arg.load(std::memory_order_relaxed))) {
        return -1;
      }
    }
  }
  if (!put_str(sink, "]}")) return -1;
  return sink.written;
}

std::uint64_t FlightRecorder::total_events() const {
  std::uint64_t total = 0;
  for (const Ring& ring : rings_) {
    total += ring.head.load(std::memory_order_acquire);
  }
  return total;
}

void FlightRecorder::install_crash_handler(const FlightRecorder* recorder,
                                           const char* path) {
  if (path != nullptr) {
    const std::size_t len =
        std::min(std::strlen(path), sizeof(g_crash_path) - 1);
    std::memcpy(g_crash_path, path, len);
    g_crash_path[len] = '\0';
  } else {
    g_crash_path[0] = '\0';
  }
  g_crash_recorder.store(recorder, std::memory_order_release);
  if (recorder == nullptr || g_handlers_installed) return;
  g_handlers_installed = true;
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = crash_handler;
  sigemptyset(&action.sa_mask);
  // One shot: the handler dumps, then the re-raise hits the restored
  // default disposition. Avoids recursing if the dump itself faults.
  action.sa_flags = SA_RESETHAND;
  for (const int signo : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    ::sigaction(signo, &action, nullptr);
  }
}

}  // namespace ivnet::obs
