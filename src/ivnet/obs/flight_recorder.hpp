// Flight recorder: a lock-free per-worker ring of fixed-size binary events
// that is cheap enough to leave on in production and rich enough to
// reconstruct the last few thousand scheduling decisions after an incident.
//
// Design:
//  - One ring per worker thread (plus ring 0 for the submitter), each a
//    power-of-two array of 32-byte slots. A slot is four std::atomic
//    u64 fields written with relaxed stores by its ring's single writer;
//    the ring head is published with a release store after the slot is
//    complete. Readers acquire-load the head and walk backwards. A dump
//    racing a wrapping writer can observe a torn slot — acceptable for
//    forensics (at most the oldest retained event per ring), and every
//    access is atomic so the recorder is TSan-clean by construction.
//  - Recording is 5 relaxed atomic stores + 1 release store; there is no
//    branch on "is anyone listening" beyond the facade's null check.
//  - Dumps are Chrome trace_event JSON ("chrome://tracing", Perfetto):
//    stage enter/exit become ph "B"/"E" duration events, everything else
//    instants (ph "i"). dump_json() is the convenient path; dump_to_fd()
//    is async-signal-safe (no malloc, no stdio — manual integer
//    formatting and raw write(2)) so the fatal-signal handler can use it.
//  - install_crash_handler() points SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL
//    at a handler that opens a configured path, dumps, and re-raises with
//    the default disposition (SA_RESETHAND), preserving the crash status.
//
// Timestamps are caller-supplied seconds on the same clock the telemetry
// layer uses (wall since service epoch, or sim time), emitted as integer
// microseconds — the unit Chrome trace viewers expect.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ivnet::obs {

enum class FlightEvent : std::uint8_t {
  kEnqueue = 0,
  kDequeue = 1,
  kStageEnter = 2,
  kStageExit = 3,
  kShed = 4,
  kBrownout = 5,
  kRetry = 6,
  kAnomaly = 7,
};

/// Human-readable event name ("enqueue", "stage", ...). Returns a static
/// string; safe to call from a signal handler.
const char* flight_event_name(FlightEvent kind);

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultSlotsPerRing = 4096;

  /// `rings` is the number of independent writers (workers + 1 for the
  /// submit path is the service convention). `slots_per_ring` is rounded
  /// up to a power of two; memory is fixed at construction.
  explicit FlightRecorder(std::size_t rings,
                          std::size_t slots_per_ring = kDefaultSlotsPerRing);

  /// Record one event on `ring`. Single-writer per ring: only one thread
  /// may record on a given ring (readers may run concurrently on any
  /// thread). `id` is the request id; `arg` is event-specific (stage
  /// index for kStageEnter/kStageExit, retry count for kRetry, ...).
  void record(std::size_t ring, FlightEvent kind, double t_s,
              std::uint64_t id, std::uint64_t arg = 0);

  /// Chrome trace_event JSON: {"traceEvents":[...]} with one entry per
  /// retained event, tid = ring index. Safe to call concurrently with
  /// writers (see the torn-slot caveat above).
  std::string dump_json() const;

  /// Async-signal-safe dump of the same document to an open descriptor.
  /// Uses only write(2) and stack buffers. Returns bytes written, or -1
  /// on the first write error.
  long dump_to_fd(int fd) const;

  /// Total events ever recorded across all rings.
  std::uint64_t total_events() const;

  std::size_t rings() const { return rings_.size(); }
  std::size_t slots_per_ring() const { return slots_per_ring_; }

  /// Install a fatal-signal handler (SIGSEGV, SIGABRT, SIGBUS, SIGFPE,
  /// SIGILL) that dumps `recorder` to `path` and re-raises. The pointer
  /// and a copy of the path live in static storage; passing nullptr
  /// disarms the dump (handlers stay installed but become pass-through).
  /// `recorder` must outlive any crash. Not reentrant with itself.
  static void install_crash_handler(const FlightRecorder* recorder,
                                    const char* path);

 private:
  // 4 x u64 = 32 bytes: timestamp (microseconds), kind, id, arg.
  struct Slot {
    std::atomic<std::uint64_t> t_us{0};
    std::atomic<std::uint64_t> kind{0};
    std::atomic<std::uint64_t> id{0};
    std::atomic<std::uint64_t> arg{0};
  };
  struct Ring {
    std::unique_ptr<Slot[]> slots;
    std::atomic<std::uint64_t> head{0};  // events ever written to this ring
  };

  std::size_t slots_per_ring_;
  std::size_t mask_;
  std::vector<Ring> rings_;
};

}  // namespace ivnet::obs
