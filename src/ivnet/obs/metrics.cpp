#include "ivnet/obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "ivnet/common/json.hpp"

namespace ivnet::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1, 0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  std::lock_guard<std::mutex> lock(mutex_);
  ++counts_[bucket];
  ++count_;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

Histogram::View Histogram::view() const {
  std::lock_guard<std::mutex> lock(mutex_);
  View v;
  v.count = count_;
  v.min = min_;
  v.max = max_;
  v.counts = counts_;
  return v;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_;
}

double Histogram::quantile_of(const View& view, std::span<const double> bounds,
                              double q) {
  if (view.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Walk the cumulative counts to the bucket holding rank q*count, then
  // interpolate linearly inside it. The first bucket's lower edge is the
  // observed min and the overflow bucket's upper edge is the observed max,
  // so single-bucket histograms still report sensible quantiles.
  const double rank = q * static_cast<double>(view.count);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < view.counts.size(); ++b) {
    if (view.counts[b] == 0) continue;
    const double cum_before = static_cast<double>(cum);
    cum += view.counts[b];
    if (static_cast<double>(cum) < rank) continue;
    const double lo =
        b == 0 ? view.min : std::max(view.min, bounds[b - 1]);
    const double hi = b == view.counts.size() - 1
                          ? view.max
                          : std::min(view.max, bounds[b]);
    const double frac =
        (rank - cum_before) / static_cast<double>(view.counts[b]);
    return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
  }
  return view.max;
}

std::vector<double> Histogram::default_bounds() {
  // 1-2-5 ladder over 10^-6 .. 10^4: microsecond spans to multi-kilo
  // counts/voltages without per-metric tuning.
  return exponential_bounds(1e-6, 1e4);
}

std::vector<double> Histogram::linear_bounds(double lo, double hi,
                                             std::size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    bounds.push_back(lo + (hi - lo) * static_cast<double>(i + 1) /
                              static_cast<double>(n));
  }
  return bounds;
}

std::vector<double> Histogram::exponential_bounds(double lo, double hi,
                                                  std::size_t per_decade) {
  assert(lo > 0.0 && hi > lo);
  // 1-2-5 for the canonical 3/decade; even decimation otherwise.
  static constexpr double k125[] = {1.0, 2.0, 5.0};
  std::vector<double> bounds;
  const int lo_exp = static_cast<int>(std::floor(std::log10(lo) + 1e-9));
  const int hi_exp = static_cast<int>(std::ceil(std::log10(hi) - 1e-9));
  for (int e = lo_exp; e < hi_exp; ++e) {
    for (std::size_t k = 0; k < per_decade; ++k) {
      const double mantissa =
          per_decade == 3
              ? k125[k]
              : std::pow(10.0, static_cast<double>(k) /
                                   static_cast<double>(per_decade));
      const double v = mantissa * std::pow(10.0, e);
      if (v >= lo && v <= hi) bounds.push_back(v);
    }
  }
  bounds.push_back(hi);
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  return bounds;
}

StreamingQuantile::StreamingQuantile(double q) : q_(std::clamp(q, 0.0, 1.0)) {
  for (int i = 0; i < 5; ++i) {
    heights_[i] = 0.0;
    positions_[i] = static_cast<double>(i + 1);
  }
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q_;
  desired_[2] = 1.0 + 4.0 * q_;
  desired_[3] = 3.0 + 2.0 * q_;
  desired_[4] = 5.0;
  increments_[0] = 0.0;
  increments_[1] = q_ / 2.0;
  increments_[2] = q_;
  increments_[3] = (1.0 + q_) / 2.0;
  increments_[4] = 1.0;
}

void StreamingQuantile::observe(double value) {
  if (count_ < 5) {
    heights_[count_++] = value;
    if (count_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }
  ++count_;

  // Locate the cell and stretch the extreme markers if needed.
  int k;
  if (value < heights_[0]) {
    heights_[0] = value;
    k = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = value;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && value >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Nudge the three interior markers toward their desired positions with
  // the piecewise-parabolic (P^2) update, falling back to linear when the
  // parabola would cross a neighbour.
  for (int i = 1; i <= 3; ++i) {
    const double offset = desired_[i] - positions_[i];
    if (!((offset >= 1.0 && positions_[i + 1] - positions_[i] > 1.0) ||
          (offset <= -1.0 && positions_[i - 1] - positions_[i] < -1.0))) {
      continue;
    }
    const double d = offset >= 1.0 ? 1.0 : -1.0;
    const double candidate =
        heights_[i] +
        d / (positions_[i + 1] - positions_[i - 1]) *
            ((positions_[i] - positions_[i - 1] + d) *
                 (heights_[i + 1] - heights_[i]) /
                 (positions_[i + 1] - positions_[i]) +
             (positions_[i + 1] - positions_[i] - d) *
                 (heights_[i] - heights_[i - 1]) /
                 (positions_[i] - positions_[i - 1]));
    if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
      heights_[i] = candidate;
    } else {
      const int j = d > 0.0 ? i + 1 : i - 1;
      heights_[i] += d * (heights_[j] - heights_[i]) /
                     (positions_[j] - positions_[i]);
    }
    positions_[i] += d;
  }
}

double StreamingQuantile::estimate() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile on the sorted prefix.
    double sorted[5];
    std::copy(heights_, heights_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const double rank = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min<std::size_t>(lo + 1, count_ - 1);
    return sorted[lo] + (rank - static_cast<double>(lo)) *
                            (sorted[hi] - sorted[lo]);
  }
  return heights_[2];
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  std::vector<double> b = bounds.empty()
                              ? Histogram::default_bounds()
                              : std::vector<double>(bounds.begin(), bounds.end());
  return *histograms_
              .emplace(std::string(name),
                       std::make_unique<Histogram>(std::move(b)))
              .first->second;
}

std::string MetricsRegistry::snapshot_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) {
    w.key(name).value(static_cast<std::size_t>(c->value()));
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.key(name).value(g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    // One coherent view per histogram: count, min/max, quantiles, and
    // bucket rows all derive from the same frozen copy, so a snapshot taken
    // while workers are still observing can never report a count that
    // disagrees with its bucket sums (obs_test pins this under TSan).
    const Histogram::View view = h->view();
    const auto& bounds = h->bounds();
    w.key(name).begin_object();
    w.field("count", static_cast<std::size_t>(view.count));
    if (view.count > 0) {
      w.field("min", view.min);
      w.field("max", view.max);
      w.field("p50", Histogram::quantile_of(view, bounds, 0.50));
      w.field("p90", Histogram::quantile_of(view, bounds, 0.90));
      w.field("p99", Histogram::quantile_of(view, bounds, 0.99));
    }
    // Only non-empty buckets: snapshots stay compact and adding ladder
    // rungs later cannot silently reshape every export.
    w.key("buckets").begin_array();
    for (std::size_t b = 0; b < view.counts.size(); ++b) {
      if (view.counts[b] == 0) continue;
      w.begin_object();
      if (b < bounds.size()) {
        w.field("le", bounds[b]);
      } else {
        w.key("le").value("inf");
      }
      w.field("count", static_cast<std::size_t>(view.counts[b]));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace ivnet::obs
