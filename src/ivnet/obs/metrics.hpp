// Thread-safe metrics registry: counters, gauges, and histograms the
// telemetry hooks across the CIB/link/sweep stack record into.
//
// Design constraints, in priority order:
//
//   1. Determinism. A snapshot must be BYTE-stable for any thread count:
//      counters are integer adds (order-free), histograms export bucket
//      counts and min/max (order-free) plus quantiles interpolated from the
//      buckets (a pure function of the counts). Nothing in the snapshot is
//      an order-dependent float accumulation, so the determinism suite can
//      pin snapshot JSON across 1/2/8-thread pools.
//   2. Cheap when observed, free when not. The hook layer (obs/obs.hpp)
//      checks a single atomic pointer before touching the registry, so a
//      null sink costs one relaxed load per hook site.
//   3. Stable iteration. Metrics snapshot in lexicographic name order, and
//      the JSON emitter (common/json) writes fields in a fixed order.
//
// The P^2 streaming-quantile estimator lives here too: it tracks an
// arbitrary quantile of an unbounded stream in O(1) memory, but its state
// depends on observation ORDER, so it is a single-stream tool (per-session
// analysis, post-processing) — registry histograms stay fixed-bucket.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ivnet::obs {

/// Monotonic event count. Lock-free; safe from any thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (thread counts, best scores, config echoes).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: counts per upper bound plus an overflow bucket,
/// with exact min/max. Everything exported is order-independent, so the
/// snapshot is byte-stable no matter how observations interleave.
class Histogram {
 public:
  /// `bounds` are strictly increasing bucket upper bounds; values land in
  /// the first bucket whose bound is >= value, else in the overflow bucket.
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  /// Atomically-consistent copy of the histogram state: the bucket counts,
  /// total count, and min/max all reflect the SAME instant. This is the
  /// only way to read multiple fields coherently while writers are active —
  /// separate count()/min()/quantile() calls each take the lock on their
  /// own and can interleave with observes in between (a snapshot assembled
  /// from them may report a count that disagrees with its bucket sums).
  struct View {
    std::uint64_t count = 0;
    double min = 0.0;  ///< +inf when empty
    double max = 0.0;  ///< -inf when empty
    std::vector<std::uint64_t> counts;  // bounds.size() + 1, last = overflow
  };
  View view() const;  ///< one lock acquisition for the whole copy

  std::uint64_t count() const;
  double min() const;  ///< +inf when empty
  double max() const;  ///< -inf when empty

  /// Quantile q in [0, 1] interpolated linearly inside the owning bucket
  /// (first/overflow buckets interpolate against the observed min/max).
  /// A pure function of the bucket counts — deterministic across threads.
  double quantile(double q) const { return quantile_of(view(), bounds_, q); }

  /// The quantile computation on a frozen view: pure, lock-free. Use this
  /// (with one view()) when reading several quantiles of a live histogram.
  static double quantile_of(const View& view, std::span<const double> bounds,
                            double q);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Bucket counts; size() == bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;

  /// 1-2-5 per decade from 10^lo_exp to 10^hi_exp — the default bucket
  /// ladder for durations [s] and voltages, wide enough for both.
  static std::vector<double> default_bounds();
  static std::vector<double> linear_bounds(double lo, double hi, std::size_t n);
  static std::vector<double> exponential_bounds(double lo, double hi,
                                                std::size_t per_decade = 3);

 private:
  std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1, guarded by mutex_
  std::uint64_t count_ = 0;            // guarded by mutex_
  double min_;                         // guarded by mutex_
  double max_;                         // guarded by mutex_
};

/// P^2 single-quantile estimator (Jain & Chlamtac 1985): tracks quantile
/// `q` of a stream in O(1) memory with parabolic marker adjustment. State
/// depends on observation order — use on single streams, not from the
/// parallel trial loops (the registry's Histogram is the order-free tool).
class StreamingQuantile {
 public:
  explicit StreamingQuantile(double q);

  void observe(double value);
  std::uint64_t count() const { return count_; }

  /// Current estimate: exact below 5 observations, P^2 marker above.
  double estimate() const;

 private:
  double q_;
  std::uint64_t count_ = 0;
  double heights_[5];    // marker heights
  double positions_[5];  // actual marker positions (1-based)
  double desired_[5];    // desired marker positions
  double increments_[5];
};

/// One name -> metric store with deterministic (lexicographic) snapshot
/// ordering and byte-stable JSON export. Lookup is mutex-guarded; returned
/// references stay valid for the registry's lifetime (node-based map).
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First creation fixes the bucket bounds; later callers get the existing
  /// histogram regardless of `bounds`. Empty bounds = default ladder.
  Histogram& histogram(std::string_view name,
                       std::span<const double> bounds = {});

  /// {"counters":{...},"gauges":{...},"histograms":{...}} — names sorted,
  /// field order fixed, doubles via the common/json formatter. Byte-equal
  /// for equal metric contents.
  std::string snapshot_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace ivnet::obs
