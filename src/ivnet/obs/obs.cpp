#include "ivnet/obs/obs.hpp"

namespace ivnet::obs {
namespace detail {

std::atomic<MetricsRegistry*> g_metrics{nullptr};
std::atomic<Tracer*> g_tracer{nullptr};

}  // namespace detail

void install(Sink sink) {
  detail::g_metrics.store(sink.metrics, std::memory_order_release);
  detail::g_tracer.store(sink.tracer, std::memory_order_release);
}

void install_null() { install(Sink{}); }

}  // namespace ivnet::obs
