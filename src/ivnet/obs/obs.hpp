// The telemetry sink facade: the one header the instrumented layers
// include. A sink is a (MetricsRegistry*, Tracer*) pair installed globally;
// every hook below checks an atomic pointer and compiles down to a single
// relaxed load + branch when no sink is installed (the null sink), so the
// hot paths pay nothing for the instrumentation they carry.
//
// Ownership: the sink does NOT own the registry or tracer — the installer
// (CLI, bench, test) keeps them alive and must uninstall (install_null)
// before destroying them. Hooks never allocate when the sink is null.
//
// Determinism: counters and histogram observations made from the parallel
// trial loops record order-free quantities (see obs/metrics.hpp), and sim-
// time trace events order by per-trial track (ScopedTrack), so snapshots
// and sim traces are byte-stable across thread counts. Wall-clock spans
// (ScopedSpan) are profiling data and are only emitted in wall-clock mode.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string_view>

#include "ivnet/obs/metrics.hpp"
#include "ivnet/obs/trace.hpp"

namespace ivnet::obs {

struct Sink {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
};

/// Install the global sink (either pointer may be null). Safe to call while
/// instrumented work is running: the pointers are published with a release
/// store and every hook reads them with an acquire load, so a hook that
/// observes the new sink also observes the fully-constructed registry and
/// tracer behind it. Hooks racing the install see either the old sink or
/// the new one, never a half-built object.
void install(Sink sink);

/// Remove the sink: every hook becomes a no-op again.
void install_null();

namespace detail {
extern std::atomic<MetricsRegistry*> g_metrics;
extern std::atomic<Tracer*> g_tracer;
}  // namespace detail

inline MetricsRegistry* metrics() {
  return detail::g_metrics.load(std::memory_order_acquire);
}

inline Tracer* tracer() {
  return detail::g_tracer.load(std::memory_order_acquire);
}

// --- Metric hooks (no-ops when no registry is installed) -----------------

inline void count(std::string_view name, std::uint64_t n = 1) {
  if (MetricsRegistry* m = metrics()) m->counter(name).add(n);
}

inline void gauge_set(std::string_view name, double value) {
  if (MetricsRegistry* m = metrics()) m->gauge(name).set(value);
}

inline void observe(std::string_view name, double value,
                    std::span<const double> bounds = {}) {
  if (MetricsRegistry* m = metrics()) m->histogram(name, bounds).observe(value);
}

// --- Trace hooks ---------------------------------------------------------

/// Simulated-time span/instant on the calling thread's current track.
/// No-ops without a tracer or when the tracer runs on the wall clock.
inline void sim_span(std::string_view name, std::string_view cat, double t0_s,
                     double t1_s) {
  if (Tracer* t = tracer()) t->sim_span(name, cat, t0_s, t1_s);
}

inline void sim_instant(std::string_view name, std::string_view cat,
                        double t_s) {
  if (Tracer* t = tracer()) t->sim_instant(name, cat, t_s);
}

/// RAII wall-clock span: records [construction, destruction) against the
/// installed tracer. Inert when no tracer is installed or the tracer runs
/// on simulated time. `name`/`cat` must outlive the scope (string
/// literals at every call site).
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat) : name_(name), cat_(cat) {
    Tracer* t = tracer();
    if (t != nullptr && t->clock() == TraceClock::kWall) {
      tracer_ = t;
      t0_us_ = t->now_us();
    }
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->wall_span(name_, cat_, t0_us_, tracer_->now_us() - t0_us_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  Tracer* tracer_ = nullptr;
  double t0_us_ = 0.0;
};

/// Installs a sim-time track for the duration of one trial: sim events
/// emitted underneath land on track `track` with a fresh sequence counter,
/// and the previous track state is restored on exit. Give each trial of a
/// sweep a UNIQUE track id (e.g. cell_index * trials + trial) — the
/// byte-stable trace ordering relies on (track, seq) being collision-free.
class ScopedTrack {
 public:
  explicit ScopedTrack(std::uint32_t track)
      : prev_track_(detail::current_sim_track()),
        prev_seq_(detail::current_sim_seq()) {
    detail::set_sim_track(track, 0);
  }
  ~ScopedTrack() { detail::set_sim_track(prev_track_, prev_seq_); }
  ScopedTrack(const ScopedTrack&) = delete;
  ScopedTrack& operator=(const ScopedTrack&) = delete;

 private:
  std::uint32_t prev_track_;
  std::uint64_t prev_seq_;
};

}  // namespace ivnet::obs
