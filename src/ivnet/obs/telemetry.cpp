#include "ivnet/obs/telemetry.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "ivnet/common/json.hpp"

namespace ivnet::obs {
namespace {

/// The epoch covering t_s. Negative times clamp to epoch 0 so a caller
/// feeding "seconds since service start" can never rotate backwards past
/// the origin.
std::int64_t epoch_index(double t_s, double epoch_s) {
  if (!(t_s > 0.0)) return 0;
  return static_cast<std::int64_t>(t_s / epoch_s);
}

/// Anchor epoch for a trailing window ending at now_s: the epoch covering
/// now_s — except that an exact epoch boundary anchors to the epoch that
/// just closed, since the window (now - W, now] contains none of the new
/// epoch's interior. Keeps grid-aligned samplers (t = k * interval) seeing
/// the epoch they just finished instead of an empty fresh one.
std::int64_t query_epoch(double now_s, double epoch_s) {
  std::int64_t e = epoch_index(now_s, epoch_s);
  // e = floor(now/epoch) implies now >= e*epoch; equality iff boundary.
  if (e > 0 && now_s <= static_cast<double>(e) * epoch_s) --e;
  return e;
}

/// Number of whole epochs a trailing window of `window_s` covers (>= 1).
std::size_t epochs_in_window(double window_s, double epoch_s,
                             std::size_t ring_size) {
  const double ratio = window_s / epoch_s;
  std::size_t n = static_cast<std::size_t>(std::ceil(ratio - 1e-9));
  n = std::max<std::size_t>(1, n);
  return std::min(n, ring_size);
}

}  // namespace

// ---------------------------------------------------------------------------
// WindowedCounter

WindowedCounter::WindowedCounter(double epoch_s, std::size_t epochs)
    : epoch_s_(epoch_s > 0.0 ? epoch_s : 1.0),
      counts_(std::max<std::size_t>(1, epochs), 0),
      epoch_of_(std::max<std::size_t>(1, epochs), -1) {}

void WindowedCounter::add(double t_s, std::uint64_t n) {
  const std::int64_t e = epoch_index(t_s, epoch_s_);
  std::lock_guard<std::mutex> lock(mutex_);
  latest_epoch_ = std::max(latest_epoch_, e);
  // Older than the retained span: drop (the window it belonged to is gone).
  if (e + static_cast<std::int64_t>(counts_.size()) <= latest_epoch_) return;
  const std::size_t slot =
      static_cast<std::size_t>(e) % counts_.size();
  if (epoch_of_[slot] != e) {
    // Recycle an expired epoch in place. epoch_of_[slot] < e always holds
    // here: a slot can only be occupied by epochs congruent mod ring size,
    // and anything newer would have failed the retention check above.
    epoch_of_[slot] = e;
    counts_[slot] = 0;
  }
  counts_[slot] += n;
}

std::uint64_t WindowedCounter::total_over(double window_s,
                                          double now_s) const {
  const std::int64_t now_epoch = query_epoch(now_s, epoch_s_);
  const std::size_t span = epochs_in_window(window_s, epoch_s_, counts_.size());
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (std::size_t k = 0; k < span; ++k) {
    const std::int64_t e = now_epoch - static_cast<std::int64_t>(k);
    if (e < 0) break;
    const std::size_t slot = static_cast<std::size_t>(e) % counts_.size();
    if (epoch_of_[slot] == e) total += counts_[slot];
  }
  return total;
}

double WindowedCounter::rate_over(double window_s, double now_s) const {
  if (!(window_s > 0.0)) return 0.0;
  return static_cast<double>(total_over(window_s, now_s)) / window_s;
}

// ---------------------------------------------------------------------------
// WindowedHistogram

WindowedHistogram::WindowedHistogram(std::vector<double> bounds,
                                     double epoch_s, std::size_t epochs)
    : bounds_(bounds.empty() ? Histogram::default_bounds()
                             : std::move(bounds)),
      epoch_s_(epoch_s > 0.0 ? epoch_s : 1.0),
      epochs_(std::max<std::size_t>(1, epochs)),
      ring_(epochs_) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void WindowedHistogram::reset_epoch(Epoch& e, std::int64_t epoch) const {
  e.epoch = epoch;
  e.count = 0;
  e.min = std::numeric_limits<double>::infinity();
  e.max = -std::numeric_limits<double>::infinity();
  e.counts.assign(bounds_.size() + 1, 0);
}

void WindowedHistogram::observe(double t_s, double value) {
  const std::int64_t e = epoch_index(t_s, epoch_s_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  std::lock_guard<std::mutex> lock(mutex_);
  latest_epoch_ = std::max(latest_epoch_, e);
  if (e + static_cast<std::int64_t>(epochs_) <= latest_epoch_) return;
  Epoch& slot = ring_[static_cast<std::size_t>(e) % epochs_];
  if (slot.epoch != e) reset_epoch(slot, e);
  ++slot.counts[bucket];
  ++slot.count;
  slot.min = std::min(slot.min, value);
  slot.max = std::max(slot.max, value);
}

Histogram::View WindowedHistogram::view_over(double window_s,
                                             double now_s) const {
  const std::int64_t now_epoch = query_epoch(now_s, epoch_s_);
  const std::size_t span = epochs_in_window(window_s, epoch_s_, epochs_);
  Histogram::View view;
  view.min = std::numeric_limits<double>::infinity();
  view.max = -std::numeric_limits<double>::infinity();
  view.counts.assign(bounds_.size() + 1, 0);
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t k = 0; k < span; ++k) {
    const std::int64_t e = now_epoch - static_cast<std::int64_t>(k);
    if (e < 0) break;
    const Epoch& slot = ring_[static_cast<std::size_t>(e) % epochs_];
    if (slot.epoch != e || slot.count == 0) continue;
    view.count += slot.count;
    view.min = std::min(view.min, slot.min);
    view.max = std::max(view.max, slot.max);
    for (std::size_t b = 0; b < view.counts.size(); ++b) {
      view.counts[b] += slot.counts[b];
    }
  }
  return view;
}

double WindowedHistogram::quantile_over(double window_s, double now_s,
                                        double q) const {
  return Histogram::quantile_of(view_over(window_s, now_s), bounds_, q);
}

// ---------------------------------------------------------------------------
// ExemplarStore

ExemplarStore::ExemplarStore(std::size_t k_per_epoch, double epoch_s,
                             std::size_t epochs)
    : k_per_epoch_(std::max<std::size_t>(1, k_per_epoch)),
      epoch_s_(epoch_s > 0.0 ? epoch_s : 1.0),
      ring_(std::max<std::size_t>(1, epochs)) {}

void ExemplarStore::offer(const Exemplar& exemplar) {
  const std::int64_t e = epoch_index(exemplar.t_s, epoch_s_);
  std::lock_guard<std::mutex> lock(mutex_);
  latest_epoch_ = std::max(latest_epoch_, e);
  if (e + static_cast<std::int64_t>(ring_.size()) <= latest_epoch_) return;
  Epoch& slot = ring_[static_cast<std::size_t>(e) % ring_.size()];
  if (slot.epoch != e) {
    slot.epoch = e;
    slot.items.clear();
  }
  if (slot.items.size() < k_per_epoch_) {
    slot.items.push_back(exemplar);
    return;
  }
  // Evict the fastest of the retained K if this one is slower. Ties keep
  // the incumbent, so the store is insensitive to completion-order races
  // only for strictly equal latencies (which identical requests on the sim
  // clock produce deterministically).
  std::size_t fastest = 0;
  for (std::size_t i = 1; i < slot.items.size(); ++i) {
    if (slot.items[i].total_latency_s() <
        slot.items[fastest].total_latency_s()) {
      fastest = i;
    }
  }
  if (exemplar.total_latency_s() > slot.items[fastest].total_latency_s()) {
    slot.items[fastest] = exemplar;
  }
}

std::vector<Exemplar> ExemplarStore::slowest() const {
  std::vector<Exemplar> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Epoch& slot : ring_) {
      if (slot.epoch < 0) continue;
      out.insert(out.end(), slot.items.begin(), slot.items.end());
    }
  }
  std::sort(out.begin(), out.end(), [](const Exemplar& a, const Exemplar& b) {
    if (a.total_latency_s() != b.total_latency_s()) {
      return a.total_latency_s() > b.total_latency_s();
    }
    return a.id < b.id;
  });
  return out;
}

std::size_t ExemplarStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const Epoch& slot : ring_) {
    if (slot.epoch >= 0) n += slot.items.size();
  }
  return n;
}

// ---------------------------------------------------------------------------
// ServiceTelemetry

namespace {

/// Bucket ladder for the wall-latency windows: 10 us .. 10 s, 1-2-5.
std::vector<double> latency_bounds() {
  return Histogram::exponential_bounds(1e-5, 1e1);
}

}  // namespace

ServiceTelemetry::ServiceTelemetry(TelemetryConfig config)
    : config_(config),
      accepted_(config.epoch_s, config.epochs),
      completed_(config.epoch_s, config.epochs),
      shed_(config.epoch_s, config.epochs),
      queue_wait_(latency_bounds(), config.epoch_s, config.epochs),
      service_time_(latency_bounds(), config.epoch_s, config.epochs),
      exemplars_(config.exemplars_per_epoch, config.epoch_s, config.epochs) {}

void ServiceTelemetry::on_accept(double t_s) { accepted_.add(t_s); }

void ServiceTelemetry::on_shed(double t_s) { shed_.add(t_s); }

void ServiceTelemetry::on_complete(const Exemplar& exemplar) {
  completed_.add(exemplar.t_s);
  queue_wait_.observe(exemplar.t_s, exemplar.queue_wait_s);
  service_time_.observe(exemplar.t_s, exemplar.service_s);
  exemplars_.offer(exemplar);
}

std::string ServiceTelemetry::sample_json(double now_s) const {
  static constexpr double kWindows[] = {1.0, 10.0, 60.0};
  JsonWriter w;
  w.begin_object();
  w.field("t_s", now_s);
  w.key("windows").begin_array();
  for (const double window_s : kWindows) {
    const Histogram::View wait = queue_wait_.view_over(window_s, now_s);
    const Histogram::View service = service_time_.view_over(window_s, now_s);
    const std::uint64_t accepted = accepted_.total_over(window_s, now_s);
    const std::uint64_t completed = completed_.total_over(window_s, now_s);
    const std::uint64_t shed = shed_.total_over(window_s, now_s);
    w.begin_object();
    w.field("window_s", window_s);
    w.field("accepted", static_cast<std::size_t>(accepted));
    w.field("completed", static_cast<std::size_t>(completed));
    w.field("shed", static_cast<std::size_t>(shed));
    w.field("throughput_rps", static_cast<double>(completed) / window_s);
    w.field("shed_rps", static_cast<double>(shed) / window_s);
    w.field("queue_wait_p50_s",
            Histogram::quantile_of(wait, queue_wait_.bounds(), 0.50));
    w.field("queue_wait_p99_s",
            Histogram::quantile_of(wait, queue_wait_.bounds(), 0.99));
    w.field("service_p50_s",
            Histogram::quantile_of(service, service_time_.bounds(), 0.50));
    w.field("service_p99_s",
            Histogram::quantile_of(service, service_time_.bounds(), 0.99));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string ServiceTelemetry::exemplars_json() const {
  const std::vector<Exemplar> items = exemplars_.slowest();
  std::string out = "{\"exemplars\":[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ',';
    out += exemplar_json(items[i]);
  }
  out += "]}";
  return out;
}

std::string ServiceTelemetry::exemplars_jsonl() const {
  std::string out;
  for (const Exemplar& e : exemplars_.slowest()) {
    out += exemplar_json(e);
    out += '\n';
  }
  return out;
}

TelemetryAnomaly ServiceTelemetry::check_anomalies(double now_s) const {
  TelemetryAnomaly anomaly;
  if (config_.shed_storm_rate_rps > 0.0) {
    anomaly.shed_storm =
        shed_.rate_over(1.0, now_s) >= config_.shed_storm_rate_rps;
  }
  if (config_.queue_saturated_p99_s > 0.0) {
    const Histogram::View wait = queue_wait_.view_over(1.0, now_s);
    anomaly.queue_saturated =
        wait.count > 0 &&
        Histogram::quantile_of(wait, queue_wait_.bounds(), 0.99) >=
            config_.queue_saturated_p99_s;
  }
  return anomaly;
}

// ---------------------------------------------------------------------------
// Exemplar serialization

std::string exemplar_json(const Exemplar& e) {
  JsonWriter w;
  w.begin_object();
  w.field("id", static_cast<std::size_t>(e.id));
  w.field("kind", static_cast<int>(e.kind));
  w.field("trials", static_cast<std::size_t>(e.trials));
  w.field("antennas", static_cast<std::size_t>(e.antennas));
  // 64-bit identity goes through strings: the flat scanner reads numbers
  // as doubles, which silently rounds seeds above 2^53.
  w.field("seed", std::to_string(e.seed));
  w.field("snr_db", e.snr_db);
  w.field("medium_loss_db", e.medium_loss_db);
  w.field("t_s", e.t_s);
  w.field("queue_wait_s", e.queue_wait_s);
  w.field("service_s", e.service_s);
  w.key("stage_s").begin_array();
  for (std::uint32_t s = 0; s < e.stages && s < Exemplar::kMaxStages; ++s) {
    w.value(e.stage_s[s]);
  }
  w.end_array();
  w.field("response_hash", std::to_string(e.response_hash));
  w.end_object();
  return w.str();
}

bool parse_exemplar_line(std::string_view line, Exemplar& out) {
  if (line.find("\"seed\"") == std::string_view::npos ||
      line.find("\"response_hash\"") == std::string_view::npos) {
    return false;
  }
  const double bad = std::nan("");
  const double id = json_find_number(line, "id", bad);
  const double kind = json_find_number(line, "kind", bad);
  const double trials = json_find_number(line, "trials", bad);
  const double antennas = json_find_number(line, "antennas", bad);
  if (std::isnan(id) || std::isnan(kind) || std::isnan(trials) ||
      std::isnan(antennas)) {
    return false;
  }
  const std::string seed = json_find_string(line, "seed", "");
  const std::string hash = json_find_string(line, "response_hash", "");
  if (seed.empty() || hash.empty()) return false;
  out = Exemplar{};
  out.id = static_cast<std::uint64_t>(id);
  out.kind = static_cast<std::uint32_t>(kind);
  out.trials = static_cast<std::uint32_t>(trials);
  out.antennas = static_cast<std::uint32_t>(antennas);
  out.seed = std::strtoull(seed.c_str(), nullptr, 10);
  out.response_hash = std::strtoull(hash.c_str(), nullptr, 10);
  out.snr_db = json_find_number(line, "snr_db", 0.0);
  out.medium_loss_db = json_find_number(line, "medium_loss_db", 0.0);
  out.t_s = json_find_number(line, "t_s", 0.0);
  out.queue_wait_s = json_find_number(line, "queue_wait_s", 0.0);
  out.service_s = json_find_number(line, "service_s", 0.0);
  return true;
}

}  // namespace ivnet::obs
