// Rolling-window live telemetry: the "what is happening RIGHT NOW" layer
// the cumulative MetricsRegistry (obs/metrics.hpp) cannot answer.
//
// A cumulative histogram tells you the p99 since process start; an
// operator watching `ivnet serve` ride out an MMPP load surge needs the
// p99 over the last second. The windowed types here are built from N
// rotating fixed-bucket EPOCHS: time is divided into epoch_s-wide slots,
// each observation lands in the epoch covering its timestamp, and a
// window query merges the epochs spanning the last W seconds into one
// coherent Histogram::View (so quantiles reuse the exact interpolation
// the registry snapshots use, via Histogram::quantile_of). Epochs that
// fall out of the retained ring are recycled in place — memory is fixed
// at construction no matter how long the service runs.
//
// Clock discipline: every ingest carries a caller-supplied timestamp in
// SECONDS on an arbitrary monotone clock. The service feeds either wall
// seconds since its own epoch (live operation) or the request's offered
// schedule time (sim clock) — with the sim clock, counts, rates, and
// exemplar identities in a window are pure functions of the schedule, so
// the emitted time-series is reproducible run-to-run. Latency VALUES are
// wall measurements either way and sit outside the byte-stability
// contract (the formatting is fixed; the numbers are physics).
//
// Threading: one mutex per windowed object (same policy as Histogram).
// Ingest is O(1) under the lock; a view merge is O(epochs x buckets).
// The service's ingest path takes three of these locks per request —
// bench_service gates the end-to-end cost at <= 3% of throughput.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "ivnet/obs/metrics.hpp"

namespace ivnet::obs {

/// Event count over rotating epochs. add(t_s) attributes to the epoch
/// covering t_s; totals/rates are queried over a trailing window.
class WindowedCounter {
 public:
  /// `epoch_s` is the bucket width in seconds; `epochs` the ring length —
  /// the counter retains the trailing epochs * epoch_s seconds.
  explicit WindowedCounter(double epoch_s = 1.0, std::size_t epochs = 90);

  /// Attribute `n` events to time `t_s`. Timestamps ahead of everything
  /// seen so far advance the ring (recycling expired epochs); timestamps
  /// older than the retained span are dropped. Thread-safe.
  void add(double t_s, std::uint64_t n = 1);

  /// Events attributed to (now_s - window_s, now_s]. Epochs are merged
  /// whole: the window is rounded up to the epoch grid, so a 1 s window
  /// with 1 s epochs covers exactly the current epoch. Thread-safe.
  std::uint64_t total_over(double window_s, double now_s) const;

  /// total_over / window_s (events per second).
  double rate_over(double window_s, double now_s) const;

  double epoch_s() const { return epoch_s_; }
  std::size_t epochs() const { return counts_.size(); }

 private:
  const double epoch_s_;
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> counts_;  // slot = epoch index % ring size
  std::vector<std::int64_t> epoch_of_;  // absolute epoch in the slot, -1 empty
  std::int64_t latest_epoch_ = -1;      // newest epoch ever ingested
};

/// Fixed-bucket histogram over rotating epochs. Each epoch holds its own
/// bucket-count row plus min/max; a window query merges the covering
/// epochs into a Histogram::View, so every read is coherent and every
/// quantile goes through Histogram::quantile_of — the same pure function
/// the cumulative registry snapshots use.
class WindowedHistogram {
 public:
  /// Empty `bounds` = Histogram::default_bounds() (the 1-2-5 ladder).
  explicit WindowedHistogram(std::vector<double> bounds = {},
                             double epoch_s = 1.0, std::size_t epochs = 90);

  /// Attribute an observation to time `t_s` (same rotation rules as
  /// WindowedCounter::add). Thread-safe.
  void observe(double t_s, double value);

  /// One coherent merged view of the epochs covering
  /// (now_s - window_s, now_s]: counts summed, min/max folded, all under
  /// a single lock acquisition. Thread-safe.
  Histogram::View view_over(double window_s, double now_s) const;

  /// Histogram::quantile_of on a fresh view_over — one lock, pure math.
  double quantile_over(double window_s, double now_s, double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  double epoch_s() const { return epoch_s_; }
  std::size_t epochs() const { return epochs_; }

 private:
  struct Epoch {
    std::int64_t epoch = -1;  // absolute epoch index, -1 = empty
    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1
  };
  void reset_epoch(Epoch& e, std::int64_t epoch) const;

  const std::vector<double> bounds_;
  const double epoch_s_;
  const std::size_t epochs_;
  mutable std::mutex mutex_;
  std::vector<Epoch> ring_;
  std::int64_t latest_epoch_ = -1;
};

/// Full identity of one slow request: everything needed to re-execute it
/// deterministically (responses are pure functions of (request, seed)),
/// plus the captured wall timings and the response hash the replay must
/// reproduce. Kept POD-ish so stores/dumps stay allocation-light.
struct Exemplar {
  static constexpr std::size_t kMaxStages = 4;

  // -- request identity (svc::Request fields) ----------------------------
  std::uint32_t kind = 0;
  std::uint32_t trials = 0;
  std::uint32_t antennas = 0;
  std::uint64_t id = 0;
  std::uint64_t seed = 0;
  double snr_db = 0.0;
  double medium_loss_db = 0.0;

  // -- captured timings ---------------------------------------------------
  double t_s = 0.0;           ///< completion time on the telemetry clock
  double queue_wait_s = 0.0;  ///< wall: accept -> worker pickup
  double service_s = 0.0;     ///< wall: execution on the worker
  /// Per-stage wall spans (kPlan: the optimize call; decode/inventory: one
  /// span per batch chunk, chunks beyond kMaxStages folded into the last).
  double stage_s[kMaxStages] = {0.0, 0.0, 0.0, 0.0};
  std::uint32_t stages = 0;

  // -- the reproducibility anchor ----------------------------------------
  std::uint64_t response_hash = 0;  ///< svc::response_hash of the response

  double total_latency_s() const { return queue_wait_s + service_s; }
};

/// Bounded store of the K slowest requests per epoch window. Same epoch
/// rotation as the windowed metrics, so memory is fixed at
/// epochs * k_per_epoch exemplars and an incident's evidence survives for
/// the retained span, not until someone polls.
class ExemplarStore {
 public:
  explicit ExemplarStore(std::size_t k_per_epoch = 4, double epoch_s = 1.0,
                         std::size_t epochs = 90);

  /// Offer an exemplar for the epoch covering exemplar.t_s. Kept iff it is
  /// among the k slowest (by total latency) of its epoch. Thread-safe.
  void offer(const Exemplar& exemplar);

  /// Every retained exemplar, slowest first (ties broken by id, so equal
  /// ingests produce identical ordering). Thread-safe.
  std::vector<Exemplar> slowest() const;

  std::size_t size() const;
  std::size_t k_per_epoch() const { return k_per_epoch_; }

 private:
  struct Epoch {
    std::int64_t epoch = -1;
    std::vector<Exemplar> items;  // unordered, <= k_per_epoch
  };

  const std::size_t k_per_epoch_;
  const double epoch_s_;
  mutable std::mutex mutex_;
  std::vector<Epoch> ring_;
  std::int64_t latest_epoch_ = -1;
};

/// Rolling-window anomaly verdict over the last second of service life.
struct TelemetryAnomaly {
  bool shed_storm = false;       ///< shed rate over 1 s above threshold
  bool queue_saturated = false;  ///< queue-wait p99 over 1 s above threshold
  bool any() const { return shed_storm || queue_saturated; }
};

struct TelemetryConfig {
  double epoch_s = 1.0;
  /// Ring length; retained span = epochs * epoch_s. The default covers the
  /// 60 s reporting window with headroom.
  std::size_t epochs = 90;
  std::size_t exemplars_per_epoch = 4;
  /// Anomaly thresholds over the trailing 1 s window. <= 0 disables the
  /// detector.
  double shed_storm_rate_rps = 50.0;
  double queue_saturated_p99_s = 0.5;
};

/// The service-facing bundle: windowed throughput/shed counters, windowed
/// queue-wait / service-time histograms, and the exemplar store, with a
/// byte-stable JSON emitter for the periodic time-series and threshold
/// detectors for the flight-recorder triggers.
class ServiceTelemetry {
 public:
  explicit ServiceTelemetry(TelemetryConfig config = {});

  void on_accept(double t_s);
  void on_shed(double t_s);
  /// One completed request: latencies attributed to exemplar.t_s, the
  /// exemplar offered to the per-window store.
  void on_complete(const Exemplar& exemplar);

  /// One time-series record for time now_s — {"t_s":..,"windows":[...]}
  /// with one entry per window in {1, 10, 60} s: accepted/completed/shed
  /// counts, throughput and shed rates, queue-wait and service-time
  /// p50/p99. Field order and number formatting are fixed (common/json),
  /// so equal ingests emit identical bytes.
  std::string sample_json(double now_s) const;

  /// {"exemplars":[...]} — every retained exemplar, slowest first, full
  /// identity + timings + response hash. One JSON object per line inside
  /// the array is NOT guaranteed; use exemplars_jsonl for grep-ability.
  std::string exemplars_json() const;
  /// One exemplar object per line (JSONL): the format `ivnet
  /// replay-exemplar` consumes. Byte-stable for equal ingests.
  std::string exemplars_jsonl() const;

  std::vector<Exemplar> exemplars() const { return exemplars_.slowest(); }

  TelemetryAnomaly check_anomalies(double now_s) const;

  const TelemetryConfig& config() const { return config_; }

  // Direct access for tests and custom reporters.
  WindowedCounter& accepted() { return accepted_; }
  WindowedCounter& completed() { return completed_; }
  WindowedCounter& shed() { return shed_; }
  WindowedHistogram& queue_wait() { return queue_wait_; }
  WindowedHistogram& service_time() { return service_time_; }

 private:
  TelemetryConfig config_;
  WindowedCounter accepted_;
  WindowedCounter completed_;
  WindowedCounter shed_;
  WindowedHistogram queue_wait_;
  WindowedHistogram service_time_;
  ExemplarStore exemplars_;
};

/// Serialize one exemplar as a single-line JSON object (the JSONL record
/// format). seed and response_hash are emitted as decimal/hex STRINGS so
/// 64-bit identity survives the double-typed flat scanner on the way back
/// in (see parse_exemplar_line).
std::string exemplar_json(const Exemplar& exemplar);

/// Parse one exemplar_json line back. Returns false when required fields
/// are missing (blank lines, headers). Tolerates surrounding whitespace.
bool parse_exemplar_line(std::string_view line, Exemplar& out);

}  // namespace ivnet::obs
