#include "ivnet/obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "ivnet/common/json.hpp"

namespace ivnet::obs {
namespace {

/// Sim-mode track state: ScopedTrack (obs/obs.hpp) installs the trial's
/// track id; each sim event takes the next per-track sequence number. Both
/// are thread-local, so concurrent trials never share an order key.
thread_local std::uint32_t t_sim_track = 0;
thread_local std::uint64_t t_sim_seq = 0;

/// Wall-mode track: a small per-thread id in first-event order.
std::atomic<std::uint32_t> g_next_wall_track{0};
thread_local std::uint32_t t_wall_track = 0;
thread_local bool t_wall_track_assigned = false;

std::uint32_t wall_track() {
  if (!t_wall_track_assigned) {
    t_wall_track = g_next_wall_track.fetch_add(1, std::memory_order_relaxed);
    t_wall_track_assigned = true;
  }
  return t_wall_track;
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

namespace detail {

std::uint32_t current_sim_track() { return t_sim_track; }
std::uint64_t current_sim_seq() { return t_sim_seq; }

void set_sim_track(std::uint32_t track, std::uint64_t seq) {
  t_sim_track = track;
  t_sim_seq = seq;
}

}  // namespace detail

Tracer::Tracer(TraceClock clock) : clock_(clock), epoch_ns_(steady_ns()) {}

double Tracer::now_us() const {
  return static_cast<double>(steady_ns() - epoch_ns_) * 1e-3;
}

void Tracer::push(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::wall_span(std::string_view name, std::string_view cat,
                       double ts_us, double dur_us) {
  if (clock_ != TraceClock::kWall) return;
  push(TraceEvent{.name = std::string(name),
                  .cat = std::string(cat),
                  .ph = 'X',
                  .ts_us = ts_us,
                  .dur_us = dur_us,
                  .track = wall_track()});
}

void Tracer::wall_instant(std::string_view name, std::string_view cat,
                          double ts_us) {
  if (clock_ != TraceClock::kWall) return;
  push(TraceEvent{.name = std::string(name),
                  .cat = std::string(cat),
                  .ph = 'i',
                  .ts_us = ts_us,
                  .track = wall_track()});
}

void Tracer::sim_span(std::string_view name, std::string_view cat, double t0_s,
                      double t1_s) {
  if (clock_ != TraceClock::kSim) return;
  push(TraceEvent{.name = std::string(name),
                  .cat = std::string(cat),
                  .ph = 'X',
                  .ts_us = t0_s * 1e6,
                  .dur_us = (t1_s - t0_s) * 1e6,
                  .track = t_sim_track,
                  .seq = t_sim_seq++});
}

void Tracer::sim_instant(std::string_view name, std::string_view cat,
                         double t_s) {
  if (clock_ != TraceClock::kSim) return;
  push(TraceEvent{.name = std::string(name),
                  .cat = std::string(cat),
                  .ph = 'i',
                  .ts_us = t_s * 1e6,
                  .track = t_sim_track,
                  .seq = t_sim_seq++});
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::string Tracer::to_json() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
  }
  if (clock_ == TraceClock::kSim) {
    // (track, seq) is a total order per trial regardless of which pool
    // thread ran it: the exported bytes depend only on the simulated work.
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       if (a.track != b.track) return a.track < b.track;
                       return a.seq < b.seq;
                     });
  } else {
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       if (a.track != b.track) return a.track < b.track;
                       return a.ts_us < b.ts_us;
                     });
  }

  JsonWriter w;
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  for (const auto& e : events) {
    w.begin_object();
    w.field("name", e.name);
    w.field("cat", e.cat.empty() ? std::string_view("ivnet")
                                 : std::string_view(e.cat));
    w.field("ph", std::string_view(&e.ph, 1));
    w.field("pid", 0);
    w.field("tid", static_cast<std::size_t>(e.track));
    w.field("ts", e.ts_us);
    if (e.ph == 'X') w.field("dur", e.dur_us);
    if (e.ph == 'i') w.field("s", "t");  // thread-scoped instant
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace ivnet::obs
