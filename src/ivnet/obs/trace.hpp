// Structured event tracer emitting Chrome trace_event JSON (the format
// chrome://tracing and Perfetto load directly): complete spans (ph "X"),
// instant events (ph "i"), one track (tid) per thread or per trial.
//
// Two clock domains, chosen at construction:
//
//   * kWall — spans measure std::chrono::steady_clock; the track is the
//     emitting thread (small ids assigned in first-event order). This is
//     the profiling mode: where does a sweep actually spend its time.
//   * kSim — timestamps are SIMULATED seconds supplied by the caller (the
//     session runners' elapsed_s bookkeeping), and the track is the
//     thread-local trial track installed by ScopedTrack (obs/obs.hpp).
//     Export sorts events by (track, per-track sequence), so two runs of
//     the same workload produce BYTE-identical traces for any thread
//     count — sim traces are diffable test artifacts, not just pictures.
//
// Wall spans are dropped in sim mode and vice versa: one trace file always
// carries a single, internally consistent clock.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ivnet::obs {

enum class TraceClock : std::uint8_t { kWall, kSim };

namespace detail {

/// Thread-local sim-time track state, installed by obs::ScopedTrack: the
/// trial's track id plus the next per-track event sequence number.
std::uint32_t current_sim_track();
std::uint64_t current_sim_seq();
void set_sim_track(std::uint32_t track, std::uint64_t seq);

}  // namespace detail

/// One recorded event, timestamps in microseconds (Chrome's native unit).
struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';        ///< 'X' complete span, 'i' instant
  double ts_us = 0.0;
  double dur_us = 0.0;  ///< spans only
  std::uint32_t track = 0;
  std::uint64_t seq = 0;  ///< per-track order key in sim mode
};

class Tracer {
 public:
  explicit Tracer(TraceClock clock = TraceClock::kWall);

  TraceClock clock() const { return clock_; }

  /// Wall-clock span/instant with explicit microsecond offsets from the
  /// tracer's epoch (ScopedSpan in obs/obs.hpp computes these). No-op in
  /// sim mode.
  void wall_span(std::string_view name, std::string_view cat, double ts_us,
                 double dur_us);
  void wall_instant(std::string_view name, std::string_view cat, double ts_us);

  /// Simulated-time span/instant, seconds in, on the calling thread's
  /// current track (ScopedTrack). No-op in wall mode.
  void sim_span(std::string_view name, std::string_view cat, double t0_s,
                double t1_s);
  void sim_instant(std::string_view name, std::string_view cat, double t_s);

  /// Microseconds since construction (wall mode's time base).
  double now_us() const;

  std::size_t event_count() const;

  /// The Chrome trace_event document. Sim mode sorts by (track, seq) so the
  /// bytes are a pure function of the recorded work; wall mode sorts by
  /// (track, ts) for readable per-thread timelines.
  std::string to_json() const;

 private:
  void push(TraceEvent event);

  const TraceClock clock_;
  const std::uint64_t epoch_ns_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;  // guarded by mutex_
};

}  // namespace ivnet::obs
