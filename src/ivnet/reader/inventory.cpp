#include "ivnet/reader/inventory.hpp"

#include <algorithm>
#include <cmath>

#include "ivnet/obs/obs.hpp"

namespace ivnet {

InventoryConfig InventoryConfig::normalized() const {
  InventoryConfig n = *this;
  n.q = std::min<std::uint8_t>(q, 15);
  if (std::isnan(n.capture_probability)) n.capture_probability = 0.0;
  n.capture_probability = std::clamp(n.capture_probability, 0.0, 1.0);
  return n;
}

AdaptiveQ::AdaptiveQ(AdaptiveQConfig config)
    : config_(config),
      qfp_(std::clamp(config.initial_q, static_cast<double>(config.q_min),
                      static_cast<double>(config.q_max))) {}

void AdaptiveQ::on_collision() {
  qfp_ = std::min(qfp_ + config_.step, static_cast<double>(config_.q_max));
}

void AdaptiveQ::on_empty() {
  qfp_ = std::max(qfp_ - config_.step, static_cast<double>(config_.q_min));
}

std::uint8_t AdaptiveQ::q() const {
  return static_cast<std::uint8_t>(std::lround(qfp_));
}

InventoryRound::InventoryRound(InventoryConfig config)
    : config_(config.normalized()) {}

gen2::Bits InventoryRound::extract_epc(const gen2::Bits& frame) {
  if (frame.size() < 32 || !gen2::check_crc16(frame)) return {};
  return gen2::Bits(frame.begin() + 16, frame.end() - 16);
}

InventoryResult InventoryRound::run(std::span<gen2::TagStateMachine*> tags,
                                    Rng& rng) const {
  return run_with_q(tags, config_.q, rng);
}

InventoryResult InventoryRound::run_with_q(
    std::span<gen2::TagStateMachine*> tags, std::uint8_t q, Rng& rng) const {
  InventoryResult result;
  result.q_trajectory.push_back(q);
  obs::count("inventory.rounds");
  obs::observe("inventory.q_issued", static_cast<double>(q));

  if (config_.use_select) {
    gen2::SelectCommand select;
    select.pointer = config_.select_pointer;
    select.mask = config_.select_mask;
    const auto bits = select.encode();
    for (auto* tag : tags) tag->on_command(bits);
  }

  gen2::QueryCommand query;
  query.q = q;
  query.session = config_.session;
  query.sel = config_.use_select ? 3 : 0;  // SL asserted when addressing

  // Collect the replies of the first slot (Query), then iterate QueryRep.
  std::vector<std::pair<gen2::TagStateMachine*, gen2::Bits>> replies;
  auto broadcast = [&](const gen2::Bits& command) {
    replies.clear();
    for (auto* tag : tags) {
      if (auto reply = tag->on_command(command)) {
        replies.emplace_back(tag, *reply);
      }
    }
  };

  broadcast(query.encode());
  // max_slots == 0 means "derive from Q": the whole 2^q frame plus one slot
  // of collision slack per tag.
  const std::size_t derived = (std::size_t{1} << q) + tags.size();
  const std::size_t total_slots =
      config_.max_slots == 0 ? derived : std::min(config_.max_slots, derived);
  for (std::size_t slot = 0; slot < total_slots; ++slot) {
    if (replies.empty()) {
      ++result.empty_slots;
      result.slot_outcomes.push_back(SlotOutcome::kEmpty);
      obs::count("inventory.slots.empty");
    } else {
      gen2::TagStateMachine* winner = nullptr;
      if (replies.size() == 1) {
        winner = replies.front().first;
        result.slot_outcomes.push_back(SlotOutcome::kSingle);
        obs::count("inventory.slots.single");
      } else {
        ++result.collisions;
        result.slot_outcomes.push_back(SlotOutcome::kCollision);
        obs::count("inventory.slots.collision");
        if (rng.uniform() < config_.capture_probability) {
          // Capture effect: one (random) reply survives the collision.
          winner = replies[static_cast<std::size_t>(rng.uniform_int(
                               0, static_cast<std::int64_t>(replies.size()) -
                                      1))]
                       .first;
        }
      }
      if (winner != nullptr) {
        gen2::AckCommand ack;
        ack.rn16 = winner->last_rn16();
        // The ACK is broadcast; only the matching tag answers with its EPC.
        for (auto* tag : tags) {
          if (auto epc_frame = tag->on_command(ack.encode())) {
            const auto epc = extract_epc(*epc_frame);
            if (epc.empty()) {
              ++result.crc_failures;
              obs::count("inventory.crc_failures");
            } else {
              result.epcs.push_back(epc);
            }
          }
        }
      }
    }
    ++result.slots_used;
    broadcast(gen2::QueryRepCommand{.session = config_.session}.encode());
  }
  return result;
}

namespace {

/// Fold one round's tallies into the running total (EPC union).
void accumulate_round(InventoryResult& total, const InventoryResult& round) {
  total.slots_used += round.slots_used;
  total.collisions += round.collisions;
  total.empty_slots += round.empty_slots;
  total.crc_failures += round.crc_failures;
  total.slot_outcomes.insert(total.slot_outcomes.end(),
                             round.slot_outcomes.begin(),
                             round.slot_outcomes.end());
  total.q_trajectory.insert(total.q_trajectory.end(),
                            round.q_trajectory.begin(),
                            round.q_trajectory.end());
  for (const auto& epc : round.epcs) {
    if (std::find(total.epcs.begin(), total.epcs.end(), epc) ==
        total.epcs.end()) {
      total.epcs.push_back(epc);
    }
  }
}

}  // namespace

InventoryResult InventoryRound::run_until_complete(
    std::span<gen2::TagStateMachine*> tags, std::size_t max_rounds,
    Rng& rng) const {
  InventoryResult total;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    accumulate_round(total, run(tags, rng));
    if (total.epcs.size() >= tags.size()) break;
  }
  return total;
}

InventoryResult InventoryRound::run_adaptive(
    std::span<gen2::TagStateMachine*> tags, std::size_t max_rounds, Rng& rng,
    AdaptiveQConfig adapt) const {
  adapt.initial_q = static_cast<double>(config_.q);
  AdaptiveQ controller(adapt);
  InventoryResult total;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    const auto q_used = controller.q();
    const auto r = run_with_q(tags, q_used, rng);
    // Feed the slot outcomes to the Q-algorithm in slot order, and stop as
    // soon as the issued Q changes: a real reader would have sent
    // QueryAdjust there and restarted the frame, so the remaining slots of
    // this round never inform Qfp. (Without this cutoff, the dead empty
    // slots that trail a collision-heavy frame — collided tags stay muted
    // until the next Query — drive Qfp to 0 and starve dense populations.)
    for (const auto outcome : r.slot_outcomes) {
      if (outcome == SlotOutcome::kCollision) {
        controller.on_collision();
      } else if (outcome == SlotOutcome::kEmpty) {
        controller.on_empty();
      } else {
        controller.on_single();
      }
      if (controller.q() != q_used) {
        obs::count("inventory.q_adjust");
        break;
      }
    }
    accumulate_round(total, r);
    if (total.epcs.size() >= tags.size()) break;
  }
  return total;
}

}  // namespace ivnet
