#include "ivnet/reader/inventory.hpp"

#include <algorithm>

namespace ivnet {

InventoryRound::InventoryRound(InventoryConfig config)
    : config_(std::move(config)) {}

gen2::Bits InventoryRound::extract_epc(const gen2::Bits& frame) {
  if (frame.size() < 32 || !gen2::check_crc16(frame)) return {};
  return gen2::Bits(frame.begin() + 16, frame.end() - 16);
}

InventoryResult InventoryRound::run(std::span<gen2::TagStateMachine*> tags,
                                    Rng& rng) const {
  InventoryResult result;

  if (config_.use_select) {
    gen2::SelectCommand select;
    select.pointer = config_.select_pointer;
    select.mask = config_.select_mask;
    const auto bits = select.encode();
    for (auto* tag : tags) tag->on_command(bits);
  }

  gen2::QueryCommand query;
  query.q = config_.q;
  query.session = config_.session;
  query.sel = config_.use_select ? 3 : 0;  // SL asserted when addressing

  // Collect the replies of the first slot (Query), then iterate QueryRep.
  std::vector<std::pair<gen2::TagStateMachine*, gen2::Bits>> replies;
  auto broadcast = [&](const gen2::Bits& command) {
    replies.clear();
    for (auto* tag : tags) {
      if (auto reply = tag->on_command(command)) {
        replies.emplace_back(tag, *reply);
      }
    }
  };

  broadcast(query.encode());
  const std::size_t total_slots =
      std::min<std::size_t>(config_.max_slots,
                            (std::size_t{1} << config_.q) + tags.size());
  for (std::size_t slot = 0; slot < total_slots; ++slot) {
    if (replies.empty()) {
      ++result.empty_slots;
    } else {
      gen2::TagStateMachine* winner = nullptr;
      if (replies.size() == 1) {
        winner = replies.front().first;
      } else {
        ++result.collisions;
        if (rng.uniform() < config_.capture_probability) {
          // Capture effect: one (random) reply survives the collision.
          winner = replies[static_cast<std::size_t>(rng.uniform_int(
                               0, static_cast<std::int64_t>(replies.size()) -
                                      1))]
                       .first;
        }
      }
      if (winner != nullptr) {
        gen2::AckCommand ack;
        ack.rn16 = winner->last_rn16();
        // The ACK is broadcast; only the matching tag answers with its EPC.
        for (auto* tag : tags) {
          if (auto epc_frame = tag->on_command(ack.encode())) {
            const auto epc = extract_epc(*epc_frame);
            if (epc.empty()) {
              ++result.crc_failures;
            } else {
              result.epcs.push_back(epc);
            }
          }
        }
      }
    }
    ++result.slots_used;
    broadcast(gen2::QueryRepCommand{.session = config_.session}.encode());
  }
  return result;
}

InventoryResult InventoryRound::run_until_complete(
    std::span<gen2::TagStateMachine*> tags, std::size_t max_rounds,
    Rng& rng) const {
  InventoryResult total;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    const auto r = run(tags, rng);
    total.slots_used += r.slots_used;
    total.collisions += r.collisions;
    total.empty_slots += r.empty_slots;
    total.crc_failures += r.crc_failures;
    for (const auto& epc : r.epcs) {
      if (std::find(total.epcs.begin(), total.epcs.end(), epc) ==
          total.epcs.end()) {
        total.epcs.push_back(epc);
      }
    }
    if (total.epcs.size() >= tags.size()) break;
  }
  return total;
}

}  // namespace ivnet
