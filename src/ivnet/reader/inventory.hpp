// Reader-side inventory engine: the multi-sensor extension of Sec. 3.7
// ("IVN's communication can seamlessly scale to multiple in-vivo sensors
// ... it may incorporate a select command into its query, specifying the
// identifier of the sensor it wishes to communicate with").
//
// Runs a full Gen2 inventory round — Select / Query / QueryRep / ACK — over
// a population of tag state machines, with slotted-ALOHA collision handling
// and an optional capture effect (the strongest colliding reply survives).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ivnet/common/rng.hpp"
#include "ivnet/gen2/tag_sm.hpp"

namespace ivnet {

struct InventoryConfig {
  std::uint8_t q = 2;          ///< slot-count exponent for the round
  gen2::Session session = gen2::Session::kS0;
  std::size_t max_slots = 128; ///< hard stop
  bool use_select = false;     ///< address one sensor before the round
  std::uint8_t select_pointer = 0;
  gen2::Bits select_mask;      ///< EPC prefix of the wanted sensor
  /// Probability that exactly one of >=2 colliding replies is captured
  /// anyway (near/far effect). 0 = every collision is lost.
  double capture_probability = 0.0;
};

struct InventoryResult {
  std::vector<gen2::Bits> epcs;  ///< successfully ACKed EPC payloads
  std::size_t slots_used = 0;
  std::size_t collisions = 0;
  std::size_t empty_slots = 0;
  std::size_t crc_failures = 0;
};

/// Executes inventory rounds against in-field tags (bit-level abstraction:
/// the RF power-up question is handled by the session layer; every tag
/// passed in is assumed powered for the duration of the round).
class InventoryRound {
 public:
  explicit InventoryRound(InventoryConfig config);

  const InventoryConfig& config() const { return config_; }

  /// Run one round. Tags must be powered (power_up() already called).
  InventoryResult run(std::span<gen2::TagStateMachine*> tags, Rng& rng) const;

  /// Convenience: repeated rounds until all `tags` are inventoried or
  /// `max_rounds` is exhausted. Returns the union of EPCs found.
  InventoryResult run_until_complete(std::span<gen2::TagStateMachine*> tags,
                                     std::size_t max_rounds, Rng& rng) const;

 private:
  /// Extract the 96-bit EPC payload from a PC+EPC+CRC16 frame; empty if the
  /// CRC fails.
  static gen2::Bits extract_epc(const gen2::Bits& frame);

  InventoryConfig config_;
};

}  // namespace ivnet
