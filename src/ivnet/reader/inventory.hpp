// Reader-side inventory engine: the multi-sensor extension of Sec. 3.7
// ("IVN's communication can seamlessly scale to multiple in-vivo sensors
// ... it may incorporate a select command into its query, specifying the
// identifier of the sensor it wishes to communicate with").
//
// Runs a full Gen2 inventory round — Select / Query / QueryRep / ACK — over
// a population of tag state machines, with slotted-ALOHA collision handling
// and an optional capture effect (the strongest colliding reply survives).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ivnet/common/rng.hpp"
#include "ivnet/gen2/tag_sm.hpp"

namespace ivnet {

struct InventoryConfig {
  std::uint8_t q = 2;          ///< slot-count exponent, clamped to 0..15
  gen2::Session session = gen2::Session::kS0;
  /// Hard stop on slots per round; 0 means "derive from Q" (2^q plus one
  /// slot per tag of collision slack).
  std::size_t max_slots = 128;
  bool use_select = false;     ///< address one sensor before the round
  std::uint8_t select_pointer = 0;
  gen2::Bits select_mask;      ///< EPC prefix of the wanted sensor
  /// Probability that exactly one of >=2 colliding replies is captured
  /// anyway (near/far effect). 0 = every collision is lost. Values outside
  /// [0,1] (or NaN) are clamped into range on construction.
  double capture_probability = 0.0;

  /// The config as InventoryRound will actually run it: q clamped to 15,
  /// capture_probability clamped into [0,1] (NaN -> 0).
  InventoryConfig normalized() const;
};

/// What the reader observed in one ALOHA slot.
enum class SlotOutcome : std::uint8_t { kEmpty, kSingle, kCollision };

struct InventoryResult {
  std::vector<gen2::Bits> epcs;  ///< successfully ACKed EPC payloads
  std::size_t slots_used = 0;
  std::size_t collisions = 0;
  std::size_t empty_slots = 0;
  std::size_t crc_failures = 0;
  /// Per-slot outcomes in slot order (run_adaptive feeds these to the
  /// Q-algorithm one at a time, QueryAdjust-style).
  std::vector<SlotOutcome> slot_outcomes;
  /// Q used by each round (length = rounds run; adaptive runs vary it).
  std::vector<std::uint8_t> q_trajectory;
};

/// The Gen2 Q-algorithm (ISO 18000-63 Annex): a floating-point Qfp nudged up
/// by collisions and down by empty slots; the issued Q is round(Qfp). This
/// is how the reader adapts the frame size to an unknown tag population.
struct AdaptiveQConfig {
  double initial_q = 4.0;
  double step = 0.35;      ///< Qfp increment per collision / decrement per empty
  std::uint8_t q_min = 0;
  std::uint8_t q_max = 15;
};

class AdaptiveQ {
 public:
  explicit AdaptiveQ(AdaptiveQConfig config = {});

  void on_collision();  ///< Qfp += step
  void on_empty();      ///< Qfp -= step
  void on_single() {}   ///< a clean read leaves Qfp alone

  std::uint8_t q() const;
  double qfp() const { return qfp_; }

 private:
  AdaptiveQConfig config_;
  double qfp_;
};

/// Executes inventory rounds against in-field tags (bit-level abstraction:
/// the RF power-up question is handled by the session layer; every tag
/// passed in is assumed powered for the duration of the round).
class InventoryRound {
 public:
  explicit InventoryRound(InventoryConfig config);

  const InventoryConfig& config() const { return config_; }

  /// Run one round. Tags must be powered (power_up() already called).
  InventoryResult run(std::span<gen2::TagStateMachine*> tags, Rng& rng) const;

  /// Convenience: repeated rounds until all `tags` are inventoried or
  /// `max_rounds` is exhausted. Returns the union of EPCs found.
  InventoryResult run_until_complete(std::span<gen2::TagStateMachine*> tags,
                                     std::size_t max_rounds, Rng& rng) const;

  /// Like run_until_complete, but the Q of each round comes from the Gen2
  /// Q-algorithm fed with the previous round's collision/empty-slot counts
  /// (config().q seeds Qfp). The per-round Q is recorded in q_trajectory.
  InventoryResult run_adaptive(std::span<gen2::TagStateMachine*> tags,
                               std::size_t max_rounds, Rng& rng,
                               AdaptiveQConfig adapt = {}) const;

 private:
  /// Extract the 96-bit EPC payload from a PC+EPC+CRC16 frame; empty if the
  /// CRC fails.
  static gen2::Bits extract_epc(const gen2::Bits& frame);

  /// One round at an explicit Q (the adaptive path varies it per round).
  InventoryResult run_with_q(std::span<gen2::TagStateMachine*> tags,
                             std::uint8_t q, Rng& rng) const;

  InventoryConfig config_;
};

}  // namespace ivnet
