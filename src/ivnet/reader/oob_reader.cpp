#include "ivnet/reader/oob_reader.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ivnet/common/units.hpp"
#include "ivnet/signal/noise.hpp"

namespace ivnet {

OobReader::OobReader(OobReaderConfig config) : config_(config) {}

double OobReader::tx_amplitude_sqrtw() const {
  return std::sqrt(dbm_to_watts(config_.tx_power_dbm));
}

OobDecodeReport OobReader::decode(std::span<const double> reflection,
                                  double round_trip_gain,
                                  double jam_power_at_rx_w, double blf_hz,
                                  std::size_t num_bits, Rng& rng) const {
  OobDecodeReport report;

  // Self-jamming path. Without out-of-band separation the full CIB power
  // lands in the receiver; the SAW knocks it down by the rejection.
  const double jam_after_saw_w =
      jam_power_at_rx_w * from_db(-config_.saw_rejection_db);
  report.jam_power_dbm = watts_to_dbm(std::max(jam_after_saw_w, 1e-30));
  if (jam_after_saw_w > dbm_to_watts(config_.rx_saturation_dbm)) {
    report.saturated = true;
    return report;
  }

  // Backscatter signal power at the receiver: the tag modulates the reader's
  // CW with Gamma(t); the round-trip voltage gain scales it.
  const double tx_amp = tx_amplitude_sqrtw();
  const double mod_rms_sq =
      reflection.empty()
          ? 0.0
          : std::inner_product(reflection.begin(), reflection.end(),
                               reflection.begin(), 0.0) /
                static_cast<double>(reflection.size());
  const double signal_power_w =
      tx_amp * tx_amp * round_trip_gain * round_trip_gain * mod_rms_sq;
  report.signal_power_dbm = watts_to_dbm(std::max(signal_power_w, 1e-30));

  // Noise: thermal over the decode bandwidth (~2x BLF) plus residual jam
  // spurs leaking past the chain's dynamic range.
  const double bandwidth = 2.0 * blf_hz;
  const double noise_w =
      thermal_noise_power(bandwidth, config_.rx_noise_figure_db) +
      jam_after_saw_w * from_db(-config_.spur_floor_db);

  // Coherent averaging over K CIB periods: signal adds coherently, noise
  // averages down by K.
  const auto k = static_cast<double>(std::max<std::size_t>(
      1, config_.averaging_periods));
  const double post_noise_w = noise_w / k;
  report.snr_db = to_db(std::max(signal_power_w, 1e-30) /
                        std::max(post_noise_w, 1e-30));

  // Synthesize the averaged received baseband: amplitude-faithful signal
  // plus per-period-averaged AWGN.
  const double amp = tx_amp * round_trip_gain;
  const double noise_sigma = std::sqrt(post_noise_w / 2.0);
  std::vector<double> rx(reflection.size());
  for (std::size_t i = 0; i < reflection.size(); ++i) {
    rx[i] = amp * reflection[i] + rng.normal(0.0, noise_sigma);
  }
  report.averaged_signal = rx;

  const auto decoded = gen2::fm0_decode(rx, num_bits, blf_hz,
                                        config_.sample_rate_hz,
                                        config_.min_correlation);
  report.preamble_correlation = decoded.preamble_correlation;
  report.success = decoded.valid;
  if (decoded.valid) report.bits = decoded.bits;
  return report;
}

}  // namespace ivnet
