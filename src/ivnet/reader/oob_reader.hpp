// The out-of-band reader of Sec. 4/5(b).
//
// CIB's transmissions combine constructively at IVN's own receive antenna
// too, saturating it (self-jamming). Because backscatter modulation is
// frequency-agnostic, the reader transmits and receives coherently on a
// DIFFERENT carrier (880 MHz vs CIB's 915 MHz); a high-rejection SAW filter
// removes the CIB band, and responses are coherently averaged over 1-second
// intervals — the CIB envelope period — to recover SNR lost to tissue.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ivnet/common/rng.hpp"
#include "ivnet/gen2/fm0.hpp"
#include "ivnet/signal/waveform.hpp"

namespace ivnet {

struct OobReaderConfig {
  double carrier_hz = 880e6;       ///< reader carrier (out of CIB's band)
  double tx_power_dbm = 20.0;      ///< reader CW drive
  double sample_rate_hz = 800e3;   ///< receive sample rate
  double saw_rejection_db = 50.0;  ///< CIB-band rejection of the SAW filter
  double rx_noise_figure_db = 6.0;
  double rx_saturation_dbm = -10.0;  ///< front-end saturates above this
  double spur_floor_db = 75.0;  ///< jam-to-spur dynamic range of the chain
  double min_correlation = 0.8;    ///< Sec. 6.2 decode criterion
  std::size_t averaging_periods = 1;  ///< 1-second CIB periods to average
};

/// Decode attempt report.
struct OobDecodeReport {
  bool success = false;
  bool saturated = false;            ///< front end overloaded by jamming
  double preamble_correlation = 0.0;
  gen2::Bits bits;
  double signal_power_dbm = -300.0;  ///< backscatter power at the receiver
  double jam_power_dbm = -300.0;     ///< CIB leakage after the SAW filter
  double snr_db = -300.0;            ///< post-averaging SNR
  std::vector<double> averaged_signal;  ///< the Fig. 15-style waveform
};

/// Out-of-band backscatter reader.
class OobReader {
 public:
  explicit OobReader(OobReaderConfig config);

  const OobReaderConfig& config() const { return config_; }

  /// Attempt to decode `num_bits` FM0 bits from a tag whose reflection
  /// waveform is `reflection` (Gamma(t), sampled at config sample rate).
  ///
  /// @param round_trip_gain  reader TX -> tag -> reader RX voltage gain
  ///        (product of the two link voltage gains; the backscatter loss).
  /// @param jam_power_at_rx_w  total CIB power arriving at the reader
  ///        antenna BEFORE the SAW filter.
  /// @param blf_hz  tag backscatter link frequency.
  /// @param rng  noise generation.
  ///
  /// The reflection is assumed to repeat every averaging period (the tag
  /// replies to each of the periodic CIB queries); `averaging_periods`
  /// noisy copies are averaged coherently before decoding.
  OobDecodeReport decode(std::span<const double> reflection,
                         double round_trip_gain, double jam_power_at_rx_w,
                         double blf_hz, std::size_t num_bits, Rng& rng) const;

  /// The CW field the reader contributes at the tag (per sqrt-watt of its
  /// own drive): used by session simulators to superpose the reader carrier
  /// with the CIB carriers at the tag.
  double tx_amplitude_sqrtw() const;

 private:
  OobReaderConfig config_;
};

}  // namespace ivnet
