#include "ivnet/rf/antenna.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "ivnet/common/units.hpp"

namespace ivnet {

Antenna::Antenna(std::string name, double gain_dbi, double aperture_cap_m2)
    : name_(std::move(name)),
      gain_dbi_(gain_dbi),
      aperture_cap_m2_(aperture_cap_m2) {}

double Antenna::gain_linear() const { return from_db(gain_dbi_); }

double Antenna::effective_aperture_m2(double freq_hz, const Medium& medium) const {
  const double lambda = medium.wavelength_in(freq_hz);
  const double aperture = gain_linear() * lambda * lambda / (4.0 * kPi);
  if (aperture_cap_m2_ > 0.0) return std::min(aperture, aperture_cap_m2_);
  return aperture;
}

double Antenna::orientation_gain(double theta_rad) const {
  // Dipole-ish pattern with a -17 dB floor at the null.
  constexpr double kFloor = 0.02;
  const double c = std::abs(std::cos(theta_rad));
  return kFloor + (1.0 - kFloor) * c * c;
}

void Antenna::set_polarization_factor(double factor) {
  assert(factor > 0.0 && factor <= 1.0);
  polarization_factor_ = factor;
}

namespace antennas {

Antenna mt242025() { return Antenna("MT-242025", 7.0); }

Antenna standard_tag_antenna() {
  // 1.4 cm x 7 cm meandered dipole; ~2 dBi in air, aperture capped at a few
  // times the physical footprint (9.8 cm^2).
  Antenna ant("AD-238u8", 2.0, /*aperture_cap_m2=*/3.0e-3);
  ant.set_polarization_factor(0.5);  // RHCP reader -> linear tag
  return ant;
}

Antenna miniature_tag_antenna() {
  // 1.2 cm x 0.3 cm: electrically tiny; low gain and a hard aperture cap
  // near its physical area (0.36 cm^2 footprint).
  Antenna ant("Dash-On-XS", -6.0, /*aperture_cap_m2=*/2.5e-5);
  ant.set_polarization_factor(0.5);
  return ant;
}

}  // namespace antennas
}  // namespace ivnet
