// Antenna models: transmit-side gain and the receive-side effective aperture
// that Sec. 2.2.2 identifies as the miniature-device bottleneck (Eq. 3).
#pragma once

#include <string>

#include "ivnet/media/medium.hpp"

namespace ivnet {

/// A transmit or receive antenna.
///
/// Receive behaviour is governed by the effective aperture
///   A_eff = G * lambda^2 / (4*pi)
/// where lambda is the wavelength *in the surrounding medium* — a key reason
/// in-tissue apertures shrink (lambda drops by sqrt(eps_r)). Millimeter tags
/// additionally cap their aperture by physical size: an electrically small
/// antenna cannot exceed ~A_physical by much, so we take
///   A_eff = min(G*lambda^2/4pi, aperture_cap_m2)  when a cap is set.
class Antenna {
 public:
  /// @param name          Human-readable label.
  /// @param gain_dbi      Boresight gain [dBi].
  /// @param aperture_cap_m2  Physical-size aperture cap; <= 0 means uncapped.
  Antenna(std::string name, double gain_dbi, double aperture_cap_m2 = 0.0);

  const std::string& name() const { return name_; }
  double gain_dbi() const { return gain_dbi_; }
  double gain_linear() const;

  /// Effective aperture [m^2] at `freq_hz` in `medium`.
  double effective_aperture_m2(double freq_hz, const Medium& medium) const;

  /// Orientation pattern factor in [0, 1] for a misalignment angle `theta`
  /// [rad] off boresight: a dipole-like |cos(theta)|-based pattern with a
  /// floor so the null is not perfect (real tags keep a weak response).
  double orientation_gain(double theta_rad) const;

  /// Polarization mismatch power factor in [0, 1]. RHCP reader antenna to a
  /// linear tag antenna is the classic 3 dB (0.5); set via config.
  double polarization_factor() const { return polarization_factor_; }
  void set_polarization_factor(double factor);

 private:
  std::string name_;
  double gain_dbi_;
  double aperture_cap_m2_;
  double polarization_factor_ = 1.0;
};

namespace antennas {
/// MTI MT-242025: the 7 dBi RHCP panel used by IVN's beamformer (Sec. 5(a)).
Antenna mt242025();
/// Avery Dennison AD-238u8 standard UHF tag antenna (1.4 cm x 7 cm dipole).
Antenna standard_tag_antenna();
/// Xerafy Dash-On XS miniature tag antenna (1.2 cm x 0.3 cm x 0.22 cm).
Antenna miniature_tag_antenna();
}  // namespace antennas

}  // namespace ivnet
