#include "ivnet/rf/channel.hpp"

#include <cassert>
#include <cmath>
#include <utility>

#include "ivnet/common/units.hpp"

namespace ivnet {

Channel::Channel(std::vector<std::vector<Ray>> rays_per_tx)
    : rays_(std::move(rays_per_tx)) {}

cplx Channel::gain(std::size_t tx, double freq_offset_hz) const {
  assert(tx < rays_.size());
  cplx h{0.0, 0.0};
  for (const Ray& ray : rays_[tx]) {
    h += std::polar(ray.amplitude,
                    ray.phase - kTwoPi * freq_offset_hz * ray.delay_s);
  }
  return h;
}

double Channel::power_gain(std::size_t tx, double freq_offset_hz) const {
  return std::norm(gain(tx, freq_offset_hz));
}

void Channel::resample_phases(Rng& rng) {
  for (auto& antenna_rays : rays_) {
    for (Ray& ray : antenna_rays) ray.phase = rng.phase();
  }
}

Channel make_blind_channel(std::span<const double> amplitudes, Rng& rng) {
  std::vector<std::vector<Ray>> rays;
  rays.reserve(amplitudes.size());
  for (double amp : amplitudes) {
    rays.push_back({Ray{.amplitude = amp, .delay_s = 0.0, .phase = rng.phase()}});
  }
  return Channel(std::move(rays));
}

Channel make_multipath_channel(std::span<const double> amplitudes,
                               std::size_t num_rays, double delay_spread_s,
                               Rng& rng) {
  assert(num_rays >= 1);
  std::vector<std::vector<Ray>> rays;
  rays.reserve(amplitudes.size());
  for (double amp : amplitudes) {
    std::vector<Ray> antenna_rays;
    antenna_rays.reserve(num_rays);
    // Exponential power-delay profile p_k ~ e^{-k/num_rays * 3}; normalize so
    // sum of ray powers equals amp^2 (energy conservation in expectation).
    std::vector<double> powers(num_rays);
    double total = 0.0;
    for (std::size_t k = 0; k < num_rays; ++k) {
      powers[k] = std::exp(-3.0 * static_cast<double>(k) /
                           static_cast<double>(num_rays));
      total += powers[k];
    }
    for (std::size_t k = 0; k < num_rays; ++k) {
      const double ray_amp = amp * std::sqrt(powers[k] / total);
      const double delay =
          delay_spread_s * static_cast<double>(k) /
          std::max<double>(1.0, static_cast<double>(num_rays - 1));
      antenna_rays.push_back(
          Ray{.amplitude = ray_amp, .delay_s = delay, .phase = rng.phase()});
    }
    rays.push_back(std::move(antenna_rays));
  }
  return Channel(std::move(rays));
}

Waveform receive(const Channel& channel, std::span<const Waveform> tx_waves,
                 std::span<const double> tx_offsets_hz) {
  assert(tx_waves.size() == channel.num_tx());
  assert(tx_offsets_hz.size() == tx_waves.size());
  Waveform rx;
  for (std::size_t i = 0; i < tx_waves.size(); ++i) {
    accumulate(rx, tx_waves[i], channel.gain(i, tx_offsets_hz[i]));
  }
  return rx;
}

}  // namespace ivnet
