// Channel models between the multi-antenna transmitter and the in-vivo sensor.
//
// The defining property of the problem (Sec. 3.1) is that the channel is
// BLIND: tissue inhomogeneity and multipath make the per-antenna phases
// unpredictable, and the battery-free sensor cannot be asked for feedback.
// We therefore model each TX antenna -> sensor path as one or more rays whose
// amplitudes come from the propagation physics but whose phases are sampled
// uniformly at random — exactly the beta_i ~ U[0, 2pi) of Eq. 5.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "ivnet/common/rng.hpp"
#include "ivnet/signal/waveform.hpp"

namespace ivnet {

/// One propagation ray: amplitude (voltage gain), group delay, and the
/// unknown phase accumulated through tissue boundaries and reflections.
struct Ray {
  double amplitude = 0.0;  ///< |h| contribution (V at sensor per sqrt-W sent).
  double delay_s = 0.0;    ///< group delay; adds -2*pi*f*delay phase slope.
  double phase = 0.0;      ///< frequency-flat unknown phase offset.
};

/// Frequency-dependent complex channel from each TX antenna to the sensor.
///
/// `gain(i, f)` returns the complex voltage gain of antenna i evaluated at
/// absolute frequency offset `f` from the band center (complex baseband
/// convention shared with Waveform).
class Channel {
 public:
  explicit Channel(std::vector<std::vector<Ray>> rays_per_tx);

  std::size_t num_tx() const { return rays_.size(); }

  /// Complex gain of TX antenna `tx` at baseband offset `freq_offset_hz`.
  cplx gain(std::size_t tx, double freq_offset_hz) const;

  /// |gain|^2 — power gain of one antenna's path.
  double power_gain(std::size_t tx, double freq_offset_hz) const;

  /// Re-sample every ray phase uniformly at random: a fresh "blind" draw of
  /// the same physical link (new sensor placement/orientation, Sec. 3.5).
  void resample_phases(Rng& rng);

  const std::vector<std::vector<Ray>>& rays() const { return rays_; }

 private:
  std::vector<std::vector<Ray>> rays_;
};

/// Single-ray blind channel: per-antenna amplitude from physics, phase
/// uniform at random. This is Eq. 5's model.
Channel make_blind_channel(std::span<const double> amplitudes, Rng& rng);

/// Rich multipath channel: `num_rays` rays per antenna with an exponential
/// power-delay profile of RMS spread `delay_spread_s`, normalized so the
/// expected total power equals amplitude^2. Random phases per ray.
Channel make_multipath_channel(std::span<const double> amplitudes,
                               std::size_t num_rays, double delay_spread_s,
                               Rng& rng);

/// Received waveform when each TX antenna i transmits `tx_waves[i]` centered
/// at baseband offset `tx_offsets_hz[i]` (narrowband: the channel is
/// evaluated at the carrier offset of each antenna).
Waveform receive(const Channel& channel, std::span<const Waveform> tx_waves,
                 std::span<const double> tx_offsets_hz);

}  // namespace ivnet
