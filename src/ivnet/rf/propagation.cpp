#include "ivnet/rf/propagation.hpp"

#include <cassert>
#include <cmath>
#include <utility>

#include "ivnet/common/units.hpp"

namespace ivnet {

double air_field_amplitude(double tx_power_w, double tx_gain_dbi, double r_m) {
  assert(r_m > 0.0);
  return std::sqrt(60.0 * tx_power_w * from_db(tx_gain_dbi)) / r_m;
}

LinkBudget::LinkBudget(Antenna tx_antenna, Antenna rx_antenna,
                       LayeredMedium stack)
    : tx_(std::move(tx_antenna)),
      rx_(std::move(rx_antenna)),
      stack_(std::move(stack)) {}

std::complex<double> LinkBudget::field_per_sqrt_watt(const LinkGeometry& geom,
                                                     double freq_hz) const {
  const double e_air = air_field_amplitude(1.0, tx_.gain_dbi(), geom.air_distance_m);
  // Air-path phase: 2*pi*r/lambda.
  const double air_phase = -kTwoPi * geom.air_distance_m / wavelength(freq_hz);
  std::complex<double> field = std::polar(e_air, air_phase);
  if (geom.depth_m > 0.0 && !stack_.layers().empty()) {
    field *= stack_.field_transfer_at_depth(freq_hz, geom.depth_m);
  }
  return field;
}

double LinkBudget::power_gain(const LinkGeometry& geom, double freq_hz) const {
  const std::complex<double> field = field_per_sqrt_watt(geom, freq_hz);
  const Medium& local = (geom.depth_m > 0.0 && !stack_.layers().empty())
                            ? stack_.medium_at_depth(geom.depth_m)
                            : stack_.outer();
  const double eta = std::abs(local.impedance(freq_hz));
  // Eq. 3 with peak-field convention: time-average power density of a
  // travelling wave is |E_peak|^2 / (2*eta).
  const double density = std::norm(field) / (2.0 * eta);
  const double aperture = rx_.effective_aperture_m2(freq_hz, local);
  return density * aperture * rx_.orientation_gain(geom.orientation_rad) *
         rx_.polarization_factor();
}

double LinkBudget::voltage_per_sqrt_watt(const LinkGeometry& geom,
                                         double freq_hz,
                                         double rx_resistance_ohm) const {
  const double p = power_gain(geom, freq_hz);
  return std::sqrt(2.0 * p * rx_resistance_ohm);
}

}  // namespace ivnet
