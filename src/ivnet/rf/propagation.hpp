// Propagation physics: Eq. 2 (|E| = T*A/r * e^{-alpha*d}) and Eq. 3
// (P_L = E^2/eta * A_eff), composed into a single link-budget helper.
//
// Geometry matches Fig. 3: the transmitter stands a distance r in air from
// the body (or tank) surface; the sensor sits a further depth d inside the
// medium stack.
#pragma once

#include <complex>

#include "ivnet/media/layered.hpp"
#include "ivnet/media/medium.hpp"
#include "ivnet/rf/antenna.hpp"

namespace ivnet {

/// RMS -> peak field convention: all field amplitudes here are PEAK [V/m].

/// Peak electric field at distance `r_m` in air from a transmitter radiating
/// `tx_power_w` through an antenna of `tx_gain_dbi`:
///   E = sqrt(60 * P * G) / r        (from S = PG/(4*pi*r^2), E = sqrt(2*eta0*S))
double air_field_amplitude(double tx_power_w, double tx_gain_dbi, double r_m);

/// One TX-antenna -> sensor link.
struct LinkGeometry {
  double air_distance_m = 1.0;   ///< r: transmitter to the medium boundary.
  double depth_m = 0.0;          ///< d: boundary to the sensor.
  double orientation_rad = 0.0;  ///< sensor misalignment off boresight.
};

/// Full link budget for one transmit antenna and one sensor.
class LinkBudget {
 public:
  /// @param tx_antenna  Transmit antenna (gain used; Eq. 2's A via power).
  /// @param rx_antenna  Sensor antenna (aperture per Eq. 3).
  /// @param stack       Media the wave crosses after the air path; the
  ///                    sensor sits `depth_m` into this stack.
  LinkBudget(Antenna tx_antenna, Antenna rx_antenna, LayeredMedium stack);

  /// Complex field at the sensor per sqrt-watt of transmit power [V/m/√W]:
  /// air spreading * boundary transmissions * in-tissue attenuation+phase.
  std::complex<double> field_per_sqrt_watt(const LinkGeometry& geom,
                                           double freq_hz) const;

  /// Power available to the sensor's harvester per watt transmitted
  /// (dimensionless power gain), Eq. 3 with orientation & polarization:
  ///   P_L / P_tx = |E_1W|^2 / eta_medium * A_eff * G_orient * G_pol
  double power_gain(const LinkGeometry& geom, double freq_hz) const;

  /// Open-circuit peak voltage amplitude at the harvester input per
  /// sqrt-watt transmitted [V/√W], assuming a matched antenna of input
  /// resistance `rx_resistance_ohm`: V = sqrt(2 * P_L * R).
  double voltage_per_sqrt_watt(const LinkGeometry& geom, double freq_hz,
                               double rx_resistance_ohm) const;

  const Antenna& tx_antenna() const { return tx_; }
  const Antenna& rx_antenna() const { return rx_; }
  const LayeredMedium& stack() const { return stack_; }

 private:
  Antenna tx_;
  Antenna rx_;
  LayeredMedium stack_;
};

}  // namespace ivnet
