#include "ivnet/rf/sounding.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ivnet {

DelayProfile delay_profile(const Channel& channel, std::size_t tx) {
  assert(tx < channel.num_tx());
  DelayProfile profile;
  const auto& rays = channel.rays()[tx];
  double weighted = 0.0;
  for (const Ray& ray : rays) {
    const double p = ray.amplitude * ray.amplitude;
    profile.total_power += p;
    weighted += p * ray.delay_s;
  }
  if (profile.total_power <= 0.0) return profile;
  profile.mean_delay_s = weighted / profile.total_power;
  double second = 0.0;
  for (const Ray& ray : rays) {
    const double p = ray.amplitude * ray.amplitude;
    const double d = ray.delay_s - profile.mean_delay_s;
    second += p * d * d;
  }
  profile.rms_spread_s = std::sqrt(second / profile.total_power);
  return profile;
}

double coherence_bandwidth_hz(const DelayProfile& profile) {
  if (profile.rms_spread_s <= 0.0) return 1e18;
  return 1.0 / (5.0 * profile.rms_spread_s);
}

double band_flatness(const Channel& channel, std::size_t tx, double f_lo_hz,
                     double f_hi_hz, std::size_t points) {
  assert(points >= 2 && f_hi_hz > f_lo_hz);
  double lo = 1e300, hi = 0.0;
  for (std::size_t k = 0; k < points; ++k) {
    const double f = f_lo_hz + (f_hi_hz - f_lo_hz) * static_cast<double>(k) /
                                   static_cast<double>(points - 1);
    const double mag = std::abs(channel.gain(tx, f));
    lo = std::min(lo, mag);
    hi = std::max(hi, mag);
  }
  if (hi <= 0.0) return 0.0;
  return lo / hi;
}

bool plan_within_coherence(const Channel& channel,
                           std::span<const double> offsets_hz,
                           double tolerance) {
  double span = 0.0;
  for (double f : offsets_hz) span = std::max(span, std::abs(f));
  for (std::size_t tx = 0; tx < channel.num_tx(); ++tx) {
    if (band_flatness(channel, tx, -span, span) < 1.0 - tolerance) {
      return false;
    }
  }
  return true;
}

}  // namespace ivnet
