// Channel sounding: delay spread and coherence bandwidth estimation.
//
// Eq. 10's formulation "assumes that all the frequencies lie within the
// coherence bandwidth" (Sec. 3.7). These helpers quantify that assumption
// for a channel model: the RMS delay spread of its power-delay profile and
// the classic coherence bandwidth Bc ~ 1/(5 * tau_rms), plus a direct
// frequency-domain check that the CIB plan's span is flat.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ivnet/rf/channel.hpp"

namespace ivnet {

/// Power-delay statistics of one TX antenna's ray set.
struct DelayProfile {
  double mean_delay_s = 0.0;   ///< power-weighted mean excess delay
  double rms_spread_s = 0.0;   ///< RMS delay spread
  double total_power = 0.0;    ///< sum of ray powers
};

/// Compute the delay profile of antenna `tx` of a channel.
DelayProfile delay_profile(const Channel& channel, std::size_t tx);

/// Coherence bandwidth from the RMS delay spread (50 %-correlation rule):
/// Bc = 1 / (5 * tau_rms). Returns +inf-like 1e18 for zero spread.
double coherence_bandwidth_hz(const DelayProfile& profile);

/// Frequency-domain flatness check: the ratio of the minimum to maximum
/// |H(f)| of antenna `tx` over [f_lo, f_hi] sampled at `points` — 1.0 means
/// perfectly flat, small values mean a notch inside the span.
double band_flatness(const Channel& channel, std::size_t tx, double f_lo_hz,
                     double f_hi_hz, std::size_t points = 33);

/// True when every antenna's response is flat (within `tolerance` of 1.0)
/// across the CIB plan's offset span — the Sec. 3.7 assumption, checkable.
bool plan_within_coherence(const Channel& channel,
                           std::span<const double> offsets_hz,
                           double tolerance = 0.05);

}  // namespace ivnet
