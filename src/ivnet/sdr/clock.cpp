#include "ivnet/sdr/clock.hpp"

namespace ivnet {

ClockDistribution::ClockDistribution(double pps_jitter_s, double ref_ppm_rms)
    : pps_jitter_s_(pps_jitter_s), ref_ppm_rms_(ref_ppm_rms) {}

ClockDistribution ClockDistribution::octoclock() {
  // Shared 10 MHz + PPS: ~5 ns inter-device alignment, negligible drift.
  return ClockDistribution(5e-9, 0.0);
}

ClockDistribution ClockDistribution::free_running() {
  // Independent TCXOs: tens of microseconds of trigger skew, ~2 ppm drift.
  return ClockDistribution(20e-6, 2.0);
}

std::vector<DeviceClock> ClockDistribution::distribute(std::size_t num_devices,
                                                       Rng& rng) const {
  std::vector<DeviceClock> clocks(num_devices);
  for (auto& clock : clocks) {
    clock.start_offset_s = rng.normal(0.0, pps_jitter_s_);
    clock.ppm_error = rng.normal(0.0, ref_ppm_rms_);
  }
  return clocks;
}

}  // namespace ivnet
