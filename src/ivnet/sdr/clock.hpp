// Shared-clock distribution model (the CDA-2900 Octoclock of Sec. 5(a)):
// a 10 MHz reference that removes inter-device frequency error and a PPS
// pulse that aligns transmission start times to within a small jitter.
//
// CIB requires coherent *commands* (synchronized envelopes) even though its
// carriers are deliberately incoherent; the clock model quantifies how much
// start-time misalignment the system tolerates (tested in tests/sdr).
#pragma once

#include <vector>

#include "ivnet/common/rng.hpp"

namespace ivnet {

/// Per-device timing/frequency references distributed by the clock box.
struct DeviceClock {
  double start_offset_s = 0.0;  ///< residual PPS alignment error
  double ppm_error = 0.0;       ///< residual reference frequency error
};

/// The distribution unit: generates per-device clocks.
class ClockDistribution {
 public:
  /// @param pps_jitter_s  RMS start-time jitter between devices (ns-scale
  ///        with a shared PPS; large when devices free-run).
  /// @param ref_ppm_rms   RMS frequency error (0 when the 10 MHz reference
  ///        is shared, ~2 ppm free-running TCXO otherwise).
  ClockDistribution(double pps_jitter_s, double ref_ppm_rms);

  /// Shared Octoclock: ns jitter, no frequency error.
  static ClockDistribution octoclock();

  /// Free-running devices: microsecond-scale start error, ppm drift.
  static ClockDistribution free_running();

  /// Draw clocks for `num_devices` devices.
  std::vector<DeviceClock> distribute(std::size_t num_devices, Rng& rng) const;

  double pps_jitter_s() const { return pps_jitter_s_; }
  double ref_ppm_rms() const { return ref_ppm_rms_; }

 private:
  double pps_jitter_s_;
  double ref_ppm_rms_;
};

}  // namespace ivnet
