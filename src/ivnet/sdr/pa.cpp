#include "ivnet/sdr/pa.hpp"

#include <cmath>

#include "ivnet/common/units.hpp"

namespace ivnet {

PowerAmplifier::PowerAmplifier(double gain_db, double p1db_dbm, double smoothness)
    : gain_db_(gain_db), p1db_dbm_(p1db_dbm), smoothness_(smoothness),
      gain_linear_(db_to_amplitude(gain_db)) {
  // Solve for a_sat so that at the 1-dB compression point the Rapp model
  // output is exactly 1 dB below the linear extrapolation. With
  // r = a_out_linear / a_sat: (1 + r^(2p))^(1/(2p)) = 10^(1/20).
  const double c = std::pow(10.0, 1.0 / 20.0);  // 1 dB amplitude ratio
  const double two_p = 2.0 * smoothness_;
  const double r = std::pow(std::pow(c, two_p) - 1.0, 1.0 / two_p);
  // a_out at P1dB (actual output) is sqrt(2 * P1dB) in peak-amplitude terms;
  // for sqrt-watt sample convention |x|^2 = average power, so amplitude at
  // P1dB is sqrt(P1dB W).
  const double a_p1db = std::sqrt(dbm_to_watts(p1db_dbm_));
  // Linear-extrapolated output at that drive is 1 dB above actual.
  const double a_linear = a_p1db * c;
  a_sat_ = a_linear / r;
}

double PowerAmplifier::output_amplitude(double input_amplitude) const {
  const double a = gain_linear_ * input_amplitude;
  const double two_p = 2.0 * smoothness_;
  return a / std::pow(1.0 + std::pow(a / a_sat_, two_p), 1.0 / two_p);
}

void PowerAmplifier::apply(Waveform& wave) const {
  for (auto& s : wave.samples) {
    const double a = std::abs(s);
    if (a <= 0.0) continue;
    s *= output_amplitude(a) / a;
  }
}

}  // namespace ivnet
