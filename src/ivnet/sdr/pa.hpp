// Power-amplifier model — the HMC453QS16 of Sec. 5(a) (30 dBm 1-dB
// compression point). CIB cares about PA linearity because each antenna
// transmits a single tone: as long as per-antenna drive stays below
// compression, the frequency-encoded sum at the sensor is undistorted.
#pragma once

#include "ivnet/signal/waveform.hpp"

namespace ivnet {

/// Rapp soft-limiter AM/AM model:
///   g(a) = G*a / (1 + (G*a/a_sat)^(2p))^(1/(2p))
class PowerAmplifier {
 public:
  /// @param gain_db   Small-signal gain.
  /// @param p1db_dbm  Output-referred 1-dB compression point.
  /// @param smoothness  Rapp p parameter (2-3 for class-AB amplifiers).
  PowerAmplifier(double gain_db, double p1db_dbm, double smoothness = 2.0);

  /// Amplify a waveform in place (samples in sqrt-watt units).
  void apply(Waveform& wave) const;

  /// Output amplitude for an input amplitude (sqrt-watt units).
  double output_amplitude(double input_amplitude) const;

  double gain_db() const { return gain_db_; }
  double p1db_dbm() const { return p1db_dbm_; }

  /// Output saturation amplitude [sqrt-W].
  double saturation_amplitude() const { return a_sat_; }

 private:
  double gain_db_;
  double p1db_dbm_;
  double smoothness_;
  double gain_linear_;  // amplitude gain
  double a_sat_;        // output saturation amplitude
};

}  // namespace ivnet
