#include "ivnet/sdr/pll.hpp"

#include "ivnet/common/units.hpp"

namespace ivnet {

Pll::Pll(double nominal_hz, double ref_ppm_error, Rng& rng)
    : nominal_hz_(nominal_hz), ppm_error_(ref_ppm_error), theta_(rng.phase()) {}

double Pll::actual_hz() const { return nominal_hz_ * (1.0 + ppm_error_ * 1e-6); }

double Pll::phase_at(double t_s) const {
  return wrap_phase(theta_ + kTwoPi * actual_hz() * t_s);
}

void Pll::relock(Rng& rng) { theta_ = rng.phase(); }

}  // namespace ivnet
