#include "ivnet/sdr/radio.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "ivnet/common/units.hpp"

namespace ivnet {

RadioArray::RadioArray(std::size_t num_devices, const RadioArrayConfig& config,
                       Rng& rng)
    : config_(config),
      pa_(config.pa_gain_db, config.pa_p1db_dbm),
      offsets_hz_(num_devices, 0.0) {
  device_clocks_ = config_.clocks.distribute(num_devices, rng);
  plls_.reserve(num_devices);
  for (std::size_t i = 0; i < num_devices; ++i) {
    plls_.emplace_back(config_.center_hz, device_clocks_[i].ppm_error, rng);
  }
}

void RadioArray::tune(std::span<const double> offsets_hz) {
  assert(offsets_hz.size() == plls_.size());
  offsets_hz_.assign(offsets_hz.begin(), offsets_hz.end());
}

std::vector<double> RadioArray::actual_offsets_hz() const {
  std::vector<double> actual(plls_.size());
  for (std::size_t i = 0; i < plls_.size(); ++i) {
    // Reference error shifts the full carrier; at baseband that appears as
    // an extra offset of center * ppm * 1e-6.
    actual[i] = offsets_hz_[i] +
                config_.center_hz * device_clocks_[i].ppm_error * 1e-6;
  }
  return actual;
}

std::vector<double> RadioArray::initial_phases() const {
  std::vector<double> phases(plls_.size());
  for (std::size_t i = 0; i < plls_.size(); ++i) {
    phases[i] = plls_[i].initial_phase();
  }
  return phases;
}

std::vector<Waveform> RadioArray::transmit(std::span<const double> envelope,
                                           double start_time_s) const {
  const double fs = config_.sample_rate_hz;
  // Pad all waveforms to a common length covering the worst clock skew.
  std::ptrdiff_t max_skew = 0;
  std::vector<std::ptrdiff_t> skews(plls_.size());
  for (std::size_t i = 0; i < plls_.size(); ++i) {
    skews[i] = static_cast<std::ptrdiff_t>(
        std::llround(device_clocks_[i].start_offset_s * fs));
    max_skew = std::max(max_skew, std::abs(skews[i]));
  }
  const std::size_t length = envelope.size() + static_cast<std::size_t>(max_skew);

  const double drive_amp = std::sqrt(dbm_to_watts(config_.drive_dbm));
  const auto actual = actual_offsets_hz();

  std::vector<Waveform> waves;
  waves.reserve(plls_.size());
  for (std::size_t i = 0; i < plls_.size(); ++i) {
    Waveform wave;
    wave.sample_rate_hz = fs;
    wave.samples.assign(length, cplx{0.0, 0.0});
    const double dphi = kTwoPi * actual[i] / fs;
    const cplx step = std::polar(1.0, dphi);
    cplx rot = std::polar(
        1.0, plls_[i].initial_phase() + kTwoPi * actual[i] * start_time_s);
    for (std::size_t n = 0; n < length; ++n) {
      // Envelope sample this device plays at array time n (PPS skew shifts
      // the device's own timeline).
      const std::ptrdiff_t src = static_cast<std::ptrdiff_t>(n) - skews[i];
      double env = 0.0;
      if (src >= 0 && src < static_cast<std::ptrdiff_t>(envelope.size())) {
        env = envelope[static_cast<std::size_t>(src)];
      }
      const double in_amp = drive_amp * env;
      const double out_amp = pa_.output_amplitude(in_amp);
      wave.samples[n] = out_amp * rot;
      rot *= step;
      if ((n & 0xFFF) == 0xFFF) rot /= std::abs(rot);
    }
    waves.push_back(std::move(wave));
  }
  return waves;
}

void RadioArray::retune(Rng& rng) {
  for (auto& pll : plls_) pll.relock(rng);
}

}  // namespace ivnet
