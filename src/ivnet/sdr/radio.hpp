// Virtual multi-USRP transmitter array (Sec. 5(a)): N devices, each with its
// own PLL (random initial phase), a shared or free-running clock, and a PA.
//
// The array reproduces the software structure of the paper's prototype: all
// devices are handed the same command envelope and a per-device frequency
// offset ("we soft-coded these offsets directly into the complex numbers
// before sending them to the USRP"), then triggered together off the PPS.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ivnet/common/rng.hpp"
#include "ivnet/sdr/clock.hpp"
#include "ivnet/sdr/pa.hpp"
#include "ivnet/sdr/pll.hpp"
#include "ivnet/signal/waveform.hpp"

namespace ivnet {

/// Array-wide configuration.
struct RadioArrayConfig {
  double center_hz = 915e6;        ///< carrier all PLLs tune near
  double sample_rate_hz = 800e3;   ///< baseband sample rate
  double drive_dbm = 30.0;         ///< per-device drive at the PA input ref
  double pa_gain_db = 0.0;         ///< PA small-signal gain
  double pa_p1db_dbm = 30.0;       ///< HMC453 compression point
  ClockDistribution clocks = ClockDistribution::octoclock();
};

/// N synchronized transmit radios.
class RadioArray {
 public:
  RadioArray(std::size_t num_devices, const RadioArrayConfig& config, Rng& rng);

  std::size_t size() const { return plls_.size(); }
  const RadioArrayConfig& config() const { return config_; }

  /// Program per-device baseband frequency offsets (the CIB delta-f's).
  /// Size must equal size().
  void tune(std::span<const double> offsets_hz);

  const std::vector<double>& offsets_hz() const { return offsets_hz_; }

  /// Per-device actual offsets including residual reference error — what the
  /// sensor really receives; equals offsets_hz() under an Octoclock.
  std::vector<double> actual_offsets_hz() const;

  /// Per-device initial PLL phases (the theta_i of Eq. 5).
  std::vector<double> initial_phases() const;

  /// Transmit the same real-valued envelope from every device at its own
  /// offset, PPS-triggered: device i's waveform is delayed by its residual
  /// clock start offset (rounded to whole samples), carried at its actual
  /// offset with its PLL's random phase, amplified by the PA model.
  ///
  /// `start_time_s` sets the array time of the first sample, so a later
  /// burst (e.g. a query timed onto a CIB envelope peak) stays
  /// phase-continuous with an earlier one.
  ///
  /// Returns one waveform per device, all of equal length
  /// envelope.size() + max clock-skew padding.
  std::vector<Waveform> transmit(std::span<const double> envelope,
                                 double start_time_s = 0.0) const;

  /// Re-tune all PLLs: fresh random phases (a new trial).
  void retune(Rng& rng);

 private:
  RadioArrayConfig config_;
  PowerAmplifier pa_;
  std::vector<Pll> plls_;
  std::vector<DeviceClock> device_clocks_;
  std::vector<double> offsets_hz_;
};

}  // namespace ivnet
