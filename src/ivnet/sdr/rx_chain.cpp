#include "ivnet/sdr/rx_chain.hpp"

#include <cmath>
#include <utility>

#include "ivnet/signal/noise.hpp"
#include "ivnet/signal/resampler.hpp"

namespace ivnet {

RxChain::RxChain(RxChainConfig config) : config_(config) {
  if (config_.saw_bandwidth_hz > 0.0) {
    saw_.emplace(config_.saw_center_hz, config_.saw_bandwidth_hz,
                 config_.saw_rejection_db, config_.sample_rate_hz);
  }
}

RxCapture RxChain::process(const Waveform& antenna_signal, Rng& rng) const {
  return process(antenna_signal, rng, DspWorkspace::tls());
}

RxCapture RxChain::process(const Waveform& antenna_signal, Rng& rng,
                           DspWorkspace& ws) const {
  RxCapture capture;
  // Hardware: impairments first (they act on the analog signal), then
  // thermal noise referred to the chain's noise figure over the full rate.
  Waveform wave = apply_impairments(antenna_signal, config_.impairments);
  add_awgn(wave,
           thermal_noise_power(config_.sample_rate_hz,
                               config_.noise_figure_db),
           rng);

  // ADC clip.
  for (auto& s : wave.samples) {
    const double a = std::abs(s);
    if (a > config_.saturation_amplitude) {
      s *= config_.saturation_amplitude / a;
      capture.clipped = true;
    }
  }

  if (saw_) {
    // Filter into a workspace buffer, then recycle the pre-SAW storage.
    Waveform filtered;
    filtered.samples = ws.acquire_cplx(0);
    saw_->apply(wave, filtered, ws);
    std::swap(wave, filtered);
    ws.release(std::move(filtered.samples));
  }

  // Digital scrubbing.
  if (config_.correct_dc) capture.removed_dc = remove_dc(wave);
  if (config_.correct_cfo) {
    capture.estimated_cfo_hz = estimate_cfo(wave);
    remove_cfo(wave, capture.estimated_cfo_hz);
  }
  if (config_.correct_iq) {
    capture.estimated_imbalance = correct_iq_imbalance(wave);
  }
  if (config_.decimation > 1) wave = decimate(wave, config_.decimation, ws);

  capture.samples = std::move(wave);
  return capture;
}

}  // namespace ivnet
