// SDR receive chain: the reader-side front end between the antenna and the
// decoder. Models what the USRP RX path does to the backscatter signal —
// LNA noise, front-end saturation, direct-conversion IQ impairments, the
// SAW band filter, DC/CFO/IQ scrubbing, and decimation to the decode rate.
#pragma once

#include <optional>

#include "ivnet/common/rng.hpp"
#include "ivnet/signal/dsp_workspace.hpp"
#include "ivnet/signal/fir.hpp"
#include "ivnet/signal/iq.hpp"
#include "ivnet/signal/waveform.hpp"

namespace ivnet {

struct RxChainConfig {
  double sample_rate_hz = 800e3;
  double noise_figure_db = 6.0;
  double saturation_amplitude = 1.0;  ///< ADC clip level [sqrt-W]
  IqImpairments impairments;          ///< hardware imperfections to inject
  /// SAW passband (complex-baseband center/width); disabled when width <= 0.
  double saw_center_hz = 0.0;
  double saw_bandwidth_hz = 0.0;
  double saw_rejection_db = 50.0;
  std::size_t decimation = 1;
  bool correct_dc = true;
  bool correct_iq = true;
  bool correct_cfo = false;  ///< only valid on CW-dominated captures
};

/// Processed capture plus the chain's own telemetry.
struct RxCapture {
  Waveform samples;
  bool clipped = false;        ///< ADC saturation occurred
  cplx removed_dc{0.0, 0.0};
  double estimated_cfo_hz = 0.0;
  IqImpairments estimated_imbalance;
};

/// One receive front end.
class RxChain {
 public:
  explicit RxChain(RxChainConfig config);

  const RxChainConfig& config() const { return config_; }

  /// Run the chain over an antenna-referred waveform: inject hardware
  /// impairments and thermal noise, clip at the ADC, band-filter, then
  /// apply the configured digital corrections and decimation. Scratch
  /// comes from DspWorkspace::tls().
  RxCapture process(const Waveform& antenna_signal, Rng& rng) const;

  /// As above with SAW/decimation scratch checked out of `ws` (sessions
  /// processing many captures share one workspace across trials).
  RxCapture process(const Waveform& antenna_signal, Rng& rng,
                    DspWorkspace& ws) const;

 private:
  RxChainConfig config_;
  std::optional<SawFilter> saw_;
};

}  // namespace ivnet
