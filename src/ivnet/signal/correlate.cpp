#include "ivnet/signal/correlate.hpp"

#include <cmath>
#include <numeric>

namespace ivnet {
namespace {

double span_mean(std::span<const double> x) {
  if (x.empty()) return 0.0;
  return std::accumulate(x.begin(), x.end(), 0.0) / static_cast<double>(x.size());
}

}  // namespace

double normalized_correlation(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  const double ma = span_mean(a);
  const double mb = span_mean(b);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    dot += da * db;
    na += da * da;
    nb += db * db;
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

CorrelationNeedle::CorrelationNeedle(std::span<const double> needle) {
  // The cached quantities must be the exact values the one-shot kernel
  // derives: same mean division, same ascending accumulation of nb.
  const double mean = span_mean(needle);
  deviations_.resize(needle.size());
  for (std::size_t i = 0; i < needle.size(); ++i) {
    deviations_[i] = needle[i] - mean;
    norm_sq_ += deviations_[i] * deviations_[i];
  }
}

double CorrelationNeedle::correlate(std::span<const double> window) const {
  if (window.size() != deviations_.size() || window.empty()) return 0.0;
  const double ma = span_mean(window);
  double dot = 0.0, na = 0.0;
  for (std::size_t i = 0; i < window.size(); ++i) {
    const double da = window[i] - ma;
    dot += da * deviations_[i];
    na += da * da;
  }
  if (na <= 0.0 || norm_sq_ <= 0.0) return 0.0;
  return dot / std::sqrt(na * norm_sq_);
}

CorrelationPeak best_correlation(std::span<const double> haystack,
                                 std::span<const double> needle) {
  CorrelationPeak best;
  if (needle.empty() || needle.size() > haystack.size()) return best;
  const CorrelationNeedle cached(needle);
  const std::size_t last = haystack.size() - needle.size();
  for (std::size_t off = 0; off <= last; ++off) {
    const double corr = cached.correlate(haystack.subspan(off, needle.size()));
    if (corr > best.value) {
      best.value = corr;
      best.offset = off;
    }
  }
  return best;
}

double complex_correlation(std::span<const cplx> a, std::span<const cplx> b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  cplx dot{0.0, 0.0};
  double na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * std::conj(b[i]);
    na += std::norm(a[i]);
    nb += std::norm(b[i]);
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return std::abs(dot) / std::sqrt(na * nb);
}

std::vector<double> sliding_correlation(std::span<const double> haystack,
                                        std::span<const double> needle) {
  if (needle.empty() || needle.size() > haystack.size()) return {};
  const CorrelationNeedle cached(needle);
  const std::size_t n = haystack.size() - needle.size() + 1;
  std::vector<double> out(n);
  for (std::size_t off = 0; off < n; ++off) {
    out[off] = cached.correlate(haystack.subspan(off, needle.size()));
  }
  return out;
}

}  // namespace ivnet
