#include "ivnet/signal/correlate.hpp"

#include <cmath>
#include <numeric>

namespace ivnet {
namespace {

double span_mean(std::span<const double> x) {
  if (x.empty()) return 0.0;
  return std::accumulate(x.begin(), x.end(), 0.0) / static_cast<double>(x.size());
}

}  // namespace

double normalized_correlation(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  const double ma = span_mean(a);
  const double mb = span_mean(b);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    dot += da * db;
    na += da * da;
    nb += db * db;
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

CorrelationPeak best_correlation(std::span<const double> haystack,
                                 std::span<const double> needle) {
  CorrelationPeak best;
  if (needle.empty() || needle.size() > haystack.size()) return best;
  const std::size_t last = haystack.size() - needle.size();
  for (std::size_t off = 0; off <= last; ++off) {
    const double corr =
        normalized_correlation(haystack.subspan(off, needle.size()), needle);
    if (corr > best.value) {
      best.value = corr;
      best.offset = off;
    }
  }
  return best;
}

double complex_correlation(std::span<const cplx> a, std::span<const cplx> b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  cplx dot{0.0, 0.0};
  double na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * std::conj(b[i]);
    na += std::norm(a[i]);
    nb += std::norm(b[i]);
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return std::abs(dot) / std::sqrt(na * nb);
}

std::vector<double> sliding_correlation(std::span<const double> haystack,
                                        std::span<const double> needle) {
  if (needle.empty() || needle.size() > haystack.size()) return {};
  const std::size_t n = haystack.size() - needle.size() + 1;
  std::vector<double> out(n);
  for (std::size_t off = 0; off < n; ++off) {
    out[off] = normalized_correlation(haystack.subspan(off, needle.size()), needle);
  }
  return out;
}

}  // namespace ivnet
