// Correlation utilities. The in-vivo decode criterion in Sec. 6.2 is a
// normalized correlation of the received waveform against the tag's known
// 12-bit FM0 preamble, with success declared above 0.8.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ivnet/signal/waveform.hpp"

namespace ivnet {

/// Result of a sliding correlation search.
struct CorrelationPeak {
  double value = 0.0;      ///< Normalized correlation in [-1, 1].
  std::size_t offset = 0;  ///< Start index in the haystack.
};

/// Pearson-style normalized correlation between two equal-length real spans
/// (means removed, normalized by the product of norms). Degenerate inputs
/// return 0 rather than NaN: mismatched lengths, empty spans, and any span
/// with zero variance (constant values — which includes all length-1 spans,
/// whose single sample equals its own mean).
double normalized_correlation(std::span<const double> a, std::span<const double> b);

/// Precomputed needle-side statistics for repeated window correlations.
///
/// A sliding preamble search evaluates normalized_correlation at every
/// offset, re-deriving the needle's mean, deviations, and norm each time —
/// roughly 40% of the work for a quantity that never changes. This caches
/// them once; correlate() then only computes the window-side sums. Each
/// accumulator sees the identical sequence of adds the one-shot kernel
/// performs, so the result is bitwise-identical to
/// normalized_correlation(window, needle) — the fast path under
/// best_correlation, sliding_correlation, and the FM0/Miller preamble
/// searches.
class CorrelationNeedle {
 public:
  explicit CorrelationNeedle(std::span<const double> needle);

  std::size_t size() const { return deviations_.size(); }

  /// Bitwise-equal to normalized_correlation(window, original needle).
  /// Returns 0 when window.size() != size() or either side is degenerate.
  double correlate(std::span<const double> window) const;

 private:
  std::vector<double> deviations_;  // needle[i] - mean(needle)
  double norm_sq_ = 0.0;            // sum of squared deviations
};

/// Slide `needle` over `haystack` and return the best normalized correlation.
/// Returns {0, 0} when the needle is longer than the haystack or empty.
CorrelationPeak best_correlation(std::span<const double> haystack,
                                 std::span<const double> needle);

/// Complex inner-product correlation |<a, b>| / (|a||b|) of equal-length spans.
double complex_correlation(std::span<const cplx> a, std::span<const cplx> b);

/// Sampled matched filter output: correlation of the needle at every offset.
std::vector<double> sliding_correlation(std::span<const double> haystack,
                                        std::span<const double> needle);

}  // namespace ivnet
