#include "ivnet/signal/dsp_workspace.hpp"

namespace ivnet {

std::vector<double> DspWorkspace::acquire_real(std::size_t n) {
  std::vector<double> buf;
  if (!real_pool_.empty()) {
    buf = std::move(real_pool_.back());
    real_pool_.pop_back();
  }
  buf.resize(n);
  return buf;
}

std::vector<cplx> DspWorkspace::acquire_cplx(std::size_t n) {
  std::vector<cplx> buf;
  if (!cplx_pool_.empty()) {
    buf = std::move(cplx_pool_.back());
    cplx_pool_.pop_back();
  }
  buf.resize(n);
  return buf;
}

void DspWorkspace::release(std::vector<double>&& buf) {
  real_pool_.push_back(std::move(buf));
}

void DspWorkspace::release(std::vector<cplx>&& buf) {
  cplx_pool_.push_back(std::move(buf));
}

DspWorkspace& DspWorkspace::tls() {
  static thread_local DspWorkspace workspace;
  return workspace;
}

}  // namespace ivnet
