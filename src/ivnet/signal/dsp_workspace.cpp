#include "ivnet/signal/dsp_workspace.hpp"

namespace ivnet {
namespace {

/// Best-fit checkout: the free-list entry with the smallest capacity >= n,
/// or — when nothing is big enough — the largest entry (so one buffer grows
/// instead of several). The old LIFO policy regrew buffers pathologically
/// in batch loops: release a 460-cap and a 2700-cap buffer, then acquire
/// 460 → LIFO hands back the 2700-cap one, and the next acquire(2700) has
/// to regrow the 460-cap buffer. Best-fit makes a batch's steady state
/// allocation-free after the first trial. Linear scan: the pools hold a
/// handful of entries, so this is cheaper than keeping them sorted.
template <typename T>
std::vector<T> best_fit_take(std::vector<std::vector<T>>& pool,
                             std::size_t n) {
  std::size_t best = pool.size();
  std::size_t largest = 0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const std::size_t cap = pool[i].capacity();
    if (cap >= n && (best == pool.size() || cap < pool[best].capacity())) {
      best = i;
    }
    if (cap >= pool[largest].capacity()) largest = i;
  }
  if (best == pool.size()) best = largest;
  std::vector<T> buf = std::move(pool[best]);
  pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best));
  return buf;
}

}  // namespace

std::vector<double> DspWorkspace::acquire_real(std::size_t n) {
  std::vector<double> buf;
  if (!real_pool_.empty()) buf = best_fit_take(real_pool_, n);
  const std::size_t before = buf.capacity() * sizeof(double);
  buf.resize(n);
  grow_live(buf.capacity() * sizeof(double) - before);
  return buf;
}

std::vector<cplx> DspWorkspace::acquire_cplx(std::size_t n) {
  std::vector<cplx> buf;
  if (!cplx_pool_.empty()) buf = best_fit_take(cplx_pool_, n);
  const std::size_t before = buf.capacity() * sizeof(cplx);
  buf.resize(n);
  grow_live(buf.capacity() * sizeof(cplx) - before);
  return buf;
}

void DspWorkspace::release(std::vector<double>&& buf) {
  real_pool_.push_back(std::move(buf));
}

void DspWorkspace::release(std::vector<cplx>&& buf) {
  cplx_pool_.push_back(std::move(buf));
}

std::size_t DspWorkspace::pooled_bytes() const {
  std::size_t bytes = 0;
  for (const auto& buf : real_pool_) bytes += buf.capacity() * sizeof(double);
  for (const auto& buf : cplx_pool_) bytes += buf.capacity() * sizeof(cplx);
  return bytes;
}

void DspWorkspace::trim() {
  const std::size_t dropped = pooled_bytes();
  real_pool_.clear();
  real_pool_.shrink_to_fit();
  cplx_pool_.clear();
  cplx_pool_.shrink_to_fit();
  // Saturating: foreign buffers released into the pool were never counted
  // into live_bytes_, so dropping them must not underflow the level.
  live_bytes_ -= dropped < live_bytes_ ? dropped : live_bytes_;
}

void DspWorkspace::grow_live(std::size_t grown_bytes) {
  live_bytes_ += grown_bytes;
  if (live_bytes_ > high_water_bytes_) high_water_bytes_ = live_bytes_;
}

DspWorkspace& DspWorkspace::tls() {
  static thread_local DspWorkspace workspace;
  return workspace;
}

}  // namespace ivnet
