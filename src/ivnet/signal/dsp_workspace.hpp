// Reusable scratch-buffer arena for the sample-domain DSP pipeline.
//
// The hot waveform paths (SawFilter::apply, decimate, the complex FIR's
// split re/im lanes, per-command session envelopes) used to allocate fresh
// vectors — often hundreds of kilosamples — on every call, which dominated
// the allocator traffic of a waveform-session trial. A DspWorkspace keeps
// returned buffers on per-type free lists so steady-state trials run
// allocation-free: the campaign engine shards thousands of cells, and each
// cell's trials recycle the same few megasample buffers. Checkouts are
// best-fit by capacity (smallest parked buffer that already holds `n`), so
// mixed-size checkout patterns — a batch cycling small envelopes and large
// backscatter records — recycle instead of regrowing.
//
// Ownership rules (see docs/ARCHITECTURE.md, "DSP fast path"):
//  - A workspace is single-threaded state. Give each session/thread its
//    own; never share one across concurrent callers. The value-returning
//    DSP convenience overloads use a thread_local instance (tls()), so
//    pool workers each get their own automatically.
//  - acquire_*() returns a buffer resized to `n` with UNSPECIFIED contents
//    (it may hold stale samples from a previous checkout); callers must
//    fully overwrite it before reading.
//  - release() hands the buffer's capacity back for reuse. Releasing is an
//    optimization, not a correctness requirement: keeping (or moving out)
//    an acquired buffer is fine, the workspace just allocates a fresh one
//    next time.
//  - Nesting is safe: a kernel that has buffers checked out and calls
//    another workspace-taking kernel simply sees the free list minus its
//    own checkouts. Prefer ScopedBuffer so early returns can't leak a
//    checkout.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "ivnet/signal/waveform.hpp"

namespace ivnet {

class DspWorkspace {
 public:
  /// Check out a real/complex buffer resized to `n`. Contents unspecified.
  std::vector<double> acquire_real(std::size_t n);
  std::vector<cplx> acquire_cplx(std::size_t n);

  /// Return a buffer's storage to the free list (size is irrelevant; only
  /// capacity is recycled).
  void release(std::vector<double>&& buf);
  void release(std::vector<cplx>&& buf);

  /// Buffers currently parked on the free lists (for tests/telemetry).
  std::size_t pooled_real() const { return real_pool_.size(); }
  std::size_t pooled_cplx() const { return cplx_pool_.size(); }

  /// Capacity bytes currently parked on the free lists (checkouts excluded).
  std::size_t pooled_bytes() const;

  /// Drop every parked buffer, returning its capacity to the allocator.
  /// high_water_bytes() is unaffected (it is a peak, not a level); the live
  /// level drops by the parked bytes. The service front-end trims each
  /// worker's arena at shutdown so a stopped service holds no scratch.
  void trim();

  /// Peak bytes of buffer capacity this workspace has grown (pooled plus
  /// checked out), counting each buffer's capacity from the moment an
  /// acquire grows it. Deterministic for a deterministic checkout sequence;
  /// the batched pipeline reports it as the workspace.high_water_bytes
  /// gauge so arena regrowth regressions show up in metrics snapshots.
  /// Approximate in one corner: buffers a caller keeps instead of
  /// releasing, and foreign buffers passed to release(), are not tracked.
  std::size_t high_water_bytes() const { return high_water_bytes_; }

  /// Per-thread workspace used by the value-returning DSP convenience
  /// overloads (fir_filter, decimate, ...). Each pool worker gets its own,
  /// so the default path is both allocation-free in steady state and safe
  /// under the parallel trial loops.
  static DspWorkspace& tls();

 private:
  void grow_live(std::size_t grown_bytes);

  std::vector<std::vector<double>> real_pool_;
  std::vector<std::vector<cplx>> cplx_pool_;
  std::size_t live_bytes_ = 0;
  std::size_t high_water_bytes_ = 0;
};

/// RAII checkout: acquires on construction, releases on destruction, so a
/// kernel with multiple exits can't strand its scratch.
template <typename T>
class ScopedBuffer {
  static_assert(std::is_same_v<T, double> || std::is_same_v<T, cplx>,
                "DspWorkspace pools double and cplx buffers only");

 public:
  ScopedBuffer(DspWorkspace& ws, std::size_t n) : ws_(&ws) {
    if constexpr (std::is_same_v<T, double>) {
      buf_ = ws.acquire_real(n);
    } else {
      buf_ = ws.acquire_cplx(n);
    }
  }
  ~ScopedBuffer() { ws_->release(std::move(buf_)); }
  ScopedBuffer(const ScopedBuffer&) = delete;
  ScopedBuffer& operator=(const ScopedBuffer&) = delete;

  std::vector<T>& operator*() { return buf_; }
  std::vector<T>* operator->() { return &buf_; }
  T* data() { return buf_.data(); }
  const T* data() const { return buf_.data(); }
  std::size_t size() const { return buf_.size(); }

 private:
  DspWorkspace* ws_;
  std::vector<T> buf_;
};

}  // namespace ivnet
