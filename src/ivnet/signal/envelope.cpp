#include "ivnet/signal/envelope.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ivnet {

void envelope(const Waveform& wave, std::vector<double>& out) {
  out.resize(wave.samples.size());
  for (std::size_t i = 0; i < wave.samples.size(); ++i) {
    out[i] = std::abs(wave.samples[i]);
  }
}

std::vector<double> envelope(const Waveform& wave) {
  std::vector<double> env;
  envelope(wave, env);
  return env;
}

std::vector<double> moving_average(std::span<const double> x, std::size_t window) {
  assert(window >= 1);
  std::vector<double> out(x.size());
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum += x[i];
    ++count;
    if (count > window) {
      sum -= x[i - window];
      --count;
    }
    out[i] = sum / static_cast<double>(count);
  }
  return out;
}

std::vector<double> rc_lowpass(std::span<const double> x, double tau_s, double fs) {
  std::vector<double> out(x.size());
  const double dt = 1.0 / fs;
  const double a = dt / (tau_s + dt);
  double y = x.empty() ? 0.0 : x[0];
  for (std::size_t i = 0; i < x.size(); ++i) {
    y += a * (x[i] - y);
    out[i] = y;
  }
  return out;
}

double max_value(std::span<const double> env) {
  return env.empty() ? 0.0 : *std::max_element(env.begin(), env.end());
}

double min_value(std::span<const double> env) {
  return env.empty() ? 0.0 : *std::min_element(env.begin(), env.end());
}

double fluctuation(std::span<const double> env) {
  const double hi = max_value(env);
  if (hi <= 0.0) return 0.0;
  return (hi - min_value(env)) / hi;
}

std::vector<bool> slice(std::span<const double> env, double threshold) {
  std::vector<bool> bits(env.size());
  for (std::size_t i = 0; i < env.size(); ++i) bits[i] = env[i] >= threshold;
  return bits;
}

double midpoint_threshold(std::span<const double> env) {
  return 0.5 * (max_value(env) + min_value(env));
}

}  // namespace ivnet
