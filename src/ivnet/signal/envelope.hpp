// Envelope extraction and the amplitude-flatness metric of Eq. 7.
//
// Battery-free tags decode downlink commands by envelope detection: the tag's
// detector sees |x(t)| low-pass filtered by its RC front end. The functions
// here model that detector and compute the fluctuation metric
// (Amax - Amin)/Amax that the CIB flatness constraint (Eq. 9) bounds.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ivnet/signal/waveform.hpp"

namespace ivnet {

/// Instantaneous magnitude |x(t)| of a complex-baseband waveform.
std::vector<double> envelope(const Waveform& wave);

/// As above, writing into `out` (resized). Sessions that detect an envelope
/// per command attempt reuse one workspace-held buffer instead of
/// allocating a fresh megasample vector per trial.
void envelope(const Waveform& wave, std::vector<double>& out);

/// Simple moving average with a window of `window` samples (>= 1); models the
/// RC low-pass of an envelope detector. Output has the same length; edges use
/// a shrunken window.
std::vector<double> moving_average(std::span<const double> x, std::size_t window);

/// Single-pole RC low-pass y[n] = a*x[n] + (1-a)*y[n-1] with time constant
/// `tau_s` at sample rate `fs`.
std::vector<double> rc_lowpass(std::span<const double> x, double tau_s, double fs);

/// Fluctuation metric of Eq. 7: (Amax - Amin) / Amax over the span.
/// Returns 0 for empty or all-zero input.
double fluctuation(std::span<const double> env);

/// Largest value in the span (0 if empty).
double max_value(std::span<const double> env);

/// Smallest value in the span (0 if empty).
double min_value(std::span<const double> env);

/// Threshold-based on/off slicing used by a tag's envelope detector: returns
/// one bool per sample, true where env >= threshold. The Gen2 tag uses
/// (Amax+Amin)/2 as its decision threshold (Sec. 3.6(b)).
std::vector<bool> slice(std::span<const double> env, double threshold);

/// Midpoint threshold (Amax + Amin) / 2 of the span.
double midpoint_threshold(std::span<const double> env);

}  // namespace ivnet
