#include "ivnet/signal/fir.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "ivnet/common/units.hpp"
#include "ivnet/signal/fir_core.hpp"
#include "ivnet/signal/phasor.hpp"

namespace ivnet {
namespace {

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  return std::sin(kPi * x) / (kPi * x);
}

// Input validation must hold in release builds too: an assert-only check
// disappears under NDEBUG and a cutoff at/above Nyquist silently designs
// garbage taps (the sinc aliases), so these throw unconditionally.
[[noreturn]] void invalid(const std::string& what) {
  throw std::invalid_argument("fir: " + what);
}

}  // namespace

std::vector<double> design_lowpass(double cutoff_hz, double sample_rate_hz,
                                   std::size_t num_taps) {
  if (!(sample_rate_hz > 0.0)) invalid("sample_rate_hz must be > 0");
  if (!(cutoff_hz > 0.0 && cutoff_hz < sample_rate_hz / 2.0)) {
    invalid("cutoff_hz must be in (0, sample_rate_hz/2): got " +
            std::to_string(cutoff_hz) + " at fs " +
            std::to_string(sample_rate_hz));
  }
  if (num_taps == 0) invalid("num_taps must be >= 1");
  if (num_taps % 2 == 0) ++num_taps;
  const double fc = cutoff_hz / sample_rate_hz;  // normalized (cycles/sample)
  const auto mid = static_cast<double>(num_taps - 1) / 2.0;
  std::vector<double> taps(num_taps);
  double sum = 0.0;
  for (std::size_t n = 0; n < num_taps; ++n) {
    const double k = static_cast<double>(n) - mid;
    const double window =
        0.54 - 0.46 * std::cos(kTwoPi * static_cast<double>(n) /
                               static_cast<double>(num_taps - 1));
    taps[n] = 2.0 * fc * sinc(2.0 * fc * k) * window;
    sum += taps[n];
  }
  for (auto& t : taps) t /= sum;  // unit DC gain
  return taps;
}

std::vector<double> design_bandpass(double low_hz, double high_hz,
                                    double sample_rate_hz, std::size_t num_taps) {
  if (!(low_hz >= 0.0 && low_hz < high_hz)) {
    invalid("band edges must satisfy 0 <= low_hz < high_hz: got [" +
            std::to_string(low_hz) + ", " + std::to_string(high_hz) + "]");
  }
  if (!(high_hz <= sample_rate_hz / 2.0)) {
    invalid("high_hz must be <= sample_rate_hz/2: got " +
            std::to_string(high_hz) + " at fs " +
            std::to_string(sample_rate_hz));
  }
  auto lp = design_lowpass((high_hz - low_hz) / 2.0, sample_rate_hz, num_taps);
  const double center = (low_hz + high_hz) / 2.0;
  const auto mid = static_cast<double>(lp.size() - 1) / 2.0;
  // Shift the low-pass prototype up to the band center (real modulation, so
  // this creates a symmetric band-pass; gain at center doubles, renormalize).
  for (std::size_t n = 0; n < lp.size(); ++n) {
    const double k = static_cast<double>(n) - mid;
    lp[n] *= 2.0 * std::cos(kTwoPi * center * k / sample_rate_hz);
  }
  return lp;
}

void fir_filter(const Waveform& wave, std::span<const double> taps,
                Waveform& out, DspWorkspace& ws) {
  const std::size_t n = wave.samples.size();
  out.sample_rate_hz = wave.sample_rate_hz;
  out.samples.resize(n);
  // SoA: a complex sample convolved with real taps is two independent real
  // convolutions; split lanes keep the core loop's loads contiguous.
  ScopedBuffer<double> re(ws, n), im(ws, n), out_re(ws, n), out_im(ws, n);
  for (std::size_t i = 0; i < n; ++i) {
    re.data()[i] = wave.samples[i].real();
    im.data()[i] = wave.samples[i].imag();
  }
  detail::fir_same(re.data(), n, taps.data(), taps.size(), out_re.data());
  detail::fir_same(im.data(), n, taps.data(), taps.size(), out_im.data());
  for (std::size_t i = 0; i < n; ++i) {
    out.samples[i] = cplx{out_re.data()[i], out_im.data()[i]};
  }
}

Waveform fir_filter(const Waveform& wave, std::span<const double> taps) {
  Waveform out;
  fir_filter(wave, taps, out, DspWorkspace::tls());
  return out;
}

void fir_filter(std::span<const double> x, std::span<const double> taps,
                std::vector<double>& out) {
  out.resize(x.size());
  detail::fir_same(x.data(), x.size(), taps.data(), taps.size(), out.data());
}

std::vector<double> fir_filter(std::span<const double> x,
                               std::span<const double> taps) {
  std::vector<double> out;
  fir_filter(x, taps, out);
  return out;
}

SawFilter::SawFilter(double center_hz, double bandwidth_hz, double rejection_db,
                     double sample_rate_hz)
    : center_hz_(center_hz),
      bandwidth_hz_(bandwidth_hz),
      rejection_db_(rejection_db),
      sample_rate_hz_(sample_rate_hz),
      lowpass_taps_(design_lowpass(bandwidth_hz / 2.0, sample_rate_hz, 101)) {}

void SawFilter::apply(const Waveform& in, Waveform& out,
                      DspWorkspace& ws) const {
  // Shift the passband down to DC, low-pass, shift back. Add a small leakage
  // of the unfiltered input to model finite stopband rejection.
  const double dphi = -kTwoPi * center_hz_ / sample_rate_hz_;
  Waveform shifted;
  shifted.sample_rate_hz = in.sample_rate_hz;
  shifted.samples = ws.acquire_cplx(in.samples.size());
  PhasorRotator rot(0.0, dphi);
  for (std::size_t i = 0; i < in.samples.size(); ++i) {
    shifted.samples[i] = in.samples[i] * rot.value();
    rot.advance();
  }
  fir_filter(shifted, lowpass_taps_, out, ws);
  ws.release(std::move(shifted.samples));

  const double leak = db_to_amplitude(-rejection_db_);
  PhasorRotator unrot(0.0, -dphi);
  for (std::size_t i = 0; i < out.samples.size(); ++i) {
    out.samples[i] = out.samples[i] * unrot.value() + leak * in.samples[i];
    unrot.advance();
  }
}

Waveform SawFilter::apply(const Waveform& in) const {
  Waveform out;
  apply(in, out, DspWorkspace::tls());
  return out;
}

}  // namespace ivnet
