// FIR filter design and the SAW band-filter model the out-of-band reader uses
// to reject CIB self-jamming (Sec. 5(b): "high-rejection SAW filter").
//
// The fir_filter kernels here are the three-region fast path: edge outputs
// (where the tap window overhangs the signal) run the textbook
// bounds-checked loop, interior outputs run a branch-free core with no
// bounds checks, and the complex overload processes split re/im (SoA)
// lanes. Per-output accumulation order is unchanged, so results are
// bitwise-identical to the naive loop — pinned against the retained oracles
// in signal/naive_dsp.hpp by tests/dsp_fastpath_test.cpp. See
// docs/ARCHITECTURE.md, "DSP fast path".
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ivnet/signal/dsp_workspace.hpp"
#include "ivnet/signal/waveform.hpp"

namespace ivnet {

/// Windowed-sinc low-pass FIR taps. `num_taps` odd (rounded up if even).
/// Hamming window. Throws std::invalid_argument — in release builds too —
/// unless 0 < cutoff_hz < sample_rate_hz/2 and num_taps >= 1.
std::vector<double> design_lowpass(double cutoff_hz, double sample_rate_hz,
                                   std::size_t num_taps);

/// Band-pass FIR taps centered on [low_hz, high_hz]. Throws
/// std::invalid_argument unless 0 <= low_hz < high_hz <= sample_rate_hz/2.
std::vector<double> design_bandpass(double low_hz, double high_hz,
                                    double sample_rate_hz, std::size_t num_taps);

/// Convolve a complex waveform with real taps ("same" alignment: output has
/// the same length, group delay compensated by (num_taps-1)/2 samples).
/// Scratch comes from DspWorkspace::tls().
Waveform fir_filter(const Waveform& wave, std::span<const double> taps);

/// As above, writing into `out` (resized; must not alias `wave`) with
/// split-lane scratch checked out of `ws`.
void fir_filter(const Waveform& wave, std::span<const double> taps,
                Waveform& out, DspWorkspace& ws);

/// Real-signal version of fir_filter.
std::vector<double> fir_filter(std::span<const double> x,
                               std::span<const double> taps);

/// As above, writing into `out` (resized; must not alias `x`).
void fir_filter(std::span<const double> x, std::span<const double> taps,
                std::vector<double>& out);

/// Model of a high-rejection SAW band filter: passes the complex-baseband
/// band [center - bw/2, center + bw/2] and attenuates everything else by
/// `stopband_rejection_db`. Implemented as an FIR band-pass plus a floor
/// leakage term so rejection is finite, as in real SAW devices.
///
/// The passband shift/unshift phasors re-anchor from std::polar every
/// PhasorRotator::kRenormInterval samples (the CIB envelope kernel's
/// policy), so rotation error stays bounded over arbitrarily long captures.
class SawFilter {
 public:
  /// @param center_hz    Passband center at complex baseband.
  /// @param bandwidth_hz Passband width.
  /// @param rejection_db Stopband rejection (positive dB, typically 40-60).
  /// @param sample_rate_hz Operating sample rate.
  SawFilter(double center_hz, double bandwidth_hz, double rejection_db,
            double sample_rate_hz);

  /// Scratch comes from DspWorkspace::tls().
  Waveform apply(const Waveform& in) const;

  /// As above, writing into `out` (resized; must not alias `in`) with
  /// scratch checked out of `ws`.
  void apply(const Waveform& in, Waveform& out, DspWorkspace& ws) const;

  double center_hz() const { return center_hz_; }
  double bandwidth_hz() const { return bandwidth_hz_; }
  double rejection_db() const { return rejection_db_; }

 private:
  double center_hz_;
  double bandwidth_hz_;
  double rejection_db_;
  double sample_rate_hz_;
  std::vector<double> lowpass_taps_;  // applied after shifting passband to DC
};

}  // namespace ivnet
