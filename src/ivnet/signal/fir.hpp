// FIR filter design and the SAW band-filter model the out-of-band reader uses
// to reject CIB self-jamming (Sec. 5(b): "high-rejection SAW filter").
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ivnet/signal/waveform.hpp"

namespace ivnet {

/// Windowed-sinc low-pass FIR taps. `num_taps` odd (rounded up if even).
/// Hamming window. Throws std::invalid_argument — in release builds too —
/// unless 0 < cutoff_hz < sample_rate_hz/2 and num_taps >= 1.
std::vector<double> design_lowpass(double cutoff_hz, double sample_rate_hz,
                                   std::size_t num_taps);

/// Band-pass FIR taps centered on [low_hz, high_hz]. Throws
/// std::invalid_argument unless 0 <= low_hz < high_hz <= sample_rate_hz/2.
std::vector<double> design_bandpass(double low_hz, double high_hz,
                                    double sample_rate_hz, std::size_t num_taps);

/// Convolve a complex waveform with real taps ("same" alignment: output has
/// the same length, group delay compensated by (num_taps-1)/2 samples).
Waveform fir_filter(const Waveform& wave, std::span<const double> taps);

/// Real-signal version of fir_filter.
std::vector<double> fir_filter(std::span<const double> x,
                               std::span<const double> taps);

/// Model of a high-rejection SAW band filter: passes the complex-baseband
/// band [center - bw/2, center + bw/2] and attenuates everything else by
/// `stopband_rejection_db`. Implemented as an FIR band-pass plus a floor
/// leakage term so rejection is finite, as in real SAW devices.
class SawFilter {
 public:
  /// @param center_hz    Passband center at complex baseband.
  /// @param bandwidth_hz Passband width.
  /// @param rejection_db Stopband rejection (positive dB, typically 40-60).
  /// @param sample_rate_hz Operating sample rate.
  SawFilter(double center_hz, double bandwidth_hz, double rejection_db,
            double sample_rate_hz);

  Waveform apply(const Waveform& in) const;

  double center_hz() const { return center_hz_; }
  double bandwidth_hz() const { return bandwidth_hz_; }
  double rejection_db() const { return rejection_db_; }

 private:
  double center_hz_;
  double bandwidth_hz_;
  double rejection_db_;
  double sample_rate_hz_;
  std::vector<double> lowpass_taps_;  // applied after shifting passband to DC
};

}  // namespace ivnet
