// Three-region FIR core shared by fir.cpp (full-rate filtering) and
// resampler.cpp (polyphase decimation).
//
// "Same"-aligned FIR output:  out[i] = sum_t taps[t] * x[i + delay - t],
// delay = (T-1)/2.  The textbook loop bounds-checks every tap of every
// output. Here outputs split into three regions:
//
//   left edge   i in [0, lo):  tap window overhangs x[<0]   -> checked loop
//   interior    i in [lo, hi): every tap lands inside x     -> branch-free
//   right edge  i in [hi, n):  tap window overhangs x[>=n]  -> checked loop
//
// with lo = max(0, T-1-delay) and hi = n - delay (empty when the input is
// shorter than the filter). Both loops accumulate taps in ascending-t
// order, and the checked loop SKIPS out-of-range terms exactly as the naive
// kernel does, so each output is produced by the identical sequence of
// floating-point operations: results are bitwise-identical to the naive
// oracle (signal/naive_dsp.hpp), which tests/dsp_fastpath_test.cpp pins.
//
// The interior runs in L1-resident output tiles, accumulated tap-by-tap
// (the "outer product" form): for each tap, one contiguous
// acc[j] += tap * x[j + shift] pass over the tile. Interleaving across
// outputs changes nothing WITHIN any output's accumulator — each still
// sees the same ascending-t add sequence — but the inner loop is a pure
// streaming multiply-add over independent SIMD lanes (lane = output), so
// it vectorizes at -O3 without any FP reassociation, and the tile stays
// in L1 across all taps.
//
// fir_decimate evaluates the same recurrence only at the kept output
// indices i = k * factor — the polyphase decimation identity: filtering
// then discarding (factor-1)/factor of the outputs wastes factor x the
// MACs for the same retained samples.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>

namespace ivnet::detail {

/// One bounds-checked output sample (the naive kernel's inner loop).
inline double fir_edge_sample(const double* x, std::ptrdiff_t n,
                              const double* taps, std::ptrdiff_t num_taps,
                              std::ptrdiff_t delay, std::ptrdiff_t i) {
  double acc = 0.0;
  for (std::ptrdiff_t t = 0; t < num_taps; ++t) {
    const std::ptrdiff_t src = i + delay - t;
    if (src >= 0 && src < n) acc += taps[t] * x[src];
  }
  return acc;
}

/// One interior output sample: every src index is in range by construction.
inline double fir_core_sample(const double* x, const double* taps,
                              std::ptrdiff_t num_taps, std::ptrdiff_t delay,
                              std::ptrdiff_t i) {
  const double* base = x + i + delay;
  double acc = 0.0;
  for (std::ptrdiff_t t = 0; t < num_taps; ++t) acc += taps[t] * base[-t];
  return acc;
}

/// Interior region [lo, hi) of an n-sample "same" convolution; empty (and
/// everything runs checked) when the input is shorter than the filter.
inline std::pair<std::ptrdiff_t, std::ptrdiff_t> fir_core_region(
    std::ptrdiff_t n, std::ptrdiff_t num_taps, std::ptrdiff_t delay) {
  const std::ptrdiff_t lo =
      std::min(n, std::max<std::ptrdiff_t>(0, num_taps - 1 - delay));
  const std::ptrdiff_t hi = std::max(lo, n - delay);
  return {lo, hi};
}

/// Full-rate "same" convolution: out[0..n) from x[0..n).
inline void fir_same(const double* x, std::size_t n, const double* taps,
                     std::size_t num_taps, double* out) {
  const auto nn = static_cast<std::ptrdiff_t>(n);
  const auto nt = static_cast<std::ptrdiff_t>(num_taps);
  const std::ptrdiff_t delay = (nt - 1) / 2;
  const auto [lo, hi] = fir_core_region(nn, nt, delay);
  for (std::ptrdiff_t i = 0; i < lo; ++i) {
    out[i] = fir_edge_sample(x, nn, taps, nt, delay, i);
  }
  // Tiled interior (see header comment). 1024 doubles = 8 KiB: the
  // accumulator tile and the tap-shifted input windows fit L1 together.
  constexpr std::ptrdiff_t kTile = 1024;
  double acc[kTile];
  for (std::ptrdiff_t i0 = lo; i0 < hi; i0 += kTile) {
    const std::ptrdiff_t m = std::min(kTile, hi - i0);
    std::fill_n(acc, m, 0.0);
    for (std::ptrdiff_t t = 0; t < nt; ++t) {
      const double tap = taps[t];
      const double* p = x + i0 + delay - t;
      for (std::ptrdiff_t j = 0; j < m; ++j) acc[j] += tap * p[j];
    }
    std::copy_n(acc, m, out + i0);
  }
  for (std::ptrdiff_t i = hi; i < nn; ++i) {
    out[i] = fir_edge_sample(x, nn, taps, nt, delay, i);
  }
}

/// Decimating "same" convolution: out[k] = fir_same output at i = k*factor,
/// for k in [0, ceil(n/factor)). Only the kept samples are evaluated.
inline void fir_decimate(const double* x, std::size_t n, const double* taps,
                         std::size_t num_taps, std::size_t factor,
                         double* out) {
  const auto nn = static_cast<std::ptrdiff_t>(n);
  const auto nt = static_cast<std::ptrdiff_t>(num_taps);
  const std::ptrdiff_t delay = (nt - 1) / 2;
  const auto [lo, hi] = fir_core_region(nn, nt, delay);
  std::size_t k = 0;
  for (std::ptrdiff_t i = 0; i < nn; i += static_cast<std::ptrdiff_t>(factor)) {
    out[k++] = (i >= lo && i < hi)
                   ? fir_core_sample(x, taps, nt, delay, i)
                   : fir_edge_sample(x, nn, taps, nt, delay, i);
  }
}

}  // namespace ivnet::detail
