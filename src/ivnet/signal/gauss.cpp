// Deterministic inverse-CDF Gaussian sampler (see gauss.hpp for the why).
//
// This translation unit is compiled with -O3 -mavx2 -mfma -ffp-contract=off
// on every build type (src/CMakeLists.txt), so std::fma lowers to a single
// vfmadd instruction and the scalar/packed paths execute the exact same
// IEEE operation sequence. Keep every entry point out-of-line here: if the
// sampler were inlined into a TU with different contraction flags the
// bitwise scalar==packed contract would silently break.
#include "ivnet/signal/gauss.hpp"

#include <cmath>
#include <cstring>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define IVNET_GAUSS_SIMD 1
#else
#define IVNET_GAUSS_SIMD 0
#endif

namespace ivnet::signal {
namespace {

// AS241 (Wichura 1988) PPND16 rational-approximation coefficients for the
// inverse normal CDF: central region |u-0.5| <= 0.425 uses kA/kB in
// r = 0.180625 - q^2; the tails use kC/kD (r = sqrt(-log(min(u,1-u))) <= 5)
// and kE/kF (r > 5, i.e. |z| beyond ~7.9).
constexpr double kA[8] = {
    3.3871328727963666080e0,  1.3314166789178437745e2, 1.9715909503065514427e3,
    1.3731693765509461125e4,  4.5921953931549871457e4, 6.7265770927008700853e4,
    3.3430575583588128105e4,  2.5090809287301226727e3};
constexpr double kB[8] = {
    1.0,                      4.2313330701600911252e1, 6.8718700749205790830e2,
    5.3941960214247511077e3,  2.1213794301586595867e4, 3.9307895800092710610e4,
    2.8729085735721942674e4,  5.2264952788528545610e3};
constexpr double kC[8] = {
    1.42343711074968357734e0,  4.63033784615654529590e0,
    5.76949722146069140550e0,  3.64784832476320460504e0,
    1.27045825245236838258e0,  2.41780725177450611770e-1,
    2.27238449892691845833e-2, 7.74545014278341407640e-4};
constexpr double kD[8] = {
    1.0,                       2.05319162663775882187e0,
    1.67638483018380384940e0,  6.89767334985100004550e-1,
    1.48103976427480074590e-1, 1.51986665636164571966e-2,
    5.47593808499534494600e-4, 1.05075007164441684324e-9};
constexpr double kE[8] = {
    6.65790464350110377720e0,  5.46378491116411436990e0,
    1.78482653991729133580e0,  2.96560571828504891230e-1,
    2.65321895265761230930e-2, 1.24266094738807843860e-3,
    2.71155556874348757815e-5, 2.01033439929228813265e-7};
constexpr double kF[8] = {
    1.0,                       5.99832206555887937690e-1,
    1.36929880922735805310e-1, 1.48753612908506148525e-2,
    7.86869131145613259100e-4, 1.84631831751005468180e-5,
    1.42151175831644588870e-7, 2.04426310338993978564e-15};

inline double poly7(const double* c, double r) {
  double p = c[7];
  p = std::fma(p, r, c[6]);
  p = std::fma(p, r, c[5]);
  p = std::fma(p, r, c[4]);
  p = std::fma(p, r, c[3]);
  p = std::fma(p, r, c[2]);
  p = std::fma(p, r, c[1]);
  return std::fma(p, r, c[0]);
}

constexpr double kLn2 = 0.693147180559945309417232121458;
constexpr double kSqrt2 = 0x1.6a09e667f3bcdp+0;

// Deterministic log for arguments in (0, 0.575) — the tail region's
// min(u, 1-u). Exponent extraction plus an atanh series: with the mantissa
// normalized to [sqrt2/2, sqrt2), s = (m-1)/(m+1) satisfies |s| <= 0.1716,
// so a degree-7 polynomial in z = s^2 reaches ~5.6e-15 relative error.
// Every operation is a fixed IEEE sequence — unlike libm's log, the result
// is the same on any host, which is what lets the tail branch of the
// sampler stay bitwise-reproducible.
inline double fast_log(double r) {
  std::uint64_t b;
  std::memcpy(&b, &r, sizeof b);
  int e = static_cast<int>((b >> 52) & 0x7ff) - 1023;
  b = (b & 0xfffffffffffffull) | 0x3ff0000000000000ull;
  double m;
  std::memcpy(&m, &b, sizeof m);
  if (m > kSqrt2) {
    m *= 0.5;
    e += 1;
  }
  const double s = (m - 1.0) / (m + 1.0);
  const double z = s * s;
  double p = 2.0 / 15.0;
  p = std::fma(p, z, 2.0 / 13.0);
  p = std::fma(p, z, 2.0 / 11.0);
  p = std::fma(p, z, 2.0 / 9.0);
  p = std::fma(p, z, 2.0 / 7.0);
  p = std::fma(p, z, 2.0 / 5.0);
  p = std::fma(p, z, 2.0 / 3.0);
  p = std::fma(p, z, 2.0);
  return std::fma(static_cast<double>(e), kLn2, s * p);
}

// Tail of the inverse CDF (|u-0.5| > 0.425, ~15% of draws). noinline keeps
// the packed central loop's hot body small; the packed path calls this same
// function for its tail lanes, which is one of the two reasons the paths
// agree bitwise (the other: identical central-region fma sequences).
__attribute__((noinline)) double inv_cdf_tail(double u, double q) {
  double r = q < 0.0 ? u : 1.0 - u;
  r = std::sqrt(-fast_log(r));
  double v;
  if (r <= 5.0) {
    r -= 1.6;
    v = poly7(kC, r) / poly7(kD, r);
  } else {
    r -= 5.0;
    v = poly7(kE, r) / poly7(kF, r);
  }
  return q < 0.0 ? -v : v;
}

inline double normal_from_bits_inline(std::uint64_t bits) {
  // 52 explicit bits so the packed u64->double conversion (mantissa-or with
  // 2^52 then subtract) is exact; +0.5 centers u away from 0 and 1.
  const double u = (static_cast<double>(bits >> 12) + 0.5) * 0x1.0p-52;
  const double q = u - 0.5;
  if (std::fabs(q) <= 0.425) {
    // fma, not 0.180625 - q*q: must round once, like the packed vfnmadd.
    const double r = std::fma(-q, q, 0.180625);
    return q * (poly7(kA, r) / poly7(kB, r));
  }
  return inv_cdf_tail(u, q);
}

#if IVNET_GAUSS_SIMD

inline __m256d poly7v(const double* c, __m256d r) {
  __m256d p = _mm256_set1_pd(c[7]);
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(c[6]));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(c[5]));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(c[4]));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(c[3]));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(c[2]));
  p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(c[1]));
  return _mm256_fmadd_pd(p, r, _mm256_set1_pd(c[0]));
}

inline __m256i rotlv(__m256i x, int k) {
  return _mm256_or_si256(_mm256_slli_epi64(x, k), _mm256_srli_epi64(x, 64 - k));
}

// Four xoshiro256++ states advanced in packed lockstep (integer ops are
// exact, so each lane of the packed state is bit-for-bit the lane's scalar
// Rng state). The inverse CDF runs packed on both the central and the
// near-tail branch; only the far tail (r > 5, P ~ 1.2e-8 per draw) drops
// to the shared scalar inv_cdf_tail.
struct PackedGauss {
  __m256i s0, s1, s2, s3;

  explicit PackedGauss(Rng* const* rngs) {
    const auto& a = rngs[0]->raw_state();
    const auto& b = rngs[1]->raw_state();
    const auto& c = rngs[2]->raw_state();
    const auto& d = rngs[3]->raw_state();
    s0 = _mm256_set_epi64x(static_cast<long long>(d[0]),
                           static_cast<long long>(c[0]),
                           static_cast<long long>(b[0]),
                           static_cast<long long>(a[0]));
    s1 = _mm256_set_epi64x(static_cast<long long>(d[1]),
                           static_cast<long long>(c[1]),
                           static_cast<long long>(b[1]),
                           static_cast<long long>(a[1]));
    s2 = _mm256_set_epi64x(static_cast<long long>(d[2]),
                           static_cast<long long>(c[2]),
                           static_cast<long long>(b[2]),
                           static_cast<long long>(a[2]));
    s3 = _mm256_set_epi64x(static_cast<long long>(d[3]),
                           static_cast<long long>(c[3]),
                           static_cast<long long>(b[3]),
                           static_cast<long long>(a[3]));
  }

  /// One packed draw (all four lanes' next raw 64-bit value).
  __m256i next() {
    const __m256i result = _mm256_add_epi64(rotlv(_mm256_add_epi64(s0, s3), 23), s0);
    const __m256i t = _mm256_slli_epi64(s1, 17);
    s2 = _mm256_xor_si256(s2, s0);
    s3 = _mm256_xor_si256(s3, s1);
    s1 = _mm256_xor_si256(s1, s2);
    s0 = _mm256_xor_si256(s0, s3);
    s2 = _mm256_xor_si256(s2, t);
    s3 = rotlv(s3, 45);
    return result;
  }

  void store_back(Rng* const* rngs) const {
    alignas(32) std::uint64_t w0[4], w1[4], w2[4], w3[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(w0), s0);
    _mm256_store_si256(reinterpret_cast<__m256i*>(w1), s1);
    _mm256_store_si256(reinterpret_cast<__m256i*>(w2), s2);
    _mm256_store_si256(reinterpret_cast<__m256i*>(w3), s3);
    for (int k = 0; k < 4; ++k) {
      rngs[k]->set_raw_state({w0[k], w1[k], w2[k], w3[k]});
    }
  }
};

/// u in (0, 1) and q = u - 1/2 from four raw draws: the packed image of
/// the scalar normal_from_bits_inline prologue (top-52-bit uniform).
inline __m256d uniform4_from_bits(__m256i bits, __m256d* q_out) {
  const __m256d magic = _mm256_set1_pd(0x1.0p52);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256i hi = _mm256_srli_epi64(bits, 12);
  const __m256d d = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_or_si256(hi, _mm256_castpd_si256(magic))),
      magic);
  const __m256d u =
      _mm256_mul_pd(_mm256_add_pd(d, half), _mm256_set1_pd(0x1.0p-52));
  *q_out = _mm256_sub_pd(u, half);
  return u;
}

/// inv_cdf_tail for four draws already known to be outside the central
/// region. Every instruction mirrors inv_cdf_tail/fast_log op for op (same
/// IEEE sequence, vector width), so each lane is bitwise-equal to the
/// scalar branch; only the far tail (r > 5, P ~ 1.2e-8 per draw) drops to
/// the shared scalar routine.
inline __m256d tail4_from_bits(__m256i bits) {
  const __m256d magic = _mm256_set1_pd(0x1.0p52);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d signbit = _mm256_set1_pd(-0.0);

  __m256d q;
  const __m256d u = uniform4_from_bits(bits, &q);
  const __m256d r0 = _mm256_blendv_pd(_mm256_sub_pd(one, u), u, q);
  const __m256i rb = _mm256_castpd_si256(r0);
  // fast_log: exponent as an exact small integer in double...
  const __m256i eb = _mm256_and_si256(_mm256_srli_epi64(rb, 52),
                                      _mm256_set1_epi64x(0x7ff));
  const __m256d ed = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_or_si256(eb, _mm256_castpd_si256(magic))),
      magic);
  __m256d e = _mm256_sub_pd(ed, _mm256_set1_pd(1023.0));
  // ...mantissa normalized to [sqrt2/2, sqrt2)...
  __m256d m = _mm256_castsi256_pd(_mm256_or_si256(
      _mm256_and_si256(rb, _mm256_set1_epi64x(0xfffffffffffffll)),
      _mm256_set1_epi64x(0x3ff0000000000000ll)));
  const __m256d fold = _mm256_cmp_pd(m, _mm256_set1_pd(kSqrt2), _CMP_GT_OQ);
  m = _mm256_blendv_pd(m, _mm256_mul_pd(m, half), fold);
  e = _mm256_add_pd(e, _mm256_and_pd(fold, one));
  // ...atanh series in z = s^2.
  const __m256d s =
      _mm256_div_pd(_mm256_sub_pd(m, one), _mm256_add_pd(m, one));
  const __m256d z = _mm256_mul_pd(s, s);
  __m256d p = _mm256_set1_pd(2.0 / 15.0);
  p = _mm256_fmadd_pd(p, z, _mm256_set1_pd(2.0 / 13.0));
  p = _mm256_fmadd_pd(p, z, _mm256_set1_pd(2.0 / 11.0));
  p = _mm256_fmadd_pd(p, z, _mm256_set1_pd(2.0 / 9.0));
  p = _mm256_fmadd_pd(p, z, _mm256_set1_pd(2.0 / 7.0));
  p = _mm256_fmadd_pd(p, z, _mm256_set1_pd(2.0 / 5.0));
  p = _mm256_fmadd_pd(p, z, _mm256_set1_pd(2.0 / 3.0));
  p = _mm256_fmadd_pd(p, z, _mm256_set1_pd(2.0));
  const __m256d logv =
      _mm256_fmadd_pd(e, _mm256_set1_pd(kLn2), _mm256_mul_pd(s, p));
  // r = sqrt(-log), near-tail rational (r <= 5 covers |z| < ~5.7).
  const __m256d rt = _mm256_sqrt_pd(_mm256_xor_pd(logv, signbit));
  const __m256d far = _mm256_cmp_pd(rt, _mm256_set1_pd(5.0), _CMP_GT_OQ);
  const __m256d rc = _mm256_sub_pd(rt, _mm256_set1_pd(1.6));
  __m256d val = _mm256_div_pd(poly7v(kC, rc), poly7v(kD, rc));
  val = _mm256_xor_pd(val, _mm256_and_pd(q, signbit));
  const int far_mask = _mm256_movemask_pd(far);
  if (far_mask != 0) {
    alignas(32) std::uint64_t bits_arr[4];
    alignas(32) double fix[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(bits_arr), bits);
    _mm256_store_pd(fix, val);
    for (int k = 0; k < 4; ++k) {
      if (far_mask & (1 << k)) {
        const double uu =
            (static_cast<double>(bits_arr[k] >> 12) + 0.5) * 0x1.0p-52;
        fix[k] = inv_cdf_tail(uu, uu - 0.5);
      }
    }
    val = _mm256_load_pd(fix);
  }
  return val;
}

/// Transpose 4 iteration-major vectors (v[j] = 4 lanes at sample i+j) into
/// lane-major vectors and store fma(sigma_k, lane_k, src[k]) to each
/// lane's destination at offset i.
inline void scatter_transposed4(const __m256d v[4], const double* sigmas,
                                const double* const* src, double* const* dst,
                                std::size_t i) {
  const __m256d t0 = _mm256_unpacklo_pd(v[0], v[1]);
  const __m256d t1 = _mm256_unpackhi_pd(v[0], v[1]);
  const __m256d t2 = _mm256_unpacklo_pd(v[2], v[3]);
  const __m256d t3 = _mm256_unpackhi_pd(v[2], v[3]);
  const __m256d l0 = _mm256_permute2f128_pd(t0, t2, 0x20);
  const __m256d l1 = _mm256_permute2f128_pd(t1, t3, 0x20);
  const __m256d l2 = _mm256_permute2f128_pd(t0, t2, 0x31);
  const __m256d l3 = _mm256_permute2f128_pd(t1, t3, 0x31);
  _mm256_storeu_pd(dst[0] + i,
                   _mm256_fmadd_pd(_mm256_set1_pd(sigmas[0]), l0,
                                   _mm256_loadu_pd(src[0] + i)));
  _mm256_storeu_pd(dst[1] + i,
                   _mm256_fmadd_pd(_mm256_set1_pd(sigmas[1]), l1,
                                   _mm256_loadu_pd(src[1] + i)));
  _mm256_storeu_pd(dst[2] + i,
                   _mm256_fmadd_pd(_mm256_set1_pd(sigmas[2]), l2,
                                   _mm256_loadu_pd(src[2] + i)));
  _mm256_storeu_pd(dst[3] + i,
                   _mm256_fmadd_pd(_mm256_set1_pd(sigmas[3]), l3,
                                   _mm256_loadu_pd(src[3] + i)));
}

void axpy_awgn_lanes4(Rng* const* rngs, const double* sigmas,
                      const double* const* src, double* const* dst,
                      std::size_t n) {
  PackedGauss g(rngs);
  // The tail branch of the inverse CDF is taken by ~15% of draws, so with
  // four lanes per vector ~48% of packed draws contain at least one tail
  // lane — an unpredictable branch whose mispredicts (plus an extra two
  // divides and a sqrt per hit) dominate a fused loop. Instead the fill is
  // tiled through small L1-resident staging buffers and split into
  // branch-free passes:
  //   1. advance the generators, evaluate the central rational for every
  //      draw, record the raw bits and the central mask;
  //   2. append the tail draws (bits + sample index) densely to a queue;
  //   3. evaluate the queued tails four at a time with the packed tail
  //      sequence and patch their slots in the value buffer;
  //   4. transpose each 4x4 block lane-major and fmadd onto the buffers.
  // Each lane of each pass is the exact scalar operation sequence, so the
  // result (and generator state) stays bitwise-equal to axpy_awgn per lane.
  constexpr std::size_t kTileDraws = 128;
  alignas(32) std::uint64_t bits_buf[kTileDraws * 4];
  alignas(32) double val_buf[kTileDraws * 4];
  alignas(32) std::uint64_t qbits[kTileDraws * 4 + 4];
  std::uint32_t qpos[kTileDraws * 4 + 4];
  std::uint8_t masks[kTileDraws];
  alignas(32) std::uint64_t bits_arr[4];
  const __m256d signbit = _mm256_set1_pd(-0.0);

  std::size_t i = 0;
  while (n - i >= 4) {
    const std::size_t draws = std::min(kTileDraws, (n - i) / 4 * 4);
    // Pass 1: generate + central path for all draws, branch-free.
    for (std::size_t j = 0; j < draws; ++j) {
      const __m256i bits = g.next();
      _mm256_store_si256(reinterpret_cast<__m256i*>(bits_buf + 4 * j), bits);
      __m256d q;
      (void)uniform4_from_bits(bits, &q);
      const __m256d absq = _mm256_andnot_pd(signbit, q);
      const __m256d central =
          _mm256_cmp_pd(absq, _mm256_set1_pd(0.425), _CMP_LE_OQ);
      const __m256d r = _mm256_fnmadd_pd(q, q, _mm256_set1_pd(0.180625));
      const __m256d val =
          _mm256_mul_pd(q, _mm256_div_pd(poly7v(kA, r), poly7v(kB, r)));
      _mm256_store_pd(val_buf + 4 * j, val);
      masks[j] = static_cast<std::uint8_t>(_mm256_movemask_pd(central));
    }
    // Pass 2: queue tail draws densely, branch-free (qn advances only for
    // lanes whose central bit is clear).
    std::size_t qn = 0;
    for (std::size_t j = 0; j < draws; ++j) {
      const unsigned m = masks[j];
      for (unsigned k = 0; k < 4; ++k) {
        qbits[qn] = bits_buf[4 * j + k];
        qpos[qn] = static_cast<std::uint32_t>(4 * j + k);
        qn += static_cast<std::size_t>((~m >> k) & 1u);
      }
    }
    // Pass 3: packed tail evaluation over the queue.
    std::size_t t = 0;
    for (; t + 4 <= qn; t += 4) {
      const __m256i bits =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(qbits + t));
      alignas(32) double tv[4];
      _mm256_store_pd(tv, tail4_from_bits(bits));
      val_buf[qpos[t + 0]] = tv[0];
      val_buf[qpos[t + 1]] = tv[1];
      val_buf[qpos[t + 2]] = tv[2];
      val_buf[qpos[t + 3]] = tv[3];
    }
    for (; t < qn; ++t) {
      const double uu =
          (static_cast<double>(qbits[t] >> 12) + 0.5) * 0x1.0p-52;
      val_buf[qpos[t]] = inv_cdf_tail(uu, uu - 0.5);
    }
    // Pass 4: transpose to lane-major and fmadd onto the lane buffers.
    for (std::size_t j = 0; j < draws; j += 4) {
      const __m256d v[4] = {_mm256_load_pd(val_buf + 4 * j),
                            _mm256_load_pd(val_buf + 4 * j + 4),
                            _mm256_load_pd(val_buf + 4 * j + 8),
                            _mm256_load_pd(val_buf + 4 * j + 12)};
      scatter_transposed4(v, sigmas, src, dst, i + j);
    }
    i += draws;
  }
  // Ragged tail: one packed draw per sample, finished per lane in scalar.
  for (; i < n; ++i) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(bits_arr), g.next());
    for (int k = 0; k < 4; ++k) {
      dst[k][i] = std::fma(sigmas[k], normal_from_bits_inline(bits_arr[k]),
                           src[k][i]);
    }
  }
  g.store_back(rngs);
}

#endif  // IVNET_GAUSS_SIMD

}  // namespace

double normal_from_bits(std::uint64_t bits) {
  return normal_from_bits_inline(bits);
}

void axpy_awgn(Rng& rng, double sigma, std::span<double> inout) {
  for (double& x : inout) {
    x = std::fma(sigma, normal_from_bits_inline(rng()), x);
  }
}

void axpy_awgn_onto(Rng& rng, double sigma, const double* src,
                    std::span<double> dst) {
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = std::fma(sigma, normal_from_bits_inline(rng()), src[i]);
  }
}

void axpy_awgn_lanes(std::size_t lanes, Rng* const* rngs, const double* sigmas,
                     double* const* inout, std::size_t n) {
  axpy_awgn_lanes_onto(lanes, rngs, sigmas, inout, inout, n);
}

void axpy_awgn_lanes_onto(std::size_t lanes, Rng* const* rngs,
                          const double* sigmas, const double* const* src,
                          double* const* dst, std::size_t n) {
  std::size_t k = 0;
#if IVNET_GAUSS_SIMD
  for (; lanes - k >= kGaussLanes; k += kGaussLanes) {
    axpy_awgn_lanes4(rngs + k, sigmas + k, src + k, dst + k, n);
  }
#endif
  for (; k < lanes; ++k) {
    axpy_awgn_onto(*rngs[k], sigmas[k], src[k], {dst[k], n});
  }
}

bool gauss_simd_enabled() { return IVNET_GAUSS_SIMD != 0; }

}  // namespace ivnet::signal
