// Deterministic elementwise Gaussian sampling for the AWGN hot path.
//
// Rng::normal() (Box-Muller) calls into libm's log/sin/cos, whose results
// are not reproducible across a scalar and a vectorized evaluation — which
// makes it impossible to run K trial sessions in lockstep lanes and stay
// bitwise-identical to the one-trial-at-a-time path. This header provides
// the sampler the batched pipeline is built on instead:
//
//   normal_from_bits(bits) — a pure elementwise map from one 64-bit draw to
//   one standard-normal value via the AS241 inverse normal CDF (Wichura's
//   PPND16 rational approximations, |err| < 1e-15 over the full range). The
//   log needed in the tail region is a custom deterministic atanh-series
//   (fast_log in gauss.cpp), not libm, so every code path is a fixed
//   sequence of IEEE add/mul/div/sqrt/fma operations.
//
//   axpy_awgn(rng, sigma, x) — x[i] += sigma * normal_from_bits(rng())
//   (as a fused fma), one raw draw per sample. This is THE scalar AWGN
//   loop: impair/apply_awgn (real vectors) delegates here.
//
//   axpy_awgn_lanes(lanes, rngs, sigmas, inout, n) — the same update for up
//   to kGaussLanes independent (rng, sigma, buffer) triples in lockstep.
//   With AVX2+FMA this advances all four xoshiro256++ states with packed
//   integer ops and evaluates the inverse CDF with packed fma — and is
//   bitwise-identical to calling axpy_awgn per lane, because every packed
//   instruction is the elementwise image of the scalar operation sequence
//   (the scalar path deliberately uses std::fma where the packed path uses
//   vfnmadd/vfmadd). This equivalence is pinned by batch_pipeline_test.
//
// All entry points are defined out-of-line in gauss.cpp, which is compiled
// with a fixed flag set (-O3 -mavx2 -mfma -ffp-contract=off) regardless of
// build type, so Debug, ASan, and Release builds produce the same bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "ivnet/common/rng.hpp"

namespace ivnet::signal {

/// Width of one packed lockstep lane group. Lane counts passed to
/// axpy_awgn_lanes may exceed this: full groups of kGaussLanes run packed,
/// leftover lanes take the scalar loop.
inline constexpr std::size_t kGaussLanes = 4;

/// Elementwise map from one raw 64-bit draw to one standard-normal value.
/// Uses the top 52 bits as a uniform in (0,1) — u = (bits>>12 + 0.5)*2^-52 —
/// then inverts the normal CDF. Pure function; deterministic on any host.
double normal_from_bits(std::uint64_t bits);

/// inout[i] = fma(sigma, normal_from_bits(rng()), inout[i]) for all i.
/// Consumes exactly inout.size() raw draws from rng.
void axpy_awgn(Rng& rng, double sigma, std::span<double> inout);

/// dst[i] = fma(sigma, normal_from_bits(rng()), src[i]) — the same update
/// as axpy_awgn but reading the clean signal from `src`, which skips the
/// copy-into-place pass the in-place form needs. src may alias dst.
/// Bitwise-identical to copying src into dst and calling axpy_awgn.
void axpy_awgn_onto(Rng& rng, double sigma, const double* src,
                    std::span<double> dst);

/// Lockstep AWGN for `lanes` independent trials: lane k runs
/// axpy_awgn(*rngs[k], sigmas[k], {inout[k], n}) — same results, same
/// final rng states — but with full groups of kGaussLanes lanes advanced
/// together; leftover lanes fall back to the scalar loop per lane.
void axpy_awgn_lanes(std::size_t lanes, Rng* const* rngs, const double* sigmas,
                     double* const* inout, std::size_t n);

/// Source/destination form of axpy_awgn_lanes: lane k runs
/// axpy_awgn_onto(*rngs[k], sigmas[k], src[k], {dst[k], n}). src[k] may
/// alias dst[k] (the in-place form above delegates here).
void axpy_awgn_lanes_onto(std::size_t lanes, Rng* const* rngs,
                          const double* sigmas, const double* const* src,
                          double* const* dst, std::size_t n);

/// True when gauss.cpp was compiled with the packed AVX2+FMA lane path.
/// Purely informational (bench/CI tables): results are identical either way.
bool gauss_simd_enabled();

}  // namespace ivnet::signal
