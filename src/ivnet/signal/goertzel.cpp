#include "ivnet/signal/goertzel.hpp"

#include <cmath>

#include "ivnet/common/units.hpp"

namespace ivnet {

cplx goertzel(const Waveform& wave, double freq_hz) {
  if (wave.samples.empty()) return {0.0, 0.0};
  // Direct correlation with the complex exponential; for our modest buffer
  // sizes this is as fast as the classic two-multiplier recurrence and exact
  // for non-integer bin frequencies.
  const double dphi = -kTwoPi * freq_hz / wave.sample_rate_hz;
  const cplx step = std::polar(1.0, dphi);
  cplx rot{1.0, 0.0};
  cplx acc{0.0, 0.0};
  for (std::size_t i = 0; i < wave.samples.size(); ++i) {
    acc += wave.samples[i] * rot;
    rot *= step;
    if ((i & 0xFFF) == 0xFFF) rot /= std::abs(rot);
  }
  return acc / static_cast<double>(wave.samples.size());
}

double goertzel_power(const Waveform& wave, double freq_hz) {
  return std::norm(goertzel(wave, freq_hz));
}

double band_power(const Waveform& wave, double low_hz, double high_hz,
                  std::size_t bins) {
  if (bins == 0) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < bins; ++i) {
    const double f = bins == 1 ? (low_hz + high_hz) / 2.0
                               : low_hz + (high_hz - low_hz) *
                                              static_cast<double>(i) /
                                              static_cast<double>(bins - 1);
    total += goertzel_power(wave, f);
  }
  return total;
}

}  // namespace ivnet
