// Goertzel single-bin DFT — used by the out-of-band reader to measure energy
// in its own band vs. the CIB band without a full FFT.
#pragma once

#include <span>

#include "ivnet/signal/waveform.hpp"

namespace ivnet {

/// Complex DFT coefficient of `wave` at `freq_hz` (complex baseband),
/// normalized by the number of samples: X(f) = (1/N) * sum x[n] e^{-j2πfn/fs}.
cplx goertzel(const Waveform& wave, double freq_hz);

/// Power |X(f)|^2 at the given frequency.
double goertzel_power(const Waveform& wave, double freq_hz);

/// Sum of goertzel_power over a uniform grid of `bins` frequencies spanning
/// [low_hz, high_hz] — a cheap band-energy estimate.
double band_power(const Waveform& wave, double low_hz, double high_hz,
                  std::size_t bins);

}  // namespace ivnet
