#include "ivnet/signal/iq.hpp"

#include <algorithm>
#include <cmath>

#include "ivnet/common/units.hpp"
#include "ivnet/signal/goertzel.hpp"

namespace ivnet {

Waveform apply_impairments(const Waveform& in, const IqImpairments& imp) {
  Waveform out = in;
  const double g = db_to_amplitude(imp.gain_imbalance_db);
  const double sin_skew = std::sin(imp.phase_skew_rad);
  const double cos_skew = std::cos(imp.phase_skew_rad);
  const double dphi = kTwoPi * imp.cfo_hz / in.sample_rate_hz;
  const cplx step = std::polar(1.0, dphi);
  cplx rot{1.0, 0.0};
  for (std::size_t n = 0; n < out.samples.size(); ++n) {
    const double i = out.samples[n].real();
    const double q = out.samples[n].imag();
    // Q arm sees gain error and quadrature skew.
    const cplx imbalanced{i, g * (q * cos_skew + i * sin_skew)};
    out.samples[n] = rot * imbalanced + cplx{imp.dc_i, imp.dc_q};
    rot *= step;
    if ((n & 0xFFF) == 0xFFF) rot /= std::abs(rot);
  }
  return out;
}

cplx remove_dc(Waveform& wave) {
  if (wave.samples.empty()) return {0.0, 0.0};
  cplx mean{0.0, 0.0};
  for (const auto& s : wave.samples) mean += s;
  mean /= static_cast<double>(wave.samples.size());
  for (auto& s : wave.samples) s -= mean;
  return mean;
}

double image_rejection_ratio_db(const Waveform& wave, double tone_hz) {
  const double signal = goertzel_power(wave, tone_hz);
  const double image = goertzel_power(wave, -tone_hz);
  if (image <= 0.0) return 300.0;
  return to_db(signal / image);
}

IqImpairments correct_iq_imbalance(Waveform& wave) {
  // Circularity statistics: for a proper (impairment-free) complex signal
  // E[y^2] = 0. Gain/phase imbalance makes it nonzero; the Moseley-Slump
  // estimator recovers the imbalance from
  //   theta1 = -E[re*im], theta2 = E[re^2], theta3 = E[im^2].
  double t1 = 0.0, t2 = 0.0, t3 = 0.0;
  for (const auto& s : wave.samples) {
    t1 += s.real() * s.imag();
    t2 += s.real() * s.real();
    t3 += s.imag() * s.imag();
  }
  const auto n = static_cast<double>(std::max<std::size_t>(1,
                                                           wave.samples.size()));
  t1 = -t1 / n;
  t2 /= n;
  t3 /= n;
  if (t2 <= 0.0 || t3 <= 0.0) return {};

  const double c1 = t1 / t2;                       // sin(skew) * g ... ratio
  const double c2 = std::sqrt((t3 - t1 * t1 / t2) / t2);
  // Compensation: I' = I;  Q' = (Q + c1 * I) / c2.
  for (auto& s : wave.samples) {
    s = cplx{s.real(), (s.imag() + c1 * s.real()) / c2};
  }
  IqImpairments estimate;
  estimate.phase_skew_rad = std::asin(std::clamp(-c1 / std::sqrt(c1 * c1 + c2 * c2),
                                                 -1.0, 1.0));
  estimate.gain_imbalance_db = amplitude_to_db(std::sqrt(c1 * c1 + c2 * c2));
  return estimate;
}

double estimate_cfo(const Waveform& wave) {
  if (wave.samples.size() < 2) return 0.0;
  cplx acc{0.0, 0.0};
  for (std::size_t n = 1; n < wave.samples.size(); ++n) {
    acc += wave.samples[n] * std::conj(wave.samples[n - 1]);
  }
  return std::arg(acc) * wave.sample_rate_hz / kTwoPi;
}

void remove_cfo(Waveform& wave, double cfo_hz) {
  const double dphi = -kTwoPi * cfo_hz / wave.sample_rate_hz;
  const cplx step = std::polar(1.0, dphi);
  cplx rot{1.0, 0.0};
  for (std::size_t n = 0; n < wave.samples.size(); ++n) {
    wave.samples[n] *= rot;
    rot *= step;
    if ((n & 0xFFF) == 0xFFF) rot /= std::abs(rot);
  }
}

}  // namespace ivnet
