// Quadrature impairments of a direct-conversion SDR front end — and their
// estimators/correctors. The USRP SBX daughterboards of Sec. 5 are
// direct-conversion radios, so DC offset, IQ gain/phase imbalance, and
// residual carrier-frequency offset (CFO) are what the receive chain has to
// scrub before the backscatter decoder sees the signal.
#pragma once

#include "ivnet/signal/waveform.hpp"

namespace ivnet {

/// Impairment parameters of one front end.
struct IqImpairments {
  double dc_i = 0.0;            ///< DC offset, in-phase
  double dc_q = 0.0;            ///< DC offset, quadrature
  double gain_imbalance_db = 0.0;  ///< Q-arm gain relative to I-arm
  double phase_skew_rad = 0.0;  ///< quadrature phase error
  double cfo_hz = 0.0;          ///< residual carrier frequency offset
};

/// Apply impairments to a clean waveform (what the hardware does to us):
///   y = dc + e^{j 2 pi cfo t} * (I + j * g * (Q cos(skew) + I sin(skew)))
Waveform apply_impairments(const Waveform& in, const IqImpairments& imp);

/// Estimate and remove the DC offset (block mean).
cplx remove_dc(Waveform& wave);

/// Estimate the image rejection ratio [dB] of a waveform known to contain a
/// single tone at `tone_hz`: power at +tone over power at -tone. A perfect
/// front end has IRR = inf; 25-40 dB is typical uncorrected hardware.
double image_rejection_ratio_db(const Waveform& wave, double tone_hz);

/// Blind IQ imbalance correction (Moseley-Slump): estimates the gain and
/// phase imbalance from circularity statistics E[y^2]/E[|y|^2] and applies
/// the compensating 2x2 real matrix. Returns the estimated imbalance.
IqImpairments correct_iq_imbalance(Waveform& wave);

/// Estimate CFO from the average phase increment of a CW segment [Hz].
double estimate_cfo(const Waveform& wave);

/// Mix by -cfo to remove a known frequency offset.
void remove_cfo(Waveform& wave, double cfo_hz);

}  // namespace ivnet
