// Textbook reference implementations of the sample-domain DSP kernels —
// TEST/BENCH-ONLY oracles for the fast paths in fir.cpp / resampler.cpp.
//
// These are, verbatim, the loops the fast kernels replaced: full-signal
// bounds-checked FIR, filter-everything-then-discard decimation, and the
// zero-stuffed tap-by-tap rational resampler. The bitwise-equivalence
// policy for kernel rewrites (docs/ARCHITECTURE.md, "DSP fast path") pins
// every fast kernel exactly equal to its oracle here
// (tests/dsp_fastpath_test.cpp), and bench_kernels_json times both sides
// to report the speedup in BENCH_dsp.json.
//
// Do NOT call these from production code: they are asymptotically wasteful
// by design (that is the point of keeping them).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ivnet/signal/resampler.hpp"
#include "ivnet/signal/waveform.hpp"

namespace ivnet::naive {

/// Bounds-checked "same" FIR, complex input (the pre-fast-path kernel).
inline Waveform fir_filter(const Waveform& wave,
                           std::span<const double> taps) {
  Waveform out;
  out.sample_rate_hz = wave.sample_rate_hz;
  out.samples.assign(wave.samples.size(), cplx{0.0, 0.0});
  const std::ptrdiff_t delay = static_cast<std::ptrdiff_t>(taps.size() - 1) / 2;
  const auto n = static_cast<std::ptrdiff_t>(wave.samples.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    cplx acc{0.0, 0.0};
    for (std::size_t t = 0; t < taps.size(); ++t) {
      const std::ptrdiff_t src = i + delay - static_cast<std::ptrdiff_t>(t);
      if (src >= 0 && src < n) acc += taps[t] * wave.samples[src];
    }
    out.samples[i] = acc;
  }
  return out;
}

/// Bounds-checked "same" FIR, real input.
inline std::vector<double> fir_filter(std::span<const double> x,
                                      std::span<const double> taps) {
  std::vector<double> out(x.size(), 0.0);
  const std::ptrdiff_t delay = static_cast<std::ptrdiff_t>(taps.size() - 1) / 2;
  const auto n = static_cast<std::ptrdiff_t>(x.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t t = 0; t < taps.size(); ++t) {
      const std::ptrdiff_t src = i + delay - static_cast<std::ptrdiff_t>(t);
      if (src >= 0 && src < n) acc += taps[t] * x[src];
    }
    out[i] = acc;
  }
  return out;
}

/// Filter-everything decimation: computes the full filtered signal, then
/// throws away (factor-1)/factor of it.
inline Waveform decimate(const Waveform& in, std::size_t factor) {
  if (factor == 1) return in;
  // Qualified: ADL on Waveform would also find the fast ivnet::fir_filter.
  const Waveform filtered =
      naive::fir_filter(in, decimation_taps(in.sample_rate_hz, factor));
  Waveform out;
  out.sample_rate_hz = in.sample_rate_hz / static_cast<double>(factor);
  out.samples.reserve(filtered.samples.size() / factor + 1);
  for (std::size_t i = 0; i < filtered.samples.size(); i += factor) {
    out.samples.push_back(filtered.samples[i]);
  }
  return out;
}

/// Real-signal filter-everything decimation.
inline std::vector<double> decimate(std::span<const double> in,
                                    std::size_t factor,
                                    double sample_rate_hz) {
  if (factor == 1) return std::vector<double>(in.begin(), in.end());
  const auto filtered = fir_filter(in, decimation_taps(sample_rate_hz, factor));
  std::vector<double> out;
  out.reserve(filtered.size() / factor + 1);
  for (std::size_t i = 0; i < filtered.size(); i += factor) {
    out.push_back(filtered[i]);
  }
  return out;
}

/// Zero-stuffed rational resampling: for every output sample, walk ALL
/// prototype taps and skip the ones that land between input samples.
/// `rs` supplies the reduced ratio and the prototype taps so oracle and
/// fast path share one filter design.
inline std::vector<double> resample(const RationalResampler& rs,
                                    std::span<const double> in) {
  const std::size_t up = rs.up();
  const std::size_t down = rs.down();
  const auto taps = rs.prototype_taps();
  if (up == 1 && down == 1) return std::vector<double>(in.begin(), in.end());
  const std::size_t out_len = in.size() * up / down;
  std::vector<double> out(out_len, 0.0);
  const auto half = static_cast<std::ptrdiff_t>(taps.size() / 2);
  for (std::size_t n = 0; n < out_len; ++n) {
    // Virtual upsampled index of this output sample.
    const std::size_t v = n * down;
    double acc = 0.0;
    for (std::size_t t = 0; t < taps.size(); ++t) {
      const std::ptrdiff_t vin =
          static_cast<std::ptrdiff_t>(v) + half - static_cast<std::ptrdiff_t>(t);
      if (vin < 0) continue;
      // Only multiples of up carry input samples (zero stuffing).
      if (vin % static_cast<std::ptrdiff_t>(up) != 0) continue;
      const std::ptrdiff_t src = vin / static_cast<std::ptrdiff_t>(up);
      if (src >= static_cast<std::ptrdiff_t>(in.size())) continue;
      acc += taps[t] * in[static_cast<std::size_t>(src)];
    }
    out[n] = acc;
  }
  return out;
}

}  // namespace ivnet::naive
