#include "ivnet/signal/noise.hpp"

#include <cmath>

#include "ivnet/common/units.hpp"

namespace ivnet {

namespace {
/// Boltzmann constant [J/K].
constexpr double kBoltzmann = 1.380'649e-23;
/// Standard noise reference temperature [K].
constexpr double kT0 = 290.0;
}  // namespace

void add_awgn(Waveform& wave, double noise_power, Rng& rng) {
  const double sigma = std::sqrt(noise_power / 2.0);
  for (auto& s : wave.samples) {
    s += cplx{rng.normal(0.0, sigma), rng.normal(0.0, sigma)};
  }
}

double thermal_noise_power(double bandwidth_hz, double noise_figure_db) {
  return kBoltzmann * kT0 * bandwidth_hz * from_db(noise_figure_db);
}

double snr(double signal_power, double bandwidth_hz, double noise_figure_db) {
  return signal_power / thermal_noise_power(bandwidth_hz, noise_figure_db);
}

}  // namespace ivnet
