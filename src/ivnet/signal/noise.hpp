// Additive white Gaussian noise generation for receiver modeling.
#pragma once

#include "ivnet/common/rng.hpp"
#include "ivnet/signal/waveform.hpp"

namespace ivnet {

/// Complex AWGN with total power `noise_power` (variance split evenly across
/// I and Q), appended in place to `wave`.
void add_awgn(Waveform& wave, double noise_power, Rng& rng);

/// Thermal noise power [W] over `bandwidth_hz` at 290 K with the given
/// receiver noise figure: P = kTB * NF.
double thermal_noise_power(double bandwidth_hz, double noise_figure_db);

/// Measured SNR (ratio, not dB) of `signal_power` against thermal noise over
/// the given bandwidth/noise figure.
double snr(double signal_power, double bandwidth_hz, double noise_figure_db);

}  // namespace ivnet
