// Incremental unit-phasor rotation with periodic exact re-anchoring.
//
// The sample-domain loops rotate a phasor one sample at a time
// (`rot *= step`) to avoid a sin/cos pair per sample. Each multiply adds
// O(eps) rounding, so after k steps the phasor has drifted off the unit
// circle in amplitude AND off its true angle in phase by roughly k * eps —
// unbounded over long waveforms. Normalizing the magnitude
// (`rot /= abs(rot)`) fixes only the amplitude half. The CIB envelope
// kernel (cib/objective.cpp, kRenormInterval) instead re-anchors the
// phasor from std::polar every 4096 steps, bounding both errors by
// O(4096 * eps); PhasorRotator packages that same policy for the
// sample-domain loops (SawFilter's shift/unshift, CFO rotation).
//
// Drift regression: tests pin the 2^20-step error below 1e-9 (the naive
// product drifts ~100x worse and keeps growing).
#pragma once

#include <complex>
#include <cstddef>

#include "ivnet/signal/waveform.hpp"

namespace ivnet {

class PhasorRotator {
 public:
  /// Matches cib/objective.cpp's anchor cadence.
  static constexpr std::size_t kRenormInterval = 4096;

  /// Phasor value() = exp(j * (phase0_rad + k * dphi_rad)) after k
  /// advance() calls.
  PhasorRotator(double phase0_rad, double dphi_rad)
      : phase0_(phase0_rad),
        dphi_(dphi_rad),
        step_(std::polar(1.0, dphi_rad)),
        value_(std::polar(1.0, phase0_rad)) {}

  cplx value() const { return value_; }

  void advance() {
    value_ *= step_;
    if (++count_ % kRenormInterval == 0) {
      value_ = std::polar(1.0, phase0_ + dphi_ * static_cast<double>(count_));
    }
  }

 private:
  double phase0_;
  double dphi_;
  cplx step_;
  cplx value_;
  std::size_t count_ = 0;
};

}  // namespace ivnet
