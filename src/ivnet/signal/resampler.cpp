#include "ivnet/signal/resampler.hpp"

#include <cassert>
#include <cmath>
#include <numeric>

#include "ivnet/common/units.hpp"
#include "ivnet/signal/fir.hpp"
#include "ivnet/signal/fir_core.hpp"

namespace ivnet {

/// The ONE anti-alias design both decimate overloads share. The two copies
/// used to spell the cutoff differently (`0.45 * out_rate / 2.0 * 2.0` vs
/// `0.45 * out_rate`) — numerically equal, but only by accident of the
/// stray `/ 2.0 * 2.0`, and each hardcoded 63 taps, which leaves the
/// Hamming transition band (~3.3/N of the input rate) straddling the new
/// Nyquist at large factors. Audited design: cutoff at 90% of the
/// post-decimation Nyquist (0.45 * out_rate) with 34*factor + 1 taps, so
/// the transition band ends AT the new Nyquist and anything that would
/// alias sits in the >= 50 dB Hamming stopband (the alias-rejection test
/// pins >= 40 dB).
std::vector<double> decimation_taps(double in_rate_hz, std::size_t factor) {
  const double out_rate = in_rate_hz / static_cast<double>(factor);
  return design_lowpass(0.45 * out_rate, in_rate_hz, 34 * factor + 1);
}

Waveform decimate(const Waveform& in, std::size_t factor, DspWorkspace& ws) {
  assert(factor >= 1);
  if (factor == 1) return in;
  const auto taps = decimation_taps(in.sample_rate_hz, factor);
  const std::size_t n = in.samples.size();
  const std::size_t out_len = (n + factor - 1) / factor;
  Waveform out;
  out.sample_rate_hz = in.sample_rate_hz / static_cast<double>(factor);
  out.samples.resize(out_len);
  // SoA split + decimating FIR: only the kept output samples are computed.
  ScopedBuffer<double> re(ws, n), im(ws, n), out_re(ws, out_len),
      out_im(ws, out_len);
  for (std::size_t i = 0; i < n; ++i) {
    re.data()[i] = in.samples[i].real();
    im.data()[i] = in.samples[i].imag();
  }
  detail::fir_decimate(re.data(), n, taps.data(), taps.size(), factor,
                       out_re.data());
  detail::fir_decimate(im.data(), n, taps.data(), taps.size(), factor,
                       out_im.data());
  for (std::size_t k = 0; k < out_len; ++k) {
    out.samples[k] = cplx{out_re.data()[k], out_im.data()[k]};
  }
  return out;
}

Waveform decimate(const Waveform& in, std::size_t factor) {
  return decimate(in, factor, DspWorkspace::tls());
}

std::vector<double> decimate(std::span<const double> in, std::size_t factor,
                             double sample_rate_hz) {
  assert(factor >= 1);
  if (factor == 1) return std::vector<double>(in.begin(), in.end());
  const auto taps = decimation_taps(sample_rate_hz, factor);
  std::vector<double> out((in.size() + factor - 1) / factor);
  detail::fir_decimate(in.data(), in.size(), taps.data(), taps.size(), factor,
                       out.data());
  return out;
}

RationalResampler::RationalResampler(std::size_t up, std::size_t down,
                                     std::size_t taps_per_phase) {
  assert(up >= 1 && down >= 1);
  const std::size_t g = std::gcd(up, down);
  up_ = up / g;
  down_ = down / g;
  // Prototype low-pass at the tighter of the two Nyquists, designed at the
  // (virtual) upsampled rate. Normalized cutoff: 0.45 / max(up, down).
  const double virtual_rate = static_cast<double>(up_);
  const double cutoff =
      0.45 * virtual_rate / static_cast<double>(std::max(up_, down_));
  taps_ = design_lowpass(cutoff, virtual_rate, up_ * taps_per_phase);
  // Gain compensation: zero-stuffing loses a factor of up.
  for (auto& t : taps_) t *= static_cast<double>(up_);
  // Polyphase decomposition: output phase p (virtual index = p mod up)
  // convolves input samples with taps p, p+up, p+2up, ... in ascending
  // prototype order — the only taps the zero-stuffed stream can hit there.
  phase_taps_.resize(up_);
  for (std::size_t p = 0; p < up_; ++p) {
    for (std::size_t t = p; t < taps_.size(); t += up_) {
      phase_taps_[p].push_back(taps_[t]);
    }
  }
}

void RationalResampler::apply(std::span<const double> in,
                              std::vector<double>& out) const {
  if (up_ == 1 && down_ == 1) {
    out.assign(in.begin(), in.end());
    return;
  }
  const std::size_t out_len = in.size() * up_ / down_;  // floor: see header
  out.resize(out_len);
  const std::size_t half = taps_.size() / 2;
  const std::size_t in_n = in.size();
  for (std::size_t n = 0; n < out_len; ++n) {
    // Virtual upsampled index of this output sample, group-delay shifted.
    const std::size_t vph = n * down_ + half;
    const std::size_t phase = vph % up_;
    // Input sample hit by the first bank tap (largest source index).
    const std::size_t src0 = vph / up_;
    const std::vector<double>& bank = phase_taps_[phase];
    // bank[k] pairs with in[src0 - k]; clip k to the input's extent. The
    // ascending-k walk visits the prototype taps in the same ascending
    // order the naive zero-stuffed scan does, so the accumulation is
    // bitwise-identical.
    const std::size_t k_begin = src0 >= in_n ? src0 - (in_n - 1) : 0;
    const std::size_t k_end = std::min(bank.size(), src0 + 1);
    double acc = 0.0;
    for (std::size_t k = k_begin; k < k_end; ++k) {
      acc += bank[k] * in[src0 - k];
    }
    out[n] = acc;
  }
}

std::vector<double> RationalResampler::apply(std::span<const double> in) const {
  std::vector<double> out;
  apply(in, out);
  return out;
}

Waveform RationalResampler::apply(const Waveform& in, DspWorkspace& ws) const {
  const std::size_t n = in.samples.size();
  ScopedBuffer<double> re(ws, n), im(ws, n), re_out(ws, 0), im_out(ws, 0);
  for (std::size_t i = 0; i < n; ++i) {
    re.data()[i] = in.samples[i].real();
    im.data()[i] = in.samples[i].imag();
  }
  apply(*re, *re_out);
  apply(*im, *im_out);
  Waveform out;
  out.sample_rate_hz =
      in.sample_rate_hz * static_cast<double>(up_) / static_cast<double>(down_);
  out.samples.resize(re_out.size());
  for (std::size_t i = 0; i < re_out.size(); ++i) {
    out.samples[i] = cplx{re_out.data()[i], im_out.data()[i]};
  }
  return out;
}

Waveform RationalResampler::apply(const Waveform& in) const {
  return apply(in, DspWorkspace::tls());
}

std::vector<double> fractional_delay(std::span<const double> in,
                                     double delay_samples) {
  std::vector<double> out(in.size(), 0.0);
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double src = static_cast<double>(i) - delay_samples;
    const auto lo = static_cast<std::ptrdiff_t>(std::floor(src));
    const double frac = src - std::floor(src);
    const auto n = static_cast<std::ptrdiff_t>(in.size());
    const double a =
        (lo >= 0 && lo < n) ? in[static_cast<std::size_t>(lo)] : 0.0;
    const double b = (lo + 1 >= 0 && lo + 1 < n)
                         ? in[static_cast<std::size_t>(lo + 1)]
                         : 0.0;
    out[i] = a * (1.0 - frac) + b * frac;
  }
  return out;
}

}  // namespace ivnet
