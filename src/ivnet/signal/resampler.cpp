#include "ivnet/signal/resampler.hpp"

#include <cassert>
#include <cmath>
#include <numeric>

#include "ivnet/common/units.hpp"
#include "ivnet/signal/fir.hpp"

namespace ivnet {
namespace {

/// The ONE anti-alias design both decimate overloads share. The two copies
/// used to spell the cutoff differently (`0.45 * out_rate / 2.0 * 2.0` vs
/// `0.45 * out_rate`) — numerically equal, but only by accident of the
/// stray `/ 2.0 * 2.0`, and each hardcoded 63 taps, which leaves the
/// Hamming transition band (~3.3/N of the input rate) straddling the new
/// Nyquist at large factors. Audited design: cutoff at 90% of the
/// post-decimation Nyquist (0.45 * out_rate) with 34*factor + 1 taps, so
/// the transition band ends AT the new Nyquist and anything that would
/// alias sits in the >= 50 dB Hamming stopband (the alias-rejection test
/// pins >= 40 dB).
std::vector<double> anti_alias_taps(double in_rate_hz, std::size_t factor) {
  const double out_rate = in_rate_hz / static_cast<double>(factor);
  return design_lowpass(0.45 * out_rate, in_rate_hz, 34 * factor + 1);
}

}  // namespace

Waveform decimate(const Waveform& in, std::size_t factor) {
  assert(factor >= 1);
  if (factor == 1) return in;
  const Waveform filtered =
      fir_filter(in, anti_alias_taps(in.sample_rate_hz, factor));
  Waveform out;
  out.sample_rate_hz = in.sample_rate_hz / static_cast<double>(factor);
  out.samples.reserve(filtered.samples.size() / factor + 1);
  for (std::size_t i = 0; i < filtered.samples.size(); i += factor) {
    out.samples.push_back(filtered.samples[i]);
  }
  return out;
}

std::vector<double> decimate(std::span<const double> in, std::size_t factor,
                             double sample_rate_hz) {
  assert(factor >= 1);
  if (factor == 1) return std::vector<double>(in.begin(), in.end());
  const auto filtered = fir_filter(in, anti_alias_taps(sample_rate_hz, factor));
  std::vector<double> out;
  out.reserve(filtered.size() / factor + 1);
  for (std::size_t i = 0; i < filtered.size(); i += factor) {
    out.push_back(filtered[i]);
  }
  return out;
}

RationalResampler::RationalResampler(std::size_t up, std::size_t down,
                                     std::size_t taps_per_phase) {
  assert(up >= 1 && down >= 1);
  const std::size_t g = std::gcd(up, down);
  up_ = up / g;
  down_ = down / g;
  // Prototype low-pass at the tighter of the two Nyquists, designed at the
  // (virtual) upsampled rate. Normalized cutoff: 0.45 / max(up, down).
  const double virtual_rate = static_cast<double>(up_);
  const double cutoff =
      0.45 * virtual_rate / static_cast<double>(std::max(up_, down_));
  taps_ = design_lowpass(cutoff, virtual_rate, up_ * taps_per_phase);
  // Gain compensation: zero-stuffing loses a factor of up.
  for (auto& t : taps_) t *= static_cast<double>(up_);
}

std::vector<double> RationalResampler::apply(std::span<const double> in) const {
  if (up_ == 1 && down_ == 1) return std::vector<double>(in.begin(), in.end());
  const std::size_t out_len = in.size() * up_ / down_;
  std::vector<double> out(out_len, 0.0);
  const auto half = static_cast<std::ptrdiff_t>(taps_.size() / 2);
  for (std::size_t n = 0; n < out_len; ++n) {
    // Virtual upsampled index of this output sample.
    const std::size_t v = n * down_;
    double acc = 0.0;
    for (std::size_t t = 0; t < taps_.size(); ++t) {
      const std::ptrdiff_t vin =
          static_cast<std::ptrdiff_t>(v) + half - static_cast<std::ptrdiff_t>(t);
      if (vin < 0) continue;
      // Only multiples of up_ carry input samples (zero stuffing).
      if (vin % static_cast<std::ptrdiff_t>(up_) != 0) continue;
      const std::ptrdiff_t src = vin / static_cast<std::ptrdiff_t>(up_);
      if (src >= static_cast<std::ptrdiff_t>(in.size())) continue;
      acc += taps_[t] * in[static_cast<std::size_t>(src)];
    }
    out[n] = acc;
  }
  return out;
}

Waveform RationalResampler::apply(const Waveform& in) const {
  std::vector<double> re(in.samples.size()), im(in.samples.size());
  for (std::size_t i = 0; i < in.samples.size(); ++i) {
    re[i] = in.samples[i].real();
    im[i] = in.samples[i].imag();
  }
  const auto re_out = apply(re);
  const auto im_out = apply(im);
  Waveform out;
  out.sample_rate_hz =
      in.sample_rate_hz * static_cast<double>(up_) / static_cast<double>(down_);
  out.samples.resize(re_out.size());
  for (std::size_t i = 0; i < re_out.size(); ++i) {
    out.samples[i] = cplx{re_out[i], im_out[i]};
  }
  return out;
}

std::vector<double> fractional_delay(std::span<const double> in,
                                     double delay_samples) {
  std::vector<double> out(in.size(), 0.0);
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double src = static_cast<double>(i) - delay_samples;
    const auto lo = static_cast<std::ptrdiff_t>(std::floor(src));
    const double frac = src - std::floor(src);
    const auto n = static_cast<std::ptrdiff_t>(in.size());
    const double a =
        (lo >= 0 && lo < n) ? in[static_cast<std::size_t>(lo)] : 0.0;
    const double b = (lo + 1 >= 0 && lo + 1 < n)
                         ? in[static_cast<std::size_t>(lo + 1)]
                         : 0.0;
    out[i] = a * (1.0 - frac) + b * frac;
  }
  return out;
}

}  // namespace ivnet
