// Sample-rate conversion: integer decimation with anti-alias filtering and
// rational (L/M) polyphase resampling. Used by the receive chain to bring
// the 800 kHz capture rate down to the backscatter decoder's rate, and by
// experiments that run the harvester at a decimated envelope rate.
//
// Both decimate overloads and RationalResampler::apply run polyphase fast
// paths: decimation evaluates the anti-alias FIR only at the kept output
// samples (factor x fewer MACs), and the resampler indexes per-phase tap
// banks instead of stepping over the zero-stuffed prototype tap by tap.
// Per-output accumulation order matches the naive kernels, so results are
// bitwise-identical — pinned against signal/naive_dsp.hpp oracles by
// tests/dsp_fastpath_test.cpp. See docs/ARCHITECTURE.md, "DSP fast path".
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ivnet/signal/dsp_workspace.hpp"
#include "ivnet/signal/waveform.hpp"

namespace ivnet {

/// The shared anti-alias design both decimate overloads use: cutoff at 90%
/// of the post-decimation Nyquist (0.45 * out_rate) with 34*factor + 1
/// taps. Exposed so the test/bench oracles can reproduce decimation
/// exactly; production code should call decimate().
std::vector<double> decimation_taps(double in_rate_hz, std::size_t factor);

/// Decimate by `factor` with a windowed-sinc anti-alias low-pass (cutoff at
/// 0.45 * output Nyquist). factor == 1 returns the input unchanged.
/// Output length is ceil(in.size() / factor) (kept indices 0, factor, ...).
/// Scratch comes from DspWorkspace::tls().
Waveform decimate(const Waveform& in, std::size_t factor);

/// As above with split-lane scratch checked out of `ws`.
Waveform decimate(const Waveform& in, std::size_t factor, DspWorkspace& ws);

/// Real-signal decimation with the same anti-alias filtering.
std::vector<double> decimate(std::span<const double> in, std::size_t factor,
                             double sample_rate_hz);

/// Rational resampler: output rate = input rate * up / down.
///
/// Classic polyphase structure: conceptually upsample by `up` (zero
/// stuffing), low-pass at min(pi/up, pi/down), downsample by `down` — but
/// computed without materializing the upsampled stream. The constructor
/// splits the prototype low-pass into `up` per-phase tap banks
/// (bank p = prototype taps p, p+up, p+2up, ...); each output sample reads
/// exactly one bank, so no zero-stuffed taps are ever visited.
class RationalResampler {
 public:
  /// @param up, down  Rate ratio (reduced internally by their gcd).
  /// @param taps_per_phase  Filter sharpness (8-16 typical).
  RationalResampler(std::size_t up, std::size_t down,
                    std::size_t taps_per_phase = 12);

  std::size_t up() const { return up_; }
  std::size_t down() const { return down_; }

  /// The prototype low-pass (length ~ up * taps_per_phase, rounded up to
  /// odd, gain-compensated by up). Exposed for the test/bench oracles.
  std::span<const double> prototype_taps() const { return taps_; }

  /// Resample a whole buffer (stateless convenience; group delay trimmed).
  ///
  /// Length contract: the output has exactly
  ///     out_len = floor(in.size() * up / down)
  /// samples — integer division, so up to (down-1)/up of a sample's worth
  /// of virtual output positions at the tail are dropped, never rounded
  /// up. Output sample n is the polyphase filter evaluated at virtual
  /// upsampled index n * down. Examples: 3/2 of 5 samples -> 7 (not 7.5
  /// rounded to 8); 7/5 of 9 -> 12; 2/5 of 2 -> 0 (empty output).
  std::vector<double> apply(std::span<const double> in) const;

  /// As above, writing into `out` (resized; must not alias `in`).
  void apply(std::span<const double> in, std::vector<double>& out) const;

  /// Complex overload: the two lanes are resampled independently through
  /// the real path (scratch from `ws`; the convenience overload uses
  /// DspWorkspace::tls()). Same length contract as the real overload.
  Waveform apply(const Waveform& in) const;
  Waveform apply(const Waveform& in, DspWorkspace& ws) const;

 private:
  std::size_t up_;
  std::size_t down_;
  std::vector<double> taps_;  // prototype low-pass, length up * taps_per_phase
  /// phase_taps_[p][k] = taps_[p + k*up_]: the bank output phase p reads.
  std::vector<std::vector<double>> phase_taps_;
};

/// Linear-interpolation fractional delay (sub-sample timing alignment for
/// the backscatter decoder).
///
/// Boundary behavior: the input is treated as zero outside [0, n). A
/// sample whose (fractional) source position falls before the first or
/// after the last input sample interpolates against that implicit zero, so
/// delays >= n (or <= -n) yield an all-zero output, and negative delays
/// shift the signal earlier with zero-fill at the tail.
std::vector<double> fractional_delay(std::span<const double> in,
                                     double delay_samples);

}  // namespace ivnet
