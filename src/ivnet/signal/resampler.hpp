// Sample-rate conversion: integer decimation with anti-alias filtering and
// rational (L/M) polyphase resampling. Used by the receive chain to bring
// the 800 kHz capture rate down to the backscatter decoder's rate, and by
// experiments that run the harvester at a decimated envelope rate.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ivnet/signal/waveform.hpp"

namespace ivnet {

/// Decimate by `factor` with a windowed-sinc anti-alias low-pass (cutoff at
/// 0.45 * output Nyquist). factor == 1 returns the input unchanged.
Waveform decimate(const Waveform& in, std::size_t factor);

/// Real-signal decimation with the same anti-alias filtering.
std::vector<double> decimate(std::span<const double> in, std::size_t factor,
                             double sample_rate_hz);

/// Rational resampler: output rate = input rate * up / down.
///
/// Classic polyphase structure: conceptually upsample by `up` (zero
/// stuffing), low-pass at min(pi/up, pi/down), downsample by `down` — but
/// computed without materializing the upsampled stream.
class RationalResampler {
 public:
  /// @param up, down  Rate ratio (reduced internally by their gcd).
  /// @param taps_per_phase  Filter sharpness (8-16 typical).
  RationalResampler(std::size_t up, std::size_t down,
                    std::size_t taps_per_phase = 12);

  std::size_t up() const { return up_; }
  std::size_t down() const { return down_; }

  /// Resample a whole buffer (stateless convenience; group delay trimmed).
  std::vector<double> apply(std::span<const double> in) const;
  Waveform apply(const Waveform& in) const;

 private:
  std::size_t up_;
  std::size_t down_;
  std::vector<double> taps_;  // prototype low-pass, length up * taps_per_phase
};

/// Linear-interpolation fractional delay (sub-sample timing alignment for
/// the backscatter decoder).
std::vector<double> fractional_delay(std::span<const double> in,
                                     double delay_samples);

}  // namespace ivnet
