#include "ivnet/signal/waveform.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "ivnet/common/units.hpp"

namespace ivnet {

Waveform make_tone(double offset_hz, double phase0, std::size_t num_samples,
                   double sample_rate_hz) {
  Waveform wave;
  wave.sample_rate_hz = sample_rate_hz;
  wave.samples.resize(num_samples);
  // Incremental rotation avoids a sin/cos pair per sample; renormalize
  // periodically to bound drift.
  const double dphi = kTwoPi * offset_hz / sample_rate_hz;
  const cplx step = std::polar(1.0, dphi);
  cplx value = std::polar(1.0, phase0);
  for (std::size_t i = 0; i < num_samples; ++i) {
    wave.samples[i] = value;
    value *= step;
    if ((i & 0xFFF) == 0xFFF) value /= std::abs(value);
  }
  return wave;
}

Waveform make_multitone(std::span<const double> offsets_hz,
                        std::span<const double> phases,
                        std::span<const double> amplitudes,
                        std::size_t num_samples, double sample_rate_hz) {
  assert(offsets_hz.size() == phases.size());
  assert(amplitudes.empty() || amplitudes.size() == offsets_hz.size());
  Waveform out;
  out.sample_rate_hz = sample_rate_hz;
  out.samples.assign(num_samples, cplx{0.0, 0.0});
  for (std::size_t k = 0; k < offsets_hz.size(); ++k) {
    const double amp = amplitudes.empty() ? 1.0 : amplitudes[k];
    const double dphi = kTwoPi * offsets_hz[k] / sample_rate_hz;
    const cplx step = std::polar(1.0, dphi);
    cplx value = std::polar(amp, phases[k]);
    for (std::size_t i = 0; i < num_samples; ++i) {
      out.samples[i] += value;
      value *= step;
      if ((i & 0xFFF) == 0xFFF) value *= amp / std::abs(value);
    }
  }
  return out;
}

void accumulate(Waveform& out, const Waveform& in, cplx gain) {
  if (out.samples.size() < in.samples.size()) {
    out.samples.resize(in.samples.size(), cplx{0.0, 0.0});
    out.sample_rate_hz = in.sample_rate_hz;
  }
  for (std::size_t i = 0; i < in.samples.size(); ++i) {
    out.samples[i] += gain * in.samples[i];
  }
}

void scale(Waveform& wave, cplx gain) {
  for (auto& s : wave.samples) s *= gain;
}

Waveform multiply(const Waveform& a, const Waveform& b) {
  Waveform out;
  out.sample_rate_hz = a.sample_rate_hz;
  const std::size_t n = std::min(a.samples.size(), b.samples.size());
  out.samples.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.samples[i] = a.samples[i] * b.samples[i];
  return out;
}

Waveform modulate_envelope(std::span<const double> envelope, double offset_hz,
                           double phase0, double sample_rate_hz) {
  Waveform tone = make_tone(offset_hz, phase0, envelope.size(), sample_rate_hz);
  for (std::size_t i = 0; i < envelope.size(); ++i) tone.samples[i] *= envelope[i];
  return tone;
}

double energy(const Waveform& wave) {
  double sum = 0.0;
  for (const auto& s : wave.samples) sum += std::norm(s);
  return sum / wave.sample_rate_hz;
}

double mean_power(const Waveform& wave) {
  if (wave.samples.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : wave.samples) sum += std::norm(s);
  return sum / static_cast<double>(wave.samples.size());
}

double peak_amplitude(const Waveform& wave) {
  double peak_sq = 0.0;
  for (const auto& s : wave.samples) peak_sq = std::max(peak_sq, std::norm(s));
  return std::sqrt(peak_sq);
}

std::size_t peak_index(const Waveform& wave) {
  std::size_t best = 0;
  double best_norm = -1.0;
  for (std::size_t i = 0; i < wave.samples.size(); ++i) {
    const double n = std::norm(wave.samples[i]);
    if (n > best_norm) {
      best_norm = n;
      best = i;
    }
  }
  return best;
}

}  // namespace ivnet
