// Complex-baseband waveform representation and synthesis.
//
// All RF signals in ivnet are represented at complex baseband relative to a
// stated center frequency: the physical passband signal is
//   s(t) = Re{ x(t) * exp(j*2*pi*fc*t) }.
// A CIB carrier at offset df from the center is therefore the baseband tone
// exp(j*2*pi*df*t), and the instantaneous RF peak voltage is |x(t)|.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace ivnet {

using cplx = std::complex<double>;

/// A uniformly-sampled complex-baseband waveform.
struct Waveform {
  std::vector<cplx> samples;
  double sample_rate_hz = 1.0;

  std::size_t size() const { return samples.size(); }
  bool empty() const { return samples.empty(); }
  double duration_s() const {
    return static_cast<double>(samples.size()) / sample_rate_hz;
  }
  /// Time of sample `i` [s].
  double time_of(std::size_t i) const {
    return static_cast<double>(i) / sample_rate_hz;
  }
};

/// Complex tone exp(j*(2*pi*offset_hz*t + phase0)) of `num_samples` samples.
Waveform make_tone(double offset_hz, double phase0, std::size_t num_samples,
                   double sample_rate_hz);

/// Sum of unit tones: sum_i amplitude_i * exp(j*(2*pi*offsets[i]*t + phases[i])).
/// `amplitudes` may be empty, meaning all ones. Sizes of offsets/phases must match.
Waveform make_multitone(std::span<const double> offsets_hz,
                        std::span<const double> phases,
                        std::span<const double> amplitudes,
                        std::size_t num_samples, double sample_rate_hz);

/// In-place: out[i] += gain * in[i]. `out` is resized up if shorter than `in`.
void accumulate(Waveform& out, const Waveform& in, cplx gain = {1.0, 0.0});

/// In-place scalar multiply.
void scale(Waveform& wave, cplx gain);

/// Pointwise product (e.g. modulating an envelope onto a carrier). Result
/// length is the shorter of the two inputs.
Waveform multiply(const Waveform& a, const Waveform& b);

/// Modulate a real-valued envelope (e.g. a PIE command, values in [0,1])
/// onto a complex tone at `offset_hz` with initial phase `phase0`.
Waveform modulate_envelope(std::span<const double> envelope, double offset_hz,
                           double phase0, double sample_rate_hz);

/// Total energy sum(|x|^2) / fs  [V^2 * s into 1 ohm].
double energy(const Waveform& wave);

/// Mean power sum(|x|^2) / n  [V^2 into 1 ohm].
double mean_power(const Waveform& wave);

/// Peak instantaneous amplitude max |x|.
double peak_amplitude(const Waveform& wave);

/// Index of the sample with maximum |x|.
std::size_t peak_index(const Waveform& wave);

}  // namespace ivnet
