// Batched run-to-completion lane engine (see batch_pipeline.hpp).
//
// The lockstep session engine below is a restructuring — NOT a re-derivation
// — of impair/link_session.cpp: every lane performs the exact operation
// sequence of the scalar oracle (same elapsed_s accumulation order, same
// per-attempt counter-keyed Rng streams, same adaptive-Q feedback points),
// only interleaved across K lanes so the AWGN fills of equal-length records
// can be generated four lanes at a time (signal/gauss.hpp). When editing
// link_session.cpp, mirror the change here — batch_pipeline_test pins the
// two paths memcmp-equal and will catch any drift.
#include "ivnet/sim/batch_pipeline.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <string>

#include "ivnet/common/units.hpp"
#include "ivnet/gen2/commands.hpp"
#include "ivnet/gen2/crc.hpp"
#include "ivnet/gen2/fm0.hpp"
#include "ivnet/gen2/pie.hpp"
#include "ivnet/gen2/tag_sm.hpp"
#include "ivnet/impair/impairment.hpp"
#include "ivnet/impair/recovery.hpp"
#include "ivnet/impair/waterfall.hpp"
#include "ivnet/obs/obs.hpp"
#include "ivnet/reader/inventory.hpp"
#include "ivnet/signal/gauss.hpp"

namespace ivnet {
namespace {

std::size_t g_default_batch_override = 0;
bool g_default_batch_overridden = false;

/// Uplink SNR budget — the same expression as the scalar session and
/// waterfall oracles (array gain once, tissue loss twice for the
/// backscatter round trip).
double uplink_budget_db(const ImpairedLinkConfig& link) {
  const double array_gain_db =
      10.0 * std::log10(static_cast<double>(
                 std::max<std::size_t>(1, link.num_antennas)));
  return link.snr_db + array_gain_db - 2.0 * link.medium_loss_db;
}

/// One lane needing an AWGN fill this round: `src` holds the clean record
/// (often a shared cached envelope), `dst` is the lane's rx buffer (write
/// target; may alias src for in-place fills), and `rng` is the lane's
/// attempt stream positioned exactly where the scalar path's apply_awgn
/// call site would be. Writing fma(sigma, g, src[i]) straight to dst is
/// bitwise-identical to the scalar copy-then-add-in-place sequence and
/// skips one full pass over the record.
struct FillSlot {
  Rng* rng;
  double sigma;
  const double* src;
  double* dst;
  std::size_t size;
};

/// Lockstep AWGN over a round's fill slots: lanes whose records have equal
/// length go through the packed sampler in groups of kGaussLanes;
/// leftovers and odd sizes take the scalar loop. Any grouping is bitwise-safe — each lane draws
/// only from its own stream — so grouping is purely a throughput decision.
void fill_awgn_groups(std::vector<FillSlot>& slots) {
  std::stable_sort(slots.begin(), slots.end(),
                   [](const FillSlot& a, const FillSlot& b) {
                     return a.size < b.size;
                   });
  std::size_t i = 0;
  while (i < slots.size()) {
    std::size_t j = i;
    while (j < slots.size() && slots[j].size == slots[i].size) ++j;
    const std::size_t n = slots[i].size;
    while (j - i >= signal::kGaussLanes) {
      Rng* rngs[signal::kGaussLanes];
      double sigmas[signal::kGaussLanes];
      const double* src[signal::kGaussLanes];
      double* dst[signal::kGaussLanes];
      for (std::size_t k = 0; k < signal::kGaussLanes; ++k) {
        rngs[k] = slots[i + k].rng;
        sigmas[k] = slots[i + k].sigma;
        src[k] = slots[i + k].src;
        dst[k] = slots[i + k].dst;
      }
      signal::axpy_awgn_lanes_onto(signal::kGaussLanes, rngs, sigmas, src,
                                   dst, n);
      obs::count("batch.lockstep_fills");
      i += signal::kGaussLanes;
    }
    for (; i < j; ++i) {
      signal::axpy_awgn_onto(*slots[i].rng, slots[i].sigma, slots[i].src,
                             {slots[i].dst, n});
      obs::count("batch.scalar_fills");
    }
  }
  slots.clear();
}

/// Session telemetry identical to the scalar oracle's SessionTelemetry
/// destructor — emitted once per lane at completion, so metrics snapshots
/// match the scalar path (counters/histograms are order-independent).
void emit_session_telemetry(const LinkSessionReport& report) {
  obs::count("link.sessions");
  obs::count(report.success ? "link.success" : "link.failed");
  obs::observe("link.elapsed_s", report.elapsed_s);
  record_recovery("link", report.recovery);
}

// ---------------------------------------------------------------------------
// Lockstep session engine
// ---------------------------------------------------------------------------

/// Per-batch caches: everything identical across lanes is built once. The
/// cached values feed the SAME downstream computations the scalar path runs
/// on its per-trial copies, so caching cannot change results — a Query
/// envelope depends only on q, the EPC backscatter record only on the EPC.
struct FastContext {
  const ImpairedLinkConfig& cfg;
  double fs;
  double uplink_snr_db;
  double downlink_snr_db;
  double slot_s;
  gen2::Bits query_rep;
  std::array<std::vector<double>, 16> query_env;
  std::array<double, 16> query_env_power{};
  std::array<bool, 16> query_env_built{};
  gen2::Bits epc_frame;
  std::vector<double> epc_tx;
  double epc_tx_power = -1.0;

  explicit FastContext(const ImpairedLinkConfig& link, const gen2::Bits& epc)
      : cfg(link), fs(link.sample_rate_hz) {
    const double array_gain_db =
        10.0 * std::log10(static_cast<double>(
                   std::max<std::size_t>(1, link.num_antennas)));
    uplink_snr_db =
        link.snr_db + array_gain_db - 2.0 * link.medium_loss_db;
    downlink_snr_db = link.snr_db + array_gain_db - link.medium_loss_db +
                      link.downlink_snr_advantage_db;
    slot_s = 20.0 * link.pie.tari_s;
    query_rep = gen2::QueryRepCommand{}.encode();
    epc_frame = gen2::TagStateMachine(epc, 0).epc_frame();
    epc_tx = gen2::fm0_modulate(epc_frame, link.blf_hz, fs);
    epc_tx_power = signal_mean_power(epc_tx);
  }

  const std::vector<double>& query_envelope(std::uint8_t q, double* power) {
    if (!query_env_built[q]) {
      query_env[q] = gen2::pie_encode(
          gen2::QueryCommand{.m = cfg.uplink, .q = q}.encode(), cfg.pie, fs,
          /*with_preamble=*/true);
      query_env_power[q] = signal_mean_power(query_env[q]);
      query_env_built[q] = true;
    }
    *power = query_env_power[q];
    return query_env[q];
  }
};

struct Lane {
  std::size_t trial;
  std::uint64_t base;
  std::uint64_t attempt_counter = 0;
  LinkSessionReport report;
  gen2::TagStateMachine tag;
  AdaptiveQ adaptive;
  SessionStage stage = SessionStage::kQuery;
  int attempt = 0;
  std::uint8_t cur_q = 0;
  gen2::Bits ack;
  std::vector<double> ack_env;
  double ack_env_power = -1.0;
  // Round scratch.
  Rng att_rng{0};
  std::vector<double> rx;
  double sigma = -1.0;
  std::optional<gen2::Bits> reply;
  bool done = false;

  Lane(std::size_t t, std::uint64_t b, const gen2::Bits& epc,
       const AdaptiveQConfig& qcfg)
      : trial(t),
        base(b),
        tag(epc, b ^ 0x9e3779b97f4a7c15ull),
        adaptive(qcfg) {}
};

void finish_lane(Lane& lane, DspWorkspace& workspace) {
  emit_session_telemetry(lane.report);
  workspace.release(std::move(lane.rx));
  lane.rx = std::vector<double>();
  lane.done = true;
}

void fail_lane_if_exhausted(Lane& lane, const RecoveryPolicy& policy,
                            DspWorkspace& workspace) {
  ++lane.attempt;
  if (lane.attempt >= policy.max_attempts) {
    lane.report.recovery.failed_stage = lane.stage;
    finish_lane(lane, workspace);
  }
}

void run_lockstep_session_batch(
    const ImpairedLinkConfig& cfg, std::uint64_t base_seed,
    std::uint64_t stream_stride, std::uint64_t stream_offset, std::size_t lo,
    std::size_t hi, DspWorkspace& workspace,
    const std::function<void(std::size_t, const SessionOutcome&)>& sink) {
  const gen2::Bits epc = cfg.epc.empty() ? default_link_epc() : cfg.epc;
  FastContext ctx(cfg, epc);
  const RecoveryPolicy& policy = cfg.recovery;

  // Charge outcome is config-determined on this path (brownout is gated to
  // the scalar fallback): same amplitude test as the oracle, no rng draw.
  const double charge_amp =
      cfg.charge_amplitude_v *
      std::sqrt(static_cast<double>(
          std::max<std::size_t>(1, cfg.num_antennas))) *
      db_to_amplitude(-cfg.medium_loss_db);
  const bool powered = charge_amp >= cfg.power_up_threshold_v;

  std::vector<Lane> lanes;
  lanes.reserve(hi - lo);
  for (std::size_t t = lo; t < hi; ++t) {
    // The oracle consumes exactly ONE draw from the caller's trial stream
    // (the session's attempt-stream base); replicate that here.
    Rng trial_rng =
        Rng::stream(base_seed, stream_offset + stream_stride * t);
    const std::uint64_t base = trial_rng();
    lanes.emplace_back(t, base, epc, cfg.adaptive_q);
    Lane& lane = lanes.back();
    lane.rx = workspace.acquire_real(0);
    lane.report.elapsed_s += cfg.charge_time_s;
    lane.report.powered = powered;
    if (!powered) {
      lane.report.recovery.failed_stage = SessionStage::kCharge;
      finish_lane(lane, workspace);
      continue;
    }
    lane.tag.power_up();
    if (policy.max_attempts < 1) {
      // The oracle's attempt loop never runs: the Query stage fails with
      // zero commands sent.
      lane.report.recovery.failed_stage = SessionStage::kQuery;
      finish_lane(lane, workspace);
    }
  }

  std::vector<Lane*> active;
  std::vector<Lane*> replied;
  std::vector<FillSlot> fills;
  while (true) {
    active.clear();
    for (Lane& lane : lanes) {
      if (!lane.done) active.push_back(&lane);
    }
    if (active.empty()) break;

    // Phase A — retry bookkeeping, attempt stream, command envelope, and
    // the downlink fill slot (noise is written straight from the shared
    // clean envelope into the lane's rx buffer).
    for (Lane* lane : active) {
      if (lane->attempt > 0) {
        const double backoff = policy.backoff_for_attempt(lane->attempt - 1);
        lane->report.recovery.backoff_total_s += backoff;
        lane->report.elapsed_s += backoff;
        ++lane->report.recovery.retries;
        if (obs::metrics() != nullptr) {
          std::string key = "link.retry.";
          key += to_string(lane->stage);
          obs::count(key);
          obs::observe("link.backoff_s", backoff);
        }
      }
      lane->att_rng = Rng::stream(lane->base, lane->attempt_counter++);
      double power = -1.0;
      const std::vector<double>* env = nullptr;
      if (lane->stage == SessionStage::kQuery) {
        lane->cur_q = lane->adaptive.q();
        env = &ctx.query_envelope(lane->cur_q, &power);
      } else {
        env = &lane->ack_env;
        power = lane->ack_env_power;
      }
      lane->report.elapsed_s += static_cast<double>(env->size()) / ctx.fs;
      ++lane->report.commands_sent;
      lane->sigma = awgn_sigma(power, ctx.downlink_snr_db);
      if (lane->sigma >= 0.0) {
        // Noise lands straight on the shared cached envelope: rx is sized
        // but not copied into (the fill writes every sample).
        lane->rx.resize(env->size());
        fills.push_back({&lane->att_rng, lane->sigma, env->data(),
                         lane->rx.data(), env->size()});
      } else {
        lane->rx.assign(env->begin(), env->end());
      }
    }
    fill_awgn_groups(fills);

    // Phase C — envelope slicing, tag state machine, slot chase, and the
    // clean uplink record for lanes whose tag replied.
    replied.clear();
    for (Lane* lane : active) {
      const auto sliced = gen2::pie_decode(lane->rx, ctx.fs);
      lane->reply.reset();
      if (sliced.valid) lane->reply = lane->tag.on_command(sliced.bits);
      const bool is_query = lane->stage == SessionStage::kQuery;
      if (is_query && !lane->reply) {
        const auto slots = std::size_t{1} << lane->cur_q;
        for (std::size_t s = 1; s < slots && !lane->reply; ++s) {
          lane->adaptive.on_empty();
          lane->report.elapsed_s += ctx.slot_s;
          lane->reply = lane->tag.on_command(ctx.query_rep);
        }
      }
      if (is_query) {
        lane->report.recovery.q_trajectory.push_back(lane->adaptive.q());
      }
      if (!lane->reply) {
        ++lane->report.recovery.timeouts;
        lane->report.elapsed_s += policy.command_timeout_s;
        if (is_query) lane->adaptive.on_empty();
        fail_lane_if_exhausted(*lane, policy, workspace);
        continue;
      }
      if (!is_query && *lane->reply == ctx.epc_frame) {
        lane->report.elapsed_s +=
            static_cast<double>(ctx.epc_tx.size()) / ctx.fs;
        lane->sigma = awgn_sigma(ctx.epc_tx_power, ctx.uplink_snr_db);
        if (lane->sigma >= 0.0) {
          lane->rx.resize(ctx.epc_tx.size());
          fills.push_back({&lane->att_rng, lane->sigma, ctx.epc_tx.data(),
                           lane->rx.data(), ctx.epc_tx.size()});
        } else {
          lane->rx.assign(ctx.epc_tx.begin(), ctx.epc_tx.end());
        }
      } else {
        // The modulated reply becomes the rx buffer directly; noise lands
        // in place.
        lane->rx = gen2::fm0_modulate(*lane->reply, cfg.blf_hz, ctx.fs);
        lane->report.elapsed_s +=
            static_cast<double>(lane->rx.size()) / ctx.fs;
        lane->sigma = awgn_sigma(signal_mean_power(lane->rx),
                                 ctx.uplink_snr_db);
        if (lane->sigma >= 0.0) {
          fills.push_back({&lane->att_rng, lane->sigma, lane->rx.data(),
                           lane->rx.data(), lane->rx.size()});
        }
      }
      replied.push_back(lane);
    }
    fill_awgn_groups(fills);

    // Phase E — backscatter decode and stage transitions.
    for (Lane* lane : replied) {
      const auto d =
          gen2::fm0_decode(lane->rx, lane->reply->size(), cfg.blf_hz, ctx.fs,
                           cfg.min_correlation);
      lane->report.last_correlation = d.preamble_correlation;
      const bool is_query = lane->stage == SessionStage::kQuery;
      if (!d.valid || d.bits.size() != lane->reply->size()) {
        obs::count("link.decode.fail");
        if (is_query) lane->adaptive.on_collision();
        fail_lane_if_exhausted(*lane, policy, workspace);
        continue;
      }
      obs::count("link.decode.ok");
      if (is_query) {
        lane->adaptive.on_single();
        lane->report.rn16 =
            static_cast<std::uint16_t>(gen2::read_bits(d.bits, 0, 16));
        lane->ack = gen2::AckCommand{.rn16 = lane->report.rn16}.encode();
        lane->ack_env =
            gen2::pie_encode(lane->ack, cfg.pie, ctx.fs,
                             /*with_preamble=*/false);
        lane->ack_env_power = signal_mean_power(lane->ack_env);
        lane->stage = SessionStage::kAck;
        lane->attempt = 0;
        continue;
      }
      const gen2::Bits& frame = d.bits;
      if (frame.size() < 32 || !gen2::check_crc16(frame)) {
        lane->report.recovery.failed_stage = SessionStage::kAck;
        finish_lane(*lane, workspace);
        continue;
      }
      lane->report.epc = gen2::Bits(frame.begin() + 16, frame.end() - 16);
      lane->report.success = true;
      finish_lane(*lane, workspace);
    }
  }

  for (const Lane& lane : lanes) {
    sink(lane.trial, session_outcome_of(lane.report));
  }
}

}  // namespace

std::size_t default_batch_size() {
  if (g_default_batch_overridden && g_default_batch_override > 0) {
    return g_default_batch_override;
  }
  if (!g_default_batch_overridden) {
    if (const char* env = std::getenv("IVNET_BATCH")) {
      // Strict full-string parse, like parse_thread_count: trailing garbage
      // ("32abc") or an out-of-range value must not half-apply or silently
      // vanish — warn once and fall back to the scalar path.
      char* end = nullptr;
      errno = 0;
      const unsigned long v = std::strtoul(env, &end, 10);
      if (env[0] >= '0' && env[0] <= '9' && end != env && *end == '\0' &&
          errno != ERANGE && v >= 1 && v <= 1'000'000) {
        return static_cast<std::size_t>(v);
      }
      if (*env != '\0') {
        static std::once_flag warned;
        std::call_once(warned, [env] {
          std::fprintf(stderr,
                       "ivnet: ignoring invalid IVNET_BATCH='%s' (expected "
                       "an integer in 1..1000000)\n",
                       env);
        });
      }
    }
  }
  return 1;
}

void set_default_batch_size(std::size_t batch_size) {
  g_default_batch_override = batch_size;
  g_default_batch_overridden = batch_size != 0;
}

std::size_t resolve_batch_size(const BatchConfig& config) {
  const std::size_t k =
      config.batch_size != 0 ? config.batch_size : default_batch_size();
  return k == 0 ? 1 : k;
}

SessionOutcome session_outcome_of(const LinkSessionReport& report) {
  SessionOutcome out;
  out.elapsed_s = report.elapsed_s;
  out.last_correlation = report.last_correlation;
  out.backoff_total_s = report.recovery.backoff_total_s;
  out.retries = static_cast<std::uint64_t>(report.recovery.retries);
  out.timeouts = static_cast<std::uint64_t>(report.recovery.timeouts);
  out.commands_sent = static_cast<std::uint32_t>(report.commands_sent);
  out.rn16 = report.rn16;
  out.success = report.success ? 1 : 0;
  out.powered = report.powered ? 1 : 0;
  out.failed_stage = static_cast<std::uint8_t>(report.recovery.failed_stage);
  return out;
}

bool lockstep_batchable(const ImpairedLinkConfig& link) {
  const ImpairmentConfig& im = link.impair;
  return link.uplink == gen2::Miller::kFm0 && im.cfo_hz == 0.0 &&
         im.cfo_phase_rad == 0.0 && im.phase_noise_linewidth_hz == 0.0 &&
         im.clock_drift_ppm == 0.0 &&
         (im.bursts.rate_hz <= 0.0 || im.bursts.mean_duration_s <= 0.0) &&
         !im.brownout.enabled && link.adaptive_q.q_max <= 15;
}

void run_session_batch(
    const ImpairedLinkConfig& link, std::uint64_t base_seed,
    std::uint64_t stream_stride, std::uint64_t stream_offset, std::size_t lo,
    std::size_t hi, DspWorkspace& workspace,
    const std::function<void(std::size_t, const SessionOutcome&)>& sink) {
  if (hi <= lo) return;
  if (lockstep_batchable(link)) {
    obs::count("batch.lockstep_trials", hi - lo);
    run_lockstep_session_batch(link, base_seed, stream_stride, stream_offset,
                               lo, hi, workspace, sink);
    return;
  }
  // Configs the lane engine cannot run in lockstep execute the scalar
  // oracle per lane — still batch-dispatched, so the knob stays safe.
  obs::count("batch.fallback_trials", hi - lo);
  for (std::size_t t = lo; t < hi; ++t) {
    Rng trial_rng = Rng::stream(base_seed, stream_offset + stream_stride * t);
    sink(t, session_outcome_of(run_impaired_link_session(link, trial_rng)));
  }
}

void run_ber_batch(
    const ImpairedLinkConfig& link, std::size_t payload_bits,
    std::uint64_t base_seed, std::uint64_t stream_stride,
    std::uint64_t stream_offset, std::size_t lo, std::size_t hi,
    DspWorkspace& workspace,
    const std::function<void(std::size_t, const BerOutcome&)>& sink) {
  if (hi <= lo) return;
  if (!lockstep_batchable(link)) {
    obs::count("batch.fallback_trials", hi - lo);
    for (std::size_t t = lo; t < hi; ++t) {
      const auto probe = ber_probe_trial(
          link, payload_bits,
          Rng::stream(base_seed, stream_offset + stream_stride * t));
      BerOutcome out;
      out.bit_errors = probe.bit_errors;
      out.frame_error = probe.frame_error ? 1 : 0;
      sink(t, out);
    }
    return;
  }
  obs::count("batch.lockstep_trials", hi - lo);

  struct BerLane {
    Rng rng{0};
    gen2::Bits payload;
    std::vector<double> rx;
    double sigma = -1.0;
  };
  const double fs = link.sample_rate_hz;
  const double budget_db = uplink_budget_db(link);
  std::vector<BerLane> lanes(hi - lo);
  std::vector<FillSlot> fills;
  fills.reserve(lanes.size());
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    BerLane& lane = lanes[k];
    lane.rng = Rng::stream(base_seed, stream_offset + stream_stride * (lo + k));
    lane.payload.resize(payload_bits);
    // The oracle's payload loop, verbatim: one raw draw per bit.
    for (auto&& b : lane.payload) b = (lane.rng() & 1u) != 0;
    // The modulated frame becomes the rx buffer directly; noise lands in
    // place (same bytes as the oracle's copy-then-add sequence).
    lane.rx = gen2::fm0_modulate(lane.payload, link.blf_hz, fs);
    lane.sigma = awgn_sigma(signal_mean_power(lane.rx), budget_db);
    if (lane.sigma >= 0.0) {
      fills.push_back({&lane.rng, lane.sigma, lane.rx.data(), lane.rx.data(),
                       lane.rx.size()});
    }
  }
  fill_awgn_groups(fills);
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    BerLane& lane = lanes[k];
    const auto d = gen2::fm0_decode(lane.rx, payload_bits, link.blf_hz, fs,
                                    link.min_correlation);
    BerOutcome out;
    if (!d.valid || d.bits.size() != payload_bits) {
      out.bit_errors = payload_bits / 2;
      out.frame_error = 1;
    } else {
      for (std::size_t i = 0; i < payload_bits; ++i) {
        if (d.bits[i] != lane.payload[i]) ++out.bit_errors;
      }
      out.frame_error = out.bit_errors > 0 ? 1 : 0;
    }
    workspace.release(std::move(lane.rx));
    sink(lo + k, out);
  }
}

}  // namespace ivnet
