// Batched run-to-completion trial pipeline.
//
// The Monte-Carlo consumers (BER/PER waterfalls, the media x SNR x antennas
// session matrix, sim/experiment's trial loops) historically ran one trial
// at a time: charge -> Query -> backscatter -> decode, serially, with
// per-trial overheads (stage dispatch, workspace checkout, RNG setup,
// per-trial report structs) paid once per session. This engine runs K
// independent trials *together* in the NDN-DPDK burst style: a batch of
// lane states advances round by round through the same stages, the AWGN
// fills of lanes whose records have equal length are generated in lockstep
// SIMD lanes (signal/gauss.hpp), one DspWorkspace arena is checked out per
// batch rather than per trial, and per-trial results land in plain-old-data
// SessionOutcome slots that the caller folds batch-at-a-time.
//
// Determinism contract (the whole point): per-trial Rng::stream seeds are
// assigned up front from (base_seed, stream_offset + stream_stride * t), and
// every lane replays the EXACT operation sequence of the scalar oracle
// (run_impaired_link_session / waterfall's ber_trial), so outcomes are
// bitwise-identical to the scalar path at any batch size and any thread
// count. batch_pipeline_test pins this memcmp-strict across batch sizes
// {1, 2, 7, 32, 129} and ragged trial counts; determinism_test pins the
// batched waterfall/matrix JSON across 1/2/8-thread pools.
//
// Scalar-oracle policy (signal/naive_dsp.hpp style): batch_size <= 1 means
// the caller keeps the original one-trial-at-a-time code path, which stays
// in-tree verbatim as the oracle the batched engine is pinned against.
//
// Configs the lane engine cannot run in lockstep (Miller uplinks, burst
// erasures, CFO/phase/drift impairments, brownout) transparently fall back
// to the scalar oracle per lane — still batch-dispatched and workspace-
// pooled, so the batch knob is always safe to enable.
//
// Observability trade: the batched path emits the same order-independent
// per-trial counters/histograms as the scalar path (link.sessions,
// link.success/failed, link.elapsed_s, link.decode.*, recovery histograms)
// plus batch-level spans and counters (batch.trials, batch.dispatches,
// workspace.high_water_bytes) — but it does NOT emit the scalar path's
// per-trial sim-trace spans/tracks (a K-lane wavefront has no single
// per-trial timeline). Use batch_size 1 when per-trial traces matter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "ivnet/common/parallel.hpp"
#include "ivnet/impair/link_session.hpp"
#include "ivnet/signal/dsp_workspace.hpp"

namespace ivnet {

/// Batch-size knob carried by the throughput-workload configs. 0 defers to
/// default_batch_size() (the IVNET_BATCH environment variable or a
/// set_default_batch_size override), so existing call sites behave exactly
/// as before unless a batch size is requested somewhere.
struct BatchConfig {
  std::size_t batch_size = 0;
};

/// Process-wide default batch size: set_default_batch_size() override if
/// any, else IVNET_BATCH (when set and valid), else 1 (scalar oracle).
std::size_t default_batch_size();

/// Override the process default (0 restores the IVNET_BATCH/1 behavior).
/// Same spirit as set_parallel_threads: for benchmarks and CLI plumbing,
/// not safe to call concurrently with in-flight sweeps.
void set_default_batch_size(std::size_t batch_size);

/// The batch size a config resolves to (>= 1).
std::size_t resolve_batch_size(const BatchConfig& config);

/// POD projection of LinkSessionReport for memcmp-strict batched-vs-scalar
/// pinning and SoA-style batch accumulation. Fixed-width fields ordered
/// widest-first with explicit tail padding: no implicit padding bytes, so
/// aggregate-initialized instances compare reliably with std::memcmp.
struct SessionOutcome {
  double elapsed_s = 0.0;
  double last_correlation = 0.0;
  double backoff_total_s = 0.0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint32_t commands_sent = 0;
  std::uint16_t rn16 = 0;
  std::uint8_t success = 0;
  std::uint8_t powered = 0;
  std::uint8_t failed_stage = 0;  ///< SessionStage of the failure (success: 0)
  std::uint8_t pad[7] = {0, 0, 0, 0, 0, 0, 0};
};
static_assert(sizeof(SessionOutcome) == 56, "SessionOutcome must be packed");

/// One raw-BER probe outcome (waterfall even-stream trials).
struct BerOutcome {
  std::uint64_t bit_errors = 0;
  std::uint8_t frame_error = 0;
  std::uint8_t pad[7] = {0, 0, 0, 0, 0, 0, 0};
};
static_assert(sizeof(BerOutcome) == 16, "BerOutcome must be packed");

/// The scalar oracle's report projected onto the POD outcome.
SessionOutcome session_outcome_of(const LinkSessionReport& report);

/// Run session trials [lo, hi) as one batch of lockstep lanes. Trial t uses
/// Rng::stream(base_seed, stream_offset + stream_stride * t) — the exact
/// stream layout of the scalar call sites (waterfall sessions: stride 2,
/// offset 1; matrix/depth sweeps: stride 1, offset 0). `workspace` is the
/// batch's arena (one per batch, not per trial). `sink(t, outcome)` is
/// invoked once per trial in ascending trial order after the batch
/// completes.
void run_session_batch(
    const ImpairedLinkConfig& link, std::uint64_t base_seed,
    std::uint64_t stream_stride, std::uint64_t stream_offset, std::size_t lo,
    std::size_t hi, DspWorkspace& workspace,
    const std::function<void(std::size_t, const SessionOutcome&)>& sink);

/// Run BER-probe trials [lo, hi) as one batch (waterfall even streams:
/// stride 2, offset 0). Same seeding and sink contract as above.
void run_ber_batch(
    const ImpairedLinkConfig& link, std::size_t payload_bits,
    std::uint64_t base_seed, std::uint64_t stream_stride,
    std::uint64_t stream_offset, std::size_t lo, std::size_t hi,
    DspWorkspace& workspace,
    const std::function<void(std::size_t, const BerOutcome&)>& sink);

/// True when `link` can run in the lockstep lane engine; false means the
/// batch falls back to the scalar oracle per lane (exposed for tests).
bool lockstep_batchable(const ImpairedLinkConfig& link);

/// Deterministic batch-grained reduction: run_batch(lo, hi) -> T evaluates
/// trials [lo, hi) (hi - lo <= batch_size) and returns the batch partial;
/// partials are combined in batch order. Batches are dispatched on the
/// shared pool, one batch per pool_run task, so batch_size IS the
/// scheduling grain (it replaces kParallelGrain for batched sweeps).
/// Bitwise-identical totals for any pool size follow from the fixed batch
/// boundaries and in-order fold — and totals are batch-size-invariant too
/// whenever `combine` is associative over per-trial contributions (the
/// waterfall tallies are integer sums).
template <typename T, typename RunBatch, typename Combine>
T batched_reduce(std::size_t n, std::size_t batch_size, T identity,
                 RunBatch&& run_batch, Combine&& combine) {
  if (n == 0) return identity;
  const std::size_t k = batch_size == 0 ? 1 : batch_size;
  const std::size_t batches = (n + k - 1) / k;
  obs::count("batch.dispatches", batches);
  obs::count("batch.trials", n);
  std::vector<T> partials(batches, identity);
  const auto run_one = [&](std::size_t b) {
    partials[b] = run_batch(b * k, std::min(n, (b + 1) * k));
  };
  if (batches <= 1 || parallel_thread_count() <= 1 ||
      detail::in_pool_worker()) {
    for (std::size_t b = 0; b < batches; ++b) run_one(b);
  } else {
    detail::pool_run(batches, run_one);
  }
  T total = std::move(partials[0]);
  for (std::size_t b = 1; b < batches; ++b) {
    total = combine(std::move(total), std::move(partials[b]));
  }
  return total;
}

/// Batch-grained parallel_for: run_batch(lo, hi) must write only to
/// per-index slots (the parallel_for contract, at batch granularity).
template <typename RunBatch>
void batched_for(std::size_t n, std::size_t batch_size, RunBatch&& run_batch) {
  if (n == 0) return;
  const std::size_t k = batch_size == 0 ? 1 : batch_size;
  const std::size_t batches = (n + k - 1) / k;
  obs::count("batch.dispatches", batches);
  obs::count("batch.trials", n);
  const auto run_one = [&](std::size_t b) {
    run_batch(b * k, std::min(n, (b + 1) * k));
  };
  if (batches <= 1 || parallel_thread_count() <= 1 ||
      detail::in_pool_worker()) {
    for (std::size_t b = 0; b < batches; ++b) run_one(b);
  } else {
    detail::pool_run(batches, run_one);
  }
}

}  // namespace ivnet
