// Calibration constants for the reproduction.
//
// Everything here pins a SINGLE-ANTENNA operating point to the paper's
// reported numbers; all multi-antenna gains, ratios and crossovers are then
// produced by the physics and the CIB algorithm, not dialled in.
//
//   * Per-antenna transmit power: 30 dBm (the HMC453 P1dB, Sec. 5(a)).
//   * Transmit antenna: 7 dBi (MT-242025).
//   * Standard-tag chip sensitivity / input resistance chosen so the
//     single-antenna air range is ~5.2 m (Sec. 6.1.2: "this range is only
//     5.2 m with a single antenna").
//   * Tank standoff distances follow the setups: 0.5 m for the power-gain
//     experiments (Fig. 7/9), 0.9 m for the range experiments (Fig. 13).
//   * Water conductivity lands the standard tag's 8-antenna depth near the
//     paper's 23 cm; the same water then determines the miniature tag depth.
#pragma once

namespace ivnet::calib {

/// Per-antenna transmit power [dBm].
inline constexpr double kTxPowerDbm = 30.0;

/// Beamformer antenna gain [dBi].
inline constexpr double kTxGainDbi = 7.0;

/// CIB center carrier [Hz].
inline constexpr double kCibCenterHz = 915e6;

/// Out-of-band reader carrier [Hz].
inline constexpr double kReaderCarrierHz = 880e6;

/// Baseband simulation sample rate [Hz] (20 samples per 25 us Tari, 10 per
/// FM0 half-bit at BLF 40 kHz).
inline constexpr double kSampleRateHz = 800e3;

/// Beamformer standoff from the tank in the power-gain experiments [m].
inline constexpr double kGainSetupStandoffM = 0.5;

/// Beamformer standoff from the tank in the range experiments [m].
inline constexpr double kRangeSetupStandoffM = 0.9;

/// Lateral antenna distance in the swine experiments [m] (30-80 cm).
inline constexpr double kSwineStandoffM = 0.55;

/// Per-antenna amplitude jitter across an array (dB std-dev): antennas sit
/// at slightly different distances/orientations from the sensor.
inline constexpr double kArrayAmplitudeJitterDb = 1.0;

/// Test-tube air pocket the tags sit in (Sec. 5(c)) [m].
inline constexpr double kTubeWallOffsetM = 0.004;

}  // namespace ivnet::calib
