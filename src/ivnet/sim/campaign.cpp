#include "ivnet/sim/campaign.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <string_view>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "ivnet/common/json.hpp"
#include "ivnet/common/parallel.hpp"
#include "ivnet/impair/link_session.hpp"
#include "ivnet/impair/waterfall.hpp"
#include "ivnet/obs/obs.hpp"
#include "ivnet/sim/calibration.hpp"
#include "ivnet/sim/experiment.hpp"

namespace ivnet {
namespace {

std::string format_param(double value) {
  JsonWriter w;
  w.value(value);  // the writer's shortest-round-trip format — same
                   // formatter as every result
  return w.str();
}

// --- Evaluator registry --------------------------------------------------

struct EvaluatorRegistry {
  std::mutex mutex;
  std::unordered_map<std::string, CellEvaluator> evaluators;

  static EvaluatorRegistry& instance() {
    static EvaluatorRegistry registry;
    return registry;
  }
};

CellEvaluator find_evaluator(const std::string& kind) {
  auto& reg = EvaluatorRegistry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.evaluators.find(kind);
  if (it == reg.evaluators.end()) return nullptr;
  return it->second;
}

// --- Journal -------------------------------------------------------------

std::string hash_hex(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

/// One journal record; `result_json` is spliced in verbatim so a replay
/// reproduces the evaluator's bytes exactly. `extras` (shard metadata)
/// sits between the hash and cell fields so the result stays the record's
/// final field — the reader slices it off the closing brace.
std::string journal_line(const CellSpec& spec, std::uint64_t hash,
                         const std::string& result_json,
                         const std::string& extras = "") {
  std::string line = "{\"hash\":\"" + hash_hex(hash) + "\",";
  line += extras;
  line += "\"cell\":";
  line += spec.canonical_json();
  line += ",\"result\":";
  line += result_json;
  line += "}\n";
  return line;
}

/// True when `text` is a brace/bracket-balanced JSON fragment starting at
/// '{' — the cheap structural check that rejects torn journal tails without
/// pulling in a full parser. Tracks strings so quoted braces don't count.
bool balanced_json_object(const std::string& text) {
  if (text.empty() || text.front() != '{') return false;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      if (depth == 0) return i == text.size() - 1;
      if (depth < 0) return false;
    }
  }
  return false;
}

/// Drop any newline-less tail (a record torn by a crash mid-write) so the
/// next append starts on a record boundary. No-op on missing/clean files.
void truncate_torn_tail(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return;
  std::string content;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  if (content.empty() || content.back() == '\n') return;
  const std::size_t last_nl = content.find_last_of('\n');
  const std::size_t keep = last_nl == std::string::npos ? 0 : last_nl + 1;
  (void)::truncate(path.c_str(), static_cast<off_t>(keep));
}

/// Serialized appender owning the journal FILE*. Every record is flushed
/// AND fsync'd before append() returns: once a caller observes a cell as
/// journaled, a crash cannot un-journal it.
class JournalWriter {
 public:
  explicit JournalWriter(const std::string& path, bool fresh) {
    if (path.empty()) return;
    // A SIGKILL mid-append leaves a torn, newline-less tail. Appending a
    // fresh record onto it would glue the two lines into one corrupt one,
    // losing BOTH cells — truncate back to the last complete record first.
    if (!fresh) truncate_torn_tail(path);
    file_ = std::fopen(path.c_str(), fresh ? "w" : "a");
    if (file_ == nullptr) {
      throw std::runtime_error("campaign: cannot open journal " + path);
    }
  }
  ~JournalWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  void append(const CellSpec& spec, std::uint64_t hash,
              const std::string& result_json,
              const std::string& extras = "") {
    if (file_ == nullptr) return;
    std::lock_guard<std::mutex> lock(mutex_);
    detail::append_journal_record(file_, spec, hash, result_json, extras);
  }

 private:
  std::mutex mutex_;
  std::FILE* file_ = nullptr;
};

}  // namespace

namespace detail {

void append_journal_record(std::FILE* file, const CellSpec& spec,
                           std::uint64_t hash, const std::string& result_json,
                           const std::string& extras) {
  const std::string line = journal_line(spec, hash, result_json, extras);
  // Every step of the durability chain is checked: a short fwrite, a failed
  // fflush, or a failed fsync (ENOSPC, EIO, a read-only fd) means the
  // "durably journaled before observed" contract cannot be met, so the
  // caller must not report the cell as computed.
  if (std::fwrite(line.data(), 1, line.size(), file) != line.size()) {
    throw std::runtime_error(
        std::string("campaign: journal write failed: ") +
        std::strerror(errno));
  }
  if (std::fflush(file) != 0) {
    throw std::runtime_error(
        std::string("campaign: journal flush failed: ") +
        std::strerror(errno));
  }
  if (fsync(fileno(file)) != 0) {
    throw std::runtime_error(
        std::string("campaign: journal fsync failed: ") +
        std::strerror(errno));
  }
}

}  // namespace detail

// --- CellSpec ------------------------------------------------------------

CellSpec& CellSpec::set(const std::string& key, const std::string& value) {
  params[key] = value;
  return *this;
}

CellSpec& CellSpec::set(const std::string& key, const char* value) {
  params[key] = value;
  return *this;
}

CellSpec& CellSpec::set(const std::string& key, double value) {
  params[key] = format_param(value);
  return *this;
}

CellSpec& CellSpec::set(const std::string& key, std::size_t value) {
  params[key] = std::to_string(value);
  return *this;
}

std::string CellSpec::param(const std::string& key,
                            const std::string& fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

double CellSpec::param_num(const std::string& key, double fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback : std::atof(it->second.c_str());
}

std::string CellSpec::canonical_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("kind", kind);
  w.key("params").begin_object();
  for (const auto& [key, value] : params) w.field(key, value);
  w.end_object();
  w.end_object();
  return w.str();
}

std::uint64_t CellSpec::content_hash() const {
  const std::string canonical = canonical_json();
  std::uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a 64
  for (const char c : canonical) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

// --- Registry / cache ----------------------------------------------------

void register_cell_evaluator(const std::string& kind,
                             CellEvaluator evaluator) {
  auto& reg = EvaluatorRegistry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.evaluators[kind] = std::move(evaluator);
}

bool has_cell_evaluator(const std::string& kind) {
  return find_evaluator(kind) != nullptr;
}

CellCache& CellCache::instance() {
  static CellCache cache;
  return cache;
}

bool CellCache::lookup(std::uint64_t hash, std::string* result_json) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = results_.find(hash);
  if (it == results_.end()) return false;
  if (result_json != nullptr) *result_json = it->second;
  return true;
}

void CellCache::insert(std::uint64_t hash, std::string result_json) {
  std::lock_guard<std::mutex> lock(mutex_);
  results_.emplace(hash, std::move(result_json));
}

void CellCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  results_.clear();
}

std::size_t CellCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return results_.size();
}

// --- Journal reader ------------------------------------------------------

std::vector<JournalEntry> read_campaign_journal(const std::string& path) {
  std::vector<JournalEntry> entries;
  // Binary mode, matching truncate_torn_tail: both walk the same byte
  // offsets, so a result text carrying \r bytes can never make the reader
  // and the truncator disagree about where a record ends.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return entries;
  std::string content;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);

  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) break;  // torn tail: no newline, skip
    const std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;

    // {"hash":"<16 hex>",[shard metadata,]"cell":{...},"result":{...}}
    static constexpr std::string_view kPrefix = "{\"hash\":\"";
    if (line.rfind(kPrefix, 0) != 0 || !balanced_json_object(line)) continue;
    const std::string hex = line.substr(kPrefix.size(), 16);
    if (hex.size() != 16 || line[kPrefix.size() + 16] != '"') continue;
    char* end = nullptr;
    const std::uint64_t hash = std::strtoull(hex.c_str(), &end, 16);
    if (end == nullptr || *end != '\0') continue;
    static constexpr std::string_view kResultKey = ",\"result\":";
    const std::size_t rpos = line.find(kResultKey);
    if (rpos == std::string::npos) continue;
    // Everything between the result key and the record's closing brace.
    std::string result = line.substr(rpos + kResultKey.size(),
                                     line.size() - (rpos + kResultKey.size()) -
                                         1);
    if (!balanced_json_object(result)) continue;
    JournalEntry entry{};
    entry.hash = hash;
    entry.result_json = std::move(result);
    // Shard metadata lives strictly before the cell field, so scanning only
    // that prefix can never pick up a same-named key from the result text.
    const std::size_t cell_pos = line.find("\"cell\":");
    if (cell_pos != std::string::npos) {
      const std::string_view head(line.data(), cell_pos);
      const double shard = json_find_number(head, "shard", -1.0);
      if (shard >= 0.0) entry.shard = static_cast<std::size_t>(shard);
      entry.stolen = json_find_number(head, "stolen", 0.0) != 0.0;
      entry.seconds = json_find_number(head, "t_s", 0.0);
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

// --- Campaign runner -----------------------------------------------------

std::string CampaignReport::results_json() const {
  std::string out = "{\"campaign\":\"";
  out += json_escape(name);
  out += "\",\"cells\":[";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (i > 0) out += ',';
    const CellOutcome& o = outcomes[i];
    out += "{\"cell\":";
    out += o.spec.canonical_json();
    out += ",\"hash\":\"" + hash_hex(o.hash) + "\",\"result\":";
    out += o.result_json;
    out += '}';
  }
  out += "]}";
  return out;
}

CellOutcome resolve_cell(const CellSpec& spec,
                         const std::string& journal_path) {
  // One resolver at a time: concurrent service workers re-planning the same
  // scenario must not interleave journal appends or double-compute a cell.
  static std::mutex resolve_mutex;
  std::lock_guard<std::mutex> lock(resolve_mutex);

  CellOutcome outcome;
  outcome.spec = spec;
  outcome.hash = spec.content_hash();
  // Journal first — the only source that survives a process restart.
  bool in_journal = false;
  if (!journal_path.empty()) {
    for (auto& entry : read_campaign_journal(journal_path)) {
      if (entry.hash != outcome.hash) continue;
      outcome.result_json = std::move(entry.result_json);
      outcome.source = CellSource::kJournal;
      in_journal = true;
      break;  // first matching record wins, like the campaign replay
    }
  }
  if (in_journal) {
    CellCache::instance().insert(outcome.hash, outcome.result_json);
    return outcome;
  }
  if (CellCache::instance().lookup(outcome.hash, &outcome.result_json)) {
    outcome.source = CellSource::kCache;
  } else {
    const CellEvaluator evaluator = find_evaluator(spec.kind);
    if (!evaluator) {
      throw std::invalid_argument("campaign: no evaluator for kind '" +
                                  spec.kind + "'");
    }
    outcome.result_json = evaluator(spec);
    outcome.source = CellSource::kComputed;
  }
  // Journal BEFORE the memo cache (the run_campaign ordering): the result
  // is durable before any other code path can observe it.
  if (!journal_path.empty()) {
    JournalWriter journal(journal_path, /*fresh=*/false);
    journal.append(spec, outcome.hash, outcome.result_json);
  }
  CellCache::instance().insert(outcome.hash, outcome.result_json);
  return outcome;
}

CampaignReport run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options) {
  register_builtin_cell_evaluators();
  CampaignReport report;
  report.name = spec.name;
  report.cells_total = spec.cells.size();
  report.outcomes.resize(spec.cells.size());

  // Resolve evaluators up front: a bad kind must fail before any work (and
  // never from inside the pool, where exceptions cannot propagate).
  std::vector<CellEvaluator> evaluators(spec.cells.size());
  for (std::size_t i = 0; i < spec.cells.size(); ++i) {
    evaluators[i] = find_evaluator(spec.cells[i].kind);
    if (!evaluators[i]) {
      throw std::invalid_argument("campaign: no evaluator for kind '" +
                                  spec.cells[i].kind + "'");
    }
  }

  std::unordered_map<std::uint64_t, std::string> journaled;
  if (!options.journal_path.empty() && !options.fresh) {
    for (auto& entry : read_campaign_journal(options.journal_path)) {
      journaled.emplace(entry.hash, std::move(entry.result_json));
    }
  }
  JournalWriter journal(options.journal_path, options.fresh);
  CellCache& cache = CellCache::instance();

  // Serial resolution pass in spec order, so resumed/cache-hit counts are
  // deterministic for any thread count: journal first, then the memo
  // cache, then schedule the first instance of each remaining hash.
  std::vector<std::size_t> pending;  // first instances to compute
  std::unordered_map<std::uint64_t, std::size_t> scheduled;  // hash -> index
  std::vector<std::size_t> duplicates;  // later instances of scheduled hashes
  for (std::size_t i = 0; i < spec.cells.size(); ++i) {
    CellOutcome& out = report.outcomes[i];
    out.spec = spec.cells[i];
    out.hash = spec.cells[i].content_hash();
    if (const auto it = journaled.find(out.hash); it != journaled.end()) {
      out.result_json = it->second;
      out.source = CellSource::kJournal;
      ++report.cells_resumed;
      cache.insert(out.hash, out.result_json);
      continue;
    }
    if (cache.lookup(out.hash, &out.result_json)) {
      out.source = CellSource::kCache;
      ++report.cache_hits;
      // Cache-resolved cells still land in THIS journal, so the journal
      // alone replays the whole campaign.
      journal.append(out.spec, out.hash, out.result_json);
      continue;
    }
    if (scheduled.count(out.hash) > 0) {
      duplicates.push_back(i);  // resolved from the first instance below
      ++report.cache_hits;
      continue;
    }
    scheduled.emplace(out.hash, i);
    pending.push_back(i);
  }

  obs::count("campaign.cells.total", report.cells_total);
  obs::count("campaign.cells.resumed", report.cells_resumed);
  obs::count("campaign.cache.misses", pending.size());

  // Shard pending cells across the pool, one cell per chunk — cells are
  // coarse (whole Monte-Carlo sweeps), so the fixed fine grain of
  // parallel_for would serialize small campaigns. Exceptions (an evaluator
  // throwing, a journal append that cannot be made durable) are captured —
  // they cannot unwind through the pool — and the first one rethrows after
  // the remaining cells have been skipped.
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto evaluate = [&](std::size_t pi) {
    {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error) return;
    }
    try {
      const std::size_t i = pending[pi];
      CellOutcome& out = report.outcomes[i];
      const auto t0 = std::chrono::steady_clock::now();
      out.result_json = evaluators[i](out.spec);
      const double dt = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      out.source = CellSource::kComputed;
      obs::observe("campaign.cell.seconds", dt);
      // Journal BEFORE the memo cache: once any code path can observe the
      // result, its journal line is already durable.
      journal.append(out.spec, out.hash, out.result_json);
      cache.insert(out.hash, out.result_json);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };
  if (pending.size() <= 1 || parallel_thread_count() <= 1 ||
      detail::in_pool_worker()) {
    for (std::size_t pi = 0; pi < pending.size(); ++pi) evaluate(pi);
  } else {
    detail::pool_run(pending.size(), evaluate);
  }
  if (first_error) std::rethrow_exception(first_error);
  report.cells_computed = pending.size();

  for (const std::size_t i : duplicates) {
    CellOutcome& out = report.outcomes[i];
    out.result_json = report.outcomes[scheduled.at(out.hash)].result_json;
    out.source = CellSource::kCache;
  }

  obs::count("campaign.cells.computed", report.cells_computed);
  obs::count("campaign.cache.hits", report.cache_hits);
  return report;
}

// --- Distributed campaigns -----------------------------------------------

namespace {

/// Exactly-once arbitration for one run generation: an append-only file of
/// `<16-hex-hash> <shard>` lines, serialized by an fcntl whole-file write
/// lock (cross-process) nested inside a process-wide mutex (fcntl record
/// locks do not exclude threads of the same process). A worker may only
/// evaluate a cell after winning its claim; losing means some other worker
/// is computing (or has computed) it. Claims are NOT durable state — the
/// journals are — so the coordinator truncates this file at the start of
/// every generation and a claimed-but-never-journaled cell (its claimant
/// was SIGKILLed) is simply recomputed on the next resume.
class ClaimsFile {
 public:
  explicit ClaimsFile(std::string path) : path_(std::move(path)) {}

  /// True when this worker won the claim on `hash` (nobody held it).
  bool claim(std::uint64_t hash, std::size_t shard) {
    static std::mutex process_mutex;
    std::lock_guard<std::mutex> guard(process_mutex);
    const int fd = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) {
      throw std::runtime_error("campaign: cannot open claims file " + path_);
    }
    struct ::flock lock {};
    lock.l_type = F_WRLCK;
    lock.l_whence = SEEK_SET;
    lock.l_start = 0;
    lock.l_len = 0;  // whole file
    while (::fcntl(fd, F_SETLKW, &lock) != 0) {
      if (errno != EINTR) {
        ::close(fd);
        throw std::runtime_error("campaign: claims lock failed on " + path_);
      }
    }
    bool won = false;
    try {
      const std::string content = read_all(fd);
      const std::string hex = hash_hex(hash);
      won = !holds_claim(content, hex);
      if (won) {
        std::string line;
        // A SIGKILL mid-claim leaves a newline-less tail; starting on a
        // fresh line keeps this claim parseable (the torn one stays
        // conservative garbage and its cell falls to the next resume).
        if (!content.empty() && content.back() != '\n') line += '\n';
        line += hex;
        line += ' ';
        line += std::to_string(shard);
        line += '\n';
        append_durable(fd, line);
      }
    } catch (...) {
      ::close(fd);  // releases the fcntl lock
      throw;
    }
    ::close(fd);
    return won;
  }

 private:
  static std::string read_all(int fd) {
    std::string content;
    char buf[4096];
    ssize_t n = 0;
    while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
      content.append(buf, static_cast<std::size_t>(n));
    }
    if (n < 0) throw std::runtime_error("campaign: claims read failed");
    return content;
  }

  /// True when some line of `content` already claims `hex`.
  static bool holds_claim(const std::string& content, const std::string& hex) {
    std::size_t pos = 0;
    while (pos < content.size()) {
      std::size_t eol = content.find('\n', pos);
      if (eol == std::string::npos) eol = content.size();
      if (eol - pos >= hex.size() &&
          content.compare(pos, hex.size(), hex) == 0) {
        return true;
      }
      pos = eol + 1;
    }
    return false;
  }

  static void append_durable(int fd, const std::string& line) {
    if (::lseek(fd, 0, SEEK_END) < 0) {
      throw std::runtime_error("campaign: claims seek failed");
    }
    std::size_t written = 0;
    while (written < line.size()) {
      const ssize_t n =
          ::write(fd, line.data() + written, line.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error("campaign: claims write failed");
      }
      written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
      throw std::runtime_error("campaign: claims fsync failed");
    }
  }

  std::string path_;
};

}  // namespace

std::string shard_journal_path(const std::string& base, std::size_t shard) {
  return base + ".shard" + std::to_string(shard) + ".jsonl";
}

std::string shard_claims_path(const std::string& base) {
  return base + ".claims";
}

void reset_campaign_claims(const ShardOptions& options) {
  if (options.journal_path.empty()) return;
  std::remove(shard_claims_path(options.journal_path).c_str());
  if (options.fresh) {
    for (std::size_t k = 0; k < options.n_shards; ++k) {
      std::remove(shard_journal_path(options.journal_path, k).c_str());
    }
  }
}

ShardWorkerReport run_campaign_shard(const CampaignSpec& spec,
                                     const ShardOptions& options,
                                     std::size_t shard) {
  if (options.journal_path.empty()) {
    throw std::invalid_argument("campaign: sharded run needs a journal path");
  }
  if (options.n_shards == 0 || shard >= options.n_shards) {
    throw std::invalid_argument("campaign: shard index out of range");
  }
  register_builtin_cell_evaluators();

  // Resolve evaluators up front: a bad kind fails before any work.
  std::vector<CellEvaluator> evaluators(spec.cells.size());
  for (std::size_t i = 0; i < spec.cells.size(); ++i) {
    evaluators[i] = find_evaluator(spec.cells[i].kind);
    if (!evaluators[i]) {
      throw std::invalid_argument("campaign: no evaluator for kind '" +
                                  spec.cells[i].kind + "'");
    }
  }

  // Resolution order, per shard: journal (EVERY shard's — the whole
  // fleet's finished work counts as resumed) -> memo cache -> compute.
  std::unordered_set<std::uint64_t> journaled;
  for (std::size_t k = 0; k < options.n_shards; ++k) {
    for (const auto& entry :
         read_campaign_journal(shard_journal_path(options.journal_path, k))) {
      journaled.insert(entry.hash);
    }
  }

  JournalWriter journal(shard_journal_path(options.journal_path, shard),
                        /*fresh=*/false);
  ClaimsFile claims(shard_claims_path(options.journal_path));
  CellCache& cache = CellCache::instance();

  ShardWorkerReport report;
  report.shard = shard;

  // Unique unresolved cells in spec order, split owned / stealable.
  std::vector<std::size_t> own, others;
  std::unordered_set<std::uint64_t> seen;
  for (std::size_t i = 0; i < spec.cells.size(); ++i) {
    const std::uint64_t hash = spec.cells[i].content_hash();
    if (!seen.insert(hash).second) continue;
    if (journaled.count(hash) > 0) {
      ++report.cells_resumed;
      continue;
    }
    if (hash % options.n_shards == shard) {
      own.push_back(i);
    } else {
      others.push_back(i);
    }
  }
  report.cells_owned = own.size();

  std::mutex state_mutex;
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto compute_cell = [&](std::size_t i, bool stolen) {
    {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error) return;
    }
    try {
      const CellSpec& cell = spec.cells[i];
      const std::uint64_t hash = cell.content_hash();
      if (!claims.claim(hash, shard)) return;  // another worker has it
      std::string result;
      double dt = 0.0;
      const bool from_cache = cache.lookup(hash, &result);
      if (!from_cache) {
        const auto t0 = std::chrono::steady_clock::now();
        result = evaluators[i](cell);
        dt = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
        obs::observe("campaign.cell.seconds", dt);
      }
      // Cache-resolved cells still land in this shard's journal, so the
      // merged journal set replays the whole campaign on its own.
      std::string extras = "\"shard\":" + std::to_string(shard) +
                           ",\"stolen\":" + (stolen ? "1" : "0") +
                           ",\"t_s\":" + format_param(dt) + ",";
      journal.append(cell, hash, result, extras);
      if (!from_cache) cache.insert(hash, result);
      std::lock_guard<std::mutex> lock(state_mutex);
      if (from_cache) {
        ++report.cells_from_cache;
      } else {
        ++report.cells_computed;
        if (stolen) {
          ++report.cells_stolen;
          obs::count("campaign.cells.stolen");
        }
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  auto run_list = [&](const std::vector<std::size_t>& list, bool stolen) {
    auto body = [&](std::size_t j) { compute_cell(list[j], stolen); };
    if (list.size() <= 1 || parallel_thread_count() <= 1 ||
        detail::in_pool_worker()) {
      for (std::size_t j = 0; j < list.size(); ++j) body(j);
    } else {
      detail::pool_run(list.size(), body);
    }
  };
  // Own shard first; only a worker whose backlog has drained starts
  // stealing, so stealing strictly helps stragglers.
  run_list(own, /*stolen=*/false);
  run_list(others, /*stolen=*/true);
  if (first_error) std::rethrow_exception(first_error);

  obs::count("campaign.cells.computed", report.cells_computed);
  obs::count("campaign.cells.resumed", report.cells_resumed);
  obs::count("campaign.cache.hits", report.cells_from_cache);
  return report;
}

ShardMergeReport merge_campaign_shards(const CampaignSpec& spec,
                                       const ShardOptions& options) {
  if (options.journal_path.empty()) {
    throw std::invalid_argument("campaign: merge needs a journal path");
  }
  ShardMergeReport merge;
  CampaignReport& report = merge.report;
  report.name = spec.name;
  report.cells_total = spec.cells.size();

  std::unordered_map<std::uint64_t, std::string> results;
  for (std::size_t k = 0; k < options.n_shards; ++k) {
    for (auto& entry :
         read_campaign_journal(shard_journal_path(options.journal_path, k))) {
      if (entry.stolen) ++merge.cells_stolen;
      if (entry.seconds > 0.0) {
        const std::size_t writer =
            entry.shard == JournalEntry::kNoShard ? k : entry.shard;
        obs::observe("campaign.shard" + std::to_string(writer) +
                         ".cell.seconds",
                     entry.seconds);
      }
      results.emplace(entry.hash, std::move(entry.result_json));
    }
  }

  // Spec order, exactly like the single-process report: when every cell is
  // covered, results_json() is byte-identical to an unsharded run.
  report.outcomes.resize(spec.cells.size());
  std::unordered_set<std::uint64_t> missing;
  for (std::size_t i = 0; i < spec.cells.size(); ++i) {
    CellOutcome& out = report.outcomes[i];
    out.spec = spec.cells[i];
    out.hash = spec.cells[i].content_hash();
    const auto it = results.find(out.hash);
    if (it != results.end()) {
      out.result_json = it->second;
      out.source = CellSource::kJournal;
      ++report.cells_resumed;
    } else if (missing.insert(out.hash).second) {
      ++merge.cells_missing;
    }
  }
  obs::count("campaign.shards", options.n_shards);
  obs::count("campaign.cells.merged", results.size());
  obs::count("campaign.cells.missing", merge.cells_missing);
  return merge;
}

CampaignReport run_campaign_sharded(const CampaignSpec& spec,
                                    const ShardOptions& options) {
  if (options.n_shards <= 1 && options.journal_path.empty()) {
    CampaignOptions single;
    single.fresh = options.fresh;
    return run_campaign(spec, single);
  }
  if (options.journal_path.empty()) {
    throw std::invalid_argument("campaign: sharded run needs a journal path");
  }
  reset_campaign_claims(options);

  // One thread per worker; each worker still shards its own cell list over
  // the shared pool, and the claims file keeps the fleet exactly-once.
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::thread> workers;
  workers.reserve(options.n_shards);
  for (std::size_t k = 0; k < options.n_shards; ++k) {
    workers.emplace_back([&, k] {
      try {
        run_campaign_shard(spec, options, k);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  if (first_error) std::rethrow_exception(first_error);

  ShardMergeReport merged = merge_campaign_shards(spec, options);
  if (!merged.complete()) {
    throw std::runtime_error("campaign: merge is missing " +
                             std::to_string(merged.cells_missing) +
                             " cells (resume to fill the gaps)");
  }
  return std::move(merged.report);
}

namespace {

// Strict full-string parse of IVNET_SHARDS, mirroring IVNET_THREADS /
// IVNET_BATCH: "3" is a fleet of three, "3abc"/"abc"/"0" warn once and
// fall back to a single process.
std::size_t env_shard_count() {
  const char* env = std::getenv("IVNET_SHARDS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  errno = 0;
  const unsigned long value = std::strtoul(env, &end, 10);
  if (env[0] >= '0' && env[0] <= '9' && end != env && *end == '\0' &&
      errno != ERANGE && value >= 1 && value <= 1024) {
    return static_cast<std::size_t>(value);
  }
  static std::once_flag warned;
  std::call_once(warned, [env] {
    std::fprintf(stderr,
                 "ivnet: ignoring invalid IVNET_SHARDS='%s' (expected an "
                 "integer in 1..1024)\n",
                 env);
  });
  return 1;
}

}  // namespace

CampaignReport run_bench_campaign(const CampaignSpec& spec,
                                  const std::string& journal_path) {
  const std::size_t shards = env_shard_count();
  if (shards > 1 && !journal_path.empty()) {
    ShardOptions options;
    options.journal_path = journal_path;
    options.n_shards = shards;
    return run_campaign_sharded(spec, options);
  }
  if (shards > 1) {
    std::fprintf(stderr,
                 "ivnet: IVNET_SHARDS=%zu needs a journal path; running "
                 "single-process\n",
                 shards);
  }
  CampaignOptions options;
  options.journal_path = journal_path;
  return run_campaign(spec, options);
}

// --- Built-in evaluators -------------------------------------------------

namespace {

Scenario scenario_from(const CellSpec& cell) {
  const std::string kind = cell.param("scenario", "water_tank");
  if (kind == "air") return air_scenario(cell.param_num("distance_m", 2.0));
  return water_tank_scenario(
      cell.param_num("depth_m", 0.05),
      cell.param_num("standoff_m", calib::kGainSetupStandoffM));
}

TagConfig tag_from(const CellSpec& cell) {
  return cell.param("tag", "std") == "mini" ? miniature_tag() : standard_tag();
}

std::string eval_gain(const CellSpec& cell) {
  const auto scenario = scenario_from(cell);
  const auto tag = tag_from(cell);
  const auto plan = FrequencyPlan::paper_default().truncated(
      static_cast<std::size_t>(cell.param_num("antennas", 8)));
  const auto trials = static_cast<std::size_t>(cell.param_num("trials", 150));
  Rng rng(static_cast<std::uint64_t>(cell.param_num("seed", 9)));
  const auto results = run_gain_trials(scenario, tag, plan, trials, rng);
  const auto cib = summarize_cib(results);
  const auto baseline = summarize_baseline(results);
  JsonWriter w;
  w.begin_object();
  w.field("p10", cib.p10);
  w.field("p50", cib.p50);
  w.field("p90", cib.p90);
  w.field("baseline_p50", baseline.p50);
  w.field("trials", trials);
  w.end_object();
  return w.str();
}

std::string eval_range(const CellSpec& cell) {
  const auto tag = tag_from(cell);
  const auto plan = FrequencyPlan::paper_default().truncated(
      static_cast<std::size_t>(cell.param_num("antennas", 8)));
  const auto trials = static_cast<std::size_t>(cell.param_num("trials", 15));
  const bool water = cell.param("medium", "air") == "water";
  Rng rng(static_cast<std::uint64_t>(cell.param_num("seed", 13)));
  const double max_m =
      water ? max_water_depth(tag, plan, trials, rng,
                              cell.param_num("max_search_m", 0.5))
            : max_air_range(tag, plan, trials, rng,
                            cell.param_num("max_search_m", 100.0));
  JsonWriter w;
  w.begin_object();
  w.field("max_m", max_m);
  w.field("trials", trials);
  w.end_object();
  return w.str();
}

std::string eval_waterfall(const CellSpec& cell) {
  WaterfallConfig config;
  config.snr_points_db = {cell.param_num("snr_db", 30.0)};
  config.trials_per_point =
      static_cast<std::size_t>(cell.param_num("trials", 32));
  config.link.recovery = RecoveryPolicy::retries(
      static_cast<std::size_t>(cell.param_num("retries", 2)));
  // Same seed across SNR cells => same Rng::stream trial sub-streams: the
  // common-random-numbers coupling that keeps the waterfall monotone.
  Rng rng(static_cast<std::uint64_t>(cell.param_num("seed", 13)));
  const auto points = run_ber_waterfall(config, rng);
  const auto& p = points.front();
  JsonWriter w;
  w.begin_object();
  w.field("ber", p.ber);
  w.field("per", p.per);
  w.field("session_success", p.session_success_rate);
  w.field("mean_retries", p.mean_retries);
  w.field("trials", p.trials);
  w.end_object();
  return w.str();
}

std::string eval_matrix(const CellSpec& cell) {
  MatrixConfig config;
  config.media = {{cell.param("medium", "water"),
                   cell.param_num("loss_db", 2.0)}};
  config.snr_points_db = {cell.param_num("snr_db", 30.0)};
  config.antenna_counts = {
      static_cast<std::size_t>(cell.param_num("antennas", 1))};
  config.trials_per_cell =
      static_cast<std::size_t>(cell.param_num("trials", 24));
  config.link.recovery = RecoveryPolicy::retries(
      static_cast<std::size_t>(cell.param_num("retries", 2)));
  Rng rng(static_cast<std::uint64_t>(cell.param_num("seed", 17)));
  const auto cells = run_session_matrix(config, rng);
  const auto& c = cells.front();
  JsonWriter w;
  w.begin_object();
  w.field("success_rate", c.success_rate);
  w.field("mean_retries", c.mean_retries);
  w.field("recovered_by_retry", c.recovered_by_retry);
  w.field("trials", c.trials);
  w.end_object();
  return w.str();
}

std::string eval_depth(const CellSpec& cell) {
  DepthSweepConfig config;
  config.depths_m = {cell.param_num("depth_m", 0.05)};
  config.trials_per_point =
      static_cast<std::size_t>(cell.param_num("trials", 32));
  config.link.num_antennas =
      static_cast<std::size_t>(cell.param_num("antennas", 10));
  config.link.recovery = RecoveryPolicy::retries(
      static_cast<std::size_t>(cell.param_num("retries", 1)));
  Rng rng(static_cast<std::uint64_t>(cell.param_num("seed", 29)));
  const auto points = run_success_vs_depth(config, rng);
  const auto& p = points.front();
  JsonWriter w;
  w.begin_object();
  w.field("loss_db", p.medium_loss_db);
  w.field("success_rate", p.success_rate);
  w.field("mean_retries", p.mean_retries);
  w.end_object();
  return w.str();
}

std::string eval_burst_retry(const CellSpec& cell) {
  ImpairedLinkConfig config;
  config.snr_db = cell.param_num("snr_db", 30.0);
  config.impair.bursts = {
      .rate_hz = cell.param_num("burst_rate_hz", 150.0),
      .mean_duration_s = cell.param_num("burst_duration_s", 5e-4),
      .depth_db = cell.param_num("burst_depth_db", 40.0)};
  config.recovery = RecoveryPolicy::retries(
      static_cast<std::size_t>(cell.param_num("retries", 0)));
  const auto trials = static_cast<std::size_t>(cell.param_num("trials", 200));
  const auto seed = static_cast<std::uint64_t>(cell.param_num("seed", 23));
  std::size_t ok = 0, timeouts = 0;
  double backoff = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    Rng rng = Rng::stream(seed, t);
    const auto report = run_impaired_link_session(config, rng);
    ok += report.success;
    timeouts += report.recovery.timeouts;
    backoff += report.recovery.backoff_total_s;
  }
  JsonWriter w;
  w.begin_object();
  w.field("success", static_cast<double>(ok) / static_cast<double>(trials));
  w.field("timeouts",
          static_cast<double>(timeouts) / static_cast<double>(trials));
  w.field("backoff_ms", 1e3 * backoff / static_cast<double>(trials));
  w.field("trials", trials);
  w.end_object();
  return w.str();
}

}  // namespace

void register_builtin_cell_evaluators() {
  static std::once_flag once;
  std::call_once(once, [] {
    register_cell_evaluator("gain", eval_gain);
    register_cell_evaluator("range", eval_range);
    register_cell_evaluator("waterfall", eval_waterfall);
    register_cell_evaluator("matrix", eval_matrix);
    register_cell_evaluator("depth", eval_depth);
    register_cell_evaluator("burst_retry", eval_burst_retry);
  });
}

// --- Figure campaigns ----------------------------------------------------

namespace {

/// The Fig. 9 water-tank gain cell for `antennas` — the SAME spec (hence
/// hash) wherever it appears, which is what lets Fig. 13's anchors reuse
/// Fig. 9's results through the memo cache.
CellSpec water_gain_cell(std::size_t antennas, std::size_t trials) {
  CellSpec cell("gain");
  cell.set("scenario", "water_tank")
      .set("depth_m", 0.05)
      .set("standoff_m", calib::kGainSetupStandoffM)
      .set("tag", "std")
      .set("antennas", antennas)
      .set("trials", trials)
      .set("seed", std::size_t{9});
  return cell;
}

CellSpec range_cell(const char* tag, const char* medium, std::size_t antennas,
                    std::size_t trials, double max_search_m) {
  CellSpec cell("range");
  cell.set("tag", tag)
      .set("medium", medium)
      .set("antennas", antennas)
      .set("trials", trials)
      .set("max_search_m", max_search_m)
      .set("seed", std::size_t{13});
  return cell;
}

}  // namespace

CampaignSpec fig9_campaign(std::size_t gain_trials) {
  CampaignSpec spec;
  spec.name = "fig9";
  for (std::size_t n = 1; n <= 10; ++n) {
    spec.cells.push_back(water_gain_cell(n, gain_trials));
  }
  return spec;
}

CampaignSpec fig13_campaign(std::size_t gain_trials, std::size_t range_trials) {
  CampaignSpec spec;
  spec.name = "fig13";
  for (std::size_t n = 1; n <= 8; ++n) {
    spec.cells.push_back(range_cell("std", "air", n, range_trials, 80.0));
    spec.cells.push_back(range_cell("mini", "air", n, range_trials, 20.0));
    spec.cells.push_back(range_cell("std", "water", n, range_trials, 0.5));
    spec.cells.push_back(range_cell("mini", "water", n, range_trials, 0.5));
  }
  // Water-tank gain anchors shared verbatim with fig9 (same hash): when
  // both campaigns run in one process, these resolve from the memo cache.
  spec.cells.push_back(water_gain_cell(1, gain_trials));
  spec.cells.push_back(water_gain_cell(8, gain_trials));
  return spec;
}

CampaignSpec x13_campaign(std::size_t trials) {
  CampaignSpec spec;
  spec.name = "x13";
  for (const double snr : {30.0, 24.0, 18.0, 12.0, 8.0, 4.0, 0.0}) {
    CellSpec cell("waterfall");
    cell.set("snr_db", snr)
        .set("trials", trials)
        .set("retries", std::size_t{2})
        .set("seed", std::size_t{13});
    spec.cells.push_back(cell);
  }
  const struct {
    const char* name;
    double loss_db;
  } media[] = {{"water", 2.0}, {"muscle", 6.0}, {"gastric", 9.0}};
  for (const auto& medium : media) {
    for (const double snr : {30.0, 20.0, 10.0, 0.0}) {
      for (const std::size_t antennas : {1u, 3u, 10u}) {
        CellSpec cell("matrix");
        cell.set("medium", medium.name)
            .set("loss_db", medium.loss_db)
            .set("snr_db", snr)
            .set("antennas", antennas)
            .set("trials", trials)
            .set("retries", std::size_t{2})
            .set("seed", std::size_t{17});
        spec.cells.push_back(cell);
      }
    }
  }
  for (const std::size_t retries : {0u, 1u, 2u, 3u}) {
    CellSpec cell("burst_retry");
    cell.set("retries", retries)
        .set("snr_db", 30.0)
        .set("burst_rate_hz", 150.0)
        .set("burst_duration_s", 5e-4)
        .set("burst_depth_db", 40.0)
        .set("trials", std::size_t{200})
        .set("seed", std::size_t{23});
    spec.cells.push_back(cell);
  }
  for (const double depth : {0.01, 0.03, 0.05, 0.08, 0.10, 0.12, 0.15}) {
    CellSpec cell("depth");
    cell.set("depth_m", depth)
        .set("antennas", std::size_t{10})
        .set("retries", std::size_t{1})
        .set("trials", trials)
        .set("seed", std::size_t{29});
    spec.cells.push_back(cell);
  }
  return spec;
}

}  // namespace ivnet
