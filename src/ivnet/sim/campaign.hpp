// Sweep-campaign engine: declarative (scenario x plan x trials x seed)
// grids evaluated as independent cells, sharded across the shared thread
// pool, journaled to an append-only JSONL checkpoint, and memoized in a
// process-wide cache keyed by a content hash of each cell's inputs.
//
//   * A CELL is one (evaluator kind, parameter map) pair. Parameters are
//     strings with fixed formatting, so the canonical JSON — and therefore
//     the FNV-1a content hash — never drifts with locale or float state.
//   * The JOURNAL is one fsync'd JSONL record per completed cell. A run
//     killed at any point resumes by replaying the journal: finished cells
//     are emitted verbatim from their journaled result text, so an
//     interrupted-then-resumed campaign produces BYTE-IDENTICAL final JSON
//     to an uninterrupted one, at any IVNET_THREADS. Torn or corrupt
//     journal lines (the tail of a SIGKILL'd write) are skipped and their
//     cells recomputed.
//   * The CACHE memoizes result text by content hash for the lifetime of
//     the process, so cells shared between benches (Fig. 9 and Fig. 13
//     share their water-tank gain anchors) evaluate once. Cache-resolved
//     cells are still appended to the journal so every journal is a
//     self-contained checkpoint of its own campaign.
//
// Determinism contract: evaluators must be pure functions of the CellSpec
// (all randomness from an Rng seeded by a `seed` parameter, trial loops on
// counter-derived Rng::stream sub-streams), so a cell's result text is
// independent of thread count, evaluation order, and which campaign asked.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ivnet {

/// One sweep cell: an evaluator kind plus its parameters. The param map is
/// ordered, so the canonical form is independent of insertion order.
struct CellSpec {
  std::string kind;
  std::map<std::string, std::string> params;

  CellSpec() = default;
  explicit CellSpec(std::string kind_) : kind(std::move(kind_)) {}

  /// Typed setters with fixed value formatting (doubles via the JSON
  /// writer's shortest-round-trip std::to_chars, integers via decimal) —
  /// the hash input never drifts.
  CellSpec& set(const std::string& key, const std::string& value);
  CellSpec& set(const std::string& key, const char* value);
  CellSpec& set(const std::string& key, double value);
  CellSpec& set(const std::string& key, std::size_t value);

  std::string param(const std::string& key, const std::string& fallback) const;
  double param_num(const std::string& key, double fallback) const;

  /// {"kind":...,"params":{...sorted...}} — the content-hash input.
  std::string canonical_json() const;

  /// FNV-1a 64 over canonical_json(). Identical params => identical hash,
  /// whatever campaign, process, or thread evaluated the cell.
  std::uint64_t content_hash() const;
};

/// Evaluates one cell to its result: a complete JSON object in text form,
/// byte-stable for equal specs (use JsonWriter; seed all randomness from
/// the spec's `seed` parameter).
using CellEvaluator = std::function<std::string(const CellSpec&)>;

/// Register an evaluator for `kind` (replaces any previous registration).
void register_cell_evaluator(const std::string& kind, CellEvaluator evaluator);
bool has_cell_evaluator(const std::string& kind);

/// Process-wide memo of cell results keyed by content hash. Thread-safe.
class CellCache {
 public:
  static CellCache& instance();

  /// True (and fills *result_json) when `hash` is memoized.
  bool lookup(std::uint64_t hash, std::string* result_json) const;
  void insert(std::uint64_t hash, std::string result_json);
  void clear();
  std::size_t size() const;

 private:
  CellCache() = default;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::string> results_;
};

/// A named list of cells. Duplicate cells (same hash) are legal and
/// evaluate once.
struct CampaignSpec {
  std::string name;
  std::vector<CellSpec> cells;
};

/// Where a cell's result came from in this run.
enum class CellSource {
  kComputed,  ///< evaluated fresh in this run
  kJournal,   ///< replayed from the journal (resume)
  kCache,     ///< memo hit (earlier campaign or duplicate cell)
};

struct CellOutcome {
  CellSpec spec;
  std::uint64_t hash = 0;
  std::string result_json;  ///< evaluator output, verbatim
  CellSource source = CellSource::kComputed;
};

struct CampaignOptions {
  /// Append-only JSONL checkpoint. Empty disables journaling (and resume).
  std::string journal_path;
  /// Truncate an existing journal instead of resuming from it.
  bool fresh = false;
};

struct CampaignReport {
  std::string name;
  std::vector<CellOutcome> outcomes;  ///< spec order
  std::size_t cells_total = 0;
  std::size_t cells_computed = 0;
  std::size_t cells_resumed = 0;  ///< replayed from the journal
  std::size_t cache_hits = 0;     ///< memo hits (incl. in-spec duplicates)

  /// {"campaign":...,"cells":[{kind,params,hash,result}...]} in spec order.
  /// Byte-identical for interrupted-then-resumed and uninterrupted runs.
  std::string results_json() const;
};

/// Run every cell of `spec`: resolve from journal, then memo cache, and
/// shard the remainder across the shared pool (one cell per pool chunk —
/// cells are coarse). Each completed cell is appended to the journal and
/// fsync'd before it can appear in any final output. Throws
/// std::invalid_argument when a cell kind has no registered evaluator.
CampaignReport run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options = {});

/// Durable single-cell memo (the planner's plan store): resolve `spec`
/// against the journal at `journal_path` (same format and torn-tail rules
/// as a campaign journal; empty path skips persistence), then the
/// process-wide CellCache, else compute with the registered evaluator.
/// A result not already in the journal is appended and fsync'd before this
/// returns, so an identical spec resolved by a later process replays the
/// stored bytes instead of recomputing. Calls are serialized process-wide;
/// cross-process writers of one journal need external coordination (the
/// intended deployment is one planner process per store, like the
/// single-process campaign journal). Throws std::invalid_argument for an
/// unregistered kind and propagates evaluator exceptions.
CellOutcome resolve_cell(const CellSpec& spec,
                         const std::string& journal_path);

/// One replayable journal record. Shard journals carry extra metadata
/// (owner shard, stolen flag, compute seconds) ahead of the cell; a
/// single-process journal leaves the defaults.
struct JournalEntry {
  std::uint64_t hash = 0;
  std::string result_json;
  std::size_t shard = kNoShard;  ///< worker that journaled the record
  bool stolen = false;           ///< claimed from another shard's backlog
  double seconds = 0.0;          ///< compute time (0 for cache/replayed)

  static constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);
};

/// Parse a campaign journal, skipping torn or corrupt lines (a record is
/// only trusted when its line is newline-terminated and well-formed).
/// Missing file => empty.
std::vector<JournalEntry> read_campaign_journal(const std::string& path);

// --- Distributed campaigns -----------------------------------------------
// N cooperating worker processes split one campaign: every unique cell is
// OWNED by shard `content_hash % n_shards`, each worker appends to its own
// journal `<path>.shard<k>.jsonl` (same durable-append + torn-tail rules as
// the single-process journal), and a worker that drains its own shard
// STEALS unfinished cells from the others through an fcntl-locked claims
// file `<path>.claims` — one claim line per cell, so every cell is computed
// exactly once per run generation whatever the interleaving. The
// coordinator merges all shard journals in spec order; the merged results
// JSON is byte-identical to a single-process run at any shard count x
// thread count.

/// Shard layout shared by every worker and the coordinator.
struct ShardOptions {
  /// Base journal path; shard k journals to `<path>.shard<k>.jsonl` and
  /// claims go to `<path>.claims`. Must be non-empty.
  std::string journal_path;
  std::size_t n_shards = 1;
  /// Coordinator-only: discard shard journals before launching workers.
  bool fresh = false;
};

std::string shard_journal_path(const std::string& base, std::size_t shard);
std::string shard_claims_path(const std::string& base);

/// Coordinator: start a new run generation — truncate the claims file (a
/// claim only arbitrates liveness within one generation; durability lives
/// in the journals) and, when `options.fresh`, delete the shard journals.
/// Call exactly once before launching workers; never while workers run.
void reset_campaign_claims(const ShardOptions& options);

struct ShardWorkerReport {
  std::size_t shard = 0;
  std::size_t cells_owned = 0;     ///< unique unresolved cells this shard owns
  std::size_t cells_computed = 0;  ///< evaluated by this worker (own + stolen)
  std::size_t cells_stolen = 0;    ///< computed cells owned by another shard
  std::size_t cells_from_cache = 0;  ///< journaled from the memo cache
  std::size_t cells_resumed = 0;   ///< already in some shard journal
};

/// Run ONE worker's share of `spec`: resolve every cell journal (all
/// shards) -> memo cache -> compute, claiming each cell through the claims
/// file before evaluating. Own-shard cells first (in spec order, sharded
/// across the thread pool), then steal the other shards' unfinished cells.
/// Throws std::invalid_argument for an unknown kind and std::runtime_error
/// when a journal append cannot be made durable.
ShardWorkerReport run_campaign_shard(const CampaignSpec& spec,
                                     const ShardOptions& options,
                                     std::size_t shard);

struct ShardMergeReport {
  CampaignReport report;            ///< spec-order outcomes, journal-sourced
  std::size_t cells_missing = 0;    ///< unique cells no shard journaled
  std::size_t cells_stolen = 0;     ///< journal records marked stolen
  bool complete() const { return cells_missing == 0; }
};

/// Merge every shard journal into a spec-order report. When complete(),
/// `report.results_json()` is byte-identical to the single-process
/// `run_campaign` output. Emits `campaign.shards`, `campaign.cells.merged`,
/// `campaign.cells.missing` counters and per-shard
/// `campaign.shard<k>.cell.seconds` histograms from the journal metadata.
ShardMergeReport merge_campaign_shards(const CampaignSpec& spec,
                                       const ShardOptions& options);

/// Single-binary fleet harness (used by the benches and tests): run all
/// `n_shards` workers concurrently on threads of this process, then merge.
/// Falls back to plain run_campaign when n_shards <= 1 or the journal path
/// is empty. Acts as its own coordinator (resets claims; honours fresh).
CampaignReport run_campaign_sharded(const CampaignSpec& spec,
                                    const ShardOptions& options);

/// Bench entry point: honour the IVNET_SHARDS environment knob. With
/// IVNET_SHARDS=N (N > 1) and a non-empty journal path the campaign runs as
/// an in-process N-worker fleet (run_campaign_sharded); otherwise it is a
/// plain run_campaign. Invalid IVNET_SHARDS values warn once on stderr and
/// fall back to 1, mirroring IVNET_THREADS / IVNET_BATCH.
CampaignReport run_bench_campaign(const CampaignSpec& spec,
                                  const std::string& journal_path);

namespace detail {
/// Append one journal record to `file` and make it durable: the fwrite,
/// fflush, AND fsync must all succeed or this throws std::runtime_error —
/// a cell is never reported computed without a durable journal line.
/// `extras` is spliced verbatim between the hash and cell fields (shard
/// metadata; must be empty or end with ','). Exposed for tests.
void append_journal_record(std::FILE* file, const CellSpec& spec,
                           std::uint64_t hash, const std::string& result_json,
                           const std::string& extras = "");
}  // namespace detail

// --- Figure campaigns ----------------------------------------------------
// Built-in evaluator kinds: "gain" (blind-channel gain trials), "range"
// (max air range / water depth search), "waterfall" (one BER/PER SNR
// point), "matrix" (one media x SNR x antennas session cell), "depth" (one
// success-vs-depth point), "burst_retry" (retry ablation on a bursty
// channel). Registered lazily by the campaign builders and run_campaign.
void register_builtin_cell_evaluators();

/// Fig. 9: water-tank gain vs antenna count, one gain cell per N in 1..10.
CampaignSpec fig9_campaign(std::size_t gain_trials = 150);

/// Fig. 13: range/depth vs antenna count for tag x medium, plus the
/// Fig. 9 water-tank gain anchors at N=1 and N=8 — the cells the two
/// campaigns share (identical hash => the memo cache evaluates them once
/// per process).
CampaignSpec fig13_campaign(std::size_t gain_trials = 150,
                            std::size_t range_trials = 15);

/// X13: impairment waterfall + media matrix + retry ablation + depth curve.
CampaignSpec x13_campaign(std::size_t trials = 48);

}  // namespace ivnet
