// Sweep-campaign engine: declarative (scenario x plan x trials x seed)
// grids evaluated as independent cells, sharded across the shared thread
// pool, journaled to an append-only JSONL checkpoint, and memoized in a
// process-wide cache keyed by a content hash of each cell's inputs.
//
//   * A CELL is one (evaluator kind, parameter map) pair. Parameters are
//     strings with fixed formatting, so the canonical JSON — and therefore
//     the FNV-1a content hash — never drifts with locale or float state.
//   * The JOURNAL is one fsync'd JSONL record per completed cell. A run
//     killed at any point resumes by replaying the journal: finished cells
//     are emitted verbatim from their journaled result text, so an
//     interrupted-then-resumed campaign produces BYTE-IDENTICAL final JSON
//     to an uninterrupted one, at any IVNET_THREADS. Torn or corrupt
//     journal lines (the tail of a SIGKILL'd write) are skipped and their
//     cells recomputed.
//   * The CACHE memoizes result text by content hash for the lifetime of
//     the process, so cells shared between benches (Fig. 9 and Fig. 13
//     share their water-tank gain anchors) evaluate once. Cache-resolved
//     cells are still appended to the journal so every journal is a
//     self-contained checkpoint of its own campaign.
//
// Determinism contract: evaluators must be pure functions of the CellSpec
// (all randomness from an Rng seeded by a `seed` parameter, trial loops on
// counter-derived Rng::stream sub-streams), so a cell's result text is
// independent of thread count, evaluation order, and which campaign asked.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ivnet {

/// One sweep cell: an evaluator kind plus its parameters. The param map is
/// ordered, so the canonical form is independent of insertion order.
struct CellSpec {
  std::string kind;
  std::map<std::string, std::string> params;

  CellSpec() = default;
  explicit CellSpec(std::string kind_) : kind(std::move(kind_)) {}

  /// Typed setters with fixed value formatting (doubles via the JSON
  /// writer's shortest-round-trip std::to_chars, integers via decimal) —
  /// the hash input never drifts.
  CellSpec& set(const std::string& key, const std::string& value);
  CellSpec& set(const std::string& key, const char* value);
  CellSpec& set(const std::string& key, double value);
  CellSpec& set(const std::string& key, std::size_t value);

  std::string param(const std::string& key, const std::string& fallback) const;
  double param_num(const std::string& key, double fallback) const;

  /// {"kind":...,"params":{...sorted...}} — the content-hash input.
  std::string canonical_json() const;

  /// FNV-1a 64 over canonical_json(). Identical params => identical hash,
  /// whatever campaign, process, or thread evaluated the cell.
  std::uint64_t content_hash() const;
};

/// Evaluates one cell to its result: a complete JSON object in text form,
/// byte-stable for equal specs (use JsonWriter; seed all randomness from
/// the spec's `seed` parameter).
using CellEvaluator = std::function<std::string(const CellSpec&)>;

/// Register an evaluator for `kind` (replaces any previous registration).
void register_cell_evaluator(const std::string& kind, CellEvaluator evaluator);
bool has_cell_evaluator(const std::string& kind);

/// Process-wide memo of cell results keyed by content hash. Thread-safe.
class CellCache {
 public:
  static CellCache& instance();

  /// True (and fills *result_json) when `hash` is memoized.
  bool lookup(std::uint64_t hash, std::string* result_json) const;
  void insert(std::uint64_t hash, std::string result_json);
  void clear();
  std::size_t size() const;

 private:
  CellCache() = default;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::string> results_;
};

/// A named list of cells. Duplicate cells (same hash) are legal and
/// evaluate once.
struct CampaignSpec {
  std::string name;
  std::vector<CellSpec> cells;
};

/// Where a cell's result came from in this run.
enum class CellSource {
  kComputed,  ///< evaluated fresh in this run
  kJournal,   ///< replayed from the journal (resume)
  kCache,     ///< memo hit (earlier campaign or duplicate cell)
};

struct CellOutcome {
  CellSpec spec;
  std::uint64_t hash = 0;
  std::string result_json;  ///< evaluator output, verbatim
  CellSource source = CellSource::kComputed;
};

struct CampaignOptions {
  /// Append-only JSONL checkpoint. Empty disables journaling (and resume).
  std::string journal_path;
  /// Truncate an existing journal instead of resuming from it.
  bool fresh = false;
};

struct CampaignReport {
  std::string name;
  std::vector<CellOutcome> outcomes;  ///< spec order
  std::size_t cells_total = 0;
  std::size_t cells_computed = 0;
  std::size_t cells_resumed = 0;  ///< replayed from the journal
  std::size_t cache_hits = 0;     ///< memo hits (incl. in-spec duplicates)

  /// {"campaign":...,"cells":[{kind,params,hash,result}...]} in spec order.
  /// Byte-identical for interrupted-then-resumed and uninterrupted runs.
  std::string results_json() const;
};

/// Run every cell of `spec`: resolve from journal, then memo cache, and
/// shard the remainder across the shared pool (one cell per pool chunk —
/// cells are coarse). Each completed cell is appended to the journal and
/// fsync'd before it can appear in any final output. Throws
/// std::invalid_argument when a cell kind has no registered evaluator.
CampaignReport run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options = {});

/// One replayable journal record.
struct JournalEntry {
  std::uint64_t hash = 0;
  std::string result_json;
};

/// Parse a campaign journal, skipping torn or corrupt lines (a record is
/// only trusted when its line is newline-terminated and well-formed).
/// Missing file => empty.
std::vector<JournalEntry> read_campaign_journal(const std::string& path);

// --- Figure campaigns ----------------------------------------------------
// Built-in evaluator kinds: "gain" (blind-channel gain trials), "range"
// (max air range / water depth search), "waterfall" (one BER/PER SNR
// point), "matrix" (one media x SNR x antennas session cell), "depth" (one
// success-vs-depth point), "burst_retry" (retry ablation on a bursty
// channel). Registered lazily by the campaign builders and run_campaign.
void register_builtin_cell_evaluators();

/// Fig. 9: water-tank gain vs antenna count, one gain cell per N in 1..10.
CampaignSpec fig9_campaign(std::size_t gain_trials = 150);

/// Fig. 13: range/depth vs antenna count for tag x medium, plus the
/// Fig. 9 water-tank gain anchors at N=1 and N=8 — the cells the two
/// campaigns share (identical hash => the memo cache evaluates them once
/// per process).
CampaignSpec fig13_campaign(std::size_t gain_trials = 150,
                            std::size_t range_trials = 15);

/// X13: impairment waterfall + media matrix + retry ablation + depth curve.
CampaignSpec x13_campaign(std::size_t trials = 48);

}  // namespace ivnet
