#include "ivnet/sim/experiment.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "ivnet/cib/baseline.hpp"
#include "ivnet/cib/objective.hpp"
#include "ivnet/common/parallel.hpp"
#include "ivnet/common/units.hpp"
#include "ivnet/obs/obs.hpp"
#include "ivnet/signal/envelope.hpp"
#include "ivnet/sim/calibration.hpp"

namespace ivnet {
namespace {

LinkGeometry geometry_of(const Scenario& scenario) {
  return LinkGeometry{.air_distance_m = scenario.air_distance_m,
                      .depth_m = scenario.depth_m,
                      .orientation_rad = scenario.orientation_rad};
}

}  // namespace

namespace {

/// The medium surrounding the tag's test tube (the layer before the final
/// air pocket), or the outer medium when the tag sits directly in air.
const Medium& tube_surrounding_medium(const Scenario& scenario) {
  const auto& layers = scenario.stack.layers();
  if (layers.size() >= 2) return layers[layers.size() - 2].medium;
  if (!layers.empty()) return layers.front().medium;
  return scenario.stack.outer();
}

}  // namespace

double single_antenna_voltage(const Scenario& scenario, const TagConfig& tag,
                              double freq_hz) {
  const LinkBudget budget(scenario.tx_antenna, tag.antenna, scenario.stack);
  const double v_per_sqrtw = budget.voltage_per_sqrt_watt(
      geometry_of(scenario), freq_hz, tag.input_resistance_ohm);
  double v = v_per_sqrtw * std::sqrt(dbm_to_watts(calib::kTxPowerDbm)) *
             tag.matching_voltage_gain;
  if (tube_surrounding_medium(scenario).eps_r() > 20.0) {
    v *= db_to_amplitude(tag.wet_matching_gain_db);
  }
  return v;
}

std::vector<double> array_amplitudes(const Scenario& scenario,
                                     const TagConfig& tag, std::size_t n,
                                     double freq_hz, Rng& rng) {
  const double v1 = single_antenna_voltage(scenario, tag, freq_hz);
  std::vector<double> amps(n);
  for (auto& a : amps) {
    a = v1 * db_to_amplitude(rng.normal(0.0, calib::kArrayAmplitudeJitterDb));
  }
  return amps;
}

Channel draw_scenario_channel(const Scenario& scenario, const TagConfig& tag,
                              std::size_t n, double freq_hz, Rng& rng) {
  const auto amps = array_amplitudes(scenario, tag, n, freq_hz, rng);
  if (scenario.multipath_rays <= 1) return make_blind_channel(amps, rng);
  return make_multipath_channel(amps, scenario.multipath_rays,
                                scenario.delay_spread_s, rng);
}

std::vector<GainTrial> run_gain_trials(const Scenario& scenario,
                                       const TagConfig& tag,
                                       const FrequencyPlan& plan,
                                       std::size_t trials, Rng& rng,
                                       const BatchConfig& batch) {
  obs::ScopedSpan span("sim.gain_trials", "sim");
  obs::count("sim.gain_trials.calls");
  obs::count("sim.gain_trials.trials", trials);
  const double v1 = single_antenna_voltage(scenario, tag, plan.center_hz());
  const double t_max = plan.period_s() > 0.0 ? plan.period_s() : 1.0;
  // One blind channel draw per trial, each from its own counter-derived
  // stream: trials run concurrently yet the result is bitwise identical for
  // any thread count (`rng` is consumed exactly once, for the stream base).
  const std::uint64_t base = rng();
  std::vector<GainTrial> results(trials);
  const auto run_trial = [&](std::size_t k) {
    Rng trial_rng = Rng::stream(base, k);
    const Channel channel = draw_scenario_channel(
        scenario, tag, plan.num_antennas(), plan.center_hz(), trial_rng);
    GainTrial trial;
    // The reference is what the paper's procedure measures: the peak power a
    // SINGLE antenna delivers to the same location — i.e. that antenna's own
    // (possibly faded) channel draw, floored to keep ratios finite.
    const double ref =
        std::max(single_antenna_amplitude(channel), 0.05 * v1);
    const double cib_amp =
        cib_peak_amplitude(channel, plan.offsets_hz(), t_max);
    const double base_amp = coherent_blind_amplitude(channel);
    const double genie_amp = genie_mimo_amplitude(channel);
    trial.cib_gain = (cib_amp / ref) * (cib_amp / ref);
    trial.baseline_gain = (base_amp / ref) * (base_amp / ref);
    trial.genie_gain = (genie_amp / ref) * (genie_amp / ref);
    results[k] = trial;
  };
  const std::size_t batch_size = resolve_batch_size(batch);
  if (batch_size > 1) {
    // Batch-grained dispatch: identical per-index writes, so results are
    // byte-equal to the scalar dispatch at any batch size.
    batched_for(trials, batch_size, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t k = lo; k < hi; ++k) run_trial(k);
    });
  } else {
    parallel_for(trials, run_trial);
  }
  return results;
}

PercentileSummary summarize_cib(const std::vector<GainTrial>& trials) {
  std::vector<double> gains;
  gains.reserve(trials.size());
  for (const auto& t : trials) gains.push_back(t.cib_gain);
  return summarize(gains);
}

PercentileSummary summarize_baseline(const std::vector<GainTrial>& trials) {
  std::vector<double> gains;
  gains.reserve(trials.size());
  for (const auto& t : trials) gains.push_back(t.baseline_gain);
  return summarize(gains);
}

bool can_power_up(const Scenario& scenario, const TagConfig& tag,
                  const FrequencyPlan& plan, std::size_t trials,
                  double success_ratio, Rng& rng,
                  const BatchConfig& batch) {
  const TagDevice device(tag);
  const double threshold = device.min_peak_voltage();
  const double t_max = plan.period_s() > 0.0 ? plan.period_s() : 1.0;
  const std::uint64_t base = rng();
  // Per-trial success flags; the integer count is order-independent, so the
  // verdict is bitwise identical for any thread count.
  std::vector<std::uint8_t> powered(trials, 0);
  const auto run_trial = [&](std::size_t k) {
    Rng trial_rng = Rng::stream(base, k);
    const Channel channel = draw_scenario_channel(
        scenario, tag, plan.num_antennas(), plan.center_hz(), trial_rng);
    const double peak = cib_peak_amplitude(channel, plan.offsets_hz(), t_max);
    powered[k] = peak >= threshold ? 1 : 0;
  };
  const std::size_t batch_size = resolve_batch_size(batch);
  if (batch_size > 1) {
    batched_for(trials, batch_size, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t k = lo; k < hi; ++k) run_trial(k);
    });
  } else {
    parallel_for(trials, run_trial);
  }
  std::size_t successes = 0;
  for (std::uint8_t p : powered) successes += p;
  return static_cast<double>(successes) >=
         success_ratio * static_cast<double>(trials);
}

namespace {

/// Generic bisection: find the largest x in [lo, hi] where predicate(x)
/// holds, assuming it holds at lo and decays monotonically (statistically).
template <typename Predicate>
double bisect_max(double lo, double hi, int iterations, Predicate&& ok) {
  if (!ok(lo)) return 0.0;
  if (ok(hi)) return hi;
  for (int i = 0; i < iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (ok(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

double max_air_range(const TagConfig& tag, const FrequencyPlan& plan,
                     std::size_t trials, Rng& rng, double max_search_m) {
  auto ok = [&](double distance) {
    return can_power_up(air_scenario(distance), tag, plan, trials, 0.5, rng);
  };
  return bisect_max(0.3, max_search_m, 18, ok);
}

double max_water_depth(const TagConfig& tag, const FrequencyPlan& plan,
                       std::size_t trials, Rng& rng, double max_search_m) {
  auto ok = [&](double depth) {
    return can_power_up(
        water_tank_scenario(depth, calib::kRangeSetupStandoffM), tag, plan,
        trials, 0.5, rng);
  };
  return bisect_max(1e-3, max_search_m, 16, ok);
}

SessionReport run_gen2_session(const Scenario& scenario, const TagConfig& tag,
                               const SessionConfig& config, Rng& rng) {
  SessionReport report;
  obs::ScopedSpan span("sim.gen2_session", "sim");
  // Session telemetry on every exit path (simulated quantities only).
  struct SessionTelemetry {
    SessionReport& r;
    ~SessionTelemetry() {
      obs::count("gen2.sessions");
      obs::count(r.rn16_decoded ? "gen2.success" : "gen2.failed");
      if (r.powered) obs::count("gen2.powered");
      record_recovery("gen2", r.recovery);
    }
  } telemetry{report};
  const auto& plan = config.plan;
  const double t_period = plan.period_s() > 0.0 ? plan.period_s() : 1.0;

  // Blind channel draw at the CIB carrier.
  const Channel channel = draw_scenario_channel(
      scenario, tag, plan.num_antennas(), plan.center_hz(), rng);
  std::vector<double> tone_amps(plan.num_antennas());
  std::vector<double> tone_phases(plan.num_antennas());
  for (std::size_t i = 0; i < plan.num_antennas(); ++i) {
    const cplx h = channel.gain(i, plan.offsets_hz()[i]);
    tone_amps[i] = std::abs(h);
    tone_phases[i] = std::arg(h);
  }

  // Fresh RN16 stream per session: a real tag seeds its generator from
  // power-up noise, so two sessions never replay the same RN16 sequence.
  TagConfig session_tag = tag;
  session_tag.seed ^= rng();
  TagDevice device(session_tag);

  // --- Charging phase: CW from all antennas for charge_time_s.
  const auto charge_samples = static_cast<std::size_t>(
      std::llround(config.charge_time_s * config.charge_rate_hz));
  const auto charge_env =
      cib_envelope(plan.offsets_hz(), tone_phases, tone_amps,
                   config.charge_time_s, charge_samples);
  report.peak_envelope_v = max_value(charge_env);
  const auto charge_result =
      device.receive_downlink(charge_env, config.charge_rate_hz);
  report.powered = charge_result.powered;
  report.peak_rail_v = charge_result.harvest.peak_vdc;
  // Decimated rail trace for plotting.
  const std::size_t stride =
      std::max<std::size_t>(1, charge_result.harvest.vdc.size() / 2000);
  for (std::size_t i = 0; i < charge_result.harvest.vdc.size(); i += stride) {
    report.tag_rail_trace.push_back(charge_result.harvest.vdc[i]);
  }
  if (!report.powered) {
    report.recovery.failed_stage = SessionStage::kCharge;
    return report;
  }

  // --- Query phase: modulate the command onto the CIB envelope, timed so
  // the command rides an envelope peak (the flatness constraint keeps the
  // envelope near-flat across the 800 us command).
  const double fs = calib::kSampleRateHz;
  const auto pie_env = gen2::pie_encode(gen2::QueryCommand{.q = config.query_q}
                                            .encode(),
                                        config.pie, fs, /*with_preamble=*/true);
  // Peak time within one period from the charging-phase envelope.
  std::size_t peak_idx = 0;
  for (std::size_t i = 0; i < charge_env.size(); ++i) {
    if (charge_env[i] > charge_env[peak_idx]) peak_idx = i;
  }
  const double t_peak = static_cast<double>(peak_idx) / config.charge_rate_hz;
  const double command_duration =
      static_cast<double>(pie_env.size()) / fs;
  const double t_start =
      std::max(0.0, std::fmod(t_peak, t_period) - command_duration / 2.0);

  // CIB envelope across the command window, offset by t_start.
  std::vector<double> start_phases(tone_phases);
  for (std::size_t i = 0; i < start_phases.size(); ++i) {
    start_phases[i] = wrap_phase(
        start_phases[i] + kTwoPi * plan.offsets_hz()[i] * t_start);
  }
  const auto cib_window = cib_envelope(plan.offsets_hz(), start_phases,
                                       tone_amps, command_duration,
                                       pie_env.size());
  std::vector<double> command_env(pie_env.size());
  for (std::size_t i = 0; i < pie_env.size(); ++i) {
    command_env[i] = pie_env[i] * cib_window[i];
  }

  const OobReader reader(config.reader);
  const LinkBudget reader_budget(antennas::mt242025(), tag.antenna,
                                 scenario.stack);
  const double one_way_power_gain = reader_budget.power_gain(
      geometry_of(scenario), config.reader.carrier_hz);
  const double round_trip_voltage_gain = one_way_power_gain;

  // Self-jamming: CIB antennas sit ~1 m from the reader's receive antenna
  // in air (Fig. 7's bench layout).
  const double lambda = wavelength(plan.center_hz());
  const double friis_1m = std::pow(lambda / (4.0 * kPi * 1.0), 2.0);
  const double jam_w = static_cast<double>(plan.num_antennas()) *
                       dbm_to_watts(calib::kTxPowerDbm) *
                       from_db(calib::kTxGainDbi) * from_db(7.0) * friis_1m;

  // --- Query + backscatter, with per-command recovery: each attempt rides
  // a later recurrence of the envelope peak. Retries re-roll the reader's
  // noise; the tag-side PIE decode is deterministic per envelope.
  const RecoveryPolicy& policy = config.recovery;
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++report.recovery.retries;
      report.recovery.backoff_total_s += policy.backoff_for_attempt(attempt - 1);
    }
    const auto downlink = device.receive_downlink(command_env, fs);
    report.command_decoded = downlink.command_decoded;
    if (!downlink.reply.has_value()) {
      ++report.recovery.timeouts;
      continue;
    }
    report.replied = true;
    report.rn16 = device.state_machine().last_rn16();

    // Backscatter: the tag modulates the out-of-band reader's CW.
    const auto reflection =
        device.backscatter_reflection(*downlink.reply, fs);
    report.reader_report =
        reader.decode(reflection, round_trip_voltage_gain, jam_w, tag.blf_hz,
                      downlink.reply->size(), rng);
    report.preamble_correlation = report.reader_report.preamble_correlation;
    report.rn16_decoded =
        report.reader_report.success &&
        report.reader_report.bits.size() == downlink.reply->size() &&
        std::equal(report.reader_report.bits.begin(),
                   report.reader_report.bits.end(), downlink.reply->begin());
    if (report.rn16_decoded) break;
  }
  if (!report.rn16_decoded) report.recovery.failed_stage = SessionStage::kQuery;
  return report;
}

}  // namespace ivnet
