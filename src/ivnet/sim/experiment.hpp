// Experiment runners: everything the evaluation section measures.
//
//   * Blind-channel peak-power-gain trials (Fig. 9, 10, 11, 12).
//   * Maximum range / depth search (Fig. 13).
//   * Full Gen2 sessions — charge, query, backscatter, out-of-band decode —
//     for the in-vivo reproduction (Fig. 15 / Sec. 6.2).
#pragma once

#include <cstdint>
#include <vector>

#include "ivnet/cib/frequency_plan.hpp"
#include "ivnet/common/stats.hpp"
#include "ivnet/impair/recovery.hpp"
#include "ivnet/reader/oob_reader.hpp"
#include "ivnet/rf/channel.hpp"
#include "ivnet/sim/batch_pipeline.hpp"
#include "ivnet/sim/scenario.hpp"
#include "ivnet/tag/tag_device.hpp"

namespace ivnet {

/// Voltage amplitude [V] at the tag's harvester input delivered by ONE
/// transmit antenna at calib::kTxPowerDbm in the given scenario.
double single_antenna_voltage(const Scenario& scenario, const TagConfig& tag,
                              double freq_hz);

/// Per-antenna channel amplitudes (V at harvester per antenna) for an
/// N-antenna array: the single-antenna amplitude with small per-antenna
/// jitter (array elements sit at slightly different ranges/angles).
std::vector<double> array_amplitudes(const Scenario& scenario,
                                     const TagConfig& tag, std::size_t n,
                                     double freq_hz, Rng& rng);

/// One blind channel draw for an N-antenna array in the scenario: per-antenna
/// amplitudes from the physics, phases uniform at random, with the scenario's
/// multipath richness.
Channel draw_scenario_channel(const Scenario& scenario, const TagConfig& tag,
                              std::size_t n, double freq_hz, Rng& rng);

/// One peak-gain comparison trial in a fresh blind channel draw.
struct GainTrial {
  double cib_gain = 0.0;       ///< CIB peak power / single-antenna power
  double baseline_gain = 0.0;  ///< same-frequency N-antenna / single-antenna
  double genie_gain = 0.0;     ///< channel-aware MIMO upper bound
};

/// Run `trials` independent blind-channel draws in `scenario`. A resolved
/// batch size > 1 dispatches trials batch-at-a-time through batched_for
/// (per-index writes, so results stay byte-identical at any batch size).
std::vector<GainTrial> run_gain_trials(const Scenario& scenario,
                                       const TagConfig& tag,
                                       const FrequencyPlan& plan,
                                       std::size_t trials, Rng& rng,
                                       const BatchConfig& batch = {});

/// Collapse trials into the paper's median/p10/p90 summaries.
PercentileSummary summarize_cib(const std::vector<GainTrial>& trials);
PercentileSummary summarize_baseline(const std::vector<GainTrial>& trials);

/// Power-up test: does the CIB peak voltage reach the tag's threshold in at
/// least `success_ratio` of `trials` blind draws?
bool can_power_up(const Scenario& scenario, const TagConfig& tag,
                  const FrequencyPlan& plan, std::size_t trials,
                  double success_ratio, Rng& rng,
                  const BatchConfig& batch = {});

/// Maximum air range [m] at which the tag still powers up (bisection over
/// distance). Returns 0 when even the minimum distance fails.
double max_air_range(const TagConfig& tag, const FrequencyPlan& plan,
                     std::size_t trials, Rng& rng, double max_search_m = 100.0);

/// Maximum depth [m] in the water tank (standoff per calibration). Returns
/// 0 when the tag cannot be powered at the surface.
double max_water_depth(const TagConfig& tag, const FrequencyPlan& plan,
                       std::size_t trials, Rng& rng,
                       double max_search_m = 0.5);

/// Configuration of a full Gen2 session.
struct SessionConfig {
  FrequencyPlan plan = FrequencyPlan::paper_default();
  OobReaderConfig reader;
  gen2::PieTiming pie;
  double charge_time_s = 1.0;     ///< CW charging before the query
  double charge_rate_hz = 20e3;   ///< envelope rate for the charging phase
  std::uint8_t query_q = 0;       ///< Gen2 Q (0: tag replies immediately)
  /// Per-command retries/backoff: each attempt re-rides a later envelope
  /// peak. Retries help the reader's noisy RN16 decode; the tag-side PIE
  /// decode is deterministic per envelope, so a command the envelope cannot
  /// carry honestly stays undecodable.
  RecoveryPolicy recovery;
};

/// Outcome of a full charge -> query -> RN16 -> decode session.
struct SessionReport {
  bool powered = false;
  bool command_decoded = false;
  bool replied = false;
  bool rn16_decoded = false;       ///< reader recovered the RN16
  double preamble_correlation = 0.0;
  std::uint16_t rn16 = 0;
  double peak_rail_v = 0.0;
  double peak_envelope_v = 0.0;    ///< peak harvester input voltage
  OobDecodeReport reader_report;
  std::vector<double> tag_rail_trace;  ///< rail during charging (decimated)
  RecoveryStats recovery;              ///< retries / timeouts / failure stage
};

/// Run one full session against a fresh blind channel draw.
SessionReport run_gen2_session(const Scenario& scenario, const TagConfig& tag,
                               const SessionConfig& config, Rng& rng);

}  // namespace ivnet
