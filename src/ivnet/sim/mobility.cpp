#include "ivnet/sim/mobility.hpp"

#include <cassert>
#include <cmath>
#include <utility>

#include "ivnet/cib/baseline.hpp"
#include "ivnet/common/units.hpp"

namespace ivnet {

double MotionModel::displacement_at(double t_s) const {
  return breathing_amplitude_m * std::sin(kTwoPi * breathing_hz * t_s) +
         drift_m_per_s * t_s;
}

double MotionModel::phase_shift_at(double t_s) const {
  assert(wavelength_m > 0.0);
  return kTwoPi * displacement_at(t_s) / wavelength_m;
}

TimeVaryingChannel::TimeVaryingChannel(Channel base, MotionModel motion)
    : base_(std::move(base)), motion_(motion) {
  // Each antenna sees the displacement projected onto its own look
  // direction. The array spans the body, so projections range from "sensor
  // moving toward me" (+1) to "away" (-1); spread them deterministically
  // over [-1, 1] so motion decorrelates the antennas' phase drifts — the
  // differential term that makes stale CSI useless while leaving CIB (which
  // never had CSI) untouched.
  angle_factors_.resize(base_.num_tx());
  for (std::size_t i = 0; i < angle_factors_.size(); ++i) {
    angle_factors_[i] =
        -1.0 + 2.0 * static_cast<double>(i) /
                   std::max<double>(1.0, static_cast<double>(
                                             angle_factors_.size() - 1));
  }
}

Channel TimeVaryingChannel::at_time(double t_s) const {
  const double common = motion_.phase_shift_at(t_s);
  auto rays = base_.rays();
  for (std::size_t tx = 0; tx < rays.size(); ++tx) {
    for (Ray& ray : rays[tx]) {
      ray.phase = wrap_phase(ray.phase + common * angle_factors_[tx]);
    }
  }
  return Channel(std::move(rays));
}

cplx TimeVaryingChannel::gain(std::size_t tx, double freq_offset_hz,
                              double t_s) const {
  const double common = motion_.phase_shift_at(t_s);
  return base_.gain(tx, freq_offset_hz) *
         std::polar(1.0, common * angle_factors_[tx]);
}

double stale_mimo_amplitude(const TimeVaryingChannel& channel, double t_s,
                            double staleness_s, double freq_offset_hz) {
  cplx sum{0.0, 0.0};
  for (std::size_t tx = 0; tx < channel.base().num_tx(); ++tx) {
    const cplx h_now = channel.gain(tx, freq_offset_hz, t_s);
    const cplx h_est = channel.gain(tx, freq_offset_hz, t_s - staleness_s);
    const double mag = std::abs(h_est);
    if (mag <= 0.0) continue;
    // Precode with the conjugate of the (stale) estimate, unit power.
    sum += h_now * std::conj(h_est) / mag;
  }
  return std::abs(sum);
}

double cib_peak_amplitude_at(const TimeVaryingChannel& channel, double t_s,
                             std::span<const double> offsets_hz,
                             double t_max_s) {
  const Channel snapshot = channel.at_time(t_s);
  return cib_peak_amplitude(snapshot, offsets_hz, t_max_s);
}

}  // namespace ivnet
