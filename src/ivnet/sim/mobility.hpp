// Time-varying in-vivo channels: breathing and peristaltic motion.
//
// Sec. 3.7: "CIB's design is inherently robust to phase changes caused by
// channel variations, including those caused by multipath, medium
// homogeneity, and mobility." The flip side is the reason channel-feedback
// beamforming cannot work here even if the sensor COULD be polled once: by
// the next second the phases have moved. This module models that motion —
// millimeter-scale periodic displacement that shifts every path's phase by
// 2*pi*dd/lambda_tissue per cycle (lambda in tissue is ~4 cm at 915 MHz, so
// a 5 mm breath swings phases by ~45 degrees) — and provides the stale-CSI
// beamformer evaluation the X11 ablation uses.
#pragma once

#include <cstddef>
#include <span>

#include "ivnet/common/rng.hpp"
#include "ivnet/rf/channel.hpp"

namespace ivnet {

/// Periodic displacement of the sensor relative to the array.
struct MotionModel {
  double breathing_amplitude_m = 0.004;  ///< peak-to-peak/2 displacement
  double breathing_hz = 0.25;            ///< ~15 breaths/min
  double drift_m_per_s = 0.0;            ///< slow net drift (peristalsis)
  double wavelength_m = 0.04;            ///< lambda in the tissue

  /// Sensor displacement at time t [m].
  double displacement_at(double t_s) const;

  /// Phase shift every path accrues at time t [rad].
  double phase_shift_at(double t_s) const;
};

/// A channel whose ray phases breathe over time.
class TimeVaryingChannel {
 public:
  TimeVaryingChannel(Channel base, MotionModel motion);

  const Channel& base() const { return base_; }
  const MotionModel& motion() const { return motion_; }

  /// Channel snapshot at time t: every ray's phase advanced by the common
  /// motion term plus a per-antenna geometric factor (antennas view the
  /// displacement from slightly different angles).
  Channel at_time(double t_s) const;

  /// Complex gain of antenna `tx` at offset `f` and time `t`.
  cplx gain(std::size_t tx, double freq_offset_hz, double t_s) const;

 private:
  Channel base_;
  MotionModel motion_;
  std::vector<double> angle_factors_;  // per-antenna projection of motion
};

/// Delivered amplitude of a genie MIMO beamformer whose channel estimate is
/// `staleness_s` old: precoding with conj(h(t - staleness)) against the
/// true h(t). With staleness 0 this equals the sum of magnitudes; under
/// motion it decays toward the blind level.
double stale_mimo_amplitude(const TimeVaryingChannel& channel, double t_s,
                            double staleness_s, double freq_offset_hz = 0.0);

/// CIB peak amplitude over one period of the plan, evaluated against the
/// channel snapshot at time t (CIB needs no estimate, so staleness is
/// meaningless for it — the point of the comparison).
double cib_peak_amplitude_at(const TimeVaryingChannel& channel, double t_s,
                             std::span<const double> offsets_hz,
                             double t_max_s = 1.0);

}  // namespace ivnet
