#include "ivnet/sim/planner.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "ivnet/cib/baseline.hpp"
#include "ivnet/cib/objective.hpp"
#include "ivnet/common/json.hpp"
#include "ivnet/common/parallel.hpp"
#include "ivnet/common/units.hpp"
#include "ivnet/harvester/harvester.hpp"
#include "ivnet/obs/obs.hpp"
#include "ivnet/sim/calibration.hpp"

namespace ivnet {
namespace {

/// Fraction of blind-channel draws in which the CIB peak voltage clears the
/// tag's threshold.
double power_up_probability(const Scenario& scenario, const TagConfig& tag,
                            const FrequencyPlan& plan, std::size_t trials,
                            Rng& rng) {
  const TagDevice device(tag);
  const double threshold = device.min_peak_voltage();
  const double t_max = plan.period_s() > 0.0 ? plan.period_s() : 1.0;
  const std::uint64_t base = rng();
  std::vector<std::uint8_t> powered(trials, 0);
  parallel_for(trials, [&](std::size_t k) {
    Rng trial_rng = Rng::stream(base, k);
    const Channel channel = draw_scenario_channel(
        scenario, tag, plan.num_antennas(), plan.center_hz(), trial_rng);
    powered[k] =
        cib_peak_amplitude(channel, plan.offsets_hz(), t_max) >= threshold
            ? 1
            : 0;
  });
  std::size_t ok = 0;
  for (std::uint8_t p : powered) ok += p;
  return static_cast<double>(ok) / static_cast<double>(trials);
}

/// Median energy the tag banks over one CIB period.
double median_energy_per_period(const Scenario& scenario, const TagConfig& tag,
                                const FrequencyPlan& plan, std::size_t trials,
                                Rng& rng) {
  const Harvester harvester(tag.harvester);
  const std::uint64_t base = rng();
  std::vector<double> energies(trials);
  parallel_for(trials, [&](std::size_t k) {
    Rng trial_rng = Rng::stream(base, k);
    const Channel channel = draw_scenario_channel(
        scenario, tag, plan.num_antennas(), plan.center_hz(), trial_rng);
    std::vector<double> amps(plan.num_antennas());
    std::vector<double> phases(plan.num_antennas());
    for (std::size_t i = 0; i < plan.num_antennas(); ++i) {
      const cplx h = channel.gain(i, plan.offsets_hz()[i]);
      amps[i] = std::abs(h);
      phases[i] = std::arg(h);
    }
    const auto env = cib_envelope(plan.offsets_hz(), phases, amps, 1.0, 10000);
    energies[k] = harvester.run(env, 10e3).harvested_energy_j;
  });
  return median(energies);
}

}  // namespace

DeploymentPlan plan_deployment(const Scenario& scenario, const TagConfig& tag,
                               const DeploymentRequirements& req, Rng& rng) {
  DeploymentPlan result;
  const auto full_plan = FrequencyPlan::paper_default();
  constexpr std::size_t kTrials = 25;

  const std::size_t limit =
      std::min<std::size_t>(req.max_antennas, full_plan.num_antennas());
  for (std::size_t n = 1; n <= limit; ++n) {
    const auto plan = full_plan.truncated(n);
    const double p = power_up_probability(scenario, tag, plan, kTrials, rng);
    if (p < req.min_power_up_probability) continue;

    result.antennas = n;
    result.plan = plan;
    result.power_up_probability = p;
    result.energy_per_period_j =
        median_energy_per_period(scenario, tag, plan, kTrials, rng);

    // Cadence: one read costs burst_energy; periods needed per read.
    if (result.energy_per_period_j <= 0.0) continue;
    const double periods_per_read =
        std::max(1.0, std::ceil(req.burst_energy_j /
                                result.energy_per_period_j));
    result.charge_periods_per_read =
        static_cast<std::size_t>(periods_per_read);
    const double period_s =
        plan.period_s() > 0.0 ? plan.period_s() : 1.0;
    result.expected_reads_per_minute =
        60.0 / (periods_per_read * period_s);
    if (result.expected_reads_per_minute < req.min_reads_per_minute) {
      result.limiting_factor =
          "cadence: harvested energy per period too low for the required "
          "reads/minute";
      continue;
    }

    result.exposure = assess_exposure(
        n, dbm_to_watts(calib::kTxPowerDbm), calib::kTxGainDbi,
        req.skin_distance_m, media::skin(), plan.center_hz(),
        req.tx_duty_cycle);
    if (!result.exposure.mpe_ok || !result.exposure.sar_ok) {
      result.limiting_factor = "exposure: MPE/SAR limit at this distance";
      continue;
    }

    result.feasible = true;
    result.limiting_factor.clear();
    return result;
  }

  if (result.limiting_factor.empty()) {
    result.limiting_factor =
        "power-up: the tag cannot be powered at this depth within the "
        "antenna budget";
  }
  result.feasible = false;
  return result;
}

std::string describe(const DeploymentPlan& plan) {
  char buf[512];
  if (!plan.feasible) {
    std::snprintf(buf, sizeof(buf), "infeasible (%s)",
                  plan.limiting_factor.c_str());
    return buf;
  }
  std::snprintf(
      buf, sizeof(buf),
      "%zu antennas; power-up %.0f%%; %.2g J/period banked; one read per "
      "%zu period(s) (~%.1f reads/min); exposure: MPE %s, SAR %s, EIRP %s",
      plan.antennas, 100.0 * plan.power_up_probability,
      plan.energy_per_period_j, plan.charge_periods_per_read,
      plan.expected_reads_per_minute, plan.exposure.mpe_ok ? "ok" : "OVER",
      plan.exposure.sar_ok ? "ok" : "OVER",
      plan.exposure.eirp_ok ? "ok" : "over-cap");
  return buf;
}

// --- Large-N frequency planner / plan store ------------------------------

namespace {

/// Parses the first `"key":[n0,n1,...]` numeric array in `doc`
/// (locale-independent from_chars, matching the JsonWriter output).
std::vector<double> json_find_number_array(std::string_view doc,
                                           std::string_view key) {
  std::vector<double> values;
  const std::string needle = "\"" + std::string(key) + "\":[";
  const std::size_t at = doc.find(needle);
  if (at == std::string_view::npos) return values;
  std::size_t pos = at + needle.size();
  while (pos < doc.size() && doc[pos] != ']') {
    double v = 0.0;
    const auto [next, ec] =
        std::from_chars(doc.data() + pos, doc.data() + doc.size(), v);
    if (ec != std::errc()) break;
    values.push_back(v);
    pos = static_cast<std::size_t>(next - doc.data());
    if (pos < doc.size() && doc[pos] == ',') ++pos;
  }
  return values;
}

std::uint64_t parse_u64(const std::string& text, std::uint64_t fallback) {
  std::uint64_t value = fallback;
  const auto [next, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  return ec == std::errc() && next == text.data() + text.size() ? value
                                                                : fallback;
}

/// The "freq_plan" cell evaluator: a pure function of the spec — all
/// randomness from the spec's seed, scoring from score_seed, result JSON
/// via the byte-stable JsonWriter.
std::string evaluate_freq_plan_cell(const CellSpec& cell) {
  OptimizerConfig config;
  config.num_antennas = std::max<std::size_t>(
      1, static_cast<std::size_t>(cell.param_num("antennas", 10)));
  config.mc_trials = std::max<std::size_t>(
      1, static_cast<std::size_t>(cell.param_num("mc_trials", 32)));
  config.restarts = std::max<std::size_t>(
      1, static_cast<std::size_t>(cell.param_num("restarts", 2)));
  config.constraint.alpha = cell.param_num("alpha", config.constraint.alpha);
  config.constraint.query_duration_s =
      cell.param_num("query_duration_s", config.constraint.query_duration_s);
  config.t_max_s = cell.param_num("t_max_s", 1.0);
  config.score_seed = parse_u64(cell.param("score_seed", "1234"), 1234);
  AnnealConfig anneal;
  anneal.moves =
      static_cast<std::size_t>(cell.param_num("moves", anneal.moves));

  FrequencyOptimizer optimizer(config);
  Rng rng(parse_u64(cell.param("seed", "7"), 7));
  const OptimizerResult result = optimizer.optimize_annealed(anneal, rng);

  JsonWriter w;
  w.begin_object();
  w.field("antennas", config.num_antennas);
  w.field("rms_limit_hz", config.constraint.rms_limit_hz());
  w.key("offsets_hz").begin_array();
  for (double f : result.offsets_hz) w.value(f);
  w.end_array();
  w.field("score", result.score);
  w.field("rms_hz", result.rms_hz);
  w.field("evaluations", result.evaluations);
  w.end_object();
  return w.str();
}

}  // namespace

CellSpec freq_plan_cell(const FrequencyPlanRequest& request) {
  CellSpec cell("freq_plan");
  cell.set("antennas", request.antennas)
      .set("mc_trials", request.mc_trials)
      .set("moves", request.moves)
      .set("restarts", request.restarts)
      .set("seed", std::to_string(request.seed))
      .set("score_seed", std::to_string(request.score_seed))
      .set("alpha", request.constraint.alpha)
      .set("query_duration_s", request.constraint.query_duration_s)
      .set("t_max_s", request.t_max_s);
  return cell;
}

void register_freq_plan_evaluator() {
  static std::once_flag once;
  std::call_once(once,
                 [] { register_cell_evaluator("freq_plan",
                                              evaluate_freq_plan_cell); });
}

FrequencyPlanOutcome plan_frequencies(const FrequencyPlanRequest& request,
                                      const std::string& journal_path) {
  register_freq_plan_evaluator();
  obs::ScopedSpan span("planner.plan", "planner");
  const CellSpec cell = freq_plan_cell(request);
  const auto t0 = std::chrono::steady_clock::now();
  const CellOutcome outcome = resolve_cell(cell, journal_path);

  FrequencyPlanOutcome plan;
  plan.scenario_hash = outcome.hash;
  plan.cached = outcome.source != CellSource::kComputed;
  plan.plan_json = outcome.result_json;
  if (plan.cached) {
    obs::count("planner.cache.hits");
  } else {
    obs::count("planner.cache.misses");
    obs::observe("planner.plan.seconds",
                 std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
    // Evaluations belong to the computing call only: a hit spends zero.
    plan.evaluations = static_cast<std::size_t>(
        json_find_number(plan.plan_json, "evaluations", 0.0));
  }
  // The shortest-round-trip JsonWriter doubles parse back exactly, so a
  // journal-served plan carries the same score/offsets bits as the run
  // that computed it.
  plan.score = json_find_number(plan.plan_json, "score", 0.0);
  plan.rms_hz = json_find_number(plan.plan_json, "rms_hz", 0.0);
  plan.offsets_hz = json_find_number_array(plan.plan_json, "offsets_hz");
  return plan;
}

}  // namespace ivnet
