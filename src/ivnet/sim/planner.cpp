#include "ivnet/sim/planner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "ivnet/cib/baseline.hpp"
#include "ivnet/cib/objective.hpp"
#include "ivnet/common/parallel.hpp"
#include "ivnet/common/units.hpp"
#include "ivnet/harvester/harvester.hpp"
#include "ivnet/sim/calibration.hpp"

namespace ivnet {
namespace {

/// Fraction of blind-channel draws in which the CIB peak voltage clears the
/// tag's threshold.
double power_up_probability(const Scenario& scenario, const TagConfig& tag,
                            const FrequencyPlan& plan, std::size_t trials,
                            Rng& rng) {
  const TagDevice device(tag);
  const double threshold = device.min_peak_voltage();
  const double t_max = plan.period_s() > 0.0 ? plan.period_s() : 1.0;
  const std::uint64_t base = rng();
  std::vector<std::uint8_t> powered(trials, 0);
  parallel_for(trials, [&](std::size_t k) {
    Rng trial_rng = Rng::stream(base, k);
    const Channel channel = draw_scenario_channel(
        scenario, tag, plan.num_antennas(), plan.center_hz(), trial_rng);
    powered[k] =
        cib_peak_amplitude(channel, plan.offsets_hz(), t_max) >= threshold
            ? 1
            : 0;
  });
  std::size_t ok = 0;
  for (std::uint8_t p : powered) ok += p;
  return static_cast<double>(ok) / static_cast<double>(trials);
}

/// Median energy the tag banks over one CIB period.
double median_energy_per_period(const Scenario& scenario, const TagConfig& tag,
                                const FrequencyPlan& plan, std::size_t trials,
                                Rng& rng) {
  const Harvester harvester(tag.harvester);
  const std::uint64_t base = rng();
  std::vector<double> energies(trials);
  parallel_for(trials, [&](std::size_t k) {
    Rng trial_rng = Rng::stream(base, k);
    const Channel channel = draw_scenario_channel(
        scenario, tag, plan.num_antennas(), plan.center_hz(), trial_rng);
    std::vector<double> amps(plan.num_antennas());
    std::vector<double> phases(plan.num_antennas());
    for (std::size_t i = 0; i < plan.num_antennas(); ++i) {
      const cplx h = channel.gain(i, plan.offsets_hz()[i]);
      amps[i] = std::abs(h);
      phases[i] = std::arg(h);
    }
    const auto env = cib_envelope(plan.offsets_hz(), phases, amps, 1.0, 10000);
    energies[k] = harvester.run(env, 10e3).harvested_energy_j;
  });
  return median(energies);
}

}  // namespace

DeploymentPlan plan_deployment(const Scenario& scenario, const TagConfig& tag,
                               const DeploymentRequirements& req, Rng& rng) {
  DeploymentPlan result;
  const auto full_plan = FrequencyPlan::paper_default();
  constexpr std::size_t kTrials = 25;

  const std::size_t limit =
      std::min<std::size_t>(req.max_antennas, full_plan.num_antennas());
  for (std::size_t n = 1; n <= limit; ++n) {
    const auto plan = full_plan.truncated(n);
    const double p = power_up_probability(scenario, tag, plan, kTrials, rng);
    if (p < req.min_power_up_probability) continue;

    result.antennas = n;
    result.plan = plan;
    result.power_up_probability = p;
    result.energy_per_period_j =
        median_energy_per_period(scenario, tag, plan, kTrials, rng);

    // Cadence: one read costs burst_energy; periods needed per read.
    if (result.energy_per_period_j <= 0.0) continue;
    const double periods_per_read =
        std::max(1.0, std::ceil(req.burst_energy_j /
                                result.energy_per_period_j));
    result.charge_periods_per_read =
        static_cast<std::size_t>(periods_per_read);
    const double period_s =
        plan.period_s() > 0.0 ? plan.period_s() : 1.0;
    result.expected_reads_per_minute =
        60.0 / (periods_per_read * period_s);
    if (result.expected_reads_per_minute < req.min_reads_per_minute) {
      result.limiting_factor =
          "cadence: harvested energy per period too low for the required "
          "reads/minute";
      continue;
    }

    result.exposure = assess_exposure(
        n, dbm_to_watts(calib::kTxPowerDbm), calib::kTxGainDbi,
        req.skin_distance_m, media::skin(), plan.center_hz(),
        req.tx_duty_cycle);
    if (!result.exposure.mpe_ok || !result.exposure.sar_ok) {
      result.limiting_factor = "exposure: MPE/SAR limit at this distance";
      continue;
    }

    result.feasible = true;
    result.limiting_factor.clear();
    return result;
  }

  if (result.limiting_factor.empty()) {
    result.limiting_factor =
        "power-up: the tag cannot be powered at this depth within the "
        "antenna budget";
  }
  result.feasible = false;
  return result;
}

std::string describe(const DeploymentPlan& plan) {
  char buf[512];
  if (!plan.feasible) {
    std::snprintf(buf, sizeof(buf), "infeasible (%s)",
                  plan.limiting_factor.c_str());
    return buf;
  }
  std::snprintf(
      buf, sizeof(buf),
      "%zu antennas; power-up %.0f%%; %.2g J/period banked; one read per "
      "%zu period(s) (~%.1f reads/min); exposure: MPE %s, SAR %s, EIRP %s",
      plan.antennas, 100.0 * plan.power_up_probability,
      plan.energy_per_period_j, plan.charge_periods_per_read,
      plan.expected_reads_per_minute, plan.exposure.mpe_ok ? "ok" : "OVER",
      plan.exposure.sar_ok ? "ok" : "OVER",
      plan.exposure.eirp_ok ? "ok" : "over-cap");
  return buf;
}

}  // namespace ivnet
