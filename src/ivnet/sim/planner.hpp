// Deployment planner: the "how do I deploy IVN for my sensor?" API a
// downstream user calls first. Given the scenario (where the implant sits),
// the tag model, and the application's requirements, it sizes the system:
// how many antennas, what frequency plan, what duty cycle, what read
// cadence to expect — and whether the result is both feasible and
// RF-exposure compliant.
#pragma once

#include <string>
#include <vector>

#include "ivnet/cib/frequency_plan.hpp"
#include "ivnet/sim/experiment.hpp"
#include "ivnet/sim/safety.hpp"

namespace ivnet {

/// What the application needs.
struct DeploymentRequirements {
  double min_power_up_probability = 0.8;  ///< per-period power-up success
  double burst_energy_j = 3e-6;           ///< energy one read costs the tag
  double min_reads_per_minute = 1.0;      ///< required telemetry cadence
  std::size_t max_antennas = 10;          ///< hardware budget
  double tx_duty_cycle = 0.1;             ///< for compliance assessment
  double skin_distance_m = 0.5;           ///< nearest bystander/patient skin
};

/// The sized deployment.
struct DeploymentPlan {
  bool feasible = false;
  std::string limiting_factor;  ///< human-readable reason if infeasible
  std::size_t antennas = 0;     ///< smallest count meeting the requirement
  FrequencyPlan plan = FrequencyPlan::paper_default();
  double power_up_probability = 0.0;  ///< at the chosen antenna count
  double energy_per_period_j = 0.0;   ///< median banked energy per period
  double expected_reads_per_minute = 0.0;
  std::size_t charge_periods_per_read = 0;
  ExposureReport exposure;     ///< compliance at the chosen count
};

/// Size a deployment for `scenario`/`tag` under `req`. Monte-Carlo based;
/// deterministic for a given `rng` seed.
DeploymentPlan plan_deployment(const Scenario& scenario, const TagConfig& tag,
                               const DeploymentRequirements& req, Rng& rng);

/// Pretty one-paragraph summary for logs/CLI.
std::string describe(const DeploymentPlan& plan);

}  // namespace ivnet
