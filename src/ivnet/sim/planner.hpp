// Deployment planner: the "how do I deploy IVN for my sensor?" API a
// downstream user calls first. Given the scenario (where the implant sits),
// the tag model, and the application's requirements, it sizes the system:
// how many antennas, what frequency plan, what duty cycle, what read
// cadence to expect — and whether the result is both feasible and
// RF-exposure compliant.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ivnet/cib/frequency_plan.hpp"
#include "ivnet/cib/optimizer.hpp"
#include "ivnet/sim/campaign.hpp"
#include "ivnet/sim/experiment.hpp"
#include "ivnet/sim/safety.hpp"

namespace ivnet {

/// What the application needs.
struct DeploymentRequirements {
  double min_power_up_probability = 0.8;  ///< per-period power-up success
  double burst_energy_j = 3e-6;           ///< energy one read costs the tag
  double min_reads_per_minute = 1.0;      ///< required telemetry cadence
  std::size_t max_antennas = 10;          ///< hardware budget
  double tx_duty_cycle = 0.1;             ///< for compliance assessment
  double skin_distance_m = 0.5;           ///< nearest bystander/patient skin
};

/// The sized deployment.
struct DeploymentPlan {
  bool feasible = false;
  std::string limiting_factor;  ///< human-readable reason if infeasible
  std::size_t antennas = 0;     ///< smallest count meeting the requirement
  FrequencyPlan plan = FrequencyPlan::paper_default();
  double power_up_probability = 0.0;  ///< at the chosen antenna count
  double energy_per_period_j = 0.0;   ///< median banked energy per period
  double expected_reads_per_minute = 0.0;
  std::size_t charge_periods_per_read = 0;
  ExposureReport exposure;     ///< compliance at the chosen count
};

/// Size a deployment for `scenario`/`tag` under `req`. Monte-Carlo based;
/// deterministic for a given `rng` seed.
DeploymentPlan plan_deployment(const Scenario& scenario, const TagConfig& tag,
                               const DeploymentRequirements& req, Rng& rng);

/// Pretty one-paragraph summary for logs/CLI.
std::string describe(const DeploymentPlan& plan);

// --- Large-N frequency planner with a content-addressed plan store -------
// The Eq. 10 search scaled to N in the hundreds (annealed, delta-evaluated
// — cib/delta_objective.hpp), productized: every plan request is one
// campaign cell (kind "freq_plan"), keyed by the FNV-1a content hash of its
// canonical parameters, resolved journal -> process-wide CellCache ->
// compute. Re-planning an identical scenario is a cache hit — the stored
// plan JSON is returned byte-for-byte with ZERO objective evaluations and
// zero RNG draws, across process restarts when a journal path is given.

/// The planning scenario. Every field participates in the content hash, so
/// any change re-plans and any repeat hits the store.
struct FrequencyPlanRequest {
  std::size_t antennas = 10;
  std::size_t mc_trials = 32;       ///< phase draws per score
  std::size_t moves = 400;          ///< annealing moves per restart
  std::size_t restarts = 2;
  std::uint64_t seed = 7;           ///< proposal randomness
  std::uint64_t score_seed = 1234;  ///< common random numbers for scoring
  FlatnessConstraint constraint;    ///< Eq. 9 bound
  double t_max_s = 1.0;             ///< cyclic period (T = 1 s)
};

struct FrequencyPlanOutcome {
  std::vector<double> offsets_hz;  ///< sorted, first = 0
  double score = 0.0;              ///< E[peak amplitude] of the winner
  double rms_hz = 0.0;
  /// Objective evaluations spent by THIS call (0 on any cache hit).
  std::size_t evaluations = 0;
  bool cached = false;  ///< resolved from the journal or the memo cache
  std::uint64_t scenario_hash = 0;  ///< content hash of the plan cell
  /// The stored plan record, verbatim — byte-identical between the run
  /// that computed it and every later hit, whatever process served it.
  std::string plan_json;
};

/// The campaign cell a request maps to (exposed for tests and tooling).
CellSpec freq_plan_cell(const FrequencyPlanRequest& request);

/// Registers the "freq_plan" cell evaluator (idempotent; plan_frequencies
/// calls it on demand).
void register_freq_plan_evaluator();

/// Plan (or re-plan) the frequency set for `request`. Emits
/// planner.cache.{hits,misses} counters and, on a miss, the
/// planner.plan.seconds histogram; the search itself emits planner.evals
/// and planner.moves.{accepted,rejected}. Deterministic: the stored plan
/// is a pure function of the request at any IVNET_THREADS. Throws
/// std::invalid_argument when the constraint admits no feasible set.
FrequencyPlanOutcome plan_frequencies(const FrequencyPlanRequest& request,
                                      const std::string& journal_path = "");

}  // namespace ivnet
