#include "ivnet/sim/safety.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "ivnet/common/units.hpp"

namespace ivnet {

ExposureLimits fcc_limits(double freq_hz) {
  ExposureLimits limits;
  const double f_mhz = freq_hz / 1e6;
  double mpe_mw_per_cm2;
  if (f_mhz < 300.0) {
    mpe_mw_per_cm2 = 0.2;
  } else if (f_mhz <= 1500.0) {
    mpe_mw_per_cm2 = f_mhz / 1500.0;
  } else {
    mpe_mw_per_cm2 = 1.0;
  }
  limits.mpe_w_per_m2 = mpe_mw_per_cm2 * 10.0;  // mW/cm^2 -> W/m^2
  return limits;
}

ExposureReport assess_exposure(std::size_t num_antennas,
                               double per_antenna_power_w, double tx_gain_dbi,
                               double skin_distance_m, const Medium& tissue,
                               double freq_hz, double tx_duty_cycle) {
  assert(num_antennas >= 1 && skin_distance_m > 0.0);
  const auto limits = fcc_limits(freq_hz);
  const double gain = from_db(tx_gain_dbi);
  const auto n = static_cast<double>(num_antennas);

  ExposureReport report;
  // Incoherent time average: the N carriers' cross terms integrate to zero
  // over a period, leaving N times one antenna's density.
  const double single_density = per_antenna_power_w * gain /
                                (4.0 * kPi * skin_distance_m *
                                 skin_distance_m);
  report.avg_density_w_per_m2 = n * single_density * tx_duty_cycle;
  // During an alignment spike the fields add in voltage: N^2 the density,
  // but only for `peak_duty` of the period (already reflected in the
  // average above; reported for peak-exposure review).
  report.peak_density_w_per_m2 = n * n * single_density;

  // Surface SAR from the time-averaged transmitted field:
  //   S_tissue = S_incident * T;  |E_peak|^2 = 2 * eta_tissue * S_tissue;
  //   SAR = sigma * E_rms^2 / rho = sigma * |E_peak|^2 / (2 * rho).
  constexpr double kTissueDensity = 1000.0;  // kg/m^3
  const double transmitted =
      report.avg_density_w_per_m2 *
      boundary_power_transmittance(media::air(), tissue, freq_hz);
  const double e_peak_sq =
      2.0 * std::abs(tissue.impedance(freq_hz)) * transmitted;
  report.surface_sar_w_per_kg =
      tissue.sigma() * e_peak_sq / (2.0 * kTissueDensity);

  report.eirp_dbm = watts_to_dbm(per_antenna_power_w * gain);

  report.mpe_ok = report.avg_density_w_per_m2 <= limits.mpe_w_per_m2;
  report.sar_ok = report.surface_sar_w_per_kg <= limits.sar_limit_w_per_kg;
  report.eirp_ok = report.eirp_dbm <= limits.eirp_limit_dbm;
  return report;
}

double max_compliant_power_w(std::size_t num_antennas, double tx_gain_dbi,
                             double skin_distance_m, double freq_hz,
                             double tx_duty_cycle) {
  assert(num_antennas >= 1);
  const auto limits = fcc_limits(freq_hz);
  const double gain = from_db(tx_gain_dbi);
  const double denom = static_cast<double>(num_antennas) * gain *
                       tx_duty_cycle /
                       (4.0 * kPi * skin_distance_m * skin_distance_m);
  if (denom <= 0.0) return 0.0;
  const double mpe_bound = limits.mpe_w_per_m2 / denom;
  // Also respect the EIRP ceiling.
  const double eirp_bound = dbm_to_watts(limits.eirp_limit_dbm) / gain;
  return std::min(mpe_bound, eirp_bound);
}

}  // namespace ivnet
