// RF exposure and regulatory compliance checks.
//
// The paper leans on two safety arguments: boosting transmit power "neither
// scales well nor is safe for human exposure" (Sec. 1, refs [40, 57]), and
// CIB's "intrinsic duty-cycled operation makes it FCC compliant and safe for
// human exposure" (Sec. 7). This module quantifies both: FCC Part 15.247
// EIRP limits, the FCC/IEEE maximum-permissible-exposure (MPE) power
// density at 915 MHz, and a surface SAR estimate
//   SAR = sigma * |E_rms|^2 / rho
// for the tissue actually illuminated.
#pragma once

#include "ivnet/media/medium.hpp"

namespace ivnet {

/// Regulatory limits at a given carrier frequency.
struct ExposureLimits {
  /// FCC MPE for the general population [W/m^2], f/1500 mW/cm^2 in
  /// 300-1500 MHz (6.1 W/m^2 at 915 MHz), averaged over 30 minutes.
  double mpe_w_per_m2 = 0.0;
  /// FCC localized SAR limit (1 g average) [W/kg].
  double sar_limit_w_per_kg = 1.6;
  /// FCC Part 15.247 EIRP ceiling for frequency-hopping/digital systems in
  /// the 902-928 MHz ISM band [dBm]: 30 dBm conducted + 6 dBi antenna.
  double eirp_limit_dbm = 36.0;
};

/// Limits applicable at `freq_hz` (general-population/uncontrolled tier).
ExposureLimits fcc_limits(double freq_hz);

/// One exposure assessment.
struct ExposureReport {
  double avg_density_w_per_m2 = 0.0;   ///< time-averaged at the skin
  double peak_density_w_per_m2 = 0.0;  ///< during a CIB alignment spike
  double surface_sar_w_per_kg = 0.0;   ///< from the time-averaged field
  double eirp_dbm = 0.0;               ///< per-antenna EIRP
  bool mpe_ok = false;
  bool sar_ok = false;
  bool eirp_ok = false;
  bool compliant() const { return mpe_ok && sar_ok && eirp_ok; }
};

/// Assess an N-antenna CIB transmitter illuminating skin at `skin_distance_m`.
///
/// Key physics: the TIME-AVERAGED density from N incoherent carriers is
/// N * P * G / (4 pi r^2) — the N^2 alignment peaks are brief (duty-cycled
/// by design, Sec. 3.4), so regulatory 30-minute averages see only the
/// linear term; the instantaneous peak density is reported separately.
ExposureReport assess_exposure(std::size_t num_antennas,
                               double per_antenna_power_w, double tx_gain_dbi,
                               double skin_distance_m, const Medium& tissue,
                               double freq_hz, double tx_duty_cycle = 1.0);

/// Largest per-antenna power [W] that keeps the time-averaged density under
/// the MPE at the given geometry (the "how much can we legally transmit"
/// question behind the range results).
double max_compliant_power_w(std::size_t num_antennas, double tx_gain_dbi,
                             double skin_distance_m, double freq_hz,
                             double tx_duty_cycle = 1.0);

}  // namespace ivnet
