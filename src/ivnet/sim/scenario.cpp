#include "ivnet/sim/scenario.hpp"

#include "ivnet/sim/calibration.hpp"

namespace ivnet {

Scenario air_scenario(double distance_m) {
  Scenario s;
  s.name = "air";
  s.air_distance_m = distance_m;
  s.depth_m = 0.0;
  s.multipath_rays = 1;  // line-of-sight corridor
  return s;
}

Scenario water_tank_scenario(double depth_m, double standoff_m) {
  Scenario s;
  s.name = "water-tank";
  s.air_distance_m = standoff_m;
  s.stack.add_layer(media::water(), depth_m)
      .add_layer(media::air(), calib::kTubeWallOffsetM);
  // Sensor sits in the middle of the tube's air pocket.
  s.depth_m = depth_m + calib::kTubeWallOffsetM / 2.0;
  return s;
}

Scenario medium_block_scenario(const Medium& medium, double depth_m,
                               double standoff_m) {
  Scenario s;
  s.name = medium.name() + "-block";
  s.air_distance_m = standoff_m;
  s.stack.add_layer(medium, depth_m)
      .add_layer(media::air(), calib::kTubeWallOffsetM);
  s.depth_m = depth_m + calib::kTubeWallOffsetM / 2.0;
  return s;
}

Scenario swine_gastric_scenario(double standoff_m, double extra_depth_m) {
  Scenario s;
  s.name = "swine-gastric";
  s.air_distance_m = standoff_m;
  // Abdominal layers as in swine_gastric_stack(), with placement variation
  // absorbed into the gastric-content path, then the falcon-tube air pocket.
  s.stack.add_layer(media::skin(), 0.004)
      .add_layer(media::fat(), 0.025)
      .add_layer(media::muscle(), 0.020)
      .add_layer(media::stomach_wall(), 0.006)
      .add_layer(media::stomach_contents(), 0.030 + extra_depth_m)
      .add_layer(media::air(), calib::kTubeWallOffsetM);
  s.depth_m = s.stack.total_thickness_m() - calib::kTubeWallOffsetM / 2.0;
  return s;
}

Scenario swine_subcutaneous_scenario(double standoff_m) {
  Scenario s;
  s.name = "swine-subcutaneous";
  s.air_distance_m = standoff_m;
  s.stack = swine_subcutaneous_stack();
  s.stack.add_layer(media::air(), calib::kTubeWallOffsetM);
  s.depth_m = s.stack.total_thickness_m() - calib::kTubeWallOffsetM / 2.0;
  return s;
}

}  // namespace ivnet
