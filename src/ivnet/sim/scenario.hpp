// Physical experiment scenarios: the water tank (Fig. 7), the line-of-sight
// corridor (Fig. 8), medium blocks (Fig. 11), and the swine placements
// (Fig. 14). A Scenario fixes the geometry and media; experiment.hpp draws
// blind channels from it.
#pragma once

#include <string>

#include "ivnet/media/layered.hpp"
#include "ivnet/rf/antenna.hpp"
#include "ivnet/rf/propagation.hpp"

namespace ivnet {

/// One measurement geometry.
struct Scenario {
  std::string name;
  LayeredMedium stack{media::air()};  ///< media after the air path
  double air_distance_m = 1.0;        ///< transmitter to first boundary
  double depth_m = 0.0;               ///< into the stack (0 = in air)
  double orientation_rad = 0.0;       ///< sensor misalignment
  Antenna tx_antenna = antennas::mt242025();
  /// Multipath richness: 1 = pure line-of-sight (the Fig. 8 corridor),
  /// ~8 = rays reflecting off tank walls / organs (Sec. 3.1).
  std::size_t multipath_rays = 8;
  double delay_spread_s = 60e-9;
};

/// Line-of-sight air link at `distance_m` (Fig. 8 corridor).
Scenario air_scenario(double distance_m);

/// Tag at `depth_m` inside the water tank, transmitter `standoff_m` from the
/// tank wall. The tag sits in its test tube: an air pocket terminates the
/// stack, so the tag antenna operates in air (Sec. 5(c)).
Scenario water_tank_scenario(double depth_m, double standoff_m);

/// Tag at `depth_m` inside a block of `medium` (steak/bacon/chicken/fluids).
Scenario medium_block_scenario(const Medium& medium, double depth_m,
                               double standoff_m);

/// Swine gastric placement: abdominal layers, tag in a falcon tube inside
/// the stomach. `extra_depth_m` models placement variation.
Scenario swine_gastric_scenario(double standoff_m, double extra_depth_m = 0.0);

/// Swine subcutaneous placement (under the skin).
Scenario swine_subcutaneous_scenario(double standoff_m);

}  // namespace ivnet
