#include "ivnet/sim/waveform_session.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "ivnet/common/units.hpp"
#include "ivnet/gen2/memory.hpp"
#include "ivnet/obs/obs.hpp"
#include "ivnet/signal/envelope.hpp"
#include "ivnet/sim/calibration.hpp"
#include "ivnet/tag/sensor.hpp"

namespace ivnet {
namespace {

/// Strip the calibration TX power folded into scenario channel amplitudes:
/// the waveform path carries the power in the samples instead.
Channel depowered(Channel channel) {
  const double depower = 1.0 / std::sqrt(dbm_to_watts(calib::kTxPowerDbm));
  auto rays = channel.rays();
  for (auto& antenna : rays) {
    for (auto& ray : antenna) ray.amplitude *= depower;
  }
  return Channel(std::move(rays));
}

/// CIB leakage power at the reader's front end (antennas ~1 m away in air).
double jamming_power_w(const FrequencyPlan& plan, double drive_dbm) {
  const double lambda = wavelength(plan.center_hz());
  const double friis_1m = std::pow(lambda / (4.0 * kPi), 2.0);
  return static_cast<double>(plan.num_antennas()) * dbm_to_watts(drive_dbm) *
         from_db(calib::kTxGainDbi) * from_db(7.0) * friis_1m;
}

}  // namespace

WaveformSession::WaveformSession(WaveformSessionConfig config, Rng& rng)
    : config_(std::move(config)), tx_(config_.plan, config_.radio, rng) {}

WaveformSessionReport WaveformSession::run(const Scenario& scenario,
                                           const TagConfig& tag, Rng& rng) {
  WaveformSessionReport report;
  const auto& plan = config_.plan;
  const double fs = config_.radio.sample_rate_hz;

  // Channel amplitudes are volts-at-harvester per sqrt-watt transmitted,
  // but the RadioArray already emits sqrt-watt samples at the configured
  // drive, so strip the calibration TX power from the amplitudes.
  const Channel channel = depowered(draw_scenario_channel(
      scenario, tag, plan.num_antennas(), plan.center_hz(), rng));

  TagConfig session_tag = tag;
  session_tag.seed ^= rng();
  TagDevice device(session_tag);

  // --- Charging: CW from every antenna through the real radio chain.
  // Envelope buffers are workspace checkouts: the charge envelope alone is
  // charge_time_s * fs samples (200k at the defaults), reallocated per
  // trial before the workspace existed.
  const auto cw_waves = tx_.transmit_cw(config_.charge_time_s);
  const auto rx_charge = receive(channel, cw_waves, plan.offsets_hz());
  ScopedBuffer<double> charge_env_buf(workspace_, 0);
  std::vector<double>& charge_env = *charge_env_buf;
  envelope(rx_charge, charge_env);
  report.peak_envelope_v = max_value(charge_env);
  const auto charge_result = device.receive_downlink(charge_env, fs);
  report.powered = charge_result.powered;
  report.peak_rail_v = charge_result.harvest.peak_vdc;
  if (!report.powered) return report;

  // --- Query, phase-continuous, centered on the observed envelope peak.
  std::size_t peak_idx = 0;
  for (std::size_t i = 0; i < charge_env.size(); ++i) {
    if (charge_env[i] > charge_env[peak_idx]) peak_idx = i;
  }
  const auto pie_env =
      gen2::pie_encode(gen2::QueryCommand{.q = 0}.encode(), config_.pie, fs,
                       /*with_preamble=*/true);
  const double t_period = plan.period_s() > 0.0 ? plan.period_s() : 1.0;
  const double command_duration = static_cast<double>(pie_env.size()) / fs;
  // Ride the NEXT recurrence of the peak (cyclic operation, Sec. 3.6(a)).
  const double t_peak =
      std::fmod(static_cast<double>(peak_idx) / fs, t_period);
  const double t_start =
      t_peak + t_period - command_duration / 2.0;

  const auto cmd_waves = tx_.radios().transmit(pie_env, t_start);
  const auto rx_cmd = receive(channel, cmd_waves, plan.offsets_hz());
  ScopedBuffer<double> cmd_env_buf(workspace_, 0);
  std::vector<double>& cmd_env = *cmd_env_buf;
  envelope(rx_cmd, cmd_env);
  const auto downlink = device.receive_downlink(cmd_env, fs);
  report.command_decoded = downlink.command_decoded;
  if (!downlink.reply.has_value()) return report;
  report.replied = true;
  report.rn16 = device.state_machine().last_rn16();

  // --- Backscatter through the out-of-band reader.
  const auto reflection = device.backscatter_reflection(*downlink.reply, fs);
  const OobReader reader(config_.reader);
  const LinkBudget reader_budget(antennas::mt242025(), tag.antenna,
                                 scenario.stack);
  const LinkGeometry geom{.air_distance_m = scenario.air_distance_m,
                          .depth_m = scenario.depth_m,
                          .orientation_rad = scenario.orientation_rad};
  const double round_trip =
      reader_budget.power_gain(geom, config_.reader.carrier_hz);

  const double jam_w = jamming_power_w(plan, config_.radio.drive_dbm);

  report.reader_report =
      reader.decode(reflection, round_trip, jam_w, tag.blf_hz,
                    downlink.reply->size(), rng);
  report.preamble_correlation = report.reader_report.preamble_correlation;
  report.rn16_decoded =
      report.reader_report.success &&
      report.reader_report.bits.size() == downlink.reply->size() &&
      std::equal(report.reader_report.bits.begin(),
                 report.reader_report.bits.end(), downlink.reply->begin());
  return report;
}

SensorReadReport WaveformSession::run_sensor_read(const Scenario& scenario,
                                                  const TagConfig& tag,
                                                  double sensor_time_s,
                                                  Rng& rng) {
  SensorReadReport report;
  obs::ScopedSpan span("sim.sensor_read", "sim");
  // Session telemetry on every exit path (simulated quantities only).
  struct SessionTelemetry {
    SensorReadReport& r;
    ~SessionTelemetry() {
      obs::count("waveform.sessions");
      obs::count(r.read_ok ? "waveform.read_ok" : "waveform.read_failed");
      if (r.inventoried) obs::count("waveform.inventoried");
      if (r.secured) obs::count("waveform.secured");
      record_recovery("waveform", r.recovery);
    }
  } telemetry{report};
  const auto& plan = config_.plan;
  const double fs = config_.radio.sample_rate_hz;

  const Channel channel = depowered(draw_scenario_channel(
      scenario, tag, plan.num_antennas(), plan.center_hz(), rng));
  TagConfig session_tag = tag;
  session_tag.seed ^= rng();
  TagDevice device(session_tag);

  // The implant samples its vitals into USER memory before the dialogue.
  GastricSensor sensor(rng());
  sensor.publish(sensor_time_s, device.state_machine().memory());

  // Charge and check power-up (envelope buffers recycled via workspace_,
  // as in run()).
  const auto cw_waves = tx_.transmit_cw(config_.charge_time_s);
  const auto rx_charge = receive(channel, cw_waves, plan.offsets_hz());
  ScopedBuffer<double> charge_env_buf(workspace_, 0);
  std::vector<double>& charge_env = *charge_env_buf;
  envelope(rx_charge, charge_env);
  const auto charge_result = device.receive_downlink(charge_env, fs);
  report.powered = charge_result.powered;
  // Simulated-time trace track: the session timeline starts at the sensor
  // publish time, so traces from repeated reads lay out side by side.
  obs::sim_span("charge", "waveform", sensor_time_s,
                sensor_time_s + config_.charge_time_s);
  if (!report.powered) {
    obs::sim_instant("brownout", "waveform",
                     sensor_time_s + config_.charge_time_s);
    report.recovery.failed_stage = SessionStage::kCharge;
    return report;
  }

  std::size_t peak_idx = 0;
  for (std::size_t i = 0; i < charge_env.size(); ++i) {
    if (charge_env[i] > charge_env[peak_idx]) peak_idx = i;
  }
  const double t_period = plan.period_s() > 0.0 ? plan.period_s() : 1.0;
  const double t_peak =
      std::fmod(static_cast<double>(peak_idx) / fs, t_period);

  const OobReader reader(config_.reader);
  const LinkBudget reader_budget(antennas::mt242025(), tag.antenna,
                                 scenario.stack);
  const LinkGeometry geom{.air_distance_m = scenario.air_distance_m,
                          .depth_m = scenario.depth_m,
                          .orientation_rad = scenario.orientation_rad};
  const double round_trip =
      reader_budget.power_gain(geom, config_.reader.carrier_hz);
  const double jam_w = jamming_power_w(plan, config_.radio.drive_dbm);

  // One reader command per CIB period, each riding the recurring peak
  // (Sec. 3.6(a): cyclic operation). A failed attempt retries on a later
  // period per the recovery policy, with exponential backoff between tries.
  const RecoveryPolicy& policy = config_.recovery;
  int command_index = 0;
  SessionStage trace_stage = SessionStage::kQuery;
  // One envelope buffer serves every command attempt of the dialogue.
  ScopedBuffer<double> cmd_env_buf(workspace_, 0);
  auto send_once = [&](const gen2::Bits& command,
                       bool with_preamble) -> std::optional<gen2::Bits> {
    const auto pie_env =
        gen2::pie_encode(command, config_.pie, fs, with_preamble);
    const double duration = static_cast<double>(pie_env.size()) / fs;
    const double t_start = t_peak +
                           static_cast<double>(++command_index) * t_period -
                           duration / 2.0;
    obs::sim_span(to_string(trace_stage), "waveform",
                  sensor_time_s + config_.charge_time_s + t_start,
                  sensor_time_s + config_.charge_time_s + t_start + duration);
    report.commands_sent = command_index;
    const auto waves = tx_.radios().transmit(pie_env, t_start);
    const auto rx = receive(channel, waves, plan.offsets_hz());
    envelope(rx, *cmd_env_buf);
    const auto downlink = device.receive_downlink(*cmd_env_buf, fs);
    if (!downlink.reply.has_value()) {
      // Silent tag: the reader burns its full reply window before retrying.
      ++report.recovery.timeouts;
      return std::nullopt;
    }
    const auto reflection =
        device.backscatter_reflection(*downlink.reply, fs);
    const auto decoded =
        reader.decode(reflection, round_trip, jam_w, tag.blf_hz,
                      downlink.reply->size(), rng);
    if (!decoded.success) {
      obs::count("waveform.decode.fail");
      return std::nullopt;
    }
    obs::count("waveform.decode.ok");
    return decoded.bits;
  };
  auto exchange = [&](SessionStage stage, const gen2::Bits& command,
                      bool with_preamble) -> std::optional<gen2::Bits> {
    trace_stage = stage;
    for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
      if (attempt > 0) {
        ++report.recovery.retries;
        report.recovery.backoff_total_s +=
            policy.backoff_for_attempt(attempt - 1);
        if (obs::metrics() != nullptr) {
          std::string key = "waveform.retry.";
          key += to_string(stage);
          obs::count(key);
        }
        obs::sim_instant("retry", "waveform",
                         sensor_time_s + config_.charge_time_s +
                             static_cast<double>(command_index) * t_period);
      }
      if (auto bits = send_once(command, with_preamble)) return bits;
    }
    report.recovery.failed_stage = stage;
    return std::nullopt;
  };

  // 1. Query -> RN16.
  const auto rn16_bits = exchange(SessionStage::kQuery,
                                  gen2::QueryCommand{.q = 0}.encode(), true);
  if (!rn16_bits || rn16_bits->size() != 16) {
    report.recovery.failed_stage = SessionStage::kQuery;
    return report;
  }
  const auto rn16 =
      static_cast<std::uint16_t>(gen2::read_bits(*rn16_bits, 0, 16));

  // 2. ACK -> EPC frame (CRC-checked).
  const auto epc_bits = exchange(SessionStage::kAck,
                                 gen2::AckCommand{.rn16 = rn16}.encode(),
                                 false);
  if (!epc_bits || !gen2::check_crc16(*epc_bits)) {
    report.recovery.failed_stage = SessionStage::kAck;
    return report;
  }
  report.inventoried = true;

  // 3. Req_RN -> access handle.
  const auto handle_bits = exchange(SessionStage::kReqRn,
                                    gen2::ReqRnCommand{.rn16 = rn16}.encode(),
                                    false);
  if (!handle_bits || handle_bits->size() != 32 ||
      !gen2::check_crc16(*handle_bits)) {
    report.recovery.failed_stage = SessionStage::kReqRn;
    return report;
  }
  report.handle =
      static_cast<std::uint16_t>(gen2::read_bits(*handle_bits, 0, 16));
  report.secured = true;

  // 4. Read USER[0..3] -> sensor words.
  const auto read_bits_reply = exchange(
      SessionStage::kRead,
      gen2::ReadCommand{.bank = gen2::MemBank::kUser,
                        .word_addr = 0,
                        .word_count = 4,
                        .handle = report.handle}
          .encode(),
      false);
  if (!read_bits_reply) return report;
  report.words =
      gen2::parse_read_reply(*read_bits_reply, 4, report.handle);
  if (report.words.size() != 4) {
    report.recovery.failed_stage = SessionStage::kRead;
    return report;
  }
  report.read_ok = true;
  report.temperature_c = GastricSensor::decode_temperature(report.words[0]);
  report.ph = GastricSensor::decode_ph(report.words[1]);
  report.pressure_mmhg = GastricSensor::decode_pressure(report.words[2]);
  return report;
}

}  // namespace ivnet
