// Sample-accurate Gen2 session: the full pipeline a real IVN deployment
// runs, with no analytic shortcuts on the downlink.
//
//   RadioArray (PLL phases, PA compression, clock skew)
//     -> blind multipath Channel
//       -> received waveform -> envelope detector -> TagDevice
//         (harvester rail + PIE decode + state machine)
//           -> FM0 backscatter reflection
//             -> OobReader (SAW, jamming, averaging, 0.8-correlation)
//
// The analytic runner in experiment.hpp evaluates the same physics through
// the closed-form CIB envelope; this class is the reference implementation
// the tests cross-validate it against, and the one to extend when modelling
// new RF impairments.
#pragma once

#include "ivnet/cib/transmitter.hpp"
#include "ivnet/impair/recovery.hpp"
#include "ivnet/reader/oob_reader.hpp"
#include "ivnet/signal/dsp_workspace.hpp"
#include "ivnet/sim/experiment.hpp"

namespace ivnet {

struct WaveformSessionConfig {
  FrequencyPlan plan = FrequencyPlan::paper_default().truncated(8);
  RadioArrayConfig radio;  ///< 800 kHz, 30 dBm drive, Octoclock by default
  OobReaderConfig reader;
  gen2::PieTiming pie;
  /// CW charging window preceding the query. Full-rate samples; keep this
  /// to O(100 ms) unless you want multi-second runs.
  double charge_time_s = 0.25;
  /// Per-command retry/backoff/timeout used by run_sensor_read. Each retry
  /// rides a later CIB period (the paper's reader re-queries on the next
  /// envelope peak).
  RecoveryPolicy recovery;
};

struct WaveformSessionReport {
  bool powered = false;
  bool command_decoded = false;
  bool replied = false;
  bool rn16_decoded = false;
  double preamble_correlation = 0.0;
  std::uint16_t rn16 = 0;
  double peak_envelope_v = 0.0;  ///< from the real received waveform
  double peak_rail_v = 0.0;
  OobDecodeReport reader_report;
};

/// Outcome of a full sensor-read dialogue:
/// Query -> RN16 -> ACK -> EPC -> Req_RN -> handle -> Read -> sensor words.
struct SensorReadReport {
  bool powered = false;
  bool inventoried = false;   ///< RN16 decoded and EPC ACKed
  bool secured = false;       ///< handle obtained via Req_RN
  bool read_ok = false;       ///< sensor words decoded and CRC-clean
  std::uint16_t handle = 0;
  std::vector<std::uint16_t> words;  ///< USER bank words 0..3
  double temperature_c = 0.0;        ///< decoded from word 0
  double ph = 0.0;                   ///< decoded from word 1
  double pressure_mmhg = 0.0;        ///< decoded from word 2
  int commands_sent = 0;
  RecoveryStats recovery;            ///< retries / timeouts / failure stage
};

/// Runs sample-accurate sessions. One instance owns the radio array (PLL
/// phases persist across runs until new_trial()), plus a DspWorkspace so
/// the megasample envelope buffers of the charge/query/backscatter stages
/// are recycled across commands and trials instead of reallocated.
class WaveformSession {
 public:
  WaveformSession(WaveformSessionConfig config, Rng& rng);

  const WaveformSessionConfig& config() const { return config_; }
  CibTransmitter& transmitter() { return tx_; }

  /// Run one full session against a fresh blind channel draw in `scenario`.
  WaveformSessionReport run(const Scenario& scenario, const TagConfig& tag,
                            Rng& rng);

  /// Run a complete monitoring dialogue against a sensor-bearing tag:
  /// inventory it, secure a handle, and Read the four USER sensor words
  /// (see tag/sensor.hpp for the layout). `sensor_time_s` stamps the
  /// measurement the sensor publishes before the read.
  SensorReadReport run_sensor_read(const Scenario& scenario,
                                   const TagConfig& tag, double sensor_time_s,
                                   Rng& rng);

  /// Re-draw PLL phases (a fresh trial of the same deployment).
  void new_trial(Rng& rng) { tx_.new_trial(rng); }

 private:
  WaveformSessionConfig config_;
  CibTransmitter tx_;
  /// Scratch arena for the session's sample-domain DSP. Single-threaded,
  /// like the session itself: parallel trial loops give each worker its
  /// own WaveformSession.
  DspWorkspace workspace_;
};

}  // namespace ivnet
