#include "ivnet/svc/buffer_pool.hpp"

namespace ivnet::svc {

std::vector<double> BufferPool::acquire(std::size_t n) {
  const std::size_t cls = size_class(n);
  std::vector<double> buf;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // First class whose capacity covers the request; parked buffers of a
    // larger class stay put for larger requests (best-fit by class).
    for (auto it = classes_.lower_bound(cls); it != classes_.end(); ++it) {
      if (it->second.empty()) continue;
      buf = std::move(it->second.back());
      it->second.pop_back();
      break;
    }
  }
  // Grow outside the critical section: holding the pool mutex across
  // malloc would serialize every worker behind cold-path growth. Only the
  // accounting re-takes the lock.
  if (buf.capacity() < cls) {
    const std::size_t before = buf.capacity() * sizeof(double);
    buf.reserve(cls);
    const std::size_t grown = buf.capacity() * sizeof(double) - before;
    std::lock_guard<std::mutex> lock(mutex_);
    live_bytes_ += grown;
    if (live_bytes_ > high_water_bytes_) high_water_bytes_ = live_bytes_;
  }
  buf.resize(n);
  return buf;
}

void BufferPool::release(std::vector<double>&& buf) {
  if (buf.capacity() == 0) return;
  std::size_t cls = kMinClass;
  while (cls * 2 <= buf.capacity()) cls <<= 1;  // round DOWN: capacity >= cls
  std::lock_guard<std::mutex> lock(mutex_);
  classes_[cls].push_back(std::move(buf));
}

void BufferPool::trim() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t dropped = 0;
  for (auto& [cls, buffers] : classes_) {
    for (const auto& buf : buffers) dropped += buf.capacity() * sizeof(double);
    buffers.clear();
  }
  // Saturating: foreign buffers released into the pool were never counted
  // live, so dropping them must not underflow the gauge.
  live_bytes_ -= dropped < live_bytes_ ? dropped : live_bytes_;
}

std::size_t BufferPool::pooled_buffers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [cls, buffers] : classes_) n += buffers.size();
  return n;
}

std::size_t BufferPool::pooled_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t bytes = 0;
  for (const auto& [cls, buffers] : classes_) {
    for (const auto& buf : buffers) bytes += buf.capacity() * sizeof(double);
  }
  return bytes;
}

std::size_t BufferPool::high_water_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_water_bytes_;
}

}  // namespace ivnet::svc
