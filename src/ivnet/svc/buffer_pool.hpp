// Service-lifetime buffer pool keyed by power-of-two size class.
//
// DspWorkspace (signal/dsp_workspace.hpp) recycles scratch inside ONE
// thread for the duration of one batch; a long-running service also churns
// request/response payload buffers that cross threads (a worker fills a
// response, the completion sink reads it, the buffer goes back for the next
// request, possibly checked out by a different worker). BufferPool extends
// the same arena discipline to service lifetime: buffers are parked on
// per-size-class free lists behind one mutex, checkouts are served from the
// class that covers the request, and steady-state serving is allocation-
// free once every size class in play has been populated.
//
// Size classes are powers of two (minimum kMinClass elements), so mixed
// request sizes cannot fragment the pool into one class per distinct length.
// A buffer whose capacity is in [c, 2c) parks in class c and serves any
// acquire(n) with n <= c.
//
// Ownership rules mirror DspWorkspace:
//  - acquire(n) returns a buffer resized to n with UNSPECIFIED contents;
//    overwrite before reading.
//  - release() is an optimization, not an obligation: a caller that keeps
//    (or moves out) a buffer simply costs the pool one fresh allocation
//    later. Foreign buffers may be released into the pool; accounting for
//    them is approximate (saturating), exactly like DspWorkspace.
//  - high_water_bytes() is the peak of pool-created capacity live at once
//    (parked + checked out) — the gauge the service exports so arena
//    regrowth in a long-running process is visible in metrics snapshots.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace ivnet::svc {

class BufferPool {
 public:
  /// Smallest size class, in elements.
  static constexpr std::size_t kMinClass = 64;

  /// The size class (element count) that serves an acquire(n).
  static std::size_t size_class(std::size_t n) {
    std::size_t c = kMinClass;
    while (c < n) c <<= 1;
    return c;
  }

  /// Check out a buffer resized to `n` (capacity >= size_class(n)).
  /// Contents unspecified. Thread-safe.
  std::vector<double> acquire(std::size_t n);

  /// Park a buffer's storage for reuse. Empty vectors are dropped (moving a
  /// response payload out leaves an empty shell behind; parking it would
  /// grow the free lists with zero-capacity entries). Thread-safe.
  void release(std::vector<double>&& buf);

  /// Drop every parked buffer (live checkouts unaffected). A long-running
  /// service calls this on drain so an arrival burst cannot pin its peak
  /// footprint forever.
  void trim();

  std::size_t pooled_buffers() const;
  std::size_t pooled_bytes() const;
  std::size_t high_water_bytes() const;

 private:
  mutable std::mutex mutex_;
  /// class capacity (elements) -> parked buffers of that class
  std::map<std::size_t, std::vector<std::vector<double>>> classes_;
  std::size_t live_bytes_ = 0;        // pool-created capacity out or parked
  std::size_t high_water_bytes_ = 0;  // peak of live_bytes_
};

/// RAII checkout, for callers that consume a buffer within one scope.
class PooledBuffer {
 public:
  PooledBuffer(BufferPool& pool, std::size_t n)
      : pool_(&pool), buf_(pool.acquire(n)) {}
  ~PooledBuffer() { pool_->release(std::move(buf_)); }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  std::vector<double>& operator*() { return buf_; }
  std::vector<double>* operator->() { return &buf_; }
  double* data() { return buf_.data(); }
  std::size_t size() const { return buf_.size(); }

 private:
  BufferPool* pool_;
  std::vector<double> buf_;
};

}  // namespace ivnet::svc
