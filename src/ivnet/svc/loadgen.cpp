#include "ivnet/svc/loadgen.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <thread>

#include "ivnet/common/json.hpp"
#include "ivnet/common/rng.hpp"

namespace ivnet::svc {

std::vector<ScheduledRequest> generate_schedule(const LoadGenConfig& config) {
  std::vector<ScheduledRequest> schedule;
  if (config.states.empty() || config.requests == 0) return schedule;
  schedule.reserve(config.requests);

  const std::size_t n = config.states.size();
  const bool has_matrix = config.transition.size() == n * n;
  Rng rng = Rng::stream(config.seed, 0);
  std::size_t state = std::min(config.initial_state, n - 1);
  double t_s = 0.0;

  for (std::size_t i = 0; i < config.requests; ++i) {
    const LoadState& load = config.states[state];
    const double rate =
        std::max(1e-9, load.rate_rps * std::max(1e-12, config.rate_scale));
    // Exponential inter-arrival at the current state's rate. -log1p(-u) is
    // exact for u in [0, 1): never -log(0).
    t_s += -std::log1p(-rng.uniform()) / rate;

    ScheduledRequest scheduled;
    scheduled.t_s = t_s;
    scheduled.state = state;
    // Sim-clock telemetry attributes the request to its offered time.
    scheduled.request.offered_t_s = t_s;
    scheduled.request.kind = load.kind;
    scheduled.request.trials = std::max<std::uint32_t>(1, load.trials);
    scheduled.request.antennas = std::max<std::uint16_t>(1, load.antennas);
    scheduled.request.snr_db = load.snr_db;
    scheduled.request.medium_loss_db = load.medium_loss_db;
    scheduled.request.id = i;
    scheduled.request.seed = rng();  // independent per-request trial stream
    schedule.push_back(scheduled);

    // Arrival-synchronous modulation: one DTMC step per arrival. The draw
    // happens even on the degenerate single-state chain so adding states to
    // a config never re-times the arrivals that precede the change.
    const double u = rng.uniform();
    if (has_matrix) {
      double cumulative = 0.0;
      std::size_t next = n - 1;  // absorb rounding into the last state
      for (std::size_t j = 0; j < n; ++j) {
        cumulative += config.transition[state * n + j];
        if (u < cumulative) {
          next = j;
          break;
        }
      }
      state = next;
    }
  }
  return schedule;
}

std::string schedule_json(const std::vector<ScheduledRequest>& schedule) {
  JsonWriter w;
  w.begin_object();
  w.field("requests", schedule.size());
  w.key("schedule").begin_array();
  for (const ScheduledRequest& s : schedule) {
    w.begin_object();
    w.field("t_s", s.t_s);
    w.field("state", s.state);
    w.field("kind", static_cast<int>(s.request.kind));
    w.field("trials", static_cast<std::size_t>(s.request.trials));
    w.field("antennas", static_cast<std::size_t>(s.request.antennas));
    w.field("id", static_cast<std::size_t>(s.request.id));
    w.field("seed", static_cast<std::size_t>(s.request.seed));
    w.field("snr_db", s.request.snr_db);
    w.field("medium_loss_db", s.request.medium_loss_db);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::vector<std::size_t> state_occupancy(
    const std::vector<ScheduledRequest>& schedule, std::size_t num_states) {
  std::vector<std::size_t> counts(num_states, 0);
  for (const ScheduledRequest& s : schedule) {
    if (s.state < num_states) ++counts[s.state];
  }
  return counts;
}

LatencyCollector::LatencyCollector(bool keep_timeline)
    : keep_timeline_(keep_timeline),
      epoch_(std::chrono::steady_clock::now()) {}

void LatencyCollector::record(const Response& response) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_wait_s_.push_back(response.queue_wait_s);
    service_s_.push_back(response.service_s);
    if (keep_timeline_) {
      TimelinePoint point;
      point.t_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - epoch_)
                      .count();
      point.latency_s = response.queue_wait_s + response.service_s;
      timeline_.push_back(point);
    }
    succeeded_sessions_ += response.succeeded;
    sim_elapsed_total_s_ += response.sim_elapsed_s;
    digest_ ^= response_hash(response);
  }
  completed_cv_.notify_all();
}

std::vector<TimelinePoint> LatencyCollector::timeline() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return timeline_;
}

void LatencyCollector::wait_for_completed(std::size_t n) {
  std::unique_lock<std::mutex> lock(mutex_);
  completed_cv_.wait(lock, [&] { return queue_wait_s_.size() >= n; });
}

std::size_t LatencyCollector::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_wait_s_.size();
}

std::uint64_t LatencyCollector::succeeded_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return succeeded_sessions_;
}

std::uint64_t LatencyCollector::digest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return digest_;
}

double LatencyCollector::quantile_of(std::vector<double> samples, double q) {
  if (samples.empty()) return std::nan("");
  std::sort(samples.begin(), samples.end());
  const double clamped = std::clamp(q, 0.0, 1.0);
  // Nearest-rank on the sorted samples: exact percentiles, no histogram
  // bucket resolution in the way.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(samples.size())));
  return samples[rank == 0 ? 0 : rank - 1];
}

double LatencyCollector::queue_wait_quantile(double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quantile_of(queue_wait_s_, q);
}

double LatencyCollector::service_quantile(double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quantile_of(service_s_, q);
}

double LatencyCollector::latency_quantile(double q) const {
  std::vector<double> total;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    total.resize(queue_wait_s_.size());
    for (std::size_t i = 0; i < total.size(); ++i) {
      total[i] = queue_wait_s_[i] + service_s_[i];
    }
  }
  return quantile_of(std::move(total), q);
}

double LatencyCollector::sim_elapsed_total_s() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sim_elapsed_total_s_;
}

ReplayResult run_open_loop(InventoryService& service,
                           const std::vector<ScheduledRequest>& schedule,
                           double time_scale) {
  ReplayResult result;
  const auto start = std::chrono::steady_clock::now();
  for (const ScheduledRequest& scheduled : schedule) {
    const auto due =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(scheduled.t_s * time_scale));
    // Open loop: the submitter honours the schedule clock and nothing else.
    // A backlogged service sheds at the ring; we never slow down for it.
    std::this_thread::sleep_until(due);
    ++result.submitted;
    if (service.submit(scheduled.request)) {
      ++result.accepted;
    } else {
      ++result.rejected;
    }
  }
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return result;
}

ReplayResult run_closed_loop(InventoryService& service,
                             LatencyCollector& collector,
                             const std::vector<ScheduledRequest>& schedule,
                             std::size_t concurrency) {
  ReplayResult result;
  const std::size_t window = std::max<std::size_t>(1, concurrency);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (i >= window) collector.wait_for_completed(i + 1 - window);
    ++result.submitted;
    if (service.submit(schedule[i].request)) {
      ++result.accepted;
    } else {
      // Unreachable when window <= queue depth (outstanding <= window bounds
      // ring occupancy); tolerate misconfiguration by pacing on completions.
      ++result.rejected;
      collector.wait_for_completed(result.accepted);
    }
  }
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return result;
}

}  // namespace ivnet::svc
