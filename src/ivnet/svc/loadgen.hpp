// Markov-modulated load harness for the inventory service.
//
// Offered load in the paper's setting is bursty: a clinician sweeping a
// wand produces dense inventory rounds, idle wards produce sparse decode
// probes. We model that as an MMPP-style generator — a discrete-time Markov
// chain over load states, each state carrying an arrival rate and a request
// template. The generator is OPEN LOOP and fully deterministic: the entire
// arrival schedule (timestamps, request kinds, per-request seeds) is
// materialized up front from one Rng::stream, so two runs with the same
// LoadGenConfig submit byte-identical request sequences regardless of how
// the service behind them is provisioned. loadgen_test pins
// schedule_json() byte-identical across seeds and worker counts.
//
// Two replay modes:
//   run_open_loop   — wall-clock replay of the schedule (scaled by
//                     time_scale); arrivals do not wait for completions, so
//                     offered load beyond saturation sheds at the service's
//                     bounded queue. This is the mode that produces the
//                     latency-vs-offered-load curves in BENCH_service.json.
//   run_closed_loop — fixed concurrency window: request i is submitted only
//                     after i - concurrency completions. Never sheds (the
//                     window bounds queue occupancy), never idles the
//                     workers; its throughput is the saturation estimate.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "ivnet/svc/service.hpp"

namespace ivnet::svc {

/// One DTMC load state: an arrival rate plus the request template stamped
/// on arrivals generated while the chain sits in this state.
struct LoadState {
  double rate_rps = 100.0;  ///< mean arrival rate while in this state
  RequestKind kind = RequestKind::kDecode;
  std::uint32_t trials = 1;
  std::uint16_t antennas = 1;
  double snr_db = 20.0;
  double medium_loss_db = 0.0;
};

struct LoadGenConfig {
  std::vector<LoadState> states;
  /// Row-major |states| x |states| transition matrix; rows must sum to ~1.
  /// Empty means "stay forever in initial_state" (degenerate 1-state MMPP).
  std::vector<double> transition;
  std::size_t requests = 1000;
  std::size_t initial_state = 0;
  std::uint64_t seed = 1;
  /// Multiplies every state's rate_rps; the offered-load knob the bench
  /// sweeps without rebuilding the config.
  double rate_scale = 1.0;
};

/// One scheduled arrival: absolute offered time plus the ready-to-submit
/// request (id = schedule index, seed drawn from the schedule stream).
struct ScheduledRequest {
  double t_s = 0.0;          ///< offered (schedule) time of the arrival
  std::size_t state = 0;     ///< DTMC state that generated it
  Request request;
};

/// Materialize the full arrival schedule. Deterministic in `config` alone:
/// one Rng::stream(config.seed, 0) drives inter-arrival draws, per-request
/// seeds, and DTMC transitions, in that fixed per-arrival order. The chain
/// steps once per arrival (arrival-synchronous modulation).
std::vector<ScheduledRequest> generate_schedule(const LoadGenConfig& config);

/// Byte-stable JSON fingerprint of a schedule (timestamps, states, request
/// fields). Two schedules are identical iff their fingerprints match —
/// loadgen_test's determinism pin compares these strings.
std::string schedule_json(const std::vector<ScheduledRequest>& schedule);

/// Observed per-state arrival counts — loadgen_test checks these against
/// the stationary behaviour implied by the transition matrix.
std::vector<std::size_t> state_occupancy(
    const std::vector<ScheduledRequest>& schedule, std::size_t num_states);

/// One completion on the collector's wall clock: when it finished (seconds
/// since collector construction) and its end-to-end latency. The raw
/// material for warmup-vs-steady-state plots.
struct TimelinePoint {
  double t_s = 0.0;
  double latency_s = 0.0;
};

/// Thread-safe completion sink: collects per-request latency samples and an
/// order-independent response digest. Install via sink() at service
/// construction; read the accessors after service.stop().
class LatencyCollector {
 public:
  /// `keep_timeline` retains per-request completion wall timestamps
  /// (timeline()) in addition to the latency samples — off by default so
  /// the quantile-only paths pay nothing extra.
  explicit LatencyCollector(bool keep_timeline = false);

  void record(const Response& response);

  /// A CompletionSink forwarding to record(). The collector must outlive
  /// the service it is installed in.
  InventoryService::CompletionSink sink() {
    return [this](const Response& r) { record(r); };
  }

  /// Block until at least `n` responses have been recorded.
  void wait_for_completed(std::size_t n);

  std::size_t completed() const;
  std::uint64_t succeeded_sessions() const;
  /// XOR of per-response hashes over (id, kind, trials, succeeded,
  /// sim_elapsed bits): order-independent, so equal digests across worker
  /// counts mean byte-identical response payloads.
  std::uint64_t digest() const;

  /// Exact quantile (nearest-rank) of the recorded queue-wait / service /
  /// end-to-end (wait + service) latency samples, q in [0, 1]. NaN when no
  /// samples have been recorded.
  double queue_wait_quantile(double q) const;
  double service_quantile(double q) const;
  double latency_quantile(double q) const;
  double sim_elapsed_total_s() const;

  /// Completion order; empty unless constructed with keep_timeline.
  std::vector<TimelinePoint> timeline() const;

 private:
  static double quantile_of(std::vector<double> samples, double q);

  const bool keep_timeline_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::condition_variable completed_cv_;
  std::vector<double> queue_wait_s_;
  std::vector<double> service_s_;
  std::vector<TimelinePoint> timeline_;
  std::uint64_t succeeded_sessions_ = 0;
  std::uint64_t digest_ = 0;
  double sim_elapsed_total_s_ = 0.0;
};

struct ReplayResult {
  std::size_t submitted = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  double wall_s = 0.0;  ///< wall-clock span of the replay (submit side)
};

/// Wall-clock open-loop replay: submit each arrival at t_s * time_scale
/// after the replay start, never waiting for completions. time_scale < 1
/// compresses the schedule (offered load grows by 1/time_scale); use
/// LoadGenConfig::rate_scale instead where possible so the schedule itself
/// reflects the offered load.
ReplayResult run_open_loop(InventoryService& service,
                           const std::vector<ScheduledRequest>& schedule,
                           double time_scale = 1.0);

/// Closed-loop replay: at most `concurrency` requests outstanding, arrival
/// timestamps ignored. Requires a collector-backed sink so completions can
/// be awaited; `concurrency` must not exceed the service queue depth (the
/// window then bounds occupancy and no request is ever shed).
ReplayResult run_closed_loop(InventoryService& service,
                             LatencyCollector& collector,
                             const std::vector<ScheduledRequest>& schedule,
                             std::size_t concurrency);

}  // namespace ivnet::svc
