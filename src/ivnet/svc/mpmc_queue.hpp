// Bounded lock-free MPMC ring queue — the request spine of the inventory
// service (svc/service.hpp).
//
// Vyukov's bounded MPMC design: every slot carries a sequence number that
// encodes which lap of the ring it is on. A producer claims a slot by
// CAS-advancing enqueue_pos_ when the slot's sequence says "empty on this
// lap"; a consumer claims one by CAS-advancing dequeue_pos_ when it says
// "full on this lap". Both sides therefore fail fast — try_push returns
// false on a full ring (the service's shedding path), try_pop returns false
// on an empty ring — and neither ever blocks or allocates.
//
// Ordering guarantees the svc_test suite pins:
//  - every pushed element is popped exactly once (no duplication, no loss);
//  - pops observe pushes in claim order, so two pushes from the SAME
//    producer thread are popped in program order (FIFO per producer).
//
// The queue does not provide blocking waits by design; the service pairs it
// with a counting semaphore whose credits mirror the element count (one
// release per successful push), which keeps the hot path lock-free while
// idle workers sleep in the kernel instead of spinning. One caveat of that
// pairing: "empty" from try_pop can be TRANSIENT under concurrent
// producers. A producer preempted between CAS-claiming the FIFO head slot
// and publishing its sequence leaves the head unpoppable while a later
// producer's completed push may already have released a credit — so a
// credit holder whose pop comes up empty must retry unless it knows no
// element can be in flight (the service only exits on empty once stop()
// has closed the front door).
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace ivnet::svc {

template <typename T>
class MpmcRingQueue {
 public:
  /// Capacity is rounded up to a power of two, minimum 2. Slots are
  /// default-constructed once and assigned on push, so T must be default-
  /// constructible and movable (the service's Request is a POD).
  explicit MpmcRingQueue(std::size_t min_capacity)
      : slots_(round_up_pow2(min_capacity)), mask_(slots_.size() - 1) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcRingQueue(const MpmcRingQueue&) = delete;
  MpmcRingQueue& operator=(const MpmcRingQueue&) = delete;

  /// False when the ring is full (bounded-queue shedding). Safe from any
  /// number of producer threads.
  bool try_push(T value) {
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    Slot* slot;
    for (;;) {
      slot = &slots_[pos & mask_];
      const std::size_t seq = slot->seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // slot still holds last lap's element: ring is full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    slot->value = std::move(value);
    slot->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// False when the ring is empty. Safe from any number of consumer threads.
  bool try_pop(T& out) {
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    Slot* slot;
    for (;;) {
      slot = &slots_[pos & mask_];
      const std::size_t seq = slot->seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // next slot not yet published: ring is empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(slot->value);
    slot->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Approximate occupancy (racy by nature; for telemetry only).
  std::size_t size_estimate() const {
    const std::size_t tail = enqueue_pos_.load(std::memory_order_relaxed);
    const std::size_t head = dequeue_pos_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

 private:
  struct Slot {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  std::vector<Slot> slots_;
  const std::size_t mask_;
  // Producers and consumers advance independent counters; keep them on
  // separate cache lines so contention on one side cannot slow the other.
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace ivnet::svc
