#include "ivnet/svc/service.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "ivnet/common/parallel.hpp"
#include "ivnet/obs/flight_recorder.hpp"
#include "ivnet/obs/obs.hpp"
#include "ivnet/obs/telemetry.hpp"
#include "ivnet/sim/batch_pipeline.hpp"
#include "ivnet/sim/planner.hpp"

namespace ivnet::svc {
namespace {

double seconds_between(std::chrono::steady_clock::time_point t0,
                       std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

/// SplitMix64 finalizer — the mixing step of response_hash.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

const char* kind_counter(RequestKind kind) {
  switch (kind) {
    case RequestKind::kDecode:
      return "svc.requests.decode";
    case RequestKind::kInventory:
      return "svc.requests.inventory";
    case RequestKind::kPlan:
      return "svc.requests.plan";
    case RequestKind::kPause:
      return "svc.requests.pause";
  }
  return "svc.requests.unknown";
}

}  // namespace

std::uint64_t response_hash(const Response& response) {
  std::uint64_t h = mix64(response.id);
  h = mix64(h ^ static_cast<std::uint64_t>(response.kind));
  h = mix64(h ^ response.trials);
  h = mix64(h ^ response.succeeded);
  h = mix64(h ^ std::bit_cast<std::uint64_t>(response.sim_elapsed_s));
  h = mix64(h ^ std::bit_cast<std::uint64_t>(response.plan_score));
  return h;
}

ImpairedLinkConfig link_config_for(const ServiceConfig& config,
                                   const Request& request) {
  ImpairedLinkConfig link = config.link;
  link.snr_db = request.snr_db;
  link.num_antennas = std::max<std::size_t>(1, request.antennas);
  link.medium_loss_db = request.medium_loss_db;
  if (request.kind == RequestKind::kInventory) {
    // Inventory dialogues are the heavier class: adaptive Q from a dense-
    // population prior plus one extra recovery attempt over the template.
    link.adaptive_q.initial_q = 2.0;
    link.recovery.max_attempts =
        std::max(link.recovery.max_attempts, 3);
  }
  return link;
}

Response execute_request(const ServiceConfig& config, const Request& request,
                         DspWorkspace& workspace, std::vector<double> storage,
                         StageTimings* stages, const FlightHook* hook) {
  Response response;
  response.id = request.id;
  response.kind = request.kind;
  const auto start = std::chrono::steady_clock::now();
  obs::FlightRecorder* flight =
      (hook != nullptr) ? hook->flight : nullptr;
  // Flight timestamps advance with wall time from the hook's base, so the
  // intra-request spans are real durations on either telemetry clock.
  const auto flight_now = [&] {
    return hook->t0_s +
           seconds_between(start, std::chrono::steady_clock::now());
  };

  switch (request.kind) {
    case RequestKind::kPause:
      // The pause gate is service state; standalone execution is a no-op.
      return response;

    case RequestKind::kPlan: {
      // Re-plan through the content-addressed plan store: the annealed
      // delta-evaluated Eq. 10 search on a miss, the stored plan bytes on a
      // hit (identical (antennas, seed) requests spend zero objective
      // evaluations; journal-backed when config.plan_journal_path is set).
      // Deterministic in (seed, antennas); the planner's internal
      // parallel_for must be inline in the calling thread (service workers
      // hold ScopedInlineParallel; replay callers set it up themselves).
      if (flight != nullptr) {
        flight->record(hook->ring, obs::FlightEvent::kStageEnter,
                       flight_now(), request.id, 0);
      }
      FrequencyPlanRequest plan_request;
      plan_request.antennas = std::clamp<std::size_t>(request.antennas, 2, 64);
      plan_request.mc_trials = 8;
      plan_request.moves = 24;
      plan_request.restarts = 1;
      plan_request.seed = request.seed;
      const FrequencyPlanOutcome plan =
          plan_frequencies(plan_request, config.plan_journal_path);
      response.succeeded = 1;
      response.plan_score = plan.score;
      const double span_s =
          seconds_between(start, std::chrono::steady_clock::now());
      if (stages != nullptr) stages->add(span_s);
      if (flight != nullptr) {
        flight->record(hook->ring, obs::FlightEvent::kStageExit, flight_now(),
                       request.id, 0);
      }
      return response;
    }

    case RequestKind::kDecode:
    case RequestKind::kInventory: {
      const ImpairedLinkConfig link = link_config_for(config, request);
      const std::uint32_t trials = std::max<std::uint32_t>(1, request.trials);
      response.trials = trials;
      response.per_trial_elapsed_s = std::move(storage);
      response.per_trial_elapsed_s.resize(trials);
      const auto sink = [&](std::size_t t, const SessionOutcome& outcome) {
        // Sink runs in ascending trial order: the summed air time folds
        // deterministically.
        response.succeeded += outcome.success;
        response.sim_elapsed_s += outcome.elapsed_s;
        response.per_trial_elapsed_s[t] = outcome.elapsed_s;
        if (flight != nullptr) {
          if (outcome.retries > 0) {
            flight->record(hook->ring, obs::FlightEvent::kRetry, flight_now(),
                           request.id,
                           static_cast<std::uint64_t>(outcome.retries));
          }
          if (!outcome.powered) {
            flight->record(hook->ring, obs::FlightEvent::kBrownout,
                           flight_now(), request.id, t);
          }
        }
      };
      // Trial t seeds from Rng::stream(seed, t) regardless of the chunking,
      // so the batch knob changes lane width, never outcomes.
      const std::size_t batch =
          resolve_batch_size(BatchConfig{config.batch_size});
      std::size_t stage = 0;
      for (std::size_t lo = 0; lo < trials; lo += batch, ++stage) {
        const auto chunk_start = std::chrono::steady_clock::now();
        if (flight != nullptr) {
          flight->record(hook->ring, obs::FlightEvent::kStageEnter,
                         flight_now(), request.id, stage);
        }
        run_session_batch(link, request.seed, /*stream_stride=*/1,
                          /*stream_offset=*/0, lo,
                          std::min<std::size_t>(trials, lo + batch), workspace,
                          sink);
        if (stages != nullptr) {
          stages->add(seconds_between(chunk_start,
                                      std::chrono::steady_clock::now()));
        }
        if (flight != nullptr) {
          flight->record(hook->ring, obs::FlightEvent::kStageExit,
                         flight_now(), request.id, stage);
        }
      }
      return response;
    }
  }
  return response;
}

InventoryService::InventoryService(ServiceConfig config, CompletionSink sink)
    : config_(config),
      sink_(std::move(sink)),
      queue_(std::max<std::size_t>(2, config.queue_depth)),
      workers_(std::max<std::size_t>(1, config.workers)) {
  obs::gauge_set("svc.workers", static_cast<double>(workers_.size()));
  obs::gauge_set("svc.queue_depth", static_cast<double>(queue_.capacity()));
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    workers_[w].thread = std::thread([this, w] { worker_loop(w); });
  }
}

InventoryService::~InventoryService() { stop(); }

double InventoryService::telemetry_now(const Request& request) const {
  if (config_.telemetry_clock == TelemetryClock::kSim) {
    return request.offered_t_s;
  }
  return seconds_between(epoch_, std::chrono::steady_clock::now());
}

bool InventoryService::submit(Request request) {
  if (stopping_.load(std::memory_order_acquire)) {
    obs::count("svc.rejected.stopped");
    return false;
  }
  request.accepted_at = std::chrono::steady_clock::now();
  if (!queue_.try_push(request)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::count("svc.rejected");
    if (config_.telemetry != nullptr || config_.flight != nullptr) {
      const double t = telemetry_now(request);
      if (config_.telemetry != nullptr) config_.telemetry->on_shed(t);
      if (config_.flight != nullptr) {
        config_.flight->record(0, obs::FlightEvent::kShed, t, request.id);
      }
    }
    return false;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  if (request.kind == RequestKind::kPause) {
    pause_submitted_.fetch_add(1, std::memory_order_relaxed);
  }
  obs::count("svc.accepted");
  if (config_.telemetry != nullptr || config_.flight != nullptr) {
    const double t = telemetry_now(request);
    if (config_.telemetry != nullptr) config_.telemetry->on_accept(t);
    if (config_.flight != nullptr) {
      config_.flight->record(0, obs::FlightEvent::kEnqueue, t, request.id);
    }
  }
  ready_.release();
  return true;
}

void InventoryService::stop() {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  if (stopped_) return;
  stopping_.store(true, std::memory_order_release);
  // Unblock every pause still parked on (or queued ahead of) the gate:
  // without these credits a worker blocked in pause_gate_.acquire() could
  // never be joined, and the inline drain below would hang on a queued
  // kPause nobody will release. Over-releasing (a worker between acquire
  // and its pause_passed_ increment) only leaves spare credits behind,
  // which is harmless once the service is stopped.
  const std::uint64_t pauses_submitted =
      pause_submitted_.load(std::memory_order_acquire);
  const std::uint64_t pauses_passed =
      pause_passed_.load(std::memory_order_acquire);
  if (pauses_submitted > pauses_passed) {
    pause_gate_.release(
        static_cast<std::ptrdiff_t>(pauses_submitted - pauses_passed));
  }
  ready_.release(static_cast<std::ptrdiff_t>(workers_.size()));
  for (Worker& worker : workers_) worker.thread.join();
  // A submit racing the shutdown may have pushed after the workers drew
  // their shutdown credits; finish those requests inline so stop() always
  // leaves an empty ring.
  {
    ScopedInlineParallel inline_parallel;
    Request request;
    while (queue_.try_pop(request)) {
      handle(request, workers_[0].workspace, /*ring=*/1);
    }
  }
  std::size_t workspace_high_water = 0;
  for (const Worker& worker : workers_) {
    workspace_high_water =
        std::max(workspace_high_water, worker.workspace.high_water_bytes());
  }
  obs::gauge_set("svc.workspace.high_water_bytes",
                 static_cast<double>(workspace_high_water));
  obs::gauge_set("svc.bufferpool.high_water_bytes",
                 static_cast<double>(pool_.high_water_bytes()));
  obs::gauge_set("svc.inflight", 0.0);
  pool_.trim();
  stopped_ = true;
}

void InventoryService::release_pause(std::size_t count) {
  if (count > 0) pause_gate_.release(static_cast<std::ptrdiff_t>(count));
}

void InventoryService::worker_loop(std::size_t index) {
  // Request handlers that reach parallelized kernels (kPlan's optimizer)
  // run them inline on this worker: the service pool IS the parallelism.
  ScopedInlineParallel inline_parallel;
  DspWorkspace& workspace = workers_[index].workspace;
  for (;;) {
    ready_.acquire();
    Request request;
    while (!queue_.try_pop(request)) {
      // A credit with no poppable element means one of two things. During
      // shutdown it is a shutdown credit from stop(): drain is complete,
      // exit. Outside shutdown it means a producer was preempted between
      // CAS-claiming the FIFO head slot and publishing its sequence while a
      // later push released this credit — the element is in flight, so spin
      // until it lands. Exiting here instead would silently shrink the pool
      // and strand an accepted request until stop().
      if (stopping_.load(std::memory_order_acquire)) return;
      std::this_thread::yield();
    }
    handle(request, workspace, /*ring=*/1 + index);
  }
}

void InventoryService::handle(Request request, DspWorkspace& workspace,
                              std::size_t ring) {
  const auto picked_at = std::chrono::steady_clock::now();
  const double queue_wait_s = seconds_between(request.accepted_at, picked_at);
  const std::size_t inflight_now =
      inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::size_t peak = inflight_peak_.load(std::memory_order_relaxed);
  while (inflight_now > peak &&
         !inflight_peak_.compare_exchange_weak(peak, inflight_now,
                                               std::memory_order_relaxed)) {
  }
  obs::gauge_set("svc.inflight", static_cast<double>(inflight_now));
  obs::observe("svc.queue_wait", queue_wait_s);
  if (config_.flight != nullptr) {
    config_.flight->record(ring, obs::FlightEvent::kDequeue,
                           telemetry_now(request), request.id);
  }

  Response response;
  StageTimings stages;
  if (request.kind == RequestKind::kPause) {
    response.id = request.id;
    response.kind = request.kind;
    pause_gate_.acquire();
    pause_passed_.fetch_add(1, std::memory_order_release);
  } else {
    // Decode/inventory payload buffers come from the service pool; the
    // executor resizes to the trial count.
    std::vector<double> storage;
    if (request.kind == RequestKind::kDecode ||
        request.kind == RequestKind::kInventory) {
      storage = pool_.acquire(std::max<std::uint32_t>(1, request.trials));
    }
    const FlightHook hook{config_.flight, ring, telemetry_now(request)};
    response = execute_request(config_, request, workspace,
                               std::move(storage), &stages,
                               config_.flight != nullptr ? &hook : nullptr);
  }
  response.queue_wait_s = queue_wait_s;
  response.service_s =
      seconds_between(picked_at, std::chrono::steady_clock::now());
  obs::observe("svc.service_time", response.service_s);
  obs::observe("svc.sim_elapsed_s", response.sim_elapsed_s);
  obs::count(kind_counter(request.kind));
  obs::count("svc.completed");
  obs::count("svc.success", response.succeeded);
  if (request.kind == RequestKind::kDecode ||
      request.kind == RequestKind::kInventory) {
    obs::count("svc.sessions", request.trials);
  }

  if (config_.telemetry != nullptr) {
    const double t = telemetry_now(request);
    if (request.kind == RequestKind::kPause) {
      // A pause is a gate, not work: count the completion for throughput
      // windows but never offer it as an exemplar (replaying one would
      // block on a gate nobody releases).
      config_.telemetry->completed().add(t);
    } else {
      obs::Exemplar exemplar;
      exemplar.kind = static_cast<std::uint32_t>(request.kind);
      exemplar.trials = request.trials;
      exemplar.antennas = request.antennas;
      exemplar.id = request.id;
      exemplar.seed = request.seed;
      exemplar.snr_db = request.snr_db;
      exemplar.medium_loss_db = request.medium_loss_db;
      exemplar.t_s = t;
      exemplar.queue_wait_s = queue_wait_s;
      exemplar.service_s = response.service_s;
      exemplar.stages = std::min<std::uint32_t>(stages.count,
                                                obs::Exemplar::kMaxStages);
      for (std::uint32_t s = 0; s < exemplar.stages; ++s) {
        exemplar.stage_s[s] = stages.stage_s[s];
      }
      exemplar.response_hash = response_hash(response);
      config_.telemetry->on_complete(exemplar);
    }
    // Threshold detectors over the trailing 1 s window; latch edges so one
    // overload episode records one anomaly event, not one per completion.
    const obs::TelemetryAnomaly anomaly = config_.telemetry->check_anomalies(t);
    const bool latched = anomaly_latched_.load(std::memory_order_relaxed);
    if (anomaly.any() && !latched) {
      anomaly_latched_.store(true, std::memory_order_relaxed);
      anomalies_.fetch_add(1, std::memory_order_relaxed);
      obs::count("svc.anomalies");
      if (config_.flight != nullptr) {
        const std::uint64_t detail = (anomaly.shed_storm ? 1u : 0u) |
                                     (anomaly.queue_saturated ? 2u : 0u);
        config_.flight->record(ring, obs::FlightEvent::kAnomaly, t,
                               request.id, detail);
      }
    } else if (!anomaly.any() && latched) {
      anomaly_latched_.store(false, std::memory_order_relaxed);
    }
  }

  // Retire BEFORE the sink runs: a closed-loop submitter that wakes on the
  // sink's completion signal must see this request already out of flight,
  // or its concurrency window would transiently overshoot by one.
  const std::size_t inflight_after =
      inflight_.fetch_sub(1, std::memory_order_relaxed) - 1;
  obs::gauge_set("svc.inflight", static_cast<double>(inflight_after));
  completed_.fetch_add(1, std::memory_order_relaxed);

  if (sink_) sink_(response);
  pool_.release(std::move(response.per_trial_elapsed_s));
}

}  // namespace ivnet::svc
