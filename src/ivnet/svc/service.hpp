// Always-on inventory service: the request/response front-end over the
// simulation stack.
//
// Every workload in this repo used to be a batch bench or campaign; the
// paper's reader, though, is a persistent per-patient device serving a
// stream of decode / inventory / re-plan requests. InventoryService is that
// serving shape:
//
//   submit() --> bounded lock-free MPMC ring (svc/mpmc_queue.hpp)
//            --> fixed worker pool (dedicated threads; one DspWorkspace
//                arena per worker, requests executed through the batched
//                session pipeline of sim/batch_pipeline.hpp)
//            --> completion sink (one std::function installed at
//                construction; response payload buffers recycle through a
//                service-lifetime BufferPool)
//
// Shedding policy: submit() never blocks. A full ring rejects the request
// (returns false, counts svc.rejected) — open-loop load beyond saturation
// sheds at the front door instead of growing an unbounded backlog. Submits
// after stop() are refused and counted separately (svc.rejected.stopped),
// so "rejected" always means "shed by the bounded queue".
//
// Shutdown protocol (deterministic drain): stop() closes the front door,
// releases one pause-gate credit per still-outstanding kPause (so a worker
// parked on the gate can be joined and queued pauses cannot hang the
// drain), releases one shutdown credit per worker on the queue semaphore,
// and joins. A worker treats an empty pop as a shutdown credit ONLY once
// stop() has set the stopping flag; before that an empty pop just means a
// producer is mid-publish (see mpmc_queue.hpp) and the worker retries, so
// the pool can never shrink mid-run. Every request accepted before stop()
// is executed before its worker exits. After the join, stop() drains any
// element a racing submit slipped past the closed door, publishes the
// arena/bufferpool high-water gauges, trims the pools, and zeroes
// svc.inflight. stop() is idempotent; the destructor calls it.
//
// Determinism: a response is a pure function of the request fields and the
// service's link-config template — worker count, queue depth, and arrival
// timing never change response bytes. Request trials run through
// run_session_batch with per-trial Rng::stream seeds (stride 1, offset 0),
// so a decode request's outcome is bitwise-identical to running the scalar
// oracle run_impaired_link_session trial-by-trial. determinism_test pins
// the service-mode metrics snapshot (counters + sim-valued histograms)
// byte-identical across reruns and across 1/2/8 workers; only wall-time-
// valued metrics (svc.queue_wait, svc.service_time) and scheduling-
// dependent gauges are outside that contract.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <semaphore>
#include <thread>
#include <vector>

#include "ivnet/impair/link_session.hpp"
#include "ivnet/signal/dsp_workspace.hpp"
#include "ivnet/svc/buffer_pool.hpp"
#include "ivnet/svc/mpmc_queue.hpp"

namespace ivnet::svc {

enum class RequestKind : std::uint8_t {
  kDecode = 0,     ///< independent single-tag sessions (trials of them)
  kInventory = 1,  ///< adaptive-Q inventory dialogues (heavier recovery)
  kPlan = 2,       ///< small frequency-plan optimization (Eq. 10 search)
  kPause = 3,      ///< test/bench gate: worker blocks until release_pause()
};

/// One service request. POD so it travels through the MPMC ring by value.
struct Request {
  RequestKind kind = RequestKind::kDecode;
  std::uint16_t antennas = 1;
  std::uint32_t trials = 1;          ///< sessions to run (decode/inventory)
  std::uint64_t id = 0;              ///< caller correlation id
  std::uint64_t seed = 0;            ///< Rng::stream base for the trials
  double snr_db = 20.0;
  double medium_loss_db = 0.0;
  /// Stamped by submit(); queue wait is measured from this instant.
  std::chrono::steady_clock::time_point accepted_at{};
};

/// One completed request, handed to the completion sink.
struct Response {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::kDecode;
  std::uint32_t trials = 0;
  std::uint32_t succeeded = 0;      ///< CRC-clean sessions (kPlan: 1)
  double sim_elapsed_s = 0.0;       ///< summed simulated air time
  double plan_score = 0.0;          ///< kPlan: objective of the winner
  double queue_wait_s = 0.0;        ///< wall: accept -> worker pickup
  double service_s = 0.0;           ///< wall: execution on the worker
  /// Per-trial simulated elapsed seconds, trial order. Pooled storage: the
  /// service recycles it after the sink returns, so read it inside the sink
  /// (or move it out and forgo the recycling).
  std::vector<double> per_trial_elapsed_s;
};

struct ServiceConfig {
  std::size_t workers = 4;
  std::size_t queue_depth = 256;  ///< rounded up to a power of two
  /// Link template; snr_db / num_antennas / medium_loss_db and the
  /// kind-specific recovery come from each request (link_config_for).
  ImpairedLinkConfig link;
  std::size_t batch_size = 0;  ///< 0 defers to default_batch_size()
};

/// The exact per-request link config a worker executes — exposed so tests
/// can replay a request against the scalar oracle and memcmp the outcome.
ImpairedLinkConfig link_config_for(const ServiceConfig& config,
                                   const Request& request);

class InventoryService {
 public:
  using CompletionSink = std::function<void(const Response&)>;

  /// Spawns the worker pool immediately. `sink` is invoked once per
  /// completed request, possibly concurrently from different workers; it
  /// must be thread-safe. A null sink is allowed (fire-and-forget).
  InventoryService(ServiceConfig config, CompletionSink sink);
  ~InventoryService();  // stop()

  InventoryService(const InventoryService&) = delete;
  InventoryService& operator=(const InventoryService&) = delete;

  /// Non-blocking. False when the bounded queue is full (request shed,
  /// svc.rejected) or the service is stopping (svc.rejected.stopped).
  bool submit(Request request);

  /// Drain the queue, quiesce the workers, publish the arena gauges.
  /// Outstanding kPause requests (parked on or queued ahead of the gate)
  /// are force-released, so an unbalanced release_pause() cannot hang
  /// shutdown. Idempotent. Callers must not race submit() against stop():
  /// a submit that wins the acceptance check while stop() runs may be
  /// executed by the drain pass or dropped, and its accounting is then
  /// unspecified.
  void stop();

  /// Unblock `count` kPause requests (test/bench gating).
  void release_pause(std::size_t count = 1);

  // -- Introspection (monotonic counters are exact; inflight is racy) -----
  std::uint64_t accepted() const { return accepted_.load(std::memory_order_relaxed); }
  std::uint64_t completed() const { return completed_.load(std::memory_order_relaxed); }
  std::uint64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }
  std::size_t inflight() const { return inflight_.load(std::memory_order_relaxed); }
  std::size_t inflight_peak() const { return inflight_peak_.load(std::memory_order_relaxed); }
  std::size_t queue_capacity() const { return queue_.capacity(); }
  std::size_t worker_count() const { return workers_.size(); }
  const BufferPool& buffer_pool() const { return pool_; }
  const ServiceConfig& config() const { return config_; }

 private:
  struct Worker {
    std::thread thread;
    DspWorkspace workspace;
  };

  void worker_loop(std::size_t index);
  void handle(Request request, DspWorkspace& workspace);
  Response execute(const Request& request, DspWorkspace& workspace);

  ServiceConfig config_;
  CompletionSink sink_;
  MpmcRingQueue<Request> queue_;
  /// Credits mirror queue occupancy: one release per accepted request, plus
  /// one shutdown credit per worker from stop(). An empty pop only means
  /// "shutdown credit" once stopping_ is set; before that it can be a
  /// producer mid-publish, and the credit-holding worker retries the pop.
  std::counting_semaphore<> ready_{0};
  std::counting_semaphore<> pause_gate_{0};
  /// Pause bookkeeping so stop() can unblock the gate: accepted kPause
  /// requests minus gate acquisitions that completed = pauses still parked
  /// on (or queued ahead of) the gate. stop() releases that many credits
  /// before joining, so an unreleased pause can never hang shutdown.
  std::atomic<std::uint64_t> pause_submitted_{0};
  std::atomic<std::uint64_t> pause_passed_{0};
  std::vector<Worker> workers_;

  std::atomic<bool> stopping_{false};
  std::mutex stop_mutex_;
  bool stopped_ = false;  // guarded by stop_mutex_

  BufferPool pool_;
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::size_t> inflight_peak_{0};
};

}  // namespace ivnet::svc
