// Always-on inventory service: the request/response front-end over the
// simulation stack.
//
// Every workload in this repo used to be a batch bench or campaign; the
// paper's reader, though, is a persistent per-patient device serving a
// stream of decode / inventory / re-plan requests. InventoryService is that
// serving shape:
//
//   submit() --> bounded lock-free MPMC ring (svc/mpmc_queue.hpp)
//            --> fixed worker pool (dedicated threads; one DspWorkspace
//                arena per worker, requests executed through the batched
//                session pipeline of sim/batch_pipeline.hpp)
//            --> completion sink (one std::function installed at
//                construction; response payload buffers recycle through a
//                service-lifetime BufferPool)
//
// Shedding policy: submit() never blocks. A full ring rejects the request
// (returns false, counts svc.rejected) — open-loop load beyond saturation
// sheds at the front door instead of growing an unbounded backlog. Submits
// after stop() are refused and counted separately (svc.rejected.stopped),
// so "rejected" always means "shed by the bounded queue".
//
// Shutdown protocol (deterministic drain): stop() closes the front door,
// releases one pause-gate credit per still-outstanding kPause (so a worker
// parked on the gate can be joined and queued pauses cannot hang the
// drain), releases one shutdown credit per worker on the queue semaphore,
// and joins. A worker treats an empty pop as a shutdown credit ONLY once
// stop() has set the stopping flag; before that an empty pop just means a
// producer is mid-publish (see mpmc_queue.hpp) and the worker retries, so
// the pool can never shrink mid-run. Every request accepted before stop()
// is executed before its worker exits. After the join, stop() drains any
// element a racing submit slipped past the closed door, publishes the
// arena/bufferpool high-water gauges, trims the pools, and zeroes
// svc.inflight. stop() is idempotent; the destructor calls it.
//
// Determinism: a response is a pure function of the request fields and the
// service's link-config template — worker count, queue depth, and arrival
// timing never change response bytes. Request trials run through
// run_session_batch with per-trial Rng::stream seeds (stride 1, offset 0),
// so a decode request's outcome is bitwise-identical to running the scalar
// oracle run_impaired_link_session trial-by-trial. determinism_test pins
// the service-mode metrics snapshot (counters + sim-valued histograms)
// byte-identical across reruns and across 1/2/8 workers; only wall-time-
// valued metrics (svc.queue_wait, svc.service_time) and scheduling-
// dependent gauges are outside that contract.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <semaphore>
#include <thread>
#include <vector>

#include "ivnet/impair/link_session.hpp"
#include "ivnet/signal/dsp_workspace.hpp"
#include "ivnet/svc/buffer_pool.hpp"
#include "ivnet/svc/mpmc_queue.hpp"

namespace ivnet::obs {
class ServiceTelemetry;
class FlightRecorder;
}  // namespace ivnet::obs

namespace ivnet::svc {

enum class RequestKind : std::uint8_t {
  kDecode = 0,     ///< independent single-tag sessions (trials of them)
  kInventory = 1,  ///< adaptive-Q inventory dialogues (heavier recovery)
  kPlan = 2,       ///< small frequency-plan optimization (Eq. 10 search)
  kPause = 3,      ///< test/bench gate: worker blocks until release_pause()
};

/// One service request. POD so it travels through the MPMC ring by value.
struct Request {
  RequestKind kind = RequestKind::kDecode;
  std::uint16_t antennas = 1;
  std::uint32_t trials = 1;          ///< sessions to run (decode/inventory)
  std::uint64_t id = 0;              ///< caller correlation id
  std::uint64_t seed = 0;            ///< Rng::stream base for the trials
  double snr_db = 20.0;
  double medium_loss_db = 0.0;
  /// Offered (schedule) time of the arrival in seconds — the sim-clock
  /// timestamp telemetry attributes this request to when the service runs
  /// with TelemetryClock::kSim. Stamped by generate_schedule(); ignored in
  /// wall-clock mode.
  double offered_t_s = 0.0;
  /// Stamped by submit(); queue wait is measured from this instant.
  std::chrono::steady_clock::time_point accepted_at{};
};

/// One completed request, handed to the completion sink.
struct Response {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::kDecode;
  std::uint32_t trials = 0;
  std::uint32_t succeeded = 0;      ///< CRC-clean sessions (kPlan: 1)
  double sim_elapsed_s = 0.0;       ///< summed simulated air time
  double plan_score = 0.0;          ///< kPlan: objective of the winner
  double queue_wait_s = 0.0;        ///< wall: accept -> worker pickup
  double service_s = 0.0;           ///< wall: execution on the worker
  /// Per-trial simulated elapsed seconds, trial order. Pooled storage: the
  /// service recycles it after the sink returns, so read it inside the sink
  /// (or move it out and forgo the recycling).
  std::vector<double> per_trial_elapsed_s;
};

/// Which clock stamps telemetry ingests (windows, exemplars, flight
/// events). kWall uses wall seconds since service construction — the live
/// operations view. kSim uses each request's offered_t_s — with a
/// materialized schedule, window counts and exemplar identities become
/// pure functions of the schedule (reproducible run-to-run); latency
/// VALUES inside the windows are wall measurements either way.
enum class TelemetryClock : std::uint8_t { kWall = 0, kSim = 1 };

struct ServiceConfig {
  std::size_t workers = 4;
  std::size_t queue_depth = 256;  ///< rounded up to a power of two
  /// Link template; snr_db / num_antennas / medium_loss_db and the
  /// kind-specific recovery come from each request (link_config_for).
  ImpairedLinkConfig link;
  std::size_t batch_size = 0;  ///< 0 defers to default_batch_size()
  /// Optional live-telemetry bundle (obs/telemetry.hpp). Not owned; must
  /// outlive the service. Null = zero telemetry work on the hot path.
  obs::ServiceTelemetry* telemetry = nullptr;
  /// Optional flight recorder (obs/flight_recorder.hpp). Not owned; ring 0
  /// is the submit path, ring 1 + w is worker w — size it with
  /// workers + 1 rings. Null = no events recorded.
  obs::FlightRecorder* flight = nullptr;
  TelemetryClock telemetry_clock = TelemetryClock::kWall;
  /// Journal backing the kPlan plan store (sim/planner plan_frequencies):
  /// identical (antennas, seed) re-plans are memo hits either way, and a
  /// non-empty path makes them survive process restarts. Empty = in-memory
  /// memoization only.
  std::string plan_journal_path;
};

/// The exact per-request link config a worker executes — exposed so tests
/// can replay a request against the scalar oracle and memcmp the outcome.
ImpairedLinkConfig link_config_for(const ServiceConfig& config,
                                   const Request& request);

/// Order-independent per-response fingerprint: a SplitMix64 chain over
/// (id, kind, trials, succeeded, sim_elapsed bits, plan_score bits) — the
/// payload fields that are pure functions of (request, seed). Wall timings
/// are excluded. XORing these across responses gives the load-harness
/// digest; a single hash is the reproducibility anchor `ivnet
/// replay-exemplar` checks.
std::uint64_t response_hash(const Response& response);

/// Wall spans of the execution stages of one request, captured by
/// execute_request: kPlan records one stage (the optimize call);
/// decode/inventory record one per batch chunk, chunks beyond kMax folded
/// into the last.
struct StageTimings {
  static constexpr std::size_t kMax = 4;
  double stage_s[kMax] = {0.0, 0.0, 0.0, 0.0};
  std::uint32_t count = 0;

  void add(double s) {
    if (count < kMax) {
      stage_s[count++] = s;
    } else {
      stage_s[kMax - 1] += s;
    }
  }
};

/// Flight-recorder context for execute_request: when `flight` is set, the
/// executor emits stage-enter/exit spans per chunk and retry/brownout
/// instants per trial onto `ring`, timestamped t0_s + wall-elapsed.
struct FlightHook {
  obs::FlightRecorder* flight = nullptr;
  std::size_t ring = 0;
  double t0_s = 0.0;  ///< telemetry-clock time at execution start
};

/// Execute one request synchronously — the exact code path a service
/// worker runs, exposed so `ivnet replay-exemplar` and tests re-execute a
/// captured request deterministically. The response is a pure function of
/// (config.link, config.batch_size, request): worker count, queue depth,
/// and arrival order never change response bytes. kPause is a no-op here
/// (the gate is service state). `storage` seeds per_trial_elapsed_s
/// (pass a pooled buffer to avoid the allocation); wall timings in the
/// response are left zero — the caller owns queue_wait_s/service_s.
Response execute_request(const ServiceConfig& config, const Request& request,
                         DspWorkspace& workspace,
                         std::vector<double> storage = {},
                         StageTimings* stages = nullptr,
                         const FlightHook* hook = nullptr);

class InventoryService {
 public:
  using CompletionSink = std::function<void(const Response&)>;

  /// Spawns the worker pool immediately. `sink` is invoked once per
  /// completed request, possibly concurrently from different workers; it
  /// must be thread-safe. A null sink is allowed (fire-and-forget).
  InventoryService(ServiceConfig config, CompletionSink sink);
  ~InventoryService();  // stop()

  InventoryService(const InventoryService&) = delete;
  InventoryService& operator=(const InventoryService&) = delete;

  /// Non-blocking. False when the bounded queue is full (request shed,
  /// svc.rejected) or the service is stopping (svc.rejected.stopped).
  bool submit(Request request);

  /// Drain the queue, quiesce the workers, publish the arena gauges.
  /// Outstanding kPause requests (parked on or queued ahead of the gate)
  /// are force-released, so an unbalanced release_pause() cannot hang
  /// shutdown. Idempotent. Callers must not race submit() against stop():
  /// a submit that wins the acceptance check while stop() runs may be
  /// executed by the drain pass or dropped, and its accounting is then
  /// unspecified.
  void stop();

  /// Unblock `count` kPause requests (test/bench gating).
  void release_pause(std::size_t count = 1);

  // -- Introspection (monotonic counters are exact; inflight is racy) -----
  std::uint64_t accepted() const { return accepted_.load(std::memory_order_relaxed); }
  std::uint64_t completed() const { return completed_.load(std::memory_order_relaxed); }
  std::uint64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }
  std::size_t inflight() const { return inflight_.load(std::memory_order_relaxed); }
  std::size_t inflight_peak() const { return inflight_peak_.load(std::memory_order_relaxed); }
  /// Distinct anomaly episodes latched by the rolling-window detectors
  /// (config.telemetry required). An episode is one transition from calm
  /// to anomalous; it ends when a completion observes a calm window again.
  std::uint64_t anomalies() const { return anomalies_.load(std::memory_order_relaxed); }
  std::size_t queue_capacity() const { return queue_.capacity(); }
  std::size_t worker_count() const { return workers_.size(); }
  const BufferPool& buffer_pool() const { return pool_; }
  const ServiceConfig& config() const { return config_; }
  /// Seconds since construction on the wall telemetry clock — the `now_s`
  /// an external sampler should pass to the telemetry bundle's queries so
  /// its windows line up with the service's wall-mode ingest timestamps.
  double wall_time_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

 private:
  struct Worker {
    std::thread thread;
    DspWorkspace workspace;
  };

  void worker_loop(std::size_t index);
  /// `ring` is the flight-recorder ring (1 + worker index; stop()'s inline
  /// drain reuses worker 0's).
  void handle(Request request, DspWorkspace& workspace, std::size_t ring);
  /// Telemetry-clock timestamp for `request` right now: wall seconds since
  /// construction, or the request's offered_t_s in sim mode.
  double telemetry_now(const Request& request) const;

  ServiceConfig config_;
  CompletionSink sink_;
  MpmcRingQueue<Request> queue_;
  /// Credits mirror queue occupancy: one release per accepted request, plus
  /// one shutdown credit per worker from stop(). An empty pop only means
  /// "shutdown credit" once stopping_ is set; before that it can be a
  /// producer mid-publish, and the credit-holding worker retries the pop.
  std::counting_semaphore<> ready_{0};
  std::counting_semaphore<> pause_gate_{0};
  /// Pause bookkeeping so stop() can unblock the gate: accepted kPause
  /// requests minus gate acquisitions that completed = pauses still parked
  /// on (or queued ahead of) the gate. stop() releases that many credits
  /// before joining, so an unreleased pause can never hang shutdown.
  std::atomic<std::uint64_t> pause_submitted_{0};
  std::atomic<std::uint64_t> pause_passed_{0};
  std::vector<Worker> workers_;

  std::atomic<bool> stopping_{false};
  std::mutex stop_mutex_;
  bool stopped_ = false;  // guarded by stop_mutex_

  BufferPool pool_;
  /// Wall epoch for TelemetryClock::kWall timestamps.
  const std::chrono::steady_clock::time_point epoch_{
      std::chrono::steady_clock::now()};
  /// True while the anomaly detectors are latched; edges count episodes.
  std::atomic<bool> anomaly_latched_{false};
  std::atomic<std::uint64_t> anomalies_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::size_t> inflight_peak_{0};
};

}  // namespace ivnet::svc
