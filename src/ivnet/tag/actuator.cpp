#include "ivnet/tag/actuator.hpp"

#include <algorithm>

namespace ivnet {
namespace {

std::size_t word(ActuatorWord w) { return static_cast<std::size_t>(w); }

}  // namespace

DrugDeliveryActuator::DrugDeliveryActuator(ActuatorConfig config)
    : config_(config),
      reservoir_(config.energy_per_tenth_ul_j, config.leakage_w) {}

double DrugDeliveryActuator::reservoir_j() const {
  return reservoir_.stored_j();
}

void DrugDeliveryActuator::publish(gen2::TagMemory& memory) {
  memory.write(gen2::MemBank::kUser, word(ActuatorWord::kDoseCount),
               dose_count_);
  memory.write(gen2::MemBank::kUser, word(ActuatorWord::kTotalDelivered),
               static_cast<std::uint16_t>(
                   std::min<std::uint32_t>(total_tenths_, 0xFFFF)));
  memory.write(gen2::MemBank::kUser, word(ActuatorWord::kStatus),
               static_cast<std::uint16_t>(status_));
}

bool DrugDeliveryActuator::step(double dt_s, double harvested_w,
                                gen2::TagMemory& memory) {
  now_s_ += dt_s;

  // Pick up a new request from the command word.
  const auto request =
      memory.read(gen2::MemBank::kUser, word(ActuatorWord::kDoseRequest));
  if (pending_tenths_ == 0 && request && *request > 0) {
    if (now_s_ - last_dose_s_ < config_.min_interval_s) {
      status_ = ActuatorStatus::kRateLimited;
      memory.write(gen2::MemBank::kUser, word(ActuatorWord::kDoseRequest), 0);
    } else if (total_tenths_ + *request > config_.max_total_tenths) {
      status_ = ActuatorStatus::kLimitReached;
      memory.write(gen2::MemBank::kUser, word(ActuatorWord::kDoseRequest), 0);
    } else {
      pending_tenths_ = *request;
      status_ = ActuatorStatus::kCharging;
    }
  }

  bool delivered = false;
  if (pending_tenths_ > 0) {
    // Bank energy; each completed "task" pumps 0.1 uL.
    const int pumped = reservoir_.step(harvested_w, dt_s);
    if (pumped > 0) {
      const auto done = static_cast<std::uint16_t>(
          std::min<int>(pumped, pending_tenths_));
      pending_tenths_ = static_cast<std::uint16_t>(pending_tenths_ - done);
      total_tenths_ += done;
      if (pending_tenths_ == 0) {
        ++dose_count_;
        last_dose_s_ = now_s_;
        status_ = ActuatorStatus::kDelivered;
        memory.write(gen2::MemBank::kUser, word(ActuatorWord::kDoseRequest),
                     0);
        delivered = true;
      }
    }
  } else {
    if (status_ == ActuatorStatus::kCharging) status_ = ActuatorStatus::kIdle;
    // Idle: harvested power feeds the chip, not the pump; the reservoir
    // only leaks.
    reservoir_.step(0.0, dt_s);
  }

  publish(memory);
  return delivered;
}

}  // namespace ivnet
