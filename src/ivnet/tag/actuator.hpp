// Bioactuator: the paper's second device class (Sec. 1 — devices "swallowed
// or injected into the human body and used for ... delivering drugs").
//
// A drug-delivery actuator is a tag whose USER memory exposes a command
// word: the reader Writes a dose request; the actuator executes it when —
// and only when — the harvester has banked the actuation energy (pumping
// costs orders of magnitude more than telemetry). Dosing is rate-limited
// and totalized for safety, and every state transition is reflected back
// into memory so the reader can audit it with an ordinary Read.
//
// USER-bank layout (extends tag/sensor.hpp's words 0-3):
//   word 4: dose request, 0.1 uL units (write by reader; 0 = none)
//   word 5: doses delivered (count)
//   word 6: total delivered, 0.1 uL units
//   word 7: status (enum ActuatorStatus)
#pragma once

#include <cstdint>

#include "ivnet/gen2/memory.hpp"
#include "ivnet/harvester/energy.hpp"

namespace ivnet {

/// USER-bank addresses of the actuation interface.
enum class ActuatorWord : std::uint8_t {
  kDoseRequest = 4,
  kDoseCount = 5,
  kTotalDelivered = 6,
  kStatus = 7,
};

/// Value of the status word.
enum class ActuatorStatus : std::uint16_t {
  kIdle = 0,
  kCharging = 1,    ///< request pending, banking energy
  kDelivered = 2,   ///< last request completed
  kRateLimited = 3, ///< refused: minimum interval not elapsed
  kLimitReached = 4 ///< refused: total dose budget exhausted
};

struct ActuatorConfig {
  double energy_per_tenth_ul_j = 5e-5;  ///< pump energy per 0.1 uL
  double min_interval_s = 60.0;         ///< safety: min time between doses
  std::uint32_t max_total_tenths = 500; ///< lifetime budget (50 uL)
  double leakage_w = 1e-8;              ///< standby drain on the reservoir
};

/// Drug-delivery actuator bound to a tag's memory.
class DrugDeliveryActuator {
 public:
  explicit DrugDeliveryActuator(ActuatorConfig config);

  /// Advance time by `dt_s` with `harvested_w` of rail power available, and
  /// act on any dose request present in `memory`. Returns true if a dose
  /// completed during this step.
  bool step(double dt_s, double harvested_w, gen2::TagMemory& memory);

  ActuatorStatus status() const { return status_; }
  std::uint16_t doses_delivered() const { return dose_count_; }
  std::uint32_t total_delivered_tenths() const { return total_tenths_; }
  double reservoir_j() const;

 private:
  void publish(gen2::TagMemory& memory);

  ActuatorConfig config_;
  EnergyAccumulator reservoir_;
  ActuatorStatus status_ = ActuatorStatus::kIdle;
  std::uint16_t dose_count_ = 0;
  std::uint32_t total_tenths_ = 0;
  double now_s_ = 0.0;
  double last_dose_s_ = -1e18;
  std::uint16_t pending_tenths_ = 0;
};

}  // namespace ivnet
