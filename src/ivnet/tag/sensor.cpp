#include "ivnet/tag/sensor.hpp"

#include <algorithm>
#include <cmath>

#include "ivnet/common/units.hpp"

namespace ivnet {

double VitalSignModel::value_at(double t_s, Rng& rng) const {
  return baseline + drift_per_s * t_s +
         breathing_amp * std::sin(kTwoPi * breathing_hz * t_s) +
         rng.normal(0.0, noise_sigma);
}

GastricSensor::GastricSensor(std::uint64_t seed) : rng_(seed) {
  temperature_model = VitalSignModel{
      .baseline = 38.6,  // porcine core temperature [C]
      .drift_per_s = 0.0,
      .noise_sigma = 0.02,
      .breathing_amp = 0.05,
      .breathing_hz = 0.25,
  };
  ph_model = VitalSignModel{
      .baseline = 2.2,  // fasted gastric pH
      .drift_per_s = 0.0,
      .noise_sigma = 0.03,
      .breathing_amp = 0.0,
  };
  pressure_model = VitalSignModel{
      .baseline = 8.0,  // intragastric pressure [mmHg]
      .drift_per_s = 0.0,
      .noise_sigma = 0.4,
      .breathing_amp = 2.0,  // respiratory pressure swing
      .breathing_hz = 0.25,
  };
}

std::uint16_t GastricSensor::encode_temperature(double celsius) {
  const double clamped = std::clamp(celsius, 0.0, 65.0);
  return static_cast<std::uint16_t>(std::lround(clamped * 100.0));
}

double GastricSensor::decode_temperature(std::uint16_t word) {
  return static_cast<double>(word) / 100.0;
}

std::uint16_t GastricSensor::encode_ph(double ph) {
  const double clamped = std::clamp(ph, 0.0, 14.0);
  return static_cast<std::uint16_t>(std::lround(clamped * 100.0));
}

double GastricSensor::decode_ph(std::uint16_t word) {
  return static_cast<double>(word) / 100.0;
}

std::uint16_t GastricSensor::encode_pressure(double mmhg) {
  const double clamped = std::clamp(mmhg, 0.0, 400.0);
  return static_cast<std::uint16_t>(std::lround(clamped * 10.0));
}

double GastricSensor::decode_pressure(std::uint16_t word) {
  return static_cast<double>(word) / 10.0;
}

bool GastricSensor::publish(double t_s, gen2::TagMemory& memory) {
  using gen2::MemBank;
  const bool ok =
      memory.write(MemBank::kUser,
                   static_cast<std::size_t>(SensorWord::kTemperature),
                   encode_temperature(temperature_model.value_at(t_s, rng_))) &&
      memory.write(MemBank::kUser, static_cast<std::size_t>(SensorWord::kPh),
                   encode_ph(ph_model.value_at(t_s, rng_))) &&
      memory.write(MemBank::kUser,
                   static_cast<std::size_t>(SensorWord::kPressure),
                   encode_pressure(pressure_model.value_at(t_s, rng_)));
  if (!ok) return false;
  ++counter_;
  return memory.write(MemBank::kUser,
                      static_cast<std::size_t>(SensorWord::kCounter),
                      counter_);
}

}  // namespace ivnet
