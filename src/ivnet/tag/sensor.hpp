// In-vivo sensor front ends that publish measurements into the tag's USER
// memory bank — the payloads the paper's applications fetch: "monitoring
// internal human vital signs" and gastric physiologic status (Sec. 1,
// ref [61]).
//
// Word layout in USER memory (one word = 16 bits):
//   word 0: core temperature, centi-kelvin above 273.15 K (37.0 C -> 3700)
//   word 1: pH x 100                       (gastric ~1.5-3.5 -> 150-350)
//   word 2: pressure, 0.1 mmHg units
//   word 3: monotonically increasing sample counter
#pragma once

#include <cstdint>

#include "ivnet/common/rng.hpp"
#include "ivnet/gen2/memory.hpp"

namespace ivnet {

/// USER-bank word addresses of the published quantities.
enum class SensorWord : std::uint8_t {
  kTemperature = 0,
  kPh = 1,
  kPressure = 2,
  kCounter = 3,
};

/// A slowly-varying physiological signal generator.
struct VitalSignModel {
  double baseline = 0.0;      ///< mean value (physical units)
  double drift_per_s = 0.0;   ///< slow deterministic drift
  double noise_sigma = 0.0;   ///< per-sample measurement noise
  double breathing_amp = 0.0; ///< respiratory modulation amplitude
  double breathing_hz = 0.2;  ///< ~12 breaths/min

  /// Signal value at time t.
  double value_at(double t_s, Rng& rng) const;
};

/// A gastric physiologic sensor (temperature, pH, pressure) publishing into
/// a TagMemory.
class GastricSensor {
 public:
  /// Default models for a resting large mammal.
  explicit GastricSensor(std::uint64_t seed);

  /// Sample all channels at time `t_s` and write them into `memory`'s USER
  /// bank. Returns false if USER memory is locked/too small.
  bool publish(double t_s, gen2::TagMemory& memory);

  /// Encodings used by publish (exposed for the reader side).
  static std::uint16_t encode_temperature(double celsius);
  static double decode_temperature(std::uint16_t word);
  static std::uint16_t encode_ph(double ph);
  static double decode_ph(std::uint16_t word);
  static std::uint16_t encode_pressure(double mmhg);
  static double decode_pressure(std::uint16_t word);

  std::uint16_t samples_published() const { return counter_; }

  VitalSignModel temperature_model;
  VitalSignModel ph_model;
  VitalSignModel pressure_model;

 private:
  Rng rng_;
  std::uint16_t counter_ = 0;
};

}  // namespace ivnet
