#include "ivnet/tag/tag_device.hpp"

#include <cmath>
#include <utility>

#include "ivnet/gen2/miller.hpp"

namespace ivnet {
namespace {

gen2::Bits default_epc(std::uint32_t tail) {
  gen2::Bits epc;
  gen2::append_bits(epc, 0x30394038u, 32);  // SGTIN-96 header-ish pattern
  gen2::append_bits(epc, 0x1db0109cu, 32);
  gen2::append_bits(epc, tail, 32);
  return epc;
}

}  // namespace

TagConfig standard_tag() {
  TagConfig config;
  config.antenna = antennas::standard_tag_antenna();
  config.harvester = HarvesterConfig{
      .stages = 4,
      .vth_v = 0.30,
      .storage_cap_f = 220e-12,
      .source_ohm = 2000.0,
      .load_ohm = 200e3,
      .operate_voltage_v = 1.0,
  };
  config.input_resistance_ohm = 1500.0;
  config.epc = default_epc(0x000001AD);
  config.seed = 0xADu;
  return config;
}

TagConfig miniature_tag() {
  TagConfig config;
  config.antenna = antennas::miniature_tag_antenna();
  // Same chip family, but the miniature package pays matching losses: a
  // higher effective threshold and less efficient charge path.
  config.harvester = HarvesterConfig{
      .stages = 4,
      .vth_v = 0.30,
      .storage_cap_f = 100e-12,
      .source_ohm = 2500.0,
      .load_ohm = 200e3,
      .operate_voltage_v = 1.0,
  };
  config.input_resistance_ohm = 1500.0;
  config.wet_matching_gain_db = 8.3;
  config.epc = default_epc(0x0000D054);
  config.seed = 0x0Du;
  return config;
}

TagDevice::TagDevice(TagConfig config)
    : config_(std::move(config)),
      harvester_(config_.harvester),
      sm_(config_.epc, config_.seed) {}

double TagDevice::power_to_voltage(double power_w) const {
  return std::sqrt(2.0 * power_w * config_.input_resistance_ohm);
}

TagDownlinkResult TagDevice::receive_downlink(
    std::span<const double> envelope_v, double fs) {
  TagDownlinkResult result;
  result.harvest = harvester_.run(envelope_v, fs, rail_v_);
  rail_v_ = result.harvest.vdc.empty() ? 0.0 : result.harvest.vdc.back();

  result.powered = result.harvest.peak_vdc >=
                   config_.harvester.operate_voltage_v;
  if (!result.powered) {
    sm_.power_loss();
    return result;
  }
  sm_.power_up();

  const auto decoded = gen2::pie_decode(envelope_v, fs);
  if (!decoded.valid || decoded.bits.empty()) return result;
  result.command_decoded = true;
  result.reply = sm_.on_command(decoded.bits);
  return result;
}

std::vector<double> TagDevice::backscatter_reflection(const gen2::Bits& reply,
                                                      double fs) const {
  // Replies use whatever modulation the last Query's M field requested
  // (FM0 in the paper's prototype; Miller modes for deep-tissue margins).
  const auto mode = sm_.uplink_modulation();
  auto samples =
      mode == gen2::Miller::kFm0
          ? gen2::fm0_modulate(reply, config_.blf_hz, fs)
          : gen2::miller_modulate(mode, reply, config_.blf_hz, fs);
  const double half_swing = config_.backscatter_depth / 2.0;
  for (auto& s : samples) s *= half_swing;
  return samples;
}

void TagDevice::power_loss() {
  rail_v_ = 0.0;
  sm_.power_loss();
}

}  // namespace ivnet
