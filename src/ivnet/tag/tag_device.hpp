// A complete battery-free backscatter tag: antenna aperture (Eq. 3) ->
// N-stage harvester with diode threshold (Eq. 1) -> envelope-detector Gen2
// demodulator -> FM0 backscatter modulator.
//
// Two calibrated presets mirror the paper's devices (Sec. 5(c)): the
// Avery Dennison AD-238u8 standard tag and the Xerafy Dash-On XS miniature
// tag. Their antenna apertures and chip sensitivities set where power-up
// fails — the effect every figure in the evaluation hinges on.
#pragma once

#include <optional>
#include <vector>

#include "ivnet/gen2/fm0.hpp"
#include "ivnet/gen2/pie.hpp"
#include "ivnet/gen2/tag_sm.hpp"
#include "ivnet/harvester/harvester.hpp"
#include "ivnet/rf/antenna.hpp"

namespace ivnet {

/// Static description of a tag model.
struct TagConfig {
  Antenna antenna = antennas::standard_tag_antenna();
  HarvesterConfig harvester;
  double input_resistance_ohm = 1500.0;  ///< chip RF input resistance
  /// Passive voltage boost of the antenna-chip matching network (the L-match
  /// Q-gain every UHF tag uses to lift the antenna voltage over V_th).
  double matching_voltage_gain = 2.2;
  /// Matching shift [dB, power] applied when the tag's test tube is immersed
  /// in a high-permittivity medium (eps_r > 20). The miniature Dash-On XS is
  /// a ceramic hard tag designed for high-permittivity (on-metal) backing:
  /// immersion IMPROVES its matching; the air-tuned standard dipole is
  /// unaffected inside its tube.
  double wet_matching_gain_db = 0.0;
  double backscatter_depth = 0.8;  ///< reflection-coefficient swing |dGamma|
  double blf_hz = 40e3;            ///< backscatter link frequency
  gen2::Bits epc;                  ///< tag identity (96 bits)
  std::uint64_t seed = 1;          ///< RN16 generator seed
};

/// The paper's standard tag (1.4 cm x 7 cm).
TagConfig standard_tag();

/// The paper's miniature tag (1.2 cm x 0.3 cm x 0.22 cm).
TagConfig miniature_tag();

/// Result of exposing the tag to a downlink window.
struct TagDownlinkResult {
  bool powered = false;            ///< rail reached the operate voltage
  bool command_decoded = false;    ///< PIE decode succeeded
  std::optional<gen2::Bits> reply; ///< bits the tag will backscatter
  HarvestResult harvest;           ///< rail trace for inspection
};

/// Runtime tag instance.
class TagDevice {
 public:
  explicit TagDevice(TagConfig config);

  const TagConfig& config() const { return config_; }
  const Harvester& harvester() const { return harvester_; }
  gen2::TagStateMachine& state_machine() { return sm_; }
  const gen2::TagStateMachine& state_machine() const { return sm_; }

  /// Peak input-voltage amplitude [V] the chip needs before the rail can
  /// reach the operate voltage (the tag's power-up threshold).
  double min_peak_voltage() const { return harvester_.min_steady_amplitude(); }

  /// Convert available RF power [W] at the antenna to the harvester input
  /// amplitude [V]: V = sqrt(2 * P * R_in).
  double power_to_voltage(double power_w) const;

  /// Expose the tag to a received envelope (harvester input volts, sampled
  /// at `fs`): runs the rail, and if the tag powers up, attempts to decode
  /// one PIE command and feeds the state machine. Harvester state (the rail)
  /// persists across calls until power_loss().
  TagDownlinkResult receive_downlink(std::span<const double> envelope_v,
                                     double fs);

  /// The reflection-coefficient waveform for a reply: FM0-modulated between
  /// Gamma_low and Gamma_high (centered on 0, swing backscatter_depth).
  std::vector<double> backscatter_reflection(const gen2::Bits& reply,
                                             double fs) const;

  /// Drop the rail (out of field): volatile state resets.
  void power_loss();

  /// Current rail voltage.
  double rail_voltage() const { return rail_v_; }

 private:
  TagConfig config_;
  Harvester harvester_;
  gen2::TagStateMachine sm_;
  double rail_v_ = 0.0;
};

}  // namespace ivnet
