// Tests for ivnet/tag/actuator: the drug-delivery bioactuator — energy
// gating, rate limiting, lifetime budget, and the memory-mapped interface
// the reader drives with ordinary Write/Read commands.
#include <gtest/gtest.h>

#include "ivnet/tag/actuator.hpp"

namespace ivnet {
namespace {

using gen2::MemBank;
using gen2::TagMemory;

std::size_t word(ActuatorWord w) { return static_cast<std::size_t>(w); }

ActuatorConfig fast_config() {
  ActuatorConfig cfg;
  cfg.energy_per_tenth_ul_j = 1e-6;
  cfg.min_interval_s = 10.0;
  cfg.max_total_tenths = 30;
  cfg.leakage_w = 0.0;
  return cfg;
}

TEST(Actuator, IdleUntilRequested) {
  TagMemory mem;
  DrugDeliveryActuator act(fast_config());
  for (int k = 0; k < 5; ++k) {
    EXPECT_FALSE(act.step(1.0, 1e-5, mem));
  }
  EXPECT_EQ(act.status(), ActuatorStatus::kIdle);
  EXPECT_EQ(mem.read(MemBank::kUser, word(ActuatorWord::kStatus)).value(),
            static_cast<std::uint16_t>(ActuatorStatus::kIdle));
  EXPECT_EQ(act.doses_delivered(), 0);
}

TEST(Actuator, DeliversOnceEnergyBanked) {
  TagMemory mem;
  DrugDeliveryActuator act(fast_config());
  // Request 5 x 0.1 uL = 5 uJ at 1 uJ per tenth.
  mem.write(MemBank::kUser, word(ActuatorWord::kDoseRequest), 5);
  // 1 uW harvest: needs 5 seconds to bank 5 uJ.
  bool delivered = false;
  int steps = 0;
  while (!delivered && steps < 20) {
    delivered = act.step(1.0, 1e-6, mem);
    ++steps;
  }
  EXPECT_TRUE(delivered);
  EXPECT_NEAR(steps, 5, 2);
  EXPECT_EQ(act.status(), ActuatorStatus::kDelivered);
  EXPECT_EQ(act.doses_delivered(), 1);
  EXPECT_EQ(act.total_delivered_tenths(), 5u);
  // The request word was cleared and the audit words published.
  EXPECT_EQ(mem.read(MemBank::kUser, word(ActuatorWord::kDoseRequest)).value(),
            0u);
  EXPECT_EQ(mem.read(MemBank::kUser, word(ActuatorWord::kDoseCount)).value(),
            1u);
  EXPECT_EQ(
      mem.read(MemBank::kUser, word(ActuatorWord::kTotalDelivered)).value(),
      5u);
}

TEST(Actuator, ChargingStatusVisibleWhilePending) {
  TagMemory mem;
  DrugDeliveryActuator act(fast_config());
  mem.write(MemBank::kUser, word(ActuatorWord::kDoseRequest), 10);
  act.step(1.0, 1e-7, mem);  // far too little energy
  EXPECT_EQ(act.status(), ActuatorStatus::kCharging);
  EXPECT_EQ(mem.read(MemBank::kUser, word(ActuatorWord::kStatus)).value(),
            static_cast<std::uint16_t>(ActuatorStatus::kCharging));
}

TEST(Actuator, RateLimitEnforced) {
  TagMemory mem;
  DrugDeliveryActuator act(fast_config());  // min interval 10 s
  mem.write(MemBank::kUser, word(ActuatorWord::kDoseRequest), 1);
  while (!act.step(1.0, 1e-5, mem)) {
  }
  EXPECT_EQ(act.doses_delivered(), 1);
  // Immediate second request: refused.
  mem.write(MemBank::kUser, word(ActuatorWord::kDoseRequest), 1);
  act.step(1.0, 1e-5, mem);
  EXPECT_EQ(act.status(), ActuatorStatus::kRateLimited);
  EXPECT_EQ(act.doses_delivered(), 1);
  // After the interval elapses it works again.
  for (int k = 0; k < 12; ++k) act.step(1.0, 0.0, mem);
  mem.write(MemBank::kUser, word(ActuatorWord::kDoseRequest), 1);
  bool delivered = false;
  for (int k = 0; k < 10 && !delivered; ++k) {
    delivered = act.step(1.0, 1e-5, mem);
  }
  EXPECT_TRUE(delivered);
  EXPECT_EQ(act.doses_delivered(), 2);
}

TEST(Actuator, LifetimeBudgetEnforced) {
  TagMemory mem;
  ActuatorConfig cfg = fast_config();
  cfg.max_total_tenths = 8;
  cfg.min_interval_s = 0.0;
  DrugDeliveryActuator act(cfg);
  // First 8 tenths fit.
  mem.write(MemBank::kUser, word(ActuatorWord::kDoseRequest), 8);
  bool delivered = false;
  for (int k = 0; k < 20 && !delivered; ++k) {
    delivered = act.step(1.0, 1e-5, mem);
  }
  ASSERT_TRUE(delivered);
  // One more tenth exceeds the budget.
  mem.write(MemBank::kUser, word(ActuatorWord::kDoseRequest), 1);
  act.step(1.0, 1e-5, mem);
  EXPECT_EQ(act.status(), ActuatorStatus::kLimitReached);
  EXPECT_EQ(act.total_delivered_tenths(), 8u);
}

TEST(Actuator, NoEnergyNoDose) {
  TagMemory mem;
  DrugDeliveryActuator act(fast_config());
  mem.write(MemBank::kUser, word(ActuatorWord::kDoseRequest), 3);
  for (int k = 0; k < 50; ++k) {
    EXPECT_FALSE(act.step(1.0, 0.0, mem));
  }
  EXPECT_EQ(act.doses_delivered(), 0);
  EXPECT_EQ(act.status(), ActuatorStatus::kCharging);
}

TEST(Actuator, LeakageSlowsCharging) {
  TagMemory mem;
  ActuatorConfig leaky = fast_config();
  leaky.leakage_w = 0.5e-6;  // half the harvest leaks away
  DrugDeliveryActuator slow(leaky);
  DrugDeliveryActuator fast(fast_config());
  TagMemory mem2;
  mem.write(MemBank::kUser, word(ActuatorWord::kDoseRequest), 5);
  mem2.write(MemBank::kUser, word(ActuatorWord::kDoseRequest), 5);
  int slow_steps = 0, fast_steps = 0;
  while (!slow.step(1.0, 1e-6, mem) && slow_steps < 100) ++slow_steps;
  while (!fast.step(1.0, 1e-6, mem2) && fast_steps < 100) ++fast_steps;
  EXPECT_GT(slow_steps, fast_steps);
}

}  // namespace
}  // namespace ivnet
