// Batched run-to-completion pipeline: the lane engine must be
// BITWISE-identical to the scalar oracles (run_impaired_link_session,
// waterfall's ber_probe_trial) at every batch size, for every tested
// config — including ragged tails and fallback (non-lockstep) configs —
// and the lockstep Gaussian sampler must match its scalar path draw for
// draw. SessionOutcome comparisons are memcmp-strict: any padding or
// field drift fails loudly.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "ivnet/common/parallel.hpp"
#include "ivnet/common/rng.hpp"
#include "ivnet/impair/link_session.hpp"
#include "ivnet/impair/waterfall.hpp"
#include "ivnet/sim/batch_pipeline.hpp"
#include "ivnet/signal/dsp_workspace.hpp"
#include "ivnet/signal/gauss.hpp"

namespace ivnet {
namespace {

class BatchPipelineTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_parallel_threads(0);
    set_default_batch_size(0);
  }
};

// --- Lockstep Gaussian sampler ---------------------------------------------

TEST_F(BatchPipelineTest, GaussLanesBitwiseMatchScalar) {
  // Lane counts cover the pure scalar fallback (1..3), one packed group,
  // mixed packed+scalar (5, 7), and two packed groups (8).
  for (const std::size_t lanes :
       {std::size_t{1}, std::size_t{3}, signal::kGaussLanes, std::size_t{5},
        std::size_t{7}, 2 * signal::kGaussLanes}) {
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{4},
          std::size_t{5}, std::size_t{17}, std::size_t{64},
          std::size_t{131}}) {
      std::vector<std::vector<double>> scalar_out(lanes);
      std::vector<std::vector<double>> lane_out(lanes);
      std::vector<Rng> scalar_rngs;
      std::vector<Rng> lane_rngs;
      std::vector<double> sigmas(lanes);
      for (std::size_t k = 0; k < lanes; ++k) {
        scalar_rngs.push_back(Rng::stream(99, k));
        lane_rngs.push_back(Rng::stream(99, k));
        scalar_out[k].assign(n, 0.125 * static_cast<double>(k));
        lane_out[k] = scalar_out[k];
        sigmas[k] = k % 2 == 0 ? 1.0 + 0.25 * static_cast<double>(k) : 1e-3;
      }
      for (std::size_t k = 0; k < lanes; ++k) {
        signal::axpy_awgn(scalar_rngs[k], sigmas[k], scalar_out[k]);
      }
      std::vector<Rng*> rng_ptrs(lanes);
      std::vector<double*> data_ptrs(lanes);
      for (std::size_t k = 0; k < lanes; ++k) {
        rng_ptrs[k] = &lane_rngs[k];
        data_ptrs[k] = lane_out[k].data();
      }
      signal::axpy_awgn_lanes(lanes, rng_ptrs.data(), sigmas.data(),
                              data_ptrs.data(), n);
      for (std::size_t k = 0; k < lanes; ++k) {
        EXPECT_EQ(scalar_out[k], lane_out[k])
            << "lanes " << lanes << " lane " << k << " n " << n;
        // The generators must land in the same state too (exactly n draws).
        EXPECT_EQ(scalar_rngs[k].raw_state(), lane_rngs[k].raw_state())
            << "lanes " << lanes << " lane " << k << " n " << n;
      }
    }
  }
}

TEST_F(BatchPipelineTest, GaussSamplerStatistics) {
  Rng rng(4242);
  const std::size_t n = 200000;
  std::vector<double> x(n, 0.0);
  signal::axpy_awgn(rng, 1.0, x);
  double sum = 0.0, sum_sq = 0.0;
  std::size_t far_tail = 0;
  for (const double v : x) {
    sum += v;
    sum_sq += v * v;
    if (v > 4.0 || v < -4.0) ++far_tail;
  }
  const double mean = sum / static_cast<double>(n);
  const double var = sum_sq / static_cast<double>(n) - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
  // P(|z| > 4) ~ 6.3e-5: the inverse-CDF sampler actually reaches the far
  // tail (Box-Muller-style clamping or a broken tail branch would not).
  EXPECT_GT(far_tail, 0u);
  EXPECT_LT(far_tail, 60u);
}

TEST_F(BatchPipelineTest, ApplyAwgnConsumesOneDrawPerSample) {
  // The lockstep lane engine replays the scalar chain's rng positions; that
  // only works while apply_awgn consumes exactly x.size() raw draws.
  const std::size_t n = 257;
  std::vector<double> x(n, 1.0);
  Rng rng(7);
  apply_awgn(x, 20.0, rng);
  Rng expected(7);
  for (std::size_t i = 0; i < n; ++i) expected();
  EXPECT_EQ(rng.raw_state(), expected.raw_state());
}

// --- Session batches vs the scalar oracle ----------------------------------

ImpairedLinkConfig lockstep_config(double snr_db) {
  ImpairedLinkConfig link;
  link.snr_db = snr_db;
  link.recovery = RecoveryPolicy::retries(2);
  return link;
}

std::vector<SessionOutcome> scalar_sessions(const ImpairedLinkConfig& link,
                                            std::uint64_t base_seed,
                                            std::uint64_t stride,
                                            std::uint64_t offset,
                                            std::size_t n) {
  std::vector<SessionOutcome> out(n);
  for (std::size_t t = 0; t < n; ++t) {
    Rng rng = Rng::stream(base_seed, offset + stride * t);
    out[t] = session_outcome_of(run_impaired_link_session(link, rng));
  }
  return out;
}

std::vector<SessionOutcome> batched_sessions(const ImpairedLinkConfig& link,
                                             std::uint64_t base_seed,
                                             std::uint64_t stride,
                                             std::uint64_t offset,
                                             std::size_t n,
                                             std::size_t batch_size) {
  std::vector<SessionOutcome> out(n);
  batched_for(n, batch_size, [&](std::size_t lo, std::size_t hi) {
    DspWorkspace workspace;
    run_session_batch(link, base_seed, stride, offset, lo, hi, workspace,
                      [&](std::size_t t, const SessionOutcome& o) {
                        out[t] = o;
                      });
  });
  return out;
}

void expect_outcomes_memcmp_equal(const std::vector<SessionOutcome>& a,
                                  const std::vector<SessionOutcome>& b,
                                  const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(std::memcmp(&a[t], &b[t], sizeof(SessionOutcome)), 0)
        << what << " trial " << t << ": success " << int(a[t].success) << "/"
        << int(b[t].success) << " elapsed " << a[t].elapsed_s << "/"
        << b[t].elapsed_s << " retries " << a[t].retries << "/"
        << b[t].retries << " commands " << a[t].commands_sent << "/"
        << b[t].commands_sent << " stage " << int(a[t].failed_stage) << "/"
        << int(b[t].failed_stage);
  }
}

TEST_F(BatchPipelineTest, SessionBatchBitwiseMatchesScalarAcrossBatchSizes) {
  const std::size_t n = 131;  // ragged against every batch size below
  for (const double snr_db : {30.0, 6.0, 0.0}) {
    const ImpairedLinkConfig link = lockstep_config(snr_db);
    ASSERT_TRUE(lockstep_batchable(link));
    const auto reference = scalar_sessions(link, 555, 2, 1, n);
    for (const std::size_t batch : {std::size_t{1}, std::size_t{2},
                                    std::size_t{7}, std::size_t{32},
                                    std::size_t{129}}) {
      const auto got = batched_sessions(link, 555, 2, 1, n, batch);
      expect_outcomes_memcmp_equal(reference, got, "lockstep batch");
    }
  }
}

TEST_F(BatchPipelineTest, SessionBatchMatchesScalarOnFallbackConfigs) {
  // Configs the lane engine cannot run in lockstep must still produce the
  // oracle's exact outcomes through the per-lane fallback.
  std::vector<ImpairedLinkConfig> configs;
  {
    ImpairedLinkConfig link = lockstep_config(10.0);
    link.impair.phase_noise_linewidth_hz = 50.0;
    configs.push_back(link);
  }
  {
    ImpairedLinkConfig link = lockstep_config(10.0);
    link.impair.bursts.rate_hz = 200.0;
    link.impair.bursts.mean_duration_s = 1e-4;
    configs.push_back(link);
  }
  {
    ImpairedLinkConfig link = lockstep_config(10.0);
    link.uplink = gen2::Miller::kM2;
    configs.push_back(link);
  }
  const std::size_t n = 37;
  for (const auto& link : configs) {
    EXPECT_FALSE(lockstep_batchable(link));
    const auto reference = scalar_sessions(link, 812, 1, 0, n);
    for (const std::size_t batch : {std::size_t{2}, std::size_t{16}}) {
      const auto got = batched_sessions(link, 812, 1, 0, n, batch);
      expect_outcomes_memcmp_equal(reference, got, "fallback batch");
    }
  }
}

TEST_F(BatchPipelineTest, SessionBatchHandlesEdgeConfigs) {
  // max_attempts < 1: the scalar attempt loop never runs (immediate Query
  // failure); an unpowered link dies in the charge stage.
  ImpairedLinkConfig no_attempts = lockstep_config(30.0);
  no_attempts.recovery.max_attempts = 0;
  ImpairedLinkConfig unpowered = lockstep_config(30.0);
  unpowered.medium_loss_db = 40.0;  // kills the charge amplitude
  for (const auto& link : {no_attempts, unpowered}) {
    const auto reference = scalar_sessions(link, 99, 1, 0, 9);
    const auto got = batched_sessions(link, 99, 1, 0, 9, 4);
    expect_outcomes_memcmp_equal(reference, got, "edge config");
  }
  const auto charge_fail = batched_sessions(unpowered, 99, 1, 0, 1, 4);
  EXPECT_EQ(charge_fail[0].failed_stage,
            static_cast<std::uint8_t>(SessionStage::kCharge));
  EXPECT_EQ(charge_fail[0].powered, 0);
}

// --- BER batches vs the scalar oracle --------------------------------------

TEST_F(BatchPipelineTest, BerBatchBitwiseMatchesScalar) {
  const std::size_t n = 131;
  const std::size_t payload_bits = 96;
  for (const double snr_db : {30.0, 8.0, 0.0}) {
    const ImpairedLinkConfig link = lockstep_config(snr_db);
    std::vector<BerOutcome> reference(n);
    for (std::size_t t = 0; t < n; ++t) {
      const auto r =
          ber_probe_trial(link, payload_bits, Rng::stream(321, 2 * t));
      reference[t].bit_errors = r.bit_errors;
      reference[t].frame_error = r.frame_error ? 1 : 0;
    }
    for (const std::size_t batch : {std::size_t{1}, std::size_t{7},
                                    std::size_t{32}, std::size_t{129}}) {
      std::vector<BerOutcome> got(n);
      batched_for(n, batch, [&](std::size_t lo, std::size_t hi) {
        DspWorkspace workspace;
        run_ber_batch(link, payload_bits, 321, 2, 0, lo, hi, workspace,
                      [&](std::size_t t, const BerOutcome& o) { got[t] = o; });
      });
      for (std::size_t t = 0; t < n; ++t) {
        EXPECT_EQ(std::memcmp(&reference[t], &got[t], sizeof(BerOutcome)), 0)
            << "snr " << snr_db << " batch " << batch << " trial " << t
            << ": bit_errors " << reference[t].bit_errors << "/"
            << got[t].bit_errors;
      }
    }
  }
}

// --- Whole sweeps: batched JSON == scalar JSON -----------------------------

WaterfallConfig waterfall_case() {
  WaterfallConfig config;
  config.link.recovery = RecoveryPolicy::retries(1);
  config.snr_points_db = {24.0, 12.0, 4.0};
  config.trials_per_point = 29;
  config.payload_bits = 64;
  return config;
}

MatrixConfig matrix_case() {
  MatrixConfig config;
  config.link.recovery = RecoveryPolicy::retries(1);
  config.media = {{"water", 2.0}, {"gastric", 9.0}};
  config.snr_points_db = {20.0, 6.0};
  config.antenna_counts = {1, 3};
  config.trials_per_cell = 13;
  return config;
}

TEST_F(BatchPipelineTest, WaterfallJsonInvariantUnderBatchSize) {
  auto run = [&](std::size_t batch) {
    WaterfallConfig config = waterfall_case();
    config.batch.batch_size = batch;
    Rng rng(1313);
    return waterfall_json(run_ber_waterfall(config, rng));
  };
  const std::string reference = run(1);
  for (const std::size_t batch : {std::size_t{2}, std::size_t{7},
                                  std::size_t{32}, std::size_t{129}}) {
    EXPECT_EQ(run(batch), reference) << "batch " << batch;
  }
}

TEST_F(BatchPipelineTest, MatrixJsonInvariantUnderBatchSize) {
  auto run = [&](std::size_t batch) {
    MatrixConfig config = matrix_case();
    config.batch.batch_size = batch;
    Rng rng(1717);
    return matrix_json(run_session_matrix(config, rng));
  };
  const std::string reference = run(1);
  for (const std::size_t batch : {std::size_t{2}, std::size_t{13},
                                  std::size_t{64}}) {
    EXPECT_EQ(run(batch), reference) << "batch " << batch;
  }
}

TEST_F(BatchPipelineTest, DepthSweepJsonInvariantUnderBatchSize) {
  auto run = [&](std::size_t batch) {
    DepthSweepConfig config;
    config.link.recovery = RecoveryPolicy::retries(1);
    config.depths_m = {0.02, 0.06, 0.10};
    config.trials_per_point = 17;
    config.batch.batch_size = batch;
    Rng rng(4141);
    return depth_sweep_json(run_success_vs_depth(config, rng));
  };
  const std::string reference = run(1);
  for (const std::size_t batch : {std::size_t{4}, std::size_t{17},
                                  std::size_t{32}}) {
    EXPECT_EQ(run(batch), reference) << "batch " << batch;
  }
}

// --- Batch-size knob resolution --------------------------------------------

TEST_F(BatchPipelineTest, ResolveBatchSizePrecedence) {
  EXPECT_EQ(resolve_batch_size(BatchConfig{.batch_size = 5}), 5u);
  set_default_batch_size(8);
  EXPECT_EQ(default_batch_size(), 8u);
  EXPECT_EQ(resolve_batch_size(BatchConfig{}), 8u);
  EXPECT_EQ(resolve_batch_size(BatchConfig{.batch_size = 3}), 3u);
  set_default_batch_size(0);
  EXPECT_EQ(resolve_batch_size(BatchConfig{}), 1u);
}

TEST_F(BatchPipelineTest, EnvBatchSizeRequiresAFullIntegerParse) {
  const char* saved = std::getenv("IVNET_BATCH");
  const std::string saved_value = saved ? saved : "";
  const bool had_env = saved != nullptr;
  const auto with_env = [](const char* value) {
    ::setenv("IVNET_BATCH", value, 1);
    return default_batch_size();
  };
  set_default_batch_size(0);  // let the environment decide
  EXPECT_EQ(with_env("32"), 32u);
  EXPECT_EQ(with_env("1"), 1u);
  // "32abc" once parsed as 32 via strtoul's longest-prefix rule; a typo'd
  // knob must fall back to the scalar default, not half-apply.
  EXPECT_EQ(with_env("32abc"), 1u);
  EXPECT_EQ(with_env("abc"), 1u);
  EXPECT_EQ(with_env("0"), 1u);
  EXPECT_EQ(with_env(""), 1u);
  EXPECT_EQ(with_env("-4"), 1u);
  EXPECT_EQ(with_env(" 32"), 1u);
  EXPECT_EQ(with_env("99999999999999999999"), 1u);  // out of range
  if (had_env) {
    ::setenv("IVNET_BATCH", saved_value.c_str(), 1);
  } else {
    ::unsetenv("IVNET_BATCH");
  }
}

// --- Workspace arena reuse ---------------------------------------------------

TEST_F(BatchPipelineTest, WorkspaceBestFitCheckoutRecyclesSmallestFit) {
  DspWorkspace ws;
  auto big = ws.acquire_real(1000);
  auto small = ws.acquire_real(100);
  const std::size_t big_cap = big.capacity();
  const std::size_t small_cap = small.capacity();
  ASSERT_GE(big_cap, 1000u);
  ws.release(std::move(big));
  ws.release(std::move(small));
  ASSERT_EQ(ws.pooled_real(), 2u);
  // A 50-sample checkout must take the SMALL parked buffer, not the big one.
  auto buf = ws.acquire_real(50);
  EXPECT_EQ(buf.capacity(), small_cap);
  // A too-big request falls back to the largest parked buffer and grows it.
  auto buf2 = ws.acquire_real(1500);
  EXPECT_GE(buf2.capacity(), 1500u);
  EXPECT_EQ(ws.pooled_real(), 0u);
  ws.release(std::move(buf));
  ws.release(std::move(buf2));
}

TEST_F(BatchPipelineTest, WorkspaceHighWaterTracksCapacityGrowth) {
  DspWorkspace ws;
  EXPECT_EQ(ws.high_water_bytes(), 0u);
  auto a = ws.acquire_real(100);
  const std::size_t after_first = ws.high_water_bytes();
  EXPECT_GE(after_first, 100 * sizeof(double));
  ws.release(std::move(a));
  // Recycled checkout: no growth, no high-water movement.
  auto b = ws.acquire_real(60);
  EXPECT_EQ(ws.high_water_bytes(), after_first);
  // Growth while a buffer is checked out stacks on the live total.
  auto c = ws.acquire_real(300);
  EXPECT_GE(ws.high_water_bytes(), after_first + 300 * sizeof(double));
  ws.release(std::move(b));
  ws.release(std::move(c));
}

// --- Batch-grained dispatch helpers ----------------------------------------

TEST_F(BatchPipelineTest, BatchedReduceRaggedBatchSums) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    set_parallel_threads(threads);
    for (const std::size_t batch : {std::size_t{1}, std::size_t{7},
                                    std::size_t{64}, std::size_t{200}}) {
      const std::size_t n = 103;
      const std::uint64_t total = batched_reduce<std::uint64_t>(
          n, batch, std::uint64_t{0},
          [&](std::size_t lo, std::size_t hi) {
            EXPECT_LE(hi - lo, batch == 0 ? std::size_t{1} : batch);
            std::uint64_t s = 0;
            for (std::size_t i = lo; i < hi; ++i) s += i;
            return s;
          },
          [](std::uint64_t a, std::uint64_t b) { return a + b; });
      EXPECT_EQ(total, static_cast<std::uint64_t>(n) * (n - 1) / 2)
          << "threads " << threads << " batch " << batch;
    }
  }
}

}  // namespace
}  // namespace ivnet
